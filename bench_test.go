package alpha21364

import (
	"fmt"
	"sync"
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/experiment"
	"alpha21364/internal/router"
	"alpha21364/internal/sim"
	"alpha21364/internal/standalone"
	"alpha21364/internal/traffic"
)

// benchOpts keeps figure benchmarks short enough for `go test -bench=.`
// while preserving each figure's qualitative shape. Full-fidelity runs are
// produced by `go run ./cmd/sweep` (75,000 cycles, full sweeps).
// Workers is pinned to 1 so these benchmarks measure the serial sweep
// path; the *Parallel variants below measure the worker-pool path.
var benchOpts = experiment.Options{Quick: true, CyclesOverride: 4000, MaxRatePoints: 3, Seed: 1, Workers: 1}

// benchOptsParallel is benchOpts with the sweep runner fanned across all
// CPUs (Workers 0 = GOMAXPROCS). Comparing a figure benchmark against its
// Parallel variant shows the sweep engine's speedup on the machine.
var benchOptsParallel = func() experiment.Options {
	o := benchOpts
	o.Workers = 0
	return o
}()

// printOnce emits each figure's table a single time per test binary run,
// so the benchmark harness reproduces the paper's rows without spamming
// every b.N iteration.
var printed sync.Map

func printOnce(key string, render func() string) {
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		fmt.Println(render())
	}
}

// BenchmarkFigure8 regenerates the standalone matching-capability sweep
// (matches/cycle vs load for MCM, WFA, PIM, PIM1, SPAA).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Figure8(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig8", func() string { return res.Table().Format() })
	}
}

// BenchmarkFigure9 regenerates the output-port occupancy sweep.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Figure9(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig9", func() string { return res.Table().Format() })
	}
}

// benchPanel runs one timing panel per iteration on the serial path.
func benchPanel(b *testing.B, key string, run func(experiment.Options) (experiment.Panel, error)) {
	benchPanelOpts(b, benchOpts, key, run)
}

// benchPanelOpts is benchPanel with explicit options, so the same figure
// can be benchmarked serially and through the parallel runner.
func benchPanelOpts(b *testing.B, o experiment.Options, key string, run func(experiment.Options) (experiment.Panel, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		p, err := run(o)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(key, func() string { return p.Table().Format() })
	}
}

// figure10Panel selects one of Figure 10's four panels.
func figure10Panel(idx int) func(experiment.Options) (experiment.Panel, error) {
	return func(o experiment.Options) (experiment.Panel, error) {
		panels, err := experiment.Figure10(o)
		if err != nil {
			return experiment.Panel{}, err
		}
		return panels[idx], nil
	}
}

func BenchmarkFigure10_4x4Random(b *testing.B) {
	benchPanel(b, "fig10a", figure10Panel(0))
}

func BenchmarkFigure10_8x8Random(b *testing.B) {
	benchPanel(b, "fig10b", figure10Panel(1))
}

func BenchmarkFigure10_8x8BitReversal(b *testing.B) {
	benchPanel(b, "fig10c", figure10Panel(2))
}

func BenchmarkFigure10_8x8PerfectShuffle(b *testing.B) {
	benchPanel(b, "fig10d", figure10Panel(3))
}

// BenchmarkFigure10_Saturation regenerates the saturation companion panel
// (64 outstanding misses) in which the Rotary Rule's post-saturation
// behavior is visible; see EXPERIMENTS.md.
func BenchmarkFigure10_Saturation(b *testing.B) {
	benchPanel(b, "fig10s", experiment.Figure10Saturation)
}

func BenchmarkFigure11a(b *testing.B) {
	benchPanel(b, "fig11a", experiment.Figure11a)
}

func BenchmarkFigure11b(b *testing.B) {
	benchPanel(b, "fig11b", experiment.Figure11b)
}

func BenchmarkFigure11c(b *testing.B) {
	benchPanel(b, "fig11c", experiment.Figure11c)
}

// ---- parallel sweep-runner variants ----
//
// These regenerate the same figures through the worker pool (one worker
// per CPU). The tables they print are byte-identical to the serial
// benchmarks' tables; only the wall-clock differs.

func BenchmarkFigure8Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Figure8(benchOptsParallel)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig8", func() string { return res.Table().Format() })
	}
}

func BenchmarkFigure10_8x8RandomParallel(b *testing.B) {
	benchPanelOpts(b, benchOptsParallel, "fig10b", figure10Panel(1))
}

func BenchmarkFigure10_SaturationParallel(b *testing.B) {
	benchPanelOpts(b, benchOptsParallel, "fig10s", experiment.Figure10Saturation)
}

func BenchmarkFigure11cParallel(b *testing.B) {
	benchPanelOpts(b, benchOptsParallel, "fig11c", experiment.Figure11c)
}

// BenchmarkCollectDatasetParallel runs the entire evaluation pipeline —
// every figure, overlapped — through the runner, the workload behind
// `sweep -verify`.
func BenchmarkCollectDatasetParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.CollectDataset(benchOptsParallel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPipelineDepth measures the paper's footnote 1: each
// cycle added to the arbitration pipeline costs roughly 5% of throughput
// under heavy load. It sweeps SPAA with 3..6 arbitration cycles.
func BenchmarkAblationPipelineDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := make([][]string, 0, 4)
		var baseTput float64
		for extra := 0; extra <= 3; extra++ {
			res := runCustomRouter(b, func(cfg *router.Config) {
				cfg.ArbCycles += extra
			}, 0.05)
			if extra == 0 {
				baseTput = res.Throughput
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", 3+extra),
				fmt.Sprintf("%.4f", res.Throughput),
				fmt.Sprintf("%.1f%%", 100*(1-res.Throughput/baseTput)),
				fmt.Sprintf("%.1f", res.AvgLatencyNS),
			})
		}
		printOnce("ablation-depth", func() string {
			return experiment.Table{
				Title:   "Ablation: SPAA arbitration pipeline depth (8x8 random, heavy load)",
				Columns: []string{"arb cycles", "tput", "loss vs 3", "lat(ns)"},
				Rows:    rows,
			}.Format()
		})
	}
}

// BenchmarkAblationInitiationInterval isolates pipelining (§5.2's closing
// experiment): a hypothetical 3-cycle WFA that still restarts only every 3
// cycles, against SPAA's every-cycle restart.
func BenchmarkAblationInitiationInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spaa := runCustomRouter(b, nil, 0.05)
		wfa3 := runCustomRouterKind(b, core.KindWFABase, func(cfg *router.Config) {
			cfg.ArbCycles = 3 // same latency as SPAA; II stays 3
		}, 0.05)
		printOnce("ablation-ii", func() string {
			return experiment.Table{
				Title:   "Ablation: initiation interval (8x8 random; hypothetical 3-cycle WFA vs SPAA)",
				Columns: []string{"algorithm", "II", "tput", "lat(ns)"},
				Rows: [][]string{
					{"SPAA-base", "1", fmt.Sprintf("%.4f", spaa.Throughput), fmt.Sprintf("%.1f", spaa.AvgLatencyNS)},
					{"WFA-base (3-cycle)", "3", fmt.Sprintf("%.4f", wfa3.Throughput), fmt.Sprintf("%.1f", wfa3.AvgLatencyNS)},
				},
			}.Format()
		})
	}
}

// BenchmarkAblationRotary compares base and rotary variants beyond
// saturation (the §5.2 throughput-retention claim).
func BenchmarkAblationRotary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := make([][]string, 0, 4)
		for _, k := range []core.Kind{core.KindSPAABase, core.KindSPAARotary, core.KindWFABase, core.KindWFARotary} {
			res, err := experiment.RunTiming(experiment.TimingSetup{
				Width: 8, Height: 8, Kind: k, Pattern: traffic.Uniform,
				Rate: 0.09, MaxOutstanding: 64, Cycles: benchOpts.TimingCycles(), Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, []string{k.String(),
				fmt.Sprintf("%.4f", res.Throughput),
				fmt.Sprintf("%.1f", res.AvgLatencyNS),
				fmt.Sprintf("%d", res.DrainEntries)})
		}
		printOnce("ablation-rotary", func() string {
			return experiment.Table{
				Title:   "Ablation: Rotary Rule beyond saturation (8x8 random, 64 outstanding)",
				Columns: []string{"algorithm", "tput", "lat(ns)", "drains"},
				Rows:    rows,
			}.Format()
		})
	}
}

// BenchmarkAblationGrantPolicy explores §3's output-arbiter design space:
// SPAA with least-recently-selected (shipping), round-robin, random, and a
// fixed priority chain.
func BenchmarkAblationGrantPolicy(b *testing.B) {
	policies := []struct {
		name    string
		factory func(rows, cols int) core.SelectPolicy
	}{
		{"lrs (21364)", nil},
		{"round-robin", func(r, c int) core.SelectPolicy { return core.NewRoundRobinPolicy(r, c) }},
		{"random", func(r, c int) core.SelectPolicy { return core.NewRandomPolicy(sim.NewRNG(7)) }},
		{"priority-chain", func(r, c int) core.SelectPolicy { return core.NewPriorityChainPolicy() }},
	}
	for i := 0; i < b.N; i++ {
		rows := make([][]string, 0, len(policies))
		for _, pol := range policies {
			pol := pol
			res := runCustomRouter(b, func(cfg *router.Config) {
				if pol.factory != nil {
					cfg.GrantPolicyFactory = pol.factory
				}
			}, 0.05)
			rows = append(rows, []string{pol.name,
				fmt.Sprintf("%.4f", res.Throughput),
				fmt.Sprintf("%.1f", res.AvgLatencyNS)})
		}
		printOnce("ablation-policy", func() string {
			return experiment.Table{
				Title:   "Ablation: SPAA output-arbiter grant policy (8x8 random, heavy load)",
				Columns: []string{"policy", "tput", "lat(ns)"},
				Rows:    rows,
			}.Format()
		})
	}
}

func runCustomRouter(b *testing.B, mutate func(*router.Config), rate float64) experiment.TimingResult {
	return runCustomRouterKind(b, core.KindSPAABase, mutate, rate)
}

// runCustomRouterKind runs an 8x8 random-traffic simulation with a mutated
// router configuration, bypassing the standard per-kind defaults.
func runCustomRouterKind(b *testing.B, kind core.Kind, mutate func(*router.Config), rate float64) experiment.TimingResult {
	b.Helper()
	res, err := experiment.RunTimingWithRouter(experiment.TimingSetup{
		Width: 8, Height: 8, Kind: kind, Pattern: traffic.Uniform,
		Rate: rate, Cycles: benchOpts.TimingCycles(), Seed: 1,
	}, mutate)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationPIMIterations sweeps PIM's iteration count in the
// standalone model (§3.1: PIM converges within log2 N = 4 iterations on
// the 21364's 16 arbiters; PIM1's matching is significantly worse).
func BenchmarkAblationPIMIterations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := make([][]string, 0, 4)
		cfg := DefaultStandaloneConfig(1.0)
		cfg.Cycles = 400
		for _, iters := range []int{1, 2, 4, 8} {
			total := 0.0
			const trials = 3
			for trial := 0; trial < trials; trial++ {
				c := cfg
				c.Seed = uint64(trial + 1)
				arb := core.NewPIM(iters, sim.NewRNG(c.Seed))
				total += standalone.RunArbiter(arb, c).MatchesPerCycle
			}
			rows = append(rows, []string{fmt.Sprintf("%d", iters), fmt.Sprintf("%.2f", total/trials)})
		}
		printOnce("ablation-pim-iters", func() string {
			return experiment.Table{
				Title:   "Ablation: PIM iterations vs matches/cycle (standalone, saturation load)",
				Columns: []string{"iterations", "matches/cycle"},
				Rows:    rows,
			}.Format()
		})
	}
}

// BenchmarkAblationPickerWindow sweeps the standalone model's entry-table
// picker depth: with a shallow window, blocked heads hide eligible packets
// and every algorithm's matching degrades.
func BenchmarkAblationPickerWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := make([][]string, 0, 4)
		for _, window := range []int{1, 4, 16, 316} {
			cfg := DefaultStandaloneConfig(1.0)
			cfg.Cycles = 400
			cfg.Window = window
			mcm := RunStandalone(MCM, cfg).MatchesPerCycle
			spaa := RunStandalone(SPAABase, cfg).MatchesPerCycle
			rows = append(rows, []string{fmt.Sprintf("%d", window),
				fmt.Sprintf("%.2f", mcm), fmt.Sprintf("%.2f", spaa)})
		}
		printOnce("ablation-window", func() string {
			return experiment.Table{
				Title:   "Ablation: arbitration picker window (standalone, saturation load)",
				Columns: []string{"window (pkts)", "MCM", "SPAA"},
				Rows:    rows,
			}.Format()
		})
	}
}

// ---- microbenchmarks of the arbitration algorithms themselves ----

func benchArbiter(b *testing.B, kind core.Kind) {
	rng := sim.NewRNG(1)
	arb := core.New(kind, rng.Split())
	m := core.NewRouterMatrix()
	key := uint64(1)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if rng.Bernoulli(0.5) {
				m.Set(r, c, int64(rng.Intn(1000)), key, 0)
				key++
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arb.Arbitrate(m)
	}
}

func BenchmarkArbitrateSPAA(b *testing.B) { benchArbiter(b, core.KindSPAABase) }
func BenchmarkArbitrateWFA(b *testing.B)  { benchArbiter(b, core.KindWFABase) }
func BenchmarkArbitratePIM1(b *testing.B) { benchArbiter(b, core.KindPIM1) }
func BenchmarkArbitratePIM(b *testing.B)  { benchArbiter(b, core.KindPIM) }
func BenchmarkArbitrateMCM(b *testing.B)  { benchArbiter(b, core.KindMCM) }

// BenchmarkRouterCycle measures the cost of simulating one router cycle of
// a loaded 8x8 network — the simulator's core inner loop.
func BenchmarkRouterCycle(b *testing.B) {
	res, err := experiment.RunTiming(experiment.TimingSetup{
		Width: 8, Height: 8, Kind: SPAABase, Pattern: Uniform,
		Rate: 0.03, Cycles: b.N/64 + 1000, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
}

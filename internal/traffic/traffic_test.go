package traffic

import (
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/network"
	"alpha21364/internal/packet"
	"alpha21364/internal/router"
	"alpha21364/internal/sim"
	"alpha21364/internal/stats"
	"alpha21364/internal/topology"
)

// rig builds a network plus generator on a fresh engine.
func rig(t *testing.T, kind core.Kind, w, h int, tcfg Config) (*Generator, *network.Network, *sim.Engine, *stats.Collector) {
	t.Helper()
	eng := sim.NewEngine()
	col := stats.NewCollector(0)
	net, err := network.New(network.Config{Width: w, Height: h, Router: router.DefaultConfig(kind)}, eng, col)
	if err != nil {
		t.Fatal(err)
	}
	// The generator must tick before the routers; rebuild the clock order
	// by attaching it to its own domain registered after the network's.
	// Events fire before edges, so attach the generator on the same period.
	g := New(tcfg, net, eng, col)
	eng.AddClock(router.DefaultConfig(kind).RouterPeriod, 0, g)
	return g, net, eng, col
}

func TestTransactionsComplete(t *testing.T) {
	cfg := DefaultConfig(Uniform, 0.002)
	g, net, eng, col := rig(t, core.KindSPAABase, 4, 4, cfg)
	eng.Run(40000 * sim.RouterPeriod)
	g.Stop()
	eng.Run(eng.Now() + 60000*sim.RouterPeriod)

	if g.Completed() == 0 {
		t.Fatal("no transactions completed")
	}
	if g.InFlightTxns() != 0 {
		t.Fatalf("%d transactions stuck after drain", g.InFlightTxns())
	}
	if net.Buffered() != 0 {
		t.Fatalf("%d packets stuck in buffers", net.Buffered())
	}
	if g.PendingInjections() != 0 {
		t.Fatalf("%d injections still pending", g.PendingInjections())
	}
	// Every completed transaction delivered 2 or 3 packets.
	if col.Packets() < 2*g.Completed() {
		t.Errorf("delivered %d packets for %d transactions", col.Packets(), g.Completed())
	}
}

func TestHopMixAndClassMix(t *testing.T) {
	cfg := DefaultConfig(Uniform, 0.004)
	cfg.Seed = 7
	g, _, eng, col := rig(t, core.KindSPAABase, 4, 4, cfg)
	eng.Run(60000 * sim.RouterPeriod)
	g.Stop()
	eng.Run(eng.Now() + 60000*sim.RouterPeriod)

	req := col.ClassPackets(packet.Request)
	fwd := col.ClassPackets(packet.Forward)
	resp := col.ClassPackets(packet.BlockResponse)
	if req == 0 || fwd == 0 || resp == 0 {
		t.Fatalf("missing classes: req=%d fwd=%d resp=%d", req, fwd, resp)
	}
	// 30% of transactions carry a forward.
	ratio := float64(fwd) / float64(req)
	if ratio < 0.2 || ratio > 0.4 {
		t.Errorf("forward/request ratio = %.2f, want ~0.30", ratio)
	}
	// Every transaction ends with exactly one block response.
	if resp != g.Completed() {
		t.Errorf("responses %d != completed transactions %d", resp, g.Completed())
	}
}

func TestMaxOutstandingRespected(t *testing.T) {
	cfg := DefaultConfig(Uniform, 1.0) // overwhelming demand
	cfg.MaxOutstanding = 16
	g, net, eng, _ := rig(t, core.KindSPAABase, 4, 4, cfg)
	done := false
	check := checker{g: g, net: net, t: t, stopAt: 5000 * sim.RouterPeriod, done: &done}
	eng.AddClock(sim.RouterPeriod, 5, &check)
	eng.Run(5000 * sim.RouterPeriod)
	if !done {
		t.Fatal("checker never ran")
	}
}

type checker struct {
	g      *Generator
	net    *network.Network
	t      *testing.T
	stopAt sim.Ticks
	done   *bool
}

func (c *checker) Tick(now sim.Ticks) {
	*c.done = true
	for n := 0; n < c.net.Nodes(); n++ {
		if got := c.g.Outstanding(topology.Node(n)); got > 16 {
			c.t.Fatalf("node %d has %d outstanding misses, cap is 16", n, got)
		}
	}
}

func TestPermutationPatternsRespectMapping(t *testing.T) {
	for _, pat := range []Pattern{BitReversal, PerfectShuffle} {
		cfg := DefaultConfig(pat, 0.003)
		cfg.TwoHopFraction = 1.0 // only requests+responses: dst is the permutation
		g, net, eng, col := rig(t, core.KindSPAABase, 4, 4, cfg)
		eng.Run(20000 * sim.RouterPeriod)
		g.Stop()
		eng.Run(eng.Now() + 40000*sim.RouterPeriod)
		if col.Packets() == 0 {
			t.Fatalf("%v: nothing delivered", pat)
		}
		if g.InFlightTxns() != 0 || net.Buffered() != 0 {
			t.Fatalf("%v: transactions stuck", pat)
		}
	}
}

func TestHigherRateRaisesThroughput(t *testing.T) {
	run := func(rate float64) float64 {
		cfg := DefaultConfig(Uniform, rate)
		_, net, eng, col := rig(t, core.KindSPAABase, 4, 4, cfg)
		end := 20000 * sim.RouterPeriod
		eng.Run(end)
		return col.BNF(net.Nodes(), end).Throughput
	}
	low, high := run(0.001), run(0.01)
	if high <= low {
		t.Fatalf("throughput did not rise with load: %.4f -> %.4f", low, high)
	}
	// Sanity: throughput is bounded by the architectural 2.4 flits/router/ns.
	if high > 2.4 {
		t.Fatalf("throughput %.3f exceeds the 2-local-port bound", high)
	}
}

func TestLatencyAboveZeroLoadMinimum(t *testing.T) {
	cfg := DefaultConfig(Uniform, 0.002)
	_, net, eng, col := rig(t, core.KindSPAABase, 4, 4, cfg)
	end := 30000 * sim.RouterPeriod
	eng.Run(end)
	_ = net
	if col.Packets() == 0 {
		t.Fatal("nothing delivered")
	}
	// §4.3: minimum per-packet latency is ~45 ns for the transaction mix;
	// individual requests can be faster, but the mean must exceed ~40 ns.
	if avg := col.AvgLatencyNS(); avg < 40 {
		t.Errorf("average latency %.1f ns below the paper's ~45 ns floor", avg)
	}
}

func TestParsePattern(t *testing.T) {
	for p := Pattern(0); p < NumPatterns; p++ {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePattern(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePattern("zipf"); err == nil {
		t.Error("ParsePattern accepted unknown pattern")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int64, float64) {
		cfg := DefaultConfig(Uniform, 0.005)
		_, net, eng, col := rig(t, core.KindPIM1, 4, 4, cfg)
		end := 15000 * sim.RouterPeriod
		eng.Run(end)
		return col.Packets(), col.BNF(net.Nodes(), end).Throughput
	}
	p1, t1 := run()
	p2, t2 := run()
	if p1 != p2 || t1 != t2 {
		t.Fatalf("replay diverged: %d/%.6f vs %d/%.6f", p1, t1, p2, t2)
	}
}

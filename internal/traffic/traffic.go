// Package traffic implements the paper's synthetic coherence workloads
// (§4.2): a mix of 70% two-coherence-hop transactions (3-flit request, then
// a 19-flit block response from the home node) and 30% three-hop
// transactions (3-flit request, 3-flit forward to the owner, 19-flit block
// response), with destinations drawn uniformly at random, by bit-reversal,
// or by perfect-shuffle, under a per-processor outstanding-miss limit (16
// on the 21364; 64 in the Figure 11b scaling study). The home node's
// memory responds after 73 ns; an owner cache responds after 25 router
// cycles (§4.1).
package traffic

import (
	"fmt"

	"alpha21364/internal/network"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/stats"
	"alpha21364/internal/topology"
)

// Pattern selects how request destinations are drawn.
type Pattern uint8

const (
	Uniform Pattern = iota
	BitReversal
	PerfectShuffle
	NumPatterns
)

var patternNames = [NumPatterns]string{"random", "bit-reversal", "perfect-shuffle"}

func (p Pattern) String() string {
	if p < NumPatterns {
		return patternNames[p]
	}
	return fmt.Sprintf("Pattern(%d)", uint8(p))
}

// ParsePattern resolves a pattern name.
func ParsePattern(name string) (Pattern, error) {
	for p := Pattern(0); p < NumPatterns; p++ {
		if patternNames[p] == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("traffic: unknown pattern %q", name)
}

// Config parameterizes the generator.
type Config struct {
	Pattern Pattern
	// InjectionRate is the probability, per node per router cycle, of a new
	// transaction demand arriving — the load knob swept for BNF curves.
	InjectionRate float64
	// MaxOutstanding caps in-flight transactions per processor (the 21364's
	// 16 outstanding cache misses; Figure 11b uses 64).
	MaxOutstanding int
	// TwoHopFraction is the share of 2-hop transactions (paper: 0.7).
	TwoHopFraction float64
	// MemoryLatency is the home memory response time (paper: 73 ns).
	MemoryLatency sim.Ticks
	// L2LatencyCycles is the owner cache's response time (paper: 25 cycles).
	L2LatencyCycles int
	Seed            uint64
}

// DefaultConfig returns the paper's workload parameters at the given
// injection rate.
func DefaultConfig(pattern Pattern, rate float64) Config {
	return Config{
		Pattern:         pattern,
		InjectionRate:   rate,
		MaxOutstanding:  16,
		TwoHopFraction:  0.7,
		MemoryLatency:   sim.FromNS(73),
		L2LatencyCycles: 25,
		Seed:            1,
	}
}

// txn tracks one coherence transaction.
type txn struct {
	requester topology.Node
	home      topology.Node
	owner     topology.Node // 3-hop only
	twoHop    bool
}

// Generator drives every processor in the network. It is a sim.Clocked
// component on the router clock.
type Generator struct {
	cfg       Config
	net       *network.Network
	collector *stats.Collector
	rng       *sim.RNG

	outstanding []int
	demand      []int64
	// pending holds packets awaiting buffer space, per node and local
	// input port (processor-side injection queues).
	pending map[injKey][]*packet.Packet

	txns      map[uint64]*txn
	nextPkt   uint64
	nextTxn   uint64
	completed int64
	stopped   bool

	routerPeriod sim.Ticks
	l2Latency    sim.Ticks
	eng          *sim.Engine
}

type injKey struct {
	node topology.Node
	in   ports.In
}

// New creates a generator, installs its delivery handler on the network,
// and returns it. Attach it to the router clock domain before the routers
// so demands arrive at the head of each cycle.
func New(cfg Config, net *network.Network, eng *sim.Engine, collector *stats.Collector) *Generator {
	if cfg.MaxOutstanding <= 0 {
		panic("traffic: MaxOutstanding must be positive")
	}
	g := &Generator{
		cfg:          cfg,
		net:          net,
		collector:    collector,
		rng:          sim.NewRNG(cfg.Seed ^ 0xfeedface),
		outstanding:  make([]int, net.Nodes()),
		demand:       make([]int64, net.Nodes()),
		pending:      make(map[injKey][]*packet.Packet),
		txns:         make(map[uint64]*txn),
		routerPeriod: net.Router(0).Config().RouterPeriod,
		l2Latency:    sim.Ticks(cfg.L2LatencyCycles) * net.Router(0).Config().RouterPeriod,
		eng:          eng,
	}
	net.OnDeliver(g.onDeliver)
	return g
}

// Completed returns the number of finished transactions.
func (g *Generator) Completed() int64 { return g.completed }

// Outstanding returns a node's in-flight transaction count.
func (g *Generator) Outstanding(node topology.Node) int { return g.outstanding[node] }

// InFlightTxns returns the number of open transactions.
func (g *Generator) InFlightTxns() int { return len(g.txns) }

// PendingInjections returns packets queued processor-side for buffer space.
func (g *Generator) PendingInjections() int {
	n := 0
	for _, q := range g.pending {
		n += len(q)
	}
	return n
}

// Stop halts new transaction demand; in-flight transactions drain.
func (g *Generator) Stop() { g.stopped = true }

// Tick implements sim.Clocked on the router clock.
func (g *Generator) Tick(now sim.Ticks) {
	for node := 0; node < g.net.Nodes(); node++ {
		n := topology.Node(node)
		if !g.stopped && g.rng.Bernoulli(g.cfg.InjectionRate) {
			g.demand[node]++
		}
		for g.demand[node] > 0 && g.outstanding[node] < g.cfg.MaxOutstanding {
			g.demand[node]--
			g.outstanding[node]++
			g.startTxn(n, now)
		}
	}
	g.drainPending(now)
}

// startTxn creates a transaction and queues its request at the requester's
// cache port.
func (g *Generator) startTxn(requester topology.Node, now sim.Ticks) {
	g.nextTxn++
	t := &txn{
		requester: requester,
		home:      g.homeFor(requester),
		twoHop:    g.rng.Bernoulli(g.cfg.TwoHopFraction),
	}
	if !t.twoHop {
		t.owner = topology.Node(g.rng.Intn(g.net.Nodes()))
	}
	g.txns[g.nextTxn] = t
	req := g.newPacket(packet.Request, requester, t.home, g.nextTxn, now)
	g.enqueue(requester, ports.InCache, req, now)
}

// homeFor draws the home node for a request from a source node.
func (g *Generator) homeFor(src topology.Node) topology.Node {
	torus := g.net.Torus()
	switch g.cfg.Pattern {
	case BitReversal:
		return torus.BitReversal(src)
	case PerfectShuffle:
		return torus.PerfectShuffle(src)
	default:
		// Uniform over the other nodes. (Permutation patterns may map a
		// node to itself; such requests are local-memory accesses that
		// still traverse the router from the cache port to the MC port.)
		for {
			d := topology.Node(g.rng.Intn(g.net.Nodes()))
			if d != src || g.net.Nodes() == 1 {
				return d
			}
		}
	}
}

func (g *Generator) newPacket(cl packet.Class, src, dst topology.Node, txnID uint64, now sim.Ticks) *packet.Packet {
	g.nextPkt++
	p := packet.New(g.nextPkt, cl, src, dst, now)
	p.TxnID = txnID
	g.collector.Injected(p)
	return p
}

// enqueue adds a packet to a node's processor-side injection queue and
// tries to push it into the router immediately.
func (g *Generator) enqueue(node topology.Node, in ports.In, p *packet.Packet, now sim.Ticks) {
	k := injKey{node, in}
	g.pending[k] = append(g.pending[k], p)
	g.tryInject(k, now)
}

// drainPending retries one injection per (node, port) per cycle.
func (g *Generator) drainPending(now sim.Ticks) {
	for node := 0; node < g.net.Nodes(); node++ {
		for _, in := range []ports.In{ports.InCache, ports.InMC0, ports.InMC1, ports.InIO} {
			g.tryInject(injKey{topology.Node(node), in}, now)
		}
	}
}

func (g *Generator) tryInject(k injKey, now sim.Ticks) {
	q := g.pending[k]
	if len(q) == 0 {
		return
	}
	if !g.net.Inject(q[0], k.node, k.in, now) {
		return
	}
	copy(q, q[1:])
	q[len(q)-1] = nil
	if len(q) == 1 {
		delete(g.pending, k)
	} else {
		g.pending[k] = q[:len(q)-1]
	}
}

// onDeliver advances the owning transaction when a packet reaches its
// destination's local ports.
func (g *Generator) onDeliver(p *packet.Packet, at sim.Ticks) {
	t := g.txns[p.TxnID]
	if t == nil {
		return // packet outside transaction bookkeeping (tests)
	}
	switch p.Class {
	case packet.Request:
		if t.twoHop {
			// Home memory responds with the cache block after 73 ns.
			g.eng.Schedule(at+g.cfg.MemoryLatency, func() {
				resp := g.newPacket(packet.BlockResponse, t.home, t.requester, p.TxnID, g.eng.Now())
				g.enqueue(t.home, g.mcPort(p.TxnID), resp, g.eng.Now())
			})
		} else {
			// Directory forwards the request to the owner after the memory
			// (directory) lookup.
			g.eng.Schedule(at+g.cfg.MemoryLatency, func() {
				fwd := g.newPacket(packet.Forward, t.home, t.owner, p.TxnID, g.eng.Now())
				g.enqueue(t.home, g.mcPort(p.TxnID), fwd, g.eng.Now())
			})
		}
	case packet.Forward:
		// Owner's L2 supplies the block after 25 cycles.
		g.eng.Schedule(at+g.l2Latency, func() {
			resp := g.newPacket(packet.BlockResponse, t.owner, t.requester, p.TxnID, g.eng.Now())
			g.enqueue(t.owner, ports.InCache, resp, g.eng.Now())
		})
	case packet.BlockResponse:
		g.outstanding[t.requester]--
		g.completed++
		delete(g.txns, p.TxnID)
	}
}

// mcPort interleaves response injections across the two memory controller
// input ports.
func (g *Generator) mcPort(txnID uint64) ports.In {
	if txnID%2 == 0 {
		return ports.InMC0
	}
	return ports.InMC1
}

// Package traffic implements the paper's synthetic coherence workloads
// (§4.2): a mix of 70% two-coherence-hop transactions (3-flit request, then
// a 19-flit block response from the home node) and 30% three-hop
// transactions (3-flit request, 3-flit forward to the owner, 19-flit block
// response), with destinations drawn uniformly at random, by bit-reversal,
// or by perfect-shuffle, under a per-processor outstanding-miss limit (16
// on the 21364; 64 in the Figure 11b scaling study). The home node's
// memory responds after 73 ns; an owner cache responds after 25 router
// cycles (§4.1).
//
// The package is a thin adapter over internal/workload, which decomposes
// a workload into pluggable spatial patterns, arrival processes, and
// transaction models; traffic pins the paper's combination (coherence
// model, Bernoulli arrivals) and adds the destination patterns the wider
// workload suite defines (transpose, tornado, neighbor, hotspot) to the
// paper's three.
package traffic

import (
	"fmt"
	"strings"

	"alpha21364/internal/network"
	"alpha21364/internal/sim"
	"alpha21364/internal/stats"
	"alpha21364/internal/topology"
	"alpha21364/internal/workload"
)

// Pattern selects how request destinations are drawn.
type Pattern uint8

const (
	Uniform Pattern = iota
	BitReversal
	PerfectShuffle
	Transpose
	Tornado
	Neighbor
	Hotspot
	NumPatterns
)

var patternNames = [NumPatterns]string{
	"random", "bit-reversal", "perfect-shuffle", "transpose", "tornado", "neighbor", "hotspot",
}

func (p Pattern) String() string {
	if p < NumPatterns {
		return patternNames[p]
	}
	return fmt.Sprintf("Pattern(%d)", uint8(p))
}

// PatternNames returns every pattern name in declaration order.
func PatternNames() []string {
	return append([]string(nil), patternNames[:]...)
}

// ParsePattern resolves a pattern name, case-insensitively; "uniform" is
// accepted for "random" and "shuffle" for "perfect-shuffle".
func ParsePattern(name string) (Pattern, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	switch key {
	case "uniform":
		return Uniform, nil
	case "shuffle":
		return PerfectShuffle, nil
	}
	for p := Pattern(0); p < NumPatterns; p++ {
		if patternNames[p] == key {
			return p, nil
		}
	}
	return 0, fmt.Errorf("traffic: unknown pattern %q (valid: %s)",
		name, strings.Join(patternNames[:], ", "))
}

// Validate reports whether the pattern is defined on the torus: the
// bit-permutation patterns need a power-of-two node count.
func (p Pattern) Validate(t topology.Torus) error {
	if p == BitReversal || p == PerfectShuffle {
		if _, ok := t.BitWidth(); !ok {
			return fmt.Errorf("traffic: %v requires a power-of-two node count, got %dx%d",
				p, t.Width, t.Height)
		}
	}
	return nil
}

// Workload returns the workload.Pattern this enum value names, on the
// given torus.
func (p Pattern) Workload(t topology.Torus) workload.Pattern {
	switch p {
	case Uniform:
		return workload.NewUniform(t)
	case BitReversal:
		return workload.NewBitReversal(t)
	case PerfectShuffle:
		return workload.NewPerfectShuffle(t)
	case Transpose:
		return workload.NewTranspose(t)
	case Tornado:
		return workload.NewTornado(t)
	case Neighbor:
		return workload.NewNeighbor(t)
	case Hotspot:
		return workload.DefaultHotspot(t)
	}
	panic(fmt.Sprintf("traffic: invalid pattern %d", uint8(p)))
}

// Config parameterizes the generator.
type Config struct {
	Pattern Pattern
	// InjectionRate is the probability, per node per router cycle, of a new
	// transaction demand arriving — the load knob swept for BNF curves.
	InjectionRate float64
	// MaxOutstanding caps in-flight transactions per processor (the 21364's
	// 16 outstanding cache misses; Figure 11b uses 64).
	MaxOutstanding int
	// TwoHopFraction is the share of 2-hop transactions (paper: 0.7).
	TwoHopFraction float64
	// MemoryLatency is the home memory response time (paper: 73 ns).
	MemoryLatency sim.Ticks
	// L2LatencyCycles is the owner cache's response time (paper: 25 cycles).
	L2LatencyCycles int
	Seed            uint64
}

// DefaultConfig returns the paper's workload parameters at the given
// injection rate.
func DefaultConfig(pattern Pattern, rate float64) Config {
	return Config{
		Pattern:         pattern,
		InjectionRate:   rate,
		MaxOutstanding:  16,
		TwoHopFraction:  0.7,
		MemoryLatency:   sim.FromNS(73),
		L2LatencyCycles: 25,
		Seed:            1,
	}
}

// Workload expands the paper's fixed workload into its workload.Config
// decomposition: the configured pattern, Bernoulli arrivals at the
// injection rate, and the coherence transaction model.
func (c Config) Workload(t topology.Torus) workload.Config {
	model := workload.NewCoherence()
	model.TwoHopFraction = c.TwoHopFraction
	model.MemoryLatency = c.MemoryLatency
	model.L2LatencyCycles = c.L2LatencyCycles
	return workload.Config{
		Pattern:        c.Pattern.Workload(t),
		Process:        workload.NewBernoulli(c.InjectionRate),
		Model:          model,
		MaxOutstanding: c.MaxOutstanding,
		Seed:           c.Seed,
	}
}

// Generator drives every processor in the network with the paper's
// workload. It is a thin wrapper over workload.Generator and, like it, a
// sim.Clocked component on the router clock.
type Generator struct {
	*workload.Generator
}

// New creates a generator, installs its delivery handler on the network,
// and returns it. Attach it to the router clock domain before the routers
// so demands arrive at the head of each cycle.
func New(cfg Config, net *network.Network, eng *sim.Engine, collector *stats.Collector) *Generator {
	if cfg.MaxOutstanding <= 0 {
		panic("traffic: MaxOutstanding must be positive")
	}
	return &Generator{workload.New(cfg.Workload(net.Torus()), net, eng, collector)}
}

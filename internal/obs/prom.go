package obs

import (
	"io"
	"strconv"
	"strings"
)

// PromWriter emits Prometheus text exposition format 0.0.4 by hand —
// the repo takes no client-library dependency for what is a dozen lines
// of formatting. Errors are sticky: check Err once after writing.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(s string) {
	if p.err != nil {
		return
	}
	_, p.err = io.WriteString(p.w, s)
}

// Family writes the # HELP and # TYPE header for a metric family.
// typ is "counter", "gauge", or "histogram".
func (p *PromWriter) Family(name, typ, help string) {
	p.printf("# HELP " + name + " " + escapeHelp(help) + "\n# TYPE " + name + " " + typ + "\n")
}

// Sample writes one sample line. labels are alternating key, value
// pairs; values are escaped per the exposition format.
func (p *PromWriter) Sample(name string, value float64, labels ...string) {
	var b strings.Builder
	b.WriteString(name)
	writeLabels(&b, labels)
	b.WriteByte(' ')
	b.WriteString(formatValue(value))
	b.WriteByte('\n')
	p.printf(b.String())
}

// Histo writes a full histogram family: header, cumulative _bucket
// series (including +Inf), _sum, and _count.
func (p *PromWriter) Histo(name, help string, h *Histogram, labels ...string) {
	p.Family(name, "histogram", help)
	bounds := h.Bounds()
	cum := h.Cumulative()
	for i, le := range bounds {
		p.Sample(name+"_bucket", float64(cum[i]), append(append([]string(nil), labels...), "le", formatValue(le))...)
	}
	p.Sample(name+"_bucket", float64(cum[len(cum)-1]), append(append([]string(nil), labels...), "le", "+Inf")...)
	p.Sample(name+"_sum", h.Sum(), labels...)
	p.Sample(name+"_count", float64(h.Count()), labels...)
}

func writeLabels(b *strings.Builder, labels []string) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// Package obs is the simulation telemetry layer: preallocated metric
// structs whose hot-path updates are plain int64 field writes, wired into
// the simulator through nil-checked hooks exactly like the invariant
// oracle (internal/check). The same two guarantees hold:
//
//   - Disabled (the default): nothing is wired. The router and network
//     hot paths pay one nil test per event and allocate nothing — the
//     AllocsPerRun pins and the bench-baseline gate cover this.
//   - Enabled: observation only. Metrics read simulation state and write
//     their own counters; they never post events, reserve credits, or
//     touch RNG streams, so a metrics-enabled run's Result (minus the
//     metrics themselves) is byte-identical to a disabled run's —
//     test-enforced in internal/experiment.
//
// Three metric shapes cover the layer: counters and gauges are bare
// int64/float64 fields on per-router and per-network structs (increment
// = one add, no interface calls, no atomics — the simulation is
// single-threaded); Histogram is a fixed-bucket histogram for the
// service layer (cmd/sweepd), where observations are request and shard
// latencies, not per-tick events.
//
// A run's metrics aggregate into a Snapshot: a versioned, strict-JSON
// document attached to ResultPoint.Metrics, written to `sweep -metrics`
// sidecars, and summed into cmd/sweepd's Prometheus exposition.
package obs

import (
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/vc"
)

// ArbiterMetrics counts one router's arbitration outcomes. Requests,
// Grants, and Conflicts are incremented inside internal/core (the
// instrumented arbiter/policy wrappers); NomFailures by the router when
// a nomination is invalidated before arbitration (output busy or no
// downstream credit).
type ArbiterMetrics struct {
	// Requests counts GA-stage competitors considered by the arbitration
	// core: due SPAA nominations offered to the grant policy, or valid
	// wave-matrix cells offered to the matching arbiter.
	Requests int64
	// Grants counts grants issued by the arbitration core.
	Grants int64
	// Conflicts counts requests that lost arbitration (Requests - Grants).
	Conflicts int64
	// NomFailures counts nominations invalidated before arbitration ran:
	// the output port was busy or the downstream channel had no credit.
	NomFailures int64
}

// queueTrack maintains one (input port, channel) ring's occupancy
// time-integral exactly: on every length transition at time now,
// integral += len·(now − lastChange).
type queueTrack struct {
	integral int64 // packet·ticks
	last     sim.Ticks
	cur      int32
}

func (q *queueTrack) delta(d int32, now sim.Ticks) {
	q.integral += int64(q.cur) * int64(now-q.last)
	q.last = now
	q.cur += d
}

// RouterMetrics is one router's preallocated counter block. The router
// holds a nil-checked pointer to it; every update is a field write.
type RouterMetrics struct {
	queues [ports.NumIn][vc.NumChannels]queueTrack
	// Stalls counts nominations invalidated because the output port was
	// still busy; CreditWaits those invalidated for lack of a downstream
	// credit. Together they partition Arb.NomFailures.
	Stalls      int64
	CreditWaits int64
	Arb         ArbiterMetrics
}

// QueueDelta records a ±1 occupancy transition on one input ring at time
// now. Transitions arrive in event order, so the integral is exact.
func (m *RouterMetrics) QueueDelta(in ports.In, ch vc.Channel, d int32, now sim.Ticks) {
	m.queues[in][ch].delta(d, now)
}

// OccupancyIntegral returns one ring's accumulated packet·ticks; call
// Flush first to extend the integral to the end of the run.
func (m *RouterMetrics) OccupancyIntegral(in ports.In, ch vc.Channel) int64 {
	return m.queues[in][ch].integral
}

// Flush closes every ring's integral at time end.
func (m *RouterMetrics) Flush(end sim.Ticks) {
	for in := range m.queues {
		for ch := range m.queues[in] {
			m.queues[in][ch].delta(0, end)
		}
	}
}

// occupancyTotal sums the closed integrals across all rings.
func (m *RouterMetrics) occupancyTotal() int64 {
	var t int64
	for in := range m.queues {
		for ch := range m.queues[in] {
			t += m.queues[in][ch].integral
		}
	}
	return t
}

// LinkMetrics counts one directed inter-router link's traffic. BusyTicks
// is the wire's serialization time (flits × link period), so
// BusyTicks/elapsed is the link's utilization.
type LinkMetrics struct {
	Packets   int64
	Flits     int64
	BusyTicks int64
}

// NetworkMetrics is the network-level counter block: per-link traffic
// plus sink throughput at the processor-facing ports.
type NetworkMetrics struct {
	// Links is preallocated at install time, one entry per directed link.
	Links []LinkMetrics
	// Delivered and DeliveredFlits count packets and flits consumed by
	// local sinks (the network's delivered throughput).
	Delivered      int64
	DeliveredFlits int64
}

// SimMetrics bundles one timing run's metric blocks: a RouterMetrics and
// FlightRing per router, plus the network block. Everything is allocated
// here, before the run starts; the hot path only writes fields.
type SimMetrics struct {
	Routers []RouterMetrics
	Flight  []FlightRing
	Network NetworkMetrics
}

// DefaultFlightDepth is the per-router flight-recorder capacity.
const DefaultFlightDepth = 128

// NewSimMetrics preallocates the metric blocks for a run over nodes
// routers and links directed inter-router links.
func NewSimMetrics(nodes, links int) *SimMetrics {
	m := &SimMetrics{
		Routers: make([]RouterMetrics, nodes),
		Flight:  make([]FlightRing, nodes),
	}
	for i := range m.Flight {
		m.Flight[i].init(DefaultFlightDepth)
	}
	m.Network.Links = make([]LinkMetrics, links)
	return m
}

// Flush closes every router's occupancy integrals at time end.
func (m *SimMetrics) Flush(end sim.Ticks) {
	for i := range m.Routers {
		m.Routers[i].Flush(end)
	}
}

// SnapshotVersion is the Snapshot schema version.
const SnapshotVersion = 1

// Snapshot is the serializable aggregate of one run's metrics. The JSON
// schema is strict and round-trip pinned (internal/experiment's result
// tests): every field is exported and tagged, and nothing volatile
// (wall-clock time, pointers) appears, so snapshots are deterministic
// and cache-safe.
type Snapshot struct {
	Version int `json:"version"`
	// Arbiter is the run's arbitration algorithm (one run = one kind).
	Arbiter string `json:"arbiter,omitempty"`
	// ElapsedTicks is the nominal run length the gauges are normalized by.
	ElapsedTicks int64            `json:"elapsed_ticks"`
	Routers      []RouterSnapshot `json:"routers"`
	Network      NetworkSnapshot  `json:"network"`
}

// RouterSnapshot aggregates one router's counters.
type RouterSnapshot struct {
	Node int `json:"node"`
	// MeanOccupancy is the time-averaged packet count buffered across the
	// router's input rings (the occupancy time-integral over elapsed).
	MeanOccupancy float64 `json:"mean_occupancy"`
	Stalls        int64   `json:"stalls"`
	CreditWaits   int64   `json:"credit_waits"`
	ArbRequests   int64   `json:"arb_requests"`
	ArbGrants     int64   `json:"arb_grants"`
	ArbConflicts  int64   `json:"arb_conflicts"`
	NomFailures   int64   `json:"nomination_failures"`
}

// NetworkSnapshot aggregates the link and sink counters.
type NetworkSnapshot struct {
	// LinkUtilization is the mean busy fraction across directed links;
	// MaxLinkUtilization the busiest single link's.
	LinkUtilization    float64 `json:"link_utilization"`
	MaxLinkUtilization float64 `json:"max_link_utilization"`
	LinkPackets        int64   `json:"link_packets"`
	LinkFlits          int64   `json:"link_flits"`
	DeliveredPackets   int64   `json:"delivered_packets"`
	DeliveredFlits     int64   `json:"delivered_flits"`
}

// Snapshot aggregates the run's counters into the serializable form.
// Call Flush first so the occupancy integrals cover the whole run.
func (m *SimMetrics) Snapshot(arbiter string, elapsed sim.Ticks) *Snapshot {
	s := &Snapshot{
		Version:      SnapshotVersion,
		Arbiter:      arbiter,
		ElapsedTicks: int64(elapsed),
		Routers:      make([]RouterSnapshot, len(m.Routers)),
	}
	for i := range m.Routers {
		r := &m.Routers[i]
		rs := RouterSnapshot{
			Node:         i,
			Stalls:       r.Stalls,
			CreditWaits:  r.CreditWaits,
			ArbRequests:  r.Arb.Requests,
			ArbGrants:    r.Arb.Grants,
			ArbConflicts: r.Arb.Conflicts,
			NomFailures:  r.Arb.NomFailures,
		}
		if elapsed > 0 {
			rs.MeanOccupancy = float64(r.occupancyTotal()) / float64(elapsed)
		}
		s.Routers[i] = rs
	}
	var busy, maxBusy int64
	for i := range m.Network.Links {
		l := &m.Network.Links[i]
		busy += l.BusyTicks
		if l.BusyTicks > maxBusy {
			maxBusy = l.BusyTicks
		}
		s.Network.LinkPackets += l.Packets
		s.Network.LinkFlits += l.Flits
	}
	if elapsed > 0 && len(m.Network.Links) > 0 {
		s.Network.LinkUtilization = float64(busy) / float64(int64(elapsed)*int64(len(m.Network.Links)))
		s.Network.MaxLinkUtilization = float64(maxBusy) / float64(elapsed)
	}
	s.Network.DeliveredPackets = m.Network.Delivered
	s.Network.DeliveredFlits = m.Network.DeliveredFlits
	return s
}

// Histogram is a fixed-bucket histogram for the service layer. Bounds
// are ascending upper bounds; an implicit +Inf bucket catches the rest.
// It is not concurrency-safe; cmd/sweepd guards it with its own mutex.
type Histogram struct {
	bounds []float64
	counts []int64
	sum    float64
	total  int64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count returns the number of observations; Sum their total.
func (h *Histogram) Count() int64 { return h.total }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Cumulative returns the cumulative bucket counts in Prometheus order:
// one entry per bound plus the +Inf total.
func (h *Histogram) Cumulative() []int64 {
	out := make([]int64, len(h.counts))
	var c int64
	for i, n := range h.counts {
		c += n
		out[i] = c
	}
	return out
}

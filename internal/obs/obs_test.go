package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"testing"

	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/vc"
)

func TestQueueOccupancyIntegralExact(t *testing.T) {
	var m RouterMetrics
	// One packet buffered from t=10 to t=30, two from t=30 to t=50, one
	// from t=50 to t=70, zero after. Integral: 1*20 + 2*20 + 1*20 = 80.
	m.QueueDelta(2, 5, +1, 10)
	m.QueueDelta(2, 5, +1, 30)
	m.QueueDelta(2, 5, -1, 50)
	m.QueueDelta(2, 5, -1, 70)
	m.Flush(100)
	if got := m.OccupancyIntegral(2, 5); got != 80 {
		t.Fatalf("occupancy integral = %d, want 80", got)
	}
	// Other rings stay zero.
	if got := m.OccupancyIntegral(0, 0); got != 0 {
		t.Fatalf("untouched ring integral = %d, want 0", got)
	}
}

func TestQueueOccupancyFlushExtendsTail(t *testing.T) {
	var m RouterMetrics
	m.QueueDelta(0, 0, +1, 0)
	// Still occupied at flush time: 1 packet from t=0 to t=40.
	m.Flush(40)
	if got := m.OccupancyIntegral(0, 0); got != 40 {
		t.Fatalf("occupancy integral = %d, want 40", got)
	}
}

func TestSnapshotAggregation(t *testing.T) {
	m := NewSimMetrics(2, 8)
	m.Routers[0].QueueDelta(0, 0, +1, 0)
	m.Routers[0].Stalls = 3
	m.Routers[0].CreditWaits = 2
	m.Routers[0].Arb = ArbiterMetrics{Requests: 10, Grants: 7, Conflicts: 3, NomFailures: 5}
	m.Network.Links[0].BusyTicks = 50
	m.Network.Links[0].Packets = 4
	m.Network.Links[0].Flits = 12
	m.Network.Links[3].BusyTicks = 100
	m.Network.Delivered = 9
	m.Network.DeliveredFlits = 27
	m.Flush(100)

	s := m.Snapshot("SPAA-rotary", 100)
	if s.Version != SnapshotVersion || s.Arbiter != "SPAA-rotary" || s.ElapsedTicks != 100 {
		t.Fatalf("snapshot header = %+v", s)
	}
	r0 := s.Routers[0]
	if r0.MeanOccupancy != 1.0 {
		t.Errorf("MeanOccupancy = %v, want 1.0", r0.MeanOccupancy)
	}
	if r0.Stalls != 3 || r0.CreditWaits != 2 || r0.ArbRequests != 10 ||
		r0.ArbGrants != 7 || r0.ArbConflicts != 3 || r0.NomFailures != 5 {
		t.Errorf("router snapshot = %+v", r0)
	}
	n := s.Network
	if want := 150.0 / (100.0 * 8.0); n.LinkUtilization != want {
		t.Errorf("LinkUtilization = %v, want %v", n.LinkUtilization, want)
	}
	if n.MaxLinkUtilization != 1.0 {
		t.Errorf("MaxLinkUtilization = %v, want 1.0", n.MaxLinkUtilization)
	}
	if n.LinkPackets != 4 || n.LinkFlits != 12 || n.DeliveredPackets != 9 || n.DeliveredFlits != 27 {
		t.Errorf("network snapshot = %+v", n)
	}
}

// TestSnapshotJSONRoundTrip pins the Snapshot schema: marshal → strict
// decode → marshal must be byte-identical, and the golden encoding of a
// small snapshot is pinned so schema drift is a deliberate act.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	m := NewSimMetrics(1, 2)
	m.Routers[0].QueueDelta(1, 2, +1, 0)
	m.Routers[0].Arb.Requests = 4
	m.Routers[0].Arb.Grants = 4
	m.Network.Links[1].BusyTicks = 25
	m.Network.Delivered = 4
	m.Flush(50)
	s := m.Snapshot("PIM1", 50)

	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	dec := json.NewDecoder(bytes.NewReader(b1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("strict decode: %v", err)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("round trip not byte-identical:\n%s\n%s", b1, b2)
	}

	const golden = `{"version":1,"arbiter":"PIM1","elapsed_ticks":50,` +
		`"routers":[{"node":0,"mean_occupancy":1,"stalls":0,"credit_waits":0,` +
		`"arb_requests":4,"arb_grants":4,"arb_conflicts":0,"nomination_failures":0}],` +
		`"network":{"link_utilization":0.25,"max_link_utilization":0.5,` +
		`"link_packets":0,"link_flits":0,"delivered_packets":4,"delivered_flits":0}}`
	if string(b1) != golden {
		t.Fatalf("snapshot schema drifted:\n got %s\nwant %s", b1, golden)
	}
}

func TestFlightRingWrap(t *testing.T) {
	r := NewFlightRing(4)
	if r.Depth() != 4 || r.Len() != 0 {
		t.Fatalf("fresh ring: depth=%d len=%d", r.Depth(), r.Len())
	}
	for i := 0; i < 10; i++ {
		r.Record(sim.Ticks(i), FlightNominate, uint64(i), ports.In(i%8), vc.Channel(i%19), ports.NumOut)
	}
	if r.Len() != 4 {
		t.Fatalf("len after wrap = %d, want 4", r.Len())
	}
	ev := r.Events()
	for i, e := range ev {
		want := uint64(6 + i)
		if e.Packet != want || e.At != sim.Ticks(want) {
			t.Fatalf("event %d = %+v, want packet %d", i, e, want)
		}
	}
}

func TestFlightRingRecordDoesNotAllocate(t *testing.T) {
	r := NewFlightRing(8)
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(1, FlightGrant, 42, 3, 7, 2)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per op, want 0", allocs)
	}
}

func TestFlightKindJSON(t *testing.T) {
	for k := FlightInject; k <= FlightReset; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back FlightKind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("kind %v round-tripped to %v", k, back)
		}
	}
	if _, err := json.Marshal(FlightKind(200)); err == nil {
		t.Fatal("marshal of unknown kind should fail")
	}
	var k FlightKind
	if err := json.Unmarshal([]byte(`"bogus"`), &k); err == nil {
		t.Fatal("unmarshal of unknown name should fail")
	}
	if err := json.Unmarshal([]byte(`7`), &k); err == nil {
		t.Fatal("unmarshal of non-string should fail")
	}
	if got, want := FlightGrant.String(), "grant"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if !strings.Contains(FlightKind(200).String(), "200") {
		t.Fatalf("unknown kind String() = %q", FlightKind(200).String())
	}
}

func TestFlightDumpJSON(t *testing.T) {
	r := NewFlightRing(2)
	r.Record(5, FlightInject, 1, 7, 0, ports.NumOut)
	r.Record(6, FlightGrant, 1, 7, 0, 3)
	b, err := json.Marshal(r.Dump(9))
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"node":9,"events":[` +
		`{"at":5,"kind":"inject","packet":1,"in":7,"ch":0,"out":7},` +
		`{"at":6,"kind":"grant","packet":1,"in":7,"ch":0,"out":3}]}`
	if string(b) != golden {
		t.Fatalf("dump schema drifted:\n got %s\nwant %s", b, golden)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-55.65) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// 0.05 and 0.1 land in le=0.1 (bounds are inclusive upper bounds),
	// 0.5 in le=1, 5 in le=10, 50 in +Inf.
	want := []int64{2, 3, 4, 5}
	got := h.Cumulative()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", got, want)
		}
	}
	if b := h.Bounds(); len(b) != 3 || b[0] != 0.1 {
		t.Fatalf("bounds = %v", b)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on non-ascending bounds")
		}
	}()
	NewHistogram(1, 1)
}

func TestFlightRingBadDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on zero depth")
		}
	}()
	NewFlightRing(0)
}

// TestPromExposition validates the hand-rolled writer against the text
// exposition grammar: TYPE/HELP headers precede samples, label values
// are escaped, and histogram buckets are cumulative and end at +Inf.
func TestPromExposition(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("sweepd_points_total", "counter", "Total sweep points handled.")
	p.Sample("sweepd_points_total", 42)
	p.Family("sweepd_router_stalls_total", "counter", "Stalled nominations.")
	p.Sample("sweepd_router_stalls_total", 7, "arbiter", `SPAA-"rotary"`)
	h := NewHistogram(0.5, 2)
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(9)
	p.Histo("sweepd_run_duration_seconds", "Run wall time.", h)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# HELP sweepd_points_total Total sweep points handled.\n",
		"# TYPE sweepd_points_total counter\n",
		"sweepd_points_total 42\n",
		`sweepd_router_stalls_total{arbiter="SPAA-\"rotary\""} 7` + "\n",
		"# TYPE sweepd_run_duration_seconds histogram\n",
		`sweepd_run_duration_seconds_bucket{le="0.5"} 1` + "\n",
		`sweepd_run_duration_seconds_bucket{le="2"} 2` + "\n",
		`sweepd_run_duration_seconds_bucket{le="+Inf"} 3` + "\n",
		"sweepd_run_duration_seconds_sum 10.1\n",
		"sweepd_run_duration_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Grammar check: every sample line matches the exposition format and
	// its family header appears earlier in the stream.
	sampleRE := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$`)
	seenType := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			seenType[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		mm := sampleRE.FindStringSubmatch(line)
		if mm == nil {
			t.Fatalf("bad sample line: %q", line)
		}
		base := mm[1]
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suf)
		}
		if !seenType[base] && !seenType[mm[1]] {
			t.Fatalf("sample %q has no preceding # TYPE", line)
		}
	}
}

func TestPromWriterStickyError(t *testing.T) {
	p := NewPromWriter(failWriter{})
	p.Family("x_total", "counter", "x")
	p.Sample("x_total", 1)
	if p.Err() == nil {
		t.Fatal("want sticky error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &failErr{}

type failErr struct{}

func (*failErr) Error() string { return "fail" }

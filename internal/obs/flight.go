package obs

import (
	"fmt"

	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/vc"
)

// FlightKind classifies a flight-recorder event.
type FlightKind uint8

const (
	// FlightInject: a packet entered the router from the local port.
	FlightInject FlightKind = iota
	// FlightArrive: a packet's header arrived from an inter-router link.
	FlightArrive
	// FlightNominate: the router nominated a buffered packet for arbitration.
	FlightNominate
	// FlightGrant: arbitration granted the packet an output; it left the
	// input ring and began crossing the crossbar.
	FlightGrant
	// FlightReset: a nomination was invalidated or lost arbitration; the
	// packet returned to the buffered state.
	FlightReset
)

var flightKindNames = [...]string{
	FlightInject:   "inject",
	FlightArrive:   "arrive",
	FlightNominate: "nominate",
	FlightGrant:    "grant",
	FlightReset:    "reset",
}

func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) {
		return flightKindNames[k]
	}
	return fmt.Sprintf("FlightKind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its lowercase name.
func (k FlightKind) MarshalJSON() ([]byte, error) {
	if int(k) >= len(flightKindNames) {
		return nil, fmt.Errorf("obs: unknown flight kind %d", uint8(k))
	}
	return []byte(`"` + flightKindNames[k] + `"`), nil
}

// UnmarshalJSON decodes a quoted kind name.
func (k *FlightKind) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return fmt.Errorf("obs: flight kind must be a string, got %s", s)
	}
	s = s[1 : len(s)-1]
	for i, name := range flightKindNames {
		if name == s {
			*k = FlightKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown flight kind %q", s)
}

// FlightEvent is one flight-recorder entry: what happened to which
// packet, where in the router, and when. Out is only meaningful for
// grant events (ports.NumOut — the "no port" sentinel — otherwise).
type FlightEvent struct {
	At     sim.Ticks  `json:"at"`
	Kind   FlightKind `json:"kind"`
	Packet uint64     `json:"packet"`
	In     ports.In   `json:"in"`
	Ch     vc.Channel `json:"ch"`
	Out    ports.Out  `json:"out"`
}

// FlightRing is a fixed-size ring of a router's most recent engine
// events. Record overwrites the oldest entry and never allocates, so
// the recorder can stay on during long runs; when the deadlock watchdog
// fires, the ring holds the last-N-cycles trace for the stuck router.
type FlightRing struct {
	buf  []FlightEvent
	head uint64
}

// NewFlightRing allocates a ring holding the most recent depth events.
func NewFlightRing(depth int) *FlightRing {
	r := &FlightRing{}
	r.init(depth)
	return r
}

func (r *FlightRing) init(depth int) {
	if depth <= 0 {
		panic("obs: flight ring depth must be positive")
	}
	r.buf = make([]FlightEvent, depth)
	r.head = 0
}

// Record appends one event, overwriting the oldest when full.
func (r *FlightRing) Record(at sim.Ticks, kind FlightKind, packet uint64, in ports.In, ch vc.Channel, out ports.Out) {
	r.buf[r.head%uint64(len(r.buf))] = FlightEvent{
		At: at, Kind: kind, Packet: packet, In: in, Ch: ch, Out: out,
	}
	r.head++
}

// Len returns the number of events currently held (≤ Depth).
func (r *FlightRing) Len() int {
	if r.head < uint64(len(r.buf)) {
		return int(r.head)
	}
	return len(r.buf)
}

// Depth returns the ring's capacity.
func (r *FlightRing) Depth() int { return len(r.buf) }

// Events returns the held events oldest-first.
func (r *FlightRing) Events() []FlightEvent {
	n := r.Len()
	out := make([]FlightEvent, n)
	start := r.head - uint64(n)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+uint64(i))%uint64(len(r.buf))]
	}
	return out
}

// FlightDump is one router's serialized flight-recorder contents, as
// embedded in a watchdog Violation's trace.
type FlightDump struct {
	Node   int           `json:"node"`
	Events []FlightEvent `json:"events"`
}

// Dump snapshots the ring for node into the serializable form.
func (r *FlightRing) Dump(node int) FlightDump {
	return FlightDump{Node: node, Events: r.Events()}
}

// Package standalone implements the paper's first performance model (§4.1):
// a single 21364 router evaluated for pure matching capability, "just like
// a cache simulator would allow one to evaluate the cache miss ratio
// without any timing information". Every algorithm executes in one cycle;
// what is measured is arbitration matches per cycle.
//
// The model reproduces the assumptions behind Figures 8 and 9:
//
//   - all arbitration algorithms take one cycle to execute;
//   - output ports are free (Figure 8) or occupied with probability p
//     (Figure 9, sweeping p over {0, 0.25, 0.5, 0.75});
//   - 50% of traffic is local, destined for the memory-controller and I/O
//     output ports; the rest is destined uniformly for the network ports;
//   - matches are averaged across 1000 iterations of the algorithm;
//   - all algorithms obey the 21364's structural constraints (connection
//     matrix, adaptive routing's at-most-two output choices).
package standalone

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"alpha21364/internal/core"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
)

// Config parameterizes a standalone run.
type Config struct {
	Seed      uint64
	Cycles    int     // iterations to average over (paper: 1000)
	Load      float64 // packet arrival probability per input port per cycle
	Occupancy float64 // probability an output port is busy in a cycle
	// LocalFraction is the share of traffic destined for the local
	// (memory-controller and I/O) output ports. Paper: 0.5.
	LocalFraction float64
	// DualDirProb is the probability that a network-destined packet has two
	// candidate output ports (adaptive routing in the minimal rectangle
	// permits at most two; in a torus, packets with offsets in both
	// dimensions have two).
	DualDirProb float64
	// QueueCap bounds each input port's queue, like the 316-packet input
	// buffer. Arrivals beyond the cap are dropped (and counted).
	QueueCap int
	// Window is how many queued packets per input port the arbiters
	// consider. The 21364's input port arbiters "can pick packets out of
	// all the buffers" (§3), so the default window equals the queue
	// capacity; smaller windows are exposed for picker-depth ablations.
	Window int
	// Conn is the crossbar connection matrix.
	Conn ports.ConnectionMatrix
}

// DefaultConfig returns the paper's standalone parameters at the given
// load.
func DefaultConfig(load float64) Config {
	return Config{
		Seed:          1,
		Cycles:        1000,
		Load:          load,
		Occupancy:     0,
		LocalFraction: 0.5,
		DualDirProb:   0.5,
		QueueCap:      316,
		Window:        316,
		Conn:          ports.DefaultConnectionMatrix(),
	}
}

// Result reports a standalone run.
type Result struct {
	Algorithm       string
	MatchesPerCycle float64
	OfferedPerCycle float64 // accepted arrivals per cycle
	DroppedPerCycle float64 // arrivals lost to full queues
	MeanQueueLen    float64 // time-averaged total queued packets
}

// spkt is a queued packet in the standalone model.
type spkt struct {
	key   uint64
	age   int64 // arrival cycle
	dests ports.OutMask
}

// spktRing is a fixed-capacity FIFO of queued packets. Grants almost
// always remove packets near the front (the oldest), so removal shifts
// the shorter side — O(position) instead of an O(queue) memmove of the
// 316-entry buffer. dst mirrors each packet's destination mask in a
// parallel byte array so buildMatrix's skip-scan reads one byte per
// packet (eight per word) instead of the 24-byte packet struct.
type spktRing struct {
	buf  []spkt
	dst  []uint8
	head int
	n    int
}

func (r *spktRing) init(capacity int) {
	r.buf = make([]spkt, capacity)
	r.dst = make([]uint8, capacity)
}
func (r *spktRing) len() int   { return r.n }
func (r *spktRing) full() bool { return r.n == len(r.buf) }

func (r *spktRing) slot(i int) int {
	s := r.head + i
	if s >= len(r.buf) {
		s -= len(r.buf)
	}
	return s
}

func (r *spktRing) at(i int) *spkt { return &r.buf[r.slot(i)] }

// spans returns the index ranges [a0,a1) and [b0,b1) into the backing
// arrays covering the first n queued packets, oldest first — at most two
// contiguous runs, so scans avoid per-element slot arithmetic.
func (r *spktRing) spans(n int) (a0, a1, b1 int) {
	if r.head+n <= len(r.buf) {
		return r.head, r.head + n, 0
	}
	return r.head, len(r.buf), r.head + n - len(r.buf)
}

// push appends a packet. rowBit (0 or rowBitFlag) is the packet's static
// read-port row assignment, stored in the destination byte's spare high
// bit (NumOut = 7 destinations fit the low bits) for the free-output
// matrix build.
func (r *spktRing) push(p spkt, rowBit uint8) {
	s := r.slot(r.n)
	r.buf[s] = p
	r.dst[s] = uint8(p.dests) | rowBit
	r.n++
}

func (r *spktRing) removeAt(i int) {
	if i < r.n-1-i {
		for j := i; j > 0; j-- {
			s, sp := r.slot(j), r.slot(j-1)
			r.buf[s] = r.buf[sp]
			r.dst[s] = r.dst[sp]
		}
		r.head = r.slot(1)
	} else {
		for j := i; j < r.n-1; j++ {
			s, sn := r.slot(j), r.slot(j+1)
			r.buf[s] = r.buf[sn]
			r.dst[s] = r.dst[sn]
		}
	}
	r.n--
}

// removeKey deletes the packet with the given key, returning its
// destination mask and whether it was present.
func (r *spktRing) removeKey(key uint64) (ports.OutMask, bool) {
	for i := 0; i < r.n; i++ {
		if p := r.buf[r.slot(i)]; p.key == key {
			r.removeAt(i)
			return p.dests, true
		}
	}
	return 0, false
}

// model is the single-router state.
type model struct {
	cfg    Config
	rng    *sim.RNG
	queues [ports.NumIn]spktRing
	matrix *core.Matrix
	// localChoices and netChoices are each input port's legal local and
	// network output ports, precomputed from the (static) connection
	// matrix so destsFor draws without building the lists per arrival.
	localChoices [ports.NumIn][]ports.Out
	netChoices   [ports.NumIn][]ports.Out
	// rowMasks caches each input port's two read-port row connection
	// masks for the arrival-time row assignment.
	rowMasks [ports.NumIn][2]ports.OutMask
	// colCount[in][out] counts queued packets at input port in whose
	// destination set includes out, maintained incrementally on push and
	// drain; colMask[in] caches the mask of outs with a nonzero count.
	// buildMatrix uses the mask to shrink its early-exit target to the
	// columns that can actually still fill — the residual queue of an
	// effective arbiter is dominated by a few contested columns, and
	// without this bound the scan degenerates to the full window.
	colCount [ports.NumIn][ports.NumOut]int32
	colMask  [ports.NumIn]ports.OutMask
	// queued is the total packets across all queues, maintained on push
	// and drain.
	queued int
	// rowOf remembers which row nominated each key this cycle, for grant
	// bookkeeping.
	nextKey uint64
}

// trafficCols returns the mask of columns with at least one queued
// packet at the port.
func (m *model) trafficCols(in ports.In) ports.OutMask {
	return m.colMask[in]
}

func (m *model) countDests(in ports.In, dests ports.OutMask, delta int32) {
	for d := dests; d != 0; d &= d - 1 {
		o := ports.Out(bits.TrailingZeros8(uint8(d)))
		m.colCount[in][o] += delta
		if m.colCount[in][o] > 0 {
			m.colMask[in] = m.colMask[in].With(o)
		} else {
			m.colMask[in] &^= 1 << uint(o)
		}
	}
}

func newModel(cfg Config) *model {
	m := &model{cfg: cfg, rng: sim.NewRNG(cfg.Seed), matrix: core.NewRouterMatrix(), nextKey: 1}
	for in := ports.In(0); in < ports.NumIn; in++ {
		legal := cfg.Conn.LegalOuts(in)
		m.localChoices[in] = maskList(legal & ports.LocalOuts)
		m.netChoices[in] = maskList(legal & ports.NetworkOuts)
		m.rowMasks[in][0] = cfg.Conn[ports.Row(in, 0)]
		m.rowMasks[in][1] = cfg.Conn[ports.Row(in, 1)]
		m.queues[in].init(cfg.QueueCap)
	}
	return m
}

// rowBitFlag marks a row-1 assignment in a queue's destination byte.
const rowBitFlag = 0x80

// assignBit computes a packet's static read-port row with all outputs
// free: the row whose connection mask covers more of the packet's
// candidate outputs, ties broken by key parity — the same rule
// buildMatrix applies, evaluated once at arrival.
func (m *model) assignBit(in ports.In, p *spkt) uint8 {
	c0 := (p.dests & m.rowMasks[in][0]).Count()
	c1 := (p.dests & m.rowMasks[in][1]).Count()
	if c1 > c0 || (c1 == c0 && c0 != 0 && p.key%2 == 1) {
		return rowBitFlag
	}
	return 0
}

// arrive generates this cycle's arrivals.
func (m *model) arrive(cycle int64) (offered, dropped int) {
	for in := ports.In(0); in < ports.NumIn; in++ {
		if !m.rng.Bernoulli(m.cfg.Load) {
			continue
		}
		offered++
		if m.queues[in].full() {
			dropped++
			continue
		}
		p := spkt{
			key:   m.nextKey,
			age:   cycle,
			dests: m.destsFor(in),
		}
		m.queues[in].push(p, m.assignBit(in, &p))
		m.countDests(in, p.dests, 1)
		m.queued++
		m.nextKey++
	}
	return offered, dropped
}

// destsFor draws a destination set for a packet arriving on in, following
// the paper's 50% local / 50% uniformly-network rule and the adaptive
// routing limit of at most two candidate output ports.
func (m *model) destsFor(in ports.In) ports.OutMask {
	if m.rng.Bernoulli(m.cfg.LocalFraction) {
		choices := m.localChoices[in]
		return 1 << uint(choices[m.rng.Intn(len(choices))])
	}
	choices := m.netChoices[in]
	first := choices[m.rng.Intn(len(choices))]
	mask := ports.OutMask(1) << uint(first)
	if len(choices) > 1 && m.rng.Bernoulli(m.cfg.DualDirProb) {
		for {
			second := choices[m.rng.Intn(len(choices))]
			if second != first {
				return mask | 1<<uint(second)
			}
		}
	}
	return mask
}

func maskList(m ports.OutMask) []ports.Out {
	out := make([]ports.Out, 0, ports.NumOut)
	for o := ports.Out(0); o < ports.NumOut; o++ {
		if m.Has(o) {
			out = append(out, o)
		}
	}
	return out
}

// buildMatrix fills the connection matrix for one arbitration pass. Each
// packet is assigned to exactly one of its input port's two read ports
// (the pairs synchronize so they never choose the same packet); within a
// row, each column's cell holds the oldest packet that can use it.
func (m *model) buildMatrix(busy ports.OutMask) {
	mat := m.matrix
	mat.Reset()
	if busy == 0 {
		// All outputs free: every packet's read-port row is the one
		// precomputed at arrival, so the two rows scan independently.
		m.buildMatrixFree()
		return
	}
	for in := ports.In(0); in < ports.NumIn; in++ {
		q := &m.queues[in]
		limit := q.len()
		if limit > m.cfg.Window {
			limit = m.cfg.Window
		}
		row0, row1 := ports.Row(in, 0), ports.Row(in, 1)
		mask0, mask1 := m.cfg.Conn[row0], m.cfg.Conn[row1]
		// Early-exit bound: arrivals are strictly age-ordered within a
		// port (one per cycle), so a later packet never replaces a cell an
		// earlier one set — every cell is written exactly once, by the
		// first (oldest) packet that can use it. need0/need1 track the
		// cells still open in each read-port row, restricted to columns
		// some queued packet actually wants (trafficCols): packets that
		// cannot contribute are skipped with two mask operations, and the
		// scan stops when nothing is left to fill. At saturation this cuts
		// the per-cycle work from the full 316-entry window times seven
		// columns to a handful of cell writes.
		traffic := m.trafficCols(in)
		need0 := mask0 &^ busy & traffic
		need1 := mask1 &^ busy & traffic
		// The ring is walked oldest-first as (at most) two contiguous
		// runs of the parallel destination-byte array, eight packets per
		// uint64 load: a chunk with no byte intersecting the still-needed
		// columns is skipped with one AND. need0/need1 have no busy bits,
		// so dests∩need ≠ 0 is exactly the old avail∩need ≠ 0 entry test,
		// and within a chunk hits are taken lowest byte first — the same
		// oldest-first order as the scalar scan.
		a0, a1, b1 := q.spans(limit)
		for _, span := range [2][2]int{{a0, a1}, {0, b1}} {
			if need0|need1 == 0 {
				break
			}
			i, end := span[0], span[1]
			for i < end && need0|need1 != 0 {
				if end-i >= 8 {
					w := binary.LittleEndian.Uint64(q.dst[i:])
					hits := w & (0x0101010101010101 * uint64(need0|need1))
					if hits == 0 {
						i += 8
						continue
					}
					i += bits.TrailingZeros64(hits) >> 3
				}
				p := &q.buf[i]
				avail := p.dests &^ busy
				if avail&(need0|need1) == 0 {
					i++
					continue
				}
				// Assign the packet to the read port that covers more of its
				// candidate outputs; break ties by packet key.
				c0, c1 := (avail & mask0).Count(), (avail & mask1).Count()
				row, rowMask, need := row0, mask0, &need0
				switch {
				case c1 > c0:
					row, rowMask, need = row1, mask1, &need1
				case c1 == c0 && c0 == 0:
					i++
					continue
				case c1 == c0 && p.key%2 == 1:
					row, rowMask, need = row1, mask1, &need1
				}
				// SetMany writes the whole contribution mask in one call,
				// updating the matrix's row validity word once.
				contrib := avail & rowMask & *need
				mat.SetMany(row, uint64(contrib), p.age, p.key, int32(in))
				*need &^= contrib
				i++
			}
		}
	}
}

// buildMatrixFree is buildMatrix for the no-busy-outputs case. With
// avail == dests for every packet, the read-port row each packet targets
// is the static assignment stored in its destination byte's high bit, so
// the two rows of a port fill from independent scans: a packet assigned
// to the other row — the dominant wasted visit in the shared scan under
// weak matchings — is skipped inside the SWAR chunk test. Cells are
// written by exactly the same oldest-packet-per-cell rule, so the matrix
// is identical to the generic path's.
func (m *model) buildMatrixFree() {
	for in := ports.In(0); in < ports.NumIn; in++ {
		q := &m.queues[in]
		limit := q.len()
		if limit > m.cfg.Window {
			limit = m.cfg.Window
		}
		traffic := m.trafficCols(in)
		a0, a1, b1 := q.spans(limit)
		m.fillRowFree(q, ports.Row(in, 0), m.rowMasks[in][0]&traffic, 0, a0, a1, b1, in)
		m.fillRowFree(q, ports.Row(in, 1), m.rowMasks[in][1]&traffic, rowBitFlag, a0, a1, b1, in)
	}
}

// fillRowFree fills one read-port row from the packets assigned to it,
// walking the ring's (at most) two contiguous runs oldest-first. A chunk
// byte is a candidate only if it intersects the still-needed columns AND
// its stored row bit matches — both resolved word-parallel, eight
// packets per load.
func (m *model) fillRowFree(q *spktRing, row int, need ports.OutMask, rowBit uint8, a0, a1, b1 int, in ports.In) {
	const (
		low7 = 0x7f7f7f7f7f7f7f7f
		high = 0x8080808080808080
	)
	mat := m.matrix
	for _, span := range [2][2]int{{a0, a1}, {0, b1}} {
		i, end := span[0], span[1]
		for i < end && need != 0 {
			if end-i >= 8 {
				w := binary.LittleEndian.Uint64(q.dst[i:])
				x := w & (0x0101010101010101 * uint64(need))
				// nz marks (in bit 7) each byte with any needed column;
				// the byte's own bit 7 is the stored row assignment.
				nz := (((x & low7) + low7) | x) & high
				cand := nz & (w ^ high)
				if rowBit != 0 {
					cand = nz & w & high
				}
				if cand == 0 {
					i += 8
					continue
				}
				i += bits.TrailingZeros64(cand) >> 3
			} else if q.dst[i]&rowBitFlag != rowBit || ports.OutMask(q.dst[i])&need == 0 {
				i++
				continue
			}
			p := &q.buf[i]
			contrib := p.dests & need
			mat.SetMany(row, uint64(contrib), p.age, p.key, int32(in))
			need &^= contrib
			i++
		}
	}
}

// drain removes granted packets from their queues, returning how many
// grants named a packet that was not queued — always zero for a legal
// matching; the checked run mode treats nonzero as a violation.
func (m *model) drain(grants []core.Grant) int {
	missing := 0
	for _, g := range grants {
		in := ports.In(g.Cell.Payload)
		if dests, ok := m.queues[in].removeKey(g.Cell.Key); ok {
			m.countDests(in, dests, -1)
			m.queued--
		} else {
			missing++
		}
	}
	return missing
}

func (m *model) totalQueued() int { return m.queued }

// Run executes the standalone model for one of the paper's algorithms.
func Run(kind core.Kind, cfg Config) Result {
	return RunArbiter(core.New(kind, sim.NewRNG(cfg.Seed^0x9747b28c)), cfg)
}

// RunChecked is Run with the arbitration oracle enabled: every cycle's
// connection matrix must satisfy the builder invariants (Matrix.Validate)
// and every grant set must be a legal matching over queued packets. The
// first violation aborts the run with an error. Arrival, occupancy, and
// arbiter RNG streams are identical to Run's, so a clean checked run
// measures exactly the same numbers.
func RunChecked(kind core.Kind, cfg Config) (Result, error) {
	return runArbiter(core.New(kind, sim.NewRNG(cfg.Seed^0x9747b28c)), cfg, true)
}

// RunArbiter executes the standalone model for a caller-constructed
// arbiter — custom PIM/iSLIP iteration counts, or user algorithms
// implementing core.Arbiter.
func RunArbiter(arb core.Arbiter, cfg Config) Result {
	res, _ := runArbiter(arb, cfg, false)
	return res
}

func runArbiter(arb core.Arbiter, cfg Config, check bool) (Result, error) {
	if cfg.Cycles <= 0 {
		panic("standalone: Cycles must be positive")
	}
	m := newModel(cfg)
	// Independent streams: arrivals and occupancy must not depend on the
	// algorithm's internal randomness, so identical seeds present identical
	// traffic to every algorithm.
	occRng := sim.NewRNG(cfg.Seed ^ 0x5bd1e995)

	matches, offered, dropped, queued := 0, 0, 0, int64(0)
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		o, d := m.arrive(int64(cycle))
		offered += o
		dropped += d
		var busy ports.OutMask
		for out := ports.Out(0); out < ports.NumOut; out++ {
			if occRng.Bernoulli(cfg.Occupancy) {
				busy = busy.With(out)
			}
		}
		m.buildMatrix(busy)
		if check {
			if err := m.matrix.Validate(); err != nil {
				return Result{}, fmt.Errorf("standalone: %s cycle %d: %w", arb.Name(), cycle, err)
			}
		}
		grants := arb.Arbitrate(m.matrix)
		if check {
			if err := core.CheckMatching(m.matrix, grants); err != nil {
				return Result{}, fmt.Errorf("standalone: %s cycle %d: %w", arb.Name(), cycle, err)
			}
		}
		if missing := m.drain(grants); check && missing > 0 {
			return Result{}, fmt.Errorf("standalone: %s cycle %d: %d grant(s) named packets not in any queue",
				arb.Name(), cycle, missing)
		}
		matches += len(grants)
		queued += int64(m.totalQueued())
	}
	return Result{
		Algorithm:       arb.Name(),
		MatchesPerCycle: float64(matches) / float64(cfg.Cycles),
		OfferedPerCycle: float64(offered-dropped) / float64(cfg.Cycles),
		DroppedPerCycle: float64(dropped) / float64(cfg.Cycles),
		MeanQueueLen:    float64(queued) / float64(cfg.Cycles),
	}, nil
}

// MCMSaturationLoad locates the load (arrival probability per input port)
// at which MCM's match rate saturates: the smallest swept load whose match
// rate reaches 98% of the match rate at full load. Figure 8's horizontal
// axis is expressed as a fraction of this load.
func MCMSaturationLoad(cfg Config) float64 {
	cfg.Load = 1.0
	plateau := Run(core.KindMCM, cfg).MatchesPerCycle
	for load := 0.05; load < 1.0; load += 0.05 {
		cfg.Load = load
		if Run(core.KindMCM, cfg).MatchesPerCycle >= 0.98*plateau {
			return load
		}
	}
	return 1.0
}

func (r Result) String() string {
	return fmt.Sprintf("%s: %.3f matches/cycle", r.Algorithm, r.MatchesPerCycle)
}

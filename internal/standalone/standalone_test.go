package standalone

import (
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
)

func quickCfg(load float64) Config {
	cfg := DefaultConfig(load)
	cfg.Cycles = 400
	return cfg
}

func TestDeterminism(t *testing.T) {
	cfg := quickCfg(0.8)
	a := Run(core.KindSPAABase, cfg)
	b := Run(core.KindSPAABase, cfg)
	if a != b {
		t.Fatalf("same seed gave different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 2
	c := Run(core.KindSPAABase, cfg)
	if a.MatchesPerCycle == c.MatchesPerCycle && a.MeanQueueLen == c.MeanQueueLen {
		t.Error("different seeds gave identical results (suspicious)")
	}
}

func TestMatchesBoundedByArrivalsAndOutputs(t *testing.T) {
	for _, kind := range []core.Kind{core.KindMCM, core.KindSPAABase, core.KindPIM1, core.KindWFABase} {
		for _, load := range []float64{0.1, 0.5, 1.0} {
			cfg := quickCfg(load)
			r := Run(kind, cfg)
			if r.MatchesPerCycle > float64(ports.NumOut) {
				t.Errorf("%v load %.1f: %.2f matches/cycle exceeds 7 outputs", kind, load, r.MatchesPerCycle)
			}
			// Long-run matches cannot exceed accepted arrivals (conservation).
			if r.MatchesPerCycle > r.OfferedPerCycle+0.5 {
				t.Errorf("%v load %.1f: matches %.2f exceed offered %.2f", kind, load, r.MatchesPerCycle, r.OfferedPerCycle)
			}
		}
	}
}

func TestLowLoadAllAlgorithmsEqual(t *testing.T) {
	// With almost no contention every algorithm matches essentially every
	// arrival; the algorithms must agree closely.
	var rates []float64
	for _, kind := range []core.Kind{core.KindMCM, core.KindWFABase, core.KindPIM1, core.KindSPAABase} {
		cfg := quickCfg(0.05)
		cfg.Cycles = 2000
		r := Run(kind, cfg)
		rates = append(rates, r.MatchesPerCycle)
		if r.MatchesPerCycle < 0.8*r.OfferedPerCycle {
			t.Errorf("%v at low load matched %.3f of %.3f offered", kind, r.MatchesPerCycle, r.OfferedPerCycle)
		}
	}
	for i := 1; i < len(rates); i++ {
		if diff := rates[i] - rates[0]; diff > 0.05 || diff < -0.05 {
			t.Errorf("low-load rates diverge: %v", rates)
		}
	}
}

// TestFigure8Ordering checks the saturation-load ordering of Figure 8:
// MCM ~ WFA ~ PIM > PIM1 > SPAA, with the paper's approximate gaps
// (MCM ~ +36% over SPAA, PIM1 ~ +14% over SPAA).
func TestFigure8Ordering(t *testing.T) {
	run := func(kind core.Kind) float64 {
		cfg := DefaultConfig(1.0)
		return Run(kind, cfg).MatchesPerCycle
	}
	mcm := run(core.KindMCM)
	wfa := run(core.KindWFABase)
	pim := run(core.KindPIM)
	pim1 := run(core.KindPIM1)
	spaa := run(core.KindSPAABase)

	// MCM, WFA and full PIM are nearly identical in the paper ("the number
	// of matches found by WFA and PIM are almost close to that found by
	// MCM"); in a steady-state run their queue states evolve independently,
	// so allow a small band around equality.
	if diff := mcm - wfa; diff > 0.35 || diff < -0.35 {
		t.Fatalf("MCM and WFA should be nearly equal: MCM=%.2f WFA=%.2f", mcm, wfa)
	}
	if diff := mcm - pim; diff > 0.35 || diff < -0.35 {
		t.Fatalf("MCM and PIM should be nearly equal: MCM=%.2f PIM=%.2f", mcm, pim)
	}
	if !(mcm > pim1+0.3 && wfa > pim1+0.3 && pim > pim1+0.3 && pim1 > spaa+0.3) {
		t.Fatalf("ordering violated: MCM=%.2f WFA=%.2f PIM=%.2f PIM1=%.2f SPAA=%.2f",
			mcm, wfa, pim, pim1, spaa)
	}
	if ratio := mcm / spaa; ratio < 1.15 || ratio > 1.65 {
		t.Errorf("MCM/SPAA = %.2f, paper reports ~1.36", ratio)
	}
	if ratio := pim1 / spaa; ratio < 1.02 || ratio > 1.35 {
		t.Errorf("PIM1/SPAA = %.2f, paper reports ~1.14", ratio)
	}
	// MCM should be close to the seven-output maximum at saturation.
	if mcm < 6.0 {
		t.Errorf("MCM at saturation = %.2f, expected close to 7", mcm)
	}
}

// TestFigure9OccupancyConvergence checks that the algorithms' matching
// capabilities converge as output-port occupancy rises, disappearing at
// 75% occupancy (Figure 9).
func TestFigure9OccupancyConvergence(t *testing.T) {
	gap := func(occ float64) float64 {
		cfg := DefaultConfig(1.0)
		cfg.Occupancy = occ
		mcm := Run(core.KindMCM, cfg).MatchesPerCycle
		spaa := Run(core.KindSPAABase, cfg).MatchesPerCycle
		return mcm - spaa
	}
	g0 := gap(0)
	g50 := gap(0.5)
	g75 := gap(0.75)
	if !(g0 > g50 && g50 > g75-0.1) {
		t.Fatalf("gaps not shrinking with occupancy: %.2f, %.2f, %.2f", g0, g50, g75)
	}
	if g75 > 0.45 {
		t.Errorf("MCM-SPAA gap at 75%% occupancy = %.2f, paper says it disappears", g75)
	}
}

func TestOccupancyReducesThroughput(t *testing.T) {
	cfg := DefaultConfig(1.0)
	cfg.Cycles = 500
	free := Run(core.KindMCM, cfg)
	cfg.Occupancy = 0.75
	busy := Run(core.KindMCM, cfg)
	if busy.MatchesPerCycle >= free.MatchesPerCycle {
		t.Fatalf("75%% occupancy did not reduce matches: %.2f vs %.2f",
			busy.MatchesPerCycle, free.MatchesPerCycle)
	}
	// With 75% of ports busy, roughly a quarter of capacity remains.
	if busy.MatchesPerCycle > 0.45*free.MatchesPerCycle {
		t.Errorf("busy matches %.2f look too high vs free %.2f", busy.MatchesPerCycle, free.MatchesPerCycle)
	}
}

func TestQueuesDrainAtModerateLoad(t *testing.T) {
	cfg := quickCfg(0.4)
	cfg.Cycles = 3000
	r := Run(core.KindSPAABase, cfg)
	// Offered ~3.2 packets/cycle across 8 ports; SPAA sustains ~4.9, so
	// queues must stay short and nothing should be dropped.
	if r.DroppedPerCycle > 0 {
		t.Errorf("drops at moderate load: %.3f/cycle", r.DroppedPerCycle)
	}
	if r.MeanQueueLen > 60 {
		t.Errorf("mean queue length %.1f at load 0.4 — not draining", r.MeanQueueLen)
	}
}

func TestMCMSaturationLoadReasonable(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.Cycles = 400
	sat := MCMSaturationLoad(cfg)
	if sat < 0.3 || sat > 1.0 {
		t.Fatalf("MCM saturation load = %.2f, expected within (0.3, 1.0]", sat)
	}
}

func TestWindowZeroPanicsAvoided(t *testing.T) {
	// A window of 1 is the degenerate oldest-only picker; it must still run.
	cfg := quickCfg(0.9)
	cfg.Window = 1
	r := Run(core.KindSPAABase, cfg)
	if r.MatchesPerCycle <= 0 {
		t.Error("window=1 run produced no matches")
	}
}

func TestRunPanicsOnZeroCycles(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run with Cycles=0 should panic")
		}
	}()
	Run(core.KindMCM, Config{})
}

func TestMatrixInvariantsDuringRun(t *testing.T) {
	// Drive the model manually and validate builder invariants each cycle.
	cfg := quickCfg(1.0)
	m := newModel(cfg)
	for cycle := int64(0); cycle < 200; cycle++ {
		m.arrive(cycle)
		m.buildMatrix(0)
		if err := m.matrix.Validate(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		// Cells must respect the connection matrix.
		for r := 0; r < m.matrix.Rows; r++ {
			for c := 0; c < m.matrix.Cols; c++ {
				if m.matrix.At(r, c).Valid && !cfg.Conn.Connected(r, ports.Out(c)) {
					t.Fatalf("cell (%d,%d) set but crossbar not connected", r, c)
				}
			}
		}
		grants := core.New(core.KindMCM, sim.NewRNG(1)).Arbitrate(m.matrix)
		m.drain(grants)
	}
}

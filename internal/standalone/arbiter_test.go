package standalone

import (
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/sim"
)

func TestRunArbiterMatchesRunForSameKind(t *testing.T) {
	cfg := DefaultConfig(0.8)
	cfg.Cycles = 300
	viaKind := Run(core.KindWFABase, cfg)
	viaArbiter := RunArbiter(core.NewWFA(), cfg)
	if viaKind.MatchesPerCycle != viaArbiter.MatchesPerCycle {
		t.Fatalf("Run=%v RunArbiter=%v for identical WFA", viaKind.MatchesPerCycle, viaArbiter.MatchesPerCycle)
	}
}

func TestISLIPInStandaloneModel(t *testing.T) {
	// The paper (§3.1): iSLIP's matching capabilities are similar to PIM's.
	cfg := DefaultConfig(1.0)
	cfg.Cycles = 600
	islip := RunArbiter(core.NewISLIP(core.PIMFullIterations), cfg).MatchesPerCycle
	pim := Run(core.KindPIM, cfg).MatchesPerCycle
	if ratio := islip / pim; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("iSLIP/PIM standalone ratio = %.3f (iSLIP %.2f, PIM %.2f)", ratio, islip, pim)
	}
	// And one iteration of iSLIP behaves like PIM1 territory: clearly below
	// converged PIM, clearly above SPAA.
	islip1 := RunArbiter(core.NewISLIP(1), cfg).MatchesPerCycle
	spaa := Run(core.KindSPAABase, cfg).MatchesPerCycle
	if !(islip1 < pim && islip1 > spaa) {
		t.Fatalf("iSLIP(1)=%.2f not between SPAA=%.2f and PIM=%.2f", islip1, spaa, pim)
	}
}

func TestPIMIterationConvergence(t *testing.T) {
	// Matches must be non-decreasing in iteration count (statistically) and
	// converge by log2 N = 4.
	cfg := DefaultConfig(1.0)
	cfg.Cycles = 600
	get := func(iters int) float64 {
		return RunArbiter(core.NewPIM(iters, sim.NewRNG(cfg.Seed)), cfg).MatchesPerCycle
	}
	p1, p2, p4, p8 := get(1), get(2), get(4), get(8)
	if !(p2 > p1) {
		t.Errorf("PIM2 %.2f not above PIM1 %.2f", p2, p1)
	}
	if diff := p8 - p4; diff > 0.15 || diff < -0.15 {
		t.Errorf("PIM converged poorly: PIM4=%.2f PIM8=%.2f", p4, p8)
	}
}

package core

// WFAPlain is the original, non-wrapped Wave-Front Arbiter of Tamir and
// Chi: a single wave sweeps the matrix from the top-left arbitration cell,
// evaluating plain diagonals i+j = 0, 1, ... in order. Without wrapping
// (or a rotated starting cell) the top-left corner holds permanent
// priority, which is why Tamir and Chi rotate the start and why the paper
// bases its timing on the Wrapped WFA, "which provides matching
// performance similar to that of WFA's, but executes faster in hardware by
// starting multiple wavefronts in parallel" (§3.2).
//
// WFAPlain exists for the fairness ablation and tests; it is not one of
// the paper's measured configurations.
type WFAPlain struct {
	rowUsed []bool
	colUsed []bool
	grants  []Grant // reused across calls
}

// NewWFAPlain returns the fixed-priority, non-wrapped wave-front arbiter.
func NewWFAPlain() *WFAPlain { return &WFAPlain{} }

// Name implements Arbiter.
func (a *WFAPlain) Name() string { return "WFA-plain" }

// Arbitrate implements Arbiter.
func (a *WFAPlain) Arbitrate(m *Matrix) []Grant {
	if cap(a.rowUsed) < m.Rows {
		a.rowUsed = make([]bool, m.Rows)
	}
	if cap(a.colUsed) < m.Cols {
		a.colUsed = make([]bool, m.Cols)
	}
	rowUsed := a.rowUsed[:m.Rows]
	colUsed := a.colUsed[:m.Cols]
	for i := range rowUsed {
		rowUsed[i] = false
	}
	for i := range colUsed {
		colUsed[i] = false
	}
	grants := a.grants[:0]
	for d := 0; d <= m.Rows+m.Cols-2; d++ {
		// Plain diagonal d: cells (i, d-i). Conflict-free within the
		// diagonal, strictly ordered across diagonals.
		for i := 0; i < m.Rows; i++ {
			j := d - i
			if j < 0 || j >= m.Cols {
				continue
			}
			if rowUsed[i] || colUsed[j] || !m.At(i, j).Valid {
				continue
			}
			rowUsed[i] = true
			colUsed[j] = true
			grants = append(grants, Grant{Row: i, Col: j, Cell: m.At(i, j)})
		}
	}
	a.grants = grants
	return grants
}

package core

import "math/bits"

// WFAPlain is the original, non-wrapped Wave-Front Arbiter of Tamir and
// Chi: a single wave sweeps the matrix from the top-left arbitration cell,
// evaluating plain diagonals i+j = 0, 1, ... in order. Without wrapping
// (or a rotated starting cell) the top-left corner holds permanent
// priority, which is why Tamir and Chi rotate the start and why the paper
// bases its timing on the Wrapped WFA, "which provides matching
// performance similar to that of WFA's, but executes faster in hardware by
// starting multiple wavefronts in parallel" (§3.2).
//
// WFAPlain exists for the fairness ablation and tests; it is not one of
// the paper's measured configurations. It uses the same per-diagonal
// row-word bucketing as the wrapped kernel (see wfa.go), minus the wrap:
// plain diagonal d = i + j holds at most one cell per row.
type WFAPlain struct {
	diag   []uint64
	grants []Grant // reused across calls
}

// NewWFAPlain returns the fixed-priority, non-wrapped wave-front arbiter.
func NewWFAPlain() *WFAPlain { return &WFAPlain{} }

// Name implements Arbiter.
func (a *WFAPlain) Name() string { return "WFA-plain" }

// Arbitrate implements Arbiter.
func (a *WFAPlain) Arbitrate(m *Matrix) []Grant {
	nd := m.Rows + m.Cols - 1
	if cap(a.diag) < nd {
		a.diag = make([]uint64, nd)
	}
	diag := a.diag[:nd]
	for d := range diag {
		diag[d] = 0
	}
	for i := 0; i < m.Rows; i++ {
		for w := m.rowValid[i]; w != 0; w &= w - 1 {
			diag[i+bits.TrailingZeros64(w)] |= 1 << uint(i)
		}
	}

	rowFree := rowsAll(m.Rows)
	colFree := rowsAll(m.Cols)
	grants := a.grants[:0]
	for d := 0; d < nd; d++ {
		// Plain diagonal d: cells (i, d-i). Conflict-free within the
		// diagonal, strictly ordered across diagonals.
		for cand := diag[d] & rowFree; cand != 0; cand &= cand - 1 {
			i := bits.TrailingZeros64(cand)
			j := d - i
			if colFree&(1<<uint(j)) == 0 {
				continue
			}
			rowFree &^= 1 << uint(i)
			colFree &^= 1 << uint(j)
			grants = append(grants, Grant{Row: i, Col: j, Cell: m.At(i, j)})
		}
	}
	a.grants = grants
	return grants
}

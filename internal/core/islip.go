package core

// ISLIP is McKeown's iSLIP scheduler, the hardware-implementable
// derivative of PIM the paper cites in §3.1 ("researchers have proposed
// variations of PIM, such as iSLIP, that can be implemented in hardware,
// but their matching capabilities are similar to PIM's"). It replaces
// PIM's random grant and accept steps with rotating round-robin pointers:
//
//	Grant:  each unmatched output grants the first requesting input at or
//	        after its grant pointer.
//	Accept: each input accepts the first granting output at or after its
//	        accept pointer.
//	Pointers advance one position past their choice only when the grant is
//	        accepted, and only in the first iteration — the property that
//	        desynchronizes the pointers and gives iSLIP its 100% throughput
//	        on uniform traffic.
//
// iSLIP is not part of the paper's figures; it is included as the natural
// extension point the paper names, and the standalone model can run it for
// comparison.
type ISLIP struct {
	iterations int
	grantPtr   []int // per column
	acceptPtr  []int // per row
	rowMask    []uint64
	matchRow   []int
	matchCol   []int
	grants     []Grant // reused across calls
}

// NewISLIP returns an iSLIP scheduler with the given iteration count.
func NewISLIP(iterations int) *ISLIP {
	if iterations < 1 {
		panic("core: iSLIP needs at least one iteration")
	}
	return &ISLIP{iterations: iterations}
}

// Name implements Arbiter.
func (a *ISLIP) Name() string { return "iSLIP" }

// Arbitrate implements Arbiter.
func (a *ISLIP) Arbitrate(m *Matrix) []Grant {
	if cap(a.matchRow) < m.Rows {
		a.matchRow = make([]int, m.Rows)
		a.rowMask = make([]uint64, m.Rows)
		a.acceptPtr = make([]int, m.Rows)
	}
	if cap(a.matchCol) < m.Cols {
		a.matchCol = make([]int, m.Cols)
		a.grantPtr = make([]int, m.Cols)
	}
	matchRow := a.matchRow[:m.Rows]
	matchCol := a.matchCol[:m.Cols]
	rowMask := a.rowMask[:m.Rows]
	for i := range matchRow {
		matchRow[i] = -1
	}
	for i := range matchCol {
		matchCol[i] = -1
	}

	for it := 0; it < a.iterations; it++ {
		for r := range rowMask {
			rowMask[r] = 0
		}
		// Grant: round-robin from the column's pointer.
		anyGrant := false
		for c := 0; c < m.Cols; c++ {
			if matchCol[c] != -1 {
				continue
			}
			for k := 0; k < m.Rows; k++ {
				r := (a.grantPtr[c] + k) % m.Rows
				if matchRow[r] == -1 && m.At(r, c).Valid {
					rowMask[r] |= 1 << uint(c)
					anyGrant = true
					break
				}
			}
		}
		if !anyGrant {
			break
		}
		// Accept: round-robin from the row's pointer; pointers move only on
		// acceptance and only in the first iteration.
		for r := 0; r < m.Rows; r++ {
			if rowMask[r] == 0 {
				continue
			}
			for k := 0; k < m.Cols; k++ {
				c := (a.acceptPtr[r] + k) % m.Cols
				if rowMask[r]&(1<<uint(c)) == 0 {
					continue
				}
				matchRow[r] = c
				matchCol[c] = r
				if it == 0 {
					a.acceptPtr[r] = (c + 1) % m.Cols
					a.grantPtr[c] = (r + 1) % m.Rows
				}
				break
			}
		}
	}

	grants := a.grants[:0]
	for r := 0; r < m.Rows; r++ {
		if c := matchRow[r]; c != -1 {
			grants = append(grants, Grant{Row: r, Col: c, Cell: m.At(r, c)})
		}
	}
	a.grants = grants
	return grants
}

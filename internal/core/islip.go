package core

import "math/bits"

// ISLIP is McKeown's iSLIP scheduler, the hardware-implementable
// derivative of PIM the paper cites in §3.1 ("researchers have proposed
// variations of PIM, such as iSLIP, that can be implemented in hardware,
// but their matching capabilities are similar to PIM's"). It replaces
// PIM's random grant and accept steps with rotating round-robin pointers:
//
//	Grant:  each unmatched output grants the first requesting input at or
//	        after its grant pointer.
//	Accept: each input accepts the first granting output at or after its
//	        accept pointer.
//	Pointers advance one position past their choice only when the grant is
//	        accepted, and only in the first iteration — the property that
//	        desynchronizes the pointers and gives iSLIP its 100% throughput
//	        on uniform traffic.
//
// iSLIP is not part of the paper's figures; it is included as the natural
// extension point the paper names, and the standalone model can run it for
// comparison.
//
// Bitplane kernel: "first set bit at or after the pointer" is a rotate of
// the request word by the pointer followed by TrailingZeros64 — the
// software form of the programmable-priority encoder in a hardware
// round-robin arbiter — replacing the scalar wrap-around scan.
type ISLIP struct {
	iterations int
	grantPtr   []int // per column
	acceptPtr  []int // per row
	rowMask    []uint64
	matchRow   []int
	grants     []Grant // reused across calls
}

// NewISLIP returns an iSLIP scheduler with the given iteration count.
func NewISLIP(iterations int) *ISLIP {
	if iterations < 1 {
		panic("core: iSLIP needs at least one iteration")
	}
	return &ISLIP{iterations: iterations}
}

// Name implements Arbiter.
func (a *ISLIP) Name() string { return "iSLIP" }

// firstFrom returns the first set bit of w at or cyclically after ptr
// within an n-bit word; w must be nonzero with no bits at or above n.
func firstFrom(w uint64, ptr, n int) int {
	ptr %= n
	if ptr != 0 {
		w = ((w >> uint(ptr)) | (w << uint(n-ptr))) & rowsAll(n)
	}
	pos := ptr + bits.TrailingZeros64(w)
	if pos >= n {
		pos -= n
	}
	return pos
}

// Arbitrate implements Arbiter.
func (a *ISLIP) Arbitrate(m *Matrix) []Grant {
	if cap(a.matchRow) < m.Rows {
		a.matchRow = make([]int, m.Rows)
		a.rowMask = make([]uint64, m.Rows)
		a.acceptPtr = make([]int, m.Rows)
	}
	if cap(a.grantPtr) < m.Cols {
		a.grantPtr = make([]int, m.Cols)
	}
	matchRow := a.matchRow[:m.Rows]
	rowMask := a.rowMask[:m.Rows] // all-zero between calls (see accept step)
	grantPtr := a.grantPtr[:m.Cols]
	acceptPtr := a.acceptPtr[:m.Rows]
	unmatchedRows := rowsAll(m.Rows)
	var matchedCols uint64

	for it := 0; it < a.iterations; it++ {
		// Grant: the first unmatched requester at or after the column's
		// rotating pointer.
		var grantedRows uint64
		for c := 0; c < m.Cols; c++ {
			if matchedCols&(1<<uint(c)) != 0 {
				continue
			}
			cand := m.colReq[c] & unmatchedRows
			if cand == 0 {
				continue
			}
			r := firstFrom(cand, grantPtr[c], m.Rows)
			rowMask[r] |= 1 << uint(c)
			grantedRows |= 1 << uint(r)
		}
		if grantedRows == 0 {
			break
		}
		// Accept: the first granting output at or after the row's pointer;
		// pointers move only on acceptance and only in the first iteration.
		// Every granted row accepts, so rowMask returns to zero.
		for g := grantedRows; g != 0; g &= g - 1 {
			r := bits.TrailingZeros64(g)
			c := firstFrom(rowMask[r], acceptPtr[r], m.Cols)
			rowMask[r] = 0
			matchRow[r] = c
			matchedCols |= 1 << uint(c)
			unmatchedRows &^= 1 << uint(r)
			if it == 0 {
				acceptPtr[r] = (c + 1) % m.Cols
				grantPtr[c] = (r + 1) % m.Rows
			}
		}
	}

	grants := a.grants[:0]
	for g := rowsAll(m.Rows) &^ unmatchedRows; g != 0; g &= g - 1 {
		r := bits.TrailingZeros64(g)
		grants = append(grants, Grant{Row: r, Col: matchRow[r], Cell: m.At(r, matchRow[r])})
	}
	a.grants = grants
	return grants
}

package core

import (
	"fmt"
	"strings"

	"alpha21364/internal/sim"
)

// Kind names an arbitration algorithm configuration used in the paper's
// evaluation.
type Kind uint8

const (
	KindMCM Kind = iota
	KindPIM
	KindPIM1
	KindWFABase
	KindWFARotary
	KindSPAABase
	KindSPAARotary
	KindOPF
	NumKinds
)

var kindNames = [NumKinds]string{
	"MCM", "PIM", "PIM1", "WFA-base", "WFA-rotary", "SPAA-base", "SPAA-rotary", "OPF",
}

func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindNames returns every algorithm name in declaration order.
func KindNames() []string {
	return append([]string(nil), kindNames[:]...)
}

// ParseKind resolves an algorithm name (as printed by String), case-
// insensitively; "WFA" and "SPAA" resolve to the base variants.
func ParseKind(name string) (Kind, error) {
	key := strings.TrimSpace(name)
	switch {
	case strings.EqualFold(key, "WFA"):
		return KindWFABase, nil
	case strings.EqualFold(key, "SPAA"):
		return KindSPAABase, nil
	}
	for k := Kind(0); k < NumKinds; k++ {
		if strings.EqualFold(kindNames[k], key) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown arbitration algorithm %q (valid: %s)",
		name, strings.Join(kindNames[:], ", "))
}

// Rotary reports whether the kind applies the Rotary Rule.
func (k Kind) Rotary() bool { return k == KindWFARotary || k == KindSPAARotary }

// PIMFullIterations is the iteration count for full PIM on the 21364: PIM
// usually converges within log2(N) iterations and the router has N = 16
// input port arbiters (paper §3.1).
const PIMFullIterations = 4

// New constructs the arbiter for a kind. The RNG is used by PIM's random
// grant/accept steps; deterministic algorithms ignore it.
func New(k Kind, rng *sim.RNG) Arbiter {
	switch k {
	case KindMCM:
		return NewMCM()
	case KindPIM:
		return NewPIM(PIMFullIterations, rng)
	case KindPIM1:
		return NewPIM1(rng)
	case KindWFABase:
		return NewWFA()
	case KindWFARotary:
		return NewWFARotary()
	case KindSPAABase:
		return NewSPAA()
	case KindSPAARotary:
		return NewSPAARotary()
	case KindOPF:
		return NewOPF()
	}
	panic(fmt.Sprintf("core: invalid kind %d", k))
}

// Timing parameters (paper §3.1-3.3): arbitration latency in router cycles
// from the LA (input arbitration) stage through the GA (output arbitration)
// stage, and the initiation interval between successive input-port
// arbitration starts.
//
//   - SPAA: 3 cycles (LA, RE, GA), new arbitration every cycle.
//   - PIM1 and WFA: 4 cycles, of which the fourth (wire delay to the output
//     ports) is pipelined, and a new arbitration only every 3 cycles.
type Timing struct {
	ArbCycles    int // LA -> GA latency in router cycles
	InitInterval int // cycles between successive arbitration starts
}

// TimingOf returns the paper's timing for a kind (standalone-only
// algorithms get SPAA-like placeholders; the standalone model runs every
// algorithm in one cycle and ignores this).
func TimingOf(k Kind) Timing {
	switch k {
	case KindPIM, KindPIM1, KindWFABase, KindWFARotary:
		return Timing{ArbCycles: 4, InitInterval: 3}
	default:
		return Timing{ArbCycles: 3, InitInterval: 1}
	}
}

package core

import "math/bits"

// SPAA is the Simple Pipelined Arbitration Algorithm implemented in the
// Alpha 21364 router — the paper's contribution (§3.3). Its three steps:
//
//  1. Nominate: each input port arbiter nominates one packet to exactly one
//     output port arbiter — the oldest packet satisfying the basic
//     constraints. Nominating to a single output is what removes the
//     input/output interaction that makes PIM and WFA hard to pipeline, and
//     what allows the speculative buffer read.
//  2. Grant: an output port arbiter receiving multiple requests selects the
//     least-recently selected input port arbiter (or, under the Rotary
//     Rule, a network input port arbiter first) and informs the input
//     arbiters.
//  3. Reset: input arbiters free the unselected packets for re-nomination.
//
// Like OPF in the paper's Figure 2, SPAA admits arbitration collisions —
// several inputs may nominate the same output and all but one lose — which
// is why its standalone matching capability trails PIM and WFA when many
// output ports are free.
//
// Nomination granularity: each *input port* makes one nomination per cycle
// through one of its two buffer read ports, alternating between them. This
// matches Figure 2 (one candidate per input port) and reproduces the
// paper's measured matching gap (MCM ≈ +36% over SPAA at saturation). The
// second read port exists so that two multi-cycle packet reads of one
// input buffer can be in flight at once, not to double the per-cycle
// nomination rate.
//
// Bitplane kernel: a port's oldest-packet scan walks PortRowMask x
// RowMask words with TrailingZeros64, visiting only valid cells instead of
// the port's whole Rows x Cols slab, and the adaptive second-direction
// probe iterates the row's remaining validity word.
type SPAA struct {
	policy *GrantPolicy
	// colPref[row] rotates the column choice when a packet could be
	// nominated to either of its two adaptive directions.
	colPref []int

	// scratch, reused across calls so steady-state arbitration does not
	// allocate
	nomRow  []int
	nomNet  []bool
	nomCell []Cell
	noms    []Grant
	grants  []Grant
}

// NewSPAA returns SPAA with the least-recently-selected grant policy.
func NewSPAA() *SPAA { return &SPAA{} }

// NewSPAARotary returns SPAA with the Rotary Rule grant policy.
func NewSPAARotary() *SPAA {
	s := NewSPAA()
	s.policy = NewGrantPolicy(RouterRows, RouterCols, true)
	return s
}

// Name implements Arbiter.
func (a *SPAA) Name() string {
	if a.policy != nil && a.policy.Rotary() {
		return "SPAA-rotary"
	}
	return "SPAA-base"
}

// Policy exposes the grant policy so the timing router can reuse it for
// its pipelined GA stage.
func (a *SPAA) Policy(rows, cols int) *GrantPolicy {
	if a.policy == nil {
		a.policy = NewGrantPolicy(rows, cols, false)
	}
	return a.policy
}

// Nominate runs SPAA step 1 on the matrix: each input port nominates its
// oldest candidate packet — found across both of its read-port rows, since
// the pair shares one buffer and synchronizes — to a single output port.
// Exported separately because the timing router pipelines nomination and
// grant across cycles.
func (a *SPAA) Nominate(m *Matrix) []Grant {
	if len(a.colPref) < m.Rows {
		a.colPref = make([]int, m.Rows)
	}

	noms := a.noms[:0]
	for p := 0; p < m.Ports(); p++ {
		row, col, ok := a.nominatePort(m, p)
		if ok {
			noms = append(noms, Grant{Row: row, Col: col, Cell: m.At(row, col)})
		}
	}
	a.noms = noms
	return noms
}

// nominatePort picks the single nomination for one input port: the oldest
// packet across the port's read-port rows; if that packet may use two
// output ports, the choice rotates between them.
func (a *SPAA) nominatePort(m *Matrix, port int) (row, col int, ok bool) {
	bestRow, bestCol := -1, -1
	var best Cell
	for rm := m.portRows[port]; rm != 0; rm &= rm - 1 {
		r := bits.TrailingZeros64(rm)
		base := r * m.Cols
		for cm := m.rowValid[r]; cm != 0; cm &= cm - 1 {
			c := bits.TrailingZeros64(cm)
			cell := m.cells[base+c]
			if bestRow == -1 || cell.Age < best.Age ||
				(cell.Age == best.Age && cell.Key < best.Key) {
				bestRow, bestCol, best = r, c, cell
			}
		}
	}
	if bestRow == -1 {
		return 0, 0, false
	}
	// The oldest packet may appear in one more column of its row (adaptive
	// routing allows at most two); alternate between the two choices.
	otherCol := -1
	base := bestRow * m.Cols
	for cm := m.rowValid[bestRow] &^ (1 << uint(bestCol)); cm != 0; cm &= cm - 1 {
		c := bits.TrailingZeros64(cm)
		if m.cells[base+c].Key == best.Key {
			otherCol = c
			break
		}
	}
	if otherCol != -1 {
		a.colPref[bestRow]++
		if a.colPref[bestRow]%2 == 1 {
			bestCol = otherCol
		}
	}
	return bestRow, bestCol, true
}

// Grant runs SPAA step 2: each output port arbiter selects among the
// nominations for its column using the grant policy. The unselected
// nominations are simply not returned (step 3, Reset, is the caller's
// concern: in the standalone model the packets stay queued; in the timing
// router their nomination lock is cleared).
func (a *SPAA) Grant(m *Matrix, noms []Grant) []Grant {
	policy := a.Policy(m.Rows, m.Cols)
	var nomCols uint64
	for i := range noms {
		nomCols |= 1 << uint(noms[i].Col)
	}
	grants := a.grants[:0]
	for w := nomCols; w != 0; w &= w - 1 {
		c := bits.TrailingZeros64(w)
		a.nomRow = a.nomRow[:0]
		a.nomNet = a.nomNet[:0]
		a.nomCell = a.nomCell[:0]
		for _, n := range noms {
			if n.Col == c {
				a.nomRow = append(a.nomRow, n.Row)
				a.nomNet = append(a.nomNet, m.netRows&(1<<uint(n.Row)) != 0)
				a.nomCell = append(a.nomCell, n.Cell)
			}
		}
		i := policy.Select(c, a.nomRow, a.nomNet)
		grants = append(grants, Grant{Row: a.nomRow[i], Col: c, Cell: a.nomCell[i]})
	}
	a.grants = grants
	return grants
}

// Arbitrate implements Arbiter: one full nominate/grant pass, as executed
// by the standalone model where every algorithm runs in a single cycle.
func (a *SPAA) Arbitrate(m *Matrix) []Grant {
	return a.Grant(m, a.Nominate(m))
}

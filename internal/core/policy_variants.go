package core

import "alpha21364/internal/sim"

// The paper's §3 lists the output-port selection policies routers have
// used: "random [METRO], round-robin [Cray T3E], least-recently selected
// [IBM Vulcan], some kind of a priority chain [Torus Routing Chip], or the
// Rotary Rule". SPAA ships with least-recently selected; these variants
// let the design space be explored (see BenchmarkAblationGrantPolicy).

// SelectPolicy picks the winning row for an output column among candidate
// rows. Implementations carry per-column fairness state.
type SelectPolicy interface {
	Name() string
	// Select returns the index into rows of the winner. network[i] reports
	// whether rows[i] is fed by a network input port (used by the Rotary
	// Rule). rows is never empty.
	Select(col int, rows []int, network []bool) int
}

// LRS adapts GrantPolicy to SelectPolicy (the 21364's shipping policy).
type lrsPolicy struct{ p *GrantPolicy }

// NewLRSPolicy returns the least-recently-selected policy; with rotary
// set, network rows take absolute priority.
func NewLRSPolicy(rows, cols int, rotary bool) SelectPolicy {
	return lrsPolicy{NewGrantPolicy(rows, cols, rotary)}
}

func (l lrsPolicy) Name() string {
	if l.p.Rotary() {
		return "rotary-lrs"
	}
	return "lrs"
}

func (l lrsPolicy) Select(col int, rows []int, network []bool) int {
	return l.p.Select(col, rows, network)
}

// RoundRobin grants the first requesting row at or after a per-column
// rotating pointer, as in the Cray T3E.
type RoundRobin struct {
	rows int
	ptr  []int
}

// NewRoundRobinPolicy returns a round-robin policy over a rows x cols
// matrix.
func NewRoundRobinPolicy(rows, cols int) *RoundRobin {
	return &RoundRobin{rows: rows, ptr: make([]int, cols)}
}

// Name implements SelectPolicy.
func (rr *RoundRobin) Name() string { return "round-robin" }

// Select implements SelectPolicy.
func (rr *RoundRobin) Select(col int, rows []int, network []bool) int {
	if len(rows) == 0 {
		panic("core: Select with no candidates")
	}
	best, bestDist := 0, rr.rows
	for i, r := range rows {
		d := (r - rr.ptr[col] + rr.rows) % rr.rows
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	rr.ptr[col] = (rows[best] + 1) % rr.rows
	return best
}

// Random grants a uniformly random requesting row, as in the MIT METRO
// router (and PIM's grant step).
type Random struct {
	rng *sim.RNG
}

// NewRandomPolicy returns a random grant policy.
func NewRandomPolicy(rng *sim.RNG) *Random { return &Random{rng: rng} }

// Name implements SelectPolicy.
func (rd *Random) Name() string { return "random" }

// Select implements SelectPolicy.
func (rd *Random) Select(col int, rows []int, network []bool) int {
	if len(rows) == 0 {
		panic("core: Select with no candidates")
	}
	return rd.rng.Intn(len(rows))
}

// PriorityChain grants the lowest-numbered requesting row, the fixed
// priority chain of the Torus Routing Chip. It is deliberately unfair.
type PriorityChain struct{}

// NewPriorityChainPolicy returns the fixed-priority policy.
func NewPriorityChainPolicy() PriorityChain { return PriorityChain{} }

// Name implements SelectPolicy.
func (PriorityChain) Name() string { return "priority-chain" }

// Select implements SelectPolicy.
func (PriorityChain) Select(col int, rows []int, network []bool) int {
	if len(rows) == 0 {
		panic("core: Select with no candidates")
	}
	best := 0
	for i, r := range rows {
		if r < rows[best] {
			best = i
		}
	}
	return best
}

package core

import (
	"math/bits"

	"alpha21364/internal/sim"
)

// The paper's §3 lists the output-port selection policies routers have
// used: "random [METRO], round-robin [Cray T3E], least-recently selected
// [IBM Vulcan], some kind of a priority chain [Torus Routing Chip], or the
// Rotary Rule". SPAA ships with least-recently selected; these variants
// let the design space be explored (see BenchmarkAblationGrantPolicy).
// Like the arbitration kernels, the rotating variants resolve their winner
// on a candidate bitmask — a rotate plus TrailingZeros64 — rather than a
// distance scan; reference.go retains the scalar forms as the differential
// oracle.

// SelectPolicy picks the winning row for an output column among candidate
// rows. Implementations carry per-column fairness state.
type SelectPolicy interface {
	Name() string
	// Select returns the index into rows of the winner. network[i] reports
	// whether rows[i] is fed by a network input port (used by the Rotary
	// Rule). rows is never empty.
	Select(col int, rows []int, network []bool) int
}

// LRS adapts GrantPolicy to SelectPolicy (the 21364's shipping policy).
type lrsPolicy struct{ p *GrantPolicy }

// NewLRSPolicy returns the least-recently-selected policy; with rotary
// set, network rows take absolute priority.
func NewLRSPolicy(rows, cols int, rotary bool) SelectPolicy {
	return lrsPolicy{NewGrantPolicy(rows, cols, rotary)}
}

func (l lrsPolicy) Name() string {
	if l.p.Rotary() {
		return "rotary-lrs"
	}
	return "lrs"
}

func (l lrsPolicy) Select(col int, rows []int, network []bool) int {
	return l.p.Select(col, rows, network)
}

// RoundRobin grants the first requesting row at or after a per-column
// rotating pointer, as in the Cray T3E.
type RoundRobin struct {
	rows int
	ptr  []int
}

// NewRoundRobinPolicy returns a round-robin policy over a rows x cols
// matrix.
func NewRoundRobinPolicy(rows, cols int) *RoundRobin {
	return &RoundRobin{rows: rows, ptr: make([]int, cols)}
}

// Name implements SelectPolicy.
func (rr *RoundRobin) Name() string { return "round-robin" }

// Select implements SelectPolicy. The candidate rows (reduced mod the
// matrix height, matching the scalar distance arithmetic) form a bitmask;
// the winner is the first set bit at or cyclically after the pointer.
func (rr *RoundRobin) Select(col int, rows []int, network []bool) int {
	if len(rows) == 0 {
		panic("core: Select with no candidates")
	}
	var mask uint64
	for _, r := range rows {
		mask |= 1 << uint(r%rr.rows)
	}
	win := firstFrom(mask, rr.ptr[col], rr.rows)
	rr.ptr[col] = (win + 1) % rr.rows
	for i, r := range rows {
		if r%rr.rows == win {
			return i
		}
	}
	panic("core: round-robin winner not among candidates")
}

// Random grants a uniformly random requesting row, as in the MIT METRO
// router (and PIM's grant step).
type Random struct {
	rng *sim.RNG
}

// NewRandomPolicy returns a random grant policy.
func NewRandomPolicy(rng *sim.RNG) *Random { return &Random{rng: rng} }

// Name implements SelectPolicy.
func (rd *Random) Name() string { return "random" }

// Select implements SelectPolicy.
func (rd *Random) Select(col int, rows []int, network []bool) int {
	if len(rows) == 0 {
		panic("core: Select with no candidates")
	}
	return rd.rng.Intn(len(rows))
}

// PriorityChain grants the lowest-numbered requesting row, the fixed
// priority chain of the Torus Routing Chip. It is deliberately unfair.
type PriorityChain struct{}

// NewPriorityChainPolicy returns the fixed-priority policy.
func NewPriorityChainPolicy() PriorityChain { return PriorityChain{} }

// Name implements SelectPolicy.
func (PriorityChain) Name() string { return "priority-chain" }

// Select implements SelectPolicy: the lowest candidate row wins, found as
// the trailing set bit of the candidate mask.
func (PriorityChain) Select(col int, rows []int, network []bool) int {
	if len(rows) == 0 {
		panic("core: Select with no candidates")
	}
	var mask uint64
	for _, r := range rows {
		if r < 0 || r >= 64 {
			// Row numbers beyond the word: fall back to the scalar scan.
			best := 0
			for i, rr := range rows {
				if rr < rows[best] {
					best = i
				}
			}
			return best
		}
		mask |= 1 << uint(r)
	}
	win := bits.TrailingZeros64(mask)
	for i, r := range rows {
		if r == win {
			return i
		}
	}
	panic("core: priority-chain winner not among candidates")
}

package core

import "math/bits"

// GrantPolicy selects which requesting row an output-port (global) arbiter
// grants. The 21364's SPAA uses least-recently-selected (LRS); the Rotary
// Rule variant first restricts the choice to rows fed by network input
// ports (cross-traffic) when any are present, and applies LRS within the
// group (paper §3.4). The same policy object is shared by the standalone
// model and the timing router so prioritization state persists correctly.
type GrantPolicy struct {
	rotary bool
	// lastSelected[col][row] is the virtual time the row was last granted
	// by the column; zero means never.
	lastSelected [][]int64
	clock        int64
}

// NewGrantPolicy returns an LRS policy for a rows x cols matrix; with
// rotary set, network rows take absolute priority over local rows.
func NewGrantPolicy(rows, cols int, rotary bool) *GrantPolicy {
	p := &GrantPolicy{rotary: rotary, lastSelected: make([][]int64, cols)}
	for c := range p.lastSelected {
		p.lastSelected[c] = make([]int64, rows)
	}
	return p
}

// Rotary reports whether the policy applies the Rotary Rule.
func (p *GrantPolicy) Rotary() bool { return p.rotary }

// Select picks the winning row for column col among candidate rows.
// network[i] tells whether rows[i] is fed by a network input port. It
// returns the index into rows of the winner and records the selection.
// Select panics if rows is empty.
//
// The Rotary Rule restriction is a candidate-index bitmask: when any
// network candidate is present, the LRS scan iterates only the network
// indices with TrailingZeros64 instead of re-testing every candidate.
func (p *GrantPolicy) Select(col int, rows []int, network []bool) int {
	if len(rows) == 0 {
		panic("core: Select with no candidates")
	}
	consider := rowsAll(len(rows)) // candidate indices, not row numbers
	if p.rotary {
		var netIdx uint64
		for i, n := range network {
			if n {
				netIdx |= 1 << uint(i)
			}
		}
		if netIdx != 0 {
			consider = netIdx
		}
	}
	last := p.lastSelected[col]
	best := -1
	var bestLast int64
	for im := consider; im != 0; im &= im - 1 {
		i := bits.TrailingZeros64(im)
		// Least recently selected wins; ties break toward the lowest row
		// index, which is deterministic and matches a fixed priority chain.
		if l := last[rows[i]]; best == -1 || l < bestLast {
			best, bestLast = i, l
		}
	}
	p.clock++
	last[rows[best]] = p.clock
	return best
}

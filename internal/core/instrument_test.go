package core

import (
	"testing"

	"alpha21364/internal/obs"
)

// TestInstrumentPolicyObservationOnly checks that the wrapped policy
// returns the same winners as the bare one (with identical internal
// state evolution) while counting requests/grants/conflicts.
func TestInstrumentPolicyObservationOnly(t *testing.T) {
	bare := NewLRSPolicy(8, 7, true)
	var m obs.ArbiterMetrics
	wrapped := InstrumentPolicy(NewLRSPolicy(8, 7, true), &m)

	if wrapped.Name() != bare.Name() {
		t.Fatalf("Name = %q, want %q", wrapped.Name(), bare.Name())
	}

	calls := [][2][]int{
		// rows, network-as-ints (1 = network-fed)
		{{0, 2, 5}, {1, 0, 1}},
		{{3}, {0}},
		{{1, 4}, {1, 1}},
		{{0, 2, 5}, {1, 0, 1}},
	}
	var wantReq, wantConf int64
	for i, c := range calls {
		rows := c[0]
		network := make([]bool, len(rows))
		for j, n := range c[1] {
			network[j] = n == 1
		}
		col := i % 7
		wb := bare.Select(col, rows, network)
		ww := wrapped.Select(col, rows, network)
		if wb != ww {
			t.Fatalf("call %d: wrapped winner %d, bare winner %d", i, ww, wb)
		}
		wantReq += int64(len(rows))
		wantConf += int64(len(rows) - 1)
	}
	if m.Requests != wantReq || m.Grants != int64(len(calls)) || m.Conflicts != wantConf {
		t.Fatalf("metrics = %+v, want req=%d grants=%d conf=%d", m, wantReq, len(calls), wantConf)
	}
	if m.Requests != m.Grants+m.Conflicts {
		t.Fatalf("requests (%d) != grants (%d) + conflicts (%d)", m.Requests, m.Grants, m.Conflicts)
	}
}

// TestInstrumentArbiterObservationOnly checks the matrix-arbiter wrapper
// delegates unchanged and accounts every valid nomination.
func TestInstrumentArbiterObservationOnly(t *testing.T) {
	fill := func(mx *Matrix) {
		// Three nominations in two columns: col 0 has two competitors.
		mx.Set(0, 0, 1, 100, 0)
		mx.Set(1, 0, 2, 101, 0)
		mx.Set(2, 3, 3, 102, 0)
	}

	bareMx := NewRouterMatrix()
	fill(bareMx)
	bare := NewWFA()
	want := append([]Grant(nil), bare.Arbitrate(bareMx)...)

	var m obs.ArbiterMetrics
	wrapped := InstrumentArbiter(NewWFA(), &m)
	if wrapped.Name() != bare.Name() {
		t.Fatalf("Name = %q, want %q", wrapped.Name(), bare.Name())
	}
	wrapMx := NewRouterMatrix()
	fill(wrapMx)
	got := wrapped.Arbitrate(wrapMx)

	if len(got) != len(want) {
		t.Fatalf("wrapped grants %v, bare grants %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("grant %d: wrapped %+v, bare %+v", i, got[i], want[i])
		}
	}
	if m.Requests != 3 || m.Grants != int64(len(got)) || m.Conflicts != 3-int64(len(got)) {
		t.Fatalf("metrics = %+v after %d grants", m, len(got))
	}
}

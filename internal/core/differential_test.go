package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"alpha21364/internal/sim"
)

// Differential oracle for the bitplane kernels (satellite of the
// word-parallel rewrite): every production arbiter and rotating grant
// policy must reproduce its retained scalar reference (reference.go) byte
// for byte over randomized matrix sequences. Shapes, validity densities,
// ages (with deliberate ties), keys (with deliberate duplicates, modeling
// the adaptive two-column case), and row metadata are all randomized; the
// production and reference instances are seeded identically and must stay
// in lock-step across an entire sequence, which exercises the evolution of
// the fairness state (pointers, LRS clocks, RNG draws), not just a single
// call.

// fillDiff populates m with a random request pattern. Ages are drawn
// from a small range so ties are common, and keys collide across cells so
// SPAA's adaptive second-column probe fires.
func fillDiff(m *Matrix, rnd *rand.Rand, density float64) {
	m.Reset()
	keyRange := uint64(m.Rows*m.Cols/2 + 1)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if rnd.Float64() >= density {
				continue
			}
			age := int64(rnd.Intn(5))
			key := uint64(rnd.Intn(int(keyRange)))
			m.Set(r, c, age, key, int32(rnd.Intn(1<<16)))
		}
	}
}

// randomShape picks a matrix shape and randomizes its row metadata. Kinds
// whose grant policy is sized for the 21364 (SPAA-rotary) stay within the
// router shape; the rest roam up to MaxDim.
func randomShape(rnd *rand.Rand, routerOnly bool) *Matrix {
	var rows, cols int
	if routerOnly {
		rows, cols = 1+rnd.Intn(RouterRows), 1+rnd.Intn(RouterCols)
	} else {
		rows, cols = 1+rnd.Intn(MaxDim), 1+rnd.Intn(MaxDim)
	}
	m := NewMatrix(rows, cols)
	ports := 1 + rnd.Intn(rows)
	for r := 0; r < rows; r++ {
		m.RowPort[r] = int8(rnd.Intn(ports))
		m.RowNetwork[r] = rnd.Intn(2) == 0
	}
	m.SyncRowMeta()
	return m
}

// kernelPair builds a production arbiter and its scalar reference, seeded
// identically.
type kernelPair struct {
	name       string
	routerOnly bool
	make       func(seed uint64) (prod, ref Arbiter)
}

func kernelPairs() []kernelPair {
	var pairs []kernelPair
	for k := Kind(0); k < NumKinds; k++ {
		k := k
		pairs = append(pairs, kernelPair{
			name:       k.String(),
			routerOnly: k == KindSPAARotary,
			make: func(seed uint64) (Arbiter, Arbiter) {
				return New(k, sim.NewRNG(seed)), NewReferenceArbiter(k, sim.NewRNG(seed))
			},
		})
	}
	for _, iters := range []int{1, 2, 3} {
		iters := iters
		pairs = append(pairs, kernelPair{
			name: fmt.Sprintf("iSLIP-%d", iters),
			make: func(uint64) (Arbiter, Arbiter) {
				return NewISLIP(iters), NewReferenceISLIP(iters)
			},
		})
	}
	pairs = append(pairs, kernelPair{
		name: "WFA-plain",
		make: func(uint64) (Arbiter, Arbiter) {
			return NewWFAPlain(), NewReferenceWFAPlain()
		},
	})
	return pairs
}

// runDifferential drives one production/reference pair in lock-step over a
// sequence of random matrices (fixed shape per sequence, as for a real
// router) and fails on the first divergence. It also runs the matching
// oracle over the production grants.
func runDifferential(t *testing.T, p kernelPair, seed uint64, steps int) {
	t.Helper()
	rnd := rand.New(rand.NewSource(int64(seed)))
	prod, ref := p.make(seed)
	m := randomShape(rnd, p.routerOnly)
	for step := 0; step < steps; step++ {
		fillDiff(m, rnd, rnd.Float64())
		want := append([]Grant(nil), ref.Arbitrate(m)...)
		got := prod.Arbitrate(m)
		if !reflect.DeepEqual(append([]Grant(nil), got...), want) {
			t.Fatalf("%s diverged from reference at step %d (seed %d, shape %dx%d):\nprod %v\nref  %v",
				p.name, step, seed, m.Rows, m.Cols, got, want)
		}
		if err := CheckMatching(m, got); err != nil {
			t.Fatalf("%s produced an illegal matching at step %d (seed %d): %v", p.name, step, seed, err)
		}
	}
}

// TestKernelDifferential locks every bitplane kernel against its scalar
// reference over randomized matrix sequences.
func TestKernelDifferential(t *testing.T) {
	const trials, steps = 25, 24
	for _, p := range kernelPairs() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			for trial := 0; trial < trials; trial++ {
				runDifferential(t, p, uint64(0x9E3779B9*trial+7), steps)
			}
		})
	}
}

// TestPolicyDifferential locks the mask-based grant policies (round-robin,
// priority-chain, and rotary/plain LRS) against their scalar references
// over random candidate sets, including the stateful pointer/clock
// evolution.
func TestPolicyDifferential(t *testing.T) {
	const rows, cols = RouterRows, RouterCols
	type policyPair struct {
		name string
		prod SelectPolicy
		ref  SelectPolicy
	}
	pairs := []policyPair{
		{"round-robin", NewRoundRobinPolicy(rows, cols), newRefRoundRobin(rows, cols)},
		{"priority-chain", NewPriorityChainPolicy(), refPriorityChain{}},
		{"lrs", NewLRSPolicy(rows, cols, false), refSelectPolicy{newRefGrantPolicy(rows, cols, false)}},
		{"rotary-lrs", NewLRSPolicy(rows, cols, true), refSelectPolicy{newRefGrantPolicy(rows, cols, true)}},
	}
	for _, p := range pairs {
		p := p
		t.Run(p.name, func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(len(p.name))))
			var cand []int
			var network []bool
			for step := 0; step < 4000; step++ {
				col := rnd.Intn(cols)
				cand, network = cand[:0], network[:0]
				seen := make(map[int]bool)
				for n := 1 + rnd.Intn(rows); len(cand) < n; {
					r := rnd.Intn(rows)
					if seen[r] {
						continue
					}
					seen[r] = true
					cand = append(cand, r)
					network = append(network, rnd.Intn(2) == 0)
				}
				want := p.ref.Select(col, cand, network)
				got := p.prod.Select(col, cand, network)
				if got != want {
					t.Fatalf("%s diverged at step %d (col %d, rows %v, net %v): prod %d, ref %d",
						p.name, step, col, cand, network, got, want)
				}
			}
		})
	}
}

// refSelectPolicy adapts refGrantPolicy to SelectPolicy for the table
// above.
type refSelectPolicy struct{ p *refGrantPolicy }

func (r refSelectPolicy) Name() string { return "ref-lrs" }
func (r refSelectPolicy) Select(col int, rows []int, network []bool) int {
	return r.p.Select(col, rows, network)
}

// FuzzArbiterKernels is the fuzz entry for the same property: any seed
// and kernel selector must keep production and reference in lock-step.
func FuzzArbiterKernels(f *testing.F) {
	pairs := kernelPairs()
	for i := range pairs {
		f.Add(uint64(i)*0xABCD+1, uint8(i))
	}
	f.Fuzz(func(t *testing.T, seed uint64, which uint8) {
		p := pairs[int(which)%len(pairs)]
		runDifferential(t, p, seed, 8)
	})
}

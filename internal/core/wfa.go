package core

// WFA is the (wrapped) Wave-Front Arbiter of Tamir and Chi, as implemented
// in the SGI Spider switch (paper §3.2). The connection matrix is evaluated
// as a systolic wave: a cell (i,j) receives a grant when it has a request
// and no cell earlier in the wave has already claimed row i or column j.
//
// We implement the Wrapped WFA, which the paper's timing is based on: cells
// are grouped into wrapped diagonals (i+j mod Rows); diagonal k+1 is
// evaluated after diagonal k, and cells within a diagonal never share a row
// or column, so they are conflict-free. Fairness comes from rotating the
// starting diagonal:
//
//   - WFA-base rotates the start round-robin, as Tamir and Chi suggest.
//   - WFA-rotary gives "cells connected to the input port arbiters for the
//     network ports the highest priority" (§3.4): the wave first sweeps the
//     network-input rows (rotating the starting diagonal within them), and
//     only then lets local-input rows claim the leftover columns. This
//     realizes the Rotary Rule's strict cross-traffic-first priority in
//     wave-front form.
type WFA struct {
	rotary  bool
	counter int64
	rowUsed []bool
	colUsed []bool
	grants  []Grant // reused across calls
}

// NewWFA returns the base wave-front arbiter (round-robin start).
func NewWFA() *WFA { return &WFA{} }

// NewWFARotary returns the Rotary Rule variant.
func NewWFARotary() *WFA { return &WFA{rotary: true} }

// Name implements Arbiter.
func (a *WFA) Name() string {
	if a.rotary {
		return "WFA-rotary"
	}
	return "WFA-base"
}

// Rotary reports whether this instance applies the Rotary Rule.
func (a *WFA) Rotary() bool { return a.rotary }

// Arbitrate implements Arbiter.
func (a *WFA) Arbitrate(m *Matrix) []Grant {
	if cap(a.rowUsed) < m.Rows {
		a.rowUsed = make([]bool, m.Rows)
	}
	if cap(a.colUsed) < m.Cols {
		a.colUsed = make([]bool, m.Cols)
	}
	rowUsed := a.rowUsed[:m.Rows]
	colUsed := a.colUsed[:m.Cols]
	for i := range rowUsed {
		rowUsed[i] = false
	}
	for i := range colUsed {
		colUsed[i] = false
	}

	grants := a.grants[:0]
	if a.rotary {
		// Rotary Rule: network-input rows sweep first at rotating priority;
		// local rows then fill the remaining columns.
		grants = a.wave(m, rowUsed, colUsed, func(r int) bool { return m.RowNetwork[r] }, grants)
		grants = a.wave(m, rowUsed, colUsed, func(r int) bool { return !m.RowNetwork[r] }, grants)
	} else {
		grants = a.wave(m, rowUsed, colUsed, func(int) bool { return true }, grants)
	}
	a.counter++
	a.grants = grants
	return grants
}

// wave runs one wrapped wave-front over the rows selected by include,
// starting from the rotating diagonal, honoring rows/columns already
// claimed by an earlier pass.
func (a *WFA) wave(m *Matrix, rowUsed, colUsed []bool, include func(int) bool, grants []Grant) []Grant {
	n := m.Rows // diagonal modulus; Rows >= Cols in the 21364 (16 x 7)
	if m.Cols > n {
		n = m.Cols
	}
	start := int(a.counter) % n
	for step := 0; step < n; step++ {
		d := (start + step) % n
		// Wrapped diagonal d holds cells with (i + j) mod n == d. Cells in
		// one diagonal are row- and column-disjoint, so order within the
		// diagonal doesn't matter.
		for i := 0; i < m.Rows; i++ {
			if !include(i) {
				continue
			}
			j := (d - i%n + n) % n
			if j >= m.Cols {
				continue
			}
			if rowUsed[i] || colUsed[j] {
				continue
			}
			if !m.At(i, j).Valid {
				continue
			}
			rowUsed[i] = true
			colUsed[j] = true
			grants = append(grants, Grant{Row: i, Col: j, Cell: m.At(i, j)})
		}
	}
	return grants
}

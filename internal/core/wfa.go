package core

import "math/bits"

// WFA is the (wrapped) Wave-Front Arbiter of Tamir and Chi, as implemented
// in the SGI Spider switch (paper §3.2). The connection matrix is evaluated
// as a systolic wave: a cell (i,j) receives a grant when it has a request
// and no cell earlier in the wave has already claimed row i or column j.
//
// We implement the Wrapped WFA, which the paper's timing is based on: cells
// are grouped into wrapped diagonals (i+j mod Rows); diagonal k+1 is
// evaluated after diagonal k, and cells within a diagonal never share a row
// or column, so they are conflict-free. Fairness comes from rotating the
// starting diagonal:
//
//   - WFA-base rotates the start round-robin, as Tamir and Chi suggest.
//   - WFA-rotary gives "cells connected to the input port arbiters for the
//     network ports the highest priority" (§3.4): the wave first sweeps the
//     network-input rows (rotating the starting diagonal within them), and
//     only then lets local-input rows claim the leftover columns. This
//     realizes the Rotary Rule's strict cross-traffic-first priority in
//     wave-front form.
//
// Bitplane kernel: each valid cell is bucketed once into a per-diagonal
// row word (the rotated-mask trick: cell (i,j) lands in diagonal word
// (i+j) mod n at bit i, so a row's validity word enters the table rotated
// by its row index). The wave then walks diagonal words ANDed with the
// free-row mask — a diagonal with no surviving candidates costs two ops —
// and within a diagonal each candidate row determines its column uniquely,
// so the branchy (diagonal x row) scalar sweep collapses to popcount-many
// bit iterations.
type WFA struct {
	rotary  bool
	counter int64
	diag    []uint64 // per-diagonal candidate-row words, rebuilt per pass
	grants  []Grant  // reused across calls
}

// NewWFA returns the base wave-front arbiter (round-robin start).
func NewWFA() *WFA { return &WFA{} }

// NewWFARotary returns the Rotary Rule variant.
func NewWFARotary() *WFA { return &WFA{rotary: true} }

// Name implements Arbiter.
func (a *WFA) Name() string {
	if a.rotary {
		return "WFA-rotary"
	}
	return "WFA-base"
}

// Rotary reports whether this instance applies the Rotary Rule.
func (a *WFA) Rotary() bool { return a.rotary }

// Arbitrate implements Arbiter.
func (a *WFA) Arbitrate(m *Matrix) []Grant {
	n := m.Rows // diagonal modulus; Rows >= Cols in the 21364 (16 x 7)
	if m.Cols > n {
		n = m.Cols
	}
	if cap(a.diag) < n {
		a.diag = make([]uint64, n)
	}
	diag := a.diag[:n]
	for d := range diag {
		diag[d] = 0
	}
	// Bucket valid cells: wrapped diagonal (i+j) mod n holds at most one
	// cell per row (j ≡ d-i is unique), so bit i in diag[d] names cell
	// (i, (d-i) mod n) exactly.
	for i := 0; i < m.Rows; i++ {
		for w := m.rowValid[i]; w != 0; w &= w - 1 {
			d := i + bits.TrailingZeros64(w)
			if d >= n {
				d -= n
			}
			diag[d] |= 1 << uint(i)
		}
	}

	rowFree := rowsAll(m.Rows)
	colFree := rowsAll(m.Cols)
	grants := a.grants[:0]
	if a.rotary {
		// Rotary Rule: network-input rows sweep first at rotating priority;
		// local rows then fill the remaining columns.
		net := m.netRows
		grants = a.wave(m, diag, n, &rowFree, &colFree, net, grants)
		grants = a.wave(m, diag, n, &rowFree, &colFree, ^net, grants)
	} else {
		grants = a.wave(m, diag, n, &rowFree, &colFree, ^uint64(0), grants)
	}
	a.counter++
	a.grants = grants
	return grants
}

// wave runs one wrapped wave-front over the rows selected by include,
// starting from the rotating diagonal, honoring rows/columns already
// claimed by an earlier pass.
func (a *WFA) wave(m *Matrix, diag []uint64, n int, rowFree, colFree *uint64, include uint64, grants []Grant) []Grant {
	start := int(a.counter) % n
	for step := 0; step < n; step++ {
		d := start + step
		if d >= n {
			d -= n
		}
		// Candidates on diagonal d that are included, unclaimed, and valid;
		// iterating set bits ascending preserves the scalar row order.
		for cand := diag[d] & *rowFree & include; cand != 0; cand &= cand - 1 {
			i := bits.TrailingZeros64(cand)
			j := d - i
			if j < 0 {
				j += n
			}
			if *colFree&(1<<uint(j)) == 0 {
				continue
			}
			*rowFree &^= 1 << uint(i)
			*colFree &^= 1 << uint(j)
			grants = append(grants, Grant{Row: i, Col: j, Cell: m.At(i, j)})
		}
	}
	return grants
}

package core

import (
	"testing"

	"alpha21364/internal/sim"
)

// benchMatrices prebuilds a deterministic ladder of router-shaped request
// matrices across densities, so every kernel is measured over the same
// mixed sparse/dense workload and the benchmark loop itself does no
// building.
func benchMatrices() []*Matrix {
	rng := sim.NewRNG(0xB157)
	ms := make([]*Matrix, 32)
	for i := range ms {
		m := NewRouterMatrix()
		fillRandom(m, rng, float64(i%8+1)/8)
		ms[i] = m
	}
	return ms
}

// BenchmarkArbitrate times one Arbitrate call per kernel over the shared
// matrix ladder (ns/op = ns per arbitration). `make bench-arbiters` runs
// this; RunBench mirrors it as the arbitrate-<kind> BENCH entries.
func BenchmarkArbitrate(b *testing.B) {
	ms := benchMatrices()
	for k := Kind(0); k < NumKinds; k++ {
		b.Run(k.String(), func(b *testing.B) {
			arb := New(k, sim.NewRNG(2))
			for _, m := range ms {
				arb.Arbitrate(m) // size the scratch before measuring
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arb.Arbitrate(ms[i%len(ms)])
			}
		})
	}
	b.Run("iSLIP", func(b *testing.B) {
		arb := NewISLIP(PIMFullIterations)
		for _, m := range ms {
			arb.Arbitrate(m)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			arb.Arbitrate(ms[i%len(ms)])
		}
	})
	b.Run("WFA-plain", func(b *testing.B) {
		arb := NewWFAPlain()
		for _, m := range ms {
			arb.Arbitrate(m)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			arb.Arbitrate(ms[i%len(ms)])
		}
	})
}

// BenchmarkReferenceArbitrate times the retained scalar kernels over the
// same ladder, so the word-parallel speedup is a two-line comparison:
//
//	go test ./internal/core -bench 'Arbitrate/' -benchmem
func BenchmarkReferenceArbitrate(b *testing.B) {
	ms := benchMatrices()
	for k := Kind(0); k < NumKinds; k++ {
		b.Run(k.String(), func(b *testing.B) {
			arb := NewReferenceArbiter(k, sim.NewRNG(2))
			for _, m := range ms {
				arb.Arbitrate(m)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arb.Arbitrate(ms[i%len(ms)])
			}
		})
	}
}

package core

// reference.go retains the pre-bitplane scalar kernels, cell-by-cell
// transliterations of the algorithm descriptions in the paper. They are
// the differential oracle for the word-parallel kernels: every production
// arbiter must reproduce its reference's grants byte for byte over any
// matrix sequence (TestKernelDifferential, FuzzArbiterKernels), and the
// rotary grant-policy variants are held to the same standard
// (TestPolicyDifferential). The reference kernels carry the same
// prioritization state as their production twins — round-robin pointers,
// LRS clocks, RNG draws — in the same order, so a reference arbiter seeded
// identically to a production one stays in lock-step across calls.
//
// Nothing in the hot path uses these; they exist to make "the rewrite
// changed no answers" a checkable property rather than a code-review
// claim.

import "alpha21364/internal/sim"

// NewReferenceArbiter constructs the retained scalar implementation of a
// kind, mirroring New.
func NewReferenceArbiter(k Kind, rng *sim.RNG) Arbiter {
	switch k {
	case KindMCM:
		return newRefMCM()
	case KindPIM:
		return newRefPIM(PIMFullIterations, rng)
	case KindPIM1:
		return newRefPIM(1, rng)
	case KindWFABase:
		return &refWFA{}
	case KindWFARotary:
		return &refWFA{rotary: true}
	case KindSPAABase:
		return &refSPAA{}
	case KindSPAARotary:
		return &refSPAA{policy: newRefGrantPolicy(RouterRows, RouterCols, true)}
	case KindOPF:
		return &refOPF{}
	}
	panic("core: invalid reference kind")
}

// NewReferenceISLIP returns the retained scalar iSLIP, mirroring NewISLIP.
func NewReferenceISLIP(iterations int) Arbiter {
	if iterations < 1 {
		panic("core: iSLIP needs at least one iteration")
	}
	return &refISLIP{iterations: iterations}
}

// NewReferenceWFAPlain returns the retained scalar non-wrapped wave-front
// arbiter, mirroring NewWFAPlain.
func NewReferenceWFAPlain() Arbiter { return &refWFAPlain{} }

// ---- PIM ----

type refPIM struct {
	iterations int
	rng        *sim.RNG
	name       string
	rowMask    []uint64
	matchRow   []int
	matchCol   []int
	reqs       []int
	grants     []Grant
}

func newRefPIM(iterations int, rng *sim.RNG) *refPIM {
	name := "PIM"
	if iterations == 1 {
		name = "PIM1"
	}
	return &refPIM{iterations: iterations, rng: rng, name: name}
}

func (a *refPIM) Name() string { return a.name }

func (a *refPIM) Arbitrate(m *Matrix) []Grant {
	if cap(a.matchRow) < m.Rows {
		a.matchRow = make([]int, m.Rows)
		a.rowMask = make([]uint64, m.Rows)
	}
	if cap(a.matchCol) < m.Cols {
		a.matchCol = make([]int, m.Cols)
	}
	matchRow := a.matchRow[:m.Rows]
	matchCol := a.matchCol[:m.Cols]
	rowMask := a.rowMask[:m.Rows]
	for i := range matchRow {
		matchRow[i] = -1
	}
	for i := range matchCol {
		matchCol[i] = -1
	}

	for it := 0; it < a.iterations; it++ {
		for r := range rowMask {
			rowMask[r] = 0
		}
		anyGrant := false
		for c := 0; c < m.Cols; c++ {
			if matchCol[c] != -1 {
				continue
			}
			requesters := a.reqs[:0]
			for r := 0; r < m.Rows; r++ {
				if matchRow[r] == -1 && m.At(r, c).Valid {
					requesters = append(requesters, r)
				}
			}
			a.reqs = requesters
			if len(requesters) == 0 {
				continue
			}
			winner := requesters[a.rng.Intn(len(requesters))]
			rowMask[winner] |= 1 << uint(c)
			anyGrant = true
		}
		if !anyGrant {
			break
		}
		for r := 0; r < m.Rows; r++ {
			if rowMask[r] == 0 {
				continue
			}
			c := a.rng.Pick(rowMask[r])
			matchRow[r] = c
			matchCol[c] = r
		}
	}

	grants := a.grants[:0]
	for r := 0; r < m.Rows; r++ {
		if c := matchRow[r]; c != -1 {
			grants = append(grants, Grant{Row: r, Col: c, Cell: m.At(r, c)})
		}
	}
	a.grants = grants
	return grants
}

// ---- iSLIP ----

type refISLIP struct {
	iterations int
	grantPtr   []int
	acceptPtr  []int
	rowMask    []uint64
	matchRow   []int
	matchCol   []int
	grants     []Grant
}

func (a *refISLIP) Name() string { return "iSLIP" }

func (a *refISLIP) Arbitrate(m *Matrix) []Grant {
	if cap(a.matchRow) < m.Rows {
		a.matchRow = make([]int, m.Rows)
		a.rowMask = make([]uint64, m.Rows)
		a.acceptPtr = make([]int, m.Rows)
	}
	if cap(a.matchCol) < m.Cols {
		a.matchCol = make([]int, m.Cols)
		a.grantPtr = make([]int, m.Cols)
	}
	matchRow := a.matchRow[:m.Rows]
	matchCol := a.matchCol[:m.Cols]
	rowMask := a.rowMask[:m.Rows]
	for i := range matchRow {
		matchRow[i] = -1
	}
	for i := range matchCol {
		matchCol[i] = -1
	}

	for it := 0; it < a.iterations; it++ {
		for r := range rowMask {
			rowMask[r] = 0
		}
		anyGrant := false
		for c := 0; c < m.Cols; c++ {
			if matchCol[c] != -1 {
				continue
			}
			for k := 0; k < m.Rows; k++ {
				r := (a.grantPtr[c] + k) % m.Rows
				if matchRow[r] == -1 && m.At(r, c).Valid {
					rowMask[r] |= 1 << uint(c)
					anyGrant = true
					break
				}
			}
		}
		if !anyGrant {
			break
		}
		for r := 0; r < m.Rows; r++ {
			if rowMask[r] == 0 {
				continue
			}
			for k := 0; k < m.Cols; k++ {
				c := (a.acceptPtr[r] + k) % m.Cols
				if rowMask[r]&(1<<uint(c)) == 0 {
					continue
				}
				matchRow[r] = c
				matchCol[c] = r
				if it == 0 {
					a.acceptPtr[r] = (c + 1) % m.Cols
					a.grantPtr[c] = (r + 1) % m.Rows
				}
				break
			}
		}
	}

	grants := a.grants[:0]
	for r := 0; r < m.Rows; r++ {
		if c := matchRow[r]; c != -1 {
			grants = append(grants, Grant{Row: r, Col: c, Cell: m.At(r, c)})
		}
	}
	a.grants = grants
	return grants
}

// ---- WFA (wrapped) ----

type refWFA struct {
	rotary  bool
	counter int64
	rowUsed []bool
	colUsed []bool
	grants  []Grant
}

func (a *refWFA) Name() string {
	if a.rotary {
		return "WFA-rotary"
	}
	return "WFA-base"
}

func (a *refWFA) Arbitrate(m *Matrix) []Grant {
	if cap(a.rowUsed) < m.Rows {
		a.rowUsed = make([]bool, m.Rows)
	}
	if cap(a.colUsed) < m.Cols {
		a.colUsed = make([]bool, m.Cols)
	}
	rowUsed := a.rowUsed[:m.Rows]
	colUsed := a.colUsed[:m.Cols]
	for i := range rowUsed {
		rowUsed[i] = false
	}
	for i := range colUsed {
		colUsed[i] = false
	}

	grants := a.grants[:0]
	if a.rotary {
		grants = a.wave(m, rowUsed, colUsed, func(r int) bool { return m.RowNetwork[r] }, grants)
		grants = a.wave(m, rowUsed, colUsed, func(r int) bool { return !m.RowNetwork[r] }, grants)
	} else {
		grants = a.wave(m, rowUsed, colUsed, func(int) bool { return true }, grants)
	}
	a.counter++
	a.grants = grants
	return grants
}

func (a *refWFA) wave(m *Matrix, rowUsed, colUsed []bool, include func(int) bool, grants []Grant) []Grant {
	n := m.Rows
	if m.Cols > n {
		n = m.Cols
	}
	start := int(a.counter) % n
	for step := 0; step < n; step++ {
		d := (start + step) % n
		for i := 0; i < m.Rows; i++ {
			if !include(i) {
				continue
			}
			j := (d - i%n + n) % n
			if j >= m.Cols {
				continue
			}
			if rowUsed[i] || colUsed[j] {
				continue
			}
			if !m.At(i, j).Valid {
				continue
			}
			rowUsed[i] = true
			colUsed[j] = true
			grants = append(grants, Grant{Row: i, Col: j, Cell: m.At(i, j)})
		}
	}
	return grants
}

// ---- WFA (plain) ----

type refWFAPlain struct {
	rowUsed []bool
	colUsed []bool
	grants  []Grant
}

func (a *refWFAPlain) Name() string { return "WFA-plain" }

func (a *refWFAPlain) Arbitrate(m *Matrix) []Grant {
	if cap(a.rowUsed) < m.Rows {
		a.rowUsed = make([]bool, m.Rows)
	}
	if cap(a.colUsed) < m.Cols {
		a.colUsed = make([]bool, m.Cols)
	}
	rowUsed := a.rowUsed[:m.Rows]
	colUsed := a.colUsed[:m.Cols]
	for i := range rowUsed {
		rowUsed[i] = false
	}
	for i := range colUsed {
		colUsed[i] = false
	}
	grants := a.grants[:0]
	for d := 0; d <= m.Rows+m.Cols-2; d++ {
		for i := 0; i < m.Rows; i++ {
			j := d - i
			if j < 0 || j >= m.Cols {
				continue
			}
			if rowUsed[i] || colUsed[j] || !m.At(i, j).Valid {
				continue
			}
			rowUsed[i] = true
			colUsed[j] = true
			grants = append(grants, Grant{Row: i, Col: j, Cell: m.At(i, j)})
		}
	}
	a.grants = grants
	return grants
}

// ---- SPAA ----

// refGrantPolicy is the scalar GrantPolicy.Select, state-compatible with
// the production policy (same lastSelected/clock evolution).
type refGrantPolicy struct {
	rotary       bool
	lastSelected [][]int64
	clock        int64
}

func newRefGrantPolicy(rows, cols int, rotary bool) *refGrantPolicy {
	p := &refGrantPolicy{rotary: rotary, lastSelected: make([][]int64, cols)}
	for c := range p.lastSelected {
		p.lastSelected[c] = make([]int64, rows)
	}
	return p
}

func (p *refGrantPolicy) Select(col int, rows []int, network []bool) int {
	if len(rows) == 0 {
		panic("core: Select with no candidates")
	}
	considerNetworkOnly := false
	if p.rotary {
		for _, n := range network {
			if n {
				considerNetworkOnly = true
				break
			}
		}
	}
	best := -1
	var bestLast int64
	for i, r := range rows {
		if considerNetworkOnly && !network[i] {
			continue
		}
		last := p.lastSelected[col][r]
		if best == -1 || last < bestLast {
			best, bestLast = i, last
		}
	}
	p.clock++
	p.lastSelected[col][rows[best]] = p.clock
	return best
}

type refSPAA struct {
	policy  *refGrantPolicy
	colPref []int
	nomRow  []int
	nomNet  []bool
	nomCell []Cell
	noms    []Grant
	grants  []Grant
}

func (a *refSPAA) Name() string {
	if a.policy != nil && a.policy.rotary {
		return "SPAA-rotary"
	}
	return "SPAA-base"
}

func (a *refSPAA) Nominate(m *Matrix) []Grant {
	ports := 0
	for _, p := range m.RowPort {
		if int(p)+1 > ports {
			ports = int(p) + 1
		}
	}
	if len(a.colPref) < m.Rows {
		a.colPref = make([]int, m.Rows)
	}

	noms := a.noms[:0]
	for p := 0; p < ports; p++ {
		row, col, ok := a.nominatePort(m, p)
		if ok {
			noms = append(noms, Grant{Row: row, Col: col, Cell: m.At(row, col)})
		}
	}
	a.noms = noms
	return noms
}

func (a *refSPAA) nominatePort(m *Matrix, port int) (row, col int, ok bool) {
	bestRow, bestCol := -1, -1
	var best Cell
	for r := 0; r < m.Rows; r++ {
		if int(m.RowPort[r]) != port {
			continue
		}
		for c := 0; c < m.Cols; c++ {
			cell := m.At(r, c)
			if !cell.Valid {
				continue
			}
			if bestRow == -1 || cell.Age < best.Age ||
				(cell.Age == best.Age && cell.Key < best.Key) {
				bestRow, bestCol, best = r, c, cell
			}
		}
	}
	if bestRow == -1 {
		return 0, 0, false
	}
	otherCol := -1
	for c := 0; c < m.Cols; c++ {
		if c == bestCol {
			continue
		}
		cell := m.At(bestRow, c)
		if cell.Valid && cell.Key == best.Key {
			otherCol = c
			break
		}
	}
	if otherCol != -1 {
		a.colPref[bestRow]++
		if a.colPref[bestRow]%2 == 1 {
			bestCol = otherCol
		}
	}
	return bestRow, bestCol, true
}

func (a *refSPAA) Grant(m *Matrix, noms []Grant) []Grant {
	if a.policy == nil {
		a.policy = newRefGrantPolicy(m.Rows, m.Cols, false)
	}
	grants := a.grants[:0]
	for c := 0; c < m.Cols; c++ {
		a.nomRow = a.nomRow[:0]
		a.nomNet = a.nomNet[:0]
		a.nomCell = a.nomCell[:0]
		for _, n := range noms {
			if n.Col == c {
				a.nomRow = append(a.nomRow, n.Row)
				a.nomNet = append(a.nomNet, m.RowNetwork[n.Row])
				a.nomCell = append(a.nomCell, n.Cell)
			}
		}
		if len(a.nomRow) == 0 {
			continue
		}
		w := a.policy.Select(c, a.nomRow, a.nomNet)
		grants = append(grants, Grant{Row: a.nomRow[w], Col: c, Cell: a.nomCell[w]})
	}
	a.grants = grants
	return grants
}

func (a *refSPAA) Arbitrate(m *Matrix) []Grant {
	return a.Grant(m, a.Nominate(m))
}

// ---- MCM ----

type refMCM struct {
	matchRow []int
	matchCol []int
	dist     []int
	queue    []int
	grants   []Grant
}

func newRefMCM() *refMCM { return &refMCM{} }

func (a *refMCM) Name() string { return "MCM" }

func (a *refMCM) Arbitrate(m *Matrix) []Grant {
	if cap(a.matchRow) < m.Rows {
		a.matchRow = make([]int, m.Rows)
		a.dist = make([]int, m.Rows+1)
		a.queue = make([]int, 0, m.Rows)
	}
	if cap(a.matchCol) < m.Cols {
		a.matchCol = make([]int, m.Cols)
	}
	matchRow := a.matchRow[:m.Rows]
	matchCol := a.matchCol[:m.Cols]
	for i := range matchRow {
		matchRow[i] = -1
	}
	for i := range matchCol {
		matchCol[i] = -1
	}

	dist := a.dist[:m.Rows+1]
	for {
		q := a.queue[:0]
		for r := 0; r < m.Rows; r++ {
			if matchRow[r] == -1 {
				dist[r] = 0
				q = append(q, r)
			} else {
				dist[r] = inf
			}
		}
		dist[m.Rows] = inf
		for head := 0; head < len(q); head++ {
			r := q[head]
			if dist[r] >= dist[m.Rows] {
				continue
			}
			for c := 0; c < m.Cols; c++ {
				if !m.At(r, c).Valid {
					continue
				}
				nr := matchCol[c]
				idx := m.Rows
				if nr != -1 {
					idx = nr
				}
				if dist[idx] == inf {
					dist[idx] = dist[r] + 1
					if nr != -1 {
						q = append(q, nr)
					}
				}
			}
		}
		if dist[m.Rows] == inf {
			break
		}
		augmented := false
		for r := 0; r < m.Rows; r++ {
			if matchRow[r] == -1 && a.augment(m, r, matchRow, matchCol, dist) {
				augmented = true
			}
		}
		if !augmented {
			break
		}
	}

	grants := a.grants[:0]
	for r := 0; r < m.Rows; r++ {
		if c := matchRow[r]; c != -1 {
			grants = append(grants, Grant{Row: r, Col: c, Cell: m.At(r, c)})
		}
	}
	a.grants = grants
	return grants
}

func (a *refMCM) augment(m *Matrix, r int, matchRow, matchCol, dist []int) bool {
	for c := 0; c < m.Cols; c++ {
		if !m.At(r, c).Valid {
			continue
		}
		nr := matchCol[c]
		idx := m.Rows
		if nr != -1 {
			idx = nr
		}
		if dist[idx] == dist[r]+1 {
			if nr == -1 || a.augment(m, nr, matchRow, matchCol, dist) {
				matchRow[r] = c
				matchCol[c] = r
				return true
			}
		}
	}
	dist[r] = inf
	return false
}

// ---- OPF ----

type refOPF struct {
	noms   []opfNom
	grants []Grant
}

func (a *refOPF) Name() string { return "OPF" }

func (a *refOPF) Arbitrate(m *Matrix) []Grant {
	ports := 0
	for _, p := range m.RowPort {
		if int(p)+1 > ports {
			ports = int(p) + 1
		}
	}
	noms := a.noms[:0]
	for p := 0; p < ports; p++ {
		bestRow, bestCol := -1, -1
		var best Cell
		for r := 0; r < m.Rows; r++ {
			if int(m.RowPort[r]) != p {
				continue
			}
			for c := 0; c < m.Cols; c++ {
				cell := m.At(r, c)
				if !cell.Valid {
					continue
				}
				if bestRow == -1 || cell.Age < best.Age ||
					(cell.Age == best.Age && cell.Key < best.Key) {
					bestRow, bestCol, best = r, c, cell
				}
			}
		}
		if bestRow != -1 {
			noms = append(noms, opfNom{bestRow, bestCol, best})
		}
	}
	a.noms = noms
	grants := a.grants[:0]
	for c := 0; c < m.Cols; c++ {
		best := -1
		for i, n := range noms {
			if n.col != c {
				continue
			}
			if best == -1 || n.cell.Age < noms[best].cell.Age ||
				(n.cell.Age == noms[best].cell.Age && n.cell.Key < noms[best].cell.Key) {
				best = i
			}
		}
		if best != -1 {
			grants = append(grants, Grant{Row: noms[best].row, Col: c, Cell: noms[best].cell})
		}
	}
	a.grants = grants
	return grants
}

// ---- rotary policy variant references ----

// refRoundRobin is the scalar RoundRobin.Select, state-compatible with the
// production policy.
type refRoundRobin struct {
	rows int
	ptr  []int
}

func newRefRoundRobin(rows, cols int) *refRoundRobin {
	return &refRoundRobin{rows: rows, ptr: make([]int, cols)}
}

func (rr *refRoundRobin) Name() string { return "round-robin" }

func (rr *refRoundRobin) Select(col int, rows []int, network []bool) int {
	if len(rows) == 0 {
		panic("core: Select with no candidates")
	}
	best, bestDist := 0, rr.rows
	for i, r := range rows {
		d := (r - rr.ptr[col] + rr.rows) % rr.rows
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	rr.ptr[col] = (rows[best] + 1) % rr.rows
	return best
}

// refPriorityChain is the scalar PriorityChain.Select.
type refPriorityChain struct{}

func (refPriorityChain) Name() string { return "priority-chain" }

func (refPriorityChain) Select(col int, rows []int, network []bool) int {
	if len(rows) == 0 {
		panic("core: Select with no candidates")
	}
	best := 0
	for i, r := range rows {
		if r < rows[best] {
			best = i
		}
	}
	return best
}

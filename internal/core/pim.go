package core

import (
	"fmt"

	"alpha21364/internal/sim"
)

// PIM is Parallel Iterative Matching (Anderson et al., ASPLOS 1992), the
// three-step nominate / grant / accept algorithm designed for the AN2 ATM
// switch (paper §3.1):
//
//  1. Nominate: each unmatched row requests every column for which it has a
//     packet (the same packet may be requested at multiple columns).
//  2. Grant: each unmatched column picks one request uniformly at random.
//  3. Accept: a row granted by several columns accepts one at random.
//
// The steps repeat for a fixed iteration count; PIM usually converges
// within log2(N) iterations, so the 21364's 16 input-port arbiters need
// four. PIM1 — the variant the paper uses in all timing evaluations,
// because multiple iterations are unimplementable in the 1.2 GHz pipeline —
// runs exactly one iteration.
type PIM struct {
	iterations int
	rng        *sim.RNG
	name       string
	rowMask    []uint64 // scratch: grants received per row this iteration
	matchRow   []int
	matchCol   []int
	reqs       []int   // scratch: per-column requester list
	grants     []Grant // reused across calls
}

// NewPIM returns a PIM arbiter running the given number of iterations.
func NewPIM(iterations int, rng *sim.RNG) *PIM {
	if iterations < 1 {
		panic("core: PIM needs at least one iteration")
	}
	name := fmt.Sprintf("PIM%d", iterations)
	if iterations > 1 {
		name = "PIM"
	}
	return &PIM{iterations: iterations, rng: rng, name: name}
}

// NewPIM1 returns the single-iteration PIM1 used in the paper's timing
// model.
func NewPIM1(rng *sim.RNG) *PIM { return NewPIM(1, rng) }

// Name implements Arbiter.
func (a *PIM) Name() string { return a.name }

// Iterations returns the configured iteration count.
func (a *PIM) Iterations() int { return a.iterations }

// Arbitrate implements Arbiter.
func (a *PIM) Arbitrate(m *Matrix) []Grant {
	if m.Cols > 64 {
		panic("core: PIM supports at most 64 columns")
	}
	if cap(a.matchRow) < m.Rows {
		a.matchRow = make([]int, m.Rows)
		a.rowMask = make([]uint64, m.Rows)
	}
	if cap(a.matchCol) < m.Cols {
		a.matchCol = make([]int, m.Cols)
	}
	matchRow := a.matchRow[:m.Rows]
	matchCol := a.matchCol[:m.Cols]
	rowMask := a.rowMask[:m.Rows]
	for i := range matchRow {
		matchRow[i] = -1
	}
	for i := range matchCol {
		matchCol[i] = -1
	}

	for it := 0; it < a.iterations; it++ {
		// Grant: each unmatched column collects requests from unmatched
		// rows and grants one at random.
		for r := range rowMask {
			rowMask[r] = 0
		}
		anyGrant := false
		for c := 0; c < m.Cols; c++ {
			if matchCol[c] != -1 {
				continue
			}
			requesters := a.reqs[:0]
			for r := 0; r < m.Rows; r++ {
				if matchRow[r] == -1 && m.At(r, c).Valid {
					requesters = append(requesters, r)
				}
			}
			a.reqs = requesters
			if len(requesters) == 0 {
				continue
			}
			winner := requesters[a.rng.Intn(len(requesters))]
			rowMask[winner] |= 1 << uint(c)
			anyGrant = true
		}
		if !anyGrant {
			break // converged: no further matches possible
		}
		// Accept: each row granted by one or more columns accepts one at
		// random.
		for r := 0; r < m.Rows; r++ {
			if rowMask[r] == 0 {
				continue
			}
			c := a.rng.Pick(rowMask[r])
			matchRow[r] = c
			matchCol[c] = r
		}
	}

	grants := a.grants[:0]
	for r := 0; r < m.Rows; r++ {
		if c := matchRow[r]; c != -1 {
			grants = append(grants, Grant{Row: r, Col: c, Cell: m.At(r, c)})
		}
	}
	a.grants = grants
	return grants
}

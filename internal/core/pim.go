package core

import (
	"fmt"
	"math/bits"

	"alpha21364/internal/sim"
)

// PIM is Parallel Iterative Matching (Anderson et al., ASPLOS 1992), the
// three-step nominate / grant / accept algorithm designed for the AN2 ATM
// switch (paper §3.1):
//
//  1. Nominate: each unmatched row requests every column for which it has a
//     packet (the same packet may be requested at multiple columns).
//  2. Grant: each unmatched column picks one request uniformly at random.
//  3. Accept: a row granted by several columns accepts one at random.
//
// The steps repeat for a fixed iteration count; PIM usually converges
// within log2(N) iterations, so the 21364's 16 input-port arbiters need
// four. PIM1 — the variant the paper uses in all timing evaluations,
// because multiple iterations are unimplementable in the 1.2 GHz pipeline —
// runs exactly one iteration.
//
// Bitplane kernel: a column's requesters are ColMask(col) masked by the
// still-unmatched rows — one AND instead of a row scan — and the random
// winner is the k-th set bit. The RNG draw order (grant per column
// ascending, then accept per granted row ascending) matches the retained
// scalar reference exactly, so seeded runs are byte-identical.
type PIM struct {
	iterations int
	rng        *sim.RNG
	name       string
	rowMask    []uint64 // scratch: grants received per row this iteration
	matchRow   []int
	grants     []Grant // reused across calls
}

// NewPIM returns a PIM arbiter running the given number of iterations.
func NewPIM(iterations int, rng *sim.RNG) *PIM {
	if iterations < 1 {
		panic("core: PIM needs at least one iteration")
	}
	name := fmt.Sprintf("PIM%d", iterations)
	if iterations > 1 {
		name = "PIM"
	}
	return &PIM{iterations: iterations, rng: rng, name: name}
}

// NewPIM1 returns the single-iteration PIM1 used in the paper's timing
// model.
func NewPIM1(rng *sim.RNG) *PIM { return NewPIM(1, rng) }

// Name implements Arbiter.
func (a *PIM) Name() string { return a.name }

// Iterations returns the configured iteration count.
func (a *PIM) Iterations() int { return a.iterations }

// selectByte[b][k] is the position of the k-th (0-based) set bit of the
// byte b, so nthSetBit resolves within a byte by table lookup instead of
// a clear-one-bit-per-step loop.
var selectByte [256][8]uint8

func init() {
	for b := 0; b < 256; b++ {
		k := 0
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				selectByte[b][k] = uint8(i)
				k++
			}
		}
	}
}

// nthSetBit returns the position of the k-th (0-based) set bit of w:
// popcounts narrow the search to one byte, the table finishes it.
func nthSetBit(w uint64, k int) int {
	base := 0
	if c := bits.OnesCount32(uint32(w)); k >= c {
		k -= c
		w >>= 32
		base = 32
	}
	if c := bits.OnesCount16(uint16(w)); k >= c {
		k -= c
		w >>= 16
		base += 16
	}
	if c := bits.OnesCount8(uint8(w)); k >= c {
		k -= c
		w >>= 8
		base += 8
	}
	return base + int(selectByte[uint8(w)][k])
}

// Arbitrate implements Arbiter.
func (a *PIM) Arbitrate(m *Matrix) []Grant {
	if cap(a.matchRow) < m.Rows {
		a.matchRow = make([]int, m.Rows)
		a.rowMask = make([]uint64, m.Rows)
	}
	matchRow := a.matchRow[:m.Rows]
	rowMask := a.rowMask[:m.Rows] // all-zero between calls (see accept step)
	unmatchedRows := rowsAll(m.Rows)
	var matchedCols uint64

	// Columns with any request at all; empty columns never draw.
	var activeCols uint64
	for c, req := range m.colReq {
		if req != 0 {
			activeCols |= 1 << uint(c)
		}
	}

	for it := 0; it < a.iterations; it++ {
		// Grant: each unmatched column draws one of its still-unmatched
		// requesters uniformly at random (draw order: columns ascending,
		// matching the scalar reference).
		var grantedRows uint64
		for cw := activeCols &^ matchedCols; cw != 0; cw &= cw - 1 {
			c := bits.TrailingZeros64(cw)
			cand := m.colReq[c] & unmatchedRows
			if cand == 0 {
				continue
			}
			winner := nthSetBit(cand, a.rng.Intn(bits.OnesCount64(cand)))
			rowMask[winner] |= 1 << uint(c)
			grantedRows |= 1 << uint(winner)
		}
		if grantedRows == 0 {
			break // converged: no further matches possible
		}
		// Accept: each row granted by one or more columns accepts one at
		// random — the same one draw per row as the reference's rng.Pick,
		// resolved with the table-based bit select. Every granted row
		// accepts, so rowMask returns to zero.
		for g := grantedRows; g != 0; g &= g - 1 {
			r := bits.TrailingZeros64(g)
			gm := rowMask[r]
			c := nthSetBit(gm, a.rng.Intn(bits.OnesCount64(gm)))
			rowMask[r] = 0
			matchRow[r] = c
			matchedCols |= 1 << uint(c)
			unmatchedRows &^= 1 << uint(r)
		}
	}

	grants := a.grants[:0]
	for g := rowsAll(m.Rows) &^ unmatchedRows; g != 0; g &= g - 1 {
		r := bits.TrailingZeros64(g)
		grants = append(grants, Grant{Row: r, Col: matchRow[r], Cell: m.At(r, matchRow[r])})
	}
	a.grants = grants
	return grants
}

// rowsAll returns the mask with the low n bits set (n <= MaxDim).
func rowsAll(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

package core

import (
	"strings"
	"testing"
	"testing/quick"

	"alpha21364/internal/sim"
)

// fillRandom populates a router matrix with independent packets: each cell
// gets its own packet with probability density. Used for matching-property
// tests where cross-column packet identity doesn't matter.
func fillRandom(m *Matrix, rng *sim.RNG, density float64) {
	m.Reset()
	key := uint64(1)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if rng.Bernoulli(density) {
				m.Set(r, c, int64(rng.Intn(1000)), key, 0)
				key++
			}
		}
	}
}

func allArbiters(rng *sim.RNG) []Arbiter {
	var out []Arbiter
	for k := Kind(0); k < NumKinds; k++ {
		out = append(out, New(k, rng.Split()))
	}
	return out
}

func TestAllArbitersProduceMatchings(t *testing.T) {
	rng := sim.NewRNG(1)
	arbs := allArbiters(rng)
	m := NewRouterMatrix()
	for trial := 0; trial < 200; trial++ {
		density := float64(trial%10) / 10
		fillRandom(m, rng, density)
		for _, a := range arbs {
			grants := a.Arbitrate(m)
			if err := CheckMatching(m, grants); err != nil {
				t.Fatalf("%s trial %d: %v", a.Name(), trial, err)
			}
		}
	}
}

// bruteForceMax computes the maximum matching size by exhaustive search
// over column assignments (columns <= 7, so 16^7 worst case is too big;
// recurse over columns picking any row or none with memo-free DFS on small
// matrices only).
func bruteForceMax(m *Matrix, col int, rowUsed []bool) int {
	if col == m.Cols {
		return 0
	}
	best := bruteForceMax(m, col+1, rowUsed) // leave this column unmatched
	for r := 0; r < m.Rows; r++ {
		if rowUsed[r] || !m.At(r, col).Valid {
			continue
		}
		rowUsed[r] = true
		if v := 1 + bruteForceMax(m, col+1, rowUsed); v > best {
			best = v
		}
		rowUsed[r] = false
	}
	return best
}

func TestMCMIsMaximum(t *testing.T) {
	rng := sim.NewRNG(2)
	mcm := NewMCM()
	for trial := 0; trial < 100; trial++ {
		m := NewMatrix(6, 5)
		fillRandom(m, rng, 0.4)
		got := len(mcm.Arbitrate(m))
		want := bruteForceMax(m, 0, make([]bool, m.Rows))
		if got != want {
			t.Fatalf("trial %d: MCM found %d matches, brute force %d", trial, got, want)
		}
	}
}

func TestMCMDominatesAll(t *testing.T) {
	rng := sim.NewRNG(3)
	arbs := allArbiters(rng)
	mcm := NewMCM()
	m := NewRouterMatrix()
	for trial := 0; trial < 100; trial++ {
		fillRandom(m, rng, 0.5)
		bound := len(mcm.Arbitrate(m))
		for _, a := range arbs {
			if got := len(a.Arbitrate(m)); got > bound {
				t.Fatalf("%s found %d matches, exceeding MCM's %d", a.Name(), got, bound)
			}
		}
	}
}

// TestWFAMaximal verifies the wave-front property: after evaluation, no
// valid cell has both its row and column free (every cell lies on some
// diagonal and is granted if unclaimed when its wave passes).
func TestWFAMaximal(t *testing.T) {
	rng := sim.NewRNG(4)
	for _, a := range []*WFA{NewWFA(), NewWFARotary()} {
		m := NewRouterMatrix()
		for trial := 0; trial < 100; trial++ {
			fillRandom(m, rng, 0.3)
			grants := a.Arbitrate(m)
			rowUsed := make([]bool, m.Rows)
			colUsed := make([]bool, m.Cols)
			for _, g := range grants {
				rowUsed[g.Row], colUsed[g.Col] = true, true
			}
			for r := 0; r < m.Rows; r++ {
				for c := 0; c < m.Cols; c++ {
					if m.At(r, c).Valid && !rowUsed[r] && !colUsed[c] {
						t.Fatalf("%s: matching not maximal, cell (%d,%d) addable", a.Name(), r, c)
					}
				}
			}
		}
	}
}

func TestWFADenseIsPerfect(t *testing.T) {
	m := NewRouterMatrix()
	rng := sim.NewRNG(5)
	fillRandom(m, rng, 1.0)
	if got := len(NewWFA().Arbitrate(m)); got != RouterCols {
		t.Fatalf("WFA on dense matrix found %d matches, want %d", got, RouterCols)
	}
}

func TestWFARotationIsFair(t *testing.T) {
	// Two rows permanently contesting one column: the rotating start must
	// let both win over repeated arbitrations.
	a := NewWFA()
	m := NewRouterMatrix()
	wins := map[int]int{}
	for i := 0; i < 32; i++ {
		m.Reset()
		m.Set(1, 0, 1, uint64(2*i+1), 0)
		m.Set(9, 0, 1, uint64(2*i+2), 0)
		for _, g := range a.Arbitrate(m) {
			if g.Col == 0 {
				wins[g.Row]++
			}
		}
	}
	if wins[1] == 0 || wins[9] == 0 {
		t.Fatalf("round-robin start never rotated the winner: %v", wins)
	}
}

func TestWFARotaryNetworkRowsWinContestedColumns(t *testing.T) {
	// A network row (0-7) and a local row (8-15) contest every column; under
	// the Rotary Rule the network row must always win.
	a := NewWFARotary()
	m := NewRouterMatrix()
	for i := 0; i < 32; i++ {
		m.Reset()
		for c := 0; c < RouterCols; c++ {
			m.Set(i%8, c, 1, uint64(100+c), 0)
			m.Set(8+i%8, c, 2, uint64(200+c), 0)
		}
		grants := a.Arbitrate(m)
		for _, g := range grants {
			if g.Row >= 8 && m.At(g.Row-8, g.Col).Valid {
				// Only acceptable if the network row was matched elsewhere.
				matched := false
				for _, g2 := range grants {
					if g2.Row == g.Row-8 {
						matched = true
					}
				}
				if !matched {
					t.Fatalf("local row %d won column %d over idle network row %d",
						g.Row, g.Col, g.Row-8)
				}
			}
		}
	}
}

func TestWFARotaryStillMaximalOverall(t *testing.T) {
	// The two-pass rotary wave must still produce a maximal matching.
	rng := sim.NewRNG(21)
	a := NewWFARotary()
	m := NewRouterMatrix()
	for trial := 0; trial < 100; trial++ {
		fillRandom(m, rng, 0.4)
		grants := a.Arbitrate(m)
		if err := CheckMatching(m, grants); err != nil {
			t.Fatal(err)
		}
		rowUsed := make([]bool, m.Rows)
		colUsed := make([]bool, m.Cols)
		for _, g := range grants {
			rowUsed[g.Row], colUsed[g.Col] = true, true
		}
		for r := 0; r < m.Rows; r++ {
			for c := 0; c < m.Cols; c++ {
				if m.At(r, c).Valid && !rowUsed[r] && !colUsed[c] {
					t.Fatalf("rotary WFA left addable cell (%d,%d)", r, c)
				}
			}
		}
	}
}

func TestPIMConvergesWithinIterations(t *testing.T) {
	// Full PIM (4 iterations on 16 arbiters) must produce a maximal
	// matching nearly always; check it is never worse than PIM1 on average
	// and always a valid matching.
	rng := sim.NewRNG(6)
	pim := NewPIM(PIMFullIterations, rng.Split())
	pim1 := NewPIM1(rng.Split())
	m := NewRouterMatrix()
	sumFull, sum1 := 0, 0
	for trial := 0; trial < 300; trial++ {
		fillRandom(m, rng, 0.6)
		sumFull += len(pim.Arbitrate(m))
		sum1 += len(pim1.Arbitrate(m))
	}
	if sumFull <= sum1 {
		t.Fatalf("PIM (4 iter) total %d not better than PIM1 total %d", sumFull, sum1)
	}
}

func TestPIMSingleRequestAlwaysGranted(t *testing.T) {
	rng := sim.NewRNG(7)
	pim1 := NewPIM1(rng)
	m := NewRouterMatrix()
	m.Set(5, 3, 10, 42, 0)
	grants := pim1.Arbitrate(m)
	if len(grants) != 1 || grants[0].Row != 5 || grants[0].Col != 3 {
		t.Fatalf("lone request not granted: %+v", grants)
	}
}

func TestSPAAOneNominationPerInputPort(t *testing.T) {
	rng := sim.NewRNG(8)
	a := NewSPAA()
	m := NewRouterMatrix()
	for trial := 0; trial < 50; trial++ {
		fillRandom(m, rng, 0.8)
		noms := a.Nominate(m)
		perPort := map[int8]int{}
		for _, n := range noms {
			perPort[m.RowPort[n.Row]]++
		}
		for port, n := range perPort {
			if n > 1 {
				t.Fatalf("input port %d made %d nominations, want at most 1", port, n)
			}
		}
	}
}

func TestSPAANominatesOldest(t *testing.T) {
	a := NewSPAA()
	m := NewRouterMatrix()
	// Give port 0 (rows 0,1) two packets; the older one (age 5) must win
	// regardless of read port.
	m.Set(0, 2, 10, 100, 0)
	m.Set(1, 4, 5, 101, 0)
	for i := 0; i < 4; i++ {
		noms := a.Nominate(m)
		found := false
		for _, n := range noms {
			if m.RowPort[n.Row] == 0 {
				found = true
				if n.Cell.Key != 101 {
					t.Fatalf("port 0 nominated key %d, want the older 101", n.Cell.Key)
				}
			}
		}
		if !found {
			t.Fatal("port 0 made no nomination")
		}
	}
}

func TestSPAAAlternatesDualColumns(t *testing.T) {
	a := NewSPAA()
	m := NewRouterMatrix()
	// One packet nominable to two columns (adaptive routing): successive
	// passes must alternate the chosen column.
	m.Set(2, 1, 7, 55, 0)
	m.Set(2, 3, 7, 55, 0)
	cols := map[int]int{}
	for i := 0; i < 10; i++ {
		noms := a.Nominate(m)
		for _, n := range noms {
			if n.Row == 2 {
				cols[n.Col]++
			}
		}
	}
	if cols[1] == 0 || cols[3] == 0 {
		t.Fatalf("dual-column packet never alternated: %v", cols)
	}
}

func TestSPAAGrantUsesLRS(t *testing.T) {
	a := NewSPAA()
	m := NewRouterMatrix()
	// Rows 0 and 2 (ports 0 and 1) always nominate column 0; LRS must
	// alternate grants between them.
	winners := map[int]int{}
	for i := 0; i < 10; i++ {
		m.Reset()
		m.Set(0, 0, 1, uint64(100+i), 0)
		m.Set(2, 0, 1, uint64(200+i), 0)
		noms := []Grant{
			{Row: 0, Col: 0, Cell: m.At(0, 0)},
			{Row: 2, Col: 0, Cell: m.At(2, 0)},
		}
		grants := a.Grant(m, noms)
		if len(grants) != 1 {
			t.Fatalf("want 1 grant, got %d", len(grants))
		}
		winners[grants[0].Row]++
	}
	if winners[0] != 5 || winners[2] != 5 {
		t.Fatalf("LRS did not alternate: %v", winners)
	}
}

func TestRotaryPolicyPrefersNetwork(t *testing.T) {
	p := NewGrantPolicy(RouterRows, RouterCols, true)
	// Candidates: row 10 (local) and row 3 (network). Network must always
	// win under the Rotary Rule.
	for i := 0; i < 20; i++ {
		w := p.Select(0, []int{10, 3}, []bool{false, true})
		if w != 1 {
			t.Fatalf("rotary grant chose local row over network row")
		}
	}
	// With only local candidates the policy falls back to LRS.
	w := p.Select(0, []int{10, 12}, []bool{false, false})
	if w != 0 && w != 1 {
		t.Fatalf("unexpected winner index %d", w)
	}
}

func TestGrantPolicyLRSFairness(t *testing.T) {
	p := NewGrantPolicy(4, 1, false)
	counts := make([]int, 4)
	rows := []int{0, 1, 2, 3}
	net := []bool{false, false, false, false}
	for i := 0; i < 400; i++ {
		counts[rows[p.Select(0, rows, net)]]++
	}
	for r, c := range counts {
		if c != 100 {
			t.Fatalf("LRS over constant contention gave row %d %d/400 grants", r, c)
		}
	}
}

func TestOPFFigure2Scenario(t *testing.T) {
	// The paper's Figure 2: 8 input ports, each with three queued packets.
	// Columns 2-4 of the figure list destinations, oldest first:
	dests := [8][3]int{
		{3, 2, 1}, {3, 2, 1}, {3, 2, 1}, {3, 2, 1},
		{3, 6, 1}, {3, 2, 0}, {3, 2, 4}, {3, 2, 5},
	}
	m := NewMatrix(8, 7) // one row per input port for this illustration
	key := uint64(1)
	for r, row := range dests {
		for age, d := range row {
			// Keep only the oldest packet per (row, dest) — later ones can't
			// be nominated ahead of an older one with the same target.
			if !m.At(r, d).Valid {
				m.Set(r, d, int64(age), key, 0)
			}
			key++
		}
	}
	// OPF nominates each port's oldest packet; all target output 3, so OPF
	// collapses to a single match (the arbitration collision of Figure 2).
	opf := NewOPF().Arbitrate(m)
	if len(opf) != 1 || opf[0].Col != 3 {
		t.Fatalf("OPF on Figure 2 = %d matches (want 1 at column 3): %+v", len(opf), opf)
	}
	// The shaded optimal selection delivers one packet per output port.
	mcm := NewMCM().Arbitrate(m)
	if len(mcm) != 7 {
		t.Fatalf("MCM on Figure 2 = %d matches, want 7", len(mcm))
	}
}

// TestMatchingCapabilityOrdering reproduces the standalone ordering the
// paper reports in Figure 8: on heavily loaded matrices,
// MCM ~ WFA > PIM1 > SPAA ~ OPF.
func TestMatchingCapabilityOrdering(t *testing.T) {
	rng := sim.NewRNG(9)
	mcm := NewMCM()
	wfa := NewWFA()
	pim := NewPIM(PIMFullIterations, rng.Split())
	pim1 := NewPIM1(rng.Split())
	spaa := NewSPAA()
	m := NewRouterMatrix()
	var sums [5]float64
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		fillRandom(m, rng, 1.0)
		sums[0] += float64(len(mcm.Arbitrate(m)))
		sums[1] += float64(len(wfa.Arbitrate(m)))
		sums[2] += float64(len(pim.Arbitrate(m)))
		sums[3] += float64(len(pim1.Arbitrate(m)))
		sums[4] += float64(len(spaa.Arbitrate(m)))
	}
	for i := range sums {
		sums[i] /= trials
	}
	mcmAvg, wfaAvg, pimAvg, pim1Avg, spaaAvg := sums[0], sums[1], sums[2], sums[3], sums[4]
	if !(mcmAvg >= wfaAvg && wfaAvg >= pimAvg-0.2 && pimAvg > pim1Avg && pim1Avg > spaaAvg) {
		t.Fatalf("ordering violated: MCM=%.2f WFA=%.2f PIM=%.2f PIM1=%.2f SPAA=%.2f",
			mcmAvg, wfaAvg, pimAvg, pim1Avg, spaaAvg)
	}
	// The paper's saturation gap: MCM finds on the order of a third more
	// matches than SPAA when all outputs are free.
	if ratio := mcmAvg / spaaAvg; ratio < 1.2 || ratio > 1.6 {
		t.Errorf("MCM/SPAA match ratio = %.2f, expected roughly 1.36 (paper Fig 8)", ratio)
	}
}

func TestMatrixValidate(t *testing.T) {
	m := NewRouterMatrix()
	m.Set(0, 1, 1, 7, 0)
	m.Set(0, 2, 1, 7, 0) // same packet, two columns: legal (adaptive)
	if err := m.Validate(); err != nil {
		t.Fatalf("two-column nomination should be legal: %v", err)
	}
	m.Set(0, 3, 1, 7, 0) // three columns: illegal
	if err := m.Validate(); err == nil {
		t.Fatal("three-column nomination not caught")
	}
	m.Reset()
	m.Set(0, 1, 1, 7, 0)
	m.Set(5, 2, 1, 7, 0) // same packet on two rows: illegal
	if err := m.Validate(); err == nil {
		t.Fatal("cross-row duplicate not caught")
	}
}

func TestCheckMatchingCatchesViolations(t *testing.T) {
	m := NewRouterMatrix()
	m.Set(0, 0, 1, 1, 0)
	m.Set(0, 1, 1, 2, 0)
	m.Set(1, 0, 1, 3, 0)
	if err := CheckMatching(m, []Grant{{Row: 0, Col: 0}, {Row: 0, Col: 1}}); err == nil {
		t.Error("duplicate row not caught")
	}
	if err := CheckMatching(m, []Grant{{Row: 0, Col: 0}, {Row: 1, Col: 0}}); err == nil {
		t.Error("duplicate column not caught")
	}
	if err := CheckMatching(m, []Grant{{Row: 5, Col: 5}}); err == nil {
		t.Error("invalid cell not caught")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nonsense"); err == nil {
		t.Error("ParseKind accepted nonsense")
	}
	if k, err := ParseKind("SPAA"); err != nil || k != KindSPAABase {
		t.Errorf("ParseKind(SPAA) = %v, %v", k, err)
	}
	if k, err := ParseKind("WFA"); err != nil || k != KindWFABase {
		t.Errorf("ParseKind(WFA) = %v, %v", k, err)
	}
}

func TestParseKindCaseInsensitive(t *testing.T) {
	for name, want := range map[string]Kind{
		"mcm": KindMCM, "spaa-ROTARY": KindSPAARotary, "wfa": KindWFABase,
		"Pim1": KindPIM1, " OPF ": KindOPF, "spaa": KindSPAABase,
	} {
		if k, err := ParseKind(name); err != nil || k != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, k, err, want)
		}
	}
}

func TestParseKindErrorListsNames(t *testing.T) {
	_, err := ParseKind("nonsense")
	if err == nil {
		t.Fatal("ParseKind accepted nonsense")
	}
	for _, name := range KindNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

func TestTimingOf(t *testing.T) {
	if got := TimingOf(KindSPAABase); got.ArbCycles != 3 || got.InitInterval != 1 {
		t.Errorf("SPAA timing = %+v, want 3 cycles / II 1", got)
	}
	if got := TimingOf(KindWFARotary); got.ArbCycles != 4 || got.InitInterval != 3 {
		t.Errorf("WFA timing = %+v, want 4 cycles / II 3", got)
	}
	if got := TimingOf(KindPIM1); got.ArbCycles != 4 || got.InitInterval != 3 {
		t.Errorf("PIM1 timing = %+v, want 4 cycles / II 3", got)
	}
}

func TestArbitrateEmptyMatrix(t *testing.T) {
	rng := sim.NewRNG(10)
	m := NewRouterMatrix()
	for _, a := range allArbiters(rng) {
		if got := a.Arbitrate(m); len(got) != 0 {
			t.Errorf("%s found %d grants on empty matrix", a.Name(), len(got))
		}
	}
}

func TestMatchingNeverExceedsCols(t *testing.T) {
	rng := sim.NewRNG(11)
	arbs := allArbiters(rng)
	f := func(seed uint16, density uint8) bool {
		r := sim.NewRNG(uint64(seed))
		m := NewRouterMatrix()
		fillRandom(m, r, float64(density%100)/100)
		for _, a := range arbs {
			if len(a.Arbitrate(m)) > RouterCols {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

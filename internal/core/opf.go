package core

// OPF is the naive "oldest packet first" strawman of the paper's Figure 2:
// every input port nominates its single oldest packet, regardless of what
// the other input ports are doing, and each output port serves the oldest
// nomination it receives. When several ports' oldest packets want the same
// output, OPF suffers arbitration collisions and delivers a poor matching —
// the motivating example for the interaction machinery in PIM and WFA, and
// the baseline SPAA's matching capability is compared to.
type OPF struct {
	// scratch, reused across calls
	noms   []opfNom
	grants []Grant
}

type opfNom struct {
	row, col int
	cell     Cell
}

// NewOPF returns the oldest-packet-first strawman.
func NewOPF() *OPF { return &OPF{} }

// Name implements Arbiter.
func (*OPF) Name() string { return "OPF" }

// Arbitrate implements Arbiter.
func (a *OPF) Arbitrate(m *Matrix) []Grant {
	// Group rows by input port; each port offers its overall-oldest packet.
	ports := 0
	for _, p := range m.RowPort {
		if int(p)+1 > ports {
			ports = int(p) + 1
		}
	}
	noms := a.noms[:0]
	for p := 0; p < ports; p++ {
		bestRow, bestCol := -1, -1
		var best Cell
		for r := 0; r < m.Rows; r++ {
			if int(m.RowPort[r]) != p {
				continue
			}
			for c := 0; c < m.Cols; c++ {
				cell := m.At(r, c)
				if !cell.Valid {
					continue
				}
				if bestRow == -1 || cell.Age < best.Age ||
					(cell.Age == best.Age && cell.Key < best.Key) {
					bestRow, bestCol, best = r, c, cell
				}
			}
		}
		if bestRow != -1 {
			noms = append(noms, opfNom{bestRow, bestCol, best})
		}
	}
	a.noms = noms
	// Each output port serves the oldest nomination; collisions lose.
	grants := a.grants[:0]
	for c := 0; c < m.Cols; c++ {
		best := -1
		for i, n := range noms {
			if n.col != c {
				continue
			}
			if best == -1 || n.cell.Age < noms[best].cell.Age ||
				(n.cell.Age == noms[best].cell.Age && n.cell.Key < noms[best].cell.Key) {
				best = i
			}
		}
		if best != -1 {
			grants = append(grants, Grant{Row: noms[best].row, Col: c, Cell: noms[best].cell})
		}
	}
	a.grants = grants
	return grants
}

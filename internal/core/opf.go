package core

import "math/bits"

// OPF is the naive "oldest packet first" strawman of the paper's Figure 2:
// every input port nominates its single oldest packet, regardless of what
// the other input ports are doing, and each output port serves the oldest
// nomination it receives. When several ports' oldest packets want the same
// output, OPF suffers arbitration collisions and delivers a poor matching —
// the motivating example for the interaction machinery in PIM and WFA, and
// the baseline SPAA's matching capability is compared to.
//
// Bitplane kernel: like SPAA's nominate step, the per-port oldest-packet
// scan walks PortRowMask x RowMask words with TrailingZeros64, and the
// output-port service loop visits only columns that received a nomination.
type OPF struct {
	// scratch, reused across calls
	noms   []opfNom
	grants []Grant
}

type opfNom struct {
	row, col int
	cell     Cell
}

// NewOPF returns the oldest-packet-first strawman.
func NewOPF() *OPF { return &OPF{} }

// Name implements Arbiter.
func (*OPF) Name() string { return "OPF" }

// Arbitrate implements Arbiter.
func (a *OPF) Arbitrate(m *Matrix) []Grant {
	// Group rows by input port; each port offers its overall-oldest packet.
	noms := a.noms[:0]
	var nomCols uint64
	for p := 0; p < m.Ports(); p++ {
		bestRow, bestCol := -1, -1
		var best Cell
		for rm := m.portRows[p]; rm != 0; rm &= rm - 1 {
			r := bits.TrailingZeros64(rm)
			base := r * m.Cols
			for cm := m.rowValid[r]; cm != 0; cm &= cm - 1 {
				c := bits.TrailingZeros64(cm)
				cell := m.cells[base+c]
				if bestRow == -1 || cell.Age < best.Age ||
					(cell.Age == best.Age && cell.Key < best.Key) {
					bestRow, bestCol, best = r, c, cell
				}
			}
		}
		if bestRow != -1 {
			noms = append(noms, opfNom{bestRow, bestCol, best})
			nomCols |= 1 << uint(bestCol)
		}
	}
	a.noms = noms
	// Each output port serves the oldest nomination; collisions lose.
	grants := a.grants[:0]
	for w := nomCols; w != 0; w &= w - 1 {
		c := bits.TrailingZeros64(w)
		best := -1
		for i, n := range noms {
			if n.col != c {
				continue
			}
			if best == -1 || n.cell.Age < noms[best].cell.Age ||
				(n.cell.Age == noms[best].cell.Age && n.cell.Key < noms[best].cell.Key) {
				best = i
			}
		}
		grants = append(grants, Grant{Row: noms[best].row, Col: c, Cell: noms[best].cell})
	}
	a.grants = grants
	return grants
}

package core

// contract_test.go property-tests the Arbiter contract across every
// algorithm in the package — the paper's measured configurations (SPAA,
// PIM, PIM1, WFA, MCM, OPF) and the extension points (iSLIP, WFA-plain)
// — against randomized request matrices that respect the 21364 builder
// invariants:
//
//   - legality: every grant set is a matching over valid cells
//     (CheckMatching);
//   - progress: a non-empty matrix always yields at least one grant;
//   - maximality, for the algorithms that guarantee it (MCM, both WFA
//     variants, WFA-plain): no trivially addable grant remains — no valid
//     cell whose row and column are both ungranted. The nomination-based
//     algorithms (SPAA, OPF) and the iterative ones (PIM, PIM1, iSLIP)
//     deliberately admit collisions or early termination in exchange for
//     hardware cost, so only progress is asserted for them;
//   - no aliasing: mutating the matrix after Arbitrate must not change
//     the returned grants (they are copies, valid until the next call);
//   - determinism: an identically seeded fresh arbiter replaying the
//     same matrix sequence reproduces every grant byte for byte.

import (
	"fmt"
	"slices"
	"testing"

	"alpha21364/internal/sim"
)

// contractCase is one arbiter under contract test.
type contractCase struct {
	name string
	// fresh constructs a new, identically seeded instance.
	fresh func() Arbiter
	// maximal marks algorithms whose matchings are guaranteed maximal.
	maximal bool
}

func contractCases(seed uint64) []contractCase {
	cases := []contractCase{
		{"iSLIP", func() Arbiter { return NewISLIP(PIMFullIterations) }, false},
		{"WFA-plain", func() Arbiter { return NewWFAPlain() }, true},
	}
	maximalKinds := map[Kind]bool{
		KindMCM: true, KindWFABase: true, KindWFARotary: true,
	}
	for k := Kind(0); k < NumKinds; k++ {
		k := k
		cases = append(cases, contractCase{
			name:    k.String(),
			fresh:   func() Arbiter { return New(k, sim.NewRNG(seed)) },
			maximal: maximalKinds[k],
		})
	}
	return cases
}

// randomMatrix fills a fresh 16x7 router-shaped matrix with up to 24
// random packets, each in one row and at most two columns — the builder
// invariants the timing router and standalone model uphold.
func randomMatrix(rng *sim.RNG, nextKey *uint64) *Matrix {
	m := NewRouterMatrix()
	n := rng.Intn(25)
	for i := 0; i < n; i++ {
		*nextKey++
		row := rng.Intn(m.Rows)
		age := int64(rng.Intn(60))
		c1 := rng.Intn(m.Cols)
		m.Set(row, c1, age, *nextKey, int32(row))
		if rng.Intn(2) == 0 {
			c2 := rng.Intn(m.Cols)
			if c2 != c1 {
				m.Set(row, c2, age, *nextKey, int32(row))
			}
		}
	}
	return m
}

// checkMaximal reports a valid cell whose row and column are both
// ungranted — a trivially addable grant a maximal matching cannot leave.
func checkMaximal(m *Matrix, grants []Grant) error {
	var rowUsed [RouterRows]bool
	var colUsed [RouterCols]bool
	for _, g := range grants {
		rowUsed[g.Row] = true
		colUsed[g.Col] = true
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if m.At(r, c).Valid && !rowUsed[r] && !colUsed[c] {
				return fmt.Errorf("addable grant left on cell (%d,%d)", r, c)
			}
		}
	}
	return nil
}

func copyGrants(grants []Grant) []Grant {
	return append([]Grant(nil), grants...)
}

func TestArbiterContract(t *testing.T) {
	const rounds = 300
	for _, tc := range contractCases(42) {
		t.Run(tc.name, func(t *testing.T) {
			// Pre-generate the matrix sequence so the determinism replay
			// below sees the identical inputs.
			mrng := sim.NewRNG(99)
			var nextKey uint64
			matrices := make([]*Matrix, rounds)
			for i := range matrices {
				matrices[i] = randomMatrix(mrng, &nextKey)
				if err := matrices[i].Validate(); err != nil {
					t.Fatalf("matrix generator broke the builder invariants: %v", err)
				}
			}

			arb := tc.fresh()
			history := make([][]Grant, rounds)
			for i, m := range matrices {
				grants := arb.Arbitrate(m)
				if err := CheckMatching(m, grants); err != nil {
					t.Fatalf("round %d: illegal matching: %v", i, err)
				}
				if m.ValidCount() > 0 && len(grants) == 0 {
					t.Fatalf("round %d: %d requests pending but no grant issued", i, m.ValidCount())
				}
				if tc.maximal {
					if err := checkMaximal(m, grants); err != nil {
						t.Fatalf("round %d: matching not maximal: %v", i, err)
					}
				}
				history[i] = copyGrants(grants)

				// Aliasing: wrecking the matrix must not reach into the
				// returned grants — they are valid until the next call.
				held := grants
				for r := 0; r < m.Rows; r++ {
					for c := 0; c < m.Cols; c++ {
						m.Clear(r, c)
					}
				}
				if !slices.Equal(held, history[i]) {
					t.Fatalf("round %d: grants alias the matrix (mutating cells changed them)", i)
				}
			}

			// Determinism: a fresh, identically seeded arbiter replaying
			// the same sequence reproduces every grant. (The matrices were
			// cleared above; regenerate the identical sequence.)
			mrng = sim.NewRNG(99)
			nextKey = 0
			replay := tc.fresh()
			for i := 0; i < rounds; i++ {
				m := randomMatrix(mrng, &nextKey)
				grants := replay.Arbitrate(m)
				if !slices.Equal(grants, history[i]) {
					t.Fatalf("round %d: replay diverged:\n got %+v\nwant %+v", i, grants, history[i])
				}
			}
		})
	}
}

// TestArbiterEmptyMatrix: every arbiter must return an empty matching on
// an empty matrix, and must tolerate repeated empty rounds (scratch reuse
// with nothing to reuse).
func TestArbiterEmptyMatrix(t *testing.T) {
	m := NewRouterMatrix()
	for _, tc := range contractCases(7) {
		arb := tc.fresh()
		for i := 0; i < 3; i++ {
			if grants := arb.Arbitrate(m); len(grants) != 0 {
				t.Errorf("%s: empty matrix yielded %d grants", tc.name, len(grants))
			}
		}
	}
}

package core

import (
	"testing"

	"alpha21364/internal/sim"
)

func TestISLIPIsValidMatching(t *testing.T) {
	rng := sim.NewRNG(31)
	islip := NewISLIP(4)
	m := NewRouterMatrix()
	for trial := 0; trial < 200; trial++ {
		fillRandom(m, rng, float64(trial%10)/10)
		if err := CheckMatching(m, islip.Arbitrate(m)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestISLIPMatchesPIMQuality(t *testing.T) {
	// The paper: iSLIP's "matching capabilities are similar to PIM's".
	rng := sim.NewRNG(32)
	islip := NewISLIP(PIMFullIterations)
	pim := NewPIM(PIMFullIterations, rng.Split())
	m := NewRouterMatrix()
	var si, sp int
	for trial := 0; trial < 400; trial++ {
		fillRandom(m, rng, 0.5)
		si += len(islip.Arbitrate(m))
		sp += len(pim.Arbitrate(m))
	}
	ratio := float64(si) / float64(sp)
	if ratio < 0.93 || ratio > 1.07 {
		t.Fatalf("iSLIP/PIM match ratio = %.3f, want ~1.0", ratio)
	}
}

func TestISLIPPointerDesynchronization(t *testing.T) {
	// The classic iSLIP property: under persistent contention the pointers
	// desynchronize and each requesting row is served in turn.
	islip := NewISLIP(1)
	m := NewRouterMatrix()
	wins := map[int]int{}
	for i := 0; i < 40; i++ {
		m.Reset()
		m.Set(0, 0, 1, uint64(3*i+1), 0)
		m.Set(4, 0, 1, uint64(3*i+2), 0)
		m.Set(8, 0, 1, uint64(3*i+3), 0)
		for _, g := range islip.Arbitrate(m) {
			wins[g.Row]++
		}
	}
	for _, r := range []int{0, 4, 8} {
		if wins[r] < 10 {
			t.Fatalf("row %d won only %d/40 under round-robin pointers: %v", r, wins[r], wins)
		}
	}
}

func TestISLIPSingleRequest(t *testing.T) {
	islip := NewISLIP(1)
	m := NewRouterMatrix()
	m.Set(7, 4, 3, 99, 0)
	grants := islip.Arbitrate(m)
	if len(grants) != 1 || grants[0].Row != 7 || grants[0].Col != 4 {
		t.Fatalf("lone request mishandled: %+v", grants)
	}
}

func TestRoundRobinPolicyCycles(t *testing.T) {
	p := NewRoundRobinPolicy(RouterRows, RouterCols)
	rows := []int{2, 7, 11}
	net := []bool{true, true, false}
	seen := map[int]int{}
	for i := 0; i < 30; i++ {
		seen[rows[p.Select(0, rows, net)]]++
	}
	for _, r := range rows {
		if seen[r] != 10 {
			t.Fatalf("round-robin uneven: %v", seen)
		}
	}
}

func TestRandomPolicyCoversAll(t *testing.T) {
	p := NewRandomPolicy(sim.NewRNG(5))
	rows := []int{1, 2, 3, 4}
	net := make([]bool, 4)
	seen := map[int]int{}
	for i := 0; i < 400; i++ {
		seen[rows[p.Select(0, rows, net)]]++
	}
	for _, r := range rows {
		if seen[r] < 50 {
			t.Fatalf("random policy starved row %d: %v", r, seen)
		}
	}
}

func TestPriorityChainIsFixed(t *testing.T) {
	p := NewPriorityChainPolicy()
	for i := 0; i < 10; i++ {
		if w := p.Select(0, []int{9, 3, 12}, make([]bool, 3)); w != 1 {
			t.Fatalf("priority chain picked index %d, want lowest row", w)
		}
	}
}

func TestLRSPolicyAdapterNames(t *testing.T) {
	if got := NewLRSPolicy(4, 2, false).Name(); got != "lrs" {
		t.Errorf("name = %q", got)
	}
	if got := NewLRSPolicy(4, 2, true).Name(); got != "rotary-lrs" {
		t.Errorf("rotary name = %q", got)
	}
}

func TestWFAPlainIsMaximalButUnfair(t *testing.T) {
	a := NewWFAPlain()
	rng := sim.NewRNG(33)
	m := NewRouterMatrix()
	// Maximality + matching validity.
	for trial := 0; trial < 100; trial++ {
		fillRandom(m, rng, 0.3)
		grants := a.Arbitrate(m)
		if err := CheckMatching(m, grants); err != nil {
			t.Fatal(err)
		}
		rowUsed := make([]bool, m.Rows)
		colUsed := make([]bool, m.Cols)
		for _, g := range grants {
			rowUsed[g.Row], colUsed[g.Col] = true, true
		}
		for r := 0; r < m.Rows; r++ {
			for c := 0; c < m.Cols; c++ {
				if m.At(r, c).Valid && !rowUsed[r] && !colUsed[c] {
					t.Fatalf("plain WFA left addable cell (%d,%d)", r, c)
				}
			}
		}
	}
	// Unfairness: two rows permanently contesting column 0 — the top-left
	// row always wins (the defect wrapping + rotation repairs).
	wins := map[int]int{}
	for i := 0; i < 20; i++ {
		m.Reset()
		m.Set(0, 0, 1, uint64(2*i+1), 0)
		m.Set(5, 0, 1, uint64(2*i+2), 0)
		for _, g := range a.Arbitrate(m) {
			wins[g.Row]++
		}
	}
	if wins[0] != 20 || wins[5] != 0 {
		t.Fatalf("plain WFA should be rigidly unfair: %v", wins)
	}
	// The wrapped, rotated WFA serves both.
	wrapped := NewWFA()
	wins = map[int]int{}
	for i := 0; i < 32; i++ {
		m.Reset()
		m.Set(0, 0, 1, uint64(2*i+1), 0)
		m.Set(5, 0, 1, uint64(2*i+2), 0)
		for _, g := range wrapped.Arbitrate(m) {
			wins[g.Row]++
		}
	}
	if wins[0] == 0 || wins[5] == 0 {
		t.Fatalf("wrapped WFA should rotate the winner: %v", wins)
	}
}

func TestWFAPlainVsWrappedMatchingQuality(t *testing.T) {
	// "The Wrapped WFA provides matching performance similar to that of
	// WFA's" (§3.2): totals within a few percent on random traffic.
	rng := sim.NewRNG(34)
	plain := NewWFAPlain()
	wrapped := NewWFA()
	m := NewRouterMatrix()
	var sp, sw int
	for trial := 0; trial < 400; trial++ {
		fillRandom(m, rng, 0.4)
		sp += len(plain.Arbitrate(m))
		sw += len(wrapped.Arbitrate(m))
	}
	ratio := float64(sw) / float64(sp)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("wrapped/plain matching ratio = %.3f, want ~1.0", ratio)
	}
}

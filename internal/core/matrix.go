// Package core implements the arbitration algorithms compared by the paper:
// SPAA (the Alpha 21364's Simple Pipelined Arbitration Algorithm, the
// paper's contribution), PIM and its single-iteration variant PIM1, the
// wrapped Wave-Front Arbiter (WFA) of the SGI Spider, the exhaustive
// Maximal Cardinality Matching (MCM) upper bound, and the naive
// oldest-packet-first (OPF) strawman of the paper's Figure 2 — plus the
// Rotary Rule prioritization policy applied to WFA and SPAA.
//
// All algorithms operate on a connection Matrix (paper §3, Figure 5): rows
// are the 16 read-port ("input port" or "local") arbiters, columns are the
// 7 output-port ("global") arbiters, and each valid cell holds the oldest
// packet the row can nominate to that column this cycle. The matrix builder
// (the standalone model or the timing router) is responsible for the
// 21364's structural constraints: shaded (disconnected) cells are never
// set, a packet appears in the rows of only one read port (the read-port
// pairs synchronize), and a packet appears in at most two columns (adaptive
// routing in the minimal rectangle).
package core

import "fmt"

// Cell is one matrix entry: the candidate packet a row offers a column.
type Cell struct {
	Valid   bool
	Age     int64  // arrival order; smaller is older
	Key     uint64 // packet identity: equal keys are the same packet
	Payload int32  // caller-defined handle carried through to the grant
}

// Matrix is the 21364's connection matrix for one arbitration pass.
type Matrix struct {
	Rows, Cols int
	// RowPort maps a row (read-port arbiter) to its input port; the two
	// rows of an input port share buffers.
	RowPort []int8
	// RowNetwork marks rows fed by interprocessor (network) input ports;
	// the Rotary Rule prioritizes these.
	RowNetwork []bool
	cells      []Cell
}

// NewMatrix returns an empty matrix with the given shape and uniform row
// metadata (one row per port, no network rows). Use NewRouterMatrix for
// the 21364 shape.
func NewMatrix(rows, cols int) *Matrix {
	m := &Matrix{
		Rows:       rows,
		Cols:       cols,
		RowPort:    make([]int8, rows),
		RowNetwork: make([]bool, rows),
		cells:      make([]Cell, rows*cols),
	}
	for i := range m.RowPort {
		m.RowPort[i] = int8(i)
	}
	return m
}

// RouterRows and RouterCols give the 21364 shape: 8 input ports x 2 read
// ports, 7 output ports.
const (
	RouterRows = 16
	RouterCols = 7
)

// NewRouterMatrix returns an empty 16x7 matrix shaped like the 21364:
// row 2p and 2p+1 are read ports 0 and 1 of input port p, and input ports
// 0-3 (rows 0-7) are the network ports (north, south, east, west).
func NewRouterMatrix() *Matrix {
	m := NewMatrix(RouterRows, RouterCols)
	for i := 0; i < RouterRows; i++ {
		m.RowPort[i] = int8(i / 2)
		m.RowNetwork[i] = i < 8
	}
	return m
}

// Reset clears all cells, keeping the shape and row metadata.
func (m *Matrix) Reset() {
	for i := range m.cells {
		m.cells[i].Valid = false
	}
}

// Set fills the cell at (row, col).
func (m *Matrix) Set(row, col int, age int64, key uint64, payload int32) {
	m.cells[row*m.Cols+col] = Cell{Valid: true, Age: age, Key: key, Payload: payload}
}

// Clear invalidates the cell at (row, col).
func (m *Matrix) Clear(row, col int) { m.cells[row*m.Cols+col].Valid = false }

// At returns the cell at (row, col).
func (m *Matrix) At(row, col int) Cell { return m.cells[row*m.Cols+col] }

// ValidCount returns the number of valid cells (nominations).
func (m *Matrix) ValidCount() int {
	n := 0
	for i := range m.cells {
		if m.cells[i].Valid {
			n++
		}
	}
	return n
}

// Validate checks the builder invariants: a packet key appears in at most
// one row and at most two columns. It is intended for tests and debug
// builds; it returns an error rather than panicking.
func (m *Matrix) Validate() error {
	rowOf := make(map[uint64]int)
	count := make(map[uint64]int)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			cell := m.At(r, c)
			if !cell.Valid {
				continue
			}
			if prev, ok := rowOf[cell.Key]; ok && prev != r {
				return fmt.Errorf("core: packet %d nominated by rows %d and %d", cell.Key, prev, r)
			}
			rowOf[cell.Key] = r
			count[cell.Key]++
			if count[cell.Key] > 2 {
				return fmt.Errorf("core: packet %d nominated to more than two columns", cell.Key)
			}
		}
	}
	return nil
}

// Grant is one (row, column) match chosen by an arbitration algorithm.
type Grant struct {
	Row, Col int
	Cell     Cell
}

// Arbiter is an arbitration algorithm. Arbitrate returns a matching: at
// most one grant per row and per column, each on a valid cell. Arbiters
// carry their own prioritization state (round-robin pointers, LRS
// matrices, RNG) across calls.
//
// To keep the per-cycle hot path allocation-free, implementations return
// an internally reused slice: the grants are valid only until the next
// Arbitrate call on the same arbiter. Callers that need to retain them
// must copy.
type Arbiter interface {
	Name() string
	Arbitrate(m *Matrix) []Grant
}

// CheckMatching verifies that grants form a matching over valid cells of m;
// it is used by tests and by the simulator's self-checks.
func CheckMatching(m *Matrix, grants []Grant) error {
	rowUsed := make([]bool, m.Rows)
	colUsed := make([]bool, m.Cols)
	for _, g := range grants {
		if g.Row < 0 || g.Row >= m.Rows || g.Col < 0 || g.Col >= m.Cols {
			return fmt.Errorf("core: grant (%d,%d) out of range", g.Row, g.Col)
		}
		if !m.At(g.Row, g.Col).Valid {
			return fmt.Errorf("core: grant (%d,%d) on invalid cell", g.Row, g.Col)
		}
		if rowUsed[g.Row] {
			return fmt.Errorf("core: row %d granted twice", g.Row)
		}
		if colUsed[g.Col] {
			return fmt.Errorf("core: column %d granted twice", g.Col)
		}
		rowUsed[g.Row] = true
		colUsed[g.Col] = true
	}
	return nil
}

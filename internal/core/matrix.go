// Package core implements the arbitration algorithms compared by the paper:
// SPAA (the Alpha 21364's Simple Pipelined Arbitration Algorithm, the
// paper's contribution), PIM and its single-iteration variant PIM1, the
// wrapped Wave-Front Arbiter (WFA) of the SGI Spider, the exhaustive
// Maximal Cardinality Matching (MCM) upper bound, and the naive
// oldest-packet-first (OPF) strawman of the paper's Figure 2 — plus the
// Rotary Rule prioritization policy applied to WFA and SPAA.
//
// All algorithms operate on a connection Matrix (paper §3, Figure 5): rows
// are the 16 read-port ("input port" or "local") arbiters, columns are the
// 7 output-port ("global") arbiters, and each valid cell holds the oldest
// packet the row can nominate to that column this cycle. The matrix builder
// (the standalone model or the timing router) is responsible for the
// 21364's structural constraints: shaded (disconnected) cells are never
// set, a packet appears in the rows of only one read port (the read-port
// pairs synchronize), and a packet appears in at most two columns (adaptive
// routing in the minimal rectangle).
//
// Bitplane representation: alongside the Cell slice, the matrix maintains
// per-row validity masks (bit c of RowMask(r) ⇔ cell (r,c) valid) and
// per-column request words (bit r of ColMask(c) ⇔ cell (r,c) valid), kept
// in sync incrementally by Set/SetMany/Clear/Reset, plus row-port and
// network-row masks derived once from the row metadata. The arbitration
// kernels iterate candidates with math/bits on these words instead of
// walking Cells one by one; reference.go retains the scalar kernels as the
// differential oracle.
package core

import (
	"fmt"
	"math/bits"
)

// MaxDim bounds the matrix shape so a row fits a per-column request word
// and a column fits a per-row validity word (one uint64 each). The 21364
// needs 16x7; the cap exists for the extension shapes.
const MaxDim = 64

// Cell is one matrix entry: the candidate packet a row offers a column.
type Cell struct {
	Valid   bool
	Age     int64  // arrival order; smaller is older
	Key     uint64 // packet identity: equal keys are the same packet
	Payload int32  // caller-defined handle carried through to the grant
}

// Matrix is the 21364's connection matrix for one arbitration pass.
type Matrix struct {
	Rows, Cols int
	// RowPort maps a row (read-port arbiter) to its input port; the two
	// rows of an input port share buffers. Callers that mutate it after
	// construction must call SyncRowMeta.
	RowPort []int8
	// RowNetwork marks rows fed by interprocessor (network) input ports;
	// the Rotary Rule prioritizes these. Callers that mutate it after
	// construction must call SyncRowMeta.
	RowNetwork []bool
	cells      []Cell
	// rowValid[r] bit c and colReq[c] bit r both mirror cells[r*Cols+c].Valid.
	rowValid []uint64
	colReq   []uint64
	// portRows[p] is the mask of rows RowPort maps to port p; netRows is
	// the mask of rows RowNetwork marks. Both derive from SyncRowMeta.
	portRows []uint64
	netRows  uint64
}

// NewMatrix returns an empty matrix with the given shape and uniform row
// metadata (one row per port, no network rows). Use NewRouterMatrix for
// the 21364 shape. Shapes beyond MaxDim rows or columns are rejected.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 1 || rows > MaxDim || cols < 1 || cols > MaxDim {
		panic(fmt.Sprintf("core: matrix shape %dx%d outside 1..%d", rows, cols, MaxDim))
	}
	m := &Matrix{
		Rows:       rows,
		Cols:       cols,
		RowPort:    make([]int8, rows),
		RowNetwork: make([]bool, rows),
		cells:      make([]Cell, rows*cols),
		rowValid:   make([]uint64, rows),
		colReq:     make([]uint64, cols),
	}
	for i := range m.RowPort {
		m.RowPort[i] = int8(i)
	}
	m.SyncRowMeta()
	return m
}

// RouterRows and RouterCols give the 21364 shape: 8 input ports x 2 read
// ports, 7 output ports.
const (
	RouterRows = 16
	RouterCols = 7
)

// NewRouterMatrix returns an empty 16x7 matrix shaped like the 21364:
// row 2p and 2p+1 are read ports 0 and 1 of input port p, and input ports
// 0-3 (rows 0-7) are the network ports (north, south, east, west).
func NewRouterMatrix() *Matrix {
	m := NewMatrix(RouterRows, RouterCols)
	for i := 0; i < RouterRows; i++ {
		m.RowPort[i] = int8(i / 2)
		m.RowNetwork[i] = i < 8
	}
	m.SyncRowMeta()
	return m
}

// SyncRowMeta recomputes the row-port and network-row masks from RowPort
// and RowNetwork. The constructors call it; call it again after mutating
// either slice directly.
func (m *Matrix) SyncRowMeta() {
	ports := 0
	for _, p := range m.RowPort {
		if int(p)+1 > ports {
			ports = int(p) + 1
		}
	}
	if cap(m.portRows) < ports {
		m.portRows = make([]uint64, ports)
	}
	m.portRows = m.portRows[:ports]
	for p := range m.portRows {
		m.portRows[p] = 0
	}
	m.netRows = 0
	for r := 0; r < m.Rows; r++ {
		m.portRows[m.RowPort[r]] |= 1 << uint(r)
		if m.RowNetwork[r] {
			m.netRows |= 1 << uint(r)
		}
	}
}

// Reset clears all cells, keeping the shape and row metadata. Only cells
// the validity masks mark are touched, so clearing a sparse matrix costs
// its population, not its area.
func (m *Matrix) Reset() {
	for r, w := range m.rowValid {
		if w == 0 {
			continue
		}
		base := r * m.Cols
		for ; w != 0; w &= w - 1 {
			m.cells[base+bits.TrailingZeros64(w)].Valid = false
		}
		m.rowValid[r] = 0
	}
	for c := range m.colReq {
		m.colReq[c] = 0
	}
}

// Set fills the cell at (row, col).
func (m *Matrix) Set(row, col int, age int64, key uint64, payload int32) {
	m.cells[row*m.Cols+col] = Cell{Valid: true, Age: age, Key: key, Payload: payload}
	m.rowValid[row] |= 1 << uint(col)
	m.colReq[col] |= 1 << uint(row)
}

// SetMany fills every cell of row named by cols (a column bitmask) with
// the same packet — the builder fast path for a packet nominated to all
// its candidate outputs at once.
func (m *Matrix) SetMany(row int, cols uint64, age int64, key uint64, payload int32) {
	base := row * m.Cols
	m.rowValid[row] |= cols
	for w := cols; w != 0; w &= w - 1 {
		col := bits.TrailingZeros64(w)
		m.cells[base+col] = Cell{Valid: true, Age: age, Key: key, Payload: payload}
		m.colReq[col] |= 1 << uint(row)
	}
}

// Clear invalidates the cell at (row, col).
func (m *Matrix) Clear(row, col int) {
	m.cells[row*m.Cols+col].Valid = false
	m.rowValid[row] &^= 1 << uint(col)
	m.colReq[col] &^= 1 << uint(row)
}

// At returns the cell at (row, col).
func (m *Matrix) At(row, col int) Cell { return m.cells[row*m.Cols+col] }

// RowMask returns the validity word of a row: bit c set ⇔ cell (row, c)
// is valid.
func (m *Matrix) RowMask(row int) uint64 { return m.rowValid[row] }

// ColMask returns the request word of a column: bit r set ⇔ cell (r, col)
// is valid.
func (m *Matrix) ColMask(col int) uint64 { return m.colReq[col] }

// NetworkRowMask returns the mask of rows fed by network input ports.
func (m *Matrix) NetworkRowMask() uint64 { return m.netRows }

// PortRowMask returns the mask of rows belonging to an input port.
func (m *Matrix) PortRowMask(port int) uint64 { return m.portRows[port] }

// Ports returns the number of input ports the row metadata names
// (max RowPort + 1).
func (m *Matrix) Ports() int { return len(m.portRows) }

// ValidCount returns the number of valid cells (nominations).
func (m *Matrix) ValidCount() int {
	n := 0
	for _, w := range m.rowValid {
		n += bits.OnesCount64(w)
	}
	return n
}

// Validate checks the builder invariants: a packet key appears in at most
// one row and at most two columns. It is intended for tests and debug
// builds; it returns an error rather than panicking.
func (m *Matrix) Validate() error {
	rowOf := make(map[uint64]int)
	count := make(map[uint64]int)
	for r := 0; r < m.Rows; r++ {
		base := r * m.Cols
		for w := m.rowValid[r]; w != 0; w &= w - 1 {
			cell := m.cells[base+bits.TrailingZeros64(w)]
			if prev, ok := rowOf[cell.Key]; ok && prev != r {
				return fmt.Errorf("core: packet %d nominated by rows %d and %d", cell.Key, prev, r)
			}
			rowOf[cell.Key] = r
			count[cell.Key]++
			if count[cell.Key] > 2 {
				return fmt.Errorf("core: packet %d nominated to more than two columns", cell.Key)
			}
		}
	}
	return nil
}

// Grant is one (row, column) match chosen by an arbitration algorithm.
type Grant struct {
	Row, Col int
	Cell     Cell
}

// Arbiter is an arbitration algorithm. Arbitrate returns a matching: at
// most one grant per row and per column, each on a valid cell. Arbiters
// carry their own prioritization state (round-robin pointers, LRS
// matrices, RNG) across calls.
//
// To keep the per-cycle hot path allocation-free, implementations return
// an internally reused slice: the grants are valid only until the next
// Arbitrate call on the same arbiter. Callers that need to retain them
// must copy.
type Arbiter interface {
	Name() string
	Arbitrate(m *Matrix) []Grant
}

// CheckMatching verifies that grants form a matching over valid cells of m;
// it is used by tests and by the simulator's self-checks.
func CheckMatching(m *Matrix, grants []Grant) error {
	var rowUsed, colUsed uint64
	for _, g := range grants {
		if g.Row < 0 || g.Row >= m.Rows || g.Col < 0 || g.Col >= m.Cols {
			return fmt.Errorf("core: grant (%d,%d) out of range", g.Row, g.Col)
		}
		if m.rowValid[g.Row]&(1<<uint(g.Col)) == 0 {
			return fmt.Errorf("core: grant (%d,%d) on invalid cell", g.Row, g.Col)
		}
		if rowUsed&(1<<uint(g.Row)) != 0 {
			return fmt.Errorf("core: row %d granted twice", g.Row)
		}
		if colUsed&(1<<uint(g.Col)) != 0 {
			return fmt.Errorf("core: column %d granted twice", g.Col)
		}
		rowUsed |= 1 << uint(g.Row)
		colUsed |= 1 << uint(g.Col)
	}
	return nil
}

package core

import "alpha21364/internal/obs"

// Instrumented wrappers for the telemetry layer (internal/obs). Each
// delegates to the wrapped implementation unchanged — same winners, same
// internal fairness-state evolution — and only adds counter writes, so
// wrapping is observation-only by construction. The router installs them
// when metrics are enabled; the default (unwrapped) path pays nothing.

type instrumentedPolicy struct {
	inner SelectPolicy
	m     *obs.ArbiterMetrics
}

// InstrumentPolicy wraps a SelectPolicy so every Select call counts its
// competitors (Requests), the single winner (Grants), and the losers
// (Conflicts) into m.
func InstrumentPolicy(p SelectPolicy, m *obs.ArbiterMetrics) SelectPolicy {
	return instrumentedPolicy{inner: p, m: m}
}

func (ip instrumentedPolicy) Name() string { return ip.inner.Name() }

func (ip instrumentedPolicy) Select(col int, rows []int, network []bool) int {
	w := ip.inner.Select(col, rows, network)
	ip.m.Requests += int64(len(rows))
	ip.m.Grants++
	ip.m.Conflicts += int64(len(rows) - 1)
	return w
}

type instrumentedArbiter struct {
	inner Arbiter
	m     *obs.ArbiterMetrics
}

// InstrumentArbiter wraps a matrix Arbiter so every Arbitrate call
// counts the valid nominations offered (Requests), the matching found
// (Grants), and the unmatched remainder (Conflicts) into m.
func InstrumentArbiter(a Arbiter, m *obs.ArbiterMetrics) Arbiter {
	return instrumentedArbiter{inner: a, m: m}
}

func (ia instrumentedArbiter) Name() string { return ia.inner.Name() }

func (ia instrumentedArbiter) Arbitrate(mx *Matrix) []Grant {
	gs := ia.inner.Arbitrate(mx)
	// ValidCount sums the row validity words' popcounts, so counting the
	// offered nominations costs Rows word ops, not a cell rescan.
	req := int64(mx.ValidCount())
	ia.m.Requests += req
	ia.m.Grants += int64(len(gs))
	ia.m.Conflicts += req - int64(len(gs))
	return gs
}

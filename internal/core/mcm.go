package core

// MCM is the Maximal Cardinality Matching algorithm of the paper (§3): a
// maximum-weight matching with all weights equal, i.e. a maximum bipartite
// matching between the 16 read-port arbiters and the 7 output-port
// arbiters. The paper uses MCM as an upper bound in the standalone model
// only — it "exhaustively searches the space for the maximum number of
// matches" and is not implementable in hardware within a few cycles.
//
// We implement it with Hopcroft–Karp, which finds a provably maximum
// matching (the quantity the paper measures); tests cross-check it against
// brute-force search on small matrices.
type MCM struct {
	// scratch, sized on first use
	matchRow []int // row -> col or -1
	matchCol []int // col -> row or -1
	dist     []int
	queue    []int
	grants   []Grant // reused across calls
}

// NewMCM returns the exhaustive matcher.
func NewMCM() *MCM { return &MCM{} }

// Name implements Arbiter.
func (a *MCM) Name() string { return "MCM" }

const inf = int(^uint(0) >> 1)

// Arbitrate implements Arbiter, returning a maximum matching.
func (a *MCM) Arbitrate(m *Matrix) []Grant {
	if cap(a.matchRow) < m.Rows {
		a.matchRow = make([]int, m.Rows)
		a.dist = make([]int, m.Rows+1)
		a.queue = make([]int, 0, m.Rows)
	}
	if cap(a.matchCol) < m.Cols {
		a.matchCol = make([]int, m.Cols)
	}
	matchRow := a.matchRow[:m.Rows]
	matchCol := a.matchCol[:m.Cols]
	for i := range matchRow {
		matchRow[i] = -1
	}
	for i := range matchCol {
		matchCol[i] = -1
	}

	// Hopcroft–Karp: repeatedly find a maximal set of shortest augmenting
	// paths via BFS layering + DFS augmentation.
	dist := a.dist[:m.Rows+1]
	for {
		// BFS from free rows. dist[m.Rows] is the nil sentinel.
		q := a.queue[:0]
		for r := 0; r < m.Rows; r++ {
			if matchRow[r] == -1 {
				dist[r] = 0
				q = append(q, r)
			} else {
				dist[r] = inf
			}
		}
		dist[m.Rows] = inf
		for head := 0; head < len(q); head++ {
			r := q[head]
			if dist[r] >= dist[m.Rows] {
				continue
			}
			for c := 0; c < m.Cols; c++ {
				if !m.At(r, c).Valid {
					continue
				}
				nr := matchCol[c]
				idx := m.Rows
				if nr != -1 {
					idx = nr
				}
				if dist[idx] == inf {
					dist[idx] = dist[r] + 1
					if nr != -1 {
						q = append(q, nr)
					}
				}
			}
		}
		if dist[m.Rows] == inf {
			break // no augmenting path
		}
		augmented := false
		for r := 0; r < m.Rows; r++ {
			if matchRow[r] == -1 && a.augment(m, r, matchRow, matchCol, dist) {
				augmented = true
			}
		}
		if !augmented {
			break
		}
	}

	grants := a.grants[:0]
	for r := 0; r < m.Rows; r++ {
		if c := matchRow[r]; c != -1 {
			grants = append(grants, Grant{Row: r, Col: c, Cell: m.At(r, c)})
		}
	}
	a.grants = grants
	return grants
}

func (a *MCM) augment(m *Matrix, r int, matchRow, matchCol, dist []int) bool {
	for c := 0; c < m.Cols; c++ {
		if !m.At(r, c).Valid {
			continue
		}
		nr := matchCol[c]
		idx := m.Rows
		if nr != -1 {
			idx = nr
		}
		if dist[idx] == dist[r]+1 {
			if nr == -1 || a.augment(m, nr, matchRow, matchCol, dist) {
				matchRow[r] = c
				matchCol[c] = r
				return true
			}
		}
	}
	dist[r] = inf
	return false
}

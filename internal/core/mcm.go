package core

import "math/bits"

// MCM is the Maximal Cardinality Matching algorithm of the paper (§3): a
// maximum-weight matching with all weights equal, i.e. a maximum bipartite
// matching between the 16 read-port arbiters and the 7 output-port
// arbiters. The paper uses MCM as an upper bound in the standalone model
// only — it "exhaustively searches the space for the maximum number of
// matches" and is not implementable in hardware within a few cycles.
//
// We implement it with Hopcroft–Karp, which finds a provably maximum
// matching (the quantity the paper measures); tests cross-check it against
// brute-force search on small matrices.
//
// Bitplane kernel: BFS layering and DFS augmentation iterate each row's
// validity word with TrailingZeros64 instead of probing all columns, rows
// with no requests are pruned from the search with the nonempty-row mask,
// and the phase loop stops as soon as the matching reaches the popcount
// bound min(|nonempty rows|, |requested columns|) — the maximum possible
// cardinality — skipping the final no-progress BFS pass.
type MCM struct {
	// scratch, sized on first use
	matchRow []int // row -> col or -1
	matchCol []int // col -> row or -1
	dist     []int
	queue    []int
	grants   []Grant // reused across calls
}

// NewMCM returns the exhaustive matcher.
func NewMCM() *MCM { return &MCM{} }

// Name implements Arbiter.
func (a *MCM) Name() string { return "MCM" }

const inf = int(^uint(0) >> 1)

// Arbitrate implements Arbiter, returning a maximum matching.
func (a *MCM) Arbitrate(m *Matrix) []Grant {
	if cap(a.matchRow) < m.Rows {
		a.matchRow = make([]int, m.Rows)
		a.dist = make([]int, m.Rows+1)
		a.queue = make([]int, 0, m.Rows)
	}
	if cap(a.matchCol) < m.Cols {
		a.matchCol = make([]int, m.Cols)
	}
	matchRow := a.matchRow[:m.Rows]
	matchCol := a.matchCol[:m.Cols]
	for i := range matchRow {
		matchRow[i] = -1
	}
	for i := range matchCol {
		matchCol[i] = -1
	}

	// Popcount bound: a matching cannot exceed the number of rows with any
	// request, nor the number of columns requested by anyone.
	var liveRows, liveCols uint64
	for c, w := range m.colReq {
		liveRows |= w
		if w != 0 {
			liveCols |= 1 << uint(c)
		}
	}
	bound := bits.OnesCount64(liveRows)
	if cb := bits.OnesCount64(liveCols); cb < bound {
		bound = cb
	}
	size := 0

	// Hopcroft–Karp: repeatedly find a maximal set of shortest augmenting
	// paths via BFS layering + DFS augmentation. Rows outside liveRows
	// have no edges and are pruned from both phases.
	dist := a.dist[:m.Rows+1]
	for size < bound {
		// BFS from free rows. dist[m.Rows] is the nil sentinel.
		q := a.queue[:0]
		for lr := liveRows; lr != 0; lr &= lr - 1 {
			r := bits.TrailingZeros64(lr)
			if matchRow[r] == -1 {
				dist[r] = 0
				q = append(q, r)
			} else {
				dist[r] = inf
			}
		}
		dist[m.Rows] = inf
		for head := 0; head < len(q); head++ {
			r := q[head]
			if dist[r] >= dist[m.Rows] {
				continue
			}
			for w := m.rowValid[r]; w != 0; w &= w - 1 {
				c := bits.TrailingZeros64(w)
				nr := matchCol[c]
				idx := m.Rows
				if nr != -1 {
					idx = nr
				}
				if dist[idx] == inf {
					dist[idx] = dist[r] + 1
					if nr != -1 {
						q = append(q, nr)
					}
				}
			}
		}
		if dist[m.Rows] == inf {
			break // no augmenting path
		}
		augmented := false
		for lr := liveRows; lr != 0; lr &= lr - 1 {
			r := bits.TrailingZeros64(lr)
			if matchRow[r] == -1 && a.augment(m, r, matchRow, matchCol, dist) {
				augmented = true
				size++
			}
		}
		if !augmented {
			break
		}
	}

	grants := a.grants[:0]
	for lr := liveRows; lr != 0; lr &= lr - 1 {
		r := bits.TrailingZeros64(lr)
		if c := matchRow[r]; c != -1 {
			grants = append(grants, Grant{Row: r, Col: c, Cell: m.At(r, c)})
		}
	}
	a.grants = grants
	return grants
}

func (a *MCM) augment(m *Matrix, r int, matchRow, matchCol, dist []int) bool {
	for w := m.rowValid[r]; w != 0; w &= w - 1 {
		c := bits.TrailingZeros64(w)
		nr := matchCol[c]
		idx := m.Rows
		if nr != -1 {
			idx = nr
		}
		if dist[idx] == dist[r]+1 {
			if nr == -1 || a.augment(m, nr, matchRow, matchCol, dist) {
				matchRow[r] = c
				matchCol[c] = r
				return true
			}
		}
	}
	dist[r] = inf
	return false
}

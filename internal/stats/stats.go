// Package stats collects the measurements the paper reports: average packet
// latency and delivered throughput in flits/router/ns, presented as Burton
// Normal Form (BNF) points (latency on the vertical axis against delivered
// throughput on the horizontal axis, §4.3), plus supporting counters used
// by tests and the experiment harness.
package stats

import (
	"fmt"
	"math"

	"alpha21364/internal/packet"
	"alpha21364/internal/sim"
)

// histBuckets is the number of power-of-two latency histogram buckets
// (bucket i covers [2^i, 2^(i+1)) ticks).
const histBuckets = 32

// fineBuckets is the tick-resolution region of the latency histogram:
// latencies below fineBuckets ticks (2^16 ticks = 5461 ns, far beyond
// any non-collapsed run's tail) are counted exactly, one bucket per
// tick, so the reported p50/p95/p99 are exact for the sample counts we
// use. Latencies at or above it fall back to the power-of-two buckets,
// whose upper-bound quantiles only engage deep in saturation collapse.
const fineBuckets = 1 << 16

// Collector accumulates delivery statistics. Measurements before the
// warmup boundary are ignored, as the paper discards cold-start transients
// in its 75,000-cycle runs.
type Collector struct {
	warmupEnd sim.Ticks

	injectedPackets int64 // all injections, including warmup
	measuredStart   sim.Ticks

	packets    int64
	flits      int64
	latencySum sim.Ticks
	latencyMin sim.Ticks
	latencyMax sim.Ticks
	hist       [histBuckets]int64
	// fine counts latencies below fineBuckets ticks exactly, one bucket
	// per tick; fineCount is their total. A fixed 256 KiB array per
	// collector (one per simulation) in exchange for exact quantiles and
	// no per-sample allocation.
	fine      [fineBuckets]uint32
	fineCount int64
	hops      int64

	perClassPackets [packet.NumClasses]int64

	epochs *EpochSeries
}

// TrackEpochs attaches a delivered-flit time series with the given epoch
// length; it records all deliveries, warmup included, so the oscillation
// onset is visible.
func (c *Collector) TrackEpochs(epoch sim.Ticks) *EpochSeries {
	c.epochs = NewEpochSeries(epoch)
	return c.epochs
}

// NewCollector returns a collector that measures deliveries at or after
// warmupEnd.
func NewCollector(warmupEnd sim.Ticks) *Collector {
	return &Collector{warmupEnd: warmupEnd, latencyMin: math.MaxInt64}
}

// WarmupEnd returns the measurement start boundary.
func (c *Collector) WarmupEnd() sim.Ticks { return c.warmupEnd }

// Injected counts a packet handed to a source local port.
func (c *Collector) Injected(p *packet.Packet) { c.injectedPackets++ }

// Delivered records a packet's arrival at its destination local port.
func (c *Collector) Delivered(p *packet.Packet, at sim.Ticks) {
	if c.epochs != nil {
		c.epochs.Record(at, p.Flits)
	}
	if at < c.warmupEnd {
		return
	}
	lat := at - p.Created
	if lat < 0 {
		panic(fmt.Sprintf("stats: negative latency for %v: created %d, delivered %d", p, p.Created, at))
	}
	c.packets++
	c.flits += int64(p.Flits)
	c.latencySum += lat
	if lat < c.latencyMin {
		c.latencyMin = lat
	}
	if lat > c.latencyMax {
		c.latencyMax = lat
	}
	c.hist[bucketOf(lat)]++
	if lat < fineBuckets {
		c.fine[lat]++
		c.fineCount++
	}
	c.hops += int64(p.Hops)
	c.perClassPackets[p.Class]++
}

func bucketOf(lat sim.Ticks) int {
	b := 0
	for v := lat; v > 1 && b < histBuckets-1; v >>= 1 {
		b++
	}
	return b
}

// Packets returns the number of measured deliveries.
func (c *Collector) Packets() int64 { return c.packets }

// InjectedPackets returns the number of injections (including warmup).
func (c *Collector) InjectedPackets() int64 { return c.injectedPackets }

// Flits returns the measured delivered flit count.
func (c *Collector) Flits() int64 { return c.flits }

// ClassPackets returns measured deliveries of one class.
func (c *Collector) ClassPackets(cl packet.Class) int64 { return c.perClassPackets[cl] }

// MeanHops returns the average router-to-router hop count of measured
// packets.
func (c *Collector) MeanHops() float64 {
	if c.packets == 0 {
		return 0
	}
	return float64(c.hops) / float64(c.packets)
}

// AvgLatencyNS returns the mean packet latency in nanoseconds.
func (c *Collector) AvgLatencyNS() float64 {
	if c.packets == 0 {
		return 0
	}
	return (float64(c.latencySum) / float64(c.packets)) / float64(sim.TicksPerNS)
}

// MinLatencyNS and MaxLatencyNS return the observed latency extremes.
func (c *Collector) MinLatencyNS() float64 {
	if c.packets == 0 {
		return 0
	}
	return c.latencyMin.NS()
}

// MaxLatencyNS returns the largest observed latency.
func (c *Collector) MaxLatencyNS() float64 {
	if c.packets == 0 {
		return 0
	}
	return c.latencyMax.NS()
}

// PercentileLatencyNS returns the p-quantile latency (p in (0,1]). The
// value is exact (to the tick) while the quantile falls inside the
// fine-bucket region — every practical run; only quantiles beyond
// fineBuckets ticks (5.46 µs, deep saturation collapse) degrade to the
// power-of-two histogram's upper bound.
func (c *Collector) PercentileLatencyNS(p float64) float64 {
	if c.packets == 0 {
		return 0
	}
	target := int64(math.Ceil(p * float64(c.packets)))
	if target <= c.fineCount {
		// Exact: latencies are tick-counted below fineBuckets, and every
		// latency in the fine region is smaller than any latency outside
		// it.
		var cum int64
		for t := 0; t < fineBuckets; t++ {
			cum += int64(c.fine[t])
			if cum >= target {
				return sim.Ticks(t).NS()
			}
		}
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += c.hist[b]
		if cum >= target {
			return sim.Ticks(int64(1) << uint(b+1)).NS()
		}
	}
	return c.latencyMax.NS()
}

// LatencySummary bundles a run's packet-latency distribution in
// nanoseconds: the exact mean and extremes plus the median and tail
// quantiles, exact to the tick whenever they fall below 5.46 µs (see
// PercentileLatencyNS).
type LatencySummary struct {
	MeanNS float64
	MinNS  float64
	MaxNS  float64
	P50NS  float64
	P95NS  float64
	P99NS  float64
}

// LatencySummaryNS summarizes the measured latency distribution.
func (c *Collector) LatencySummaryNS() LatencySummary {
	return LatencySummary{
		MeanNS: c.AvgLatencyNS(),
		MinNS:  c.MinLatencyNS(),
		MaxNS:  c.MaxLatencyNS(),
		P50NS:  c.PercentileLatencyNS(0.50),
		P95NS:  c.PercentileLatencyNS(0.95),
		P99NS:  c.PercentileLatencyNS(0.99),
	}
}

// EpochSeries buckets delivered flits into fixed time epochs, exposing the
// delivered-throughput waveform over time. The paper observes that a
// saturated 21364 network "produces a cyclic pattern of network link
// utilization" as backpressure waves throttle and release the injectors
// (§3.4); this series makes that oscillation measurable.
type EpochSeries struct {
	epoch  sim.Ticks
	counts []int64
}

// NewEpochSeries returns a series with the given epoch length.
func NewEpochSeries(epoch sim.Ticks) *EpochSeries {
	if epoch <= 0 {
		panic("stats: epoch must be positive")
	}
	return &EpochSeries{epoch: epoch}
}

// Reserve pre-sizes the series for a run of known length, so recording
// never grows the slice mid-run.
func (e *EpochSeries) Reserve(epochs int) {
	if epochs > cap(e.counts) {
		counts := make([]int64, len(e.counts), epochs)
		copy(counts, e.counts)
		e.counts = counts
	}
}

// Record adds flits delivered at time at.
func (e *EpochSeries) Record(at sim.Ticks, flits int) {
	idx := int(at / e.epoch)
	for len(e.counts) <= idx {
		e.counts = append(e.counts, 0)
	}
	e.counts[idx] += int64(flits)
}

// Values returns delivered flits per epoch.
func (e *EpochSeries) Values() []int64 { return e.counts }

// CoefficientOfVariation returns stddev/mean of the per-epoch delivery
// counts over [from, to) epochs — a unitless measure of how strongly the
// delivered throughput oscillates (0 = perfectly steady).
func (e *EpochSeries) CoefficientOfVariation(from, to int) float64 {
	if to > len(e.counts) {
		to = len(e.counts)
	}
	if from < 0 || to-from < 2 {
		return 0
	}
	n := float64(to - from)
	var sum float64
	for _, v := range e.counts[from:to] {
		sum += float64(v)
	}
	mean := sum / n
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, v := range e.counts[from:to] {
		d := float64(v) - mean
		ss += d * d
	}
	return math.Sqrt(ss/n) / mean
}

// Point is one BNF curve point.
type Point struct {
	// OfferedRate is the configured injection rate that produced the point
	// (new transactions per node per router cycle).
	OfferedRate float64
	// Throughput is delivered flits per router per nanosecond.
	Throughput float64
	// AvgLatencyNS is the mean packet latency in nanoseconds.
	AvgLatencyNS float64
	// Packets is the number of measured packet deliveries.
	Packets int64
}

// BNF computes the BNF point over the measurement window [warmupEnd, end]
// for a network of the given router count.
func (c *Collector) BNF(routers int, end sim.Ticks) Point {
	window := end - c.warmupEnd
	if window <= 0 || routers <= 0 {
		return Point{}
	}
	return Point{
		Throughput:   float64(c.flits) / float64(routers) / window.NS(),
		AvgLatencyNS: c.AvgLatencyNS(),
		Packets:      c.packets,
	}
}

func (p Point) String() string {
	return fmt.Sprintf("%.4f flits/router/ns @ %.1f ns", p.Throughput, p.AvgLatencyNS)
}

// Series is a load-sweep BNF curve for one algorithm.
type Series struct {
	Label  string
	Points []Point
}

// ThroughputAtLatency interpolates the delivered throughput at a target
// average latency, the comparison the paper quotes ("at about an average
// packet latency of X ns, A provides Y% higher throughput than B"). It
// walks the curve in sweep order and linearly interpolates between the
// first pair of points straddling the target; returns ok=false if the
// curve never reaches the target latency.
func (s Series) ThroughputAtLatency(latencyNS float64) (float64, bool) {
	best := 0.0
	found := false
	for i := 0; i < len(s.Points); i++ {
		p := s.Points[i]
		if p.AvgLatencyNS <= latencyNS {
			// Curve is still below the target latency: it delivers at least
			// this throughput at the target.
			if p.Throughput > best {
				best, found = p.Throughput, true
			}
			continue
		}
		if i > 0 {
			prev := s.Points[i-1]
			if prev.AvgLatencyNS <= latencyNS && p.AvgLatencyNS > prev.AvgLatencyNS {
				frac := (latencyNS - prev.AvgLatencyNS) / (p.AvgLatencyNS - prev.AvgLatencyNS)
				tp := prev.Throughput + frac*(p.Throughput-prev.Throughput)
				if tp > best {
					best, found = tp, true
				}
			}
		}
	}
	return best, found
}

// SaturationThroughput returns the maximum delivered throughput on the
// curve — the knee the Rotary Rule is designed to hold beyond saturation.
func (s Series) SaturationThroughput() float64 {
	best := 0.0
	for _, p := range s.Points {
		if p.Throughput > best {
			best = p.Throughput
		}
	}
	return best
}

// FinalThroughput returns the delivered throughput at the highest swept
// load, showing whether the network collapsed beyond saturation.
func (s Series) FinalThroughput() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Throughput
}

package stats

import (
	"testing"
	"testing/quick"

	"alpha21364/internal/packet"
	"alpha21364/internal/sim"
)

func TestWarmupFiltering(t *testing.T) {
	c := NewCollector(1000)
	p := packet.New(1, packet.Request, 0, 1, 0)
	c.Delivered(p, 500) // inside warmup: ignored
	if c.Packets() != 0 {
		t.Fatal("warmup delivery counted")
	}
	c.Delivered(p, 1500)
	if c.Packets() != 1 {
		t.Fatal("post-warmup delivery not counted")
	}
	if c.Flits() != 3 {
		t.Errorf("flits = %d, want 3", c.Flits())
	}
}

func TestLatencyAccounting(t *testing.T) {
	c := NewCollector(0)
	p1 := packet.New(1, packet.Request, 0, 1, 0)
	p2 := packet.New(2, packet.BlockResponse, 0, 1, sim.FromNS(10))
	c.Delivered(p1, sim.FromNS(45)) // 45 ns
	c.Delivered(p2, sim.FromNS(40)) // 30 ns
	if got := c.AvgLatencyNS(); got < 37.4 || got > 37.6 {
		t.Errorf("avg latency = %v, want 37.5", got)
	}
	if got := c.MinLatencyNS(); got != 30 {
		t.Errorf("min = %v, want 30", got)
	}
	if got := c.MaxLatencyNS(); got != 45 {
		t.Errorf("max = %v, want 45", got)
	}
	if c.MeanHops() != 0 {
		t.Errorf("hops = %v, want 0", c.MeanHops())
	}
}

func TestNegativeLatencyPanics(t *testing.T) {
	c := NewCollector(0)
	p := packet.New(1, packet.Request, 0, 1, 100)
	defer func() {
		if recover() == nil {
			t.Error("negative latency should panic")
		}
	}()
	c.Delivered(p, 50)
}

func TestBNFPoint(t *testing.T) {
	c := NewCollector(sim.FromNS(100))
	// 16 routers, 1000 ns window, 240 flits delivered.
	for i := 0; i < 80; i++ {
		p := packet.New(uint64(i), packet.Request, 0, 1, sim.FromNS(150))
		c.Delivered(p, sim.FromNS(200))
	}
	pt := c.BNF(16, sim.FromNS(1100))
	want := 240.0 / 16 / 1000
	if pt.Throughput < want*0.999 || pt.Throughput > want*1.001 {
		t.Errorf("throughput = %v, want %v", pt.Throughput, want)
	}
	if pt.AvgLatencyNS != 50 {
		t.Errorf("latency = %v, want 50", pt.AvgLatencyNS)
	}
}

func TestBNFEmptyWindow(t *testing.T) {
	c := NewCollector(100)
	if pt := c.BNF(16, 50); pt.Throughput != 0 {
		t.Error("inverted window should give a zero point")
	}
	if pt := c.BNF(0, 500); pt.Throughput != 0 {
		t.Error("zero routers should give a zero point")
	}
}

func TestPercentileMonotone(t *testing.T) {
	c := NewCollector(0)
	for i := 1; i <= 100; i++ {
		p := packet.New(uint64(i), packet.Request, 0, 1, 0)
		c.Delivered(p, sim.Ticks(i)*100)
	}
	p50 := c.PercentileLatencyNS(0.5)
	p99 := c.PercentileLatencyNS(0.99)
	if p50 > p99 {
		t.Errorf("p50 %v > p99 %v", p50, p99)
	}
	if p99 > 2*c.MaxLatencyNS() {
		t.Errorf("p99 %v exceeds histogram bound vs max %v", p99, c.MaxLatencyNS())
	}
}

func TestHistogramBucketsProperty(t *testing.T) {
	f := func(raw uint32) bool {
		lat := sim.Ticks(raw)
		b := bucketOf(lat)
		return b >= 0 && b < histBuckets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeriesThroughputAtLatency(t *testing.T) {
	s := Series{Label: "x", Points: []Point{
		{Throughput: 0.1, AvgLatencyNS: 50},
		{Throughput: 0.3, AvgLatencyNS: 80},
		{Throughput: 0.5, AvgLatencyNS: 200},
	}}
	tp, ok := s.ThroughputAtLatency(80)
	if !ok || tp < 0.299 || tp > 0.301 {
		t.Errorf("at 80 ns = %v, %v; want 0.3", tp, ok)
	}
	tp, ok = s.ThroughputAtLatency(140)
	if !ok || tp <= 0.3 || tp >= 0.5 {
		t.Errorf("interpolated 140 ns = %v, want in (0.3, 0.5)", tp)
	}
	if _, ok := s.ThroughputAtLatency(10); ok {
		t.Error("latency below the whole curve should report not found")
	}
}

func TestSeriesSaturationAndFinal(t *testing.T) {
	s := Series{Points: []Point{
		{Throughput: 0.2}, {Throughput: 0.6}, {Throughput: 0.4},
	}}
	if s.SaturationThroughput() != 0.6 {
		t.Errorf("saturation = %v, want 0.6", s.SaturationThroughput())
	}
	if s.FinalThroughput() != 0.4 {
		t.Errorf("final = %v, want 0.4 (post-saturation collapse)", s.FinalThroughput())
	}
	var empty Series
	if empty.FinalThroughput() != 0 || empty.SaturationThroughput() != 0 {
		t.Error("empty series should be zero")
	}
}

func TestClassCountsAndInjected(t *testing.T) {
	c := NewCollector(0)
	c.Injected(packet.New(1, packet.Request, 0, 1, 0))
	c.Injected(packet.New(2, packet.Forward, 0, 1, 0))
	c.Delivered(packet.New(3, packet.Forward, 0, 1, 0), 10)
	if c.InjectedPackets() != 2 {
		t.Errorf("injected = %d, want 2", c.InjectedPackets())
	}
	if c.ClassPackets(packet.Forward) != 1 || c.ClassPackets(packet.Request) != 0 {
		t.Error("per-class counts wrong")
	}
}

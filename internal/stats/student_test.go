package stats

import (
	"math"
	"testing"
)

func TestMeanStddev(t *testing.T) {
	cases := []struct {
		xs           []float64
		mean, stddev float64
	}{
		{nil, 0, 0},
		{[]float64{5}, 5, 0},
		{[]float64{2, 4}, 3, math.Sqrt2},
		{[]float64{1, 2, 3, 4, 5}, 3, math.Sqrt(2.5)},
		{[]float64{7, 7, 7, 7}, 7, 0},
	}
	for _, c := range cases {
		mean, stddev := MeanStddev(c.xs)
		if math.Abs(mean-c.mean) > 1e-12 || math.Abs(stddev-c.stddev) > 1e-12 {
			t.Errorf("MeanStddev(%v) = (%g, %g), want (%g, %g)", c.xs, mean, stddev, c.mean, c.stddev)
		}
	}
}

// TestTCritical checks Hill's approximation against standard t-table
// values (two-sided).
func TestTCritical(t *testing.T) {
	cases := []struct {
		confidence float64
		df         int
		want       float64
	}{
		{0.95, 1, 12.706},
		{0.95, 2, 4.303},
		{0.95, 4, 2.776},
		{0.95, 9, 2.262},
		{0.95, 29, 2.045},
		{0.95, 100, 1.984},
		{0.99, 4, 4.604},
		{0.99, 9, 3.250},
		{0.90, 9, 1.833},
		{0.90, 30, 1.697},
	}
	for _, c := range cases {
		got := TCritical(c.confidence, c.df)
		if math.Abs(got-c.want)/c.want > 2e-3 {
			t.Errorf("TCritical(%g, %d) = %.4f, want %.3f", c.confidence, c.df, got, c.want)
		}
	}
}

func TestTCriticalPanics(t *testing.T) {
	for _, bad := range []func(){
		func() { TCritical(0, 5) },
		func() { TCritical(1, 5) },
		func() { TCritical(0.95, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid TCritical input")
				}
			}()
			bad()
		}()
	}
}

func TestConfidenceHalfWidth(t *testing.T) {
	if got := ConfidenceHalfWidth(0.95, 0, 10); got != 0 {
		t.Errorf("zero stddev: got %g, want 0", got)
	}
	if got := ConfidenceHalfWidth(0.95, 3, 1); got != 0 {
		t.Errorf("single sample: got %g, want 0", got)
	}
	// n=10, stddev=2, 95%: t_{0.95,9} * 2 / sqrt(10) = 2.262 * 0.6325 = 1.4306
	got := ConfidenceHalfWidth(0.95, 2, 10)
	if math.Abs(got-1.4306) > 0.01 {
		t.Errorf("ConfidenceHalfWidth(0.95, 2, 10) = %.4f, want about 1.4306", got)
	}
}

package stats

import (
	"testing"

	"alpha21364/internal/packet"
	"alpha21364/internal/sim"
)

func TestEpochSeriesBuckets(t *testing.T) {
	e := NewEpochSeries(100)
	e.Record(0, 3)
	e.Record(99, 2)
	e.Record(100, 19)
	e.Record(350, 1)
	got := e.Values()
	want := []int64{5, 19, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("values = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("values = %v, want %v", got, want)
		}
	}
}

func TestEpochSeriesCoV(t *testing.T) {
	steady := NewEpochSeries(10)
	for i := sim.Ticks(0); i < 100; i += 10 {
		steady.Record(i, 5)
	}
	if cov := steady.CoefficientOfVariation(0, 10); cov != 0 {
		t.Errorf("steady CoV = %v, want 0", cov)
	}
	bursty := NewEpochSeries(10)
	for i := sim.Ticks(0); i < 100; i += 20 {
		bursty.Record(i, 10) // alternating 10, 0
	}
	bursty.Record(95, 0)
	if cov := bursty.CoefficientOfVariation(0, 10); cov < 0.9 {
		t.Errorf("bursty CoV = %v, want ~1", cov)
	}
	// Degenerate windows are defined as zero.
	if cov := steady.CoefficientOfVariation(5, 6); cov != 0 {
		t.Errorf("single-epoch CoV = %v", cov)
	}
}

func TestCollectorEpochIntegration(t *testing.T) {
	c := NewCollector(50)
	series := c.TrackEpochs(100)
	p := packet.New(1, packet.Request, 0, 1, 0)
	c.Delivered(p, 10) // inside warmup: excluded from stats, included in series
	c.Delivered(p, 110)
	if c.Packets() != 1 {
		t.Fatalf("measured packets = %d, want 1", c.Packets())
	}
	v := series.Values()
	if len(v) != 2 || v[0] != 3 || v[1] != 3 {
		t.Fatalf("epoch values = %v, want [3 3]", v)
	}
}

func TestEpochSeriesPanicsOnBadEpoch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero epoch should panic")
		}
	}()
	NewEpochSeries(0)
}

package stats

// student.go supports the experiment layer's multi-seed replication
// statistics: sample mean and standard deviation, plus the Student's t
// critical value needed for a t-based confidence interval. The t inverse
// is Hill's classic approximation (G. W. Hill, "Algorithm 396: Student's
// t-quantiles", CACM 13(10), 1970), accurate to a few parts in 10^4 over
// the degrees of freedom replication counts produce — far below the
// sampling noise the interval describes.

import "math"

// MeanStddev returns the sample mean and the sample (n-1) standard
// deviation of xs. With fewer than two samples the deviation is zero.
func MeanStddev(xs []float64) (mean, stddev float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(n-1))
}

// TCritical returns the two-sided Student's t critical value for the
// given confidence level and degrees of freedom: the t with
// P(|T_df| <= t) = confidence. It panics on confidence outside (0, 1) or
// df < 1 — both indicate a caller bug, not a data condition.
func TCritical(confidence float64, df int) float64 {
	if confidence <= 0 || confidence >= 1 {
		panic("stats: confidence must be within (0, 1)")
	}
	if df < 1 {
		panic("stats: degrees of freedom must be >= 1")
	}
	alpha := 1 - confidence // two-tailed probability
	n := float64(df)
	switch df {
	case 1:
		return math.Tan((1 - alpha) * math.Pi / 2)
	case 2:
		return math.Sqrt(2/(alpha*(2-alpha)) - 2)
	}
	a := 1 / (n - 0.5)
	b := 48 / (a * a)
	c := ((20700*a/b-98)*a-16)*a + 96.36
	d := ((94.5/(b+c)-3)/b + 1) * math.Sqrt(a*math.Pi/2) * n
	x := d * alpha
	y := math.Pow(x, 2/n)
	if y > 0.05+a {
		// Asymptotic inverse expansion about the normal deviate with the
		// same two-tailed probability.
		x = math.Sqrt2 * math.Erfinv(1-alpha)
		y = x * x
		if df < 5 {
			c += 0.3 * (n - 4.5) * (x + 0.6)
		}
		c = (((0.05*d*x-5)*x-7)*x-2)*x + b + c
		y = (((((0.4*y+6.3)*y+36)*y+94.5)/c-y-3)/b + 1) * x
		y = a * y * y
		if y > 0.002 {
			y = math.Exp(y) - 1
		} else {
			y = 0.5*y*y + y
		}
	} else {
		y = ((1/(((n+6)/(n*y)-0.089*d-0.822)*(n+2)*3)+0.5/(n+4))*y-1)*(n+1)/(n+2) + 1/y
	}
	return math.Sqrt(n * y)
}

// ConfidenceHalfWidth returns the half-width of the two-sided t-based
// confidence interval for the mean of n samples with the given sample
// standard deviation: t_{conf, n-1} * stddev / sqrt(n). With fewer than
// two samples there is no interval; the half-width is zero.
func ConfidenceHalfWidth(confidence, stddev float64, n int) float64 {
	if n < 2 || stddev == 0 {
		return 0
	}
	return TCritical(confidence, n-1) * stddev / math.Sqrt(float64(n))
}

// Package fleet distributes shard execution across remote sweepd
// workers over HTTP/JSONL. A Fleet implements experiment.ShardExecutor:
// the Coordinator plans a sweep into shard-Specs and hands each one to
// ExecuteShard, which POSTs the spec to a worker's /shard endpoint and
// streams the Result JSONL back. Around that transport sits the fault
// machinery the coordinator never sees: a registry of static worker
// addresses kept alive/dead by periodic /healthz heartbeats, per-shard
// attempt timeouts, capped exponential backoff, and automatic
// reassignment of failed or orphaned shards to healthy workers.
//
// The fault model is crash faults: workers may die mid-shard, hang, or
// return truncated/corrupt streams, and the retry path preserves byte
// identity with a monolithic run because every complete point line in a
// partial response is a self-contained, deterministic measurement — a
// retry re-simulates only the missing tail of the shard (Shard.Tail),
// and concatenating prefix and tail reproduces the exact points a single
// clean run would have produced. A worker that fabricates well-formed
// but wrong point values is outside the model (run your fleet on
// machines you trust).
package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for the dial-level knobs; override with the With* options.
const (
	// DefaultTimeout bounds one shard attempt end to end — connect,
	// simulate, stream — before the dispatcher gives up on the worker and
	// reassigns the remainder.
	DefaultTimeout = 2 * time.Minute
	// DefaultRetries is how many times a shard is re-dispatched after its
	// first attempt fails (total attempts = retries + 1).
	DefaultRetries = 3
	// DefaultHeartbeatInterval is how often each worker's /healthz is
	// probed to move it between alive and dead.
	DefaultHeartbeatInterval = 2 * time.Second

	defaultBackoffBase = 100 * time.Millisecond
	defaultBackoffMax  = 5 * time.Second
)

// worker is one registry entry: a static address plus the liveness and
// dispatch counters the heartbeat loop and dispatcher maintain.
type worker struct {
	url      string      // normalized base URL, no trailing slash
	alive    atomic.Bool // heartbeat or dispatcher verdict
	inflight atomic.Int64
	attempts atomic.Int64 // shard attempts dispatched here
	done     atomic.Int64 // attempts that returned a complete result
	failed   atomic.Int64 // attempts that errored, hung, or came back corrupt
}

// Fleet is a set of remote sweepd workers plus the dispatch policy over
// them. Construct with New, attach to a Coordinator via
// experiment.WithShardExecutor, and Close when done (stops heartbeats).
// A Fleet is safe for concurrent ExecuteShard calls.
type Fleet struct {
	workers []*worker
	client  *http.Client
	logf    func(format string, args ...any)

	timeout     time.Duration
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
	hbEvery     time.Duration

	rr       atomic.Uint64 // round-robin cursor for tie-breaking
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Option configures a Fleet.
type Option func(*Fleet)

// WithTimeout bounds one shard attempt (default DefaultTimeout). Size it
// above the slowest single shard: a legitimate shard that outruns the
// timeout is indistinguishable from a hung worker and will be retried
// until its attempts are exhausted.
func WithTimeout(d time.Duration) Option {
	return func(f *Fleet) {
		if d > 0 {
			f.timeout = d
		}
	}
}

// WithRetries sets how many times a failed shard is re-dispatched
// (default DefaultRetries); 0 means a single attempt, fail-fast.
func WithRetries(n int) Option {
	return func(f *Fleet) {
		if n >= 0 {
			f.retries = n
		}
	}
}

// WithBackoff sets the capped exponential backoff between a shard's
// attempts: base, 2·base, 4·base, … capped at max.
func WithBackoff(base, max time.Duration) Option {
	return func(f *Fleet) {
		if base > 0 {
			f.backoffBase = base
		}
		if max >= base && max > 0 {
			f.backoffMax = max
		}
	}
}

// WithHeartbeatInterval sets the /healthz probe period (default
// DefaultHeartbeatInterval). Probes are what revive a worker the
// dispatcher marked dead — a restarted sweepd rejoins the fleet within
// one interval.
func WithHeartbeatInterval(d time.Duration) Option {
	return func(f *Fleet) {
		if d > 0 {
			f.hbEvery = d
		}
	}
}

// WithLogf routes the fleet's diagnostics (worker state transitions,
// retry decisions) to f; the default discards them.
func WithLogf(logf func(format string, args ...any)) Option {
	return func(f *Fleet) {
		if logf != nil {
			f.logf = logf
		}
	}
}

// WithHTTPClient substitutes the transport (default http.DefaultClient
// with no client-level timeout — per-attempt contexts bound each call).
func WithHTTPClient(c *http.Client) Option {
	return func(f *Fleet) {
		if c != nil {
			f.client = c
		}
	}
}

// normalizeAddr turns "host:port" or a full URL into a base URL.
func normalizeAddr(addr string) (string, error) {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return "", fmt.Errorf("fleet: empty worker address")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil {
		return "", fmt.Errorf("fleet: worker address %q: %w", addr, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("fleet: worker address %q: unsupported scheme %q", addr, u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("fleet: worker address %q has no host", addr)
	}
	return strings.TrimRight(u.String(), "/"), nil
}

// New builds a Fleet over the given worker addresses ("host:port" or
// http(s) URLs) and starts one heartbeat goroutine per worker. Workers
// start optimistically alive — the first dispatch probes them the hard
// way, and a connection failure moves them to dead until a heartbeat
// succeeds.
func New(addrs []string, opts ...Option) (*Fleet, error) {
	f := &Fleet{
		client:      http.DefaultClient,
		logf:        func(string, ...any) {},
		timeout:     DefaultTimeout,
		retries:     DefaultRetries,
		backoffBase: defaultBackoffBase,
		backoffMax:  defaultBackoffMax,
		hbEvery:     DefaultHeartbeatInterval,
		stop:        make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, addr := range addrs {
		u, err := normalizeAddr(addr)
		if err != nil {
			return nil, err
		}
		if seen[u] {
			continue
		}
		seen[u] = true
		w := &worker{url: u}
		w.alive.Store(true)
		f.workers = append(f.workers, w)
	}
	if len(f.workers) == 0 {
		return nil, fmt.Errorf("fleet: no worker addresses")
	}
	for _, opt := range opts {
		opt(f)
	}
	for _, w := range f.workers {
		f.wg.Add(1)
		go f.heartbeat(w)
	}
	return f, nil
}

// Close stops the heartbeat loops. In-flight ExecuteShard calls are not
// interrupted (cancel their context for that).
func (f *Fleet) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
}

// heartbeat probes one worker's /healthz every interval until Close.
func (f *Fleet) heartbeat(w *worker) {
	defer f.wg.Done()
	t := time.NewTicker(f.hbEvery)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			f.probe(w)
		}
	}
}

// probe performs one health check and flips the worker's liveness. Any
// 200 from /healthz counts as alive; a draining or dead sweepd answers
// 503 (or nothing) and is taken out of rotation.
func (f *Fleet) probe(w *worker) {
	timeout := f.hbEvery
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		return
	}
	alive := false
	if resp, err := f.client.Do(req); err == nil {
		resp.Body.Close()
		alive = resp.StatusCode == http.StatusOK
	}
	f.setAlive(w, alive, "heartbeat")
}

// probeAll re-checks every benched worker once, synchronously. The
// dispatcher calls it when a round finds no alive workers at all: a
// worker that only dropped one stream answers its /healthz immediately
// and rejoins, while a genuinely dead one stays benched.
func (f *Fleet) probeAll() {
	for _, w := range f.workers {
		if !w.alive.Load() {
			f.probe(w)
		}
	}
}

// setAlive flips liveness, logging transitions once.
func (f *Fleet) setAlive(w *worker, alive bool, why string) {
	if w.alive.Swap(alive) != alive {
		state := "dead"
		if alive {
			state = "alive"
		}
		f.logf("fleet: worker %s marked %s (%s)", w.url, state, why)
	}
}

// pick selects the healthy worker with the fewest in-flight shards,
// breaking ties round-robin so equal workers share load. It returns nil
// when every worker is dead.
func (f *Fleet) pick() *worker {
	start := int(f.rr.Add(1) - 1)
	var best *worker
	var bestLoad int64
	n := len(f.workers)
	for i := 0; i < n; i++ {
		w := f.workers[(start+i)%n]
		if !w.alive.Load() {
			continue
		}
		if load := w.inflight.Load(); best == nil || load < bestLoad {
			best, bestLoad = w, load
		}
	}
	return best
}

// WorkerStatus is one registry entry's observable state.
type WorkerStatus struct {
	Addr     string // normalized base URL
	Alive    bool
	Inflight int   // shard attempts currently running there
	Attempts int64 // shard attempts dispatched to it, ever
	Done     int64 // attempts that returned a complete result
	Failed   int64 // attempts that errored, hung, or came back corrupt
}

// Status snapshots every worker, in registry order.
func (f *Fleet) Status() []WorkerStatus {
	out := make([]WorkerStatus, len(f.workers))
	for i, w := range f.workers {
		out[i] = WorkerStatus{
			Addr:     w.url,
			Alive:    w.alive.Load(),
			Inflight: int(w.inflight.Load()),
			Attempts: w.attempts.Load(),
			Done:     w.done.Load(),
			Failed:   w.failed.Load(),
		}
	}
	return out
}

package fleet

// fleet_test.go is the failure matrix the package exists for: workers
// that die mid-shard, hang past the attempt timeout, return corrupt or
// truncated JSONL, or are all dead at once. Every recovery path is
// asserted against the one contract that matters — the fleet-merged
// Result is byte-identical to a monolithic in-process run — plus the
// bookkeeping around it (retry counts, tail-only re-dispatch, worker
// liveness transitions, heartbeat revival).

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"alpha21364/internal/experiment"
)

// testSpec is a 1-series, 3-point sweep small enough to simulate in
// milliseconds but wide enough that a shard has a salvageable prefix.
func testSpec(t *testing.T, opts ...experiment.SpecOption) experiment.Spec {
	t.Helper()
	base := []experiment.SpecOption{
		experiment.WithName("fleet test"),
		experiment.WithTopology(4, 4),
		experiment.WithArbiters("PIM1"),
		experiment.WithPatterns("random"),
		experiment.WithRates(0.02, 0.04, 0.06),
		experiment.WithCycles(300),
		experiment.WithSeed(6),
	}
	return experiment.NewSpec(append(base, opts...)...)
}

// monolithic runs the spec through the in-process Runner and returns its
// stable (volatile-stripped) JSONL bytes — the byte-identity reference.
func monolithic(t *testing.T, sp experiment.Spec) string {
	t.Helper()
	res, err := experiment.NewRunner(experiment.WithWorkers(1)).Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	return stableJSONL(t, res)
}

func stableJSONL(t *testing.T, res *experiment.Result) string {
	t.Helper()
	experiment.StripVolatile(res)
	var buf bytes.Buffer
	if err := res.EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// simulateShard is the reference worker body: decode the spec, run it
// serially, return its full JSONL — what a healthy sweepd does.
func simulateShard(t *testing.T, r *http.Request) ([]byte, error) {
	t.Helper()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, err
	}
	sp, err := experiment.ParseSpec(body)
	if err != nil {
		return nil, err
	}
	res, err := experiment.NewRunner(experiment.WithWorkers(1)).Run(r.Context(), sp)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := res.EncodeJSONL(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// newWorker spins up a fake sweepd whose POST /shard behavior is decided
// per request by behave(n, full JSONL bytes, w): return true to take
// over the response. behave == nil (or returning false) streams the full
// result — the healthy path.
func newWorker(t *testing.T, behave func(n int, full []byte, w http.ResponseWriter) bool) *httptest.Server {
	t.Helper()
	var n atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("POST /shard", func(w http.ResponseWriter, r *http.Request) {
		full, err := simulateShard(t, r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if behave != nil && behave(int(n.Add(1)), full, w) {
			return
		}
		w.Write(full)
	})
	return httptest.NewServer(mux)
}

// newFleet builds a Fleet over the given servers with test-sized
// backoffs, registered for cleanup.
func newFleet(t *testing.T, addrs []string, opts ...Option) *Fleet {
	t.Helper()
	opts = append([]Option{WithBackoff(time.Millisecond, 5*time.Millisecond)}, opts...)
	f, err := New(addrs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// runFleet executes the spec through a Coordinator dispatching to f.
func runFleet(t *testing.T, f *Fleet, sp experiment.Spec, shards int) (*experiment.Result, experiment.CoordinatorStats, error) {
	t.Helper()
	co := experiment.NewCoordinator(
		experiment.WithCoordinatorWorkers(1),
		experiment.WithShards(shards),
		experiment.WithShardExecutor(f),
	)
	res, err := co.Run(context.Background(), sp)
	return res, co.Stats(), err
}

// TestFleetMatchesMonolithic is the clean-path contract: a sweep
// dispatched across two healthy workers merges into exactly the bytes a
// single in-process run produces, and the progress events agree with the
// local executor's count.
func TestFleetMatchesMonolithic(t *testing.T) {
	sp := testSpec(t)
	w1 := newWorker(t, nil)
	defer w1.Close()
	w2 := newWorker(t, nil)
	defer w2.Close()
	f := newFleet(t, []string{w1.URL, w2.URL})

	var events atomic.Int64
	co := experiment.NewCoordinator(
		experiment.WithShardExecutor(f),
		experiment.WithCoordinatorEventSink(func(e experiment.Event) {
			if e.Type == experiment.EventPointDone {
				events.Add(1)
			}
		}),
	)
	res, err := co.Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stableJSONL(t, res), monolithic(t, sp); got != want {
		t.Errorf("fleet bytes diverge from monolithic run:\nfleet:\n%s\nmono:\n%s", got, want)
	}
	st := co.Stats()
	if st.Shards != 3 || st.ShardAttempts != 3 || st.ShardRetries != 0 {
		t.Errorf("stats = %d shards, %d attempts, %d retries; want 3, 3, 0",
			st.Shards, st.ShardAttempts, st.ShardRetries)
	}
	if events.Load() != 3 {
		t.Errorf("point-done events = %d, want 3 (one per point)", events.Load())
	}
	var attempts int64
	for _, ws := range f.Status() {
		if !ws.Alive {
			t.Errorf("worker %s marked dead on the clean path", ws.Addr)
		}
		attempts += ws.Attempts
	}
	if attempts != 3 {
		t.Errorf("per-worker attempts sum to %d, want 3", attempts)
	}
}

// TestFleetReplicationsMatchMonolithic pins byte-identity and event
// accounting when each point replicates: statistics fold inside the
// worker, and the dispatcher emits one event per replication.
func TestFleetReplicationsMatchMonolithic(t *testing.T) {
	sp := testSpec(t, experiment.WithReplications(2))
	w := newWorker(t, nil)
	defer w.Close()
	f := newFleet(t, []string{w.URL})

	var events atomic.Int64
	co := experiment.NewCoordinator(
		experiment.WithShardExecutor(f),
		experiment.WithCoordinatorEventSink(func(e experiment.Event) {
			if e.Type == experiment.EventPointDone {
				events.Add(1)
			}
		}),
	)
	res, err := co.Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stableJSONL(t, res), monolithic(t, sp); got != want {
		t.Error("replicated fleet bytes diverge from monolithic run")
	}
	if events.Load() != 6 {
		t.Errorf("point-done events = %d, want 6 (3 points x 2 replications)", events.Load())
	}
}

// TestFleetSalvagesPrefixAfterMidShardDeath kills a worker after it has
// streamed one whole point and half of the next line. The dispatcher
// must keep the intact point, re-dispatch only the 2-point tail, and
// still merge to the monolithic bytes.
func TestFleetSalvagesPrefixAfterMidShardDeath(t *testing.T) {
	sp := testSpec(t)
	var rates []int // points requested per attempt, in order
	w := newWorker(t, func(n int, full []byte, w http.ResponseWriter) bool {
		lines := bytes.SplitAfter(full, []byte("\n"))
		rates = append(rates, len(lines)-3) // minus header, series, trailing empty
		if n > 1 {
			return false
		}
		// header + series + first point, then half a point line, then die.
		w.Write(lines[0])
		w.Write(lines[1])
		w.Write(lines[2])
		w.Write(lines[3][:len(lines[3])/2])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	})
	defer w.Close()
	f := newFleet(t, []string{w.URL})

	res, st, err := runFleet(t, f, sp, 1) // one 3-point shard
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stableJSONL(t, res), monolithic(t, sp); got != want {
		t.Error("salvaged fleet bytes diverge from monolithic run")
	}
	if st.Shards != 1 || st.ShardAttempts != 2 || st.ShardRetries != 1 {
		t.Errorf("stats = %d shards, %d attempts, %d retries; want 1, 2, 1",
			st.Shards, st.ShardAttempts, st.ShardRetries)
	}
	if len(rates) != 2 || rates[0] != 3 || rates[1] != 2 {
		t.Errorf("attempt sizes = %v, want [3 2]: the retry must re-dispatch only the missing tail", rates)
	}
}

// TestFleetRetriesCorruptStream sends garbage where a point line should
// be; the decoder rejects it and the shard is retried from scratch.
func TestFleetRetriesCorruptStream(t *testing.T) {
	sp := testSpec(t)
	w := newWorker(t, func(n int, full []byte, w http.ResponseWriter) bool {
		if n > 1 {
			return false
		}
		io.WriteString(w, "this is not JSONL\n")
		return true
	})
	defer w.Close()
	f := newFleet(t, []string{w.URL})

	res, st, err := runFleet(t, f, sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stableJSONL(t, res), monolithic(t, sp); got != want {
		t.Error("fleet bytes diverge from monolithic run after a corrupt stream")
	}
	if st.ShardRetries != 1 {
		t.Errorf("retries = %d, want 1", st.ShardRetries)
	}
}

// TestFleetRetriesInBandError covers a worker whose run fails after the
// header: the stream carries a {"type":"error"} record, the dispatcher
// treats it as a failed attempt, and the retry completes the shard.
func TestFleetRetriesInBandError(t *testing.T) {
	sp := testSpec(t)
	w := newWorker(t, func(n int, full []byte, w http.ResponseWriter) bool {
		if n > 1 {
			return false
		}
		lines := bytes.SplitAfter(full, []byte("\n"))
		w.Write(lines[0])
		w.Write(lines[1])
		io.WriteString(w, `{"type":"error","error":"simulated worker failure"}`+"\n")
		return true
	})
	defer w.Close()
	f := newFleet(t, []string{w.URL})

	res, st, err := runFleet(t, f, sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stableJSONL(t, res), monolithic(t, sp); got != want {
		t.Error("fleet bytes diverge from monolithic run after an in-band error")
	}
	if st.ShardAttempts != 2 {
		t.Errorf("attempts = %d, want 2", st.ShardAttempts)
	}
}

// TestFleetHangTimesOutAndFailsOver points the fleet at one worker that
// hangs forever and one healthy one. The attempt timeout must cut the
// hang, bench the worker, and finish the sweep elsewhere — still
// byte-identical.
func TestFleetHangTimesOutAndFailsOver(t *testing.T) {
	sp := testSpec(t)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("POST /shard", func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server notices the client hanging up
		// (HTTP/1 disconnects only surface through reads).
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // then hang until the client gives up
	})
	hung := httptest.NewServer(mux)
	defer hung.Close()
	good := newWorker(t, nil)
	defer good.Close()

	// A long heartbeat keeps the hung worker from being revived mid-test.
	f := newFleet(t, []string{hung.URL, good.URL},
		WithTimeout(100*time.Millisecond), WithHeartbeatInterval(time.Hour))
	res, st, err := runFleet(t, f, sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stableJSONL(t, res), monolithic(t, sp); got != want {
		t.Error("fleet bytes diverge from monolithic run after a hang failover")
	}
	if st.ShardRetries < 1 {
		t.Errorf("retries = %d, want >= 1 (the hung attempt)", st.ShardRetries)
	}
	for _, ws := range f.Status() {
		if ws.Addr == strings.TrimRight(hung.URL, "/") && ws.Alive {
			t.Error("hung worker still marked alive")
		}
	}
}

// TestFleetAllWorkersDead exhausts the retry budget against a dead
// address: the error must name the no-workers condition and the shard
// must not pretend to have run.
func TestFleetAllWorkersDead(t *testing.T) {
	sp := testSpec(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	addr := dead.URL
	dead.Close() // nothing listens here anymore

	f := newFleet(t, []string{addr}, WithRetries(2), WithHeartbeatInterval(time.Hour))
	shards, err := experiment.PlanShards(sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, attempts, err := f.ExecuteShard(context.Background(), shards[0], nil)
	if err == nil {
		t.Fatal("expected an error with every worker dead")
	}
	if !errors.Is(err, ErrNoWorkers) {
		t.Errorf("err = %v, want ErrNoWorkers after the first refused dial", err)
	}
	if res != nil {
		t.Errorf("res = %+v, want nil (nothing was ever received)", res)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (one dial, then no workers left)", attempts)
	}
}

// TestFleetHeartbeatRevivesWorker benches a worker by hand and waits for
// the /healthz probe loop to bring it back.
func TestFleetHeartbeatRevivesWorker(t *testing.T) {
	w := newWorker(t, nil)
	defer w.Close()
	f := newFleet(t, []string{w.URL}, WithHeartbeatInterval(10*time.Millisecond))
	f.setAlive(f.workers[0], false, "test bench")

	deadline := time.Now().Add(5 * time.Second)
	for !f.Status()[0].Alive {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never revived the worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetSaturatedWorkerRetries treats 503 like any other failed
// attempt: back off, re-pick, succeed once capacity frees up.
func TestFleetSaturatedWorkerRetries(t *testing.T) {
	sp := testSpec(t)
	w := newWorker(t, func(n int, full []byte, w http.ResponseWriter) bool {
		if n > 1 {
			return false
		}
		http.Error(w, "worker saturated", http.StatusServiceUnavailable)
		return true
	})
	defer w.Close()
	// The saturated attempt benches the worker; a fast heartbeat must
	// revive it before the retry budget runs out.
	f := newFleet(t, []string{w.URL},
		WithHeartbeatInterval(5*time.Millisecond),
		WithBackoff(20*time.Millisecond, 50*time.Millisecond))
	res, st, err := runFleet(t, f, sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stableJSONL(t, res), monolithic(t, sp); got != want {
		t.Error("fleet bytes diverge from monolithic run after a 503 retry")
	}
	if st.ShardAttempts < 2 {
		t.Errorf("attempts = %d, want >= 2", st.ShardAttempts)
	}
}

// TestFleetPartialSurvivesExhaustion gives the fleet one point per
// attempt and too few retries to finish: the returned Result must be the
// contiguous prefix, marked Partial, with the error surfaced.
func TestFleetPartialSurvivesExhaustion(t *testing.T) {
	sp := testSpec(t)
	w := newWorker(t, func(n int, full []byte, w http.ResponseWriter) bool {
		lines := bytes.SplitAfter(full, []byte("\n"))
		// One whole point per attempt, then die.
		w.Write(lines[0])
		w.Write(lines[1])
		w.Write(lines[2])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	})
	defer w.Close()
	f := newFleet(t, []string{w.URL}, WithRetries(1), WithHeartbeatInterval(5*time.Millisecond))

	shards, err := experiment.PlanShards(sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, attempts, err := f.ExecuteShard(context.Background(), shards[0], nil)
	if err == nil {
		t.Fatal("expected an error after exhausting retries")
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	if res == nil || !res.Partial {
		t.Fatalf("res = %+v, want a Partial prefix result", res)
	}
	if got := len(res.Series[0].Points); got != 2 {
		t.Errorf("salvaged points = %d, want 2 (one per attempt)", got)
	}
}

// TestNormalizeAddr pins the accepted address spellings.
func TestNormalizeAddr(t *testing.T) {
	cases := []struct {
		in, want string
		ok       bool
	}{
		{"127.0.0.1:9000", "http://127.0.0.1:9000", true},
		{"http://host:80/", "http://host:80", true},
		{"https://host", "https://host", true},
		{" host:1 ", "http://host:1", true},
		{"", "", false},
		{"ftp://host", "", false},
		{"http://", "", false},
	}
	for _, c := range cases {
		got, err := normalizeAddr(c.in)
		if c.ok != (err == nil) || got != c.want {
			t.Errorf("normalizeAddr(%q) = %q, %v; want %q, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

// TestNewRejectsEmptyFleet pins the constructor's guard rails.
func TestNewRejectsEmptyFleet(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(nil) accepted an empty fleet")
	}
	if _, err := New([]string{"bad scheme://x"}); err == nil {
		t.Error("New accepted an invalid address")
	}
	f, err := New([]string{"h:1", "h:1", "http://h:1/"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if len(f.Status()) != 1 {
		t.Errorf("duplicate addresses were not collapsed: %d workers", len(f.Status()))
	}
}

// TestPickPrefersIdleWorkers checks the least-inflight policy and the
// all-dead nil.
func TestPickPrefersIdleWorkers(t *testing.T) {
	f, err := New([]string{"h1:1", "h2:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.workers[0].inflight.Store(3)
	for i := 0; i < 4; i++ {
		if w := f.pick(); w != f.workers[1] {
			t.Fatalf("pick chose the busier worker")
		}
	}
	f.workers[1].alive.Store(false)
	if w := f.pick(); w != f.workers[0] {
		t.Error("pick skipped the only alive worker")
	}
	f.workers[0].alive.Store(false)
	if w := f.pick(); w != nil {
		t.Error("pick invented a worker with everyone dead")
	}
}

package fleet

// execute.go is the dispatch loop: one ExecuteShard call owns one shard
// from first POST to final Result, surviving worker deaths, hangs, and
// corrupt streams along the way. The loop accumulates the shard's points
// across attempts — every complete point line of a failed stream is a
// finished, deterministic measurement — and re-dispatches only the
// missing tail, so a retried shard re-simulates nothing it already has.
// Whatever survives the retry budget is returned as a Partial result, so
// the Coordinator still persists the completed points and a resumed run
// picks up from them.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"alpha21364/internal/experiment"
)

// ErrNoWorkers reports a dispatch round that found every worker dead.
var ErrNoWorkers = errors.New("fleet: no alive workers")

// ExecuteShard implements experiment.ShardExecutor: POST the shard-Spec
// to a healthy worker's /shard, stream the Result JSONL back, and on any
// failure mark the worker dead, back off, and reassign the unfinished
// tail to another healthy worker. attempts counts POSTs actually issued;
// rounds that found no alive worker still consume retry budget (the
// backoff gives heartbeats time to revive somebody) but add nothing to
// attempts.
func (f *Fleet) ExecuteShard(ctx context.Context, sh experiment.Shard, sink func(experiment.Event)) (*experiment.Result, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if sink == nil {
		sink = func(experiment.Event) {}
	}
	reps := 1
	if sh.Spec.Replications > 1 {
		reps = sh.Spec.Replications
	}

	// acc accumulates the shard's result across attempts: the first
	// decoded header/series supplies the metadata, and every accepted
	// point appends in cell order. done() is the resume cursor.
	var acc *experiment.Result
	done := func() int {
		if acc == nil {
			return 0
		}
		return len(acc.Series[0].Points)
	}
	accept := func(res *experiment.Result, pts []experiment.ResultPoint) {
		if len(pts) == 0 {
			return // nothing arrived (res may even be nil); keep what we have
		}
		if acc == nil {
			base := *res
			base.Spec = sh.Spec
			base.ElapsedNS = 0
			s := base.Series[0]
			s.Points = append([]experiment.ResultPoint(nil), pts...)
			base.Series = []experiment.ResultSeries{s}
			acc = &base
		} else {
			acc.Series[0].Points = append(acc.Series[0].Points, pts...)
		}
		// Mirror the local executor's event traffic: one point-done per
		// replication, so the Coordinator's done/total progress counters
		// agree across backends. Only the last event of a point carries
		// the (aggregated) measurement.
		label := acc.Series[0].Label
		for i := range pts {
			pt := pts[i]
			for r := 0; r < reps; r++ {
				e := experiment.Event{Type: experiment.EventPointDone, Label: label, Series: label}
				if r == reps-1 {
					e.Point = &pt
				}
				sink(e)
			}
		}
	}

	attempts := 0
	var lastErr error
	backoff := f.backoffBase
	for round := 0; round <= f.retries; round++ {
		if round > 0 {
			select {
			case <-ctx.Done():
				return f.finish(sh, acc, done()), attempts, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > f.backoffMax {
				backoff = f.backoffMax
			}
		}
		w := f.pick()
		if w == nil {
			// Benching is pessimistic — any failed attempt benches its
			// worker — so an all-dead round re-probes everyone right now
			// rather than waiting out a heartbeat interval. A single-worker
			// fleet whose worker merely dropped one stream recovers here.
			f.probeAll()
			w = f.pick()
		}
		if w == nil {
			lastErr = fmt.Errorf("fleet: shard %q: %w", sh.Spec.Name, ErrNoWorkers)
			continue
		}

		remaining := sh.Tail(done())
		attempts++
		res, err := f.postShard(ctx, w, remaining.Spec)
		pts := resultPoints(res)
		if len(pts) > len(remaining.Cells) {
			// More points than cells is not a crash fault — distrust the
			// whole response.
			err = fmt.Errorf("fleet: worker %s returned %d points for %d cells", w.url, len(pts), len(remaining.Cells))
			pts = nil
		}
		if err == nil && res.Partial {
			err = fmt.Errorf("fleet: worker %s returned a partial result (%d/%d points)",
				w.url, len(pts), len(remaining.Cells))
		}
		if err == nil && len(pts) < len(remaining.Cells) {
			err = fmt.Errorf("fleet: worker %s returned %d/%d points", w.url, len(pts), len(remaining.Cells))
		}
		if err == nil {
			w.done.Add(1)
			accept(res, pts)
			acc.Partial = false
			return acc, attempts, nil
		}

		// Failed attempt: keep its intact prefix, bench the worker, and
		// let the next round reassign the rest.
		w.failed.Add(1)
		f.setAlive(w, false, "shard attempt failed")
		lastErr = fmt.Errorf("fleet: shard %q attempt %d on %s: %w", sh.Spec.Name, attempts, w.url, err)
		f.logf("%v", lastErr)
		accept(res, pts)
		if done() == len(sh.Cells) {
			// The stream died after its last point — everything arrived,
			// only the clean EOF is missing. The points are whole and
			// deterministic; the shard is complete.
			acc.Partial = false
			return acc, attempts, nil
		}
		if ctx.Err() != nil {
			return f.finish(sh, acc, done()), attempts, ctx.Err()
		}
	}
	return f.finish(sh, acc, done()), attempts, lastErr
}

// finish shapes the accumulated result for a run that is giving up:
// whatever arrived is a valid contiguous prefix, marked Partial so the
// Coordinator persists the points without trusting the shard complete.
func (f *Fleet) finish(sh experiment.Shard, acc *experiment.Result, got int) *experiment.Result {
	if acc == nil {
		return nil
	}
	acc.Partial = got < len(sh.Cells)
	return acc
}

// resultPoints flattens a (possibly nil, possibly partial) decoded
// result into its point list. Shard-Specs always expand to exactly one
// series, but a partial stream may have died before the series line.
func resultPoints(res *experiment.Result) []experiment.ResultPoint {
	if res == nil || len(res.Series) == 0 {
		return nil
	}
	return res.Series[0].Points
}

// postShard runs one attempt: POST the spec, stream-decode the response.
// It returns whatever decoded cleanly even on error, so the caller can
// salvage the intact prefix of a truncated or corrupted stream.
func (f *Fleet) postShard(ctx context.Context, w *worker, sp experiment.Spec) (*experiment.Result, error) {
	w.attempts.Add(1)
	w.inflight.Add(1)
	defer w.inflight.Add(-1)

	body, err := experiment.EncodeSpec(sp)
	if err != nil {
		return nil, err
	}
	actx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, w.url+"/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	dec := experiment.NewResultDecoder(resp.Body)
	for {
		switch err := dec.Next(); {
		case err == io.EOF:
			if dec.Result() == nil {
				return nil, fmt.Errorf("empty response stream")
			}
			return dec.Result(), nil
		case err != nil:
			return dec.Result(), err
		}
	}
}

// Package packet defines the seven coherence packet classes of the Alpha
// 21364 network, their flit sizes, and the network packet structure shared
// by the standalone and timing performance models.
//
// Flit sizes follow the paper (§2.1): requests and forwards are 3 flits,
// block responses 18-19 flits (we model 19, the size that carries a 64-byte
// cache block), non-block responses 2-3 flits (we model 3), write I/O 19,
// read I/O 3, and specials a single flit. Each flit is 39 bits (32 data +
// 7 ECC).
package packet

import (
	"fmt"

	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
)

// Class is a coherence packet class. The 21364 assigns each class its own
// ordered virtual channel group to break protocol deadlocks.
type Class uint8

const (
	Request Class = iota
	Forward
	BlockResponse
	NonBlockResponse
	WriteIO
	ReadIO
	Special
	NumClasses
)

var classNames = [NumClasses]string{
	"request", "forward", "block-response", "non-block-response",
	"write-io", "read-io", "special",
}

var classFlits = [NumClasses]int{3, 3, 19, 3, 19, 3, 1}

func (c Class) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Flits returns the packet length in flits for the class.
func (c Class) Flits() int {
	if c >= NumClasses {
		panic(fmt.Sprintf("packet: invalid class %d", c))
	}
	return classFlits[c]
}

// IsIO reports whether the class is an I/O class; I/O packets may only use
// the deadlock-free channels (the 21364's I/O ordering rules).
func (c Class) IsIO() bool { return c == WriteIO || c == ReadIO }

// FlitBits is the width of one flit on the wire: 32 data bits plus 7 ECC.
const FlitBits = 39

// Packet is a network packet. Packets are allocated once at injection and
// flow through routers by reference; routers attach their own per-hop state
// externally.
type Packet struct {
	ID      uint64
	Class   Class
	Flits   int
	Src     topology.Node
	Dst     topology.Node
	Created sim.Ticks // when the packet was handed to its source local port
	TxnID   uint64    // owning coherence transaction, 0 if none
	Hops    int       // router-to-router hops taken so far

	// arena bookkeeping, set only for packets drawn from an Arena.
	arena *Arena
	ref   Ref
}

// New returns a packet of the given class with the class's flit count.
func New(id uint64, c Class, src, dst topology.Node, created sim.Ticks) *Packet {
	return &Packet{
		ID:      id,
		Class:   c,
		Flits:   c.Flits(),
		Src:     src,
		Dst:     dst,
		Created: created,
	}
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt%d(%v %d->%d %df)", p.ID, p.Class, p.Src, p.Dst, p.Flits)
}

package packet

import "testing"

func TestArenaNewMatchesPacketNew(t *testing.T) {
	a := NewArena()
	got := a.New(7, BlockResponse, 3, 12, 450)
	want := New(7, BlockResponse, 3, 12, 450)
	if got.ID != want.ID || got.Class != want.Class || got.Flits != want.Flits ||
		got.Src != want.Src || got.Dst != want.Dst || got.Created != want.Created {
		t.Fatalf("arena packet %+v differs from packet.New %+v", got, want)
	}
}

func TestArenaReuseAndGenerations(t *testing.T) {
	a := NewArena()
	p1 := a.New(1, Request, 0, 1, 0)
	r1 := a.Ref(p1)
	if a.Get(r1) != p1 {
		t.Fatal("live ref did not resolve")
	}
	if a.Live() != 1 {
		t.Fatalf("live = %d, want 1", a.Live())
	}
	a.Release(p1)
	if a.Live() != 0 {
		t.Fatalf("live = %d after release, want 0", a.Live())
	}
	if a.Get(r1) != nil {
		t.Fatal("stale ref resolved after release")
	}
	// The slot is recycled; the old ref must stay stale.
	p2 := a.New(2, Forward, 2, 3, 10)
	if a.Get(r1) != nil {
		t.Fatal("stale ref resolved against recycled slot")
	}
	if r2 := a.Ref(p2); a.Get(r2) != p2 {
		t.Fatal("recycled slot's new ref did not resolve")
	}
}

func TestArenaPointerStabilityAcrossGrowth(t *testing.T) {
	a := NewArena()
	var ptrs []*Packet
	for i := 0; i < arenaChunkSize*3+5; i++ {
		ptrs = append(ptrs, a.New(uint64(i+1), Request, 0, 1, 0))
	}
	for i, p := range ptrs {
		if p.ID != uint64(i+1) {
			t.Fatalf("packet %d corrupted after growth: id %d", i, p.ID)
		}
	}
	if a.Cap() < arenaChunkSize*4 {
		t.Fatalf("cap = %d, want at least %d", a.Cap(), arenaChunkSize*4)
	}
}

func TestArenaDoubleReleasePanics(t *testing.T) {
	a := NewArena()
	p := a.New(1, Request, 0, 1, 0)
	a.Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	a.Release(p)
}

func TestArenaForeignPacketPanics(t *testing.T) {
	a := NewArena()
	p := New(1, Request, 0, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("releasing a non-arena packet did not panic")
		}
	}()
	a.Release(p)
}

func TestArenaOwns(t *testing.T) {
	a, b := NewArena(), NewArena()
	p := a.New(1, Request, 0, 1, 0)
	if !a.Owns(p) {
		t.Fatal("arena does not own its packet")
	}
	if b.Owns(p) {
		t.Fatal("foreign arena claims ownership")
	}
	if a.Owns(New(2, Request, 0, 1, 0)) {
		t.Fatal("arena claims plain packet")
	}
	a.Release(p)
	if a.Owns(p) {
		t.Fatal("arena owns a released packet")
	}
}

func TestArenaAllocFree(t *testing.T) {
	a := NewArena()
	// Warm the arena past its high-water mark.
	var held []*Packet
	for i := 0; i < 64; i++ {
		held = append(held, a.New(uint64(i), Request, 0, 1, 0))
	}
	for _, p := range held {
		a.Release(p)
	}
	allocs := testing.AllocsPerRun(200, func() {
		p := a.New(99, BlockResponse, 1, 2, 5)
		a.Release(p)
	})
	if allocs != 0 {
		t.Fatalf("steady-state New/Release allocates %.1f/op, want 0", allocs)
	}
}

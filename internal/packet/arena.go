package packet

// arena.go pools packets so the steady-state injection path allocates
// nothing: a packet is drawn from the arena at creation and returned to
// it when its delivery is fully processed. Storage grows in fixed-size
// chunks, never reallocating, so *Packet pointers handed out by New stay
// valid for the packet's whole lifetime. Every slot carries a generation
// counter; Ref handles embed the generation, making stale handles and
// double releases detectable instead of silently corrupting a recycled
// packet.

import (
	"fmt"

	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
)

// arenaChunkSize is the number of packet slots added per growth step.
const arenaChunkSize = 256

// Ref is a generation-checked handle to an arena packet. The zero Ref is
// invalid. Refs pack into two machine words and are safe to carry through
// event payloads; Arena.Get validates the generation on every lookup.
type Ref struct {
	idx uint32
	gen uint32
}

// Valid reports whether the handle was ever issued (it may still be
// stale; Get checks that).
func (r Ref) Valid() bool { return r.gen != 0 }

// Arena is a pool of packets. It is not safe for concurrent use; each
// simulation owns its own arena, matching the engine's single-threaded
// dispatch.
type Arena struct {
	chunks [][]Packet
	// gens[i] is the current generation of slot i: odd while the slot is
	// live, even while it is free. A Ref matches only while its gen equals
	// the slot's.
	gens []uint32
	free []uint32
	live int
}

// NewArena returns an empty arena; it grows on demand in fixed chunks.
func NewArena() *Arena { return &Arena{} }

// Live returns the number of packets currently checked out.
func (a *Arena) Live() int { return a.live }

// Cap returns the number of slots the arena has grown to.
func (a *Arena) Cap() int { return len(a.gens) }

func (a *Arena) grow() {
	base := uint32(len(a.gens))
	a.chunks = append(a.chunks, make([]Packet, arenaChunkSize))
	for i := 0; i < arenaChunkSize; i++ {
		a.gens = append(a.gens, 0)
		a.free = append(a.free, base+uint32(i))
	}
}

func (a *Arena) slot(idx uint32) *Packet {
	return &a.chunks[idx/arenaChunkSize][idx%arenaChunkSize]
}

// New checks a packet out of the arena, initialized exactly as
// packet.New would build it. The returned pointer is stable until
// Release.
func (a *Arena) New(id uint64, c Class, src, dst topology.Node, created sim.Ticks) *Packet {
	if len(a.free) == 0 {
		a.grow()
	}
	idx := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	a.gens[idx]++ // even -> odd: live
	p := a.slot(idx)
	*p = Packet{
		ID:      id,
		Class:   c,
		Flits:   c.Flits(),
		Src:     src,
		Dst:     dst,
		Created: created,
		arena:   a,
		ref:     Ref{idx: idx, gen: a.gens[idx]},
	}
	a.live++
	return p
}

// Ref returns the packet's generation-checked handle, or the zero Ref
// for packets not drawn from an arena (plain packet.New packets).
func (a *Arena) Ref(p *Packet) Ref {
	if p.arena != a {
		return Ref{}
	}
	return p.ref
}

// Owns reports whether p was drawn from this arena and is still live.
func (a *Arena) Owns(p *Packet) bool {
	return p.arena == a && a.gens[p.ref.idx] == p.ref.gen
}

// Get resolves a handle to its packet. It returns nil when the handle is
// stale — the packet was released (and possibly recycled) after the Ref
// was taken.
func (a *Arena) Get(r Ref) *Packet {
	if r.gen == 0 || r.idx >= uint32(len(a.gens)) || a.gens[r.idx] != r.gen {
		return nil
	}
	return a.slot(r.idx)
}

// Release returns a packet to the arena. It panics on double release or
// on a packet from a different (or no) arena — both indicate lifecycle
// bugs that would otherwise corrupt a recycled packet.
func (a *Arena) Release(p *Packet) {
	if p.arena != a {
		panic(fmt.Sprintf("packet: releasing %v to an arena it does not belong to", p))
	}
	idx := p.ref.idx
	if a.gens[idx] != p.ref.gen {
		panic(fmt.Sprintf("packet: double release of %v (slot %d gen %d, packet gen %d)",
			p, idx, a.gens[idx], p.ref.gen))
	}
	a.gens[idx]++ // odd -> even: free
	p.arena = nil
	p.ref = Ref{}
	a.free = append(a.free, idx)
	a.live--
}

package packet

import (
	"testing"
	"testing/quick"
)

func TestClassFlits(t *testing.T) {
	cases := map[Class]int{
		Request:          3,
		Forward:          3,
		BlockResponse:    19,
		NonBlockResponse: 3,
		WriteIO:          19,
		ReadIO:           3,
		Special:          1,
	}
	for c, want := range cases {
		if got := c.Flits(); got != want {
			t.Errorf("%v.Flits() = %d, want %d", c, got, want)
		}
	}
}

func TestBlockResponseCarriesCacheBlock(t *testing.T) {
	// A 19-flit block response carries 3 header flits + 16 data flits of 32
	// bits = 64 bytes, matching the paper's cache block description.
	dataFlits := BlockResponse.Flits() - 3
	if dataFlits*32/8 != 64 {
		t.Errorf("block response data payload = %d bytes, want 64", dataFlits*32/8)
	}
}

func TestIsIO(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		want := c == WriteIO || c == ReadIO
		if got := c.IsIO(); got != want {
			t.Errorf("%v.IsIO() = %v, want %v", c, got, want)
		}
	}
}

func TestNewPacket(t *testing.T) {
	p := New(7, BlockResponse, 3, 12, 100)
	if p.Flits != 19 || p.ID != 7 || p.Src != 3 || p.Dst != 12 || p.Created != 100 {
		t.Errorf("New produced %+v", p)
	}
	if p.String() == "" {
		t.Error("String is empty")
	}
}

func TestClassStringTotal(t *testing.T) {
	f := func(raw uint8) bool {
		c := Class(raw)
		return c.String() != "" // never panics, always names
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidClassFlitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Flits on invalid class should panic")
		}
	}()
	Class(200).Flits()
}

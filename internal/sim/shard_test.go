package sim

import (
	"testing"
)

// shardRig is a hub + 2 members group with recording handlers.
type shardRig struct {
	hub     *Engine
	members []*Engine
	pb      *PostBuffer
	g       *ShardGroup
	// log records every dispatched event as (engine index, tick, tag):
	// -1 for hub, 0..k-1 for members.
	log []shardEvent
	hs  []HandlerID // handler per engine, same indexing convention
}

type shardEvent struct {
	eng int
	at  Ticks
	tag int64
}

func newShardRig(t *testing.T, lookahead Ticks) *shardRig {
	t.Helper()
	r := &shardRig{
		hub:     NewEngine(),
		members: []*Engine{NewEngine(), NewEngine()},
		pb:      NewPostBuffer(4),
	}
	record := func(idx int) Handler {
		return func(args EventArgs) {
			e := r.hub
			if idx >= 0 {
				e = r.members[idx]
			}
			r.log = append(r.log, shardEvent{eng: idx, at: e.Now(), tag: args.A})
		}
	}
	r.hs = []HandlerID{r.hub.RegisterHandler(record(-1))}
	for i, m := range r.members {
		r.hs = append(r.hs, m.RegisterHandler(record(i)))
	}
	r.g = NewShardGroup(r.hub, r.members, r.pb, lookahead)
	t.Cleanup(r.g.Close)
	return r
}

// TestShardGroupDispatchOrder proves the group's per-tick phase contract:
// member events dispatch before hub events at the same tick, events obey
// (time, seq) order within each wheel, and flushed edge posts preserve
// source order.
func TestShardGroupDispatchOrder(t *testing.T) {
	r := newShardRig(t, 10)
	// Same-tick events across wheels: members dispatch (in member order)
	// before the hub.
	r.hub.Post(5, r.hs[0], EventArgs{A: 100})
	r.members[1].Post(5, r.hs[2], EventArgs{A: 300})
	r.members[0].Post(5, r.hs[1], EventArgs{A: 200})
	r.g.Run(5)
	want := []shardEvent{{0, 5, 200}, {1, 5, 300}, {-1, 5, 100}}
	if len(r.log) != len(want) {
		t.Fatalf("dispatched %d events, want %d: %+v", len(r.log), len(want), r.log)
	}
	for i, w := range want {
		if r.log[i] != w {
			t.Fatalf("event %d = %+v, want %+v (log %+v)", i, r.log[i], w, r.log)
		}
	}
}

// TestShardGroupEdgeAndFlush drives an edge job that cross-posts between
// shards through the PostBuffer and checks the arrivals land in the
// neighbor's wheel at the posted tick, in source order.
func TestShardGroupEdgeAndFlush(t *testing.T) {
	const lookahead = 10
	r := newShardRig(t, lookahead)
	r.g.SetEdge(4, 0, func(shard int, now Ticks, edge uint64) {
		other := 1 - shard
		// Source ids: shard s posts from sources 2s and 2s+1; flush order
		// must serialize source 0, 1 (shard 0) before 2, 3 (shard 1).
		r.pb.Post(2*shard, r.members[other], now+lookahead, r.hs[1+other], EventArgs{A: int64(100*shard + 1)})
		r.pb.Post(2*shard+1, r.hub, now+lookahead, r.hs[0], EventArgs{A: int64(100*shard + 2)})
	})
	r.g.Run(4) // edges at 0 and 4; arrivals from edge 0 land at 10 (unreached)
	if len(r.log) != 0 {
		t.Fatalf("no arrivals should have dispatched yet, got %+v", r.log)
	}
	r.g.Run(10)
	// Edge 0's posts all dispatch at tick 10: member events first (member
	// 0's wheel got shard 1's post; member 1's got shard 0's), then hub
	// events in flush (source) order.
	want := []shardEvent{{0, 10, 101}, {1, 10, 1}, {-1, 10, 2}, {-1, 10, 102}}
	if len(r.log) != len(want) {
		t.Fatalf("dispatched %d events, want %d: %+v", len(r.log), len(want), r.log)
	}
	for i, w := range want {
		if r.log[i] != w {
			t.Fatalf("event %d = %+v, want %+v (log %+v)", i, r.log[i], w, r.log)
		}
	}
}

// TestShardGroupLookaheadViolationPanics pins the CMB safety assertion:
// a cross-shard post inside the lookahead window is a bug, not a
// silently-late event.
func TestShardGroupLookaheadViolationPanics(t *testing.T) {
	r := newShardRig(t, 10)
	r.g.SetEdge(4, 0, func(shard int, now Ticks, edge uint64) {
		if shard == 0 {
			r.pb.Post(0, r.members[1], now+9, r.hs[2], EventArgs{})
		}
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected a lookahead-violation panic")
		}
	}()
	r.g.Run(4)
}

// TestShardGroupHubStop verifies Engine.Stop on the hub halts the group
// mid-run, like the monolithic engine.
func TestShardGroupHubStop(t *testing.T) {
	r := newShardRig(t, 10)
	stopH := r.hub.RegisterHandler(func(EventArgs) { r.hub.Stop() })
	r.hub.Post(7, stopH, EventArgs{})
	r.members[0].Post(20, r.hs[1], EventArgs{A: 9})
	r.g.Run(100)
	if now := r.hub.Now(); now != 7 {
		t.Fatalf("hub stopped at tick %d, want 7", now)
	}
	if len(r.log) != 0 {
		t.Fatalf("post-stop events dispatched: %+v", r.log)
	}
}

// TestShardGroupDomainsAfterEdge checks hub clock domains tick after the
// edge phase on shared ticks, mirroring the monolithic engine's
// routers-then-generator domain order.
func TestShardGroupDomainsAfterEdge(t *testing.T) {
	r := newShardRig(t, 10)
	var order []string
	r.g.SetEdge(4, 0, func(shard int, now Ticks, edge uint64) {
		if shard == 0 {
			order = append(order, "edge")
		}
	})
	r.hub.AddClock(4, 0, clockedFunc(func(now Ticks) { order = append(order, "domain") }))
	r.g.Run(4)
	want := []string{"edge", "domain", "edge", "domain"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestShardGroupDispatchAllocs pins the zero-allocation contract of the
// sharded steady state: edges with cross-shard PostBuffer traffic and
// pooled event dispatch must not allocate once the free lists and the
// buffer's per-source slices have warmed.
func TestShardGroupDispatchAllocs(t *testing.T) {
	const lookahead = 10
	r := newShardRig(t, lookahead)
	fired := 0
	count := func(args EventArgs) { fired++ }
	chs := []HandlerID{r.members[0].RegisterHandler(count), r.members[1].RegisterHandler(count)}
	hubH := r.hub.RegisterHandler(count)
	r.g.SetEdge(4, 0, func(shard int, now Ticks, edge uint64) {
		other := 1 - shard
		r.pb.Post(2*shard, r.members[other], now+lookahead, chs[other], EventArgs{})
		r.pb.Post(2*shard+1, r.hub, now+lookahead, hubH, EventArgs{})
	})
	until := Ticks(0)
	run := func() {
		until += 40
		r.g.Run(until)
	}
	for i := 0; i < 50; i++ {
		run() // warm free lists and post-buffer capacity
	}
	allocs := testing.AllocsPerRun(200, run)
	if allocs != 0 {
		t.Fatalf("sharded steady state allocates %.2f/op, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("handlers never fired")
	}
}

// TestShardGroupSingleMemberInline covers the k=1 fast path (no worker
// goroutines): the edge runs inline and posts still flush through the
// buffer.
func TestShardGroupSingleMemberInline(t *testing.T) {
	hub := NewEngine()
	member := NewEngine()
	pb := NewPostBuffer(1)
	fired := 0
	h := member.RegisterHandler(func(EventArgs) { fired++ })
	g := NewShardGroup(hub, []*Engine{member}, pb, 10)
	defer g.Close()
	g.SetEdge(4, 0, func(shard int, now Ticks, edge uint64) {
		pb.Post(0, member, now+10, h, EventArgs{})
	})
	g.Run(50)
	if fired == 0 {
		t.Fatal("inline edge posts never dispatched")
	}
}

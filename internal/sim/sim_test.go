package sim

import (
	"testing"
	"testing/quick"
)

func TestTicksNS(t *testing.T) {
	if got := (TicksPerNS * 45).NS(); got != 45 {
		t.Errorf("45ns round trip = %v", got)
	}
	if got := RouterPeriod.NS(); got < 0.83 || got > 0.84 {
		t.Errorf("router period = %v ns, want ~0.833", got)
	}
	if got := LinkPeriod.NS(); got != 1.25 {
		t.Errorf("link period = %v ns, want 1.25", got)
	}
	if got := FromNS(73); got != 876 {
		t.Errorf("FromNS(73) = %d, want 876", got)
	}
	if got := FromNS(-1); got != 0 {
		t.Errorf("FromNS(-1) = %d, want 0", got)
	}
	if got := Cycles(13, RouterPeriod); got != 130 {
		t.Errorf("Cycles(13, RouterPeriod) = %d, want 130", got)
	}
}

func TestFromNSRoundTrip(t *testing.T) {
	f := func(n uint16) bool {
		ns := float64(n)
		return FromNS(ns).NS() == ns
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineEventOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(20, func() { order = append(order, 2) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 3) }) // same tick: schedule order
	e.Schedule(30, func() { order = append(order, 4) })
	e.Run(25)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 25 {
		t.Fatalf("now = %d, want 25", e.Now())
	}
	e.Run(40)
	if len(order) != 4 || order[3] != 4 {
		t.Fatalf("order after resume = %v", order)
	}
}

func TestEngineEventCascade(t *testing.T) {
	e := NewEngine()
	var fired []Ticks
	e.Schedule(5, func() {
		fired = append(fired, e.Now())
		// An event scheduled for the current tick by another event runs on
		// the same tick, in schedule order.
		e.Schedule(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run(100)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 5 {
		t.Fatalf("fired = %v, want [5 5]", fired)
	}
}

type tickRecorder struct {
	name  string
	ticks *[]string
}

func (r *tickRecorder) Tick(now Ticks) {
	*r.ticks = append(*r.ticks, r.name)
}

func TestEngineClockDomains(t *testing.T) {
	e := NewEngine()
	var seq []string
	router := &tickRecorder{name: "r", ticks: &seq}
	link := &tickRecorder{name: "l", ticks: &seq}
	e.AddClock(RouterPeriod, 0, router)
	e.AddClock(LinkPeriod, 0, link)
	e.Run(30)
	// Router edges at 0,10,20,30; link edges at 0,15,30. Shared edges fire
	// in domain registration order.
	want := []string{"r", "l", "r", "l", "r", "r", "l"}
	if len(seq) != len(want) {
		t.Fatalf("seq = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq = %v, want %v", seq, want)
		}
	}
}

func TestEngineEventBeforeEdge(t *testing.T) {
	e := NewEngine()
	var seq []string
	r := &tickRecorder{name: "edge", ticks: &seq}
	e.AddClock(10, 0, r)
	e.Schedule(10, func() { seq = append(seq, "event") })
	e.Run(10)
	if len(seq) != 3 || seq[1] != "event" || seq[2] != "edge" {
		t.Fatalf("seq = %v, want [edge event edge]", seq)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() { n++; e.Stop() })
	e.Schedule(2, func() { n++ })
	e.Run(100)
	if n != 1 {
		t.Fatalf("n = %d, want 1 (stopped)", n)
	}
	e.Run(100)
	if n != 2 {
		t.Fatalf("n = %d after resume, want 2", n)
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine()
	var at Ticks = -1
	e.Schedule(50, func() {
		e.Schedule(10, func() { at = e.Now() }) // in the past: clamped
	})
	e.Run(100)
	if at != 50 {
		t.Fatalf("past event ran at %d, want 50", at)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d times", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) bucket %d has %d hits; distribution looks skewed", i, c)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	f := func(n uint8) bool {
		k := int(n%20) + 1
		p := r.Perm(k)
		seen := make([]bool, k)
		for _, v := range p {
			if v < 0 || v >= k || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGPick(t *testing.T) {
	r := NewRNG(11)
	// Mask with bits {1, 5, 9}: every pick must land on a set bit.
	var mask uint64 = 1<<1 | 1<<5 | 1<<9
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		v := r.Pick(mask)
		if v != 1 && v != 5 && v != 9 {
			t.Fatalf("Pick landed on unset bit %d", v)
		}
		counts[v]++
	}
	for _, bit := range []int{1, 5, 9} {
		if counts[bit] < 800 {
			t.Errorf("Pick bit %d chosen only %d/3000 times", bit, counts[bit])
		}
	}
}

func TestRNGBernoulliExtremes(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(1)
	childA := parent.Split()
	childB := parent.Split()
	if childA.Uint64() == childB.Uint64() {
		t.Error("split children produced identical first values")
	}
}

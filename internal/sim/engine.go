package sim

// Clocked is a component driven on every edge of a clock.
type Clocked interface {
	Tick(now Ticks)
}

// clockDomain drives a set of components every period ticks.
type clockDomain struct {
	period     Ticks
	phase      Ticks
	components []Clocked
}

func (d *clockDomain) nextEdgeAt(now Ticks) Ticks {
	if now <= d.phase {
		return d.phase
	}
	k := (now - d.phase + d.period - 1) / d.period
	return d.phase + k*d.period
}

// HandlerID names a callback registered with RegisterHandler.
type HandlerID uint32

// EventArgs is the small fixed-size payload carried by a scheduled
// event: two integer words and one pointer-shaped reference. Posting an
// event copies the struct into a pooled node, so steady-state scheduling
// performs no heap allocation (storing a pointer, func, or other
// pointer-shaped value in P does not allocate either).
type EventArgs struct {
	A, B int64
	P    any
}

// Handler is a static callback registered once at setup and invoked for
// every event posted to it. Handlers needing the current time read it
// from the engine they captured at registration.
type Handler func(args EventArgs)

// funcHandler is the built-in handler behind the Schedule adapter: its
// payload is the closure to call.
const funcHandler HandlerID = 0

// Engine is a deterministic single-threaded simulation engine combining a
// cycle-driven clock model (for the router pipelines) with an event queue
// (for link arrivals, memory responses, and other timed callbacks). The
// queue is a hierarchical, bitmap-indexed tick wheel over pooled event
// nodes (see wheel.go), so steady-state scheduling allocates nothing.
//
// Dispatch order within one tick: first all events due at the tick (in
// (time, schedule) order, including events scheduled for the same tick by
// earlier events), then all clock domains whose edge falls on the tick,
// each firing its components in registration order. An event scheduled
// for the current tick by a clocked component runs on the following tick;
// this keeps the cycle semantics strictly causal.
type Engine struct {
	now      Ticks
	seq      uint64
	q        timerWheel
	handlers []Handler
	domains  []*clockDomain
	stopped  bool
}

// NewEngine returns an engine with time at zero.
func NewEngine() *Engine {
	e := &Engine{}
	// HandlerID 0 is the Schedule(fn) adapter.
	e.handlers = append(e.handlers, func(args EventArgs) {
		args.P.(func())()
	})
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() Ticks { return e.now }

// RegisterHandler adds a static callback and returns its id. Register
// handlers at setup time; Post then schedules allocation-free events
// against them. Handlers are never unregistered.
func (e *Engine) RegisterHandler(fn Handler) HandlerID {
	if fn == nil {
		panic("sim: RegisterHandler with nil handler")
	}
	e.handlers = append(e.handlers, fn)
	return HandlerID(len(e.handlers) - 1)
}

// Post schedules handler h to run at the given absolute tick with the
// given payload. Posting at or before the current tick runs the handler
// at the next dispatch opportunity; time never rewinds.
func (e *Engine) Post(at Ticks, h HandlerID, args EventArgs) {
	if int(h) >= len(e.handlers) {
		panic("sim: Post with unregistered handler")
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	n := e.q.alloc()
	n.at, n.seq, n.h, n.args = at, e.seq, h, args
	e.q.insert(n, false)
}

// PostDelay posts handler h after delay ticks.
func (e *Engine) PostDelay(delay Ticks, h HandlerID, args EventArgs) {
	e.Post(e.now+delay, h, args)
}

// Schedule runs fn at the given absolute tick. It is a thin adapter over
// Post: the closure itself is the only allocation, so prefer
// RegisterHandler/Post on hot paths. Scheduling at or before the current
// tick runs the callback at the next dispatch opportunity.
func (e *Engine) Schedule(at Ticks, fn func()) {
	e.Post(at, funcHandler, EventArgs{P: fn})
}

// ScheduleDelay runs fn after delay ticks.
func (e *Engine) ScheduleDelay(delay Ticks, fn func()) { e.Schedule(e.now+delay, fn) }

// AddClock registers a clock domain with the given period and phase.
// Components attached to the domain tick at phase, phase+period, ...
func (e *Engine) AddClock(period, phase Ticks, components ...Clocked) {
	if period <= 0 {
		panic("sim: clock period must be positive")
	}
	e.domains = append(e.domains, &clockDomain{period: period, phase: phase, components: components})
}

// Attach adds components to the most recently added clock domain.
func (e *Engine) Attach(components ...Clocked) {
	d := e.domains[len(e.domains)-1]
	d.components = append(d.components, components...)
}

// Stop halts Run before the next dispatch.
func (e *Engine) Stop() { e.stopped = true }

// nextDispatch returns the earliest tick >= e.now with pending work.
func (e *Engine) nextDispatch() (Ticks, bool) {
	var best Ticks
	found := false
	if t, ok := e.q.nextAt(); ok {
		if t < e.now {
			t = e.now
		}
		best, found = t, true
	}
	for _, d := range e.domains {
		if len(d.components) == 0 {
			continue
		}
		t := d.nextEdgeAt(e.now)
		if !found || t < best {
			best, found = t, true
		}
	}
	return best, found
}

// Run advances simulated time up to and including tick `until`, dispatching
// events and clock edges in deterministic order.
func (e *Engine) Run(until Ticks) {
	e.stopped = false
	for !e.stopped {
		next, ok := e.nextDispatch()
		if !ok || next > until {
			if e.now < until {
				e.now = until
				e.q.advanceTo(until)
			}
			return
		}
		if next > e.now {
			e.now = next
		}
		// The wheel's origin can lag e.now by one tick after the loop's
		// e.now++; advancing by one tick is always safe (no event can lie
		// strictly between consecutive integers).
		e.q.advanceTo(e.now)
		for {
			n := e.q.popDue(e.now)
			if n == nil {
				break
			}
			fn := e.handlers[n.h]
			args := n.args
			e.q.release(n)
			fn(args)
			if e.stopped {
				return
			}
		}
		for _, d := range e.domains {
			if e.now >= d.phase && (e.now-d.phase)%d.period == 0 {
				for _, c := range d.components {
					c.Tick(e.now)
				}
			}
		}
		if e.now == until {
			return
		}
		e.q.sweepStale(e.now)
		e.now++
	}
}

package sim

import "container/heap"

// event is a callback scheduled to run at a particular tick.
type event struct {
	at  Ticks
	seq uint64 // schedule order; breaks ties deterministically
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Clocked is a component driven on every edge of a clock.
type Clocked interface {
	Tick(now Ticks)
}

// clockDomain drives a set of components every period ticks.
type clockDomain struct {
	period     Ticks
	phase      Ticks
	components []Clocked
}

func (d *clockDomain) nextEdgeAt(now Ticks) Ticks {
	if now <= d.phase {
		return d.phase
	}
	k := (now - d.phase + d.period - 1) / d.period
	return d.phase + k*d.period
}

// Engine is a deterministic single-threaded simulation engine combining a
// cycle-driven clock model (for the router pipelines) with an event queue
// (for link arrivals, memory responses, and other timed callbacks).
//
// Dispatch order within one tick: first all events due at the tick (in
// schedule order, including events scheduled for the same tick by earlier
// events), then all clock domains whose edge falls on the tick, each firing
// its components in registration order. An event scheduled for the current
// tick by a clocked component runs on the following tick; this keeps the
// cycle semantics strictly causal.
type Engine struct {
	now     Ticks
	seq     uint64
	events  eventQueue
	domains []*clockDomain
	stopped bool
}

// NewEngine returns an engine with time at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Ticks { return e.now }

// Schedule runs fn at the given absolute tick. Scheduling at or before the
// current tick runs the callback at the next dispatch opportunity; time
// never rewinds.
func (e *Engine) Schedule(at Ticks, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn})
}

// ScheduleDelay runs fn after delay ticks.
func (e *Engine) ScheduleDelay(delay Ticks, fn func()) { e.Schedule(e.now+delay, fn) }

// AddClock registers a clock domain with the given period and phase.
// Components attached to the domain tick at phase, phase+period, ...
func (e *Engine) AddClock(period, phase Ticks, components ...Clocked) {
	if period <= 0 {
		panic("sim: clock period must be positive")
	}
	e.domains = append(e.domains, &clockDomain{period: period, phase: phase, components: components})
}

// Attach adds components to the most recently added clock domain.
func (e *Engine) Attach(components ...Clocked) {
	d := e.domains[len(e.domains)-1]
	d.components = append(d.components, components...)
}

// Stop halts Run before the next dispatch.
func (e *Engine) Stop() { e.stopped = true }

// nextDispatch returns the earliest tick >= e.now with pending work.
func (e *Engine) nextDispatch() (Ticks, bool) {
	var best Ticks
	found := false
	if len(e.events) > 0 {
		best = e.events[0].at
		if best < e.now {
			best = e.now
		}
		found = true
	}
	for _, d := range e.domains {
		if len(d.components) == 0 {
			continue
		}
		t := d.nextEdgeAt(e.now)
		if !found || t < best {
			best, found = t, true
		}
	}
	return best, found
}

// Run advances simulated time up to and including tick `until`, dispatching
// events and clock edges in deterministic order.
func (e *Engine) Run(until Ticks) {
	e.stopped = false
	for !e.stopped {
		next, ok := e.nextDispatch()
		if !ok || next > until {
			if e.now < until {
				e.now = until
			}
			return
		}
		e.now = next
		for len(e.events) > 0 && e.events[0].at <= e.now {
			ev := heap.Pop(&e.events).(*event)
			ev.fn()
			if e.stopped {
				return
			}
		}
		for _, d := range e.domains {
			if e.now >= d.phase && (e.now-d.phase)%d.period == 0 {
				for _, c := range d.components {
					c.Tick(e.now)
				}
			}
		}
		if e.now == until {
			return
		}
		e.now++
	}
}

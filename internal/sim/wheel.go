package sim

// wheel.go is the engine's event queue: a hierarchical, bitmap-indexed
// tick wheel (calendar queue) over intrusive event nodes drawn from a
// free list, replacing the closure-per-event binary heap. Steady-state
// scheduling allocates nothing: a node is recycled the moment its event
// dispatches, and slot membership is intrusive (each node carries its
// own next pointer).
//
// Layout. Four levels of 256 slots each cover any delay below 2^32 ticks
// (~358 ms of simulated time); rarer, farther events wait in an overflow
// list. A node scheduled delta ticks ahead lands at the lowest level
// whose span contains delta, in the slot indexed by the corresponding
// 8-bit digit of its absolute time. Advancing time "cascades" the newly
// entered slot of each higher level down into finer levels. Per-level
// occupancy bitmaps (4 x 256 bits) make "find the next busy slot" a few
// TrailingZeros64 instructions, so skipping idle gaps costs O(1) — the
// indexed part of the indexed tick wheel.
//
// Determinism. The engine's contract is dispatch in (at, seq) order —
// absolute time, then schedule order. Every slot list is kept sorted by
// seq: fresh schedules carry the globally largest seq and append in
// O(1); cascaded nodes (whose seq may predate nodes already in the
// target slot) merge at their sorted position. Level-0 slots therefore
// pop in exact (at, seq) order, and the randomized differential test in
// sim_test.go checks the whole structure against a reference heap.
//
// Stale slots. A clocked component may schedule work at the current
// tick; the engine's causality rule says it runs on the following tick.
// When the engine leaves a tick it sweeps that tick's level-0 slot into
// the overdue list, which popDue serves first — preserving the heap's
// ordering, where a past-due event outranks everything current.

import "math/bits"

const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	// wheelSpan is the horizon of the wheel proper; events scheduled
	// farther than this ahead wait in the overflow list.
	wheelSpan = Ticks(1) << (wheelBits * wheelLevels)
	// overflowCheckShift: the overflow list is refiltered whenever time
	// crosses a 2^overflowCheckShift boundary, which is guaranteed to
	// happen before any overflow node comes within the wheel's horizon.
	overflowCheckShift = wheelBits*wheelLevels - 1
)

// eventNode is one scheduled event: an intrusive list node carrying a
// registered-handler id and its small fixed-size payload.
type eventNode struct {
	next *eventNode
	at   Ticks
	seq  uint64
	h    HandlerID
	args EventArgs
}

// nodeList is an intrusive singly-linked list with O(1) append.
type nodeList struct {
	head, tail *eventNode
}

func (l *nodeList) append(n *eventNode) {
	n.next = nil
	if l.tail == nil {
		l.head, l.tail = n, n
		return
	}
	l.tail.next = n
	l.tail = n
}

// insertBySeq places n at its seq-sorted position. Cascades use it:
// a node parked at a coarse level may be older (smaller seq) than nodes
// already sitting in the fine slot it lands in.
func (l *nodeList) insertBySeq(n *eventNode) {
	if l.tail == nil || l.tail.seq < n.seq {
		l.append(n)
		return
	}
	if l.head.seq > n.seq {
		n.next = l.head
		l.head = n
		return
	}
	p := l.head
	for p.next != nil && p.next.seq < n.seq {
		p = p.next
	}
	n.next = p.next
	p.next = n
	if n.next == nil {
		l.tail = n
	}
}

func (l *nodeList) popHead() *eventNode {
	n := l.head
	if n == nil {
		return nil
	}
	l.head = n.next
	if l.head == nil {
		l.tail = nil
	}
	n.next = nil
	return n
}

// take detaches and returns the whole chain.
func (l *nodeList) take() *eventNode {
	n := l.head
	l.head, l.tail = nil, nil
	return n
}

// timerWheel is the hierarchical tick wheel plus its free list.
type timerWheel struct {
	cur   Ticks // placement origin; advanced by advanceTo
	count int   // nodes in the wheel levels
	slots [wheelLevels][wheelSlots]nodeList
	occ   [wheelLevels][wheelSlots / 64]uint64

	overflow  nodeList // at - cur >= wheelSpan at insert; seq-ordered
	nOverflow int
	overdue   nodeList // swept stale slots; (at, seq)-ordered FIFO
	nOverdue  int

	free *eventNode
}

// pending reports whether any event is queued.
func (w *timerWheel) pending() bool {
	return w.count > 0 || w.nOverflow > 0 || w.nOverdue > 0
}

// alloc takes a node from the free list, or allocates one the first time
// the queue grows past its high-water mark.
func (w *timerWheel) alloc() *eventNode {
	if n := w.free; n != nil {
		w.free = n.next
		n.next = nil
		return n
	}
	return &eventNode{}
}

// release recycles a dispatched node.
func (w *timerWheel) release(n *eventNode) {
	n.args = EventArgs{} // drop payload references for the GC
	n.next = w.free
	w.free = n
}

// levelFor maps a non-negative delta below wheelSpan to its wheel level.
func levelFor(delta Ticks) int {
	switch {
	case delta < 1<<wheelBits:
		return 0
	case delta < 1<<(2*wheelBits):
		return 1
	case delta < 1<<(3*wheelBits):
		return 2
	default:
		return 3
	}
}

func (w *timerWheel) mark(lvl, slot int)  { w.occ[lvl][slot>>6] |= 1 << uint(slot&63) }
func (w *timerWheel) clear(lvl, slot int) { w.occ[lvl][slot>>6] &^= 1 << uint(slot&63) }
func (w *timerWheel) occupied(lvl, slot int) bool {
	return w.occ[lvl][slot>>6]&(1<<uint(slot&63)) != 0
}

// insert places a node relative to the current time. sorted selects
// seq-sorted insertion (cascades and refilters); fresh schedules append.
// The caller guarantees n.at >= w.cur.
func (w *timerWheel) insert(n *eventNode, sorted bool) {
	delta := n.at - w.cur
	if delta >= wheelSpan {
		if sorted {
			w.overflow.insertBySeq(n)
		} else {
			w.overflow.append(n)
		}
		w.nOverflow++
		return
	}
	lvl := levelFor(delta)
	slot := int(n.at>>(wheelBits*uint(lvl))) & wheelMask
	if sorted {
		w.slots[lvl][slot].insertBySeq(n)
	} else {
		w.slots[lvl][slot].append(n)
	}
	w.mark(lvl, slot)
	w.count++
}

// cascadeSlot redistributes one slot's chain into finer levels relative
// to the (already advanced) current time.
func (w *timerWheel) cascadeSlot(lvl, slot int) {
	if !w.occupied(lvl, slot) {
		return
	}
	w.clear(lvl, slot)
	n := w.slots[lvl][slot].take()
	for n != nil {
		next := n.next
		w.count--
		w.insert(n, true)
		n = next
	}
}

// refilterOverflow re-examines the overflow list after a large time
// advance, moving nodes that now fall within the wheel's horizon.
func (w *timerWheel) refilterOverflow() {
	n := w.overflow.take()
	w.nOverflow = 0
	for n != nil {
		next := n.next
		if n.at-w.cur >= wheelSpan {
			w.overflow.append(n)
			w.nOverflow++
		} else {
			w.insert(n, true)
		}
		n = next
	}
}

// advanceTo moves the wheel's origin forward to t. The caller guarantees
// no pending node's time lies strictly between the old origin and t —
// the engine only advances to the earliest pending dispatch time.
func (w *timerWheel) advanceTo(t Ticks) {
	if t <= w.cur {
		return
	}
	old := w.cur
	w.cur = t
	if w.overflow.head != nil && (old>>overflowCheckShift) != (t>>overflowCheckShift) {
		w.refilterOverflow()
	}
	for lvl := wheelLevels - 1; lvl >= 1; lvl-- {
		shift := wheelBits * uint(lvl)
		if (old >> shift) == (t >> shift) {
			continue
		}
		w.cascadeSlot(lvl, int(t>>shift)&wheelMask)
	}
}

// sweepStale moves events still sitting in tick `now`'s level-0 slot
// (scheduled at the current tick by clocked components) to the overdue
// list, so leaving the tick cannot strand them behind the scan origin.
func (w *timerWheel) sweepStale(now Ticks) {
	slot := int(now) & wheelMask
	if !w.occupied(0, slot) {
		return
	}
	w.clear(0, slot)
	n := w.slots[0][slot].take()
	for n != nil {
		next := n.next
		if n.at != now {
			panic("sim: tick wheel swept a future event")
		}
		n.next = nil
		w.overdue.append(n)
		w.nOverdue++
		w.count--
		n = next
	}
}

// popDue removes and returns the earliest event with at <= now, in
// (at, seq) order, or nil when none is due. The engine must have
// advanced the wheel to now first.
func (w *timerWheel) popDue(now Ticks) *eventNode {
	if w.overdue.head != nil {
		w.nOverdue--
		return w.overdue.popHead()
	}
	slot := int(now) & wheelMask
	if !w.occupied(0, slot) {
		return nil
	}
	l := &w.slots[0][slot]
	if l.head.at != now {
		return nil // the slot holds next-rotation events, not due ones
	}
	n := l.popHead()
	if l.head == nil {
		w.clear(0, slot)
	}
	w.count--
	return n
}

// nextOcc returns the first occupied slot index >= from at the level, or
// -1 when none.
func (w *timerWheel) nextOcc(lvl, from int) int {
	if from >= wheelSlots {
		return -1
	}
	word := from >> 6
	bits64 := w.occ[lvl][word] &^ ((1 << uint(from&63)) - 1)
	for {
		if bits64 != 0 {
			return word<<6 + bits.TrailingZeros64(bits64)
		}
		word++
		if word >= wheelSlots/64 {
			return -1
		}
		bits64 = w.occ[lvl][word]
	}
}

// minAt walks one slot's chain for its earliest time (lists are ordered
// by seq, not time, at levels above 0).
func (w *timerWheel) minAt(lvl, slot int) Ticks {
	best := Ticks(-1)
	for n := w.slots[lvl][slot].head; n != nil; n = n.next {
		if best < 0 || n.at < best {
			best = n.at
		}
	}
	return best
}

// nextAt returns the earliest pending event time. It never mutates the
// wheel.
func (w *timerWheel) nextAt() (Ticks, bool) {
	if w.overdue.head != nil {
		return w.overdue.head.at, true
	}
	if w.count == 0 && w.nOverflow == 0 {
		return 0, false
	}
	base0 := w.cur &^ Ticks(wheelMask)
	idx0 := int(w.cur) & wheelMask
	// A hit at or ahead of the current level-0 index is provably minimal:
	// wrapped level-0 slots and all higher levels hold strictly later
	// times.
	if s := w.nextOcc(0, idx0); s >= 0 {
		return base0 + Ticks(s), true
	}
	best := Ticks(-1)
	consider := func(t Ticks) {
		if t >= 0 && (best < 0 || t < best) {
			best = t
		}
	}
	// Wrapped level-0 slots hold next-rotation times.
	if s := w.nextOcc(0, 0); s >= 0 && s < idx0 {
		consider(base0 + wheelSlots + Ticks(s))
	}
	// At each higher level, slots are disjoint ascending time ranges:
	// slots ahead of the current index cover this rotation, wrapped slots
	// (including the current index itself) the next one. The first
	// occupied slot in that order holds the level's earliest nodes.
	for lvl := 1; lvl < wheelLevels; lvl++ {
		idx := int(w.cur>>(wheelBits*uint(lvl))) & wheelMask
		s := w.nextOcc(lvl, idx+1)
		if s < 0 {
			if s2 := w.nextOcc(lvl, 0); s2 >= 0 && s2 <= idx {
				s = s2
			}
		}
		if s >= 0 {
			consider(w.minAt(lvl, s))
		}
	}
	for n := w.overflow.head; n != nil; n = n.next {
		consider(n.at)
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

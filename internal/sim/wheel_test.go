package sim

// wheel_test.go covers the tick-wheel scheduler's edge cases — same-tick
// event/clock ordering, far-future scheduling past one (and several)
// wheel rotations, scheduling at or before the current tick — and
// mirrors the whole structure against the old binary-heap queue with a
// randomized differential test.

import (
	"container/heap"
	"math/rand"
	"testing"
)

// ---- reference implementation: the pre-tick-wheel binary heap ----

type refEvent struct {
	at  Ticks
	seq uint64
	id  int
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(*refEvent)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// refEngine replays the old engine's event semantics: dispatch in
// (at, seq) order, past times clamped to now at schedule time.
type refEngine struct {
	now    Ticks
	seq    uint64
	events refQueue
}

func (r *refEngine) schedule(at Ticks, id int) {
	if at < r.now {
		at = r.now
	}
	r.seq++
	heap.Push(&r.events, &refEvent{at: at, seq: r.seq, id: id})
}

// run advances to `until`, appending dispatched ids to order; onDispatch
// may schedule more events.
func (r *refEngine) run(until Ticks, onDispatch func(id int)) []int {
	var order []int
	for len(r.events) > 0 {
		next := r.events[0].at
		if next < r.now {
			next = r.now
		}
		if next > until {
			break
		}
		r.now = next
		for len(r.events) > 0 && r.events[0].at <= r.now {
			ev := heap.Pop(&r.events).(*refEvent)
			order = append(order, ev.id)
			if onDispatch != nil {
				onDispatch(ev.id)
			}
		}
		if r.now == until {
			return order
		}
		r.now++
	}
	if r.now < until {
		r.now = until
	}
	return order
}

// ---- tick-wheel edge cases ----

type clockedFunc func(Ticks)

func (f clockedFunc) Tick(now Ticks) { f(now) }

// TestWheelSameTickEventThenClock pins the intra-tick order: events due
// at a tick run before that tick's clock edges, and an event scheduled
// at the current tick by a clocked component runs on the following tick.
func TestWheelSameTickEventThenClock(t *testing.T) {
	e := NewEngine()
	var seq []string
	e.AddClock(10, 0, clockedFunc(func(now Ticks) {
		seq = append(seq, "clock")
		if now == 10 {
			e.Schedule(now, func() { seq = append(seq, "clock-scheduled") })
		}
	}))
	e.Schedule(10, func() { seq = append(seq, "event") })
	e.Run(30)
	// Tick 0: clock. Tick 10: event then clock (which schedules at 10).
	// Tick 11: the clock-scheduled event (following tick, before any
	// edge). Ticks 20, 30: clock.
	want := []string{"clock", "event", "clock", "clock-scheduled", "clock", "clock"}
	if len(seq) != len(want) {
		t.Fatalf("seq = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq = %v, want %v", seq, want)
		}
	}
}

// TestWheelFarFuture schedules events past one wheel rotation at every
// level, past the whole wheel horizon (the overflow list), and checks
// dispatch times.
func TestWheelFarFuture(t *testing.T) {
	e := NewEngine()
	delays := []Ticks{
		1, 255, 256, 257, // level 0/1 boundary
		wheelSlots*3 + 7,              // several level-0 rotations
		1<<16 - 1, 1 << 16, 1<<16 + 1, // level 1/2 boundary
		1<<24 - 1, 1 << 24, 1<<24 + 13, // level 2/3 boundary
		wheelSpan - 1, wheelSpan, wheelSpan + 12345, // horizon/overflow
	}
	got := make([]Ticks, len(delays))
	for i, d := range delays {
		at, idx := d, i
		e.Schedule(at, func() { got[idx] = e.Now() })
	}
	e.Run(wheelSpan + 20000)
	for i, d := range delays {
		if got[i] != d {
			t.Errorf("event %d (at %d) ran at %d", i, d, got[i])
		}
	}
}

// TestWheelScheduleAtOrBeforeNow checks the clamping rule: scheduling at
// or before the current tick dispatches at the next opportunity, in
// schedule order, never rewinding time.
func TestWheelScheduleAtOrBeforeNow(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(100, func() {
		e.Schedule(50, func() { order = append(order, 1) })  // past: clamped to 100
		e.Schedule(100, func() { order = append(order, 2) }) // now: same tick
		e.Schedule(0, func() { order = append(order, 3) })   // past: clamped
	})
	e.Run(200)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 200 {
		t.Fatalf("now = %d, want 200", e.Now())
	}
}

// TestPostRegisteredHandler exercises the static-callback API directly:
// payloads arrive intact, in (at, seq) order, across wheel levels.
func TestPostRegisteredHandler(t *testing.T) {
	e := NewEngine()
	type rec struct {
		a, b int64
		at   Ticks
	}
	var got []rec
	h := e.RegisterHandler(func(args EventArgs) {
		got = append(got, rec{args.A, args.B, e.Now()})
	})
	e.Post(500, h, EventArgs{A: 2, B: 20})
	e.Post(5, h, EventArgs{A: 1, B: 10})
	e.PostDelay(1<<18, h, EventArgs{A: 3, B: 30})
	e.Run(1 << 20)
	want := []rec{{1, 10, 5}, {2, 20, 500}, {3, 30, 1 << 18}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// horizonFor draws event id's chained-schedule delay deterministically,
// so the wheel engine and the reference heap make identical decisions
// without sharing state.
func horizonFor(trial, id int, now Ticks) Ticks {
	r := rand.New(rand.NewSource(int64(id)*2654435761 + int64(trial)))
	switch r.Intn(6) {
	case 0:
		return now // same tick
	case 1:
		return now + Ticks(r.Intn(16)) // near
	case 2:
		return now + Ticks(r.Intn(1024)) // wraps level 0
	case 3:
		return now + Ticks(r.Intn(1<<17)) // level 2
	case 4:
		return now - Ticks(r.Intn(64)) // past: clamps
	default:
		return now + wheelSpan + Ticks(r.Intn(4096)) // overflow
	}
}

// TestWheelDifferentialRandom mirrors the wheel against the reference
// heap over randomized workloads: bursts of schedules at mixed horizons
// (same tick, near, wrapped, far, overflow) and chained re-scheduling
// from inside dispatches. Dispatch order must match id for id.
func TestWheelDifferentialRandom(t *testing.T) {
	const chainLimit = 4000
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))

		// Seed burst, shared verbatim by both engines.
		type seeded struct {
			at Ticks
			id int
		}
		var seeds []seeded
		for i := 0; i < 60+rng.Intn(60); i++ {
			seeds = append(seeds, seeded{at: horizonFor(trial, -i-1, 0), id: i + 1})
		}

		// Wheel engine: every dispatch of an id divisible by 3 chains one
		// more event at horizonFor(nextID).
		e := NewEngine()
		idSrc := len(seeds)
		var got []int
		var chain func(id int) func()
		chain = func(id int) func() {
			return func() {
				got = append(got, id)
				if id%3 == 0 && id < chainLimit {
					idSrc++
					nid := idSrc
					e.Schedule(horizonFor(trial, nid, e.Now()), chain(nid))
				}
			}
		}
		for _, s := range seeds {
			e.Schedule(s.at, chain(s.id))
		}
		e.Run(1 << 40)

		// Reference heap with the identical chaining rule.
		ref := &refEngine{}
		refIDSrc := len(seeds)
		for _, s := range seeds {
			ref.schedule(s.at, s.id)
		}
		refOrder := ref.run(1<<40, func(id int) {
			if id%3 == 0 && id < chainLimit {
				refIDSrc++
				ref.schedule(horizonFor(trial, refIDSrc, ref.now), refIDSrc)
			}
		})

		if len(got) != len(refOrder) {
			t.Fatalf("trial %d: wheel dispatched %d events, heap %d", trial, len(got), len(refOrder))
		}
		for i := range got {
			if got[i] != refOrder[i] {
				t.Fatalf("trial %d: dispatch %d: wheel ran id %d, heap id %d", trial, i, got[i], refOrder[i])
			}
		}
	}
}

// TestWheelSegmentedRuns splits one workload across many short Run calls
// with arbitrary boundaries (including boundaries landing exactly on
// event ticks) and checks the dispatch order still matches the heap.
func TestWheelSegmentedRuns(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 101))
		type seeded struct {
			at Ticks
			id int
		}
		var seeds []seeded
		for i := 0; i < 80; i++ {
			seeds = append(seeds, seeded{at: Ticks(rng.Intn(3000)), id: i + 1})
		}

		e := NewEngine()
		var got []int
		for _, s := range seeds {
			id := s.id
			e.Schedule(s.at, func() { got = append(got, id) })
		}
		ref := &refEngine{}
		for _, s := range seeds {
			ref.schedule(s.at, s.id)
		}
		refOrder := ref.run(1<<20, nil)

		until := Ticks(0)
		for until < 4000 {
			until += Ticks(rng.Intn(500))
			e.Run(until)
		}
		e.Run(1 << 20)

		if len(got) != len(refOrder) {
			t.Fatalf("trial %d: wheel dispatched %d events, heap %d", trial, len(got), len(refOrder))
		}
		for i := range got {
			if got[i] != refOrder[i] {
				t.Fatalf("trial %d: dispatch %d: wheel ran id %d, heap id %d", trial, i, got[i], refOrder[i])
			}
		}
	}
}

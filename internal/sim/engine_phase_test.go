package sim

import (
	"testing"
	"testing/quick"
)

type tickCounter struct {
	ticks []Ticks
}

func (c *tickCounter) Tick(now Ticks) { c.ticks = append(c.ticks, now) }

func TestClockPhaseOffset(t *testing.T) {
	e := NewEngine()
	c := &tickCounter{}
	e.AddClock(10, 3, c) // edges at 3, 13, 23, ...
	e.Run(35)
	want := []Ticks{3, 13, 23, 33}
	if len(c.ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", c.ticks, want)
	}
	for i := range want {
		if c.ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", c.ticks, want)
		}
	}
}

func TestTwoClockDomainRatio(t *testing.T) {
	// The 21364's 3:2 clock ratio: over any LCM window the router clock
	// fires exactly 3 edges per 2 link edges.
	e := NewEngine()
	router := &tickCounter{}
	link := &tickCounter{}
	e.AddClock(RouterPeriod, 0, router)
	e.AddClock(LinkPeriod, 0, link)
	e.Run(30*RouterPeriod - 1)
	if len(router.ticks)*2 != len(link.ticks)*3 {
		t.Fatalf("clock ratio broken: %d router edges vs %d link edges",
			len(router.ticks), len(link.ticks))
	}
}

func TestAttachAddsToLatestDomain(t *testing.T) {
	e := NewEngine()
	a, b := &tickCounter{}, &tickCounter{}
	e.AddClock(10, 0, a)
	e.Attach(b)
	e.Run(20)
	if len(a.ticks) != len(b.ticks) || len(a.ticks) != 3 {
		t.Fatalf("attached component ticked %d vs %d", len(b.ticks), len(a.ticks))
	}
}

// TestEngineEventEdgeInterleavingProperty: for random event times, every
// event fires exactly once, in time order, and never after an edge of the
// same tick.
func TestEngineEventEdgeInterleavingProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		e := NewEngine()
		var fired []Ticks
		for _, r := range raw {
			at := Ticks(r)
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run(300)
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEngineNoWorkReturnsImmediately(t *testing.T) {
	e := NewEngine()
	e.Run(1000) // no events, no clocks: must not spin
	if e.Now() > 1000 {
		t.Fatalf("time overran: %d", e.Now())
	}
}

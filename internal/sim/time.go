// Package sim provides the deterministic simulation kernel used by both the
// standalone and timing performance models: an integer time base that
// represents the 21364's two clock domains exactly, an event scheduler, and
// a seedable random number generator.
//
// The time base is chosen so that both clocks of the Alpha 21364 system are
// integral: 1 tick = 1/12 ns. The 1.2 GHz router clock has a period of
// 10 ticks and the 0.8 GHz interconnect clock a period of 15 ticks. The
// doubled-frequency router of the paper's Figure 11a scaling study
// (2.4 GHz) has a period of 5 ticks.
package sim

import "fmt"

// Ticks is simulated time. One tick is 1/12 ns.
type Ticks int64

// Clock periods for the Alpha 21364 system, in ticks.
const (
	// TicksPerNS is the number of ticks in one nanosecond.
	TicksPerNS Ticks = 12
	// RouterPeriod is the 1.2 GHz router-core clock period (0.8333 ns).
	RouterPeriod Ticks = 10
	// FastRouterPeriod is the 2.4 GHz clock of the Figure 11a scaling study.
	FastRouterPeriod Ticks = 5
	// LinkPeriod is the 0.8 GHz inter-router link clock period (1.25 ns).
	LinkPeriod Ticks = 15
)

// NS converts a tick count to nanoseconds.
func (t Ticks) NS() float64 { return float64(t) / float64(TicksPerNS) }

// FromNS converts nanoseconds to ticks, rounding to the nearest tick.
func FromNS(ns float64) Ticks {
	if ns < 0 {
		return 0
	}
	return Ticks(ns*float64(TicksPerNS) + 0.5)
}

// Cycles returns n periods of the given clock as a tick count.
func Cycles(n int, period Ticks) Ticks { return Ticks(n) * period }

func (t Ticks) String() string { return fmt.Sprintf("%.3fns", t.NS()) }

package sim

import "testing"

// TestEngineDispatchAllocs pins the zero-allocation contract of the
// steady-state dispatch loop: posting events against registered handlers
// and running them must not allocate once the node free list has warmed.
func TestEngineDispatchAllocs(t *testing.T) {
	e := NewEngine()
	fired := 0
	h := e.RegisterHandler(func(args EventArgs) { fired++ })
	// Warm the free list past the test's in-flight high-water mark.
	for i := 0; i < 64; i++ {
		e.Post(Ticks(i), h, EventArgs{})
	}
	e.Run(64)

	at := e.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		at += 7
		e.Post(at, h, EventArgs{A: 1, B: 2})
		e.Run(at)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Post+dispatch allocates %.2f/op, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("handler never fired")
	}
}

// TestEngineSelfReschedulingAllocs covers the poll pattern (a handler
// that re-posts itself): the cancellation poll and protocol-step style
// events must stay allocation-free.
func TestEngineSelfReschedulingAllocs(t *testing.T) {
	e := NewEngine()
	var h HandlerID
	h = e.RegisterHandler(func(args EventArgs) {
		e.PostDelay(5, h, args)
	})
	e.Post(0, h, EventArgs{})
	e.Run(100) // warm

	at := e.Now()
	allocs := testing.AllocsPerRun(500, func() {
		at += 50
		e.Run(at)
	})
	if allocs != 0 {
		t.Fatalf("self-rescheduling dispatch allocates %.2f/op, want 0", allocs)
	}
}

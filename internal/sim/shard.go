package sim

// shard.go is the multi-engine half of the simulator: a ShardGroup runs
// one hub engine plus k member engines in conservative lockstep, the
// classic CMB (Chandy-Misra-Bryant) null-message discipline collapsed to
// its synchronous special case. Each member engine owns the tick wheel
// for one spatial shard of the network (its routers' link-arrival
// events); the hub engine owns everything global — sink deliveries, the
// workload generator's clock domain, the invariant checker's sweeps, the
// cancellation poll.
//
// Why lockstep is safe (the lookahead argument): every cross-engine
// event is produced during a clock edge and lands at least `lookahead`
// ticks in the future (for inter-router links: the post-arbitration
// pipeline depth plus the wire latency; Flush asserts the bound). All
// cross-engine posting happens through a PostBuffer that is flushed by
// the coordinating goroutine between phases, so when the group advances
// to tick t, every wheel already holds every event it will ever receive
// for t — the CMB safety condition "no message in flight earlier than
// min(neighbor horizons) + lookahead" holds trivially, with the barrier
// protocol standing in for per-channel null messages.
//
// Why the results are byte-identical to one monolithic engine: within a
// tick the phases run in the monolithic engine's order (due events, then
// the router clock edge, then the hub's clock domains), and the
// PostBuffer serializes every edge-phase post in sender-node order —
// exactly the order a single engine would have assigned its global
// sequence numbers, so each wheel's (time, seq) dispatch order matches
// the monolithic order restricted to that wheel's events. The events
// that do swap order across wheels (link arrivals on two different
// routers, an arrival vs. a hub delivery) touch disjoint simulation
// state, so no observable byte depends on the swap. The edge phase
// itself is delegated to an EdgeJob that must preserve the serial
// visibility order between coupled routers (internal/network's
// anti-diagonal wavefront does).

// EdgeJob executes one shard's share of a router clock edge. The
// ShardGroup invokes it once per shard per edge — concurrently across
// shards — with the edge's tick and a 1-based edge counter the job can
// use for cross-shard completion flags.
type EdgeJob func(shard int, now Ticks, edge uint64)

// pendingPost is one buffered cross-engine event.
type pendingPost struct {
	target *Engine
	at     Ticks
	h      HandlerID
	args   EventArgs
}

// PostBuffer collects the events produced during a parallel clock edge,
// keyed by the producing source (in the network: the sending router's
// node id), so Flush can replay them in source order — the order a
// monolithic engine would have posted them in. Each source's slice is
// appended to by exactly one worker goroutine, so the buffer needs no
// locking; steady state appends into retained capacity and allocates
// nothing.
type PostBuffer struct {
	perSrc [][]pendingPost
	// open guards against posts outside an edge phase: buffered posts
	// are only flushed right after the edge, so a post from any other
	// phase would be deferred to the wrong point in the tick.
	open bool
}

// NewPostBuffer returns a buffer for the given number of ordered sources.
func NewPostBuffer(sources int) *PostBuffer {
	return &PostBuffer{perSrc: make([][]pendingPost, sources)}
}

// Post buffers an event produced by src for the target engine. It is
// safe to call concurrently for distinct sources.
func (b *PostBuffer) Post(src int, target *Engine, at Ticks, h HandlerID, args EventArgs) {
	if !b.open {
		panic("sim: PostBuffer.Post outside an edge phase")
	}
	b.perSrc[src] = append(b.perSrc[src], pendingPost{target: target, at: at, h: h, args: args})
}

// ---- Engine sub-steps ----
//
// ShardGroup.Run interleaves the phases of several engines within one
// tick, so it needs Engine.Run's body split into its constituent steps.
// Each helper mirrors the corresponding lines of Run exactly.

// moveTo advances the engine's clock and wheel origin to t (never
// backward). The group only calls it with t at or before the engine's
// earliest pending work, which is the wheel's advanceTo precondition.
func (e *Engine) moveTo(t Ticks) {
	if t > e.now {
		e.now = t
	}
	e.q.advanceTo(e.now)
}

// dispatchDue runs every event due at the current tick, including events
// scheduled for this tick by earlier ones, in (time, seq) order. It
// reports false when a handler stopped the engine.
func (e *Engine) dispatchDue() bool {
	for {
		n := e.q.popDue(e.now)
		if n == nil {
			return true
		}
		fn := e.handlers[n.h]
		args := n.args
		e.q.release(n)
		fn(args)
		if e.stopped {
			return false
		}
	}
}

// tickDomains fires every clock domain whose edge falls on the current
// tick, components in registration order.
func (e *Engine) tickDomains() {
	for _, d := range e.domains {
		if e.now >= d.phase && (e.now-d.phase)%d.period == 0 {
			for _, c := range d.components {
				c.Tick(e.now)
			}
		}
	}
}

// endTick sweeps same-tick stragglers into the overdue list and steps
// the clock, exactly like the tail of Run's loop.
func (e *Engine) endTick() {
	e.q.sweepStale(e.now)
	e.now++
}

// nextEventAt returns the earliest pending event time, clamped to now.
func (e *Engine) nextEventAt() (Ticks, bool) {
	t, ok := e.q.nextAt()
	if ok && t < e.now {
		t = e.now
	}
	return t, ok
}

// edgeCmd tells a worker to run its shard's edge job.
type edgeCmd struct {
	now  Ticks
	edge uint64
}

// ShardGroup coordinates one hub engine and k member engines through a
// shared simulated clock. Construct it with NewShardGroup, attach the
// router edge with SetEdge, then Run; Close releases the worker
// goroutines. The group is not safe for concurrent use.
type ShardGroup struct {
	hub     *Engine
	members []*Engine
	pb      *PostBuffer
	// lookahead is the minimum cross-shard event latency; Flush asserts
	// every member-bound post respects it (the CMB safety condition).
	lookahead Ticks

	period, phase Ticks
	job           EdgeJob
	edges         uint64

	cmd     []chan edgeCmd
	done    chan struct{}
	started bool
	closed  bool
}

// NewShardGroup builds a group over a hub engine, the per-shard member
// engines, and the post buffer the shards' producers write into.
func NewShardGroup(hub *Engine, members []*Engine, pb *PostBuffer, lookahead Ticks) *ShardGroup {
	if hub == nil || len(members) == 0 {
		panic("sim: ShardGroup needs a hub and at least one member engine")
	}
	if lookahead <= 0 {
		panic("sim: ShardGroup lookahead must be positive")
	}
	return &ShardGroup{hub: hub, members: members, pb: pb, lookahead: lookahead}
}

// Lookahead returns the group's conservative synchronization window.
func (g *ShardGroup) Lookahead() Ticks { return g.lookahead }

// SetEdge attaches the parallel clock edge: job runs once per member
// shard on every edge of the given period/phase, between the tick's
// event phase and the hub's clock domains — the slot the monolithic
// engine gives the router clock domain.
func (g *ShardGroup) SetEdge(period, phase Ticks, job EdgeJob) {
	if period <= 0 {
		panic("sim: edge period must be positive")
	}
	g.period, g.phase, g.job = period, phase, job
}

// start spins up one worker goroutine per member shard.
func (g *ShardGroup) start() {
	g.started = true
	if len(g.members) == 1 {
		return // single shard: the coordinator runs the edge inline
	}
	g.done = make(chan struct{}, len(g.members))
	g.cmd = make([]chan edgeCmd, len(g.members))
	for i := range g.cmd {
		ch := make(chan edgeCmd, 1)
		g.cmd[i] = ch
		go func(shard int, ch chan edgeCmd) {
			for c := range ch {
				g.job(shard, c.now, c.edge)
				g.done <- struct{}{}
			}
		}(i, ch)
	}
}

// Close releases the worker goroutines. The group cannot Run afterwards.
func (g *ShardGroup) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, ch := range g.cmd {
		close(ch)
	}
}

// nextEdgeAt returns the first edge tick at or after now.
func (g *ShardGroup) nextEdgeAt(now Ticks) Ticks {
	if now <= g.phase {
		return g.phase
	}
	k := (now - g.phase + g.period - 1) / g.period
	return g.phase + k*g.period
}

// nextDispatch returns the earliest tick with pending work anywhere in
// the group: hub events and domains, member events, or a clock edge.
func (g *ShardGroup) nextDispatch() (Ticks, bool) {
	best, found := g.hub.nextDispatch()
	for _, m := range g.members {
		if t, ok := m.nextEventAt(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	if g.job != nil {
		if t := g.nextEdgeAt(g.hub.now); !found || t < best {
			best, found = t, true
		}
	}
	return best, found
}

// runEdge executes one router clock edge across all shards and flushes
// the buffered posts.
func (g *ShardGroup) runEdge(now Ticks) {
	g.edges++
	g.pb.open = true
	if len(g.members) == 1 {
		g.job(0, now, g.edges)
	} else {
		c := edgeCmd{now: now, edge: g.edges}
		for _, ch := range g.cmd {
			ch <- c
		}
		for range g.members {
			<-g.done
		}
	}
	g.pb.open = false
	g.flush(now)
}

// flush replays the edge's buffered posts in source order, assigning
// each target wheel the same relative sequence order a monolithic
// engine's global counter would have, and asserts the lookahead bound
// on every member-bound (cross-shard-capable) post.
func (g *ShardGroup) flush(now Ticks) {
	for src := range g.pb.perSrc {
		posts := g.pb.perSrc[src]
		for i := range posts {
			p := &posts[i]
			if p.target != g.hub && p.at < now+g.lookahead {
				panic("sim: cross-shard post inside the lookahead window")
			}
			p.target.Post(p.at, p.h, p.args)
			p.args = EventArgs{} // drop payload references
		}
		g.pb.perSrc[src] = posts[:0]
	}
}

// Run advances the whole group up to and including tick `until`,
// dispatching each tick's phases in the monolithic engine's order:
// member events, hub events, the parallel router edge, hub clock
// domains. Stopping the hub engine (Engine.Stop) halts the group.
func (g *ShardGroup) Run(until Ticks) {
	if g.closed {
		panic("sim: Run on a closed ShardGroup")
	}
	if !g.started {
		g.start()
	}
	g.hub.stopped = false
	for !g.hub.stopped {
		next, ok := g.nextDispatch()
		if !ok || next > until {
			g.finish(until)
			return
		}
		g.hub.moveTo(next)
		for _, m := range g.members {
			m.moveTo(next)
			if !m.dispatchDue() {
				return
			}
		}
		if !g.hub.dispatchDue() {
			return
		}
		if g.job != nil && next >= g.phase && (next-g.phase)%g.period == 0 {
			g.runEdge(next)
		}
		g.hub.tickDomains()
		if next == until {
			return
		}
		g.hub.endTick()
		for _, m := range g.members {
			m.endTick()
		}
	}
}

// finish advances every engine's clock to until when no work remains
// before it, mirroring Engine.Run's idle fast-forward.
func (g *ShardGroup) finish(until Ticks) {
	g.hub.moveTo(until)
	for _, m := range g.members {
		m.moveTo(until)
	}
}

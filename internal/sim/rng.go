package sim

import "math/bits"

// RNG is a small, fast, deterministic random number generator
// (xoshiro256**), independent of the Go standard library's generator so
// that simulation results are reproducible across Go releases. The zero
// value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed using SplitMix64,
// which guarantees a well-mixed non-zero state for any seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
}

// Split returns a new generator deterministically derived from this one,
// for handing independent streams to sub-components.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// intnThreshold[n] is Intn's rejection threshold -n % n for small n.
var intnThreshold = func() (t [129]uint64) {
	for n := uint64(1); n < uint64(len(t)); n++ {
		t[n] = -n % n
	}
	return
}()

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	bound := uint64(n)
	if bound&(bound-1) == 0 {
		// Powers of two (including the very common n = 1 and n = 2 from
		// arbitration draws) never reject and reduce by masking. The
		// returned value and the number of Uint64 draws are identical to
		// the general path: its threshold is 0 and v % bound == v & (bound-1).
		return int(r.Uint64() & (bound - 1))
	}
	// Lemire's nearly-divisionless method would be overkill here; modulo
	// bias is negligible for the small n used by arbitration policies, but
	// we reject to keep the distribution exact. The rejection threshold
	// for the small bounds arbitration draws use comes from a table, which
	// saves one of the two divisions per draw.
	var threshold uint64
	if bound < uint64(len(intnThreshold)) {
		threshold = intnThreshold[bound]
	} else {
		threshold = -bound % bound
	}
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniform element index among k candidates encoded as a
// bitmask over 64 positions. It panics if mask is zero. The k-th set bit
// is located by clearing k low set bits and taking the trailing-zero
// count, so the cost tracks the popcount rather than the word width.
func (r *RNG) Pick(mask uint64) int {
	n := bits.OnesCount64(mask)
	if n == 0 {
		panic("sim: Pick with empty mask")
	}
	for k := r.Intn(n); k > 0; k-- {
		mask &= mask - 1
	}
	return bits.TrailingZeros64(mask)
}

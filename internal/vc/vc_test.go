package vc

import (
	"testing"
	"testing/quick"

	"alpha21364/internal/packet"
)

func TestChannelCount(t *testing.T) {
	if NumChannels != 19 {
		t.Fatalf("NumChannels = %d, want 19 (the 21364 has 19 VCs)", NumChannels)
	}
}

func TestOfRoundTrip(t *testing.T) {
	seen := make(map[Channel]bool)
	for c := packet.Class(0); c < packet.NumClasses; c++ {
		subs := []Sub{Adaptive, VC0, VC1}
		if c == packet.Special {
			subs = []Sub{Adaptive}
		}
		for _, s := range subs {
			ch := Of(c, s)
			if seen[ch] {
				t.Fatalf("channel %d assigned twice", ch)
			}
			seen[ch] = true
			if ch.Class() != c {
				t.Errorf("Of(%v,%v).Class() = %v", c, s, ch.Class())
			}
			if ch.Sub() != s {
				t.Errorf("Of(%v,%v).Sub() = %v", c, s, ch.Sub())
			}
		}
	}
	if len(seen) != NumChannels {
		t.Fatalf("assigned %d distinct channels, want %d", len(seen), NumChannels)
	}
}

func TestAdaptiveVsDeadlockFree(t *testing.T) {
	if !Of(packet.Request, Adaptive).IsAdaptive() {
		t.Error("adaptive channel not adaptive")
	}
	if Of(packet.Request, VC0).IsAdaptive() || Of(packet.Request, VC1).IsAdaptive() {
		t.Error("deadlock-free channel claims adaptive")
	}
	if !Of(packet.Forward, VC1).IsDeadlockFree() {
		t.Error("VC1 not deadlock-free")
	}
}

func TestSpecialSingleChannel(t *testing.T) {
	ch := Of(packet.Special, Adaptive)
	if ch != NumChannels-1 {
		t.Errorf("special channel = %d, want %d", ch, NumChannels-1)
	}
	defer func() {
		if recover() == nil {
			t.Error("Of(Special, VC0) should panic")
		}
	}()
	Of(packet.Special, VC0)
}

func TestDefaultConfigTotals316(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.Total(); got != 316 {
		t.Fatalf("default buffer total = %d packets, want 316 (paper §2.1)", got)
	}
	// The bulk must be in the adaptive channels.
	adaptive := 0
	for cl := packet.Class(0); cl < packet.Special; cl++ {
		adaptive += cfg.Adaptive[cl]
	}
	if adaptive*10 < cfg.Total()*9 {
		t.Errorf("adaptive share = %d of %d; paper says the bulk is adaptive", adaptive, cfg.Total())
	}
	if cfg.DeadlockPerClass < 1 || cfg.DeadlockPerClass > 2 {
		t.Errorf("deadlock-free buffers = %d, paper says one or two", cfg.DeadlockPerClass)
	}
}

func TestCapacityMatchesTotal(t *testing.T) {
	f := func(a, d, s uint8) bool {
		var cfg Config
		for cl := packet.Class(0); cl < packet.Special; cl++ {
			cfg.Adaptive[cl] = int(a%60) + 1 + int(cl)
		}
		cfg.DeadlockPerClass = int(d%3) + 1
		cfg.SpecialBufs = int(s%8) + 1
		sum := 0
		for ch := Channel(0); ch < NumChannels; ch++ {
			sum += cfg.Capacity(ch)
		}
		return sum == cfg.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCreditsReserveRelease(t *testing.T) {
	cfg := DefaultConfig()
	cr := NewCredits(cfg)
	ch := Of(packet.Request, VC0)
	if !cr.Available(ch) {
		t.Fatal("fresh credits unavailable")
	}
	cr.Reserve(ch)
	if cr.Available(ch) {
		t.Fatal("single deadlock-free buffer should be exhausted after one reserve")
	}
	cr.Release(ch)
	if !cr.Available(ch) {
		t.Fatal("release did not restore credit")
	}
	cr.CheckBounds(cfg)
}

func TestCreditsReservePanicsWhenExhausted(t *testing.T) {
	cr := NewCredits(uniformConfig(1))
	ch := Of(packet.Forward, VC1)
	cr.Reserve(ch)
	defer func() {
		if recover() == nil {
			t.Error("reserve on exhausted channel should panic")
		}
	}()
	cr.Reserve(ch)
}

func TestCheckBoundsCatchesDoubleRelease(t *testing.T) {
	cfg := DefaultConfig()
	cr := NewCredits(cfg)
	ch := Of(packet.Request, Adaptive)
	cr.Release(ch) // double release: one more than capacity
	defer func() {
		if recover() == nil {
			t.Error("CheckBounds should panic on over-capacity credits")
		}
	}()
	cr.CheckBounds(cfg)
}

func TestCreditsConservation(t *testing.T) {
	cfg := DefaultConfig()
	cr := NewCredits(cfg)
	ch := Of(packet.BlockResponse, Adaptive)
	f := func(ops []bool) bool {
		held := 0
		for _, reserve := range ops {
			if reserve && cr.Available(ch) {
				cr.Reserve(ch)
				held++
			} else if !reserve && held > 0 {
				cr.Release(ch)
				held--
			}
		}
		ok := cr.Free(ch) == cfg.Capacity(ch)-held
		for held > 0 {
			cr.Release(ch)
			held--
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// uniformConfig builds a Config with the same adaptive capacity for every
// class, for tests that just need small buffers.
func uniformConfig(n int) Config {
	var cfg Config
	for cl := packet.Class(0); cl < packet.Special; cl++ {
		cfg.Adaptive[cl] = n
	}
	cfg.DeadlockPerClass = 1
	cfg.SpecialBufs = 1
	return cfg
}

package vc

// ring.go provides the fixed-capacity index ring buffer backing the
// router's per-channel packet queues. Queues hold int32 handles into a
// packet-state slab rather than pointers, so the slab can grow (its
// backing arrays reallocate) without invalidating queue contents, and a
// queue scan walks a dense int32 array instead of chasing pointers.
//
// Operations preserve FIFO (arrival) order, including mid-queue removal
// — the 21364 dispatches the oldest eligible packet, which need not be
// the head. Removal shifts whichever side of the ring is shorter.

import "fmt"

// Ring is a fixed-capacity FIFO of int32 handles with ordered indexing
// and order-preserving mid-queue removal. The zero Ring has capacity 0;
// size it with Init.
type Ring struct {
	buf  []int32
	head int
	n    int
}

// Init sets the ring's capacity, dropping any contents.
func (r *Ring) Init(capacity int) {
	if capacity < 0 {
		panic("vc: negative ring capacity")
	}
	r.buf = make([]int32, capacity)
	r.head, r.n = 0, 0
}

// Len returns the number of queued handles.
func (r *Ring) Len() int { return r.n }

// Cap returns the ring's fixed capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Full reports whether the ring is at capacity.
func (r *Ring) Full() bool { return r.n == len(r.buf) }

func (r *Ring) slot(i int) int {
	s := r.head + i
	if s >= len(r.buf) {
		s -= len(r.buf)
	}
	return s
}

// At returns the i-th oldest handle (0 is the front).
func (r *Ring) At(i int) int32 {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("vc: ring index %d out of range (len %d)", i, r.n))
	}
	return r.buf[r.slot(i)]
}

// Push appends a handle at the tail; it panics when full (the router's
// credit accounting must prevent that).
func (r *Ring) Push(v int32) {
	if r.n == len(r.buf) {
		panic("vc: push on full ring — credit accounting broken")
	}
	r.buf[r.slot(r.n)] = v
	r.n++
}

// RemoveAt deletes the i-th oldest handle, preserving order. It shifts
// the shorter side of the ring.
func (r *Ring) RemoveAt(i int) {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("vc: ring remove %d out of range (len %d)", i, r.n))
	}
	if i < r.n-1-i {
		// Shift the front forward over the hole.
		for j := i; j > 0; j-- {
			r.buf[r.slot(j)] = r.buf[r.slot(j-1)]
		}
		r.head = r.slot(1)
	} else {
		// Shift the tail back over the hole.
		for j := i; j < r.n-1; j++ {
			r.buf[r.slot(j)] = r.buf[r.slot(j+1)]
		}
	}
	r.n--
}

// Remove deletes the first occurrence of v, reporting whether it was
// present.
func (r *Ring) Remove(v int32) bool {
	for i := 0; i < r.n; i++ {
		if r.buf[r.slot(i)] == v {
			r.RemoveAt(i)
			return true
		}
	}
	return false
}

// Package vc models the Alpha 21364's virtual channels and the
// packet-granularity buffer accounting of its virtual cut-through router.
//
// The 21364 has 19 virtual channels per port: each of the six non-special
// coherence classes has a group of three channels — one adaptive channel
// and two deadlock-free channels (VC0, VC1) that follow strict
// dimension-order routing — and the special class has a single channel.
// The adaptive channels hold the bulk of the 316 packet buffers per input
// port; VC0/VC1 typically have one or two buffers each (§2.1).
package vc

import (
	"fmt"

	"alpha21364/internal/packet"
)

// Sub distinguishes the three channels inside a class group.
type Sub uint8

const (
	Adaptive Sub = iota
	VC0
	VC1
)

func (s Sub) String() string {
	switch s {
	case Adaptive:
		return "adaptive"
	case VC0:
		return "vc0"
	case VC1:
		return "vc1"
	}
	return fmt.Sprintf("Sub(%d)", uint8(s))
}

// Channel identifies one of the 19 virtual channels.
type Channel uint8

// NumChannels is the total number of virtual channels per port: six
// three-channel class groups plus the single special channel.
const NumChannels = 6*3 + 1

// Of returns the channel for a class and sub-channel. The special class has
// only one channel; its sub argument must be Adaptive.
func Of(c packet.Class, s Sub) Channel {
	if c >= packet.NumClasses {
		panic(fmt.Sprintf("vc: invalid class %d", c))
	}
	if c == packet.Special {
		if s != Adaptive {
			panic("vc: special class has a single channel")
		}
		return NumChannels - 1
	}
	return Channel(uint8(c)*3 + uint8(s))
}

// Class returns the coherence class the channel belongs to.
func (ch Channel) Class() packet.Class {
	if ch >= NumChannels {
		panic(fmt.Sprintf("vc: invalid channel %d", ch))
	}
	if ch == NumChannels-1 {
		return packet.Special
	}
	return packet.Class(ch / 3)
}

// Sub returns which member of its class group the channel is.
func (ch Channel) Sub() Sub {
	if ch >= NumChannels {
		panic(fmt.Sprintf("vc: invalid channel %d", ch))
	}
	if ch == NumChannels-1 {
		return Adaptive
	}
	return Sub(ch % 3)
}

// IsAdaptive reports whether the channel routes adaptively.
func (ch Channel) IsAdaptive() bool { return ch.Sub() == Adaptive }

// IsDeadlockFree reports whether the channel is VC0 or VC1 (strict
// dimension-order routing).
func (ch Channel) IsDeadlockFree() bool { return !ch.IsAdaptive() }

func (ch Channel) String() string {
	return fmt.Sprintf("%v/%v", ch.Class(), ch.Sub())
}

// Config sets the per-input-port buffer capacities, counted in packets as
// in the 21364 (virtual cut-through allocates whole-packet buffers).
//
// The adaptive capacities are per class because packet sizes differ
// enormously (3-flit requests versus 19-flit block responses): the paper's
// "316 packets per input port" is only physically plausible if most of
// those entries hold short packets, so the default gives the short-packet
// classes deep buffers and the cache-block classes shallow ones while
// keeping the total at exactly 316 packets per input port.
type Config struct {
	// Adaptive is the packet capacity of each non-special class's adaptive
	// channel, indexed by packet.Class (the Special entry is ignored; see
	// SpecialBufs).
	Adaptive [packet.NumClasses]int
	// DeadlockPerClass is the packet capacity of each VC0 and each VC1
	// (the paper: "typically one or two buffers").
	DeadlockPerClass int
	// SpecialBufs is the packet capacity of the special channel.
	SpecialBufs int
}

// DefaultConfig reproduces the paper's 316 packets per input port with the
// bulk in the adaptive channels (§2.1): 300 adaptive entries weighted
// toward the 3-flit classes, 12 deadlock-free singles, 4 special.
func DefaultConfig() Config {
	return Config{
		Adaptive: [packet.NumClasses]int{
			packet.Request:          96,
			packet.Forward:          96,
			packet.BlockResponse:    8,
			packet.NonBlockResponse: 80,
			packet.WriteIO:          8,
			packet.ReadIO:           12,
		},
		DeadlockPerClass: 1,
		SpecialBufs:      4,
	}
}

// Capacity returns the packet capacity of a channel.
func (c Config) Capacity(ch Channel) int {
	if ch == NumChannels-1 {
		return c.SpecialBufs
	}
	if ch.IsAdaptive() {
		return c.Adaptive[ch.Class()]
	}
	return c.DeadlockPerClass
}

// Total returns the summed packet capacity of all 19 channels.
func (c Config) Total() int {
	t := 12*c.DeadlockPerClass + c.SpecialBufs
	for cl := packet.Class(0); cl < packet.Special; cl++ {
		t += c.Adaptive[cl]
	}
	return t
}

// Credits tracks free downstream buffer space per channel, in packets. It
// is held by the sender side of a link (an upstream output port or a local
// injection port), mirroring credit-based flow control: a credit is
// consumed when a packet is dispatched toward the buffer and returned when
// the packet later leaves that buffer.
type Credits struct {
	free [NumChannels]int
}

// NewCredits returns a credit tracker initialized to the capacities in cfg.
func NewCredits(cfg Config) *Credits {
	cr := &Credits{}
	for ch := Channel(0); ch < NumChannels; ch++ {
		cr.free[ch] = cfg.Capacity(ch)
	}
	return cr
}

// Available reports whether at least one packet buffer is free on ch.
func (cr *Credits) Available(ch Channel) bool { return cr.free[ch] > 0 }

// Free returns the number of free packet buffers on ch.
func (cr *Credits) Free(ch Channel) int { return cr.free[ch] }

// Reserve consumes one credit on ch; it panics if none are available
// (callers must check Available first — over-reserving would correspond to
// dropping a packet, which the 21364 never does).
func (cr *Credits) Reserve(ch Channel) {
	if cr.free[ch] <= 0 {
		panic(fmt.Sprintf("vc: reserve on exhausted channel %v", ch))
	}
	cr.free[ch]--
}

// Release returns one credit on ch.
func (cr *Credits) Release(ch Channel) { cr.free[ch]++ }

// CheckBounds panics if any channel has more free credits than its
// configured capacity — that would indicate a double release.
func (cr *Credits) CheckBounds(cfg Config) {
	for ch := Channel(0); ch < NumChannels; ch++ {
		if cr.free[ch] > cfg.Capacity(ch) {
			panic(fmt.Sprintf("vc: channel %v has %d free credits, capacity %d",
				ch, cr.free[ch], cfg.Capacity(ch)))
		}
		if cr.free[ch] < 0 {
			panic(fmt.Sprintf("vc: channel %v has negative credits", ch))
		}
	}
}

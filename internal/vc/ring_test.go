package vc

import (
	"math/rand"
	"testing"
)

func ringContents(r *Ring) []int32 {
	out := make([]int32, 0, r.Len())
	for i := 0; i < r.Len(); i++ {
		out = append(out, r.At(i))
	}
	return out
}

func TestRingFIFOOrder(t *testing.T) {
	var r Ring
	r.Init(4)
	for i := int32(1); i <= 4; i++ {
		r.Push(i)
	}
	if !r.Full() {
		t.Fatal("ring should be full")
	}
	r.RemoveAt(0)
	r.Push(5)
	want := []int32{2, 3, 4, 5}
	got := ringContents(&r)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("contents = %v, want %v", got, want)
		}
	}
}

func TestRingMidRemovalPreservesOrder(t *testing.T) {
	var r Ring
	r.Init(8)
	// Wrap the ring first so removal crosses the buffer seam.
	for i := int32(0); i < 6; i++ {
		r.Push(i)
	}
	r.RemoveAt(0)
	r.RemoveAt(0)
	for i := int32(6); i < 10; i++ {
		r.Push(i)
	}
	// Contents: 2 3 4 5 6 7 8 9, physically wrapped.
	r.RemoveAt(3) // drop 5
	want := []int32{2, 3, 4, 6, 7, 8, 9}
	got := ringContents(&r)
	if len(got) != len(want) {
		t.Fatalf("contents = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("contents = %v, want %v", got, want)
		}
	}
}

func TestRingRemoveValue(t *testing.T) {
	var r Ring
	r.Init(4)
	r.Push(10)
	r.Push(20)
	r.Push(30)
	if !r.Remove(20) {
		t.Fatal("Remove(20) = false")
	}
	if r.Remove(99) {
		t.Fatal("Remove(99) = true")
	}
	got := ringContents(&r)
	if len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Fatalf("contents = %v, want [10 30]", got)
	}
}

func TestRingPushFullPanics(t *testing.T) {
	var r Ring
	r.Init(1)
	r.Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("push on full ring did not panic")
		}
	}()
	r.Push(2)
}

// TestRingDifferentialSlice mirrors the ring against a plain slice over
// random push/remove sequences, across wraps.
func TestRingDifferentialSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var r Ring
	r.Init(16)
	var ref []int32
	next := int32(0)
	for step := 0; step < 20000; step++ {
		if r.Len() != len(ref) {
			t.Fatalf("step %d: len %d vs ref %d", step, r.Len(), len(ref))
		}
		if len(ref) < 16 && (len(ref) == 0 || rng.Intn(2) == 0) {
			r.Push(next)
			ref = append(ref, next)
			next++
		} else {
			i := rng.Intn(len(ref))
			r.RemoveAt(i)
			ref = append(ref[:i], ref[i+1:]...)
		}
		for i, v := range ref {
			if r.At(i) != v {
				t.Fatalf("step %d: ring %v, ref %v", step, ringContents(&r), ref)
			}
		}
	}
}

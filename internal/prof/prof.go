// Package prof is the shared pprof plumbing behind the binaries'
// -cpuprofile and -memprofile flags.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpu is non-empty) and returns the
// cleanup func that stops it and writes the heap profile (when mem is
// non-empty). logf receives one line per profile written. Use as:
//
//	stop, err := prof.Start(cpu, mem, logf)
//	if err != nil { ... }
//	defer stop()
func Start(cpu, mem string, logf func(format string, args ...any)) (func(), error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			logf("wrote CPU profile to %s", cpu)
		}
		if mem != "" {
			if err := writeHeap(mem); err != nil {
				logf("memprofile: %v", err)
				return
			}
			logf("wrote heap profile to %s", mem)
		}
	}, nil
}

func writeHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

package prof

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// collectLogf returns a logf that appends each formatted line, so tests
// can assert on the "wrote ..." diagnostics.
func collectLogf(lines *[]string) func(string, ...any) {
	return func(format string, args ...any) {
		*lines = append(*lines, fmt.Sprintf(format, args...))
	}
}

func TestStartNoProfilesIsNoop(t *testing.T) {
	var lines []string
	stop, err := Start("", "", collectLogf(&lines))
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if len(lines) != 0 {
		t.Errorf("no-op profiling logged %v", lines)
	}
}

func TestStartWritesCPUAndHeapProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "heap.pprof")
	var lines []string
	stop, err := Start(cpu, mem, collectLogf(&lines))
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile has something to sample.
	sum := 0
	for i := 0; i < 1_000_000; i++ {
		sum += i * i
	}
	_ = sum
	stop()

	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	if len(lines) != 2 {
		t.Errorf("want 2 log lines (CPU + heap), got %v", lines)
	}
}

func TestStartHeapOnly(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "heap.pprof")
	var lines []string
	stop, err := Start("", mem, collectLogf(&lines))
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if st, err := os.Stat(mem); err != nil || st.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
	if len(lines) != 1 {
		t.Errorf("want 1 log line, got %v", lines)
	}
}

func TestStartUncreatableCPUFileFails(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "cpu.pprof")
	if _, err := Start(bad, "", func(string, ...any) {}); err == nil {
		t.Fatal("uncreatable CPU profile path did not fail")
	}
}

func TestStopReportsUnwritableHeapPath(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "heap.pprof")
	var lines []string
	stop, err := Start("", bad, func(format string, args ...any) {
		lines = append(lines, format)
	})
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if len(lines) != 1 || !strings.Contains(lines[0], "memprofile") {
		t.Errorf("unwritable heap path not reported: %v", lines)
	}
}

// Package cache is the content-addressed result store behind the sweep
// coordinator: a filesystem directory keyed by canonical Spec hash,
// holding one file per completed grid cell (series × point). The layout
// gives the coordinator per-point granularity — a killed sweep persists
// exactly its whole completed points, and a restart re-plans only the
// missing ones — and the content addressing makes a repeated run of the
// same semantic Spec a pure read.
//
// The store knows nothing about Specs or Results: keys are opaque
// lowercase-hex content hashes, cells are (series, point) coordinates,
// and values are byte blobs (in practice one ResultPoint JSON each).
// Writes are atomic (temp file + rename in the same directory), so a
// reader never observes a torn cell and concurrent writers of the same
// cell settle on one complete value.
//
// Layout:
//
//	<dir>/<key>/spec.json        optional metadata (the canonical spec)
//	<dir>/<key>/s00003-p00007    cell series 3, point 7
package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// Cell addresses one grid cell of a cached run: the series index and the
// point index within that series, both in the owning spec's expansion
// order.
type Cell struct {
	Series int
	Point  int
}

// name renders the cell's filename. Fixed-width decimal keeps directory
// listings (and therefore Cells) in deterministic series-major order and
// supports grids up to 100k series × 100k points.
func (c Cell) name() string {
	return fmt.Sprintf("s%05d-p%05d", c.Series, c.Point)
}

// parseCellName inverts Cell.name.
func parseCellName(name string) (Cell, bool) {
	if len(name) != 13 || name[0] != 's' || name[6] != '-' || name[7] != 'p' {
		return Cell{}, false
	}
	series, err1 := strconv.Atoi(name[1:6])
	point, err2 := strconv.Atoi(name[8:13])
	if err1 != nil || err2 != nil {
		return Cell{}, false
	}
	c := Cell{Series: series, Point: point}
	if c.name() != name {
		return Cell{}, false
	}
	return c, true
}

// specFile is the per-key metadata filename (see Store.PutSpec).
const specFile = "spec.json"

// Store is a content-addressed cell store rooted at one directory. The
// zero value is unusable; construct with Open. A Store is safe for
// concurrent use by multiple goroutines and processes.
type Store struct {
	dir string
}

// Open returns a Store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// checkKey rejects keys that are not plain lowercase-hex content hashes,
// closing the door on path traversal through a crafted key.
func checkKey(key string) error {
	if len(key) < 8 {
		return fmt.Errorf("cache: key %q too short to be a content hash", key)
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return fmt.Errorf("cache: key %q is not lowercase hex", key)
		}
	}
	return nil
}

func (s *Store) keyDir(key string) (string, error) {
	if err := checkKey(key); err != nil {
		return "", err
	}
	return filepath.Join(s.dir, key), nil
}

// writeAtomic writes data to path via a temp file in the same directory
// and a rename, so concurrent readers see either nothing or the whole
// value, never a prefix.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Chmod(name, 0o644); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// Put stores one cell's value under key, atomically. An existing value
// for the same cell is replaced whole.
func (s *Store) Put(key string, c Cell, data []byte) error {
	dir, err := s.keyDir(key)
	if err != nil {
		return err
	}
	if c.Series < 0 || c.Point < 0 {
		return fmt.Errorf("cache: negative cell %+v", c)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := writeAtomic(filepath.Join(dir, c.name()), data); err != nil {
		return fmt.Errorf("cache: put %s/%s: %w", key, c.name(), err)
	}
	return nil
}

// Get loads one cell's value. The second return value reports whether
// the cell is present; absence is not an error.
func (s *Store) Get(key string, c Cell) ([]byte, bool, error) {
	dir, err := s.keyDir(key)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(filepath.Join(dir, c.name()))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("cache: get %s/%s: %w", key, c.name(), err)
	}
	return data, true, nil
}

// Cells lists the cells present under key, in series-major order. A key
// with no entries yields an empty slice, not an error.
func (s *Store) Cells(key string) ([]Cell, error) {
	dir, err := s.keyDir(key)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cache: list %s: %w", key, err)
	}
	var cells []Cell
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if c, ok := parseCellName(e.Name()); ok {
			cells = append(cells, c)
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Series != cells[j].Series {
			return cells[i].Series < cells[j].Series
		}
		return cells[i].Point < cells[j].Point
	})
	return cells, nil
}

// PutSpec stores the key's metadata document (conventionally the
// canonical spec that hashes to the key), atomically. It is written for
// human inspection and debugging; nothing reads it back on the hot path.
func (s *Store) PutSpec(key string, data []byte) error {
	dir, err := s.keyDir(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := writeAtomic(filepath.Join(dir, specFile), data); err != nil {
		return fmt.Errorf("cache: put %s/%s: %w", key, specFile, err)
	}
	return nil
}

// Spec loads the key's metadata document; ok reports presence.
func (s *Store) Spec(key string) ([]byte, bool, error) {
	dir, err := s.keyDir(key)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(filepath.Join(dir, specFile))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("cache: %w", err)
	}
	return data, true, nil
}

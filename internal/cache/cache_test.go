package cache

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

const key = "0123456789abcdef0123456789abcdef"

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := Cell{Series: 3, Point: 7}
	if _, ok, err := s.Get(key, c); err != nil || ok {
		t.Fatalf("empty store Get = ok %v, err %v; want a clean miss", ok, err)
	}
	want := []byte(`{"rate":0.02}`)
	if err := s.Put(key, c, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key, c)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok %v, err %v", ok, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, want %q", got, want)
	}
	// Overwrite replaces the value whole.
	want2 := []byte(`{"rate":0.04}`)
	if err := s.Put(key, c, want2); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := s.Get(key, c); !bytes.Equal(got, want2) {
		t.Fatalf("Get after overwrite = %q, want %q", got, want2)
	}
}

func TestCellsSortedAndFiltered(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if cells, err := s.Cells(key); err != nil || len(cells) != 0 {
		t.Fatalf("Cells on absent key = %v, %v; want empty, nil", cells, err)
	}
	put := []Cell{{1, 2}, {0, 5}, {1, 0}, {0, 0}}
	for _, c := range put {
		if err := s.Put(key, c, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Foreign files in the key directory are ignored, including the spec
	// metadata and any leftover temp file.
	if err := s.PutSpec(key, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), key, ".tmp-leftover"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	cells, err := s.Cells(key)
	if err != nil {
		t.Fatal(err)
	}
	want := []Cell{{0, 0}, {0, 5}, {1, 0}, {1, 2}}
	if len(cells) != len(want) {
		t.Fatalf("Cells = %v, want %v", cells, want)
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Fatalf("Cells[%d] = %v, want %v", i, cells[i], want[i])
		}
	}
}

func TestSpecMetadata(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Spec(key); err != nil || ok {
		t.Fatalf("Spec on absent key = ok %v, err %v", ok, err)
	}
	if err := s.PutSpec(key, []byte(`{"version":1}`)); err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.Spec(key)
	if err != nil || !ok || string(data) != `{"version":1}` {
		t.Fatalf("Spec = %q, ok %v, err %v", data, ok, err)
	}
}

func TestKeyValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", "../../../etc/passwd", "0123456789ABCDEF", "0123456789abcdeg"} {
		if err := s.Put(bad, Cell{}, []byte("x")); err == nil {
			t.Errorf("Put with key %q succeeded; want rejection", bad)
		}
		if _, _, err := s.Get(bad, Cell{}); err == nil {
			t.Errorf("Get with key %q succeeded; want rejection", bad)
		}
		if _, err := s.Cells(bad); err == nil {
			t.Errorf("Cells with key %q succeeded; want rejection", bad)
		}
	}
	if err := s.Put(key, Cell{Series: -1}, []byte("x")); err == nil {
		t.Error("Put with a negative cell succeeded; want rejection")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded; want error")
	}
}

// TestAtomicWriteLeavesNoTemp checks the rename discipline: after a Put,
// the key directory holds the cell file and nothing else.
func TestAtomicWriteLeavesNoTemp(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, Cell{1, 1}, []byte("v")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(s.Dir(), key))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("key dir has %d entries, want 1", len(entries))
	}
}

// TestConcurrentPutSameCell hammers one cell from many goroutines; the
// atomic rename must leave one complete value, never a torn mix.
func TestConcurrentPutSameCell(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := Cell{0, 0}
	values := [][]byte{
		bytes.Repeat([]byte("a"), 4096),
		bytes.Repeat([]byte("b"), 4096),
		bytes.Repeat([]byte("c"), 4096),
	}
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		v := values[i%len(values)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put(key, c, v); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	got, ok, err := s.Get(key, c)
	if err != nil || !ok {
		t.Fatalf("Get = ok %v, err %v", ok, err)
	}
	whole := false
	for _, v := range values {
		if bytes.Equal(got, v) {
			whole = true
		}
	}
	if !whole {
		t.Fatalf("Get returned a torn value (len %d, first byte %q)", len(got), got[:1])
	}
}

package experiment

// hash_test.go pins the cache-key contract three ways: the hash ignores
// JSON field order (content addressing, not byte addressing), ignores
// execution knobs (Name/Check/RecordTo, and nothing else), and matches a
// golden value for every canned figure Spec — so accidental cache-key
// drift (a renamed field, a new always-emitted field, a changed figure
// definition) fails CI instead of silently orphaning existing caches.

import (
	"strings"
	"testing"
)

func mustHash(t *testing.T, sp Spec) string {
	t.Helper()
	h, err := SpecHash(sp)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func hashTestSpec() Spec {
	return NewSpec(
		WithName("hash probe"),
		WithTopology(4, 4),
		WithArbiters("SPAA-rotary", "PIM1"),
		WithPatterns("random", "tornado"),
		WithProcesses("bernoulli"),
		WithRates(0.02, 0.05),
		WithCycles(900),
		WithSeed(11),
	)
}

// TestSpecHashFieldOrderIndependent parses the same document with its
// top-level and nested fields in two different orders; the hashes must
// agree, because the hash addresses the canonical form, not the input
// bytes.
func TestSpecHashFieldOrderIndependent(t *testing.T) {
	a := `{
  "version": 1,
  "arbiters": ["SPAA-rotary"],
  "topology": {"width": 4, "height": 4},
  "workload": {"patterns": ["random"], "rates": [0.02]},
  "timing": {"cycles": 500, "seed": 3}
}`
	b := `{
  "timing": {"seed": 3, "cycles": 500},
  "workload": {"rates": [0.02], "patterns": ["random"]},
  "topology": {"height": 4, "width": 4},
  "arbiters": ["SPAA-rotary"],
  "version": 1
}`
	sa, err := ParseSpec([]byte(a))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ParseSpec([]byte(b))
	if err != nil {
		t.Fatal(err)
	}
	if ha, hb := mustHash(t, sa), mustHash(t, sb); ha != hb {
		t.Fatalf("field order changed the hash: %s != %s", ha, hb)
	}
}

// TestSpecHashIgnoresExecutionKnobs flips each excluded knob and checks
// invariance — and flips semantic fields to check they DO change the
// hash, so the exclusion list cannot quietly grow.
func TestSpecHashIgnoresExecutionKnobs(t *testing.T) {
	base := mustHash(t, hashTestSpec())

	invariant := map[string]func(*Spec){
		"name":    func(s *Spec) { s.Name = "completely different title" },
		"check":   func(s *Spec) { s.Check = true },
		"no name": func(s *Spec) { s.Name = "" },
	}
	for what, mutate := range invariant {
		sp := hashTestSpec()
		mutate(&sp)
		if h := mustHash(t, sp); h != base {
			t.Errorf("%s changed the hash: %s != %s (execution knobs must not key the cache)", what, h, base)
		}
	}

	semantic := map[string]func(*Spec){
		"seed":         func(s *Spec) { s.Timing.Seed = 12 },
		"cycles":       func(s *Spec) { s.Timing.Cycles = 901 },
		"rates":        func(s *Spec) { s.Workload.Rates = []float64{0.02, 0.051} },
		"arbiters":     func(s *Spec) { s.Arbiters = []string{"SPAA-rotary", "WFA-base"} },
		"patterns":     func(s *Spec) { s.Workload.Patterns = []string{"random"} },
		"topology":     func(s *Spec) { s.Topology.Width = 8 },
		"replications": func(s *Spec) { s.Replications = 3 },
		"warmup":       func(s *Spec) { s.Timing.WarmupFraction = NoWarmup },
		"outstanding":  func(s *Spec) { s.Workload.MaxOutstanding = 64 },
	}
	for what, mutate := range semantic {
		sp := hashTestSpec()
		mutate(&sp)
		if h := mustHash(t, sp); h == base {
			t.Errorf("changing %s did NOT change the hash (a semantic field is excluded from the key)", what)
		}
	}
}

// TestSpecHashRecordToExcluded checks the one workload-level knob: a
// record_to path is a side-effect destination, not an input.
func TestSpecHashRecordToExcluded(t *testing.T) {
	sp := NewSpec(
		WithName("record probe"),
		WithTopology(4, 4),
		WithArbiters("PIM1"),
		WithPatterns("random"),
		WithRates(0.02),
		WithCycles(500),
		WithSeed(2),
	)
	base := mustHash(t, sp)
	rec := sp
	w := *sp.Workload
	w.RecordTo = "/tmp/trace.bin"
	rec.Workload = &w
	if h := mustHash(t, rec); h != base {
		t.Fatalf("record_to changed the hash: %s != %s", h, base)
	}
	// replay_from, by contrast, IS semantic (it replaces the whole
	// injection stream) — but replay specs never reach the cache; the
	// coordinator refuses to cache them (see specCacheable).
}

func TestSpecHashRejectsInvalidSpec(t *testing.T) {
	if _, err := SpecHash(Spec{}); err == nil {
		t.Fatal("SpecHash accepted the zero Spec")
	}
}

// goldenFigureHashes pins the cache key of every canned figure Spec
// (Options zero value: full fidelity, seed 1). A mismatch means the
// canonical semantic form drifted and every existing cache would be
// orphaned — if the change is intentional (schema evolution, new figure
// definition), update the golden and say so in the PR.
var goldenFigureHashes = map[string][]string{
	"8": {"b620f22bb25a0633131a55c3be0efefbc96c6cdf35d60b7e2ce0a3ce1de549f7"},
	"9": {"3120544288ddbbb2d553c61527a9aaebce3f0186e8d46b745f5a38232c1a4050"},
	"10": {
		"41156d30e7f13fb2d559c16503c56a76b987629d78f411c15d270ee8436e3a0b",
		"bac6399d476aabd7072df7288c88af79cf2d8611b218407d59942a728f614254",
		"1810865a5510b3cd8246e05192ccfba366c368876780c8d0d0cc3bf3f08c585f",
		"df568e6b51f6973f946c687734b8242aa37c987ad8bfaaa2b12709428933e15f",
	},
	"10s": {"bfc59dee60fd29c158220e4241926741e7a792193b9dcc0b03b4b428e20c87a3"},
	"11a": {"b94c26216eb94d262a5a57c97314ba23a71a954ed7992d99e90b5e5ac2a07d74"},
	"11b": {"e433f19baef050a0b2059d4dfc1009458746b7b5b42ca686e9ca492844f4fba4"},
	"11c": {"ce26d3225cd42c63c1927815001d70acf2b9c7cd877b59099ca966eeaf63c5d4"},
}

func TestSpecHashGoldenFigures(t *testing.T) {
	for _, name := range FigureSpecNames() {
		specs, err := FigureSpecs(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, ok := goldenFigureHashes[name]
		if !ok {
			t.Errorf("figure %s has no golden hash; add it", name)
			continue
		}
		if len(specs) != len(want) {
			t.Errorf("figure %s has %d specs, golden has %d", name, len(specs), len(want))
			continue
		}
		for i, sp := range specs {
			if h := mustHash(t, sp); h != want[i] {
				t.Errorf("figure %s panel %d (%s): hash drifted\n  got  %s\n  want %s\n"+
					"existing caches would be orphaned; update the golden only if the drift is intentional",
					name, i, sp.Name, h, want[i])
			}
		}
	}
	for name := range goldenFigureHashes {
		if !strings.Contains(strings.Join(FigureSpecNames(), ","), name) {
			t.Errorf("golden hash for unknown figure %q", name)
		}
	}
}

package experiment

// metrics.go surfaces the telemetry layer at the experiment level: the
// canonical StripVolatile normalization (cmd/sweep -stable, the CI
// cached-matrix smoke) and the metrics sidecar document cmd/sweep
// -metrics writes next to each run's results.

import (
	"encoding/json"
	"fmt"
	"os"

	"alpha21364/internal/obs"
)

// StripVolatile zeroes the fields excluded from the determinism
// guarantees — currently only ElapsedNS, the run's wall-clock duration —
// so two runs of the same Spec compare byte-identical. It is the
// canonical normalization for warm-cache rerun comparisons; use it
// instead of stripping JSON by hand.
func StripVolatile(r *Result) {
	if r != nil {
		r.ElapsedNS = 0
	}
}

// MetricsSidecarVersion is the sidecar schema version.
const MetricsSidecarVersion = 1

// MetricsSidecar is the standalone telemetry document `sweep -metrics`
// writes alongside a run's results: every point's obs.Snapshot keyed by
// its series and axis position, without duplicating the measurements.
type MetricsSidecar struct {
	Version int `json:"version"`
	// Name is the producing spec's name.
	Name   string         `json:"name,omitempty"`
	Points []MetricsPoint `json:"points"`
}

// MetricsPoint locates one snapshot in its Result.
type MetricsPoint struct {
	// Series is the point's series label.
	Series string `json:"series"`
	// Rate is the timing-mode load axis; Axis the standalone axis.
	Rate    float64       `json:"rate,omitempty"`
	Axis    float64       `json:"axis,omitempty"`
	Metrics *obs.Snapshot `json:"metrics"`
}

// MetricsSidecarOf collects the result's snapshots into a sidecar
// document, or nil when no point carries telemetry.
func MetricsSidecarOf(r *Result) *MetricsSidecar {
	var sc *MetricsSidecar
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.Metrics == nil {
				continue
			}
			if sc == nil {
				sc = &MetricsSidecar{Version: MetricsSidecarVersion, Name: r.Spec.Name}
			}
			sc.Points = append(sc.Points, MetricsPoint{
				Series: s.Label, Rate: p.Rate, Axis: p.Axis, Metrics: p.Metrics,
			})
		}
	}
	return sc
}

// WriteFile saves the sidecar as one indented JSON document.
func (sc *MetricsSidecar) WriteFile(path string) error {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return fmt.Errorf("experiment: encode metrics sidecar: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadMetricsSidecarFile loads a sidecar written by WriteFile, with the
// same strictness as the result readers.
func ReadMetricsSidecarFile(path string) (*MetricsSidecar, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sc MetricsSidecar
	dec := strictDecoder(data)
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%s: trailing data after the sidecar document", path)
	}
	if sc.Version != MetricsSidecarVersion {
		return nil, fmt.Errorf("%s: unsupported metrics sidecar version %d (this build reads version %d)",
			path, sc.Version, MetricsSidecarVersion)
	}
	return &sc, nil
}

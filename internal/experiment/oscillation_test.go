package experiment

import (
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/traffic"
)

// TestSaturationOscillation reproduces the paper's §3.4 observation that a
// saturated network "produces a cyclic pattern of network link utilization
// with extremely high levels of uniform random input traffic": beyond
// saturation the delivered throughput oscillates as backpressure waves
// throttle and release the injectors, while below saturation delivery is
// steady.
func TestSaturationOscillation(t *testing.T) {
	run := func(rate float64, outstanding int) float64 {
		res, err := RunTiming(TimingSetup{
			Width: 8, Height: 8, Kind: core.KindSPAABase, Pattern: traffic.Uniform,
			Rate: rate, MaxOutstanding: outstanding,
			Cycles: 15000, Seed: 1, EpochCycles: 1500,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputCoV
	}
	light := run(0.01, 16)
	saturated := run(0.09, 64)
	if light > 0.3 {
		t.Errorf("light-load delivery oscillates too much: CoV = %.3f", light)
	}
	if saturated < 1.8*light || saturated < 0.3 {
		t.Errorf("saturated CoV %.3f vs light %.3f: expected strong oscillation", saturated, light)
	}
}

package experiment

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"alpha21364/internal/core"
)

// quickOpts keeps the acceptance runs fast: short simulations, two rate
// points per sweep.
func quickOpts() Options {
	return Options{Quick: true, Seed: 1, CyclesOverride: 1500, MaxRatePoints: 2}
}

// TestSpecReproducesFigure10s is the acceptance check of the Spec path:
// the canned Spec, serialized exactly as `cmd/sweep -emit-spec` writes
// it, re-loaded exactly as `-spec` loads it, and run through the new
// Runner, reproduces the old figure-function output byte for byte.
func TestSpecReproducesFigure10s(t *testing.T) {
	o := quickOpts()
	old, err := Figure10Saturation(o)
	if err != nil {
		t.Fatal(err)
	}

	specs, err := FigureSpecs("10s", o)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSpecs(specs) // what -emit-spec prints
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := ParseSpecs(data) // what -spec loads
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded) != 1 {
		t.Fatalf("reloaded %d specs, want 1", len(reloaded))
	}
	res, err := NewRunner(WithWorkers(4)).Run(context.Background(), reloaded[0])
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Panel().Table().CSV(), old.Table().CSV(); got != want {
		t.Errorf("spec-run output differs from the figure function:\n--- spec ---\n%s\n--- figure ---\n%s", got, want)
	}
}

// TestSpecReproducesFigure8 is the standalone-mode half of the same
// acceptance check.
func TestSpecReproducesFigure8(t *testing.T) {
	o := Options{Quick: true, Seed: 1}
	old, err := Figure8(o)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := FigureSpecs("8", o)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := ParseSpecs(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewRunner(WithWorkers(4)).Run(context.Background(), reloaded[0])
	if err != nil {
		t.Fatal(err)
	}
	got := Figure8Result{
		LoadFractions:  reloaded[0].Standalone.Values,
		SaturationLoad: res.SaturationLoad,
		Curves:         res.Curves(),
	}
	if got.Table().CSV() != old.Table().CSV() {
		t.Errorf("spec-run figure 8 differs from the figure function")
	}
}

// TestRunnerSerialParallelIdentical: a Result is byte-identical whatever
// the worker count (ElapsedNS excepted).
func TestRunnerSerialParallelIdentical(t *testing.T) {
	sp := NewSpec(
		WithName("det"),
		WithTopology(4, 4),
		WithArbiters("SPAA-base", "PIM1"),
		WithRates(0.01, 0.02),
		WithCycles(800),
		WithSeed(1),
	)
	serial, err := NewRunner(WithWorkers(1)).Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(WithWorkers(8)).Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	serial.ElapsedNS, parallel.ElapsedNS = 0, 0
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel result differs from serial:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}

// TestRunnerStreamEvents checks the event protocol: run-start first,
// every point and series reported with monotone done counts, run-done
// last carrying the Result.
func TestRunnerStreamEvents(t *testing.T) {
	sp := quickStandaloneSpec() // 2 arbiters x 3 values
	var events []Event
	for e := range NewRunner(WithWorkers(1)).Stream(context.Background(), sp) {
		events = append(events, e)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if events[0].Type != EventRunStart || events[0].Total != 6 {
		t.Fatalf("first event = %+v, want run-start with total 6", events[0])
	}
	last := events[len(events)-1]
	if last.Type != EventRunDone || last.Result == nil || last.Err != nil {
		t.Fatalf("last event = %+v, want clean run-done with a result", last)
	}
	points, series := 0, 0
	prevDone := 0
	for _, e := range events[1 : len(events)-1] {
		switch e.Type {
		case EventPointDone:
			points++
			if e.Done != prevDone+1 {
				t.Errorf("point-done jumped from %d to %d", prevDone, e.Done)
			}
			prevDone = e.Done
			if e.Point == nil || e.Series == "" {
				t.Errorf("point-done without point or series: %+v", e)
			}
		case EventSeriesDone:
			series++
		default:
			t.Errorf("unexpected mid-stream event %+v", e)
		}
	}
	if points != 6 || series != 2 {
		t.Errorf("saw %d point-done and %d series-done events, want 6 and 2", points, series)
	}
	if last.Result.Partial {
		t.Error("complete run marked partial")
	}
}

// TestRunnerInvalidSpec: expansion failures surface as errors, not
// panics, from both Run and Stream.
func TestRunnerInvalidSpec(t *testing.T) {
	bad := Spec{Version: SpecVersion}
	if _, err := NewRunner().Run(context.Background(), bad); err == nil {
		t.Error("Run accepted an invalid spec")
	}
	var last Event
	for e := range NewRunner().Stream(context.Background(), bad) {
		last = e
	}
	if last.Type != EventRunDone || last.Err == nil {
		t.Errorf("Stream of an invalid spec ended with %+v, want run-done with error", last)
	}
}

// TestRunnerCancelBetweenJobs: cancelling after the first finished point
// stops dispatch and returns a partial, well-formed Result.
func TestRunnerCancelBetweenJobs(t *testing.T) {
	sp := NewSpec(
		WithName("cancel"),
		WithTopology(4, 4),
		WithArbiters("SPAA-base"),
		WithRates(0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04, 0.045, 0.05),
		WithCycles(3000),
		WithSeed(1),
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRunner(WithWorkers(2), WithEventSink(func(e Event) {
		if e.Type == EventPointDone {
			cancel()
		}
	}))

	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := r.Run(ctx, sp)
		ch <- outcome{res, err}
	}()
	var out outcome
	select {
	case out = <-ch:
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled run did not return promptly")
	}
	if !errors.Is(out.err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", out.err)
	}
	res := out.res
	if res == nil {
		t.Fatal("cancelled run returned no result")
	}
	if !res.Partial {
		t.Error("cancelled result not marked partial")
	}
	if len(res.Series) != 1 {
		t.Fatalf("partial result lost its series shape: %+v", res.Series)
	}
	s := res.Series[0]
	if s.Label != "SPAA-base" || s.Arbiter != "SPAA-base" {
		t.Errorf("partial series identity = %+v", s)
	}
	// The first point-done triggered the cancel, so the sweep cannot have
	// finished; zero kept points is legitimate (the cancelled lower-index
	// job voids the finished higher-index one under the prefix rule).
	if len(s.Points) >= 10 {
		t.Errorf("partial run kept %d of 10 points", len(s.Points))
	}
	// The kept points are the contiguous prefix in rate order.
	for i, p := range s.Points {
		if p.Rate != sp.Workload.Rates[i] {
			t.Errorf("point %d has rate %g, want %g", i, p.Rate, sp.Workload.Rates[i])
		}
	}
}

// TestRunnerCancelInsideSimulation: cancellation interrupts a single
// long simulation mid-run (the in-engine poll), not just between jobs.
func TestRunnerCancelInsideSimulation(t *testing.T) {
	sp := NewSpec(
		WithName("long"),
		WithTopology(4, 4),
		WithArbiters("SPAA-base"),
		WithRates(0.01),
		WithCycles(30_000_000), // far longer than the test will wait
		WithSeed(1),
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := NewRunner(WithWorkers(1)).Run(ctx, sp)
		ch <- outcome{res, err}
	}()
	var out outcome
	select {
	case out = <-ch:
	case <-time.After(60 * time.Second):
		t.Fatal("in-simulation cancel did not interrupt the run")
	}
	if !errors.Is(out.err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", out.err)
	}
	if out.res == nil || !out.res.Partial || len(out.res.Series[0].Points) != 0 {
		t.Errorf("expected an empty partial result, got %+v", out.res)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

// TestRunTimingCtxMatchesRunTiming: an uncancelled supervised run is
// byte-identical to an unsupervised one (the poll events are inert).
func TestRunTimingCtxMatchesRunTiming(t *testing.T) {
	s := TimingSetup{
		Width: 4, Height: 4, Kind: core.KindSPAARotary, Rate: 0.02, Cycles: 2000, Seed: 7,
	}
	plain, err := RunTiming(s)
	if err != nil {
		t.Fatal(err)
	}
	supervised, err := RunTimingCtx(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, supervised) {
		t.Errorf("ctx-supervised run diverged:\nplain      %+v\nsupervised %+v", plain, supervised)
	}
}

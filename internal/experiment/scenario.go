package experiment

// scenario.go is the scenario-matrix runner: the cross product of
// algorithms × destination patterns × arrival processes × injection
// rates, fanned through the same parallel job pool as the figure sweeps.
// Every job's setup is fixed before dispatch, so — like the figures — a
// parallel matrix is byte-identical to a serial one.

import (
	"context"
	"fmt"

	"alpha21364/internal/core"
	"alpha21364/internal/traffic"
)

// Scenario names one cell of a scenario matrix.
type Scenario struct {
	Kind    core.Kind
	Pattern traffic.Pattern
	Process string
	Rate    float64
}

func (s Scenario) String() string {
	return fmt.Sprintf("%v/%v/%s @ %g", s.Kind, s.Pattern, s.Process, s.Rate)
}

// ScenarioResult pairs a scenario with its timing result.
type ScenarioResult struct {
	Scenario
	TimingResult
}

// MatrixSpec lifts the typed matrix axes into a declarative Spec — the
// cross product becomes Spec expansion, executed by a Runner.
func MatrixSpec(base TimingSetup, kinds []core.Kind,
	patterns []traffic.Pattern, processes []string, rates []float64) Spec {
	sp := specFromSetup("matrix", base, kinds, rates)
	names := make([]string, len(patterns))
	for i, p := range patterns {
		names[i] = p.String()
	}
	sp.Workload.Patterns = names
	sp.Workload.Processes = append([]string(nil), processes...)
	return sp
}

// ScenarioMatrix runs every combination of the given algorithms,
// destination patterns, arrival processes, and injection rates on the
// base setup (which supplies torus size, cycle count, seed, and the
// outstanding cap). Results are returned in matrix order — kinds
// outermost, then patterns, processes, and rates — regardless of worker
// scheduling. On failure the returned slice holds the results of every
// scenario before the first failed one.
//
// Deprecated: build the matrix as a Spec (MatrixSpec or NewSpec with
// multi-valued WithPatterns/WithProcesses) and execute it with a Runner;
// this adapter remains for compatibility.
func ScenarioMatrix(o Options, base TimingSetup, kinds []core.Kind,
	patterns []traffic.Pattern, processes []string, rates []float64) ([]ScenarioResult, error) {
	if len(processes) == 0 {
		processes = []string{"bernoulli"}
	}
	if len(kinds) == 0 || len(patterns) == 0 || len(rates) == 0 {
		return nil, nil
	}
	res, err := optionsRunner(o).Run(context.Background(),
		MatrixSpec(base, kinds, patterns, processes, rates))
	if res == nil {
		return nil, err
	}
	// Series arrive in matrix order (kinds, then patterns, then
	// processes) with rates as points; flattening them reproduces the old
	// scenario order, and the contiguous-prefix partial contract means a
	// failed run truncates exactly at the first bad scenario.
	var results []ScenarioResult
	for si, s := range res.Series {
		ki := si / (len(patterns) * len(processes))
		pi := si / len(processes) % len(patterns)
		pri := si % len(processes)
		for ri, pt := range s.Points {
			results = append(results, ScenarioResult{
				Scenario: Scenario{
					Kind:    kinds[ki],
					Pattern: patterns[pi],
					Process: processes[pri],
					Rate:    rates[ri],
				},
				TimingResult: pt.TimingResult(),
			})
		}
	}
	return results, err
}

// ScenarioTable formats matrix results as one row per scenario.
func ScenarioTable(results []ScenarioResult) Table {
	tb := Table{
		Title: "Scenario matrix",
		Columns: []string{
			"algorithm", "pattern", "process", "rate",
			"tput(flits/router/ns)", "latency(ns)", "p99(ns)", "packets",
		},
	}
	for _, r := range results {
		tb.Rows = append(tb.Rows, []string{
			r.Kind.String(),
			r.Pattern.String(),
			r.Process,
			fmt.Sprintf("%g", r.Rate),
			fmt.Sprintf("%.4f", r.Throughput),
			fmt.Sprintf("%.1f", r.AvgLatencyNS),
			fmt.Sprintf("%.1f", r.LatencyP99NS),
			fmt.Sprintf("%d", r.Packets),
		})
	}
	return tb
}

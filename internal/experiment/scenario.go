package experiment

// scenario.go is the scenario-matrix runner: the cross product of
// algorithms × destination patterns × arrival processes × injection
// rates, fanned through the same parallel job pool as the figure sweeps.
// Every job's setup is fixed before dispatch, so — like the figures — a
// parallel matrix is byte-identical to a serial one.

import (
	"fmt"

	"alpha21364/internal/core"
	"alpha21364/internal/traffic"
)

// Scenario names one cell of a scenario matrix.
type Scenario struct {
	Kind    core.Kind
	Pattern traffic.Pattern
	Process string
	Rate    float64
}

func (s Scenario) String() string {
	return fmt.Sprintf("%v/%v/%s @ %g", s.Kind, s.Pattern, s.Process, s.Rate)
}

// ScenarioResult pairs a scenario with its timing result.
type ScenarioResult struct {
	Scenario
	TimingResult
}

// ScenarioMatrix runs every combination of the given algorithms,
// destination patterns, arrival processes, and injection rates on the
// base setup (which supplies torus size, cycle count, seed, and the
// outstanding cap). Results are returned in matrix order — kinds
// outermost, then patterns, processes, and rates — regardless of worker
// scheduling. On failure the returned slice holds the results of every
// scenario before the first failed one.
func ScenarioMatrix(o Options, base TimingSetup, kinds []core.Kind,
	patterns []traffic.Pattern, processes []string, rates []float64) ([]ScenarioResult, error) {
	if len(processes) == 0 {
		processes = []string{"bernoulli"}
	}
	scenarios := make([]Scenario, 0, len(kinds)*len(patterns)*len(processes)*len(rates))
	for _, k := range kinds {
		for _, p := range patterns {
			for _, proc := range processes {
				for _, r := range rates {
					scenarios = append(scenarios, Scenario{Kind: k, Pattern: p, Process: proc, Rate: r})
				}
			}
		}
	}
	jobs := make([]jobSpec[ScenarioResult], len(scenarios))
	for i, sc := range scenarios {
		setup := base
		setup.Kind = sc.Kind
		setup.Pattern = sc.Pattern
		setup.Process = sc.Process
		setup.Rate = sc.Rate
		sc := sc
		jobs[i] = jobSpec[ScenarioResult]{
			label: "matrix / " + sc.String(),
			run: func() (ScenarioResult, error) {
				res, err := RunTiming(setup)
				return ScenarioResult{Scenario: sc, TimingResult: res}, err
			},
		}
	}
	results, firstBad, err := runJobs(o, jobs)
	return results[:firstBad], err
}

// ScenarioTable formats matrix results as one row per scenario.
func ScenarioTable(results []ScenarioResult) Table {
	tb := Table{
		Title: "Scenario matrix",
		Columns: []string{
			"algorithm", "pattern", "process", "rate",
			"tput(flits/router/ns)", "latency(ns)", "p99(ns)", "packets",
		},
	}
	for _, r := range results {
		tb.Rows = append(tb.Rows, []string{
			r.Kind.String(),
			r.Pattern.String(),
			r.Process,
			fmt.Sprintf("%g", r.Rate),
			fmt.Sprintf("%.4f", r.Throughput),
			fmt.Sprintf("%.1f", r.AvgLatencyNS),
			fmt.Sprintf("%.1f", r.AvgLatencyP99),
			fmt.Sprintf("%d", r.Packets),
		})
	}
	return tb
}

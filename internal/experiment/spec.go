package experiment

// spec.go is the declarative half of the Scenario/Runner API: a Spec is a
// fully serializable, versioned description of one simulation or a whole
// sweep/matrix — topology, arbiters, pattern × process × model axes,
// rates, cycles, warmup, seed, trace record/replay — that a Runner can
// execute without any hand-written Go. The paper's figures are canned
// Specs (FigureSpecs); cmd/sweep loads and saves them as JSON files.
//
// Schema stability rules: parsing is strict (unknown fields and unknown
// versions are rejected, so a v2 document never half-loads into a v1
// reader), Validate never mutates the spec, and marshal → parse →
// marshal is byte-identical — all three are enforced by golden-file and
// fuzz tests.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"alpha21364/internal/core"
	"alpha21364/internal/standalone"
	"alpha21364/internal/topology"
	"alpha21364/internal/traffic"
	"alpha21364/internal/workload"
)

// SpecVersion is the Spec schema version this package reads and writes.
const SpecVersion = 1

// Spec modes: the cycle-accurate torus timing model (the default) or the
// single-router standalone matching model of Figures 8-9.
const (
	ModeTiming     = "timing"
	ModeStandalone = "standalone"
)

// Spec is a declarative description of a simulation study. The zero value
// is invalid; build Specs with NewSpec and the With* options, load them
// with ParseSpec/ReadSpecFile, or start from a canned figure (FigureSpecs).
type Spec struct {
	// Version must be SpecVersion.
	Version int `json:"version"`
	// Name titles the study; tables and progress labels use it verbatim.
	Name string `json:"name,omitempty"`
	// Mode is ModeTiming ("" means timing) or ModeStandalone.
	Mode string `json:"mode,omitempty"`

	// Arbiters names the arbitration algorithms to compare (core.ParseKind
	// spellings, e.g. "SPAA-rotary"). One result series per arbiter — or
	// per arbiter × pattern × process combination when those axes fan out.
	Arbiters []string `json:"arbiters"`

	// Replications, when greater than 1, runs every point that many times
	// with deterministically derived per-replication seeds and attaches
	// mean/stddev/confidence-interval statistics to each point
	// (ResultPoint.Replication). 0 and 1 both mean a single run whose
	// points are byte-identical to those of a spec without the field:
	// replication 0 always runs the spec's own seed.
	Replications int `json:"replications,omitempty"`
	// Confidence is the two-sided confidence level of the replication
	// interval; 0 means the 0.95 default. It requires Replications > 1.
	Confidence float64 `json:"confidence,omitempty"`
	// Check enables the online invariant oracle (internal/check) on every
	// simulation of the run: packet conservation cross-checked against the
	// packet arena, per-(port, channel) occupancy and credit bounds, grant
	// legality for every arbiter, and a deadlock/livelock watchdog. A
	// violated invariant fails the run with a structured report. In
	// standalone mode the oracle validates every arbitration pass's
	// connection matrix and matching. Checking never changes simulation
	// results — a clean checked run measures exactly the same numbers.
	Check bool `json:"check,omitempty"`
	// Metrics enables the telemetry layer (internal/obs) on every timing
	// simulation of the run: per-router occupancy/stall/arbitration
	// counters, per-link utilization, and sink throughput, snapshotted
	// into each ResultPoint.Metrics. Telemetry is observation-only — a
	// metrics-enabled run measures exactly the same numbers — but unlike
	// Check it changes the Result bytes (the snapshots ride along), so it
	// participates in the spec hash: cached metric-laden points are never
	// served to a run that did not ask for them, or vice versa. Timing
	// mode only; the standalone model has no router simulation to observe.
	Metrics bool `json:"metrics,omitempty"`

	// Topology, Workload, and Timing describe timing-mode runs; they must
	// be nil in standalone mode.
	Topology *TopologySpec `json:"topology,omitempty"`
	Workload *WorkloadSpec `json:"workload,omitempty"`
	Timing   *TimingSpec   `json:"timing,omitempty"`

	// Standalone describes the standalone-model sweep; it must be nil in
	// timing mode.
	Standalone *StandaloneSpec `json:"standalone,omitempty"`
}

// TopologySpec is the 2D-torus shape.
type TopologySpec struct {
	Width  int `json:"width"`
	Height int `json:"height"`
}

// WorkloadSpec is the workload matrix: spatial patterns × arrival
// processes × one transaction model, swept over injection rates, or a
// trace replay in place of all four.
type WorkloadSpec struct {
	// Patterns are destination-pattern names (traffic.ParsePattern
	// spellings); empty means ["random"].
	Patterns []string `json:"patterns,omitempty"`
	// Processes are arrival-process names; empty means ["bernoulli"].
	Processes []string `json:"processes,omitempty"`
	// Model is the transaction-model name; "" means "coherence".
	Model string `json:"model,omitempty"`
	// Rates are injection rates in new transactions per node per router
	// cycle; required unless ReplayFrom is set.
	Rates []float64 `json:"rates,omitempty"`
	// MaxOutstanding caps in-flight transactions per processor; 0 means
	// the 21364 default of 16.
	MaxOutstanding int `json:"max_outstanding,omitempty"`
	// RecordTo captures the injection stream to a trace file; it requires
	// a single-scenario spec (one arbiter, pattern, process, and rate).
	RecordTo string `json:"record_to,omitempty"`
	// ReplayFrom replays a recorded trace instead of generating traffic;
	// it contradicts Patterns, Processes, Rates, and RecordTo.
	ReplayFrom string `json:"replay_from,omitempty"`
}

// TimingSpec is the fidelity half of a timing run.
type TimingSpec struct {
	// Cycles is the router-cycle count per simulation (paper: 75,000).
	Cycles int `json:"cycles"`
	// WarmupFraction is the share of the run excluded from statistics:
	// 0 means the 0.2 default, negative (NoWarmup) disables the warmup.
	WarmupFraction float64 `json:"warmup_fraction,omitempty"`
	// Seed feeds every RNG stream of the run.
	Seed uint64 `json:"seed,omitempty"`
	// ScalePipeline doubles pipeline depth and clock (Figure 11a).
	ScalePipeline bool `json:"scale_pipeline,omitempty"`
	// EpochCycles, when positive, tracks delivered flits per epoch of that
	// many cycles (the §3.4 saturation-oscillation measure).
	EpochCycles int `json:"epoch_cycles,omitempty"`
	// TorusShards, when positive, runs each simulation spatially sharded
	// into that many row bands with their own tick-wheel engines (CMB
	// lookahead synchronization; byte-identical to the monolithic
	// engine). 0 keeps the single-engine path. Included in the spec hash
	// when set, so a sharded sweep caches separately from a monolithic
	// one even though the results match byte for byte.
	TorusShards int `json:"torus_shards,omitempty"`
}

// Standalone axes.
const (
	// AxisLoad sweeps absolute load (packets per input port per cycle).
	AxisLoad = "load"
	// AxisLoadFraction sweeps fractions of the MCM saturation load
	// (Figure 8's horizontal axis).
	AxisLoadFraction = "load-fraction"
	// AxisOccupancy sweeps output-port occupancy at fixed load (Figure 9).
	AxisOccupancy = "occupancy"
)

// StandaloneSpec is a standalone-model sweep: each arbiter is run once
// per axis value.
type StandaloneSpec struct {
	// Cycles is the iteration count to average over (paper: 1000).
	Cycles int `json:"cycles"`
	// Seed feeds the arrival RNG; 0 means 1.
	Seed uint64 `json:"seed,omitempty"`
	// Axis is AxisLoad, AxisLoadFraction, or AxisOccupancy.
	Axis string `json:"axis"`
	// Values are the axis points.
	Values []float64 `json:"values"`
	// Occupancy fixes the output-port busy probability for the load axes;
	// it must be 0 with AxisOccupancy.
	Occupancy float64 `json:"occupancy,omitempty"`
	// Load fixes the absolute load for AxisOccupancy; 0 means the MCM
	// saturation load. It must be 0 with the load axes.
	Load float64 `json:"load,omitempty"`
}

// SpecOption mutates a Spec under construction; see NewSpec.
type SpecOption func(*Spec)

// NewSpec builds a Spec from functional options. Option order does not
// matter: WithCycles/WithSeed applied before WithStandaloneSweep land in
// a timing section that NewSpec migrates into the standalone one.
func NewSpec(opts ...SpecOption) Spec {
	s := Spec{Version: SpecVersion}
	for _, opt := range opts {
		opt(&s)
	}
	// Mode-aware options (WithCycles, WithSeed) applied before the spec
	// switched to standalone mode parked their values in a timing section.
	// When that section carries nothing else and no other timing sections
	// exist, it is unambiguous: move the values where they belong.
	if s.Mode == ModeStandalone && s.Standalone != nil && s.Timing != nil &&
		s.Topology == nil && s.Workload == nil &&
		*s.Timing == (TimingSpec{Cycles: s.Timing.Cycles, Seed: s.Timing.Seed}) {
		if s.Standalone.Cycles == 0 {
			s.Standalone.Cycles = s.Timing.Cycles
		}
		if s.Standalone.Seed == 0 {
			s.Standalone.Seed = s.Timing.Seed
		}
		s.Timing = nil
	}
	return s
}

// WithName titles the spec.
func WithName(name string) SpecOption { return func(s *Spec) { s.Name = name } }

// WithTopology sets the torus shape.
func WithTopology(width, height int) SpecOption {
	return func(s *Spec) { s.Topology = &TopologySpec{Width: width, Height: height} }
}

// WithArbiters names the algorithms to compare.
func WithArbiters(names ...string) SpecOption {
	return func(s *Spec) { s.Arbiters = append([]string(nil), names...) }
}

func (s *Spec) workload() *WorkloadSpec {
	if s.Workload == nil {
		s.Workload = &WorkloadSpec{}
	}
	return s.Workload
}

func (s *Spec) timing() *TimingSpec {
	if s.Timing == nil {
		s.Timing = &TimingSpec{}
	}
	return s.Timing
}

// WithPatterns sets the destination-pattern axis.
func WithPatterns(names ...string) SpecOption {
	return func(s *Spec) { s.workload().Patterns = append([]string(nil), names...) }
}

// WithProcesses sets the arrival-process axis.
func WithProcesses(names ...string) SpecOption {
	return func(s *Spec) { s.workload().Processes = append([]string(nil), names...) }
}

// WithModel sets the transaction model.
func WithModel(name string) SpecOption {
	return func(s *Spec) { s.workload().Model = name }
}

// WithRates sets the injection-rate sweep.
func WithRates(rates ...float64) SpecOption {
	return func(s *Spec) { s.workload().Rates = append([]float64(nil), rates...) }
}

// WithMaxOutstanding caps in-flight transactions per processor.
func WithMaxOutstanding(n int) SpecOption {
	return func(s *Spec) { s.workload().MaxOutstanding = n }
}

// WithRecord captures the injection stream to a trace file.
func WithRecord(path string) SpecOption {
	return func(s *Spec) { s.workload().RecordTo = path }
}

// WithReplay replays a recorded trace instead of generating traffic.
func WithReplay(path string) SpecOption {
	return func(s *Spec) { s.workload().ReplayFrom = path }
}

// WithCycles sets the run length (router cycles, or standalone
// iterations when the spec is in standalone mode).
func WithCycles(n int) SpecOption {
	return func(s *Spec) {
		if s.Mode == ModeStandalone && s.Standalone != nil {
			s.Standalone.Cycles = n
			return
		}
		s.timing().Cycles = n
	}
}

// WithSeed sets the simulation seed (mode-aware, like WithCycles).
func WithSeed(seed uint64) SpecOption {
	return func(s *Spec) {
		if s.Mode == ModeStandalone && s.Standalone != nil {
			s.Standalone.Seed = seed
			return
		}
		s.timing().Seed = seed
	}
}

// WithWarmupFraction sets the measurement warmup (NoWarmup disables it).
func WithWarmupFraction(frac float64) SpecOption {
	return func(s *Spec) { s.timing().WarmupFraction = frac }
}

// WithScaledPipeline doubles pipeline depth and clock.
func WithScaledPipeline() SpecOption {
	return func(s *Spec) { s.timing().ScalePipeline = true }
}

// WithTorusShards spatially shards each simulation into n row bands
// (0 keeps the monolithic engine).
func WithTorusShards(n int) SpecOption {
	return func(s *Spec) { s.timing().TorusShards = n }
}

// WithEpochCycles tracks delivered flits per epoch of n cycles.
func WithEpochCycles(n int) SpecOption {
	return func(s *Spec) { s.timing().EpochCycles = n }
}

// WithReplications runs every point n times with derived seeds and
// attaches mean/stddev/confidence-interval statistics to each point.
func WithReplications(n int) SpecOption {
	return func(s *Spec) { s.Replications = n }
}

// WithConfidence sets the replication interval's confidence level.
func WithConfidence(c float64) SpecOption {
	return func(s *Spec) { s.Confidence = c }
}

// WithCheck enables the online invariant oracle for every simulation.
func WithCheck() SpecOption {
	return func(s *Spec) { s.Check = true }
}

// WithMetrics enables the telemetry layer for every timing simulation;
// each ResultPoint carries its obs.Snapshot.
func WithMetrics() SpecOption {
	return func(s *Spec) { s.Metrics = true }
}

// WithStandaloneSweep switches the spec to standalone mode with the given
// axis and values.
func WithStandaloneSweep(axis string, values ...float64) SpecOption {
	return func(s *Spec) {
		s.Mode = ModeStandalone
		if s.Standalone == nil {
			s.Standalone = &StandaloneSpec{}
		}
		s.Standalone.Axis = axis
		s.Standalone.Values = append([]float64(nil), values...)
	}
}

// WithStandalone sets the full standalone section.
func WithStandalone(sa StandaloneSpec) SpecOption {
	return func(s *Spec) {
		s.Mode = ModeStandalone
		copy := sa
		s.Standalone = &copy
	}
}

// reps returns the effective replication count (0 and 1 both mean one).
func (s Spec) reps() int {
	if s.Replications > 1 {
		return s.Replications
	}
	return 1
}

// confidence returns the effective confidence level.
func (s Spec) confidence() float64 {
	if s.Confidence != 0 {
		return s.Confidence
	}
	return DefaultConfidence
}

// repSeed derives the seed of replication rep from a base seed.
// Replication 0 runs the base seed itself, so a single-replication run
// reproduces the unreplicated simulation byte for byte; later
// replications step by the golden-ratio increment, giving distinct,
// deterministic, well-spread seeds.
func repSeed(seed uint64, rep int) uint64 {
	return seed + uint64(rep)*0x9e3779b97f4a7c15
}

// patterns returns the pattern axis with its default.
func (w *WorkloadSpec) patterns() []string {
	if len(w.Patterns) == 0 {
		return []string{"random"}
	}
	return w.Patterns
}

// processes returns the process axis with its default.
func (w *WorkloadSpec) processes() []string {
	if len(w.Processes) == 0 {
		return []string{"bernoulli"}
	}
	return w.Processes
}

func specErr(format string, args ...any) error {
	return fmt.Errorf("experiment: invalid spec: "+format, args...)
}

// Validate checks the spec against the v1 schema without mutating it:
// version and mode, name resolution for every arbiter, pattern, process,
// and model, topology compatibility, and the record/replay contradiction
// rules. A valid spec is guaranteed to expand into runnable simulations
// (runtime I/O errors, such as a missing trace file, can still occur).
func (s Spec) Validate() error {
	if s.Version != SpecVersion {
		return specErr("unsupported version %d (this build reads version %d)", s.Version, SpecVersion)
	}
	if len(s.Arbiters) == 0 {
		return specErr("at least one arbiter is required")
	}
	if s.Replications < 0 {
		return specErr("replications %d must be >= 0", s.Replications)
	}
	if s.Confidence != 0 {
		if s.Confidence <= 0 || s.Confidence >= 1 {
			return specErr("confidence %g must be within (0, 1)", s.Confidence)
		}
		if s.reps() == 1 {
			return specErr("confidence requires replications > 1 (there is no interval over one run)")
		}
	}
	kinds := make([]core.Kind, len(s.Arbiters))
	for i, name := range s.Arbiters {
		k, err := core.ParseKind(name)
		if err != nil {
			return specErr("arbiters[%d]: %v", i, err)
		}
		kinds[i] = k
	}
	switch s.Mode {
	case "", ModeTiming:
		return s.validateTiming()
	case ModeStandalone:
		return s.validateStandalone()
	default:
		return specErr("unknown mode %q (valid: %s, %s)", s.Mode, ModeTiming, ModeStandalone)
	}
}

func (s Spec) validateTiming() error {
	if s.Standalone != nil {
		return specErr("standalone section is set on a timing spec")
	}
	if s.Topology == nil {
		return specErr("timing spec needs a topology")
	}
	if s.Topology.Width < 2 || s.Topology.Height < 2 {
		return specErr("topology %dx%d: both dimensions must be >= 2", s.Topology.Width, s.Topology.Height)
	}
	if s.Timing == nil || s.Timing.Cycles <= 0 {
		return specErr("timing spec needs a positive cycle count")
	}
	if s.Timing.EpochCycles < 0 {
		return specErr("epoch_cycles must be >= 0")
	}
	if s.Timing.TorusShards < 0 {
		return specErr("torus_shards must be >= 0")
	}
	if s.Timing.TorusShards > s.Topology.Height {
		return specErr("torus_shards %d exceeds topology height %d (row-band sharding needs at least one row per shard)",
			s.Timing.TorusShards, s.Topology.Height)
	}
	w := s.Workload
	if w == nil {
		return specErr("timing spec needs a workload")
	}
	if w.MaxOutstanding < 0 {
		return specErr("max_outstanding must be >= 0")
	}
	if w.ReplayFrom != "" {
		// A replay fixes the injection stream, so the generative axes are
		// contradictions, not ignorable extras.
		switch {
		case len(w.Patterns) > 0:
			return specErr("replay_from contradicts patterns (the trace fixes destinations)")
		case len(w.Processes) > 0:
			return specErr("replay_from contradicts processes (the trace fixes arrivals)")
		case len(w.Rates) > 0:
			return specErr("replay_from contradicts rates (the trace fixes the injection stream)")
		case w.Model != "":
			return specErr("replay_from contradicts model (the trace fixes transactions)")
		case w.RecordTo != "":
			return specErr("replay_from contradicts record_to (re-recording a replay is a no-op)")
		}
		return nil
	}
	torus := topology.NewTorus(s.Topology.Width, s.Topology.Height)
	for i, name := range w.patterns() {
		p, err := traffic.ParsePattern(name)
		if err != nil {
			return specErr("patterns[%d]: %v", i, err)
		}
		if err := p.Validate(torus); err != nil {
			return specErr("patterns[%d]: %v", i, err)
		}
	}
	for i, name := range w.processes() {
		if _, err := workload.CanonicalProcess(name); err != nil {
			return specErr("processes[%d]: %v", i, err)
		}
	}
	if _, err := workload.CanonicalModel(w.Model); err != nil {
		return specErr("model: %v", err)
	}
	if len(w.Rates) == 0 {
		return specErr("timing spec needs at least one rate (or a replay_from trace)")
	}
	for i, r := range w.Rates {
		if r <= 0 {
			return specErr("rates[%d]: rate %g must be positive", i, r)
		}
	}
	if w.RecordTo != "" {
		points := len(s.Arbiters) * len(w.patterns()) * len(w.processes()) * len(w.Rates)
		if points != 1 {
			return specErr("record_to needs a single-scenario spec (this one expands to %d runs sharing the file)", points)
		}
		if s.reps() > 1 {
			return specErr("record_to contradicts replications (every replication would rewrite the trace file)")
		}
	}
	return nil
}

func (s Spec) validateStandalone() error {
	if s.Topology != nil || s.Workload != nil || s.Timing != nil {
		return specErr("timing sections are set on a standalone spec")
	}
	if s.Metrics {
		return specErr("metrics requires a timing spec (the standalone model has no routers to observe)")
	}
	sa := s.Standalone
	if sa == nil {
		return specErr("standalone spec needs a standalone section")
	}
	if sa.Cycles <= 0 {
		return specErr("standalone spec needs a positive cycle count")
	}
	if len(sa.Values) == 0 {
		return specErr("standalone spec needs at least one axis value")
	}
	switch sa.Axis {
	case AxisLoad, AxisLoadFraction:
		if sa.Load != 0 {
			return specErr("load is only meaningful with the %s axis", AxisOccupancy)
		}
		if sa.Occupancy < 0 || sa.Occupancy > 1 {
			return specErr("occupancy %g must be within [0, 1]", sa.Occupancy)
		}
		for i, v := range sa.Values {
			if v < 0 {
				return specErr("values[%d]: %s %g must be >= 0", i, sa.Axis, v)
			}
		}
	case AxisOccupancy:
		if sa.Occupancy != 0 {
			return specErr("occupancy is the axis; set values, not a fixed occupancy")
		}
		if sa.Load < 0 {
			return specErr("load %g must be >= 0", sa.Load)
		}
		for i, v := range sa.Values {
			if v < 0 || v > 1 {
				return specErr("values[%d]: occupancy %g must be within [0, 1]", i, v)
			}
		}
	default:
		return specErr("unknown standalone axis %q (valid: %s, %s, %s)",
			sa.Axis, AxisLoad, AxisLoadFraction, AxisOccupancy)
	}
	return nil
}

// EncodeSpec renders one spec as indented JSON with a trailing newline —
// the canonical serialized form the golden tests pin.
func EncodeSpec(s Spec) ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("experiment: encode spec: %w", err)
	}
	return append(data, '\n'), nil
}

// EncodeSpecs renders one spec as an object and several as an array.
func EncodeSpecs(specs []Spec) ([]byte, error) {
	if len(specs) == 1 {
		return EncodeSpec(specs[0])
	}
	data, err := json.MarshalIndent(specs, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("experiment: encode specs: %w", err)
	}
	return append(data, '\n'), nil
}

func strictDecoder(data []byte) *json.Decoder {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec
}

// ParseSpec parses and validates one spec from strict JSON: unknown
// fields, unsupported versions, and trailing garbage are all errors.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := strictDecoder(data)
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("experiment: parse spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("experiment: parse spec: trailing data after the spec document")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// ParseSpecs accepts either a single spec object or an array of specs.
func ParseSpecs(data []byte) ([]Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var specs []Spec
		dec := strictDecoder(data)
		if err := dec.Decode(&specs); err != nil {
			return nil, fmt.Errorf("experiment: parse specs: %w", err)
		}
		if dec.More() {
			return nil, fmt.Errorf("experiment: parse specs: trailing data after the spec array")
		}
		if len(specs) == 0 {
			return nil, fmt.Errorf("experiment: parse specs: empty spec array")
		}
		for i := range specs {
			if err := specs[i].Validate(); err != nil {
				return nil, fmt.Errorf("specs[%d]: %w", i, err)
			}
		}
		return specs, nil
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, err
	}
	return []Spec{s}, nil
}

// ReadSpecFile loads one spec or a spec array from a JSON file.
func ReadSpecFile(path string) ([]Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	specs, err := ParseSpecs(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return specs, nil
}

// WriteSpecFile saves specs (an object for one, an array for several).
func WriteSpecFile(path string, specs ...Spec) error {
	data, err := EncodeSpecs(specs)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// planSeries is one result series of an expanded spec, plus the typed
// identity its jobs run with.
type planSeries struct {
	meta ResultSeries // label and identity, no points yet
	jobs int          // job count (points × replications)
}

// planJob is one simulation of an expanded spec, with the coordinates
// the Runner assembles and streams results by.
type planJob struct {
	series int
	point  int
	rep    int
	label  string
	run    func(ctx context.Context) (ResultPoint, error)
}

// plan is a validated, fully-expanded Spec: the flat series-major job
// list the Runner executes — replications of one point are adjacent, so
// the contiguous-prefix partial cut always falls on a whole point. Every
// job's entire input (including its replication seed) is fixed here,
// before anything runs, so results cannot depend on scheduling order.
type plan struct {
	spec           Spec
	reps           int
	confidence     float64
	series         []planSeries
	jobs           []planJob
	saturationLoad float64 // set for standalone saturation-relative axes
}

// expand validates the spec and lays out its job grid.
func (s Spec) expand() (*plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Mode == ModeStandalone {
		return s.expandStandalone()
	}
	return s.expandTiming()
}

// repLabel appends the replication suffix to a job label.
func repLabel(label string, rep, reps int) string {
	if reps <= 1 {
		return label
	}
	return fmt.Sprintf("%s [rep %d/%d]", label, rep+1, reps)
}

func (s Spec) expandTiming() (*plan, error) {
	pl := &plan{spec: s, reps: s.reps(), confidence: s.confidence()}
	w := s.Workload
	base := TimingSetup{
		Width:          s.Topology.Width,
		Height:         s.Topology.Height,
		MaxOutstanding: w.MaxOutstanding,
		Cycles:         s.Timing.Cycles,
		WarmupFraction: s.Timing.WarmupFraction,
		ScalePipeline:  s.Timing.ScalePipeline,
		EpochCycles:    s.Timing.EpochCycles,
		TorusShards:    s.Timing.TorusShards,
		Seed:           s.Timing.Seed,
		Check:          s.Check,
		Metrics:        s.Metrics,
	}
	if w.ReplayFrom != "" {
		for _, name := range s.Arbiters {
			k, _ := core.ParseKind(name)
			si := len(pl.series)
			pl.series = append(pl.series, planSeries{
				meta: ResultSeries{Label: k.String(), Arbiter: k.String()},
				jobs: pl.reps,
			})
			for rep := 0; rep < pl.reps; rep++ {
				setup := base
				setup.Kind = k
				setup.ReplayFrom = w.ReplayFrom
				setup.Seed = repSeed(base.Seed, rep)
				pl.jobs = append(pl.jobs, planJob{
					series: si,
					rep:    rep,
					label: repLabel(fmt.Sprintf("%s / %v replaying %s", s.title(), k, w.ReplayFrom),
						rep, pl.reps),
					run: timingJob(setup),
				})
			}
		}
		return pl, nil
	}
	patterns := w.patterns()
	processes := w.processes()
	multi := len(patterns) > 1 || len(processes) > 1
	for _, name := range s.Arbiters {
		k, _ := core.ParseKind(name)
		for _, patName := range patterns {
			pat, _ := traffic.ParsePattern(patName)
			for _, procName := range processes {
				proc, _ := workload.CanonicalProcess(procName)
				label := k.String()
				if multi {
					label = fmt.Sprintf("%v/%v/%s", k, pat, proc)
				}
				si := len(pl.series)
				pl.series = append(pl.series, planSeries{
					meta: ResultSeries{
						Label:   label,
						Arbiter: k.String(),
						Pattern: pat.String(),
						Process: proc,
						Model:   w.Model,
					},
					jobs: len(w.Rates) * pl.reps,
				})
				for pi, rate := range w.Rates {
					for rep := 0; rep < pl.reps; rep++ {
						setup := base
						setup.Kind = k
						setup.Pattern = pat
						setup.Process = proc
						setup.Model = w.Model
						setup.Rate = rate
						setup.RecordTo = w.RecordTo
						setup.Seed = repSeed(base.Seed, rep)
						pl.jobs = append(pl.jobs, planJob{
							series: si,
							point:  pi,
							rep:    rep,
							label: repLabel(fmt.Sprintf("%s / %s @ %g", s.title(), label, rate),
								rep, pl.reps),
							run: timingJob(setup),
						})
					}
				}
			}
		}
	}
	return pl, nil
}

func (s Spec) title() string {
	if s.Name != "" {
		return s.Name
	}
	if s.Mode == ModeStandalone {
		return "standalone"
	}
	return "sweep"
}

// timingJob wraps one timing setup as a plan job.
func timingJob(setup TimingSetup) func(ctx context.Context) (ResultPoint, error) {
	return func(ctx context.Context) (ResultPoint, error) {
		res, err := runTiming(ctx, setup, nil)
		if err != nil {
			return ResultPoint{}, err
		}
		return timingPoint(res), nil
	}
}

func (s Spec) expandStandalone() (*plan, error) {
	pl := &plan{spec: s, reps: s.reps(), confidence: s.confidence()}
	sa := s.Standalone
	cfg := standalone.DefaultConfig(0)
	cfg.Cycles = sa.Cycles
	if sa.Seed != 0 {
		cfg.Seed = sa.Seed
	}
	needSat := sa.Axis == AxisLoadFraction || (sa.Axis == AxisOccupancy && sa.Load == 0)
	if needSat {
		pl.saturationLoad = standalone.MCMSaturationLoad(cfg)
	}
	check := s.Check
	for _, name := range s.Arbiters {
		k, _ := core.ParseKind(name)
		si := len(pl.series)
		pl.series = append(pl.series, planSeries{
			meta: ResultSeries{Label: k.String(), Arbiter: k.String()},
			jobs: len(sa.Values) * pl.reps,
		})
		for pi, v := range sa.Values {
			for rep := 0; rep < pl.reps; rep++ {
				c := cfg
				c.Seed = repSeed(cfg.Seed, rep)
				switch sa.Axis {
				case AxisLoad:
					c.Load = v
					c.Occupancy = sa.Occupancy
				case AxisLoadFraction:
					c.Load = v * pl.saturationLoad
					c.Occupancy = sa.Occupancy
				case AxisOccupancy:
					c.Load = sa.Load
					if sa.Load == 0 {
						c.Load = pl.saturationLoad
					}
					c.Occupancy = v
				}
				kind, axisValue := k, v
				pl.jobs = append(pl.jobs, planJob{
					series: si,
					point:  pi,
					rep:    rep,
					label:  repLabel(fmt.Sprintf("%s / %v @ %g", s.title(), k, v), rep, pl.reps),
					run: func(ctx context.Context) (ResultPoint, error) {
						if ctx != nil && ctx.Err() != nil {
							return ResultPoint{}, ctx.Err()
						}
						var res standalone.Result
						if check {
							var err error
							if res, err = standalone.RunChecked(kind, c); err != nil {
								return ResultPoint{}, err
							}
						} else {
							res = standalone.Run(kind, c)
						}
						return ResultPoint{
							Axis:            axisValue,
							MatchesPerCycle: res.MatchesPerCycle,
							OfferedPerCycle: res.OfferedPerCycle,
							DroppedPerCycle: res.DroppedPerCycle,
							MeanQueueLen:    res.MeanQueueLen,
						}, nil
					},
				})
			}
		}
	}
	return pl, nil
}

// figureSpecNames lists the canned figure names in cmd/sweep order.
var figureSpecNames = []string{"8", "9", "10", "10s", "11a", "11b", "11c"}

// FigureSpecNames returns the canned figure-spec names.
func FigureSpecNames() []string {
	return append([]string(nil), figureSpecNames...)
}

func kindNames(kinds []core.Kind) []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}

// FigureSpecs returns the canned Specs reproducing a paper figure — one
// Spec per panel, so "10" yields four. "all" concatenates every figure.
// Options supplies fidelity (Quick, CyclesOverride, MaxRatePoints), the
// seed, and the study-wide toggles (Check, Replications); with the
// toggles off, running the Specs through a Runner reproduces the old
// figure-function output byte for byte.
func FigureSpecs(name string, o Options) ([]Spec, error) {
	specs, err := figureSpecs(name, o)
	if err != nil {
		return nil, err
	}
	for i := range specs {
		o.ApplyStudy(&specs[i])
	}
	return specs, nil
}

func figureSpecs(name string, o Options) ([]Spec, error) {
	timingSpec := func(title string, w, h int, pattern traffic.Pattern, kinds []core.Kind,
		rates []float64, mutate func(*Spec)) Spec {
		sp := Spec{
			Version:  SpecVersion,
			Name:     title,
			Arbiters: kindNames(kinds),
			Topology: &TopologySpec{Width: w, Height: h},
			Workload: &WorkloadSpec{
				Patterns: []string{pattern.String()},
				Rates:    append([]float64(nil), o.rates(rates)...),
			},
			Timing: &TimingSpec{Cycles: o.TimingCycles(), Seed: o.seed()},
		}
		if mutate != nil {
			mutate(&sp)
		}
		return sp
	}
	switch name {
	case "8":
		return []Spec{{
			Version:  SpecVersion,
			Name:     "Figure 8",
			Mode:     ModeStandalone,
			Arbiters: kindNames(Figure8Kinds),
			Standalone: &StandaloneSpec{
				Cycles: o.StandaloneCycles(),
				Seed:   o.seed(),
				Axis:   AxisLoadFraction,
				Values: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
			},
		}}, nil
	case "9":
		return []Spec{{
			Version:  SpecVersion,
			Name:     "Figure 9",
			Mode:     ModeStandalone,
			Arbiters: kindNames(Figure8Kinds),
			Standalone: &StandaloneSpec{
				Cycles: o.StandaloneCycles(),
				Seed:   o.seed(),
				Axis:   AxisOccupancy,
				Values: []float64{0, 0.25, 0.5, 0.75},
			},
		}}, nil
	case "10":
		return []Spec{
			timingSpec("4x4, Random Traffic", 4, 4, traffic.Uniform, Figure10Kinds, Rates4x4, nil),
			timingSpec("8x8, Random Traffic", 8, 8, traffic.Uniform, Figure10Kinds, Rates8x8, nil),
			timingSpec("8x8, Bit Reversal", 8, 8, traffic.BitReversal, Figure10Kinds, Rates8x8, nil),
			timingSpec("8x8, Perfect Shuffle", 8, 8, traffic.PerfectShuffle, Figure10Kinds, Rates8x8, nil),
		}, nil
	case "10s":
		return []Spec{timingSpec(
			"8x8, Random Traffic, 64 outstanding (saturation companion)",
			8, 8, traffic.Uniform, Figure10Kinds, Rates8x8,
			func(sp *Spec) { sp.Workload.MaxOutstanding = 64 },
		)}, nil
	case "11a":
		return []Spec{timingSpec(
			"2x Pipeline, 8x8, Random Traffic", 8, 8, traffic.Uniform, Figure11Kinds, Rates8x8,
			func(sp *Spec) {
				sp.Timing.ScalePipeline = true
				sp.Timing.Cycles = o.TimingCycles() * 2
			},
		)}, nil
	case "11b":
		return []Spec{timingSpec(
			"64 requests, 8x8, Random Traffic", 8, 8, traffic.Uniform, Figure11Kinds, Rates8x8,
			func(sp *Spec) { sp.Workload.MaxOutstanding = 64 },
		)}, nil
	case "11c":
		return []Spec{timingSpec(
			"12x12, Random Traffic", 12, 12, traffic.Uniform, Figure11Kinds, Rates12x12, nil,
		)}, nil
	case "all":
		var all []Spec
		for _, n := range figureSpecNames {
			specs, err := figureSpecs(n, o)
			if err != nil {
				return nil, err
			}
			all = append(all, specs...)
		}
		return all, nil
	}
	return nil, fmt.Errorf("experiment: unknown figure %q (valid: %s, all)",
		name, strings.Join(figureSpecNames, ", "))
}

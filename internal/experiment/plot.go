package experiment

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders a panel as an ASCII BNF chart in the paper's orientation:
// average packet latency (ns) on the vertical axis against delivered
// throughput (flits/router/ns) on the horizontal axis, one glyph per
// algorithm. It is deliberately terminal-sized; cmd/sweep -plot uses it so
// curve shapes (saturation knees, rotary retention, collapse) are visible
// without external tooling.
func (p Panel) Plot(width, height int) string {
	if width < 20 {
		width = 64
	}
	if height < 8 {
		height = 20
	}
	glyphs := []byte{'P', 'w', 'W', 's', 'S', 'x', '+', 'o'}

	// Axis ranges over all points.
	maxX, maxY := 0.0, 0.0
	for _, s := range p.Series {
		for _, pt := range s.Points {
			maxX = math.Max(maxX, pt.Throughput)
			maxY = math.Max(maxY, pt.AvgLatencyNS)
		}
	}
	if maxX == 0 || maxY == 0 {
		return p.Title + " (no data)\n"
	}
	maxX *= 1.05
	maxY *= 1.05

	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.Series {
		g := glyphs[si%len(glyphs)]
		for _, pt := range s.Points {
			x := int(pt.Throughput / maxX * float64(width-1))
			y := height - 1 - int(pt.AvgLatencyNS/maxY*float64(height-1))
			if x >= 0 && x < width && y >= 0 && y < height {
				if grid[y][x] == ' ' {
					grid[y][x] = g
				} else if grid[y][x] != g {
					grid[y][x] = '*' // overlapping series
				}
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.Title)
	fmt.Fprintf(&b, "latency(ns) up to %.0f | throughput(flits/router/ns) up to %.2f\n", maxY/1.05, maxX/1.05)
	for y := 0; y < height; y++ {
		b.WriteByte('|')
		b.Write(grid[y])
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	for si, s := range p.Series {
		fmt.Fprintf(&b, "  %c = %s", glyphs[si%len(glyphs)], s.Label)
	}
	b.WriteString("  * = overlap\n")
	return b.String()
}

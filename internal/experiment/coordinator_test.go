package experiment

// coordinator_test.go enforces the three service-level acceptance gates:
// coordinated (sharded + cached) execution is byte-identical to the
// monolithic Runner — PR-4 golden fingerprints included and the full
// canned figure matrix at reduced fidelity — a second cached run
// simulates nothing, and a run killed mid-grid persists only whole
// completed points and resumes by simulating only the missing ones.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"alpha21364/internal/cache"
)

func testStore(t *testing.T) *cache.Store {
	t.Helper()
	store, err := cache.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// coordinatorFingerprint runs the spec through a fresh Coordinator and
// fingerprints the result with the golden tests' hashing.
func coordinatorFingerprint(t *testing.T, sp Spec, opts ...CoordinatorOption) string {
	t.Helper()
	res, err := NewCoordinator(opts...).Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatal("complete coordinator run marked Partial")
	}
	return resultFingerprint(t, res)
}

// TestCoordinatorMatchesGoldenFingerprints is the acceptance gate: the
// coordinator — cache attached or not, coarse or fine shards, serial or
// parallel — must reproduce the PR-4 golden fingerprints byte for byte.
func TestCoordinatorMatchesGoldenFingerprints(t *testing.T) {
	cases := []struct {
		name string
		opts func(t *testing.T) []CoordinatorOption
	}{
		{"default", func(t *testing.T) []CoordinatorOption { return nil }},
		{"serial-coarse", func(t *testing.T) []CoordinatorOption {
			return []CoordinatorOption{WithCoordinatorWorkers(1), WithShards(3)}
		}},
		{"cached", func(t *testing.T) []CoordinatorOption {
			return []CoordinatorOption{WithCache(testStore(t)), WithShards(2)}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := coordinatorFingerprint(t, fingerprintTimingSpec(), tc.opts(t)...); got != goldenTimingFingerprint {
				t.Errorf("timing fingerprint diverged:\n  got  %s\n  want %s", got, goldenTimingFingerprint)
			}
			if got := coordinatorFingerprint(t, fingerprintStandaloneSpec(), tc.opts(t)...); got != goldenStandaloneFingerprint {
				t.Errorf("standalone fingerprint diverged:\n  got  %s\n  want %s", got, goldenStandaloneFingerprint)
			}
		})
	}
}

// TestCoordinatorSecondRunIsPureCacheRead runs the same spec twice
// against one store: the second run must simulate nothing and still
// produce the identical byte stream.
func TestCoordinatorSecondRunIsPureCacheRead(t *testing.T) {
	store := testStore(t)
	sp := fingerprintStandaloneSpec()

	first := NewCoordinator(WithCache(store))
	fres, err := first.Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	fstats := first.Stats()
	if fstats.CachedPoints != 0 || fstats.SimulatedPoints != fstats.TotalPoints {
		t.Fatalf("cold run: stats %+v, want all %d points simulated", fstats, fstats.TotalPoints)
	}

	second := NewCoordinator(WithCache(store))
	sres, err := second.Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	sstats := second.Stats()
	if sstats.SimulatedPoints != 0 {
		t.Fatalf("warm run simulated %d points; a cached run must simulate none", sstats.SimulatedPoints)
	}
	if sstats.CachedPoints != sstats.TotalPoints {
		t.Fatalf("warm run served %d/%d points from cache", sstats.CachedPoints, sstats.TotalPoints)
	}
	if sstats.Shards != 0 {
		t.Fatalf("warm run planned %d shards for zero missing cells", sstats.Shards)
	}
	if a, b := resultFingerprint(t, fres), resultFingerprint(t, sres); a != b {
		t.Fatalf("cached run diverged from simulated run:\n  cold %s\n  warm %s", a, b)
	}

	// A name-only variant must hit the same cache entries: the key is
	// semantic, not textual.
	renamed := sp
	renamed.Name = "same physics, different title"
	third := NewCoordinator(WithCache(store))
	if _, err := third.Run(context.Background(), renamed); err != nil {
		t.Fatal(err)
	}
	if st := third.Stats(); st.SimulatedPoints != 0 {
		t.Fatalf("renamed spec missed the cache: %d points re-simulated", st.SimulatedPoints)
	}
}

// TestCoordinatorRecordReplayBypassesCache checks that record/replay
// specs never read or write the store: a path does not content-address
// the trace behind it.
func TestCoordinatorRecordReplayBypassesCache(t *testing.T) {
	store := testStore(t)
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	rec := NewSpec(
		WithName("record run"),
		WithTopology(4, 4),
		WithArbiters("PIM1"),
		WithPatterns("random"),
		WithRates(0.02),
		WithCycles(200),
		WithSeed(4),
		WithRecord(trace),
	)
	if _, err := NewCoordinator(WithCache(store)).Run(context.Background(), rec); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("record spec wrote %d cache entries; record/replay must bypass the cache", len(entries))
	}

	replay := NewSpec(
		WithName("replay run"),
		WithTopology(4, 4),
		WithArbiters("PIM1"),
		WithReplay(trace),
		WithCycles(200),
		WithSeed(4),
	)
	co := NewCoordinator(WithCache(store))
	if _, err := co.Run(context.Background(), replay); err != nil {
		t.Fatal(err)
	}
	if st := co.Stats(); st.CachedPoints != 0 || st.SimulatedPoints != st.TotalPoints {
		t.Fatalf("replay spec touched the cache: %+v", st)
	}
	entries, err = os.ReadDir(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("replay spec wrote %d cache entries", len(entries))
	}
}

// resumeSpec is small enough to kill deterministically: 1 series,
// 3 points, 2 replications — 6 simulations, whole points of 2.
func resumeSpec() Spec {
	return NewSpec(
		WithName("kill and resume"),
		WithTopology(4, 4),
		WithArbiters("SPAA-rotary"),
		WithPatterns("random"),
		WithRates(0.02, 0.04, 0.06),
		WithCycles(300),
		WithSeed(21),
		WithReplications(2),
	)
}

// killAfter runs the spec on a serial coordinator, cancelling the
// context after the nth point-done event, and returns the coordinator.
func killAfter(t *testing.T, store *cache.Store, sp Spec, n int) *Coordinator {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	var co *Coordinator
	co = NewCoordinator(
		WithCache(store),
		WithCoordinatorWorkers(1),
		WithCoordinatorEventSink(func(e Event) {
			if e.Type == EventPointDone {
				seen++
				if seen == n {
					cancel()
				}
			}
		}),
	)
	res, err := co.Run(ctx, sp)
	if err != context.Canceled {
		t.Fatalf("killed run returned %v, want context.Canceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("killed run must return a partial result")
	}
	return co
}

// TestCoordinatorKillAndResume is the resumability satellite: kill a
// sweep mid-grid, assert the cache holds only whole completed points —
// each strictly decodable — then resume and assert the merged output is
// byte-identical to an uninterrupted run, with only the missing points
// simulated.
func TestCoordinatorKillAndResume(t *testing.T) {
	sp := resumeSpec()
	key := mustHash(t, sp)

	// The uninterrupted truth, via the monolithic Runner.
	mono, err := NewRunner(WithWorkers(1)).Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	want := resultFingerprint(t, mono)

	store := testStore(t)
	// Cancel after the 2nd simulation: point 0's two replications have
	// both finished (a whole point), and with one worker and one shard
	// per point, no other shard has started.
	killed := killAfter(t, store, sp, 2)
	if st := killed.Stats(); st.SimulatedPoints != 1 {
		t.Fatalf("killed run simulated %d points, want exactly 1", st.SimulatedPoints)
	}
	cells, err := store.Cells(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0] != (cache.Cell{Series: 0, Point: 0}) {
		t.Fatalf("cache holds %v, want exactly cell (0,0)", cells)
	}
	for _, cl := range cells {
		data, ok, err := store.Get(key, cl)
		if err != nil || !ok {
			t.Fatalf("cached cell %v unreadable: ok=%v err=%v", cl, ok, err)
		}
		var pt ResultPoint
		if err := strictDecoder(data).Decode(&pt); err != nil {
			t.Fatalf("cached cell %v is not a whole, strictly decodable point: %v", cl, err)
		}
	}

	// Resume: only the two missing points may simulate, and the merged
	// stream must match the uninterrupted run byte for byte.
	resumed := NewCoordinator(WithCache(store), WithCoordinatorWorkers(1))
	res, err := resumed.Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	st := resumed.Stats()
	if st.CachedPoints != 1 || st.SimulatedPoints != 2 {
		t.Fatalf("resume stats %+v, want 1 cached + 2 simulated", st)
	}
	if got := resultFingerprint(t, res); got != want {
		t.Fatalf("resumed run diverged from uninterrupted run:\n  got  %s\n  want %s", got, want)
	}
}

// TestCoordinatorKillMidPointPersistsNothing cancels after a single
// replication — half a point. The cache must stay empty: points persist
// whole or not at all.
func TestCoordinatorKillMidPointPersistsNothing(t *testing.T) {
	sp := resumeSpec()
	store := testStore(t)
	killed := killAfter(t, store, sp, 1)
	if st := killed.Stats(); st.SimulatedPoints != 0 {
		t.Fatalf("mid-point kill persisted %d points, want 0", st.SimulatedPoints)
	}
	cells, err := store.Cells(mustHash(t, sp))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Fatalf("cache holds %v after a mid-point kill; points must persist whole or not at all", cells)
	}
}

// TestCoordinatorCorruptCacheCellFails overwrites a cached cell with
// garbage: the next run must fail loudly instead of merging a torn cache
// into a plausible-looking result.
func TestCoordinatorCorruptCacheCellFails(t *testing.T) {
	store := testStore(t)
	sp := fingerprintStandaloneSpec()
	if _, err := NewCoordinator(WithCache(store)).Run(context.Background(), sp); err != nil {
		t.Fatal(err)
	}
	key := mustHash(t, sp)
	if err := store.Put(key, cache.Cell{Series: 0, Point: 0}, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(WithCache(store)).Run(context.Background(), sp); err == nil {
		t.Fatal("corrupt cache cell was served silently")
	}
}

// TestCoordinatorFigureMatrixMatchesRunner sweeps the full canned figure
// matrix at reduced fidelity through both execution paths and demands
// byte identity — the whole-surface version of the golden-fingerprint
// gate.
func TestCoordinatorFigureMatrixMatchesRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure matrix is too slow for -short")
	}
	o := Options{Quick: true, CyclesOverride: 600, MaxRatePoints: 2, Seed: 1}
	specs, err := FigureSpecs("all", o)
	if err != nil {
		t.Fatal(err)
	}
	store := testStore(t)
	for _, sp := range specs {
		mono, err := NewRunner().Run(context.Background(), sp)
		if err != nil {
			t.Fatalf("%s: runner: %v", sp.Name, err)
		}
		co := NewCoordinator(WithCache(store), WithShards(4))
		cres, err := co.Run(context.Background(), sp)
		if err != nil {
			t.Fatalf("%s: coordinator: %v", sp.Name, err)
		}
		if a, b := resultFingerprint(t, mono), resultFingerprint(t, cres); a != b {
			t.Errorf("%s: coordinated result diverged from monolithic:\n  runner      %s\n  coordinator %s",
				sp.Name, a, b)
		}
	}
	// And the whole matrix again, warm: zero simulations.
	for _, sp := range specs {
		co := NewCoordinator(WithCache(store))
		if _, err := co.Run(context.Background(), sp); err != nil {
			t.Fatalf("%s: warm: %v", sp.Name, err)
		}
		if st := co.Stats(); st.SimulatedPoints != 0 {
			t.Errorf("%s: warm run simulated %d points", sp.Name, st.SimulatedPoints)
		}
	}
}

package experiment

// shard_test.go pins the shard planner/merger contract: the plan covers
// the grid exactly once with valid sub-Specs, and sharded execution
// merged back together is byte-identical to the monolithic Runner — the
// PR-4 golden fingerprints included, so the determinism guarantee the
// whole sweep service leans on is enforced at the same bar as the
// zero-allocation refactor was.

import (
	"context"
	"testing"
)

// runShards executes every shard Spec serially and returns the results.
func runShards(t testing.TB, shards []Shard) []*Result {
	t.Helper()
	runner := NewRunner(WithWorkers(1))
	results := make([]*Result, len(shards))
	for i, sh := range shards {
		res, err := runner.Run(context.Background(), sh.Spec)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		results[i] = res
	}
	return results
}

func shardPlanSpecs() map[string]Spec {
	return map[string]Spec{
		"timing matrix": NewSpec(
			WithName("shard plan timing"),
			WithTopology(4, 4),
			WithArbiters("SPAA-rotary", "PIM1"),
			WithPatterns("random", "tornado"),
			WithProcesses("bernoulli", "onoff"),
			WithRates(0.01, 0.02, 0.03),
			WithCycles(400),
			WithSeed(5),
		),
		"standalone": NewSpec(
			WithName("shard plan standalone"),
			WithArbiters("MCM", "PIM1", "SPAA-base"),
			WithStandaloneSweep(AxisLoad, 0.2, 0.6, 1.0),
			WithCycles(200),
			WithSeed(2),
		),
		"replicated": NewSpec(
			WithName("shard plan replicated"),
			WithTopology(4, 4),
			WithArbiters("PIM1"),
			WithPatterns("random"),
			WithRates(0.02, 0.04),
			WithCycles(300),
			WithSeed(9),
			WithReplications(2),
		),
	}
}

// TestPlanShardsCoversGridOnce checks, for every spec shape and a range
// of shard counts, that the union of shard cells is exactly the grid,
// no cell repeats, no shard spans two series, and every shard-Spec both
// validates and expands to exactly its cells.
func TestPlanShardsCoversGridOnce(t *testing.T) {
	for name, sp := range shardPlanSpecs() {
		a := sp.axes()
		total := a.seriesCount() * a.points
		for _, want := range []int{0, 1, 2, 3, 7, 100} {
			shards, err := PlanShards(sp, want)
			if err != nil {
				t.Fatalf("%s/want=%d: %v", name, want, err)
			}
			seen := make(map[ShardCell]bool)
			for si, sh := range shards {
				if err := sh.Spec.Validate(); err != nil {
					t.Fatalf("%s/want=%d: shard %d spec invalid: %v", name, want, si, err)
				}
				if len(sh.Cells) == 0 {
					t.Fatalf("%s/want=%d: shard %d is empty", name, want, si)
				}
				for _, c := range sh.Cells {
					if c.Series != sh.Cells[0].Series {
						t.Fatalf("%s/want=%d: shard %d spans series %d and %d",
							name, want, si, sh.Cells[0].Series, c.Series)
					}
					if seen[c] {
						t.Fatalf("%s/want=%d: cell %+v covered twice", name, want, c)
					}
					seen[c] = true
				}
				pl, err := sh.Spec.expand()
				if err != nil {
					t.Fatalf("%s/want=%d: shard %d expand: %v", name, want, si, err)
				}
				if got := len(pl.jobs); got != len(sh.Cells)*pl.reps {
					t.Fatalf("%s/want=%d: shard %d expands to %d jobs, want %d cells x %d reps",
						name, want, si, got, len(sh.Cells), pl.reps)
				}
			}
			if len(seen) != total {
				t.Fatalf("%s/want=%d: %d cells covered, grid has %d", name, want, len(seen), total)
			}
			if want > 0 && len(shards) > total {
				t.Fatalf("%s/want=%d: %d shards for %d cells", name, want, len(shards), total)
			}
		}
	}
}

// TestPlanShardsDeterministic re-plans the same spec and checks the
// shard→cell mapping is identical — the property resume leans on.
func TestPlanShardsDeterministic(t *testing.T) {
	sp := shardPlanSpecs()["timing matrix"]
	first, err := PlanShards(sp, 5)
	if err != nil {
		t.Fatal(err)
	}
	second, err := PlanShards(sp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("plan sizes differ: %d != %d", len(first), len(second))
	}
	for i := range first {
		if len(first[i].Cells) != len(second[i].Cells) {
			t.Fatalf("shard %d sizes differ", i)
		}
		for j := range first[i].Cells {
			if first[i].Cells[j] != second[i].Cells[j] {
				t.Fatalf("shard %d cell %d differs: %+v != %+v",
					i, j, first[i].Cells[j], second[i].Cells[j])
			}
		}
	}
}

// mergedFingerprint shards the spec, runs every shard, merges, and
// fingerprints the merged Result with the same hashing the golden tests
// use.
func mergedFingerprint(t *testing.T, sp Spec, shards int) string {
	t.Helper()
	plan, err := PlanShards(sp, shards)
	if err != nil {
		t.Fatal(err)
	}
	if shards > 1 && len(plan) < 2 {
		t.Fatalf("expected a real decomposition, got %d shard(s)", len(plan))
	}
	merged, err := MergeShardResults(sp, plan, runShards(t, plan))
	if err != nil {
		t.Fatal(err)
	}
	if merged.Partial {
		t.Fatal("merged result marked Partial after a complete run")
	}
	return resultFingerprint(t, merged)
}

// TestShardedExecutionMatchesGoldenFingerprints is the acceptance gate:
// shard-and-merge must reproduce the PR-4 golden fingerprints byte for
// byte, at several decompositions including one-shard-per-point.
func TestShardedExecutionMatchesGoldenFingerprints(t *testing.T) {
	for _, shards := range []int{0, 2, 5} {
		if got := mergedFingerprint(t, fingerprintTimingSpec(), shards); got != goldenTimingFingerprint {
			t.Errorf("shards=%d: timing fingerprint diverged:\n  got  %s\n  want %s",
				shards, got, goldenTimingFingerprint)
		}
		if got := mergedFingerprint(t, fingerprintStandaloneSpec(), shards); got != goldenStandaloneFingerprint {
			t.Errorf("shards=%d: standalone fingerprint diverged:\n  got  %s\n  want %s",
				shards, got, goldenStandaloneFingerprint)
		}
	}
}

// TestShardedReplicationMatchesMonolithic covers the replication path:
// per-point Replication statistics must survive shard-and-merge intact.
func TestShardedReplicationMatchesMonolithic(t *testing.T) {
	sp := shardPlanSpecs()["replicated"]
	mono, err := NewRunner(WithWorkers(1)).Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	want := resultFingerprint(t, mono)
	if got := mergedFingerprint(t, sp, 0); got != want {
		t.Fatalf("replicated shard-and-merge diverged from monolithic:\n  got  %s\n  want %s", got, want)
	}
}

// TestMergeShardResultsPartial drops one shard's result and checks the
// merged Result keeps the monolithic partial shape: contiguous per-series
// prefixes and the Partial flag.
func TestMergeShardResultsPartial(t *testing.T) {
	sp := fingerprintStandaloneSpec()
	plan, err := PlanShards(sp, 0) // one shard per cell
	if err != nil {
		t.Fatal(err)
	}
	results := runShards(t, plan)
	// Drop the middle cell of series 0 (cells are series-major; the
	// standalone fingerprint spec has 2 points per series).
	dropped := -1
	for i, sh := range plan {
		if sh.Cells[0] == (ShardCell{Series: 0, Point: 0}) {
			dropped = i
		}
	}
	if dropped < 0 {
		t.Fatal("cell (0,0) not found in plan")
	}
	results[dropped] = nil
	merged, err := MergeShardResults(sp, plan, results)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Partial {
		t.Fatal("missing cell did not mark the merge Partial")
	}
	if got := len(merged.Series[0].Points); got != 0 {
		t.Fatalf("series 0 kept %d points after losing point 0; the prefix cut must drop them all", got)
	}
	for si := 1; si < len(merged.Series); si++ {
		if got := len(merged.Series[si].Points); got != 2 {
			t.Fatalf("series %d has %d points, want its full 2", si, got)
		}
	}
}

func TestMergeShardResultsShapeMismatch(t *testing.T) {
	sp := fingerprintStandaloneSpec()
	plan, err := PlanShards(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShardResults(sp, plan, make([]*Result, len(plan)-1)); err == nil {
		t.Fatal("mismatched result count accepted")
	}
}

// BenchmarkShardMerge times the merger alone — plan once, run the shards
// once, then merge repeatedly. This is the coordinator's per-sweep
// overhead beyond the simulations themselves; cmd/sweep -bench's
// coordinated entry gates the end-to-end points/sec against the
// committed baseline.
func BenchmarkShardMerge(b *testing.B) {
	sp := fingerprintTimingSpec()
	plan, err := PlanShards(sp, 0)
	if err != nil {
		b.Fatal(err)
	}
	results := runShards(b, plan)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged, err := MergeShardResults(sp, plan, results)
		if err != nil {
			b.Fatal(err)
		}
		if merged.Partial {
			b.Fatal("partial merge")
		}
	}
}

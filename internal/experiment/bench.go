package experiment

// bench.go is the first-class benchmark subsystem: a fixed suite of
// Spec-driven workloads (executed through the ordinary Runner, so the
// benchmark measures exactly the code paths the figures use) timed and
// alloc-counted into a machine-readable BenchReport. cmd/sweep -bench
// writes the report as BENCH_<n>.json; the committed baseline plus
// BenchReport.Compare form the CI regression gate.
//
// Cross-machine comparability: raw ns/simulated-cycle tracks the host's
// single-thread speed, so every report embeds a calibration measurement —
// the nanoseconds per iteration of a fixed RNG-summing loop — and Compare
// judges the calibration-normalized cost (ns per cycle divided by ns per
// calibration iteration). Allocation counts are machine-independent and
// compared directly.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"alpha21364/internal/core"
	"alpha21364/internal/sim"
)

// BenchVersion is the BENCH_*.json schema version.
const BenchVersion = 10

// BenchEntry is one benchmark workload: a Spec plus the simulated-cycle
// accounting needed to normalize its cost.
type BenchEntry struct {
	Name string
	Spec Spec
	// Shards > 0 runs the entry through the sharded Coordinator instead
	// of the monolithic Runner, so the plan/merge overhead of the sweep
	// service is part of the gated cost.
	Shards int
	// Arbiter, when non-empty, makes this an arbitration microbenchmark:
	// the named kernel's Arbitrate over a fixed matrix ladder, no
	// simulation around it. Spec and Shards are ignored; the entry's
	// NSPerSimCycle is nanoseconds per arbitration.
	Arbiter string
}

// BenchSuite returns the fixed benchmark workloads:
//
//   - figure8-saturated: the standalone matching model at the Figure 8
//     saturated-load point, all five Figure 8 algorithms;
//   - timing-8x8-saturated: the timing model deep in saturation (the
//     regime the paper's Figures 10-11 comparisons depend on);
//   - timing-16x16-saturated and timing-16x16-saturated-shards4: a large
//     saturated torus run monolithic and spatially sharded into 4 row
//     bands, so the spatial-sharding machinery's cost (and, on multi-core
//     machines, its speedup) is tracked per machine in the baseline;
//   - timing-4x4-matrix: a small arbiter x rate matrix, the shape of the
//     sweep workloads;
//   - coordinated-4x4-matrix: the same matrix through the sharded
//     Coordinator (no cache), so shard planning and merging stay within
//     tolerance of the monolithic path;
//   - arbitrate-<kind>: one entry per arbitration kernel, timing bare
//     Arbitrate calls over a deterministic matrix ladder (the same
//     workload as internal/core's BenchmarkArbitrate), so a kernel
//     regression is attributed to its algorithm rather than smeared
//     across whole-simulation entries.
func BenchSuite() []BenchEntry {
	entries := benchSimEntries()
	for k := core.Kind(0); k < core.NumKinds; k++ {
		entries = append(entries, BenchEntry{
			Name:    "arbitrate-" + k.String(),
			Arbiter: k.String(),
		})
	}
	return entries
}

func benchSimEntries() []BenchEntry {
	return []BenchEntry{
		{
			Name: "figure8-saturated",
			Spec: NewSpec(
				WithName("bench figure8 saturated"),
				WithArbiters("MCM", "WFA-base", "PIM", "PIM1", "SPAA-base"),
				WithStandaloneSweep(AxisLoad, 1.0),
				WithCycles(1000),
				WithSeed(1),
			),
		},
		{
			Name: "timing-8x8-saturated",
			Spec: NewSpec(
				WithName("bench timing 8x8 saturated"),
				WithTopology(8, 8),
				WithArbiters("SPAA-rotary"),
				WithRates(0.09),
				WithMaxOutstanding(64),
				WithCycles(4000),
				WithSeed(1),
			),
		},
		{
			Name: "timing-16x16-saturated",
			Spec: NewSpec(
				WithName("bench timing 16x16 saturated"),
				WithTopology(16, 16),
				WithArbiters("SPAA-rotary"),
				WithRates(0.09),
				WithMaxOutstanding(64),
				WithCycles(1500),
				WithSeed(1),
			),
		},
		{
			Name: "timing-16x16-saturated-shards4",
			Spec: NewSpec(
				WithName("bench timing 16x16 saturated shards4"),
				WithTopology(16, 16),
				WithArbiters("SPAA-rotary"),
				WithRates(0.09),
				WithMaxOutstanding(64),
				WithCycles(1500),
				WithSeed(1),
				WithTorusShards(4),
			),
		},
		{
			Name: "timing-4x4-matrix",
			Spec: NewSpec(
				WithName("bench timing 4x4 matrix"),
				WithTopology(4, 4),
				WithArbiters("SPAA-rotary", "PIM1"),
				WithRates(0.01, 0.03),
				WithCycles(2000),
				WithSeed(1),
			),
		},
		{
			Name: "coordinated-4x4-matrix",
			Spec: NewSpec(
				WithName("bench coordinated 4x4 matrix"),
				WithTopology(4, 4),
				WithArbiters("SPAA-rotary", "PIM1"),
				WithRates(0.01, 0.03),
				WithCycles(2000),
				WithSeed(1),
			),
			Shards: 8,
		},
	}
}

// BenchEntryResult is one measured workload.
type BenchEntryResult struct {
	Name string `json:"name"`
	// Points is the number of simulation points the entry ran.
	Points int `json:"points"`
	// SimCycles is the total simulated cycles across those points
	// (router cycles for timing entries, model iterations for standalone).
	SimCycles int64 `json:"sim_cycles"`
	ElapsedNS int64 `json:"elapsed_ns"`
	// NSPerSimCycle is the headline cost metric: wall nanoseconds per
	// simulated cycle.
	NSPerSimCycle float64 `json:"ns_per_sim_cycle"`
	// PointsPerSec is simulation points completed per wall second.
	PointsPerSec float64 `json:"points_per_sec"`
	// AllocsPerOp is heap allocations per simulation point.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// AllocsPerCycle is heap allocations per simulated cycle — the
	// zero-allocation hot path's figure of merit.
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

// BenchReport is the BENCH_*.json document.
type BenchReport struct {
	Version int `json:"version"`
	// CalibrationNS is the nanoseconds per iteration of a fixed
	// CPU-bound loop on the measuring machine; Compare divides
	// NSPerSimCycle by it so reports from different machines can be
	// compared.
	CalibrationNS float64            `json:"calibration_ns"`
	GoVersion     string             `json:"go_version,omitempty"`
	Entries       []BenchEntryResult `json:"entries"`
}

// calibrationIters is the iteration count of the calibration loop; at
// ~1-2 ns/iter it costs a few tens of milliseconds.
const calibrationIters = 20_000_000

// calibrate times the fixed RNG-summing loop.
func calibrate() float64 {
	rng := sim.NewRNG(1)
	var sum uint64
	start := time.Now()
	for i := 0; i < calibrationIters; i++ {
		sum += rng.Uint64()
	}
	elapsed := time.Since(start)
	if sum == 0 { // keep the loop observable
		return 0
	}
	return float64(elapsed.Nanoseconds()) / calibrationIters
}

// arbitrateBenchCalls is the Arbitrate call count per microbench entry;
// at a few hundred nanoseconds per call an entry costs tens of
// milliseconds.
const arbitrateBenchCalls = 100_000

// arbitrateBenchMatrices prebuilds the deterministic density ladder of
// router-shaped request matrices the microbench entries share (the same
// construction as internal/core's BenchmarkArbitrate).
func arbitrateBenchMatrices() []*core.Matrix {
	rng := sim.NewRNG(0xB157)
	ms := make([]*core.Matrix, 32)
	for i := range ms {
		m := core.NewRouterMatrix()
		density := float64(i%8+1) / 8
		key := uint64(1)
		for r := 0; r < m.Rows; r++ {
			for c := 0; c < m.Cols; c++ {
				if rng.Bernoulli(density) {
					m.Set(r, c, int64(rng.Intn(1000)), key, 0)
					key++
				}
			}
		}
		ms[i] = m
	}
	return ms
}

// runArbitrateBench times bare Arbitrate calls for one kernel over the
// shared matrix ladder. ns/arbitration lands in NSPerSimCycle (SimCycles
// is the call count), and the allocation accounting runs after a warmup
// pass so the scratch-sizing allocations are excluded — steady state must
// stay at zero.
func runArbitrateBench(kindName string, ms []*core.Matrix) (BenchEntryResult, error) {
	kind, err := core.ParseKind(kindName)
	if err != nil {
		return BenchEntryResult{}, err
	}
	arb := core.New(kind, sim.NewRNG(2))
	for _, m := range ms {
		arb.Arbitrate(m)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < arbitrateBenchCalls; i++ {
		arb.Arbitrate(ms[i%len(ms)])
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	mallocs := int64(after.Mallocs - before.Mallocs)
	r := BenchEntryResult{
		Name:          "arbitrate-" + kind.String(),
		Points:        len(ms),
		SimCycles:     arbitrateBenchCalls,
		ElapsedNS:     elapsed.Nanoseconds(),
		NSPerSimCycle: float64(elapsed.Nanoseconds()) / arbitrateBenchCalls,
		AllocsPerOp:   float64(mallocs) / float64(len(ms)),
	}
	r.AllocsPerCycle = float64(mallocs) / arbitrateBenchCalls
	if elapsed > 0 {
		r.PointsPerSec = float64(arbitrateBenchCalls) / elapsed.Seconds()
	}
	return r, nil
}

// entryCycles derives the simulated-cycle total of a spec's expansion.
func entryCycles(sp Spec, points int) int64 {
	perPoint := int64(0)
	switch {
	case sp.Mode == ModeStandalone && sp.Standalone != nil:
		perPoint = int64(sp.Standalone.Cycles)
	case sp.Timing != nil:
		perPoint = int64(sp.Timing.Cycles)
	}
	return perPoint * int64(points)
}

// RunBench executes the benchmark suite serially (a single Runner worker,
// so wall time and allocation counts measure one simulation at a time)
// and returns the report.
func RunBench(ctx context.Context) (*BenchReport, error) {
	report := &BenchReport{
		Version:       BenchVersion,
		CalibrationNS: calibrate(),
		GoVersion:     runtime.Version(),
	}
	runner := NewRunner(WithWorkers(1))
	var arbMatrices []*core.Matrix
	for _, entry := range BenchSuite() {
		if entry.Arbiter != "" {
			if arbMatrices == nil {
				arbMatrices = arbitrateBenchMatrices()
			}
			r, err := runArbitrateBench(entry.Arbiter, arbMatrices)
			if err != nil {
				return nil, fmt.Errorf("bench %s: %w", entry.Name, err)
			}
			report.Entries = append(report.Entries, r)
			continue
		}
		if err := entry.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("bench %s: %w", entry.Name, err)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		var res *Result
		var err error
		if entry.Shards > 0 {
			res, err = NewCoordinator(
				WithCoordinatorWorkers(1), WithShards(entry.Shards),
			).Run(ctx, entry.Spec)
		} else {
			res, err = runner.Run(ctx, entry.Spec)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", entry.Name, err)
		}
		points := 0
		for _, s := range res.Series {
			points += len(s.Points)
		}
		cycles := entryCycles(entry.Spec, points)
		mallocs := int64(after.Mallocs - before.Mallocs)
		r := BenchEntryResult{
			Name:      entry.Name,
			Points:    points,
			SimCycles: cycles,
			ElapsedNS: elapsed.Nanoseconds(),
		}
		if cycles > 0 {
			r.NSPerSimCycle = float64(r.ElapsedNS) / float64(cycles)
			r.AllocsPerCycle = float64(mallocs) / float64(cycles)
		}
		if points > 0 {
			r.AllocsPerOp = float64(mallocs) / float64(points)
		}
		if elapsed > 0 {
			r.PointsPerSec = float64(points) / elapsed.Seconds()
		}
		report.Entries = append(report.Entries, r)
	}
	return report, nil
}

// WriteFile saves the report as an indented JSON document.
func (r *BenchReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("experiment: encode bench report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchFile loads a BENCH_*.json report.
func ReadBenchFile(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Version != BenchVersion {
		return nil, fmt.Errorf("%s: unsupported bench version %d (this build reads version %d)",
			path, r.Version, BenchVersion)
	}
	return &r, nil
}

// normalizedCost is the machine-comparable cost of an entry: simulated-
// cycle cost in units of the calibration loop's iteration cost.
func normalizedCost(rep *BenchReport, e BenchEntryResult) float64 {
	if rep.CalibrationNS <= 0 {
		return e.NSPerSimCycle
	}
	return e.NSPerSimCycle / rep.CalibrationNS
}

// Compare checks this (new) report against a baseline, in the spirit of
// benchstat: for every entry present in both, the calibration-normalized
// ns/simulated-cycle and the allocation counts must not regress by more
// than tolerance (e.g. 0.15 for 15%). It returns one human-readable line
// per regression; an empty slice means the gate passes. Allocation
// comparisons ignore sub-1/op noise so a zero-allocation baseline does
// not fail on a stray runtime allocation.
func (r *BenchReport) Compare(baseline *BenchReport, tolerance float64) []string {
	var regressions []string
	for _, e := range r.Entries {
		var base *BenchEntryResult
		for i := range baseline.Entries {
			if baseline.Entries[i].Name == e.Name {
				base = &baseline.Entries[i]
				break
			}
		}
		if base == nil {
			continue // new entry: nothing to regress against
		}
		oldCost := normalizedCost(baseline, *base)
		newCost := normalizedCost(r, e)
		if oldCost > 0 && newCost > oldCost*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: ns/simulated-cycle regressed %.1f%% (normalized %.3f -> %.3f; raw %.1f -> %.1f ns)",
				e.Name, 100*(newCost/oldCost-1), oldCost, newCost,
				base.NSPerSimCycle, e.NSPerSimCycle))
		}
		if e.AllocsPerOp > base.AllocsPerOp*(1+tolerance)+1 {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op regressed %.1f -> %.1f",
				e.Name, base.AllocsPerOp, e.AllocsPerOp))
		}
	}
	return regressions
}

package experiment

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"alpha21364/internal/core"
	"alpha21364/internal/traffic"
)

// runnerOpts returns small-scale options with the given worker count.
func runnerOpts(workers int) Options {
	return Options{Quick: true, CyclesOverride: 1500, MaxRatePoints: 2, Seed: 3, Workers: workers}
}

// TestParallelSerialIdentical is the runner's core guarantee: a sweep
// fanned across eight workers produces byte-identical results to the same
// sweep run serially. Run with -race, this also exercises the pool for
// data races.
func TestParallelSerialIdentical(t *testing.T) {
	serial, err := Figure10Saturation(runnerOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Figure10Saturation(runnerOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("panel diverged between serial and 8-worker runs:\n%+v\n%+v", serial, parallel)
	}
	if s, p := serial.Table().CSV(), parallel.Table().CSV(); s != p {
		t.Errorf("panel CSV not byte-identical:\n%s\n%s", s, p)
	}

	f8serial, err := Figure8(runnerOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	f8parallel, err := Figure8(runnerOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f8serial, f8parallel) {
		t.Errorf("Figure8Result diverged between serial and 8-worker runs:\n%+v\n%+v", f8serial, f8parallel)
	}

	f9serial, err := Figure9(runnerOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	f9parallel, err := Figure9(runnerOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f9serial, f9parallel) {
		t.Errorf("Figure9Result diverged between serial and 8-worker runs:\n%+v\n%+v", f9serial, f9parallel)
	}
}

// TestSweepOptsMatchesSweep pins the public Sweep entry point (default
// worker-per-CPU fan-out) to an explicitly serial SweepOpts run.
func TestSweepOptsMatchesSweep(t *testing.T) {
	s := TimingSetup{
		Width: 4, Height: 4, Kind: core.KindSPAABase, Pattern: traffic.Uniform,
		Cycles: 2000, Seed: 5,
	}
	rates := []float64{0.01, 0.03, 0.05}
	def, err := Sweep(s, rates)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := SweepOpts(Options{Workers: 1}, s, rates)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, serial) {
		t.Errorf("Sweep and serial SweepOpts diverged:\n%+v\n%+v", def, serial)
	}
}

func TestWorkerCount(t *testing.T) {
	if got := (Options{}).workerCount(); got < 1 {
		t.Errorf("default workerCount = %d, want >= 1", got)
	}
	if got := (Options{Workers: 1}).workerCount(); got != 1 {
		t.Errorf("Workers 1 -> %d", got)
	}
	if got := (Options{Workers: -3}).workerCount(); got != 1 {
		t.Errorf("Workers -3 -> %d, want serial", got)
	}
	if got := (Options{Workers: 5}).workerCount(); got != 5 {
		t.Errorf("Workers 5 -> %d", got)
	}
}

// TestRunJobsOrderAndError checks order-stable assembly and the serial
// error contract: the reported failure is the lowest-indexed failing job,
// and every result before it is valid.
func TestRunJobsOrderAndError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		jobs := make([]jobSpec[int], 9)
		for i := range jobs {
			jobs[i] = jobSpec[int]{
				label: fmt.Sprintf("job %d", i),
				run: func() (int, error) {
					if i == 5 || i == 7 {
						return 0, fmt.Errorf("job %d: %w", i, boom)
					}
					return i * i, nil
				},
			}
		}
		results, firstBad, err := runJobs(Options{Workers: workers}, jobs)
		if firstBad != 5 {
			t.Errorf("workers=%d: firstBad = %d, want 5", workers, firstBad)
		}
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v", workers, err)
		}
		for i := 0; i < firstBad; i++ {
			if results[i] != i*i {
				t.Errorf("workers=%d: results[%d] = %d, want %d", workers, i, results[i], i*i)
			}
		}
	}
}

// TestRunJobsProgress checks that the progress callback fires exactly once
// per job with a monotonically increasing done count.
func TestRunJobsProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls int
		var labels []string
		o := Options{Workers: workers, Progress: func(done, total int, label string) {
			calls++
			if done != calls {
				t.Errorf("workers=%d: done = %d on call %d", workers, done, calls)
			}
			if total != 6 {
				t.Errorf("workers=%d: total = %d, want 6", workers, total)
			}
			labels = append(labels, label)
		}}
		jobs := make([]jobSpec[int], 6)
		for i := range jobs {
			jobs[i] = jobSpec[int]{label: fmt.Sprintf("j%d", i), run: func() (int, error) { return i, nil }}
		}
		if _, _, err := runJobs(o, jobs); err != nil {
			t.Fatal(err)
		}
		if calls != 6 {
			t.Errorf("workers=%d: %d progress calls, want 6", workers, calls)
		}
		seen := map[string]bool{}
		for _, l := range labels {
			if seen[l] {
				t.Errorf("workers=%d: label %q reported twice", workers, l)
			}
			seen[l] = true
		}
	}
}

// TestRunPanelErrorPreservesCompleteSeries checks the partial-result
// contract on failure: algorithms that finished before the failing one
// keep their series, the failing algorithm is named in the error.
func TestRunPanelErrorPreservesCompleteSeries(t *testing.T) {
	base := TimingSetup{
		Width: 4, Height: 4, Pattern: traffic.Uniform, Cycles: 500, Seed: 1,
	}
	// KindMCM is rejected by the timing model, so the second sweep fails.
	kinds := []core.Kind{core.KindSPAABase, core.KindMCM, core.KindWFABase}
	p, err := runPanel("error panel", Options{Workers: 4}, base, kinds, []float64{0.01, 0.02})
	if err == nil {
		t.Fatal("runPanel accepted a standalone-only algorithm")
	}
	if len(p.Series) != 1 || p.Series[0].Label != "SPAA-base" {
		t.Errorf("partial panel = %+v", p.Series)
	}
	if got := err.Error(); !strings.Contains(got, "error panel") || !strings.Contains(got, "MCM") {
		t.Errorf("error %q does not name the panel and failing algorithm", got)
	}
}

// TestNestedFanOutHonorsWorkerBound mimics CollectDataset's shape — an
// unlimited top-level fan-out whose jobs each run their own leaf sweeps —
// and asserts the shared limiter keeps the number of concurrently
// executing leaf jobs within Options.Workers.
func TestNestedFanOutHonorsWorkerBound(t *testing.T) {
	o := Options{Workers: 2}.limited()
	var cur, peak atomic.Int32
	leafJobs := func() []jobSpec[int] {
		jobs := make([]jobSpec[int], 8)
		for i := range jobs {
			jobs[i] = jobSpec[int]{label: "leaf", run: func() (int, error) {
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
				return 0, nil
			}}
		}
		return jobs
	}
	top := o
	top.sem = nil
	top.Workers = 4
	topJobs := make([]jobSpec[struct{}], 4)
	for i := range topJobs {
		topJobs[i] = jobSpec[struct{}]{label: "figure", run: func() (struct{}, error) {
			_, _, err := runJobs(o, leafJobs())
			return struct{}{}, err
		}}
	}
	if _, _, err := runJobs(top, topJobs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrent leaf jobs = %d, want <= 2", p)
	}
}

// TestRunJobsFailFast checks that jobs after an observed failure are
// never started.
func TestRunJobsFailFast(t *testing.T) {
	var executed atomic.Int32
	makeJobs := func(n, failAt int) []jobSpec[int] {
		jobs := make([]jobSpec[int], n)
		for i := range jobs {
			jobs[i] = jobSpec[int]{label: "j", run: func() (int, error) {
				executed.Add(1)
				if i == failAt {
					return 0, errors.New("fail")
				}
				time.Sleep(time.Millisecond)
				return i, nil
			}}
		}
		return jobs
	}

	executed.Store(0)
	if _, firstBad, err := runJobs(Options{Workers: 1}, makeJobs(10, 2)); err == nil || firstBad != 2 {
		t.Fatalf("serial: firstBad = %d, err = %v", firstBad, err)
	}
	if got := executed.Load(); got != 3 {
		t.Errorf("serial executed %d jobs, want 3 (0..2)", got)
	}

	executed.Store(0)
	if _, firstBad, err := runJobs(Options{Workers: 4}, makeJobs(50, 0)); err == nil || firstBad != 0 {
		t.Fatalf("parallel: firstBad = %d, err = %v", firstBad, err)
	}
	// The dispatcher stops handing out work once the failure is observed.
	// Exactly how many in-flight jobs still run depends on scheduling, so
	// only assert the regression-revealing bound: not all of them.
	if got := executed.Load(); got == 50 {
		t.Error("parallel ran all 50 jobs despite job 0 failing immediately")
	}
}

// TestSharedAbortStopsSiblingSweeps covers the CollectDataset fail-fast
// path: once any sweep sharing a limited Options fails, sibling sweeps
// refuse to start new jobs and report errAborted.
func TestSharedAbortStopsSiblingSweeps(t *testing.T) {
	o := Options{Workers: 2}.limited()
	if _, _, err := runJobs(o, []jobSpec[int]{
		{label: "bad", run: func() (int, error) { return 0, errors.New("root cause") }},
	}); err == nil {
		t.Fatal("failing sweep reported no error")
	}
	var executed atomic.Int32
	jobs := make([]jobSpec[int], 5)
	for i := range jobs {
		jobs[i] = jobSpec[int]{label: "sibling", run: func() (int, error) { executed.Add(1); return i, nil }}
	}
	_, firstBad, err := runJobs(o, jobs)
	if got := executed.Load(); got != 0 {
		t.Errorf("sibling sweep started %d jobs after the shared abort", got)
	}
	if firstBad != 0 || !errors.Is(err, errAborted) {
		t.Errorf("sibling sweep: firstBad = %d, err = %v", firstBad, err)
	}
}

// TestAbortedSweepPrefersRealCause checks the error CollectDataset
// surfaces: when one job's failure aborts its siblings, runJobs reports
// the underlying failure, not the errAborted sentinel of whichever
// aborted job happens to have the lowest index.
func TestAbortedSweepPrefersRealCause(t *testing.T) {
	rootCause := errors.New("root cause")
	gate := make(chan struct{})
	jobs := []jobSpec[int]{
		// Mimics a figure job whose nested sweep was aborted by the
		// sibling below; it blocks until the sibling has failed.
		{label: "aborted figure", run: func() (int, error) {
			<-gate
			return 0, fmt.Errorf("panel: %w", errAborted)
		}},
		{label: "failing figure", run: func() (int, error) {
			defer close(gate)
			return 0, rootCause
		}},
	}
	_, firstBad, err := runJobs(Options{Workers: 2}, jobs)
	if firstBad != 0 {
		t.Errorf("firstBad = %d, want 0", firstBad)
	}
	if !errors.Is(err, rootCause) {
		t.Errorf("err = %v, want the root cause", err)
	}
}

// TestCollectDatasetParallelMatchesSerial runs the whole evaluation
// pipeline both ways at tiny scale and requires identical datasets.
func TestCollectDatasetParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset collection is expensive")
	}
	o := Options{Quick: true, CyclesOverride: 1000, MaxRatePoints: 2, Seed: 2}
	o.Workers = 1
	serial, err := CollectDataset(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	parallel, err := CollectDataset(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("dataset diverged between serial and 8-worker collection")
	}
}

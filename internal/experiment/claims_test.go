package experiment

import (
	"strings"
	"testing"
)

// TestVerifyClaimsQuick runs the whole claims pipeline at reduced scale.
// The quantitative thresholds are calibrated for full runs, so this test
// only requires the pipeline to work and the structural claims to hold;
// the full verification is run by `cmd/sweep -verify` and recorded in
// EXPERIMENTS.md.
func TestVerifyClaimsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("claims dataset is expensive")
	}
	o := Options{Quick: true, CyclesOverride: 4000, MaxRatePoints: 3, Seed: 1}
	d, err := CollectDataset(o)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := Verify(d)
	if len(verdicts) < 12 {
		t.Fatalf("only %d claims encoded", len(verdicts))
	}
	ids := map[string]bool{}
	for _, v := range verdicts {
		if v.ID == "" || v.Paper == "" || v.Measured == "" {
			t.Errorf("incomplete verdict: %+v", v)
		}
		if ids[v.ID] {
			t.Errorf("duplicate claim id %q", v.ID)
		}
		ids[v.ID] = true
	}
	// Claims that must hold even at this tiny scale.
	mustHold := map[string]bool{
		"fig8-mcm-near-seven":         true,
		"fig9-gap-vanishes":           true,
		"fig10-spaa-low-load-latency": true,
	}
	for _, v := range verdicts {
		if mustHold[v.ID] && !v.OK {
			t.Errorf("claim %s failed even at reduced scale: %s", v.ID, v.Measured)
		}
	}
	// Rendering paths.
	table := VerdictTable(verdicts).Format()
	if !strings.Contains(table, "fig8-mcm-vs-spaa") {
		t.Error("table missing claim row")
	}
	md := VerdictMarkdown(verdicts)
	if !strings.Contains(md, "| 1 |") || !strings.Contains(md, "Status") {
		t.Error("markdown table malformed")
	}
}

package experiment

import (
	"fmt"
	"strings"
	"sync"
)

// Dataset bundles every figure's results so the paper's cross-figure
// claims can be evaluated on one consistent set of runs.
type Dataset struct {
	Fig8     Figure8Result
	Fig9     Figure9Result
	Fig10    []Panel // 4x4 random, 8x8 random, 8x8 bit-reversal, 8x8 shuffle
	Fig10Sat Panel   // 8x8 random, 64 outstanding, all five algorithms
	Fig11a   Panel
	Fig11b   Panel
	Fig11c   Panel
}

// CollectDataset reruns the full evaluation. The seven figures are
// themselves runner jobs, so their sweeps overlap instead of running one
// figure at a time; each job writes a distinct Dataset field, which keeps
// assembly deterministic whatever order the figures finish in. A shared
// limiter spans the nested fan-out, so Options.Workers still bounds the
// total number of concurrent simulations.
func CollectDataset(o Options) (*Dataset, error) {
	o = o.limited()
	// Each overlapping figure has its own progress tracker; share one
	// mutex across them so the documented one-call-at-a-time guarantee
	// survives the nesting. (done/total stay per-sweep counts.)
	if o.Progress != nil {
		var mu sync.Mutex
		inner := o.Progress
		o.Progress = func(done, total int, label string) {
			mu.Lock()
			defer mu.Unlock()
			inner(done, total, label)
		}
	}
	d := &Dataset{}
	jobs := []jobSpec[struct{}]{
		{"figure 8", func() (z struct{}, err error) { d.Fig8, err = Figure8(o); return z, err }},
		{"figure 9", func() (z struct{}, err error) { d.Fig9, err = Figure9(o); return z, err }},
		{"figure 10", func() (z struct{}, err error) { d.Fig10, err = Figure10(o); return z, err }},
		{"figure 10 saturation", func() (z struct{}, err error) { d.Fig10Sat, err = Figure10Saturation(o); return z, err }},
		{"figure 11a", func() (z struct{}, err error) { d.Fig11a, err = Figure11a(o); return z, err }},
		{"figure 11b", func() (z struct{}, err error) { d.Fig11b, err = Figure11b(o); return z, err }},
		{"figure 11c", func() (z struct{}, err error) { d.Fig11c, err = Figure11c(o); return z, err }},
	}
	// The figure jobs only fan out further: they must not hold simulation
	// slots themselves (their nested sweeps acquire the shared limiter),
	// and per-simulation progress comes from those sweeps, so this level
	// neither limits nor reports.
	top := o
	top.sem = nil
	top.Progress = nil
	top.Workers = len(jobs)
	if _, _, err := runJobs(top, jobs); err != nil {
		return nil, err
	}
	return d, nil
}

// Verdict is one claim's evaluation.
type Verdict struct {
	ID       string // short identifier
	Paper    string // the paper's statement
	Measured string // what this reproduction measured
	OK       bool
}

// series finds a curve by label within a panel.
func (p Panel) series(label string) (int, bool) {
	for i, s := range p.Series {
		if s.Label == label {
			return i, true
		}
	}
	return 0, false
}

// saturationOf returns the peak throughput of a labeled series.
func (p Panel) saturationOf(label string) float64 {
	i, ok := p.series(label)
	if !ok {
		return 0
	}
	return p.Series[i].SaturationThroughput()
}

// finalOf returns the highest-load throughput of a labeled series.
func (p Panel) finalOf(label string) float64 {
	i, ok := p.series(label)
	if !ok {
		return 0
	}
	return p.Series[i].FinalThroughput()
}

// curve returns a figure-8 curve's values by label.
func (r Figure8Result) curve(label string) []float64 {
	return findCurve(r.Curves, label)
}

// curve returns a figure-9 curve's values by label.
func (r Figure9Result) curve(label string) []float64 {
	return findCurve(r.Curves, label)
}

func findCurve(curves []StandaloneCurve, label string) []float64 {
	for _, c := range curves {
		if c.Label == label {
			return c.Values
		}
	}
	return nil
}

func last(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return v[len(v)-1]
}

// Verify evaluates every encoded claim of the paper against the dataset.
// Each verdict's Measured string is self-contained so the results table in
// EXPERIMENTS.md can be generated mechanically.
func Verify(d *Dataset) []Verdict {
	var out []Verdict
	add := func(id, paper, measured string, ok bool) {
		out = append(out, Verdict{ID: id, Paper: paper, Measured: measured, OK: ok})
	}

	// ---- Figure 8 ----
	mcm := last(d.Fig8.curve("MCM"))
	wfa := last(d.Fig8.curve("WFA-base"))
	pim := last(d.Fig8.curve("PIM"))
	pim1 := last(d.Fig8.curve("PIM1"))
	spaa := last(d.Fig8.curve("SPAA-base"))
	add("fig8-top-three",
		"the number of matches found by WFA and PIM are almost close to MCM's (§5.1)",
		fmt.Sprintf("MCM %.2f, WFA %.2f, PIM %.2f matches/cycle at saturation", mcm, wfa, pim),
		within(wfa/mcm, 0.95, 1.06) && within(pim/mcm, 0.95, 1.06))
	add("fig8-mcm-vs-spaa",
		"at the MCM saturation load, MCM/WFA/PIM find 36% more matches than SPAA",
		fmt.Sprintf("MCM/SPAA = %.2f (paper 1.36)", mcm/spaa),
		within(mcm/spaa, 1.2, 1.6))
	add("fig8-pim1-vs-spaa",
		"PIM1's number of matches is 14% higher than SPAA's",
		fmt.Sprintf("PIM1/SPAA = %.2f (paper 1.14)", pim1/spaa),
		within(pim1/spaa, 1.05, 1.45))
	add("fig8-mcm-near-seven",
		"the number of matches found by MCM is usually very close to the maximum, i.e., seven",
		fmt.Sprintf("MCM saturates at %.2f of 7", mcm),
		mcm > 6.2)

	// ---- Figure 9 ----
	g0 := d.Fig9.curve("MCM")[0] - d.Fig9.curve("SPAA-base")[0]
	g75 := last(d.Fig9.curve("MCM")) - last(d.Fig9.curve("SPAA-base"))
	add("fig9-gap-vanishes",
		"the difference between the algorithms completely disappears when 75% of the output ports are occupied",
		fmt.Sprintf("MCM-SPAA gap: %.2f at 0%% occupancy vs %.2f at 75%%", g0, g75),
		g75 < 0.25*g0)

	// ---- Figure 10: 4x4 random ----
	p4 := d.Fig10[0]
	add("fig10-4x4-spaa-wins",
		"with random traffic SPAA-base provides about 11% higher throughput than PIM1 and WFA-base (4x4, ~83 ns)",
		fmt.Sprintf("saturation throughput: SPAA-base %.3f vs WFA-base %.3f (+%.0f%%) and PIM1 %.3f (+%.0f%%)",
			p4.saturationOf("SPAA-base"), p4.saturationOf("WFA-base"),
			100*(p4.saturationOf("SPAA-base")/p4.saturationOf("WFA-base")-1),
			p4.saturationOf("PIM1"),
			100*(p4.saturationOf("SPAA-base")/p4.saturationOf("PIM1")-1)),
		p4.saturationOf("SPAA-base") > 1.02*p4.saturationOf("WFA-base") &&
			p4.saturationOf("SPAA-base") > 1.02*p4.saturationOf("PIM1"))
	add("fig10-4x4-no-collapse",
		"the 4x4 network does not show saturation behavior",
		fmt.Sprintf("SPAA-base final/peak = %.2f, WFA-base final/peak = %.2f",
			p4.finalOf("SPAA-base")/p4.saturationOf("SPAA-base"),
			p4.finalOf("WFA-base")/p4.saturationOf("WFA-base")),
		p4.finalOf("SPAA-base") > 0.9*p4.saturationOf("SPAA-base") &&
			p4.finalOf("WFA-base") > 0.9*p4.saturationOf("WFA-base"))

	// ---- Figure 10: 8x8 random ----
	p8 := d.Fig10[1]
	add("fig10-8x8-spaa-wins",
		"in the 8x8 network SPAA-base provides about 24% higher throughput than PIM1 and WFA-base (~122 ns)",
		fmt.Sprintf("saturation throughput: SPAA-base %.3f vs WFA-base %.3f (+%.0f%%) and PIM1 %.3f (+%.0f%%)",
			p8.saturationOf("SPAA-base"), p8.saturationOf("WFA-base"),
			100*(p8.saturationOf("SPAA-base")/p8.saturationOf("WFA-base")-1),
			p8.saturationOf("PIM1"),
			100*(p8.saturationOf("SPAA-base")/p8.saturationOf("PIM1")-1)),
		p8.saturationOf("SPAA-base") > 1.02*p8.saturationOf("WFA-base") &&
			p8.saturationOf("SPAA-base") > 1.02*p8.saturationOf("PIM1"))
	add("fig10-spaa-low-load-latency",
		"SPAA's shorter pipeline gives it lower latency before saturation (3 vs 4 cycles per hop)",
		fmt.Sprintf("lightest-load latency: SPAA-base %.1f ns vs WFA-base %.1f ns vs PIM1 %.1f ns",
			firstLatency(p8, "SPAA-base"), firstLatency(p8, "WFA-base"), firstLatency(p8, "PIM1")),
		firstLatency(p8, "SPAA-base") < firstLatency(p8, "WFA-base") &&
			firstLatency(p8, "SPAA-base") < firstLatency(p8, "PIM1"))

	// ---- Saturation companion (the paper's 8x8 collapse claims) ----
	ps := d.Fig10Sat
	add("fig10-rotary-spaa",
		"SPAA-rotary improves throughput by 43% over SPAA-base beyond saturation (~280 ns)",
		fmt.Sprintf("final throughput: SPAA-rotary %.3f vs SPAA-base %.3f (%.1fx; 64 outstanding)",
			ps.finalOf("SPAA-rotary"), ps.finalOf("SPAA-base"),
			ps.finalOf("SPAA-rotary")/ps.finalOf("SPAA-base")),
		ps.finalOf("SPAA-rotary") > 1.3*ps.finalOf("SPAA-base"))
	add("fig10-rotary-wfa",
		"WFA-rotary improves throughput by 16% over WFA-base beyond saturation (~280 ns)",
		fmt.Sprintf("final throughput: WFA-rotary %.3f vs WFA-base %.3f (%.1fx; 64 outstanding)",
			ps.finalOf("WFA-rotary"), ps.finalOf("WFA-base"),
			ps.finalOf("WFA-rotary")/ps.finalOf("WFA-base")),
		ps.finalOf("WFA-rotary") > 1.15*ps.finalOf("WFA-base"))
	add("fig10-rotary-holds",
		"WFA-rotary's and SPAA-rotary's delivered throughputs continue to increase past the base algorithms' saturation point",
		fmt.Sprintf("rotary final/peak: SPAA %.2f, WFA %.2f (base: %.2f, %.2f)",
			ps.finalOf("SPAA-rotary")/ps.saturationOf("SPAA-rotary"),
			ps.finalOf("WFA-rotary")/ps.saturationOf("WFA-rotary"),
			ps.finalOf("SPAA-base")/ps.saturationOf("SPAA-base"),
			ps.finalOf("WFA-base")/ps.saturationOf("WFA-base")),
		ps.finalOf("SPAA-rotary") > 0.9*ps.saturationOf("SPAA-rotary") &&
			ps.finalOf("WFA-rotary") > 0.9*ps.saturationOf("WFA-rotary"))

	// ---- Figure 11a: 2x pipeline ----
	add("fig11a-spaa-dominates",
		"with a 2x-deep, 2x-fast pipeline SPAA-rotary provides greater than 60% higher throughput than PIM1 and WFA-rotary (~100 ns)",
		fmt.Sprintf("saturation throughput: SPAA-rotary %.3f vs WFA-rotary %.3f (+%.0f%%) and PIM1 %.3f (+%.0f%%)",
			d.Fig11a.saturationOf("SPAA-rotary"), d.Fig11a.saturationOf("WFA-rotary"),
			100*(d.Fig11a.saturationOf("SPAA-rotary")/d.Fig11a.saturationOf("WFA-rotary")-1),
			d.Fig11a.saturationOf("PIM1"),
			100*(d.Fig11a.saturationOf("SPAA-rotary")/d.Fig11a.saturationOf("PIM1")-1)),
		d.Fig11a.saturationOf("SPAA-rotary") > 1.05*d.Fig11a.saturationOf("WFA-rotary") &&
			d.Fig11a.saturationOf("SPAA-rotary") > 1.05*d.Fig11a.saturationOf("PIM1"))

	// ---- Figure 11b: 64 outstanding ----
	add("fig11b-spaa-wins",
		"even at 64 outstanding misses SPAA-rotary provides roughly 13% higher throughput than WFA-rotary (~200 ns)",
		fmt.Sprintf("saturation throughput: SPAA-rotary %.3f vs WFA-rotary %.3f (+%.0f%%)",
			d.Fig11b.saturationOf("SPAA-rotary"), d.Fig11b.saturationOf("WFA-rotary"),
			100*(d.Fig11b.saturationOf("SPAA-rotary")/d.Fig11b.saturationOf("WFA-rotary")-1)),
		d.Fig11b.saturationOf("SPAA-rotary") > 1.0*d.Fig11b.saturationOf("WFA-rotary"))

	// ---- Figure 11c: 12x12 ----
	add("fig11c-spaa-wins",
		"in a 12x12 network SPAA-rotary provides an 18% higher throughput than WFA-rotary (~200 ns)",
		fmt.Sprintf("saturation throughput: SPAA-rotary %.3f vs WFA-rotary %.3f (+%.0f%%)",
			d.Fig11c.saturationOf("SPAA-rotary"), d.Fig11c.saturationOf("WFA-rotary"),
			100*(d.Fig11c.saturationOf("SPAA-rotary")/d.Fig11c.saturationOf("WFA-rotary")-1)),
		d.Fig11c.saturationOf("SPAA-rotary") > 1.0*d.Fig11c.saturationOf("WFA-rotary"))

	// ---- §4.3 calibration ----
	add("calibration-zero-load",
		"the minimum per-packet latency in a 4x4 network with uniform traffic is about 45 ns",
		fmt.Sprintf("lightest-load average latency: %.1f ns (4x4 random, SPAA-base)",
			firstLatency(p4, "SPAA-base")),
		within(firstLatency(p4, "SPAA-base"), 40, 60))

	return out
}

func within(v, lo, hi float64) bool { return v >= lo && v <= hi }

func firstLatency(p Panel, label string) float64 {
	i, ok := p.series(label)
	if !ok || len(p.Series[i].Points) == 0 {
		return 0
	}
	return p.Series[i].Points[0].AvgLatencyNS
}

// VerdictTable formats verdicts for terminal output.
func VerdictTable(vs []Verdict) Table {
	t := Table{
		Title:   "Paper claims vs this reproduction",
		Columns: []string{"claim", "status", "measured"},
	}
	for _, v := range vs {
		status := "REPRODUCED"
		if !v.OK {
			status = "DEVIATES"
		}
		t.Rows = append(t.Rows, []string{v.ID, status, v.Measured})
	}
	return t
}

// VerdictMarkdown renders the verdicts as the EXPERIMENTS.md results table.
func VerdictMarkdown(vs []Verdict) string {
	var b strings.Builder
	b.WriteString("| # | Paper claim | Measured here | Status |\n|---|---|---|---|\n")
	for i, v := range vs {
		status := "reproduced"
		if !v.OK {
			status = "**deviates**"
		}
		fmt.Fprintf(&b, "| %d | %s | %s | %s |\n", i+1, v.Paper, v.Measured, status)
	}
	return b.String()
}

package experiment

// executor.go is the execution seam of the sweep service: a
// ShardExecutor turns one planned Shard into its Result. The Coordinator
// plans, caches, and merges; *where* a shard simulates is entirely the
// executor's business. localExecutor — the default — runs the shard
// in-process through an ordinary serial Runner, exactly the path the
// Coordinator inlined before the seam existed. internal/fleet implements
// the same interface over HTTP/JSONL against remote sweepd workers, with
// retries and reassignment hidden behind the attempts count, so local
// pool and remote fleet are interchangeable backends with identical
// byte-level output.

import "context"

// ShardExecutor executes one shard-Spec and returns its Result.
//
// The contract mirrors Runner.Run: on success the Result holds exactly
// one point per shard cell, in cell order; on failure or cancellation
// the Result may be nil (nothing completed) or Partial with a contiguous
// prefix of completed points — every point present must be a whole,
// trustworthy measurement, because the Coordinator persists it to the
// cache. sink receives EventPointDone events as simulations finish
// (serialization is the caller's concern; the Coordinator wraps sink in
// its own mutex). attempts reports how many executions were started for
// the shard — 1 for a single clean run, more when the executor retried
// or reassigned it — and must be >= 1 whenever any execution began.
type ShardExecutor interface {
	ExecuteShard(ctx context.Context, sh Shard, sink func(Event)) (res *Result, attempts int, err error)
}

// localExecutor is the in-process backend: each shard runs serially
// through its own Runner in the calling goroutine (shard-level fan-out
// is the Coordinator's worker pool). It never retries — a local failure
// is deterministic, so a second attempt would fail identically.
type localExecutor struct{}

func (localExecutor) ExecuteShard(ctx context.Context, sh Shard, sink func(Event)) (*Result, int, error) {
	res, err := (&Runner{opts: Options{Workers: 1}, sink: sink}).Run(ctx, sh.Spec)
	return res, 1, err
}

package experiment

// executor_test.go pins the seams PR 8 carved for the worker fleet: the
// ShardExecutor attempt accounting on the Coordinator, Shard.Tail's
// "re-run only the missing suffix" re-planning, and the incremental
// ResultDecoder's salvage behavior on truncated and error-bearing
// streams.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"testing"
)

func tailTestSpec() Spec {
	return NewSpec(
		WithName("tail test"),
		WithTopology(4, 4),
		WithArbiters("PIM1"),
		WithPatterns("random"),
		WithRates(0.02, 0.04, 0.06),
		WithCycles(300),
		WithSeed(6),
	)
}

// TestShardTailReplansSuffix checks Tail's shape contract: the sub-shard
// covers exactly the remaining cells, and running it reproduces the
// exact points the whole shard's suffix would hold.
func TestShardTailReplansSuffix(t *testing.T) {
	shards, err := PlanShards(tailTestSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sh := shards[0]
	if len(sh.Cells) != 3 {
		t.Fatalf("plan gave %d cells, want 3", len(sh.Cells))
	}

	tail := sh.Tail(1)
	if len(tail.Cells) != 2 || tail.Cells[0] != sh.Cells[1] || tail.Cells[1] != sh.Cells[2] {
		t.Fatalf("Tail(1).Cells = %v, want %v", tail.Cells, sh.Cells[1:])
	}
	if got := tail.Spec.Workload.Rates; !reflect.DeepEqual(got, []float64{0.04, 0.06}) {
		t.Fatalf("Tail(1) rates = %v, want the last two", got)
	}

	run := func(sp Spec) []ResultPoint {
		res, err := NewRunner(WithWorkers(1)).Run(context.Background(), sp)
		if err != nil {
			t.Fatal(err)
		}
		return res.Series[0].Points
	}
	whole := run(sh.Spec)
	if got := run(tail.Spec); !reflect.DeepEqual(got, whole[1:]) {
		t.Error("tail run diverges from the whole run's suffix; prefix+tail concatenation would not be byte-identical")
	}

	if got := sh.Tail(0); !reflect.DeepEqual(got, sh) {
		t.Error("Tail(0) must return the shard unchanged")
	}
	if got := sh.Tail(3); len(got.Cells) != 0 {
		t.Errorf("Tail(len) = %d cells, want none", len(got.Cells))
	}
}

// TestResultDecoderSalvagesTruncatedStream cuts a valid stream mid-line:
// the decoder must surface an error while keeping every whole point
// decoded before the cut.
func TestResultDecoderSalvagesTruncatedStream(t *testing.T) {
	res, err := NewRunner(WithWorkers(1)).Run(context.Background(), tailTestSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(buf.Bytes(), []byte("\n"))
	// header + series + first point + half of the second point line.
	cut := append([]byte{}, bytes.Join(lines[:3], nil)...)
	cut = append(cut, lines[3][:len(lines[3])/2]...)

	dec := NewResultDecoder(bytes.NewReader(cut))
	var derr error
	for derr == nil {
		derr = dec.Next()
	}
	if derr == io.EOF {
		t.Fatal("truncated stream decoded cleanly")
	}
	got := dec.Result()
	if got == nil || len(got.Series) != 1 || len(got.Series[0].Points) != 1 {
		t.Fatalf("salvage = %+v, want exactly the one whole point", got)
	}
	if !reflect.DeepEqual(got.Series[0].Points[0], res.Series[0].Points[0]) {
		t.Error("salvaged point differs from the original")
	}
}

// TestResultDecoderSurfacesInBandError checks {"type":"error"} records
// come back as *StreamError with the prior records intact.
func TestResultDecoderSurfacesInBandError(t *testing.T) {
	res, err := NewRunner(WithWorkers(1)).Run(context.Background(), tailTestSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`{"type":"error","error":"boom"}` + "\n")

	dec := NewResultDecoder(&buf)
	var derr error
	for derr == nil {
		derr = dec.Next()
	}
	var se *StreamError
	if !errors.As(derr, &se) || se.Msg != "boom" {
		t.Fatalf("err = %v, want a StreamError carrying %q", derr, "boom")
	}
	if got := dec.Result(); got == nil || len(got.Series[0].Points) != 3 {
		t.Fatal("records before the error line were lost")
	}
}

// retryingExec wraps the local executor, failing each shard's first
// attempt so the Coordinator's attempt/retry counters have something to
// count.
type retryingExec struct{ calls map[string]int }

func (e retryingExec) ExecuteShard(ctx context.Context, sh Shard, sink func(Event)) (*Result, int, error) {
	res, _, err := localExecutor{}.ExecuteShard(ctx, sh, sink)
	return res, 2, err // pretend every shard needed one retry
}

// TestCoordinatorCountsExecutorAttempts pins the stats plumbing: the
// executor reports attempts per shard, the Coordinator sums attempts and
// retries across the run.
func TestCoordinatorCountsExecutorAttempts(t *testing.T) {
	co := NewCoordinator(
		WithCoordinatorWorkers(1),
		WithShardExecutor(retryingExec{}),
	)
	if _, err := co.Run(context.Background(), tailTestSpec()); err != nil {
		t.Fatal(err)
	}
	st := co.Stats()
	if st.Shards != 3 || st.ShardAttempts != 6 || st.ShardRetries != 3 {
		t.Errorf("stats = %d shards, %d attempts, %d retries; want 3, 6, 3",
			st.Shards, st.ShardAttempts, st.ShardRetries)
	}
}

// TestLocalExecutorReportsSingleAttempt keeps the default path honest:
// local execution is one attempt per shard, zero retries.
func TestLocalExecutorReportsSingleAttempt(t *testing.T) {
	co := NewCoordinator(WithCoordinatorWorkers(1))
	if _, err := co.Run(context.Background(), tailTestSpec()); err != nil {
		t.Fatal(err)
	}
	st := co.Stats()
	if st.ShardAttempts != st.Shards || st.ShardRetries != 0 {
		t.Errorf("local executor stats = %d attempts over %d shards, %d retries; want attempts == shards and 0 retries",
			st.ShardAttempts, st.Shards, st.ShardRetries)
	}
}

package experiment

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// updateGolden regenerates the testdata golden files:
//
//	go test ./internal/experiment -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestSpecGoldenRoundTrip pins the serialized form of a canned figure
// spec and checks the round-trip guarantee: marshal → parse → marshal is
// byte-identical and structurally lossless.
func TestSpecGoldenRoundTrip(t *testing.T) {
	o := Options{Quick: true, Seed: 1}
	for _, fig := range []string{"8", "10s"} {
		specs, err := FigureSpecs(fig, o)
		if err != nil {
			t.Fatal(err)
		}
		spec := specs[0]
		data, err := EncodeSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "figure"+fig+".spec.json", data)

		parsed, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("figure %s: reparse: %v", fig, err)
		}
		if !reflect.DeepEqual(parsed, spec) {
			t.Errorf("figure %s: parse is lossy:\ngot  %+v\nwant %+v", fig, parsed, spec)
		}
		again, err := EncodeSpec(parsed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, data) {
			t.Errorf("figure %s: marshal→parse→marshal is not byte-identical", fig)
		}
	}
}

// TestFigureSpecsCoverEveryFigure checks the canned registry is total
// and every spec it returns validates.
func TestFigureSpecsCoverEveryFigure(t *testing.T) {
	o := Options{Quick: true, Seed: 1}
	all, err := FigureSpecs("all", o)
	if err != nil {
		t.Fatal(err)
	}
	// 8, 9, 10 (four panels), 10s, 11a, 11b, 11c.
	if len(all) != 10 {
		t.Fatalf("FigureSpecs(all) returned %d specs, want 10", len(all))
	}
	for _, sp := range all {
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", sp.Name, err)
		}
	}
	if _, err := FigureSpecs("nope", o); err == nil {
		t.Error("unknown figure name was accepted")
	}
}

func validTimingSpec() Spec {
	return NewSpec(
		WithName("t"),
		WithTopology(4, 4),
		WithArbiters("SPAA-rotary"),
		WithRates(0.02),
		WithCycles(1000),
		WithSeed(1),
	)
}

func TestSpecValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"wrong version", func(s *Spec) { s.Version = 2 }, "version"},
		{"no arbiters", func(s *Spec) { s.Arbiters = nil }, "arbiter"},
		{"bad arbiter", func(s *Spec) { s.Arbiters = []string{"nope"} }, "nope"},
		{"bad mode", func(s *Spec) { s.Mode = "quantum" }, "mode"},
		{"no topology", func(s *Spec) { s.Topology = nil }, "topology"},
		{"tiny topology", func(s *Spec) { s.Topology.Width = 1 }, ">= 2"},
		{"no timing", func(s *Spec) { s.Timing = nil }, "cycle"},
		{"no cycles", func(s *Spec) { s.Timing.Cycles = 0 }, "cycle"},
		{"no workload", func(s *Spec) { s.Workload = nil }, "workload"},
		{"no rates", func(s *Spec) { s.Workload.Rates = nil }, "rate"},
		{"negative rate", func(s *Spec) { s.Workload.Rates = []float64{-0.1} }, "positive"},
		{"bad pattern", func(s *Spec) { s.Workload.Patterns = []string{"zigzag"} }, "zigzag"},
		{"pattern needs pow2", func(s *Spec) {
			s.Topology = &TopologySpec{Width: 5, Height: 3}
			s.Workload.Patterns = []string{"bit-reversal"}
		}, "power-of-two"},
		{"bad process", func(s *Spec) { s.Workload.Processes = []string{"fractal"} }, "fractal"},
		{"bad model", func(s *Spec) { s.Workload.Model = "telepathy" }, "telepathy"},
		{"record on a sweep", func(s *Spec) {
			s.Workload.RecordTo = "x.trace"
			s.Workload.Rates = []float64{0.01, 0.02}
		}, "record_to"},
		{"replay with patterns", func(s *Spec) {
			s.Workload = &WorkloadSpec{ReplayFrom: "x.trace", Patterns: []string{"random"}}
		}, "contradicts patterns"},
		{"replay with rates", func(s *Spec) {
			s.Workload = &WorkloadSpec{ReplayFrom: "x.trace", Rates: []float64{0.01}}
		}, "contradicts rates"},
		{"replay with record", func(s *Spec) {
			s.Workload = &WorkloadSpec{ReplayFrom: "x.trace", RecordTo: "y.trace"}
		}, "record_to"},
		{"standalone section on timing spec", func(s *Spec) {
			s.Standalone = &StandaloneSpec{Cycles: 10, Axis: AxisLoad, Values: []float64{1}}
		}, "standalone section"},
	}
	for _, tc := range cases {
		sp := validTimingSpec()
		tc.mut(&sp)
		err := sp.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestSpecValidateStandalone(t *testing.T) {
	good := NewSpec(
		WithArbiters("MCM", "PIM"),
		WithStandaloneSweep(AxisLoadFraction, 0.5, 1.0),
		WithCycles(100),
		WithSeed(2),
	)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid standalone spec rejected: %v", err)
	}
	// WithCycles/WithSeed after WithStandaloneSweep land in the
	// standalone section.
	if good.Standalone.Cycles != 100 || good.Standalone.Seed != 2 {
		t.Errorf("mode-aware options missed the standalone section: %+v", good.Standalone)
	}
	if good.Timing != nil {
		t.Error("standalone build leaked a timing section")
	}
	// Option order must not matter: cycles/seed applied before the mode
	// switch are migrated into the standalone section by NewSpec.
	reordered := NewSpec(
		WithCycles(100),
		WithSeed(2),
		WithArbiters("MCM", "PIM"),
		WithStandaloneSweep(AxisLoadFraction, 0.5, 1.0),
	)
	if !reflect.DeepEqual(reordered, good) {
		t.Errorf("option order changed the spec:\ngot  %+v\nwant %+v", reordered, good)
	}

	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no section", func(s *Spec) { s.Standalone = nil }, "standalone section"},
		{"no cycles", func(s *Spec) { s.Standalone.Cycles = 0 }, "cycle"},
		{"no values", func(s *Spec) { s.Standalone.Values = nil }, "axis value"},
		{"bad axis", func(s *Spec) { s.Standalone.Axis = "voltage" }, "voltage"},
		{"load with occupancy axis", func(s *Spec) {
			s.Standalone.Axis = AxisLoad
			s.Standalone.Load = 2
		}, "load"},
		{"occupancy out of range", func(s *Spec) { s.Standalone.Occupancy = 1.5 }, "occupancy"},
		{"occupancy axis values out of range", func(s *Spec) {
			s.Standalone.Axis = AxisOccupancy
			s.Standalone.Values = []float64{2}
		}, "within [0, 1]"},
		{"timing sections on standalone", func(s *Spec) {
			s.Topology = &TopologySpec{Width: 4, Height: 4}
		}, "timing sections"},
	}
	for _, tc := range cases {
		sp := NewSpec(
			WithArbiters("MCM"),
			WithStandaloneSweep(AxisLoadFraction, 0.5),
			WithCycles(100),
		)
		tc.mut(&sp)
		err := sp.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseSpecStrict(t *testing.T) {
	good, err := EncodeSpec(validTimingSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpec(good); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	unknownField := bytes.Replace(good, []byte(`"version": 1`), []byte(`"version": 1, "bogus": true`), 1)
	if _, err := ParseSpec(unknownField); err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("unknown field not rejected: %v", err)
	}

	unknownVersion := bytes.Replace(good, []byte(`"version": 1`), []byte(`"version": 99`), 1)
	if _, err := ParseSpec(unknownVersion); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("unknown version not rejected: %v", err)
	}

	trailing := append(append([]byte{}, good...), []byte(`{"version": 1}`)...)
	if _, err := ParseSpec(trailing); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing garbage not rejected: %v", err)
	}

	if _, err := ParseSpec([]byte(`not json`)); err == nil {
		t.Error("non-JSON accepted")
	}
}

func TestParseSpecsArray(t *testing.T) {
	a := validTimingSpec()
	b := NewSpec(
		WithArbiters("MCM"),
		WithStandaloneSweep(AxisLoad, 1.0),
		WithCycles(10),
	)
	data, err := EncodeSpecs([]Spec{a, b})
	if err != nil {
		t.Fatal(err)
	}
	specs, err := ParseSpecs(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || !reflect.DeepEqual(specs[0], a) || !reflect.DeepEqual(specs[1], b) {
		t.Errorf("array round-trip lost data: %+v", specs)
	}
	if _, err := ParseSpecs([]byte("[]")); err == nil {
		t.Error("empty spec array accepted")
	}
	// Single-object form also parses through ParseSpecs.
	one, err := EncodeSpecs([]Spec{a})
	if err != nil {
		t.Fatal(err)
	}
	specs, err = ParseSpecs(one)
	if err != nil || len(specs) != 1 {
		t.Fatalf("single-object ParseSpecs = %v, %v", specs, err)
	}
}

func TestSpecFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "specs.json")
	a := validTimingSpec()
	if err := WriteSpecFile(path, a); err != nil {
		t.Fatal(err)
	}
	specs, err := ReadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || !reflect.DeepEqual(specs[0], a) {
		t.Errorf("file round-trip lost data: %+v", specs)
	}
}

// FuzzSpecParse throws mutated documents at the strict parser: it must
// never panic, and anything it accepts must re-marshal to a canonical
// form that is a fixed point — parsing it and marshaling again yields
// the same bytes. (Struct equality is deliberately not required: JSON
// `[]` decodes to an empty non-nil slice that canonicalizes to absent.)
func FuzzSpecParse(f *testing.F) {
	o := Options{Quick: true, Seed: 1}
	if all, err := FigureSpecs("all", o); err == nil {
		for _, sp := range all {
			if data, err := EncodeSpec(sp); err == nil {
				f.Add(data)
			}
		}
	}
	f.Add([]byte(`{"version":1,"arbiters":["PIM1"],"topology":{"width":4,"height":4},"workload":{"rates":[0.01]},"timing":{"cycles":10}}`))
	f.Add([]byte(`{"version":1,"mode":"standalone","arbiters":["MCM"],"standalone":{"cycles":5,"axis":"load","values":[1]}}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"version":2}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(data)
		if err != nil {
			return
		}
		out, err := EncodeSpec(sp)
		if err != nil {
			t.Fatalf("accepted spec failed to marshal: %v", err)
		}
		again, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("round-tripped spec rejected: %v\n%s", err, out)
		}
		out2, err := EncodeSpec(again)
		if err != nil {
			t.Fatalf("round-tripped spec failed to marshal: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("canonical form is not a fixed point:\nfirst  %s\nsecond %s", out, out2)
		}
	})
}

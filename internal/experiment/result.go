package experiment

// result.go is the stable machine-readable output schema of the
// Scenario/Runner API. A Result embeds the Spec that produced it, one
// series per arbiter (× pattern × process) with properly named latency
// percentiles — fixing the old TimingResult.AvgLatencyP99 misnomer — and
// round-trips through both an indented JSON document (WriteFile) and a
// line-oriented JSONL stream (EncodeJSONL) suitable for appending and
// for artifact pipelines.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"alpha21364/internal/obs"
	"alpha21364/internal/stats"
)

// ResultVersion is the Result schema version this package reads and writes.
const ResultVersion = 1

// Result is the machine-readable outcome of running one Spec.
type Result struct {
	// Version must be ResultVersion.
	Version int `json:"version"`
	// Spec is the exact specification that produced the result.
	Spec Spec `json:"spec"`
	// Partial is true when the run was cancelled or failed before every
	// point completed; each series then holds the contiguous prefix of
	// its points that finished.
	Partial bool `json:"partial,omitempty"`
	// SaturationLoad is the MCM saturation load in packets/port/cycle,
	// set when a standalone spec's axis is saturation-relative.
	SaturationLoad float64 `json:"saturation_load,omitempty"`
	// ElapsedNS is the wall-clock duration of the run; it is the one
	// field excluded from determinism guarantees.
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
	// Series holds one entry per arbiter × pattern × process combination,
	// in spec order.
	Series []ResultSeries `json:"series"`
}

// ResultSeries is one curve: a fixed scenario identity swept over the
// spec's axis (rates, or the standalone axis).
type ResultSeries struct {
	Label   string        `json:"label"`
	Arbiter string        `json:"arbiter"`
	Pattern string        `json:"pattern,omitempty"`
	Process string        `json:"process,omitempty"`
	Model   string        `json:"model,omitempty"`
	Points  []ResultPoint `json:"points"`
}

// ResultPoint is one measurement. Timing runs fill the BNF fields;
// standalone runs fill the matching-model fields.
type ResultPoint struct {
	// Rate is the offered injection rate (timing mode).
	Rate float64 `json:"rate,omitempty"`
	// Throughput is delivered flits per router per nanosecond.
	Throughput float64 `json:"throughput,omitempty"`
	// AvgLatencyNS is the mean packet latency.
	AvgLatencyNS float64 `json:"avg_latency_ns,omitempty"`
	// LatencyP50NS, LatencyP95NS, and LatencyP99NS are the latency
	// quantiles, exact to the tick below 5.46 µs (above that they are
	// histogram-derived upper bounds).
	LatencyP50NS float64 `json:"latency_p50_ns,omitempty"`
	LatencyP95NS float64 `json:"latency_p95_ns,omitempty"`
	LatencyP99NS float64 `json:"latency_p99_ns,omitempty"`
	// Packets is the number of measured deliveries.
	Packets int64 `json:"packets,omitempty"`
	// Completed counts finished transactions.
	Completed int64 `json:"completed,omitempty"`
	// DrainEntries and Collisions are arbitration diagnostics.
	DrainEntries int64 `json:"drain_entries,omitempty"`
	Collisions   int64 `json:"collisions,omitempty"`
	// MeanHops is the average router-to-router hop count.
	MeanHops float64 `json:"mean_hops,omitempty"`
	// EpochFlits and ThroughputCoV are set when the spec tracks epochs.
	EpochFlits    []int64 `json:"epoch_flits,omitempty"`
	ThroughputCoV float64 `json:"throughput_cov,omitempty"`

	// Replication carries the multi-seed statistics of a replicated run
	// (Spec.Replications > 1): the headline fields above are replication
	// 0 — the spec's own seed — and Replication summarizes all seeds.
	Replication *ReplicationStats `json:"replication,omitempty"`

	// Axis is the standalone axis value (load, load fraction, or
	// occupancy, per the spec).
	Axis float64 `json:"axis,omitempty"`
	// MatchesPerCycle is the standalone matching rate.
	MatchesPerCycle float64 `json:"matches_per_cycle,omitempty"`
	OfferedPerCycle float64 `json:"offered_per_cycle,omitempty"`
	DroppedPerCycle float64 `json:"dropped_per_cycle,omitempty"`
	MeanQueueLen    float64 `json:"mean_queue_len,omitempty"`

	// Metrics is the run's telemetry snapshot (Spec.Metrics); nil when
	// telemetry is disabled.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// timingPoint converts a TimingResult to the Result schema.
func timingPoint(r TimingResult) ResultPoint {
	return ResultPoint{
		Rate:          r.OfferedRate,
		Throughput:    r.Throughput,
		AvgLatencyNS:  r.AvgLatencyNS,
		LatencyP50NS:  r.LatencyP50NS,
		LatencyP95NS:  r.LatencyP95NS,
		LatencyP99NS:  r.LatencyP99NS,
		Packets:       r.Packets,
		Completed:     r.Completed,
		DrainEntries:  r.DrainEntries,
		Collisions:    r.Collisions,
		MeanHops:      r.MeanHops,
		EpochFlits:    r.EpochFlits,
		ThroughputCoV: r.ThroughputCoV,
		Metrics:       r.Metrics,
	}
}

// TimingResult converts the point back to the deprecated TimingResult
// shape; the adapters keeping the old entry points alive use it.
func (p ResultPoint) TimingResult() TimingResult {
	r := TimingResult{
		Completed:     p.Completed,
		DrainEntries:  p.DrainEntries,
		Collisions:    p.Collisions,
		MeanHops:      p.MeanHops,
		LatencyP50NS:  p.LatencyP50NS,
		LatencyP95NS:  p.LatencyP95NS,
		LatencyP99NS:  p.LatencyP99NS,
		AvgLatencyP99: p.LatencyP99NS,
		EpochFlits:    p.EpochFlits,
		ThroughputCoV: p.ThroughputCoV,
	}
	r.OfferedRate = p.Rate
	r.Throughput = p.Throughput
	r.AvgLatencyNS = p.AvgLatencyNS
	r.Packets = p.Packets
	return r
}

// statsPoint converts the point to the stats.Point BNF shape.
func (p ResultPoint) statsPoint() stats.Point {
	return stats.Point{
		OfferedRate:  p.Rate,
		Throughput:   p.Throughput,
		AvgLatencyNS: p.AvgLatencyNS,
		Packets:      p.Packets,
	}
}

// Panel converts a timing Result to the chart shape the figure adapters
// and ASCII plotter consume. Every series is included, complete or not
// (Table renders missing cells as "-").
func (r *Result) Panel() Panel {
	p := Panel{Title: r.Spec.Name}
	if r.Spec.Workload != nil {
		p.Rates = append(p.Rates, r.Spec.Workload.Rates...)
	}
	for _, s := range r.Series {
		series := stats.Series{Label: s.Label}
		for _, pt := range s.Points {
			series.Points = append(series.Points, pt.statsPoint())
		}
		p.Series = append(p.Series, series)
	}
	return p
}

// Curves converts a standalone Result to the per-algorithm curve shape
// of Figures 8 and 9.
func (r *Result) Curves() []StandaloneCurve {
	curves := make([]StandaloneCurve, len(r.Series))
	for i, s := range r.Series {
		c := StandaloneCurve{Label: s.Label}
		for _, pt := range s.Points {
			c.Values = append(c.Values, pt.MatchesPerCycle)
		}
		curves[i] = c
	}
	return curves
}

// Table renders the result for terminal/CSV output, choosing the layout
// by spec shape: standalone sweeps and single-axis timing sweeps render
// as panels (axis rows × per-algorithm columns), multi-pattern or
// multi-process matrices as one row per scenario point.
func (r *Result) Table() Table {
	if r.Spec.Mode == ModeStandalone {
		return r.standaloneTable()
	}
	w := r.Spec.Workload
	// Replay results have no rate axis (the trace fixes the injection
	// stream), so the panel layout — whose rows are rates — would render
	// empty; matrices need a row per scenario. Both use the scenario table.
	if w != nil && (w.ReplayFrom != "" || len(w.patterns()) > 1 || len(w.processes()) > 1) {
		return r.ScenarioTable()
	}
	return r.Panel().Table()
}

func (r *Result) standaloneTable() Table {
	title := r.Spec.Name
	if r.SaturationLoad > 0 {
		title = fmt.Sprintf("%s (MCM saturation load = %.2f pkts/port/cycle)", title, r.SaturationLoad)
	}
	t := Table{Title: title}
	axis := AxisLoad
	if r.Spec.Standalone != nil {
		axis = r.Spec.Standalone.Axis
	}
	t.Columns = append(t.Columns, axis)
	for _, s := range r.Series {
		t.Columns = append(t.Columns, s.Label)
	}
	values := []float64(nil)
	if r.Spec.Standalone != nil {
		values = r.Spec.Standalone.Values
	}
	for i, v := range values {
		row := []string{strconv.FormatFloat(v, 'g', -1, 64)}
		for _, s := range r.Series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.2f", s.Points[i].MatchesPerCycle))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ScenarioTable renders one row per scenario point — the matrix layout,
// whatever the spec's shape.
func (r *Result) ScenarioTable() Table {
	t := Table{
		Title: r.Spec.Name,
		Columns: []string{
			"algorithm", "pattern", "process", "rate",
			"tput(flits/router/ns)", "latency(ns)", "p99(ns)", "packets",
		},
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			t.Rows = append(t.Rows, []string{
				s.Arbiter,
				s.Pattern,
				s.Process,
				fmt.Sprintf("%g", p.Rate),
				fmt.Sprintf("%.4f", p.Throughput),
				fmt.Sprintf("%.1f", p.AvgLatencyNS),
				fmt.Sprintf("%.1f", p.LatencyP99NS),
				fmt.Sprintf("%d", p.Packets),
			})
		}
	}
	return t
}

// jsonlHeader is the first line of a JSONL-encoded Result.
type jsonlHeader struct {
	Type           string  `json:"type"` // "result"
	Version        int     `json:"version"`
	Spec           Spec    `json:"spec"`
	Partial        bool    `json:"partial,omitempty"`
	SaturationLoad float64 `json:"saturation_load,omitempty"`
	ElapsedNS      int64   `json:"elapsed_ns,omitempty"`
}

// jsonlSeries starts a series; its points follow, one line each.
type jsonlSeries struct {
	Type    string `json:"type"` // "series"
	Label   string `json:"label"`
	Arbiter string `json:"arbiter"`
	Pattern string `json:"pattern,omitempty"`
	Process string `json:"process,omitempty"`
	Model   string `json:"model,omitempty"`
}

// jsonlPoint is one measurement line.
type jsonlPoint struct {
	Type   string      `json:"type"` // "point"
	Series string      `json:"series"`
	Point  ResultPoint `json:"point"`
}

// EncodeJSONL streams the result as line-delimited JSON: a header line
// carrying the spec, then a series line followed by that series' point
// lines, in order. The format round-trips through DecodeResultJSONL.
func (r *Result) EncodeJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(jsonlHeader{
		Type:           "result",
		Version:        r.Version,
		Spec:           r.Spec,
		Partial:        r.Partial,
		SaturationLoad: r.SaturationLoad,
		ElapsedNS:      r.ElapsedNS,
	}); err != nil {
		return fmt.Errorf("experiment: encode result: %w", err)
	}
	for _, s := range r.Series {
		if err := enc.Encode(jsonlSeries{
			Type: "series", Label: s.Label, Arbiter: s.Arbiter,
			Pattern: s.Pattern, Process: s.Process, Model: s.Model,
		}); err != nil {
			return fmt.Errorf("experiment: encode result: %w", err)
		}
		for _, p := range s.Points {
			if err := enc.Encode(jsonlPoint{Type: "point", Series: s.Label, Point: p}); err != nil {
				return fmt.Errorf("experiment: encode result: %w", err)
			}
		}
	}
	return nil
}

// StreamError is an in-band {"type":"error"} record decoded from a
// Result JSONL stream — the failure channel of sweepd's streaming
// responses, where HTTP status is already committed when a run fails.
// Callers that salvage partial streams (the fleet dispatcher) match it
// with errors.As to distinguish "the worker reported a failure" from
// "the stream itself is corrupt".
type StreamError struct{ Msg string }

func (e *StreamError) Error() string { return "experiment: stream error: " + e.Msg }

// ResultDecoder incrementally decodes a Result JSONL stream, one record
// per Next call. Unlike DecodeResultJSONL it keeps everything decoded so
// far available through Result, so a consumer of an unreliable transport
// can salvage the complete records of a stream that is later truncated
// or corrupted — each point line is a self-contained, strictly decoded
// measurement, trustworthy on its own.
type ResultDecoder struct {
	sc   *bufio.Scanner
	res  *Result
	line int
}

// NewResultDecoder wraps r for incremental decoding.
func NewResultDecoder(r io.Reader) *ResultDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &ResultDecoder{sc: sc}
}

// Result returns the Result assembled from the records decoded so far —
// nil before the header record. The same value grows with each Next.
func (d *ResultDecoder) Result() *Result { return d.res }

// Next decodes the next record into the growing Result. It returns
// io.EOF at the clean end of the stream, a *StreamError for an in-band
// error record, and other errors for corrupt, misordered, or truncated
// records; any non-nil return leaves Result holding every record decoded
// before the failure.
func (d *ResultDecoder) Next() error {
	for d.sc.Scan() {
		d.line++
		raw := d.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		return d.decodeLine(raw)
	}
	if err := d.sc.Err(); err != nil {
		return fmt.Errorf("experiment: decode result: %w", err)
	}
	return io.EOF
}

func (d *ResultDecoder) decodeLine(raw []byte) error {
	line := d.line
	var probe struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return fmt.Errorf("experiment: decode result line %d: %w", line, err)
	}
	switch probe.Type {
	case "result":
		if d.res != nil {
			return fmt.Errorf("experiment: decode result line %d: duplicate header", line)
		}
		var h jsonlHeader
		if err := strictDecoder(raw).Decode(&h); err != nil {
			return fmt.Errorf("experiment: decode result line %d: %w", line, err)
		}
		if h.Version != ResultVersion {
			return fmt.Errorf("experiment: decode result line %d: unsupported version %d (this build reads version %d)",
				line, h.Version, ResultVersion)
		}
		d.res = &Result{
			Version:        h.Version,
			Spec:           h.Spec,
			Partial:        h.Partial,
			SaturationLoad: h.SaturationLoad,
			ElapsedNS:      h.ElapsedNS,
		}
	case "series":
		if d.res == nil {
			return fmt.Errorf("experiment: decode result line %d: series before header", line)
		}
		var s jsonlSeries
		if err := strictDecoder(raw).Decode(&s); err != nil {
			return fmt.Errorf("experiment: decode result line %d: %w", line, err)
		}
		d.res.Series = append(d.res.Series, ResultSeries{
			Label: s.Label, Arbiter: s.Arbiter,
			Pattern: s.Pattern, Process: s.Process, Model: s.Model,
		})
	case "point":
		if d.res == nil || len(d.res.Series) == 0 {
			return fmt.Errorf("experiment: decode result line %d: point before its series", line)
		}
		var p jsonlPoint
		if err := strictDecoder(raw).Decode(&p); err != nil {
			return fmt.Errorf("experiment: decode result line %d: %w", line, err)
		}
		last := &d.res.Series[len(d.res.Series)-1]
		if p.Series != last.Label {
			return fmt.Errorf("experiment: decode result line %d: point for series %q under series %q",
				line, p.Series, last.Label)
		}
		last.Points = append(last.Points, p.Point)
	case "error":
		var el struct {
			Type  string `json:"type"`
			Error string `json:"error"`
		}
		if err := strictDecoder(raw).Decode(&el); err != nil {
			return fmt.Errorf("experiment: decode result line %d: %w", line, err)
		}
		return &StreamError{Msg: el.Error}
	default:
		return fmt.Errorf("experiment: decode result line %d: unknown record type %q", line, probe.Type)
	}
	return nil
}

// DecodeResultJSONL reconstructs a Result from its JSONL stream,
// rejecting unknown record types, unknown fields, missing headers,
// in-band error records, and unsupported versions.
func DecodeResultJSONL(r io.Reader) (*Result, error) {
	d := NewResultDecoder(r)
	for {
		err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if d.res == nil {
		return nil, fmt.Errorf("experiment: decode result: empty stream")
	}
	return d.res, nil
}

// WriteFile saves the result as one indented JSON document.
func (r *Result) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("experiment: encode result: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadResultFile loads a Result document written by WriteFile, with the
// same strictness as the JSONL decoder.
func ReadResultFile(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res Result
	dec := strictDecoder(data)
	if err := dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%s: trailing data after the result document", path)
	}
	if res.Version != ResultVersion {
		return nil, fmt.Errorf("%s: unsupported result version %d (this build reads version %d)",
			path, res.Version, ResultVersion)
	}
	return &res, nil
}

package experiment

// oracle_test.go gates the invariant-oracle integration: checking never
// changes simulation results, and the full canned figure matrix runs
// green with every invariant enabled — the acceptance bar that makes the
// golden fingerprints trustworthy rather than merely stable.

import (
	"context"
	"encoding/json"
	"testing"
)

// seriesBytes serializes just the measured series — the simulation
// output, as opposed to the spec echo.
func seriesBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	data, err := json.Marshal(res.Series)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCheckedRunMatchesUnchecked: enabling the oracle must not perturb a
// single byte of simulation output — the sweeps only read state and the
// hooks only observe.
func TestCheckedRunMatchesUnchecked(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"timing", fingerprintTimingSpec()},
		{"standalone", fingerprintStandaloneSpec()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plain, err := NewRunner(WithWorkers(2)).Run(context.Background(), tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			sp := tc.spec
			sp.Check = true
			checked, err := NewRunner(WithWorkers(2)).Run(context.Background(), sp)
			if err != nil {
				t.Fatalf("invariant violation on a healthy run: %v", err)
			}
			if a, b := seriesBytes(t, plain), seriesBytes(t, checked); string(a) != string(b) {
				t.Errorf("checked run diverged from unchecked:\n%s\nvs\n%s", a, b)
			}
		})
	}
}

// TestFigureMatrixGreenWithCheck runs the full canned figure matrix —
// every panel of Figures 8 through 11c — with all invariants enabled, at
// reduced fidelity. Any conservation, bounds, grant-legality, or
// watchdog violation anywhere in the matrix fails the test.
func TestFigureMatrixGreenWithCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure matrix is too slow for -short")
	}
	o := Options{Quick: true, CyclesOverride: 1000, MaxRatePoints: 2, Seed: 1, Check: true}
	specs, err := FigureSpecs("all", o)
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner()
	for _, sp := range specs {
		if !sp.Check {
			t.Fatalf("%s: Options.Check was not stamped into the canned spec", sp.Name)
		}
		if _, err := runner.Run(context.Background(), sp); err != nil {
			t.Errorf("%s: %v", sp.Name, err)
		}
	}
}

// TestRateMonotonicitySmoke: below saturation, delivered throughput must
// be non-decreasing in the offered rate. A violation would mean the
// closed loop is throttling where it should not.
func TestRateMonotonicitySmoke(t *testing.T) {
	res, err := NewRunner().Run(context.Background(), NewSpec(
		WithName("monotonicity"),
		WithTopology(4, 4),
		WithArbiters("SPAA-rotary"),
		WithRates(0.005, 0.015, 0.03, 0.05),
		WithCycles(4000),
		WithSeed(2),
	))
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	for i := 1; i < len(pts); i++ {
		// Allow a sliver of stochastic noise; genuine non-monotonicity
		// below saturation is far larger than 2%.
		if pts[i].Throughput < pts[i-1].Throughput*0.98 {
			t.Errorf("throughput fell from %.4f (rate %g) to %.4f (rate %g)",
				pts[i-1].Throughput, pts[i-1].Rate, pts[i].Throughput, pts[i].Rate)
		}
	}
}

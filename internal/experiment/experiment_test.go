package experiment

import (
	"strings"
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/traffic"
)

// benchOpts keeps experiment tests fast.
var benchOpts = Options{Quick: true, CyclesOverride: 5000, MaxRatePoints: 3, Seed: 1}

func TestRunTimingBasics(t *testing.T) {
	res, err := RunTiming(TimingSetup{
		Width: 4, Height: 4, Kind: core.KindSPAABase, Pattern: traffic.Uniform,
		Rate: 0.01, Cycles: 5000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 || res.Throughput <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.AvgLatencyNS < 40 {
		t.Errorf("latency %.1f below the ~45 ns zero-load floor", res.AvgLatencyNS)
	}
	if res.Throughput > 2.4 {
		t.Errorf("throughput %.3f exceeds the architectural bound", res.Throughput)
	}
}

func TestRunTimingRejectsStandaloneAlgorithms(t *testing.T) {
	_, err := RunTiming(TimingSetup{
		Width: 4, Height: 4, Kind: core.KindMCM, Pattern: traffic.Uniform,
		Rate: 0.01, Cycles: 100, Seed: 1,
	})
	if err == nil {
		t.Fatal("MCM accepted by the timing model")
	}
}

// TestSPAABeatsWavesIn4x4 is the paper's headline timing claim at reduced
// scale: SPAA-base delivers more than PIM1 and WFA-base under load in the
// 4x4 random-traffic network.
func TestSPAABeatsWavesIn4x4(t *testing.T) {
	run := func(kind core.Kind) float64 {
		res, err := RunTiming(TimingSetup{
			Width: 4, Height: 4, Kind: kind, Pattern: traffic.Uniform,
			Rate: 0.05, Cycles: 10000, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	spaa := run(core.KindSPAABase)
	wfa := run(core.KindWFABase)
	pim1 := run(core.KindPIM1)
	if spaa <= wfa || spaa <= pim1 {
		t.Fatalf("SPAA=%.4f not above WFA=%.4f / PIM1=%.4f", spaa, wfa, pim1)
	}
}

// TestRotaryHoldsThroughputBeyondSaturation checks the Rotary Rule claim
// on the saturation companion setup (64 outstanding misses).
func TestRotaryHoldsThroughputBeyondSaturation(t *testing.T) {
	run := func(kind core.Kind) float64 {
		res, err := RunTiming(TimingSetup{
			Width: 8, Height: 8, Kind: kind, Pattern: traffic.Uniform,
			Rate: 0.13, MaxOutstanding: 64, Cycles: 12000, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	// The collapse deepens with simulation length; at this short horizon a
	// 40%+ advantage is already the paper's qualitative separation (full
	// 75k-cycle runs show 2-7x, see EXPERIMENTS.md).
	if base, rotary := run(core.KindSPAABase), run(core.KindSPAARotary); rotary < 1.4*base {
		t.Errorf("SPAA-rotary %.4f not well above collapsed SPAA-base %.4f", rotary, base)
	}
	if base, rotary := run(core.KindWFABase), run(core.KindWFARotary); rotary < 1.4*base {
		t.Errorf("WFA-rotary %.4f not well above collapsed WFA-base %.4f", rotary, base)
	}
}

func TestSweepProducesMonotoneOfferedRates(t *testing.T) {
	s := TimingSetup{
		Width: 4, Height: 4, Kind: core.KindSPAABase, Pattern: traffic.Uniform,
		Cycles: 3000, Seed: 1,
	}
	series, err := Sweep(s, []float64{0.005, 0.02, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(series.Points))
	}
	for i := 1; i < len(series.Points); i++ {
		if series.Points[i].OfferedRate <= series.Points[i-1].OfferedRate {
			t.Error("offered rates not increasing")
		}
	}
	if series.Label != "SPAA-base" {
		t.Errorf("label = %q", series.Label)
	}
}

func TestFigure8And9Tables(t *testing.T) {
	o := Options{Quick: true, Seed: 1}
	f8, err := Figure8(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Curves) != len(Figure8Kinds) {
		t.Fatalf("figure 8 curves = %d", len(f8.Curves))
	}
	table := f8.Table()
	if !strings.Contains(table.Format(), "SPAA-base") {
		t.Error("figure 8 table missing SPAA column")
	}
	if len(table.Rows) != len(f8.LoadFractions) {
		t.Errorf("figure 8 rows = %d", len(table.Rows))
	}

	f9, err := Figure9(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Occupancies) != 4 {
		t.Fatalf("figure 9 occupancies = %v", f9.Occupancies)
	}
	// The MCM-SPAA gap must shrink as occupancy rises (Figure 9's point).
	var mcm, spaa []float64
	for _, c := range f9.Curves {
		switch c.Label {
		case "MCM":
			mcm = c.Values
		case "SPAA-base":
			spaa = c.Values
		}
	}
	if mcm == nil || spaa == nil {
		t.Fatal("figure 9 missing curves")
	}
	first := mcm[0] - spaa[0]
	last := mcm[len(mcm)-1] - spaa[len(spaa)-1]
	if last >= first {
		t.Errorf("occupancy gap grew: %.2f -> %.2f", first, last)
	}
	csv := f9.Table().CSV()
	if !strings.Contains(csv, "occupancy,") {
		t.Errorf("CSV header malformed: %q", strings.SplitN(csv, "\n", 2)[0])
	}
}

func TestFigure10SaturationPanel(t *testing.T) {
	p, err := Figure10Saturation(benchOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != len(Figure10Kinds) {
		t.Fatalf("series = %d", len(p.Series))
	}
	table := p.Table()
	if len(table.Rows) != len(p.Rates) {
		t.Fatalf("rows = %d, rates = %d", len(table.Rows), len(p.Rates))
	}
	if !strings.Contains(table.Format(), "SPAA-rotary") {
		t.Error("panel table missing series")
	}
}

func TestRateSubsampling(t *testing.T) {
	full := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	o := Options{MaxRatePoints: 3}
	got := o.rates(full)
	if len(got) != 3 || got[0] != 1 || got[2] != 10 {
		t.Fatalf("subsample = %v", got)
	}
	if ends := (Options{}).rates(full); len(ends) != len(full) {
		t.Errorf("no-op subsample changed length: %v", ends)
	}
	q := Options{Quick: true}
	if qr := q.rates(full); len(qr) != 5 || qr[0] != 1 || qr[4] != 10 {
		t.Errorf("quick subsample = %v", qr)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tb.Format()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-column") {
		t.Errorf("format output wrong:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,long-column\n1,2\n") {
		t.Errorf("csv output wrong:\n%s", csv)
	}
}

// TestWarmupFractionSentinel pins the WarmupFraction contract: a literal
// zero keeps the historical 0.2 default, an explicit 0.2 matches it
// exactly, and the NoWarmup sentinel genuinely disables the warmup (a
// request the old zero-means-default encoding could not express).
func TestWarmupFractionSentinel(t *testing.T) {
	base := TimingSetup{
		Width: 4, Height: 4, Kind: core.KindSPAABase, Pattern: traffic.Uniform,
		Rate: 0.03, Cycles: 4000, Seed: 1,
	}
	run := func(frac float64) TimingResult {
		s := base
		s.WarmupFraction = frac
		res, err := RunTiming(s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	def, explicit, none := run(0), run(0.2), run(NoWarmup)
	if def.Point != explicit.Point {
		t.Errorf("WarmupFraction 0 no longer matches explicit 0.2:\n%+v\n%+v", def.Point, explicit.Point)
	}
	// With no warmup the collector sees every delivered packet, including
	// the ones the 20% warmup window would have discarded.
	if none.Packets <= def.Packets {
		t.Errorf("NoWarmup counted %d packets, default-warmup run counted %d", none.Packets, def.Packets)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	s := TimingSetup{
		Width: 4, Height: 4, Kind: core.KindWFARotary, Pattern: traffic.BitReversal,
		Rate: 0.03, Cycles: 4000, Seed: 7,
	}
	a, err := RunTiming(s)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RunTiming(s)
	if a.Point != b.Point || a.Completed != b.Completed || a.Collisions != b.Collisions {
		t.Fatalf("same setup diverged:\n%+v\n%+v", a, b)
	}
}

package experiment

// torus_shard_test.go gates the spatially-sharded simulation path
// (TimingSetup.TorusShards / spec torus_shards) on the same golden
// fingerprints that pin the monolithic engine: a sharded run must
// reproduce the canned arbiter × pattern figure matrix byte for byte at
// every shard count. The only permitted difference is the spec's own
// torus_shards field (the Result embeds its Spec verbatim), which the
// test normalizes away before hashing. (Distinct from shard_test.go,
// which covers the sweep coordinator's spec-grid sharding.)

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"alpha21364/internal/core"
	"alpha21364/internal/traffic"
)

// runTorusShardedFingerprint runs the canned timing matrix with the
// given shard count and fingerprints the result with torus_shards
// normalized to the monolithic spec.
func runTorusShardedFingerprint(t *testing.T, shards int) string {
	t.Helper()
	sp := fingerprintTimingSpec()
	WithTorusShards(shards)(&sp)
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := NewRunner(WithWorkers(1)).Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	res.Spec.Timing.TorusShards = 0
	return resultFingerprint(t, res)
}

// TestTorusShardedGoldenFingerprint is the tentpole acceptance gate: the
// full canned arbiter × pattern figure matrix, spatially sharded at 1,
// 2, and 4 row bands, byte-identical to the monolithic golden.
func TestTorusShardedGoldenFingerprint(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		if got := runTorusShardedFingerprint(t, shards); got != goldenTimingFingerprint {
			t.Errorf("torus_shards=%d fingerprint diverged from the monolithic golden:\n  got  %s\n  want %s",
				shards, got, goldenTimingFingerprint)
		}
	}
}

// TestTorusShardedMatchesMonolithicWithOracle runs a checked,
// instrumented, epoch-tracked point both ways and compares the full
// TimingResult — covering the oracle hooks and telemetry counters under
// concurrent edge workers, which the fingerprint (spec-level, unchecked)
// does not. This is the race-pools target: under -race it sweeps the
// checker's per-router scratch, the per-shard flight slots, and the
// wavefront's publish/wait flags.
func TestTorusShardedMatchesMonolithicWithOracle(t *testing.T) {
	for _, kind := range []core.Kind{core.KindSPAARotary, core.KindPIM1, core.KindWFABase} {
		base := TimingSetup{
			Width: 4, Height: 4, Kind: kind, Pattern: traffic.BitReversal,
			Rate: 0.06, Cycles: 1000, Seed: 11,
			Check: true, Metrics: true, EpochCycles: 100,
		}
		mono, err := RunTiming(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 4} {
			s := base
			s.TorusShards = shards
			got, err := RunTiming(s)
			if err != nil {
				t.Fatalf("kind=%v shards=%d: %v", kind, shards, err)
			}
			if !reflect.DeepEqual(mono, got) {
				t.Errorf("kind=%v shards=%d: checked result diverged from monolithic:\nmono  %+v\nshard %+v",
					kind, shards, mono, got)
			}
		}
	}
}

// TestTorusShardedRejectsTooManyShards pins the validation boundary at
// both the setup and spec layers.
func TestTorusShardedRejectsTooManyShards(t *testing.T) {
	_, err := RunTiming(TimingSetup{
		Width: 4, Height: 4, Kind: core.KindSPAABase, Pattern: traffic.Uniform,
		Rate: 0.02, Cycles: 100, Seed: 1, TorusShards: 5,
	})
	if err == nil {
		t.Fatal("TorusShards > Height was accepted by RunTiming")
	}
	sp := fingerprintTimingSpec()
	WithTorusShards(5)(&sp)
	if err := sp.Validate(); err == nil {
		t.Fatal("torus_shards > height was accepted by Spec.Validate")
	}
	sp = fingerprintTimingSpec()
	WithTorusShards(-1)(&sp)
	if err := sp.Validate(); err == nil {
		t.Fatal("negative torus_shards was accepted by Spec.Validate")
	}
}

// TestTorusShardedSpecHashDiffers pins the cache-key decision: a sharded
// spec hashes differently from a monolithic one (the execution strategy
// is recorded provenance), while torus_shards=0 leaves existing hashes —
// and therefore existing result caches — untouched (omitempty).
func TestTorusShardedSpecHashDiffers(t *testing.T) {
	mono := fingerprintTimingSpec()
	sharded := fingerprintTimingSpec()
	WithTorusShards(4)(&sharded)
	hm, err := SpecHash(mono)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := SpecHash(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if hm == hs {
		t.Fatal("sharded and monolithic specs share a cache key")
	}
	zero := fingerprintTimingSpec()
	WithTorusShards(0)(&zero)
	hz, err := SpecHash(zero)
	if err != nil {
		t.Fatal(err)
	}
	if hz != hm {
		t.Fatal("torus_shards=0 changed the spec hash; existing caches would be invalidated")
	}
}

// TestTorusShardedSpeedup measures the wall-clock ratio of a saturated
// 16x16 point at 1 vs 4 shards. It needs real cores to mean anything, so
// it skips on small machines and in short mode; coverage instrumentation
// (atomic counters on every hot-path statement) serializes the workers
// enough to invert the result, so instrumented runs skip too. The
// committed BENCH_10.json baseline carries the per-machine numbers for
// the benchmark gate; this test is a smoke check that parallelism exists
// at all where it can.
func TestTorusShardedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("speedup measurement needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation distorts the parallel tick path")
	}
	base := TimingSetup{
		Width: 16, Height: 16, Kind: core.KindSPAARotary, Pattern: traffic.Uniform,
		Rate: 0.09, MaxOutstanding: 64, Cycles: 1200, Seed: 1,
	}
	measure := func(shards int) time.Duration {
		s := base
		s.TorusShards = shards
		start := time.Now()
		if _, err := RunTiming(s); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	measure(1) // warm (page tables, arena growth paths)
	serial := measure(1)
	sharded := measure(4)
	ratio := float64(serial) / float64(sharded)
	t.Logf("16x16 saturated: 1 shard %v, 4 shards %v (%.2fx)", serial, sharded, ratio)
	if ratio < 1.15 {
		t.Errorf("4-shard run only %.2fx faster than 1-shard on %d CPUs, want >= 1.15x",
			ratio, runtime.NumCPU())
	}
}

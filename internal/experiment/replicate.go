package experiment

// replicate.go is the statistical half of the oracle PR: when a Spec sets
// Replications > 1, every point of the sweep is simulated that many times
// with deterministically derived seeds (see repSeed), the replications
// fan across the Runner's ordinary worker pool like any other jobs, and
// the point's headline values — replication 0, the spec's own seed — are
// annotated with per-metric mean, sample standard deviation, and a
// Student's t confidence interval. The annotation is part of the Result
// schema: serialized, golden-tested, and JSONL round-tripped.

import "alpha21364/internal/stats"

// DefaultConfidence is the confidence level used when a replicated spec
// does not set one.
const DefaultConfidence = 0.95

// MetricStats summarizes one metric across the replications of a point.
type MetricStats struct {
	// Mean and Stddev are the sample mean and sample (n-1) standard
	// deviation over the replications.
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	// CIHalfWidth is the half-width of the two-sided Student's t
	// confidence interval for the mean at the spec's confidence level:
	// the true mean lies in Mean ± CIHalfWidth with that confidence.
	CIHalfWidth float64 `json:"ci_half_width"`
}

// ReplicationStats is the per-point replication annotation. Timing points
// carry throughput and latency metrics; standalone points carry the match
// rate. Unused metrics are omitted from the serialized form.
type ReplicationStats struct {
	// Replications is how many independent seeds produced the statistics.
	Replications int `json:"replications"`
	// Confidence is the interval's two-sided confidence level.
	Confidence float64 `json:"confidence"`

	Throughput      MetricStats `json:"throughput,omitzero"`
	AvgLatencyNS    MetricStats `json:"avg_latency_ns,omitzero"`
	LatencyP99NS    MetricStats `json:"latency_p99_ns,omitzero"`
	MatchesPerCycle MetricStats `json:"matches_per_cycle,omitzero"`
}

// metricStats aggregates one metric's replication samples.
func metricStats(confidence float64, xs []float64) MetricStats {
	mean, sd := stats.MeanStddev(xs)
	return MetricStats{
		Mean:        mean,
		Stddev:      sd,
		CIHalfWidth: stats.ConfidenceHalfWidth(confidence, sd, len(xs)),
	}
}

// aggregateReplications summarizes one point's replication results.
func aggregateReplications(reps []ResultPoint, standaloneMode bool, confidence float64) *ReplicationStats {
	rs := &ReplicationStats{Replications: len(reps), Confidence: confidence}
	xs := make([]float64, len(reps))
	collect := func(metric func(*ResultPoint) float64) []float64 {
		for i := range reps {
			xs[i] = metric(&reps[i])
		}
		return xs
	}
	if standaloneMode {
		rs.MatchesPerCycle = metricStats(confidence, collect(func(p *ResultPoint) float64 { return p.MatchesPerCycle }))
		return rs
	}
	rs.Throughput = metricStats(confidence, collect(func(p *ResultPoint) float64 { return p.Throughput }))
	rs.AvgLatencyNS = metricStats(confidence, collect(func(p *ResultPoint) float64 { return p.AvgLatencyNS }))
	rs.LatencyP99NS = metricStats(confidence, collect(func(p *ResultPoint) float64 { return p.LatencyP99NS }))
	return rs
}

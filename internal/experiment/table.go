package experiment

import (
	"fmt"
	"strings"
)

// Table is a formatted result grid for terminal and CSV output.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Format renders the table with aligned columns.
func (t Table) Format() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders a BNF panel: one row per load point with per-algorithm
// throughput and latency columns, matching the axes of the paper's charts.
func (p Panel) Table() Table {
	t := Table{Title: p.Title}
	t.Columns = append(t.Columns, "rate(txn/node/cyc)")
	for _, s := range p.Series {
		t.Columns = append(t.Columns, s.Label+" tput", s.Label+" lat(ns)")
	}
	for i := range p.Rates {
		row := []string{fmt.Sprintf("%.4f", p.Rates[i])}
		for _, s := range p.Series {
			if i < len(s.Points) {
				row = append(row,
					fmt.Sprintf("%.4f", s.Points[i].Throughput),
					fmt.Sprintf("%.1f", s.Points[i].AvgLatencyNS))
			} else {
				row = append(row, "-", "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table renders the Figure 8 load sweep.
func (r Figure8Result) Table() Table {
	t := Table{Title: fmt.Sprintf(
		"Figure 8: standalone matches/cycle vs load (MCM saturation load = %.2f pkts/port/cycle)",
		r.SaturationLoad)}
	t.Columns = append(t.Columns, "load-fraction")
	for _, c := range r.Curves {
		t.Columns = append(t.Columns, c.Label)
	}
	for i, f := range r.LoadFractions {
		row := []string{fmt.Sprintf("%.1f", f)}
		for _, c := range r.Curves {
			row = append(row, fmt.Sprintf("%.2f", c.Values[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table renders the Figure 9 occupancy sweep.
func (r Figure9Result) Table() Table {
	t := Table{Title: "Figure 9: standalone matches/cycle vs output-port occupancy (at MCM saturation load)"}
	t.Columns = append(t.Columns, "occupancy")
	for _, c := range r.Curves {
		t.Columns = append(t.Columns, c.Label)
	}
	for i, occ := range r.Occupancies {
		row := []string{fmt.Sprintf("%.2f", occ)}
		for _, c := range r.Curves {
			row = append(row, fmt.Sprintf("%.2f", c.Values[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

package experiment

import (
	"strings"
	"testing"

	"alpha21364/internal/stats"
)

func TestPlotRendersAllSeries(t *testing.T) {
	p := Panel{
		Title: "test panel",
		Series: []stats.Series{
			{Label: "PIM1", Points: []stats.Point{{Throughput: 0.1, AvgLatencyNS: 50}, {Throughput: 0.5, AvgLatencyNS: 200}}},
			{Label: "SPAA", Points: []stats.Point{{Throughput: 0.2, AvgLatencyNS: 40}, {Throughput: 0.6, AvgLatencyNS: 180}}},
		},
	}
	out := p.Plot(60, 15)
	if !strings.Contains(out, "test panel") {
		t.Error("plot missing title")
	}
	if !strings.Contains(out, "P = PIM1") || !strings.Contains(out, "w = SPAA") {
		t.Errorf("plot missing legend:\n%s", out)
	}
	if strings.Count(out, "P") < 2 {
		t.Errorf("plot missing data glyphs:\n%s", out)
	}
	// Height: title + axis note + 15 grid rows + axis + legend.
	if lines := strings.Count(out, "\n"); lines != 19 {
		t.Errorf("plot has %d lines, want 19", lines)
	}
}

func TestPlotEmptyPanel(t *testing.T) {
	p := Panel{Title: "empty"}
	if out := p.Plot(40, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty plot output: %q", out)
	}
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	p := Panel{
		Title: "tiny",
		Series: []stats.Series{
			{Label: "x", Points: []stats.Point{{Throughput: 0.3, AvgLatencyNS: 100}}},
		},
	}
	out := p.Plot(1, 1) // clamped to sane minimums, must not panic
	if len(out) == 0 {
		t.Error("clamped plot empty")
	}
}

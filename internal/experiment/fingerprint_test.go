package experiment

// fingerprint_test.go is the golden-determinism gate for hot-path
// refactors: it runs a canned arbiter × pattern × rate matrix (plus a
// standalone sweep) through the Runner and pins the SHA-256 of the
// serialized Result. Any change to the engine's dispatch order, the
// packet/flit pooling, the router's queue layout, or the arbiter inner
// loops that alters a single byte of simulation output fails here.
//
// The hashes were captured before the tick-wheel/arena refactor of the
// zero-allocation PR and verified byte-identical after it. They were
// re-captured once, in the same PR, when the latency percentiles became
// exact (stats' fine-bucket histogram) — a deliberate, documented value
// change, not a determinism break.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"
)

// goldenTimingFingerprint pins the timing-model matrix: 3 arbiters x
// 2 patterns x 2 rates on a 4x4 torus. The seed-code hash was
// 034eebd5943da540b7541ac134ec265083308a73461577bb676131380236d9b0;
// the tick-wheel/arena/ring refactor reproduced it byte for byte, and
// the hash below reflects the one deliberate value change that followed
// (latency_p50/p95/p99_ns became exact instead of power-of-two upper
// bounds).
const goldenTimingFingerprint = "adeb6388ec823a562cda1ae463d42f3576f26e92f39a7a08dac70cb6c5e5a195"

// goldenStandaloneFingerprint pins the standalone matching-model sweep.
const goldenStandaloneFingerprint = "74186a18c35069684ed846de5d4126bf7af646bdb76b6e2378a277b0f585bf6f"

// fingerprintTimingSpec is the canned timing matrix. Short enough for CI,
// wide enough to cross every arbiter family (SPAA pipeline, PIM1/WFA
// waves), both permutation and random patterns, and an under- and
// over-saturated rate.
func fingerprintTimingSpec() Spec {
	return NewSpec(
		WithName("fingerprint timing matrix"),
		WithTopology(4, 4),
		WithArbiters("SPAA-rotary", "PIM1", "WFA-base"),
		WithPatterns("random", "bit-reversal"),
		WithProcesses("bernoulli"),
		WithRates(0.02, 0.06),
		WithCycles(1500),
		WithSeed(7),
	)
}

// fingerprintStandaloneSpec is the canned standalone sweep (the Figure 8
// model) at a light and the saturated load.
func fingerprintStandaloneSpec() Spec {
	sp := NewSpec(
		WithName("fingerprint standalone sweep"),
		WithArbiters("MCM", "SPAA-base", "PIM1"),
		WithStandaloneSweep(AxisLoad, 0.4, 1.0),
		WithCycles(300),
		WithSeed(3),
	)
	return sp
}

// resultFingerprint serializes the Result with the one nondeterministic
// field zeroed and hashes the bytes.
func resultFingerprint(t *testing.T, res *Result) string {
	t.Helper()
	res.ElapsedNS = 0
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func runFingerprint(t *testing.T, sp Spec, workers int) string {
	t.Helper()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := NewRunner(WithWorkers(workers)).Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	return resultFingerprint(t, res)
}

func TestGoldenFingerprintTiming(t *testing.T) {
	serial := runFingerprint(t, fingerprintTimingSpec(), 1)
	if serial != goldenTimingFingerprint {
		t.Errorf("timing fingerprint changed:\n  got  %s\n  want %s\n"+
			"simulation output is no longer byte-identical; if the change is intentional, update the golden hash",
			serial, goldenTimingFingerprint)
	}
	parallel := runFingerprint(t, fingerprintTimingSpec(), 4)
	if parallel != serial {
		t.Errorf("parallel run diverged from serial: %s != %s", parallel, serial)
	}
}

func TestGoldenFingerprintStandalone(t *testing.T) {
	serial := runFingerprint(t, fingerprintStandaloneSpec(), 1)
	if serial != goldenStandaloneFingerprint {
		t.Errorf("standalone fingerprint changed:\n  got  %s\n  want %s\n"+
			"simulation output is no longer byte-identical; if the change is intentional, update the golden hash",
			serial, goldenStandaloneFingerprint)
	}
	parallel := runFingerprint(t, fingerprintStandaloneSpec(), 4)
	if parallel != serial {
		t.Errorf("parallel run diverged from serial: %s != %s", parallel, serial)
	}
}

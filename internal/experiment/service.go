package experiment

// service.go is the execution half of the Scenario/Runner API: a Runner
// turns a Spec into a Result under a context, fanning the expanded job
// grid across a bounded worker pool and streaming typed events —
// run-start, point-done, series-done, run-done — as simulations finish.
// It replaces the private runJobs/ProgressFunc plumbing as the public
// way to execute experiments; the deprecated Sweep/figure entry points
// are now thin adapters over it.
//
// Determinism: jobs are fully fixed at expansion time and assembled by
// index, so a Result is byte-identical whatever the worker count (only
// ElapsedNS varies). Cancellation: the context is checked between jobs
// and polled inside each timing simulation every cancelPollCycles router
// cycles, so Run returns promptly with a partial, well-formed Result.

import (
	"context"
	"sync"
	"time"
)

// EventType discriminates Runner stream events.
type EventType string

const (
	// EventRunStart opens the stream; Total is the job count.
	EventRunStart EventType = "run-start"
	// EventPointDone reports one finished simulation with its measurement.
	EventPointDone EventType = "point-done"
	// EventSeriesDone reports that every point of one series finished.
	EventSeriesDone EventType = "series-done"
	// EventRunDone closes the stream, carrying the assembled Result and
	// the run's error, if any.
	EventRunDone EventType = "run-done"
)

// Event is one element of a Runner's progress stream. Done/Total count
// finished jobs out of the whole run. Events are delivered serialized
// (never concurrently) but in completion order, not job order.
type Event struct {
	Type  EventType `json:"type"`
	Done  int       `json:"done,omitempty"`
	Total int       `json:"total,omitempty"`
	// Label identifies the finished job (point-done) or the run (run-start).
	Label string `json:"label,omitempty"`
	// Series is the owning series' label (point-done, series-done).
	Series string `json:"series,omitempty"`
	// Point carries the measurement of a point-done event.
	Point *ResultPoint `json:"point,omitempty"`
	// Result carries the assembled result of a run-done event.
	Result *Result `json:"result,omitempty"`
	// Err is the run's failure, if any (run-done only).
	Err error `json:"-"`
}

// Runner executes Specs. The zero value is unusable; construct with
// NewRunner. A Runner is stateless between runs and safe for concurrent
// use by multiple goroutines.
type Runner struct {
	opts Options
	sink func(Event)
}

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// NewRunner returns a Runner with one worker per CPU.
func NewRunner(opts ...RunnerOption) *Runner {
	r := &Runner{}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// WithWorkers bounds how many simulations run concurrently: 0 means one
// per available CPU, 1 (or any negative value) runs serially. Results
// are byte-identical regardless of the worker count.
func WithWorkers(n int) RunnerOption {
	return func(r *Runner) { r.opts.Workers = n }
}

// WithEventSink observes every event of every Run on this Runner. Calls
// are serialized; the sink must not block for long, as it is invoked
// from worker goroutines.
func WithEventSink(fn func(Event)) RunnerOption {
	return func(r *Runner) { r.sink = fn }
}

// optionsRunner adapts the deprecated Options plumbing (worker count,
// ProgressFunc, and CollectDataset's shared limiter) onto a Runner.
func optionsRunner(o Options) *Runner {
	r := &Runner{opts: o}
	if o.Progress != nil {
		progress := o.Progress
		r.sink = func(e Event) {
			if e.Type == EventPointDone {
				progress(e.Done, e.Total, e.Label)
			}
		}
	}
	return r
}

// Run executes the spec to completion (or cancellation) and returns the
// assembled Result. On failure or cancellation the Result is non-nil,
// marked Partial, and holds every point that finished before the
// contiguous-prefix cut; the error is the first job's own error, or the
// context's error when the run was cancelled.
func (r *Runner) Run(ctx context.Context, spec Spec) (*Result, error) {
	emit := r.sink
	if emit == nil {
		emit = func(Event) {}
	}
	return r.run(ctx, spec, emit)
}

// Stream executes the spec concurrently and returns its event channel.
// The stream ends with exactly one run-done event carrying the Result
// and error, after which the channel is closed. The caller must either
// drain the channel until it closes or cancel ctx before abandoning it:
// sends block once the buffer fills (backpressure on the workers), and
// only cancellation releases an abandoned stream (remaining events are
// then dropped and the channel closed).
func (r *Runner) Stream(ctx context.Context, spec Spec) <-chan Event {
	if ctx == nil {
		ctx = context.Background()
	}
	ch := make(chan Event, 16)
	go func() {
		defer close(ch)
		emit := func(e Event) {
			if r.sink != nil {
				r.sink(e)
			}
			select {
			case ch <- e: // fast path: buffer has room or a reader waits
			default:
				select {
				case ch <- e:
				case <-ctx.Done():
					// The consumer cancelled and stopped draining; nobody
					// is entitled to further events, so dropping them frees
					// the workers to wind down instead of leaking.
				}
			}
		}
		res, err := r.run(ctx, spec, emit)
		if res != nil {
			return
		}
		// Expansion failed before the run started: run-done is still the
		// stream's closing event.
		emit(Event{Type: EventRunDone, Err: err})
	}()
	return ch
}

func (r *Runner) run(ctx context.Context, spec Spec, emit func(Event)) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pl, err := spec.expand()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	total := len(pl.jobs)
	emit(Event{Type: EventRunStart, Total: total, Label: spec.title()})

	// One mutex serializes event emission and the done/remaining counters
	// across workers (the same guarantee progressTracker used to give the
	// deprecated ProgressFunc).
	var mu sync.Mutex
	done := 0
	remaining := make([]int, len(pl.series))
	for i, s := range pl.series {
		remaining[i] = s.jobs
	}

	jobs := make([]jobSpec[ResultPoint], total)
	for i, pj := range pl.jobs {
		pj := pj
		jobs[i] = jobSpec[ResultPoint]{
			label: pj.label,
			run: func() (ResultPoint, error) {
				pt, err := pj.run(ctx)
				if err != nil {
					return pt, err
				}
				mu.Lock()
				done++
				emit(Event{
					Type: EventPointDone, Done: done, Total: total,
					Label: pj.label, Series: pl.series[pj.series].meta.Label, Point: &pt,
				})
				remaining[pj.series]--
				if remaining[pj.series] == 0 {
					emit(Event{
						Type: EventSeriesDone, Done: done, Total: total,
						Series: pl.series[pj.series].meta.Label,
					})
				}
				mu.Unlock()
				return pt, nil
			},
		}
	}

	o := r.opts
	o.ctx = ctx
	o.Progress = nil // progress flows through events on this path
	points, firstBad, err := runJobs(o, jobs)
	if cerr := ctx.Err(); cerr != nil {
		// The context's own error outranks the per-job symptom it caused.
		err = cerr
	}
	res := pl.assemble(points, firstBad)
	res.ElapsedNS = time.Since(start).Nanoseconds()
	mu.Lock()
	emit(Event{Type: EventRunDone, Done: done, Total: total, Result: res, Err: err})
	mu.Unlock()
	return res, err
}

// assemble builds the Result from the job-ordered points, keeping the
// contiguous prefix [0, firstBad) — exactly the jobs whose results are
// valid — and attributing each to its series. A point's replications are
// adjacent in job order, so the cut falls on whole points: a point whose
// replications only partially completed is dropped. Series whose jobs all
// fall past the cut are still present, empty, so a partial Result keeps
// the full shape of its spec.
func (pl *plan) assemble(points []ResultPoint, firstBad int) *Result {
	res := &Result{
		Version:        ResultVersion,
		Spec:           pl.spec,
		SaturationLoad: pl.saturationLoad,
		Partial:        firstBad < len(pl.jobs),
	}
	res.Series = make([]ResultSeries, len(pl.series))
	for i, s := range pl.series {
		res.Series[i] = s.meta
	}
	standaloneMode := pl.spec.Mode == ModeStandalone
	for i := 0; i+pl.reps <= firstBad; i += pl.reps {
		pj := pl.jobs[i]
		pt := points[i] // replication 0: the spec's own seed
		if pl.reps > 1 {
			pt.Replication = aggregateReplications(points[i:i+pl.reps], standaloneMode, pl.confidence)
		}
		s := &res.Series[pj.series]
		s.Points = append(s.Points, pt)
	}
	return res
}

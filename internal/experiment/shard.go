package experiment

// shard.go is the pure planning half of the sweep service: it decomposes
// a validated Spec's (series × point) grid into shard-Specs — each an
// ordinary, independently runnable Spec covering one series and a
// contiguous slice of its points — with a deterministic shard→cell
// mapping, and reassembles streamed shard Results into exactly the byte
// stream the monolithic Runner produces (fingerprint-enforced in
// shard_test.go against the PR-4 goldens).
//
// Why this is sound: every job's input, including its per-replication
// seed, is fixed at expansion time from the spec's own fields — a point
// at rate r with seed s simulates identically whether its sibling points
// share the process or not (serial==parallel byte-identity, PR 1), and
// replication seeds derive from the base seed alone (PR 5). A shard-Spec
// therefore reproduces each of its points byte-for-byte, and the merger
// only has to put them back in grid order. Replications stay inside
// their point's shard, so per-point Replication statistics are computed
// from the same inputs either way.
//
// Shards never span series: a single series × rate-slice subset is
// always expressible as a strict v1 Spec, while an arbitrary cell set
// is not. The shard-Spec + Result-JSONL boundary is deliberately the
// whole inter-process contract, so shards can later run in remote
// workers (cmd/sweepd) without touching the planner or merger.

import (
	"fmt"
)

// ShardCell addresses one cell of a spec's grid: a series index and a
// point index within that series, both in expansion order. One cell is
// one measured ResultPoint (all of its replications included).
type ShardCell struct {
	Series int `json:"series"`
	Point  int `json:"point"`
}

// Shard is one independently runnable slice of a sweep: a self-contained
// Spec plus the original-grid coordinates its result points map back to,
// in the shard Spec's own expansion order.
type Shard struct {
	Spec  Spec
	Cells []ShardCell
}

// gridAxes is the shape of a validated spec's grid and the per-axis
// names needed to subset it.
type gridAxes struct {
	arbiters   []string
	patterns   []string // timing, non-replay
	processes  []string // timing, non-replay
	points     int      // points per series
	replay     bool
	standalone bool
}

// axes derives the grid shape. The spec must be valid.
func (s Spec) axes() gridAxes {
	a := gridAxes{arbiters: s.Arbiters}
	switch {
	case s.Mode == ModeStandalone:
		a.standalone = true
		a.points = len(s.Standalone.Values)
	case s.Workload.ReplayFrom != "":
		a.replay = true
		a.points = 1
	default:
		a.patterns = s.Workload.patterns()
		a.processes = s.Workload.processes()
		a.points = len(s.Workload.Rates)
	}
	return a
}

// seriesCount returns the number of series the grid expands to.
func (a gridAxes) seriesCount() int {
	n := len(a.arbiters)
	if !a.standalone && !a.replay {
		n *= len(a.patterns) * len(a.processes)
	}
	return n
}

// seriesNames inverts a series index into its axis names, following
// expandTiming's nesting order: arbiter outermost, then pattern, then
// process.
func (a gridAxes) seriesNames(si int) (arbiter, pattern, process string) {
	if a.standalone || a.replay {
		return a.arbiters[si], "", ""
	}
	nProc := len(a.processes)
	nPat := len(a.patterns)
	return a.arbiters[si/(nPat*nProc)], a.patterns[(si/nProc)%nPat], a.processes[si%nProc]
}

// allCells enumerates the whole grid in series-major order.
func (a gridAxes) allCells() []ShardCell {
	cells := make([]ShardCell, 0, a.seriesCount()*a.points)
	for si := 0; si < a.seriesCount(); si++ {
		for pi := 0; pi < a.points; pi++ {
			cells = append(cells, ShardCell{Series: si, Point: pi})
		}
	}
	return cells
}

// subsetSpec builds the shard-Spec covering one series and the given
// point indices of the parent spec. The result is a self-contained,
// valid Spec whose expansion enumerates exactly those cells in order.
func subsetSpec(parent Spec, a gridAxes, si int, points []int) Spec {
	sub := parent // value copy; pointer sections are re-pointed below
	arb, pat, proc := a.seriesNames(si)
	sub.Arbiters = []string{arb}
	if parent.Topology != nil {
		tp := *parent.Topology
		sub.Topology = &tp
	}
	if parent.Timing != nil {
		tm := *parent.Timing
		sub.Timing = &tm
	}
	switch {
	case a.standalone:
		sa := *parent.Standalone
		sa.Values = make([]float64, len(points))
		for i, pi := range points {
			sa.Values[i] = parent.Standalone.Values[pi]
		}
		sub.Standalone = &sa
	case a.replay:
		w := *parent.Workload
		sub.Workload = &w
	default:
		w := *parent.Workload
		w.Patterns = []string{pat}
		w.Processes = []string{proc}
		w.Rates = make([]float64, len(points))
		for i, pi := range points {
			w.Rates[i] = parent.Workload.Rates[pi]
		}
		sub.Workload = &w
	}
	return sub
}

// Tail returns the sub-shard covering sh.Cells[from:] — what a retry
// re-executes after the first from points of the shard already arrived
// intact. The sub-shard's Spec enumerates exactly the remaining cells in
// order, so a prefix result concatenated with the tail's points is
// byte-identical to running the whole shard once: every point's input,
// including its replication seeds, is fixed by the spec's own fields and
// never by its sibling points. from <= 0 returns sh unchanged; from
// beyond the last cell returns an empty-celled shard that must not run.
func (sh Shard) Tail(from int) Shard {
	if from <= 0 {
		return sh
	}
	if from >= len(sh.Cells) {
		return Shard{Spec: sh.Spec}
	}
	// The shard's own Spec is the parent here: it covers exactly one
	// series, so its grid indices are 0..len(Cells)-1 in cell order.
	points := make([]int, len(sh.Cells)-from)
	for i := range points {
		points[i] = from + i
	}
	return Shard{
		Spec:  subsetSpec(sh.Spec, sh.Spec.axes(), 0, points),
		Cells: sh.Cells[from:],
	}
}

// planShardsOver groups the given cells (series-major order) into at
// most want shards and builds each shard's Spec. want <= 0 means one
// shard per cell — the finest granularity, giving maximum scheduling
// freedom and per-point cache persistence. Chunks never cross a series
// boundary, and the mapping is a pure function of (cells, want), so the
// same missing set always re-plans identically.
func planShardsOver(parent Spec, a gridAxes, cells []ShardCell, want int) []Shard {
	if len(cells) == 0 {
		return nil
	}
	target := 1
	if want > 0 {
		target = (len(cells) + want - 1) / want // chunk size for ~want shards
	}
	var shards []Shard
	var run []ShardCell
	flush := func() {
		if len(run) == 0 {
			return
		}
		points := make([]int, len(run))
		for i, c := range run {
			points[i] = c.Point
		}
		shards = append(shards, Shard{
			Spec:  subsetSpec(parent, a, run[0].Series, points),
			Cells: run,
		})
		run = nil
	}
	for _, c := range cells {
		if len(run) > 0 && (run[0].Series != c.Series || len(run) >= target) {
			flush()
		}
		run = append(run, c)
	}
	flush()
	return shards
}

// PlanShards decomposes the spec's full grid into at most shards
// shard-Specs (0 means one per point). Every cell of the grid is covered
// exactly once; the mapping is deterministic.
func PlanShards(spec Spec, shards int) ([]Shard, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	a := spec.axes()
	return planShardsOver(spec, a, a.allCells(), shards), nil
}

// flattenPoints lists a result's points in series-major order — the same
// order a shard's Cells are enumerated in.
func flattenPoints(res *Result) []ResultPoint {
	var pts []ResultPoint
	for _, s := range res.Series {
		pts = append(pts, s.Points...)
	}
	return pts
}

// mergeCells assembles the monolithic Result from per-cell points. The
// plan supplies the series metadata, saturation load, and grid shape;
// points holds whichever cells are known (cached or freshly simulated).
// Each series keeps the contiguous prefix of its known points — the same
// partial-result shape the Runner produces — and the Result is marked
// Partial when any cell is missing.
func (pl *plan) mergeCells(points map[ShardCell]ResultPoint) *Result {
	res := &Result{
		Version:        ResultVersion,
		Spec:           pl.spec,
		SaturationLoad: pl.saturationLoad,
	}
	res.Series = make([]ResultSeries, len(pl.series))
	for si, s := range pl.series {
		res.Series[si] = s.meta
		nPoints := s.jobs / pl.reps
		for pi := 0; pi < nPoints; pi++ {
			pt, ok := points[ShardCell{Series: si, Point: pi}]
			if !ok {
				res.Partial = true
				break
			}
			res.Series[si].Points = append(res.Series[si].Points, pt)
		}
	}
	return res
}

// MergeShardResults reassembles shard Results into the Result the
// monolithic Runner would have produced for spec (ElapsedNS excepted —
// wall time is the one field outside the determinism contract, and the
// caller stamps it). results[i] must be the outcome of running
// shards[i].Spec; a nil result (shard never ran) or a partial one simply
// leaves its cells missing, yielding a Partial merged Result.
func MergeShardResults(spec Spec, shards []Shard, results []*Result) (*Result, error) {
	pl, err := spec.expand()
	if err != nil {
		return nil, err
	}
	if len(results) != len(shards) {
		return nil, fmt.Errorf("experiment: merge: %d results for %d shards", len(results), len(shards))
	}
	points := make(map[ShardCell]ResultPoint)
	for i, sh := range shards {
		if results[i] == nil {
			continue
		}
		pts := flattenPoints(results[i])
		if len(pts) > len(sh.Cells) {
			return nil, fmt.Errorf("experiment: merge: shard %d returned %d points for %d cells",
				i, len(pts), len(sh.Cells))
		}
		for j, pt := range pts {
			points[sh.Cells[j]] = pt
		}
	}
	return pl.mergeCells(points), nil
}

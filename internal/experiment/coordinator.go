package experiment

// coordinator.go is the service layer of the sweep subsystem: a
// Coordinator turns the one-shot Runner into a long-lived scheduler. One
// run plans the spec's grid into shard-Specs (shard.go), serves every
// cell already present in the content-addressed cache (SpecHash +
// internal/cache) without simulating, fans the missing shards across the
// existing worker pool, persists each shard's completed points to the
// cache as it finishes — atomically, whole points only — and merges
// everything back into the exact byte stream the monolithic Runner
// produces. A killed run therefore resumes by re-running only its
// missing points, and a repeated run of the same semantic spec is a pure
// cache read.
//
// Where a shard simulates is the ShardExecutor's business (executor.go):
// the default localExecutor runs each shard through an ordinary Runner
// on a single worker, shard-level fan-out bounded by the coordinator's
// worker count, while internal/fleet dispatches shards to remote sweepd
// workers over HTTP/JSONL — same plan, same cache, same merged bytes.

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"alpha21364/internal/cache"
)

// Coordinator schedules sweeps over shards and a result cache. The zero
// value runs monolithically equivalent plans with default workers;
// construct with NewCoordinator. A Coordinator may be reused for many
// runs, but Stats reports only the most recent one, so concurrent Run
// calls should use separate Coordinators.
type Coordinator struct {
	workers int
	shards  int
	store   *cache.Store
	sink    func(Event)
	exec    ShardExecutor

	mu    sync.Mutex
	stats CoordinatorStats
}

// CoordinatorStats summarizes one Coordinator.Run.
type CoordinatorStats struct {
	// TotalPoints is the grid size: series × points (replications fold
	// into their point).
	TotalPoints int
	// CachedPoints is how many cells were served from the cache without
	// simulating.
	CachedPoints int
	// SimulatedPoints is how many cells were simulated (and, with a
	// cache, persisted) by this run.
	SimulatedPoints int
	// Shards is how many shard-Specs the missing cells were planned into.
	Shards int
	// ShardAttempts counts shard executions started, summed over shards:
	// with the local executor it equals Shards; a fleet executor adds one
	// per retry or reassignment.
	ShardAttempts int
	// ShardRetries counts shard executions beyond each shard's first —
	// the requeue traffic caused by worker failures and timeouts.
	ShardRetries int
	// ElapsedNS is the run's wall-clock duration.
	ElapsedNS int64
	// ShardDurationsNS is each shard's wall-clock duration, in completion
	// order; the service layer feeds its latency histogram from it.
	ShardDurationsNS []int64
}

// CoordinatorOption configures a Coordinator.
type CoordinatorOption func(*Coordinator)

// NewCoordinator returns a Coordinator with one worker per CPU, no cache,
// and one shard per point.
func NewCoordinator(opts ...CoordinatorOption) *Coordinator {
	c := &Coordinator{}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// WithCoordinatorWorkers bounds how many shards run concurrently: 0
// means one per available CPU, 1 (or any negative value) runs serially.
// Results are byte-identical regardless.
func WithCoordinatorWorkers(n int) CoordinatorOption {
	return func(c *Coordinator) { c.workers = n }
}

// WithShards targets a shard count for each run's missing cells: the
// planner produces at most n shards, and a shard never spans two series.
// 0 — the default — plans one shard per point: maximum scheduling
// freedom and the finest resume granularity.
func WithShards(n int) CoordinatorOption {
	return func(c *Coordinator) { c.shards = n }
}

// WithCache attaches a content-addressed result store: cells already
// present are served without simulating, and freshly simulated points
// are persisted as their shard completes. Specs that record or replay
// traces bypass the cache (a file path does not content-address the
// trace behind it).
func WithCache(store *cache.Store) CoordinatorOption {
	return func(c *Coordinator) { c.store = store }
}

// WithShardExecutor routes every shard through e instead of the default
// in-process serial Runner. The executor decides where a shard simulates
// (local pool, remote fleet); the plan/cache/merge pipeline around it is
// identical, so results stay byte-identical to a monolithic run.
func WithShardExecutor(e ShardExecutor) CoordinatorOption {
	return func(c *Coordinator) { c.exec = e }
}

// WithCoordinatorEventSink observes the run's progress events: run-start
// (Total counts simulations to run, cached cells excluded), point-done
// per finished simulation, and run-done with the merged Result. Calls
// are serialized.
func WithCoordinatorEventSink(fn func(Event)) CoordinatorOption {
	return func(c *Coordinator) { c.sink = fn }
}

// Stats returns the statistics of the most recent Run.
func (c *Coordinator) Stats() CoordinatorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.ShardDurationsNS = append([]int64(nil), c.stats.ShardDurationsNS...)
	return s
}

// specCacheable reports whether the spec's results may be cached: trace
// record/replay specs are excluded, because the cache key cannot
// content-address a trace file behind a path (replay) and a cache hit
// would silently skip the recording side effect (record).
func specCacheable(s Spec) bool {
	return s.Workload == nil || (s.Workload.RecordTo == "" && s.Workload.ReplayFrom == "")
}

// cachedCell is one cache hit, decoded.
type cachedCell struct {
	cell  ShardCell
	point ResultPoint
}

// loadCached reads and strictly decodes every cached cell of the key
// that falls inside the grid. A corrupt cell is an error, not a miss:
// serving half a cache would silently break the byte-identity contract.
func loadCached(store *cache.Store, key string, a gridAxes) ([]cachedCell, error) {
	cells, err := store.Cells(key)
	if err != nil {
		return nil, err
	}
	var out []cachedCell
	for _, cl := range cells {
		if cl.Series >= a.seriesCount() || cl.Point >= a.points {
			continue // stale debris from an older (differently shaped) grid: unreachable under one key, skip
		}
		data, ok, err := store.Get(key, cl)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		var pt ResultPoint
		dec := strictDecoder(data)
		if err := dec.Decode(&pt); err != nil {
			return nil, fmt.Errorf("experiment: cache cell s%d p%d is corrupt: %w (clear the cache directory)",
				cl.Series, cl.Point, err)
		}
		out = append(out, cachedCell{cell: ShardCell{Series: cl.Series, Point: cl.Point}, point: pt})
	}
	return out, nil
}

// Run executes the spec through the shard/cache/merge pipeline and
// returns the assembled Result — byte-identical to Runner.Run on the
// same spec (ElapsedNS excepted). On failure or cancellation the Result
// is non-nil, marked Partial, holds every completed cell, and — with a
// cache attached — every completed cell has already been persisted, so
// a subsequent Run resumes by simulating only the missing ones.
func (c *Coordinator) Run(ctx context.Context, spec Spec) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	pl, err := spec.expand()
	if err != nil {
		return nil, err
	}
	a := spec.axes()

	// Serve what the cache already holds.
	var key string
	cacheable := c.store != nil && specCacheable(spec)
	merged := make(map[ShardCell]ResultPoint)
	if cacheable {
		key, err = SpecHash(spec)
		if err != nil {
			return nil, err
		}
		hits, err := loadCached(c.store, key, a)
		if err != nil {
			return nil, err
		}
		for _, h := range hits {
			merged[h.cell] = h.point
		}
		if meta, err := EncodeSpec(hashableSpec(spec)); err == nil {
			// Metadata is best-effort debugging aid; the run does not
			// depend on it.
			_ = c.store.PutSpec(key, meta)
		}
	}

	// Plan the missing cells into shards.
	var missing []ShardCell
	for _, cl := range a.allCells() {
		if _, ok := merged[cl]; !ok {
			missing = append(missing, cl)
		}
	}
	shards := planShardsOver(spec, a, missing, c.shards)
	totalSims := len(missing) * pl.reps

	c.mu.Lock()
	c.stats = CoordinatorStats{
		TotalPoints:  a.seriesCount() * a.points,
		CachedPoints: len(merged),
		Shards:       len(shards),
	}
	c.mu.Unlock()

	emit := c.sink
	if emit == nil {
		emit = func(Event) {}
	}
	emit(Event{Type: EventRunStart, Total: totalSims, Label: spec.title()})

	// A serialized wrapper re-counts every shard's point-done events
	// against the coordinator-wide totals.
	var progressMu sync.Mutex
	done := 0
	shardSink := func(e Event) {
		if e.Type != EventPointDone {
			return
		}
		progressMu.Lock()
		done++
		emit(Event{
			Type: EventPointDone, Done: done, Total: totalSims,
			Label: e.Label, Series: e.Series, Point: e.Point,
		})
		progressMu.Unlock()
	}

	// Fan the shards across the pool; each shard runs through the
	// executor (in-process Runner by default, remote fleet when one is
	// attached), and persists its completed points — whole points only —
	// whether it finished or was cut short.
	exec := c.exec
	if exec == nil {
		exec = localExecutor{}
	}
	var freshMu sync.Mutex
	simulated := 0
	jobs := make([]jobSpec[*Result], len(shards))
	for i := range shards {
		sh := shards[i]
		jobs[i] = jobSpec[*Result]{
			label: fmt.Sprintf("shard %d/%d", i+1, len(shards)),
			run: func() (*Result, error) {
				shardStart := time.Now()
				res, attempts, runErr := exec.ExecuteShard(ctx, sh, shardSink)
				shardNS := time.Since(shardStart).Nanoseconds()
				c.mu.Lock()
				c.stats.ShardDurationsNS = append(c.stats.ShardDurationsNS, shardNS)
				c.stats.ShardAttempts += attempts
				if attempts > 1 {
					c.stats.ShardRetries += attempts - 1
				}
				c.mu.Unlock()
				if res == nil {
					return nil, runErr
				}
				pts := flattenPoints(res)
				if len(pts) > len(sh.Cells) {
					return nil, fmt.Errorf("experiment: shard returned %d points for %d cells", len(pts), len(sh.Cells))
				}
				var firstErr error
				freshMu.Lock()
				for j, pt := range pts {
					merged[sh.Cells[j]] = pt
					simulated++
					if cacheable {
						data, err := json.Marshal(pt)
						if err == nil {
							err = c.store.Put(key, cache.Cell{Series: sh.Cells[j].Series, Point: sh.Cells[j].Point}, data)
						}
						if err != nil && firstErr == nil {
							firstErr = err
						}
					}
				}
				freshMu.Unlock()
				if runErr != nil {
					return res, runErr
				}
				return res, firstErr
			},
		}
	}
	o := Options{Workers: c.workers, ctx: ctx}
	_, _, err = runJobs(o, jobs)
	if cerr := ctx.Err(); cerr != nil {
		// The context's own error outranks the per-shard symptom it caused.
		err = cerr
	}

	res := pl.mergeCells(merged)
	if err != nil {
		res.Partial = true
	}
	res.ElapsedNS = time.Since(start).Nanoseconds()

	c.mu.Lock()
	c.stats.SimulatedPoints = simulated
	c.stats.ElapsedNS = res.ElapsedNS
	c.mu.Unlock()

	progressMu.Lock()
	emit(Event{Type: EventRunDone, Done: done, Total: totalSims, Result: res, Err: err})
	progressMu.Unlock()
	return res, err
}

package experiment

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/traffic"
	"alpha21364/internal/workload"
)

// TestScenarioMatrixParallelSerialIdentical runs the acceptance-criteria
// matrix — six destination patterns × two arrival processes — for one
// algorithm, in parallel and serially, and requires identical output.
func TestScenarioMatrixParallelSerialIdentical(t *testing.T) {
	base := TimingSetup{Width: 4, Height: 4, Cycles: 600, Seed: 3}
	kinds := []core.Kind{core.KindSPAARotary}
	patterns := []traffic.Pattern{
		traffic.Uniform, traffic.BitReversal, traffic.PerfectShuffle,
		traffic.Transpose, traffic.Tornado, traffic.Hotspot,
	}
	processes := []string{"bernoulli", "onoff"}
	rates := []float64{0.02}

	serial, err := ScenarioMatrix(Options{Workers: 1}, base, kinds, patterns, processes, rates)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ScenarioMatrix(Options{Workers: 8}, base, kinds, patterns, processes, rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(kinds)*len(patterns)*len(processes)*len(rates) {
		t.Fatalf("matrix returned %d scenarios", len(serial))
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel matrix differs from serial matrix")
	}
	if got, want := ScenarioTable(serial).CSV(), ScenarioTable(parallel).CSV(); got != want {
		t.Fatal("parallel matrix CSV differs from serial")
	}
	for _, r := range serial {
		if r.Packets == 0 {
			t.Errorf("%v delivered nothing", r.Scenario)
		}
	}
}

// TestScenarioMatrixOrder: results come back in matrix order regardless
// of completion order.
func TestScenarioMatrixOrder(t *testing.T) {
	base := TimingSetup{Width: 4, Height: 4, Cycles: 300, Seed: 1}
	kinds := []core.Kind{core.KindSPAABase, core.KindPIM1}
	patterns := []traffic.Pattern{traffic.Uniform, traffic.Tornado}
	rates := []float64{0.01, 0.02}
	res, err := ScenarioMatrix(Options{}, base, kinds, patterns, nil, rates)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, k := range kinds {
		for _, p := range patterns {
			for _, r := range rates {
				sc := res[i].Scenario
				if sc.Kind != k || sc.Pattern != p || sc.Process != "bernoulli" || sc.Rate != r {
					t.Fatalf("result %d is %v, want %v/%v/bernoulli @ %g", i, sc, k, p, r)
				}
				i++
			}
		}
	}
}

// recordSetup is the shared recording scenario of the replay tests.
func recordSetup(dir string) TimingSetup {
	return TimingSetup{
		Width: 4, Height: 4, Kind: core.KindSPAARotary, Pattern: traffic.Hotspot,
		Rate: 0.02, Cycles: 1500, Seed: 11,
		RecordTo: filepath.Join(dir, "run.trace"),
	}
}

// TestRecordReplayByteIdentical is the determinism half of the trace
// layer's contract: replaying a recorded run under the same arbiter and
// seed reproduces the recorded run's statistics bit for bit — same
// throughput, same latencies, same per-packet counters.
func TestRecordReplayByteIdentical(t *testing.T) {
	dir := t.TempDir()
	rec := recordSetup(dir)
	recorded, err := RunTiming(rec)
	if err != nil {
		t.Fatal(err)
	}

	replay := TimingSetup{
		Width: rec.Width, Height: rec.Height, Kind: rec.Kind,
		Cycles: rec.Cycles, Seed: rec.Seed,
		ReplayFrom: rec.RecordTo,
	}
	replayed, err := RunTiming(replay)
	if err != nil {
		t.Fatal(err)
	}
	// The replay is open-loop, so transaction bookkeeping (Completed)
	// legitimately differs; everything measured from packets must match
	// exactly.
	recorded.Completed, replayed.Completed = 0, 0
	recorded.OfferedRate, replayed.OfferedRate = 0, 0
	if !reflect.DeepEqual(recorded, replayed) {
		t.Fatalf("replay diverged from the recorded run:\nrecorded %+v\nreplayed %+v", recorded, replayed)
	}
}

// TestReplayCrossArbiterSameInjections is the portability half: replaying
// the trace under a different arbiter re-injects the exact same packet
// sequence (verified by re-recording the replay and comparing traces),
// even though the measured performance differs.
func TestReplayCrossArbiterSameInjections(t *testing.T) {
	dir := t.TempDir()
	rec := recordSetup(dir)
	if _, err := RunTiming(rec); err != nil {
		t.Fatal(err)
	}
	original, err := workload.ReadTraceFile(rec.RecordTo)
	if err != nil {
		t.Fatal(err)
	}

	for _, kind := range []core.Kind{core.KindSPAARotary, core.KindPIM1, core.KindWFABase} {
		rerec := filepath.Join(dir, "replay-"+kind.String()+".trace")
		replay := TimingSetup{
			Width: rec.Width, Height: rec.Height, Kind: kind,
			Cycles: rec.Cycles, Seed: rec.Seed,
			ReplayFrom: rec.RecordTo,
			RecordTo:   rerec,
		}
		if _, err := RunTiming(replay); err != nil {
			t.Fatal(err)
		}
		got, err := workload.ReadTraceFile(rerec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(original.Events, got.Events) {
			t.Fatalf("%v: replay injected a different packet sequence (%d vs %d events)",
				kind, len(got.Events), len(original.Events))
		}
	}
}

// TestReplayRejectsWrongTorus: a trace recorded on one machine size must
// not silently replay on another.
func TestReplayRejectsWrongTorus(t *testing.T) {
	dir := t.TempDir()
	rec := recordSetup(dir)
	rec.Cycles = 200
	if _, err := RunTiming(rec); err != nil {
		t.Fatal(err)
	}
	bad := TimingSetup{
		Width: 8, Height: 8, Kind: core.KindSPAARotary, Cycles: 200, Seed: 1,
		ReplayFrom: rec.RecordTo,
	}
	if _, err := RunTiming(bad); err == nil {
		t.Fatal("replay on the wrong torus size was accepted")
	}
}

// TestReplayMissingTraceFails: a missing trace file is a run error, not a
// silent empty run.
func TestReplayMissingTraceFails(t *testing.T) {
	s := TimingSetup{
		Width: 4, Height: 4, Kind: core.KindSPAARotary, Cycles: 100, Seed: 1,
		ReplayFrom: filepath.Join(t.TempDir(), "missing.trace"),
	}
	if _, err := RunTiming(s); err == nil {
		t.Fatal("missing trace accepted")
	}
}

// TestDatagramModelRuns exercises the open-loop model end to end through
// the timing harness.
func TestDatagramModelRuns(t *testing.T) {
	res, err := RunTiming(TimingSetup{
		Width: 4, Height: 4, Kind: core.KindSPAABase, Pattern: traffic.Uniform,
		Rate: 0.02, Cycles: 1000, Seed: 1, Model: "datagram",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 {
		t.Fatal("datagram model delivered nothing")
	}
	// Open loop: every demand becomes exactly one packet, so the
	// transaction counter tracks injections, not protocol round trips.
	if res.Completed == 0 {
		t.Fatal("datagram model completed no demands")
	}
}

// TestProcessesChangeDynamicsNotLoad: at the same mean rate, the bursty
// process must deliver a comparable packet count (same offered load) to
// Bernoulli's.
func TestProcessesChangeDynamicsNotLoad(t *testing.T) {
	run := func(process string) int64 {
		res, err := RunTiming(TimingSetup{
			Width: 4, Height: 4, Kind: core.KindSPAARotary, Pattern: traffic.Uniform,
			Rate: 0.01, Cycles: 8000, Seed: 5, Process: process,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Packets
	}
	bern := run("bernoulli")
	burst := run("onoff")
	det := run("deterministic")
	if bern == 0 || burst == 0 || det == 0 {
		t.Fatalf("empty run: bernoulli=%d onoff=%d deterministic=%d", bern, burst, det)
	}
	for name, got := range map[string]int64{"onoff": burst, "deterministic": det} {
		ratio := float64(got) / float64(bern)
		if ratio < 0.7 || ratio > 1.3 {
			t.Errorf("%s delivered %.2fx Bernoulli's packets; offered load should match", name, ratio)
		}
	}
}

// TestRecordWriteFailureSurfaces: an unwritable record path is an error.
func TestRecordWriteFailureSurfaces(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: unwritable directories are still writable")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	s := recordSetup(filepath.Join(dir, "sub"))
	s.Cycles = 100
	if _, err := RunTiming(s); err == nil {
		t.Fatal("record into unwritable directory succeeded")
	}
}

// TestBitPatternOnNonPowerOfTwoIsAnError: a bad pattern/torus pairing is
// a setup error, not a mid-simulation panic.
func TestBitPatternOnNonPowerOfTwoIsAnError(t *testing.T) {
	_, err := RunTiming(TimingSetup{
		Width: 5, Height: 3, Kind: core.KindSPAARotary, Pattern: traffic.BitReversal,
		Rate: 0.01, Cycles: 100, Seed: 1,
	})
	if err == nil {
		t.Fatal("bit-reversal on a 5x3 torus did not error")
	}
}

// TestReplayRejectsDifferentClock: a trace recorded under the scaled
// (2x-fast) pipeline must not replay on the default clock, where its
// clock-phase events would fall between edges and silently vanish.
func TestReplayRejectsDifferentClock(t *testing.T) {
	dir := t.TempDir()
	rec := recordSetup(dir)
	rec.Cycles = 200
	rec.ScalePipeline = true
	if _, err := RunTiming(rec); err != nil {
		t.Fatal(err)
	}
	bad := TimingSetup{
		Width: rec.Width, Height: rec.Height, Kind: rec.Kind, Cycles: 200, Seed: 1,
		ReplayFrom: rec.RecordTo,
	}
	if _, err := RunTiming(bad); err == nil {
		t.Fatal("replay on a different router clock was accepted")
	}
	// On the matching clock it replays fine.
	good := bad
	good.ScalePipeline = true
	if _, err := RunTiming(good); err != nil {
		t.Fatalf("replay on the recording clock failed: %v", err)
	}
}

package experiment

// metrics_test.go enforces the telemetry layer's contracts at the
// experiment level: a metrics-enabled run measures exactly what a bare
// run measures (observation-only, byte-compared after stripping the
// snapshots themselves), every timing point carries a snapshot, the
// sidecar document round-trips, and Spec.Metrics participates in the
// cache key so metric-laden and bare points never cross-contaminate.

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
)

// metricsTestSpec is a short timing matrix crossing the SPAA pipeline
// and a wave arbiter, so both instrumentation paths run.
func metricsTestSpec() Spec {
	return NewSpec(
		WithName("metrics test"),
		WithTopology(4, 4),
		WithArbiters("SPAA-rotary", "PIM1"),
		WithPatterns("random"),
		WithRates(0.02, 0.05),
		WithCycles(800),
		WithSeed(11),
	)
}

// stripMetrics removes the telemetry from a Result, leaving only the
// measured numbers, so a metrics run can be byte-compared to a bare run.
func stripMetrics(r *Result) {
	r.Spec.Metrics = false
	for si := range r.Series {
		for pi := range r.Series[si].Points {
			r.Series[si].Points[pi].Metrics = nil
		}
	}
}

// TestMetricsObservationOnly is the experiment-level half of the
// telemetry contract: enabling metrics (with and without the checker)
// must not change a single measured byte.
func TestMetricsObservationOnly(t *testing.T) {
	run := func(mut ...SpecOption) *Result {
		t.Helper()
		sp := metricsTestSpec()
		for _, m := range mut {
			m(&sp)
		}
		res, err := NewRunner(WithWorkers(2)).Run(context.Background(), sp)
		if err != nil {
			t.Fatal(err)
		}
		res.ElapsedNS = 0
		return res
	}
	bare := run()
	instrumented := run(WithMetrics())
	checked := run(WithMetrics(), WithCheck())

	for _, s := range instrumented.Series {
		for _, p := range s.Points {
			if p.Metrics == nil {
				t.Fatalf("series %q rate %g: metrics-enabled point has no snapshot", s.Label, p.Rate)
			}
			if p.Metrics.Version != 1 || p.Metrics.ElapsedTicks <= 0 {
				t.Errorf("series %q: implausible snapshot header: %+v", s.Label, p.Metrics)
			}
		}
	}

	stripMetrics(instrumented)
	stripMetrics(checked)
	checked.Spec.Check = false
	want, _ := json.Marshal(bare)
	got, _ := json.Marshal(instrumented)
	if string(got) != string(want) {
		t.Error("metrics-enabled run diverged from bare run (observation-only contract broken)")
	}
	gotChecked, _ := json.Marshal(checked)
	if string(gotChecked) != string(want) {
		t.Error("metrics+check run diverged from bare run (observation-only contract broken)")
	}

	if bare.Series[0].Points[0].Metrics != nil {
		t.Error("bare run carries a snapshot; metrics must be opt-in")
	}
}

func TestMetricsSidecarRoundTrip(t *testing.T) {
	sp := metricsTestSpec()
	WithMetrics()(&sp)
	res, err := NewRunner(WithWorkers(1)).Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}

	sc := MetricsSidecarOf(res)
	if sc == nil {
		t.Fatal("metrics run produced no sidecar")
	}
	wantPoints := 0
	for _, s := range res.Series {
		wantPoints += len(s.Points)
	}
	if len(sc.Points) != wantPoints {
		t.Fatalf("sidecar has %d points, result has %d", len(sc.Points), wantPoints)
	}
	if sc.Name != sp.Name {
		t.Errorf("sidecar name = %q, want %q", sc.Name, sp.Name)
	}

	path := filepath.Join(t.TempDir(), "run.metrics.json")
	if err := sc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMetricsSidecarFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(sc)
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Error("sidecar did not round-trip byte-identically")
	}

	// A bare result yields no sidecar at all.
	bareSpec := metricsTestSpec()
	bare, err := NewRunner(WithWorkers(1)).Run(context.Background(), bareSpec)
	if err != nil {
		t.Fatal(err)
	}
	if MetricsSidecarOf(bare) != nil {
		t.Error("bare run produced a sidecar")
	}
}

func TestStripVolatile(t *testing.T) {
	StripVolatile(nil) // must not panic
	r := &Result{ElapsedNS: 12345}
	StripVolatile(r)
	if r.ElapsedNS != 0 {
		t.Errorf("ElapsedNS = %d after StripVolatile", r.ElapsedNS)
	}
}

// TestMetricsResultRoundTrip pins that a metric-laden Result survives
// the strict JSONL writer/reader unchanged, and that bare results do not
// grow a metrics key.
func TestMetricsResultRoundTrip(t *testing.T) {
	sp := metricsTestSpec()
	WithMetrics()(&sp)
	res, err := NewRunner(WithWorkers(1)).Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(res.Series)
	b, _ := json.Marshal(back.Series)
	if string(a) != string(b) {
		t.Error("metric-laden result did not round-trip through JSONL")
	}

	data, _ := json.Marshal(res.Series[0].Points[0])
	if !json.Valid(data) {
		t.Fatal("point did not marshal")
	}
	bare := ResultPoint{}
	bareData, _ := json.Marshal(bare)
	if string(bareData) != "{}" && jsonHasKey(bareData, "metrics") {
		t.Errorf("bare point emits a metrics key: %s", bareData)
	}
}

func jsonHasKey(data []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}

// TestMetricsParticipatesInSpecHash pins the cache-correctness rule:
// metrics changes the bytes of every point, so it must change the cache
// key — unlike Check, which is byte-invisible and stripped.
func TestMetricsParticipatesInSpecHash(t *testing.T) {
	bare := metricsTestSpec()
	withMetrics := metricsTestSpec()
	WithMetrics()(&withMetrics)
	withCheck := metricsTestSpec()
	WithCheck()(&withCheck)

	hBare, err := SpecHash(bare)
	if err != nil {
		t.Fatal(err)
	}
	hMetrics, err := SpecHash(withMetrics)
	if err != nil {
		t.Fatal(err)
	}
	hCheck, err := SpecHash(withCheck)
	if err != nil {
		t.Fatal(err)
	}
	if hBare == hMetrics {
		t.Error("metrics spec hashes identically to bare spec; cached bare points would be served to metrics runs")
	}
	if hBare != hCheck {
		t.Error("check spec hashes differently from bare spec; check is observation-only and must be stripped")
	}
}

func TestMetricsSpecJSONRoundTrip(t *testing.T) {
	sp := metricsTestSpec()
	WithMetrics()(&sp)
	data, err := EncodeSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Metrics {
		t.Error("Metrics did not survive the spec JSON round trip")
	}

	bare := metricsTestSpec()
	bareData, err := EncodeSpec(bare)
	if err != nil {
		t.Fatal(err)
	}
	if jsonHasKey(bareData, "metrics") {
		t.Errorf("bare spec emits a metrics key: %s", bareData)
	}
}

func TestMetricsRejectedForStandalone(t *testing.T) {
	sp := NewSpec(
		WithArbiters("MCM"),
		WithStandaloneSweep(AxisLoad, 0.5, 1.0),
		WithCycles(100),
		WithMetrics(),
	)
	if err := sp.Validate(); err == nil {
		t.Error("standalone spec with metrics validated; the standalone model has no routers to observe")
	}
}

// TestCoordinatorStatsTiming pins the new latency fields: a run reports
// its wall-clock duration and one duration per shard, and Stats returns
// an independent copy of the slice.
func TestCoordinatorStatsTiming(t *testing.T) {
	sp := metricsTestSpec()
	c := NewCoordinator(WithCoordinatorWorkers(2))
	if _, err := c.Run(context.Background(), sp); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ElapsedNS <= 0 {
		t.Errorf("ElapsedNS = %d, want > 0", st.ElapsedNS)
	}
	if len(st.ShardDurationsNS) != st.Shards {
		t.Fatalf("%d shard durations for %d shards", len(st.ShardDurationsNS), st.Shards)
	}
	for i, d := range st.ShardDurationsNS {
		if d <= 0 {
			t.Errorf("shard %d duration = %d, want > 0", i, d)
		}
	}
	st.ShardDurationsNS[0] = -1
	if c.Stats().ShardDurationsNS[0] == -1 {
		t.Error("Stats returned a live reference to the internal durations slice")
	}
}

package experiment

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// quickStandaloneSpec is a deterministic, fast spec for schema tests.
func quickStandaloneSpec() Spec {
	return NewSpec(
		WithName("schema probe"),
		WithArbiters("MCM", "PIM1"),
		WithStandaloneSweep(AxisLoad, 0.5, 1.0, 2.0),
		WithCycles(50),
		WithSeed(1),
	)
}

func runQuickResult(t *testing.T) *Result {
	t.Helper()
	res, err := NewRunner(WithWorkers(1)).Run(context.Background(), quickStandaloneSpec())
	if err != nil {
		t.Fatal(err)
	}
	res.ElapsedNS = 0 // the one nondeterministic field
	return res
}

func TestResultJSONLRoundTrip(t *testing.T) {
	res := runQuickResult(t)
	var buf bytes.Buffer
	if err := res.EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResultJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Errorf("JSONL round-trip changed the result:\ngot  %+v\nwant %+v", back, res)
	}
}

func TestResultGoldenJSONL(t *testing.T) {
	res := runQuickResult(t)
	var buf bytes.Buffer
	if err := res.EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "standalone.result.jsonl", buf.Bytes())
}

func TestResultFileRoundTrip(t *testing.T) {
	res := runQuickResult(t)
	path := filepath.Join(t.TempDir(), "result.json")
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Errorf("file round-trip changed the result")
	}
}

func TestDecodeResultJSONLStrict(t *testing.T) {
	res := runQuickResult(t)
	var buf bytes.Buffer
	if err := res.EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"empty", "", "empty"},
		{"unknown version", strings.Replace(good, `"version":1`, `"version":7`, 1), "version"},
		{"unknown record type", strings.Replace(good, `"type":"series"`, `"type":"serie"`, 1), "unknown record type"},
		{"unknown field", strings.Replace(good, `"type":"point"`, `"type":"point","extra":1`, 1), "unknown field"},
		{"point before series", strings.Replace(good, `"type":"series"`, `"type":"point","series":"x","point":{}`, 1), ""},
		{"no header", strings.TrimPrefix(good, good[:strings.Index(good, "\n")+1]), "header"},
	}
	for _, tc := range cases {
		if _, err := DecodeResultJSONL(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: decoder accepted the document", tc.name)
		} else if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestResultTableShapes checks the layout dispatch: standalone specs get
// the axis table, single-axis sweeps get the panel table, and matrices
// get one row per scenario.
func TestResultTableShapes(t *testing.T) {
	res := runQuickResult(t)
	tb := res.Table()
	if tb.Columns[0] != AxisLoad {
		t.Errorf("standalone table axis column = %q", tb.Columns[0])
	}
	if len(tb.Rows) != 3 || len(tb.Columns) != 3 {
		t.Errorf("standalone table is %dx%d, want 3x3", len(tb.Rows), len(tb.Columns))
	}

	matrix := &Result{
		Version: ResultVersion,
		Spec: NewSpec(
			WithName("m"),
			WithTopology(4, 4),
			WithArbiters("PIM1"),
			WithPatterns("random", "tornado"),
			WithRates(0.01),
			WithCycles(100),
		),
		Series: []ResultSeries{
			{Label: "a", Arbiter: "PIM1", Pattern: "random", Process: "bernoulli",
				Points: []ResultPoint{{Rate: 0.01}}},
			{Label: "b", Arbiter: "PIM1", Pattern: "tornado", Process: "bernoulli",
				Points: []ResultPoint{{Rate: 0.01}}},
		},
	}
	tb = matrix.Table()
	if tb.Columns[0] != "algorithm" {
		t.Errorf("matrix table first column = %q, want algorithm", tb.Columns[0])
	}
	if len(tb.Rows) != 2 {
		t.Errorf("matrix table has %d rows, want 2", len(tb.Rows))
	}

	// Replay specs have no rate axis, so the panel layout would render
	// zero rows; the measured point must still appear.
	replay := &Result{
		Version: ResultVersion,
		Spec: NewSpec(
			WithName("r"),
			WithTopology(4, 4),
			WithArbiters("PIM1"),
			WithReplay("x.trace"),
			WithCycles(100),
		),
		Series: []ResultSeries{
			{Label: "PIM1", Arbiter: "PIM1", Points: []ResultPoint{{Throughput: 0.5, Packets: 7}}},
		},
	}
	tb = replay.Table()
	if len(tb.Rows) != 1 {
		t.Errorf("replay table has %d rows, want 1", len(tb.Rows))
	}
}

package experiment

// hash.go is the cache-key half of the sweep service: SpecHash reduces a
// validated Spec to the sha256 of its canonical semantic JSON, so two
// Specs that would simulate the same numbers share one content address
// regardless of how they were written down.
//
// Semantic fields are everything that changes a single byte of a
// ResultPoint: mode, arbiters, topology, the workload axes, timing
// fidelity (cycles/warmup/seed/pipeline/epochs), the standalone section,
// and the replication settings. Execution knobs are excluded:
//
//   - Name titles tables and progress labels, never measurements;
//   - Check is observation-only by contract (a checked run is
//     byte-identical to an unchecked one, test-enforced since PR 5);
//   - Metrics, by contrast, is INCLUDED: telemetry never perturbs the
//     measured numbers, but the snapshots ride inside each ResultPoint,
//     so a metrics-enabled run's bytes differ — a cached metric-laden
//     point must never be served to a run that did not ask for metrics,
//     nor a bare point to one that did;
//   - Workload.RecordTo captures a side-effect trace without changing
//     the run (and record/replay specs bypass the cache anyway, because
//     a path does not content-address the trace behind it);
//   - worker counts, progress sinks, and shard layout live outside the
//     Spec entirely, and PR 1's serial==parallel byte-identity is what
//     makes excluding them sound.
//
// Hash stability is part of the cache's on-disk contract: the golden
// tests in hash_test.go pin the hash of every canned figure Spec, so an
// accidental change to the canonical form (field renames, reordering,
// new always-emitted fields) fails CI instead of silently orphaning
// every existing cache entry.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// hashableSpec strips the execution knobs, leaving the canonical
// semantic spec that SpecHash serializes.
func hashableSpec(s Spec) Spec {
	s.Name = ""
	s.Check = false
	if s.Workload != nil {
		w := *s.Workload
		w.RecordTo = ""
		s.Workload = &w
	}
	return s
}

// SpecHash returns the content address of the spec's semantic fields:
// the lowercase-hex sha256 of its canonical JSON, suitable as a cache
// key. Two specs differing only in execution knobs (Name, Check,
// Workload.RecordTo) hash identically; any field that can change a
// measurement participates. The spec must be valid.
func SpecHash(s Spec) (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	data, err := json.Marshal(hashableSpec(s))
	if err != nil {
		return "", fmt.Errorf("experiment: hash spec: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

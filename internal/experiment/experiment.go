// Package experiment reproduces the paper's evaluation: each figure of §5
// has a runner that builds the right standalone or timing configuration,
// sweeps the load axis, and returns the series/tables the paper plots.
// The cmd/sweep tool and the repository's benchmarks are thin wrappers
// around this package.
package experiment

import (
	"context"
	"fmt"
	"sync/atomic"

	"alpha21364/internal/check"
	"alpha21364/internal/core"
	"alpha21364/internal/network"
	"alpha21364/internal/obs"
	"alpha21364/internal/router"
	"alpha21364/internal/sim"
	"alpha21364/internal/stats"
	"alpha21364/internal/topology"
	"alpha21364/internal/traffic"
	"alpha21364/internal/workload"
)

// Options tunes how faithfully the experiments are rerun. Quick mode
// shortens the simulations for CI and benchmarks; the full mode matches
// the paper's 75,000-cycle runs.
type Options struct {
	Quick bool
	Seed  uint64
	// CyclesOverride, when positive, replaces the per-run router cycle
	// count (used by the benchmark harness).
	CyclesOverride int
	// MaxRatePoints, when positive, subsamples each load sweep to at most
	// this many points, always keeping the lightest and heaviest loads.
	MaxRatePoints int
	// Workers bounds how many simulations run concurrently: 0 means one
	// per available CPU, 1 (or any negative value) runs serially. Results
	// are byte-identical regardless of the worker count.
	Workers int
	// Check enables the online invariant oracle on every canned spec the
	// options build (cmd/sweep -check).
	Check bool
	// Metrics enables the telemetry layer on every timing spec the options
	// build (cmd/sweep -metrics); standalone-model specs have no router
	// simulation to observe and are left unstamped.
	Metrics bool
	// Replications, when > 1, replicates every point of the canned specs
	// with derived seeds (cmd/sweep -reps); Confidence is the interval's
	// confidence level (0 = 0.95).
	Replications int
	Confidence   float64
	// TorusShards, when positive, spatially shards every timing spec the
	// options build into that many row bands (cmd/sweep -torus-shards);
	// standalone-model specs have no torus and are left unstamped.
	TorusShards int
	// Progress, when non-nil, is called once per finished simulation job;
	// see ProgressFunc.
	Progress ProgressFunc
	// sem and abort, when non-nil, are shared across nested fan-outs:
	// sem bounds simulations globally and abort propagates fail-fast
	// between sibling sweeps (see Options.limited in runner.go).
	sem   chan struct{}
	abort *atomic.Bool
	// ctx, when non-nil, halts job dispatch once cancelled; Runner.run
	// sets it from its caller's context.
	ctx context.Context
}

// TimingCycles returns the per-run router cycle count.
func (o Options) TimingCycles() int {
	if o.CyclesOverride > 0 {
		return o.CyclesOverride
	}
	if o.Quick {
		return 15000
	}
	return 75000
}

// StandaloneCycles returns the standalone-model iteration count.
func (o Options) StandaloneCycles() int {
	if o.Quick {
		return 400
	}
	return 1000
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// ApplyStudy stamps the study-wide toggles — invariant checking and
// replication — into a spec built from these options.
func (o Options) ApplyStudy(sp *Spec) {
	if o.Check {
		sp.Check = true
	}
	if o.Metrics && sp.Mode != ModeStandalone {
		sp.Metrics = true
	}
	if o.TorusShards > 0 && sp.Mode != ModeStandalone {
		if sp.Timing == nil {
			sp.Timing = &TimingSpec{}
		}
		sp.Timing.TorusShards = o.TorusShards
	}
	if o.Replications > 1 {
		sp.Replications = o.Replications
		if o.Confidence != 0 {
			sp.Confidence = o.Confidence
		}
	}
}

// NoWarmup is a TimingSetup.WarmupFraction sentinel requesting that no
// cycles be excluded from statistics. (A literal 0 keeps the 0.2 default
// so existing callers are unaffected.)
const NoWarmup = -1.0

// TimingSetup describes one timing-model run.
type TimingSetup struct {
	Width, Height  int
	Kind           core.Kind
	Pattern        traffic.Pattern
	Rate           float64 // new transactions per node per router cycle
	MaxOutstanding int     // 0 means the 21364 default of 16
	ScalePipeline  bool    // Figure 11a's 2x-deep, 2x-fast pipeline
	Cycles         int     // router cycles to simulate
	// Process names the arrival process ("" or "bernoulli" is the paper's
	// Bernoulli law; "onoff" is bursty, "deterministic" is fixed-rate; see
	// workload.ProcessNames).
	Process string
	// Model names the transaction model ("" or "coherence" is the paper's
	// 2-hop/3-hop mix; "datagram" is the open-loop single-packet model).
	Model string
	// RecordTo, when non-empty, captures the run's injection stream to a
	// trace file at that path.
	RecordTo string
	// ReplayFrom, when non-empty, replays a recorded trace instead of
	// generating traffic; Pattern, Rate, Process, and Model are ignored.
	ReplayFrom string
	// WarmupFraction is the share of the run excluded from statistics.
	// 0 means the 0.2 default; a negative value (use NoWarmup) disables
	// the warmup entirely so statistics cover the whole run.
	WarmupFraction float64
	Seed           uint64
	// Check enables the online invariant oracle (internal/check): grant
	// legality on every arbitration, periodic conservation/bounds sweeps
	// with a packet-arena cross-check, and a deadlock watchdog. The first
	// violation aborts the run with the structured report as the error.
	// Checking never perturbs the simulation, so a clean checked run's
	// results are identical to an unchecked one's.
	Check bool
	// Metrics enables the telemetry layer (internal/obs): per-router
	// occupancy/stall/arbitration counters, per-link utilization, sink
	// throughput, and a flight recorder per router (dumped by the deadlock
	// watchdog when Check is also set). Like Check, telemetry only
	// observes: the run's results are identical either way; the snapshot
	// lands in TimingResult.Metrics.
	Metrics bool
	// EpochCycles, when positive, tracks delivered flits in epochs of that
	// many router cycles, exposing the cyclic delivered-throughput pattern
	// the paper describes for saturated networks (§3.4).
	EpochCycles int
	// TorusShards, when positive, partitions the torus into that many
	// contiguous row bands, each owning its own tick-wheel engine,
	// synchronized conservatively with lookahead equal to the link
	// latency (CMB discipline; see internal/sim.ShardGroup). Results are
	// byte-identical to a monolithic run at any shard count; 0 keeps the
	// single-engine path. Must be at most Height.
	TorusShards int
}

// workloadConfig expands the setup into the workload decomposition:
// either a replay of a recorded trace, or the configured pattern ×
// process × model combination (defaulting to the paper's uniform ×
// Bernoulli × coherence). period is the router clock the run will use,
// stamped into recorded traces and checked against replayed ones.
func (s TimingSetup) workloadConfig(t topology.Torus, period sim.Ticks) (workload.Config, error) {
	var cfg workload.Config
	if s.ReplayFrom != "" {
		trace, err := workload.ReadTraceFile(s.ReplayFrom)
		if err != nil {
			return cfg, err
		}
		replay := workload.NewReplay(trace)
		if err := replay.CheckCompatible(s.Width, s.Height, period); err != nil {
			return cfg, err
		}
		cfg = workload.Config{Process: workload.NewSilent(), Model: replay, Seed: s.Seed}
	} else {
		if err := s.Pattern.Validate(t); err != nil {
			return cfg, err
		}
		tcfg := traffic.DefaultConfig(s.Pattern, s.Rate)
		tcfg.Seed = s.Seed
		if s.MaxOutstanding > 0 {
			tcfg.MaxOutstanding = s.MaxOutstanding
		}
		cfg = tcfg.Workload(t)
		proc, err := workload.NewProcess(s.Process, s.Rate)
		if err != nil {
			return cfg, err
		}
		cfg.Process = proc
		if s.Model != "" {
			model, err := workload.NewModel(s.Model)
			if err != nil {
				return cfg, err
			}
			cfg.Model = model
		}
	}
	if s.RecordTo != "" {
		cfg.Record = &workload.Trace{
			Width: s.Width, Height: s.Height, Period: period,
			Label: fmt.Sprintf("kind=%v pattern=%v process=%s rate=%g seed=%d cycles=%d",
				s.Kind, s.Pattern, cfg.Process.Name(), s.Rate, s.Seed, s.Cycles),
		}
	}
	return cfg, nil
}

// TimingResult is one BNF point plus diagnostic counters.
type TimingResult struct {
	stats.Point
	Completed    int64
	DrainEntries int64
	Collisions   int64
	MeanHops     float64
	// LatencyP50NS, LatencyP95NS, and LatencyP99NS are the packet-latency
	// quantiles in nanoseconds, exact to the tick below 5.46 µs (see
	// stats.Collector.PercentileLatencyNS).
	LatencyP50NS float64
	LatencyP95NS float64
	LatencyP99NS float64
	// AvgLatencyP99 mirrors LatencyP99NS.
	//
	// Deprecated: the name is misleading — the value is a p99 latency,
	// not an average. Use LatencyP99NS.
	AvgLatencyP99 float64
	// EpochFlits and ThroughputCoV are filled when TimingSetup.EpochCycles
	// is set: delivered flits per epoch and the coefficient of variation
	// of the post-warmup epochs (a saturation-oscillation measure).
	EpochFlits    []int64
	ThroughputCoV float64
	// Metrics is the run's telemetry snapshot when TimingSetup.Metrics is
	// set, nil otherwise.
	Metrics *obs.Snapshot
}

// installChecker wires the invariant oracle over a built simulation: the
// checker observes every router's arbitration through the oracle hooks
// and sweeps the conservation/bounds/watchdog invariants on a periodic
// self-rescheduling event. The sweep only reads simulation state, so an
// uncompromised checked run stays byte-identical to an unchecked one.
func installChecker(eng *sim.Engine, net *network.Network, gen *workload.Generator, period sim.Ticks, met *obs.SimMetrics) *check.Checker {
	routers := make([]*router.Router, net.Nodes())
	for node := 0; node < net.Nodes(); node++ {
		routers[node] = net.Router(topology.Node(node))
	}
	var rings []*obs.FlightRing
	if met != nil {
		rings = make([]*obs.FlightRing, len(routers))
		for i := range routers {
			rings[i] = &met.Flight[i]
		}
	}
	chk := check.New(check.Config{RouterPeriod: period}, check.Probes{
		Injected:          func() int64 { return net.TotalCounters().Injected },
		Delivered:         func() int64 { return net.TotalCounters().DeliveredLocal },
		Buffered:          net.Buffered,
		LinkFlight:        net.LinkFlight,
		PendingInjections: gen.PendingInjections,
		ArenaLive:         gen.ArenaLive,
		Sunk:              gen.Sunk,
		Stop:              eng.Stop,
		Routers:           routers,
		FlightRings:       rings,
	})
	for _, r := range routers {
		r.SetOracle(chk)
	}
	interval := chk.Interval()
	var sweep func()
	sweep = func() {
		chk.Sweep(eng.Now())
		if chk.Err() == nil {
			eng.ScheduleDelay(interval, sweep)
		}
	}
	eng.ScheduleDelay(interval, sweep)
	return chk
}

// cancelPollCycles is how often (in router cycles) a context-supervised
// timing run polls for cancellation; it bounds how stale a cancel can go
// unnoticed inside one simulation.
const cancelPollCycles = 512

// RunTiming executes one timing simulation and returns its BNF point.
func RunTiming(s TimingSetup) (TimingResult, error) {
	return runTiming(nil, s, nil)
}

// RunTimingCtx is RunTiming under a context: cancellation stops the
// simulation within cancelPollCycles router cycles and returns the
// context's error. A nil context behaves like RunTiming.
func RunTimingCtx(ctx context.Context, s TimingSetup) (TimingResult, error) {
	return runTiming(ctx, s, nil)
}

// RunTimingWithRouter is RunTiming with a hook that may adjust the router
// configuration before the network is built; the ablation benchmarks use
// it to vary pipeline depth and initiation interval independently of the
// per-algorithm defaults.
func RunTimingWithRouter(s TimingSetup, mutate func(*router.Config)) (TimingResult, error) {
	return runTiming(nil, s, mutate)
}

func runTiming(ctx context.Context, s TimingSetup, mutate func(*router.Config)) (TimingResult, error) {
	rcfg := router.DefaultConfig(s.Kind)
	rcfg.Seed = s.Seed
	if s.ScalePipeline {
		rcfg = rcfg.ScalePipeline()
	}
	if mutate != nil {
		mutate(&rcfg)
	}
	warmFrac := s.WarmupFraction
	switch {
	case warmFrac == 0:
		warmFrac = 0.2
	case warmFrac < 0:
		warmFrac = 0
	}
	end := sim.Ticks(s.Cycles) * rcfg.RouterPeriod
	warmup := sim.Ticks(float64(end) * warmFrac)

	eng := sim.NewEngine()
	col := stats.NewCollector(warmup)
	var epochs *stats.EpochSeries
	if s.EpochCycles > 0 {
		epochLen := sim.Ticks(s.EpochCycles) * rcfg.RouterPeriod
		epochs = col.TrackEpochs(epochLen)
		epochs.Reserve(int(end/epochLen) + 1)
	}
	ncfg := network.Config{Width: s.Width, Height: s.Height, Router: rcfg}
	var net *network.Network
	var sg *sim.ShardGroup
	var err error
	if s.TorusShards > 0 {
		if s.TorusShards > s.Height {
			return TimingResult{}, fmt.Errorf("experiment: torus shards %d exceeds height %d", s.TorusShards, s.Height)
		}
		part := topology.PartitionRows(topology.NewTorus(s.Width, s.Height), s.TorusShards)
		members := make([]*sim.Engine, part.Shards())
		for i := range members {
			members[i] = sim.NewEngine()
		}
		pb := sim.NewPostBuffer(s.Width * s.Height)
		net, err = network.NewSharded(ncfg, eng, members, part, pb, col)
		if err != nil {
			return TimingResult{}, err
		}
		sg = sim.NewShardGroup(eng, members, pb, net.Lookahead())
		sg.SetEdge(rcfg.RouterPeriod, 0, net.TickShard)
		defer sg.Close()
	} else {
		net, err = network.New(ncfg, eng, col)
		if err != nil {
			return TimingResult{}, err
		}
	}
	wcfg, err := s.workloadConfig(net.Torus(), rcfg.RouterPeriod)
	if err != nil {
		return TimingResult{}, err
	}
	gen := workload.New(wcfg, net, eng, col)
	eng.AddClock(rcfg.RouterPeriod, 0, gen)
	var met *obs.SimMetrics
	if s.Metrics {
		met = obs.NewSimMetrics(net.Nodes(), net.NumLinks())
		for node := 0; node < net.Nodes(); node++ {
			r := net.Router(topology.Node(node))
			r.SetMetrics(&met.Routers[node])
			r.SetFlight(&met.Flight[node])
		}
		net.SetMetrics(&met.Network)
	}
	var chk *check.Checker
	if s.Check {
		chk = installChecker(eng, net, gen, rcfg.RouterPeriod, met)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return TimingResult{}, err
		}
		// A self-rescheduling no-op event polls the context; it never
		// mutates simulation state, so an uncancelled supervised run stays
		// byte-identical to an unsupervised one.
		interval := sim.Ticks(cancelPollCycles) * rcfg.RouterPeriod
		var poll func()
		poll = func() {
			if ctx.Err() != nil {
				eng.Stop()
				return
			}
			eng.ScheduleDelay(interval, poll)
		}
		eng.ScheduleDelay(interval, poll)
	}
	if sg != nil {
		sg.Run(end)
	} else {
		eng.Run(end)
	}
	if chk != nil {
		chk.Final(eng.Now())
		if err := chk.Err(); err != nil {
			return TimingResult{}, err
		}
	}
	if ctx != nil && ctx.Err() != nil {
		return TimingResult{}, ctx.Err()
	}
	if wcfg.Record != nil {
		if err := wcfg.Record.WriteFile(s.RecordTo); err != nil {
			return TimingResult{}, err
		}
	}

	point := col.BNF(net.Nodes(), end)
	point.OfferedRate = s.Rate
	c := net.TotalCounters()
	lat := col.LatencySummaryNS()
	res := TimingResult{
		Point:         point,
		Completed:     gen.Completed(),
		DrainEntries:  c.DrainEntries,
		Collisions:    c.Collisions,
		MeanHops:      col.MeanHops(),
		LatencyP50NS:  lat.P50NS,
		LatencyP95NS:  lat.P95NS,
		LatencyP99NS:  lat.P99NS,
		AvgLatencyP99: lat.P99NS,
	}
	if epochs != nil {
		res.EpochFlits = epochs.Values()
		warmEpochs := int(warmup / (sim.Ticks(s.EpochCycles) * rcfg.RouterPeriod))
		// The last epoch may be partial (deliveries in flight at the end of
		// the run); exclude it from the oscillation measure.
		res.ThroughputCoV = epochs.CoefficientOfVariation(warmEpochs, len(res.EpochFlits)-1)
	}
	if met != nil {
		met.Flush(end)
		res.Metrics = met.Snapshot(s.Kind.String(), end)
	}
	return res, nil
}

// specFromSetup lifts a hand-built TimingSetup (the deprecated API) into
// a declarative Spec covering the given algorithms and rate sweep; the
// adapters keeping the old entry points alive run it through a Runner.
func specFromSetup(name string, s TimingSetup, kinds []core.Kind, rates []float64) Spec {
	sp := Spec{
		Version:  SpecVersion,
		Name:     name,
		Arbiters: kindNames(kinds),
		Check:    s.Check,
		Topology: &TopologySpec{Width: s.Width, Height: s.Height},
		Workload: &WorkloadSpec{MaxOutstanding: s.MaxOutstanding},
		Timing: &TimingSpec{
			Cycles:         s.Cycles,
			WarmupFraction: s.WarmupFraction,
			Seed:           s.Seed,
			ScalePipeline:  s.ScalePipeline,
			EpochCycles:    s.EpochCycles,
		},
	}
	if s.ReplayFrom != "" {
		sp.Workload.ReplayFrom = s.ReplayFrom
		return sp
	}
	sp.Workload.Patterns = []string{s.Pattern.String()}
	if s.Process != "" {
		sp.Workload.Processes = []string{s.Process}
	}
	sp.Workload.Model = s.Model
	sp.Workload.Rates = append([]float64(nil), rates...)
	sp.Workload.RecordTo = s.RecordTo
	return sp
}

// Sweep runs a load sweep for one algorithm and returns its BNF curve.
// The rates are simulated concurrently (one worker per CPU); use SweepOpts
// to bound or disable the parallelism.
//
// Deprecated: build a Spec (NewSpec/WithRates) and execute it with a
// Runner, which adds cancellation, streaming events, and a serializable
// Result. This adapter remains for compatibility.
func Sweep(s TimingSetup, rates []float64) (stats.Series, error) {
	return SweepOpts(Options{}, s, rates)
}

// SweepOpts is Sweep with explicit runner options (worker count and
// progress reporting). Only those two fields of o are consulted; the
// simulation itself is fully described by s.
//
// Deprecated: use a Runner (NewRunner, WithWorkers, WithEventSink); see
// Sweep.
func SweepOpts(o Options, s TimingSetup, rates []float64) (stats.Series, error) {
	series := stats.Series{Label: s.Kind.String()}
	if len(rates) == 0 {
		return series, nil
	}
	res, err := optionsRunner(o).Run(context.Background(), specFromSetup("sweep", s, []core.Kind{s.Kind}, rates))
	if res != nil && len(res.Series) > 0 {
		for _, pt := range res.Series[0].Points {
			series.Points = append(series.Points, pt.statsPoint())
		}
	}
	return series, err
}

// Panel is one BNF chart: several algorithms swept over the same loads.
type Panel struct {
	Title  string
	Rates  []float64
	Series []stats.Series
}

// runPanel sweeps each algorithm over the panel's rates through the
// Runner: the kinds×rates grid is one Spec, so the worker pool stays
// saturated across algorithm boundaries, and assembly by (kind, rate)
// index keeps the panel identical however the jobs are scheduled.
func runPanel(title string, o Options, base TimingSetup, kinds []core.Kind, rates []float64) (Panel, error) {
	if len(rates) == 0 {
		p := Panel{Title: title, Rates: rates}
		for _, k := range kinds {
			p.Series = append(p.Series, stats.Series{Label: k.String()})
		}
		return p, nil
	}
	res, err := optionsRunner(o).Run(context.Background(), specFromSetup(title, base, kinds, rates))
	return figurePanel(title, res, err)
}

// figurePanel converts a Runner result to the old Panel contract: on
// failure only complete series survive and the error names the panel and
// the algorithm whose sweep broke.
func figurePanel(title string, res *Result, err error) (Panel, error) {
	if res == nil {
		return Panel{Title: title}, fmt.Errorf("%s: %w", title, err)
	}
	p := Panel{Title: title}
	if res.Spec.Workload != nil {
		p.Rates = append(p.Rates, res.Spec.Workload.Rates...)
	}
	failing := ""
	for _, s := range res.Series {
		if len(s.Points) < len(p.Rates) {
			if failing == "" {
				failing = s.Arbiter
			}
			continue
		}
		series := stats.Series{Label: s.Label}
		for _, pt := range s.Points {
			series.Points = append(series.Points, pt.statsPoint())
		}
		p.Series = append(p.Series, series)
	}
	if err != nil {
		if failing != "" {
			return p, fmt.Errorf("%s / %s: %w", title, failing, err)
		}
		return p, fmt.Errorf("%s: %w", title, err)
	}
	return p, nil
}

// Figure10Kinds are the five algorithms of Figure 10.
var Figure10Kinds = []core.Kind{
	core.KindPIM1, core.KindWFABase, core.KindWFARotary,
	core.KindSPAABase, core.KindSPAARotary,
}

// Figure11Kinds are the three algorithms of the scaling studies.
var Figure11Kinds = []core.Kind{core.KindPIM1, core.KindWFARotary, core.KindSPAARotary}

// Rates4x4 and friends are the default load sweeps; they span from well
// below saturation to beyond it.
var (
	Rates4x4   = []float64{0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.065, 0.08, 0.1, 0.13}
	Rates8x8   = []float64{0.002, 0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.04, 0.055, 0.075}
	Rates12x12 = []float64{0.001, 0.003, 0.006, 0.01, 0.014, 0.018, 0.024, 0.032, 0.045, 0.06}
)

func (o Options) rates(full []float64) []float64 {
	want := len(full)
	if o.Quick {
		want = (len(full) + 1) / 2
	}
	if o.MaxRatePoints > 0 && o.MaxRatePoints < want {
		want = o.MaxRatePoints
	}
	if want >= len(full) {
		return full
	}
	if want < 2 {
		want = 2
	}
	// Evenly subsample, always keeping the lightest and heaviest loads.
	out := make([]float64, 0, want)
	for i := 0; i < want; i++ {
		idx := i * (len(full) - 1) / (want - 1)
		out = append(out, full[idx])
	}
	return out
}

// runFigureSpec executes one canned figure Spec under the deprecated
// Options plumbing and converts it to the old Panel contract.
func runFigureSpec(o Options, sp Spec) (Panel, error) {
	res, err := optionsRunner(o).Run(context.Background(), sp)
	return figurePanel(sp.Name, res, err)
}

// Figure10 reproduces the four BNF panels of Figure 10. Each panel is a
// canned Spec (FigureSpecs("10", o)) executed by a Runner.
func Figure10(o Options) ([]Panel, error) {
	specs, err := FigureSpecs("10", o)
	if err != nil {
		return nil, err
	}
	var panels []Panel
	for _, sp := range specs {
		p, err := runFigureSpec(o, sp)
		if err != nil {
			return panels, err
		}
		panels = append(panels, p)
	}
	return panels, nil
}

// Figure10Saturation is a companion panel to Figure 10: the same 8x8
// random-traffic sweep with the outstanding-miss limit raised to 64.
//
// Why it exists: with the 21364's strict 16-miss limit, at most 1024
// packets are ever in flight in an 8x8 machine — far too few to fill the
// routers' buffers — so in our reconstruction the closed loop reaches a
// stable equilibrium instead of the post-saturation collapse the paper's
// Figure 10 shows for the base algorithms. Raising the in-flight pressure
// reproduces the paper's phenomenon exactly: tree saturation collapses
// WFA-base/SPAA-base/PIM1 while the Rotary Rule variants hold their peak
// throughput. See EXPERIMENTS.md for the discussion.
func Figure10Saturation(o Options) (Panel, error) {
	return figureFromSpec(o, "10s")
}

// Figure11a reproduces the 2x-pipeline scaling study (8x8 random).
func Figure11a(o Options) (Panel, error) { return figureFromSpec(o, "11a") }

// Figure11b reproduces the 64-outstanding-miss study (8x8 random).
func Figure11b(o Options) (Panel, error) { return figureFromSpec(o, "11b") }

// Figure11c reproduces the 12x12 (144-processor) scaling study.
func Figure11c(o Options) (Panel, error) { return figureFromSpec(o, "11c") }

// figureFromSpec runs a single-panel canned figure.
func figureFromSpec(o Options, name string) (Panel, error) {
	specs, err := FigureSpecs(name, o)
	if err != nil {
		return Panel{}, err
	}
	return runFigureSpec(o, specs[0])
}

// StandaloneCurve is one algorithm's standalone match-rate curve.
type StandaloneCurve struct {
	Label  string
	Values []float64
}

// Figure8Result holds the standalone load sweep.
type Figure8Result struct {
	// LoadFractions of the MCM saturation load (horizontal axis).
	LoadFractions  []float64
	SaturationLoad float64
	Curves         []StandaloneCurve
}

// Figure8Kinds are the algorithms of Figures 8 and 9.
var Figure8Kinds = []core.Kind{
	core.KindMCM, core.KindWFABase, core.KindPIM, core.KindPIM1, core.KindSPAABase,
}

// Figure8 reproduces the standalone matching-capability sweep. The only
// possible error is a sweep aborted by a concurrent failure elsewhere in
// a shared fan-out (CollectDataset).
func Figure8(o Options) (Figure8Result, error) {
	specs, _ := FigureSpecs("8", o)
	sp := specs[0]
	run, err := optionsRunner(o).Run(context.Background(), sp)
	res := Figure8Result{LoadFractions: sp.Standalone.Values}
	if run != nil {
		res.SaturationLoad = run.SaturationLoad
	}
	if err != nil {
		return res, fmt.Errorf("figure 8: %w", err)
	}
	res.Curves = run.Curves()
	return res, nil
}

// Figure9Result holds the occupancy sweep at the MCM saturation load.
type Figure9Result struct {
	Occupancies []float64
	Curves      []StandaloneCurve
}

// Figure9 reproduces the output-port occupancy sweep. As with Figure8,
// the only possible error is a sweep aborted by a shared fan-out.
func Figure9(o Options) (Figure9Result, error) {
	specs, _ := FigureSpecs("9", o)
	sp := specs[0]
	run, err := optionsRunner(o).Run(context.Background(), sp)
	res := Figure9Result{Occupancies: sp.Standalone.Values}
	if err != nil {
		return res, fmt.Errorf("figure 9: %w", err)
	}
	res.Curves = run.Curves()
	return res, nil
}

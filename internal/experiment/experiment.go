// Package experiment reproduces the paper's evaluation: each figure of §5
// has a runner that builds the right standalone or timing configuration,
// sweeps the load axis, and returns the series/tables the paper plots.
// The cmd/sweep tool and the repository's benchmarks are thin wrappers
// around this package.
package experiment

import (
	"fmt"
	"sync/atomic"

	"alpha21364/internal/core"
	"alpha21364/internal/network"
	"alpha21364/internal/router"
	"alpha21364/internal/sim"
	"alpha21364/internal/standalone"
	"alpha21364/internal/stats"
	"alpha21364/internal/topology"
	"alpha21364/internal/traffic"
	"alpha21364/internal/workload"
)

// Options tunes how faithfully the experiments are rerun. Quick mode
// shortens the simulations for CI and benchmarks; the full mode matches
// the paper's 75,000-cycle runs.
type Options struct {
	Quick bool
	Seed  uint64
	// CyclesOverride, when positive, replaces the per-run router cycle
	// count (used by the benchmark harness).
	CyclesOverride int
	// MaxRatePoints, when positive, subsamples each load sweep to at most
	// this many points, always keeping the lightest and heaviest loads.
	MaxRatePoints int
	// Workers bounds how many simulations run concurrently: 0 means one
	// per available CPU, 1 (or any negative value) runs serially. Results
	// are byte-identical regardless of the worker count.
	Workers int
	// Progress, when non-nil, is called once per finished simulation job;
	// see ProgressFunc.
	Progress ProgressFunc
	// sem and abort, when non-nil, are shared across nested fan-outs:
	// sem bounds simulations globally and abort propagates fail-fast
	// between sibling sweeps (see Options.limited in runner.go).
	sem   chan struct{}
	abort *atomic.Bool
}

// TimingCycles returns the per-run router cycle count.
func (o Options) TimingCycles() int {
	if o.CyclesOverride > 0 {
		return o.CyclesOverride
	}
	if o.Quick {
		return 15000
	}
	return 75000
}

// StandaloneCycles returns the standalone-model iteration count.
func (o Options) StandaloneCycles() int {
	if o.Quick {
		return 400
	}
	return 1000
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// NoWarmup is a TimingSetup.WarmupFraction sentinel requesting that no
// cycles be excluded from statistics. (A literal 0 keeps the 0.2 default
// so existing callers are unaffected.)
const NoWarmup = -1.0

// TimingSetup describes one timing-model run.
type TimingSetup struct {
	Width, Height  int
	Kind           core.Kind
	Pattern        traffic.Pattern
	Rate           float64 // new transactions per node per router cycle
	MaxOutstanding int     // 0 means the 21364 default of 16
	ScalePipeline  bool    // Figure 11a's 2x-deep, 2x-fast pipeline
	Cycles         int     // router cycles to simulate
	// Process names the arrival process ("" or "bernoulli" is the paper's
	// Bernoulli law; "onoff" is bursty, "deterministic" is fixed-rate; see
	// workload.ProcessNames).
	Process string
	// Model names the transaction model ("" or "coherence" is the paper's
	// 2-hop/3-hop mix; "datagram" is the open-loop single-packet model).
	Model string
	// RecordTo, when non-empty, captures the run's injection stream to a
	// trace file at that path.
	RecordTo string
	// ReplayFrom, when non-empty, replays a recorded trace instead of
	// generating traffic; Pattern, Rate, Process, and Model are ignored.
	ReplayFrom string
	// WarmupFraction is the share of the run excluded from statistics.
	// 0 means the 0.2 default; a negative value (use NoWarmup) disables
	// the warmup entirely so statistics cover the whole run.
	WarmupFraction float64
	Seed           uint64
	// EpochCycles, when positive, tracks delivered flits in epochs of that
	// many router cycles, exposing the cyclic delivered-throughput pattern
	// the paper describes for saturated networks (§3.4).
	EpochCycles int
}

// workloadConfig expands the setup into the workload decomposition:
// either a replay of a recorded trace, or the configured pattern ×
// process × model combination (defaulting to the paper's uniform ×
// Bernoulli × coherence). period is the router clock the run will use,
// stamped into recorded traces and checked against replayed ones.
func (s TimingSetup) workloadConfig(t topology.Torus, period sim.Ticks) (workload.Config, error) {
	var cfg workload.Config
	if s.ReplayFrom != "" {
		trace, err := workload.ReadTraceFile(s.ReplayFrom)
		if err != nil {
			return cfg, err
		}
		replay := workload.NewReplay(trace)
		if err := replay.CheckCompatible(s.Width, s.Height, period); err != nil {
			return cfg, err
		}
		cfg = workload.Config{Process: workload.NewSilent(), Model: replay, Seed: s.Seed}
	} else {
		if err := s.Pattern.Validate(t); err != nil {
			return cfg, err
		}
		tcfg := traffic.DefaultConfig(s.Pattern, s.Rate)
		tcfg.Seed = s.Seed
		if s.MaxOutstanding > 0 {
			tcfg.MaxOutstanding = s.MaxOutstanding
		}
		cfg = tcfg.Workload(t)
		proc, err := workload.NewProcess(s.Process, s.Rate)
		if err != nil {
			return cfg, err
		}
		cfg.Process = proc
		if s.Model != "" {
			model, err := workload.NewModel(s.Model)
			if err != nil {
				return cfg, err
			}
			cfg.Model = model
		}
	}
	if s.RecordTo != "" {
		cfg.Record = &workload.Trace{
			Width: s.Width, Height: s.Height, Period: period,
			Label: fmt.Sprintf("kind=%v pattern=%v process=%s rate=%g seed=%d cycles=%d",
				s.Kind, s.Pattern, cfg.Process.Name(), s.Rate, s.Seed, s.Cycles),
		}
	}
	return cfg, nil
}

// TimingResult is one BNF point plus diagnostic counters.
type TimingResult struct {
	stats.Point
	Completed     int64
	DrainEntries  int64
	Collisions    int64
	MeanHops      float64
	AvgLatencyP99 float64
	// EpochFlits and ThroughputCoV are filled when TimingSetup.EpochCycles
	// is set: delivered flits per epoch and the coefficient of variation
	// of the post-warmup epochs (a saturation-oscillation measure).
	EpochFlits    []int64
	ThroughputCoV float64
}

// RunTiming executes one timing simulation and returns its BNF point.
func RunTiming(s TimingSetup) (TimingResult, error) {
	return RunTimingWithRouter(s, nil)
}

// RunTimingWithRouter is RunTiming with a hook that may adjust the router
// configuration before the network is built; the ablation benchmarks use
// it to vary pipeline depth and initiation interval independently of the
// per-algorithm defaults.
func RunTimingWithRouter(s TimingSetup, mutate func(*router.Config)) (TimingResult, error) {
	rcfg := router.DefaultConfig(s.Kind)
	rcfg.Seed = s.Seed
	if s.ScalePipeline {
		rcfg = rcfg.ScalePipeline()
	}
	if mutate != nil {
		mutate(&rcfg)
	}
	warmFrac := s.WarmupFraction
	switch {
	case warmFrac == 0:
		warmFrac = 0.2
	case warmFrac < 0:
		warmFrac = 0
	}
	end := sim.Ticks(s.Cycles) * rcfg.RouterPeriod
	warmup := sim.Ticks(float64(end) * warmFrac)

	eng := sim.NewEngine()
	col := stats.NewCollector(warmup)
	var epochs *stats.EpochSeries
	if s.EpochCycles > 0 {
		epochs = col.TrackEpochs(sim.Ticks(s.EpochCycles) * rcfg.RouterPeriod)
	}
	net, err := network.New(network.Config{Width: s.Width, Height: s.Height, Router: rcfg}, eng, col)
	if err != nil {
		return TimingResult{}, err
	}
	wcfg, err := s.workloadConfig(net.Torus(), rcfg.RouterPeriod)
	if err != nil {
		return TimingResult{}, err
	}
	gen := workload.New(wcfg, net, eng, col)
	eng.AddClock(rcfg.RouterPeriod, 0, gen)
	eng.Run(end)
	if wcfg.Record != nil {
		if err := wcfg.Record.WriteFile(s.RecordTo); err != nil {
			return TimingResult{}, err
		}
	}

	point := col.BNF(net.Nodes(), end)
	point.OfferedRate = s.Rate
	c := net.TotalCounters()
	res := TimingResult{
		Point:         point,
		Completed:     gen.Completed(),
		DrainEntries:  c.DrainEntries,
		Collisions:    c.Collisions,
		MeanHops:      col.MeanHops(),
		AvgLatencyP99: col.PercentileLatencyNS(0.99),
	}
	if epochs != nil {
		res.EpochFlits = epochs.Values()
		warmEpochs := int(warmup / (sim.Ticks(s.EpochCycles) * rcfg.RouterPeriod))
		// The last epoch may be partial (deliveries in flight at the end of
		// the run); exclude it from the oscillation measure.
		res.ThroughputCoV = epochs.CoefficientOfVariation(warmEpochs, len(res.EpochFlits)-1)
	}
	return res, nil
}

// Sweep runs a load sweep for one algorithm and returns its BNF curve.
// The rates are simulated concurrently (one worker per CPU); use SweepOpts
// to bound or disable the parallelism.
func Sweep(s TimingSetup, rates []float64) (stats.Series, error) {
	return SweepOpts(Options{}, s, rates)
}

// SweepOpts is Sweep with explicit runner options (worker count and
// progress reporting). Only those two fields of o are consulted; the
// simulation itself is fully described by s.
func SweepOpts(o Options, s TimingSetup, rates []float64) (stats.Series, error) {
	series := stats.Series{Label: s.Kind.String()}
	points, firstBad, err := runJobs(o, sweepJobs("sweep", s, rates))
	series.Points = append(series.Points, points[:firstBad]...)
	return series, err
}

// sweepJobs expands one algorithm's load sweep into runner jobs. Each
// job's TimingSetup — rate, seed, and all — is fixed here, before any
// simulation starts, so results cannot depend on execution order.
func sweepJobs(title string, s TimingSetup, rates []float64) []jobSpec[stats.Point] {
	jobs := make([]jobSpec[stats.Point], len(rates))
	for i, r := range rates {
		setup := s
		setup.Rate = r
		jobs[i] = jobSpec[stats.Point]{
			label: fmt.Sprintf("%s / %v @ %g", title, setup.Kind, r),
			run: func() (stats.Point, error) {
				res, err := RunTiming(setup)
				return res.Point, err
			},
		}
	}
	return jobs
}

// Panel is one BNF chart: several algorithms swept over the same loads.
type Panel struct {
	Title  string
	Rates  []float64
	Series []stats.Series
}

// runPanel sweeps each algorithm over the panel's rates. The kinds×rates
// grid is flattened into one job list so the worker pool stays saturated
// across algorithm boundaries; assembly is by (kind, rate) index, so the
// panel is identical however the jobs are scheduled.
func runPanel(title string, o Options, base TimingSetup, kinds []core.Kind, rates []float64) (Panel, error) {
	p := Panel{Title: title, Rates: rates}
	if len(rates) == 0 {
		for _, k := range kinds {
			p.Series = append(p.Series, stats.Series{Label: k.String()})
		}
		return p, nil
	}
	var jobs []jobSpec[stats.Point]
	for _, k := range kinds {
		s := base
		s.Kind = k
		jobs = append(jobs, sweepJobs(title, s, rates)...)
	}
	points, firstBad, err := runJobs(o, jobs)
	completeKinds := firstBad / len(rates)
	for ki := 0; ki < completeKinds; ki++ {
		p.Series = append(p.Series, stats.Series{
			Label:  kinds[ki].String(),
			Points: points[ki*len(rates) : (ki+1)*len(rates)],
		})
	}
	if err != nil {
		return p, fmt.Errorf("%s / %v: %w", title, kinds[completeKinds], err)
	}
	return p, nil
}

// Figure10Kinds are the five algorithms of Figure 10.
var Figure10Kinds = []core.Kind{
	core.KindPIM1, core.KindWFABase, core.KindWFARotary,
	core.KindSPAABase, core.KindSPAARotary,
}

// Figure11Kinds are the three algorithms of the scaling studies.
var Figure11Kinds = []core.Kind{core.KindPIM1, core.KindWFARotary, core.KindSPAARotary}

// Rates4x4 and friends are the default load sweeps; they span from well
// below saturation to beyond it.
var (
	Rates4x4   = []float64{0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.065, 0.08, 0.1, 0.13}
	Rates8x8   = []float64{0.002, 0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.04, 0.055, 0.075}
	Rates12x12 = []float64{0.001, 0.003, 0.006, 0.01, 0.014, 0.018, 0.024, 0.032, 0.045, 0.06}
)

func (o Options) rates(full []float64) []float64 {
	want := len(full)
	if o.Quick {
		want = (len(full) + 1) / 2
	}
	if o.MaxRatePoints > 0 && o.MaxRatePoints < want {
		want = o.MaxRatePoints
	}
	if want >= len(full) {
		return full
	}
	if want < 2 {
		want = 2
	}
	// Evenly subsample, always keeping the lightest and heaviest loads.
	out := make([]float64, 0, want)
	for i := 0; i < want; i++ {
		idx := i * (len(full) - 1) / (want - 1)
		out = append(out, full[idx])
	}
	return out
}

// Figure10 reproduces the four BNF panels of Figure 10.
func Figure10(o Options) ([]Panel, error) {
	type panelDef struct {
		title   string
		w, h    int
		pattern traffic.Pattern
		rates   []float64
	}
	defs := []panelDef{
		{"4x4, Random Traffic", 4, 4, traffic.Uniform, Rates4x4},
		{"8x8, Random Traffic", 8, 8, traffic.Uniform, Rates8x8},
		{"8x8, Bit Reversal", 8, 8, traffic.BitReversal, Rates8x8},
		{"8x8, Perfect Shuffle", 8, 8, traffic.PerfectShuffle, Rates8x8},
	}
	var panels []Panel
	for _, d := range defs {
		base := TimingSetup{
			Width: d.w, Height: d.h, Pattern: d.pattern,
			Cycles: o.TimingCycles(), Seed: o.seed(),
		}
		p, err := runPanel(d.title, o, base, Figure10Kinds, o.rates(d.rates))
		if err != nil {
			return panels, err
		}
		panels = append(panels, p)
	}
	return panels, nil
}

// Figure10Saturation is a companion panel to Figure 10: the same 8x8
// random-traffic sweep with the outstanding-miss limit raised to 64.
//
// Why it exists: with the 21364's strict 16-miss limit, at most 1024
// packets are ever in flight in an 8x8 machine — far too few to fill the
// routers' buffers — so in our reconstruction the closed loop reaches a
// stable equilibrium instead of the post-saturation collapse the paper's
// Figure 10 shows for the base algorithms. Raising the in-flight pressure
// reproduces the paper's phenomenon exactly: tree saturation collapses
// WFA-base/SPAA-base/PIM1 while the Rotary Rule variants hold their peak
// throughput. See EXPERIMENTS.md for the discussion.
func Figure10Saturation(o Options) (Panel, error) {
	base := TimingSetup{
		Width: 8, Height: 8, Pattern: traffic.Uniform,
		MaxOutstanding: 64, Cycles: o.TimingCycles(), Seed: o.seed(),
	}
	return runPanel("8x8, Random Traffic, 64 outstanding (saturation companion)",
		o, base, Figure10Kinds, o.rates(Rates8x8))
}

// Figure11a reproduces the 2x-pipeline scaling study (8x8 random).
func Figure11a(o Options) (Panel, error) {
	base := TimingSetup{
		Width: 8, Height: 8, Pattern: traffic.Uniform,
		ScalePipeline: true, Cycles: o.TimingCycles() * 2, Seed: o.seed(),
	}
	return runPanel("2x Pipeline, 8x8, Random Traffic", o, base, Figure11Kinds, o.rates(Rates8x8))
}

// Figure11b reproduces the 64-outstanding-miss study (8x8 random).
func Figure11b(o Options) (Panel, error) {
	base := TimingSetup{
		Width: 8, Height: 8, Pattern: traffic.Uniform,
		MaxOutstanding: 64, Cycles: o.TimingCycles(), Seed: o.seed(),
	}
	return runPanel("64 requests, 8x8, Random Traffic", o, base, Figure11Kinds, o.rates(Rates8x8))
}

// Figure11c reproduces the 12x12 (144-processor) scaling study.
func Figure11c(o Options) (Panel, error) {
	base := TimingSetup{
		Width: 12, Height: 12, Pattern: traffic.Uniform,
		Cycles: o.TimingCycles(), Seed: o.seed(),
	}
	return runPanel("12x12, Random Traffic", o, base, Figure11Kinds, o.rates(Rates12x12))
}

// StandaloneCurve is one algorithm's standalone match-rate curve.
type StandaloneCurve struct {
	Label  string
	Values []float64
}

// Figure8Result holds the standalone load sweep.
type Figure8Result struct {
	// LoadFractions of the MCM saturation load (horizontal axis).
	LoadFractions  []float64
	SaturationLoad float64
	Curves         []StandaloneCurve
}

// Figure8Kinds are the algorithms of Figures 8 and 9.
var Figure8Kinds = []core.Kind{
	core.KindMCM, core.KindWFABase, core.KindPIM, core.KindPIM1, core.KindSPAABase,
}

// Figure8 reproduces the standalone matching-capability sweep. The only
// possible error is a sweep aborted by a concurrent failure elsewhere in
// a shared fan-out (CollectDataset).
func Figure8(o Options) (Figure8Result, error) {
	cfg := standalone.DefaultConfig(0)
	cfg.Cycles = o.StandaloneCycles()
	cfg.Seed = o.seed()
	sat := standalone.MCMSaturationLoad(cfg)
	fractions := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	res := Figure8Result{LoadFractions: fractions, SaturationLoad: sat}
	var err error
	res.Curves, err = standaloneGrid(o, "figure 8", fractions, func(k core.Kind, f float64) float64 {
		c := cfg
		c.Load = f * sat
		return standalone.Run(k, c).MatchesPerCycle
	})
	return res, err
}

// standaloneGrid runs a Figure8Kinds × axis grid of standalone simulations
// through the runner and assembles one curve per algorithm. run must be a
// pure function of its arguments (every call builds its own Config copy).
// The jobs themselves are infallible, so the returned error can only be
// an abort from a sibling sweep — in which case the curves are incomplete
// and must be discarded.
func standaloneGrid(o Options, title string, axis []float64, run func(core.Kind, float64) float64) ([]StandaloneCurve, error) {
	var jobs []jobSpec[float64]
	for _, k := range Figure8Kinds {
		for _, x := range axis {
			jobs = append(jobs, jobSpec[float64]{
				label: fmt.Sprintf("%s / %v @ %g", title, k, x),
				run:   func() (float64, error) { return run(k, x), nil },
			})
		}
	}
	values, _, err := runJobs(o, jobs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", title, err)
	}
	curves := make([]StandaloneCurve, len(Figure8Kinds))
	for ki, k := range Figure8Kinds {
		curves[ki] = StandaloneCurve{
			Label:  k.String(),
			Values: values[ki*len(axis) : (ki+1)*len(axis)],
		}
	}
	return curves, nil
}

// Figure9Result holds the occupancy sweep at the MCM saturation load.
type Figure9Result struct {
	Occupancies []float64
	Curves      []StandaloneCurve
}

// Figure9 reproduces the output-port occupancy sweep. As with Figure8,
// the only possible error is a sweep aborted by a shared fan-out.
func Figure9(o Options) (Figure9Result, error) {
	cfg := standalone.DefaultConfig(0)
	cfg.Cycles = o.StandaloneCycles()
	cfg.Seed = o.seed()
	cfg.Load = standalone.MCMSaturationLoad(cfg)
	occupancies := []float64{0, 0.25, 0.5, 0.75}
	res := Figure9Result{Occupancies: occupancies}
	var err error
	res.Curves, err = standaloneGrid(o, "figure 9", occupancies, func(k core.Kind, occ float64) float64 {
		c := cfg
		c.Occupancy = occ
		return standalone.Run(k, c).MatchesPerCycle
	})
	return res, err
}

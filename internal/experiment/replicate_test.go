package experiment

// replicate_test.go pins the replication half of the oracle PR: a spec
// with Replications: 1 reproduces the PR-4 fingerprints byte for byte,
// replicated points carry well-formed mean/stddev/CI annotations whose
// headline values are replication 0's, and the extended Result schema
// survives both serialization forms.

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestReplicationsOneReproducesFingerprints: replication 0 always runs
// the spec's own seed, so Replications: 1 must reproduce the PR-4 golden
// fingerprints byte for byte. The spec echo inside the Result is
// normalized exactly like ElapsedNS — it records the request, not the
// simulation output.
func TestReplicationsOneReproducesFingerprints(t *testing.T) {
	for _, tc := range []struct {
		name   string
		spec   Spec
		golden string
	}{
		{"timing", fingerprintTimingSpec(), goldenTimingFingerprint},
		{"standalone", fingerprintStandaloneSpec(), goldenStandaloneFingerprint},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sp := tc.spec
			sp.Replications = 1
			res, err := NewRunner(WithWorkers(2)).Run(context.Background(), sp)
			if err != nil {
				t.Fatal(err)
			}
			res.Spec.Replications = 0 // normalize the request echo
			if got := resultFingerprint(t, res); got != tc.golden {
				t.Errorf("Replications: 1 diverged from the PR-4 fingerprint:\n  got  %s\n  want %s", got, tc.golden)
			}
		})
	}
}

func smallReplicatedSpec(reps int) Spec {
	return NewSpec(
		WithName("replication test"),
		WithTopology(4, 4),
		WithArbiters("SPAA-rotary"),
		WithRates(0.02, 0.05),
		WithCycles(1200),
		WithSeed(11),
		WithReplications(reps),
	)
}

func TestReplicatedPointAnnotations(t *testing.T) {
	const reps = 4
	base, err := NewRunner(WithWorkers(2)).Run(context.Background(), smallReplicatedSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewRunner(WithWorkers(4)).Run(context.Background(), smallReplicatedSpec(reps))
	if err != nil {
		t.Fatal(err)
	}
	for si, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %q has %d points, want 2", s.Label, len(s.Points))
		}
		for pi, p := range s.Points {
			rs := p.Replication
			if rs == nil {
				t.Fatalf("point %d carries no replication stats", pi)
			}
			if rs.Replications != reps || rs.Confidence != DefaultConfidence {
				t.Errorf("replication header = (%d, %g), want (%d, %g)",
					rs.Replications, rs.Confidence, reps, DefaultConfidence)
			}
			if rs.Throughput.Stddev < 0 || rs.Throughput.CIHalfWidth < 0 {
				t.Errorf("negative dispersion: %+v", rs.Throughput)
			}
			if rs.Throughput.Mean <= 0 || rs.AvgLatencyNS.Mean <= 0 || rs.LatencyP99NS.Mean <= 0 {
				t.Errorf("empty metric means: %+v", rs)
			}
			// Headline values are replication 0: the unreplicated run.
			bp := base.Series[si].Points[pi]
			p.Replication = nil
			if !reflect.DeepEqual(p, bp) {
				t.Errorf("headline point diverged from replication 0:\n got %+v\nwant %+v", p, bp)
			}
			// Distinct seeds must actually have run: with four seeds on a
			// stochastic workload, identical throughput everywhere would
			// mean the seeds collapsed.
			if rs.Throughput.Stddev == 0 && rs.AvgLatencyNS.Stddev == 0 {
				t.Errorf("replications produced identical results; seeds likely collapsed")
			}
		}
	}
}

func TestReplicatedResultRoundTrips(t *testing.T) {
	res, err := NewRunner(WithWorkers(4)).Run(context.Background(), NewSpec(
		WithName("replicated standalone"),
		WithArbiters("PIM1", "MCM"),
		WithStandaloneSweep(AxisLoad, 0.5, 1.0),
		WithCycles(150),
		WithSeed(5),
		WithReplications(3),
		WithConfidence(0.99),
	))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Replication == nil || p.Replication.MatchesPerCycle.Mean <= 0 {
				t.Fatalf("standalone replication stats missing: %+v", p.Replication)
			}
			if p.Replication.Confidence != 0.99 {
				t.Fatalf("confidence = %g, want 0.99", p.Replication.Confidence)
			}
			// Timing metrics must be omitted in standalone mode.
			if p.Replication.Throughput != (MetricStats{}) {
				t.Fatalf("standalone point carries timing metrics: %+v", p.Replication)
			}
		}
	}

	// JSONL round trip.
	var buf bytes.Buffer
	if err := res.EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"replication":{"replications":3,"confidence":0.99`) {
		t.Errorf("JSONL stream does not carry the replication annotation:\n%s", buf.String())
	}
	back, err := DecodeResultJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, res) {
		t.Error("JSONL round trip lost the replication annotation")
	}

	// Document round trip.
	path := t.TempDir() + "/replicated.json"
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadResultFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back2, res) {
		t.Error("document round trip lost the replication annotation")
	}

	// The standalone annotation serializes without the timing metrics.
	data, err := json.Marshal(res.Series[0].Points[0].Replication)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "throughput") || !strings.Contains(string(data), "matches_per_cycle") {
		t.Errorf("standalone annotation serialized wrong metrics: %s", data)
	}
}

func TestReplicationSpecValidation(t *testing.T) {
	base := func() Spec { return smallReplicatedSpec(0) }
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"negative replications", func(s *Spec) { s.Replications = -1 }, "replications"},
		{"confidence out of range", func(s *Spec) { s.Replications = 3; s.Confidence = 1 }, "confidence"},
		{"confidence without replications", func(s *Spec) { s.Confidence = 0.9 }, "requires replications"},
		{"record with replications", func(s *Spec) {
			s.Replications = 2
			s.Arbiters = s.Arbiters[:1]
			s.Workload.Rates = s.Workload.Rates[:1]
			s.Workload.RecordTo = "x.trace"
		}, "record_to contradicts replications"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sp := base()
			c.mutate(&sp)
			err := sp.Validate()
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Validate() = %v, want error mentioning %q", err, c.wantErr)
			}
		})
	}
	ok := base()
	ok.Replications = 3
	ok.Confidence = 0.9
	if err := ok.Validate(); err != nil {
		t.Errorf("valid replicated spec rejected: %v", err)
	}
}

// TestReplicatedSpecRoundTrips pins the extended Spec schema: the new
// fields survive the strict encode/parse cycle byte for byte.
func TestReplicatedSpecRoundTrips(t *testing.T) {
	sp := smallReplicatedSpec(5)
	sp.Confidence = 0.99
	sp.Check = true
	data, err := EncodeSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"replications": 5`, `"confidence": 0.99`, `"check": true`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("encoded spec missing %s:\n%s", want, data)
		}
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := EncodeSpec(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("spec round trip not byte-identical:\n%s\nvs\n%s", data, again)
	}
}

// TestReplicatedPartialCutsWholePoints: a cancelled replicated run keeps
// only points all of whose replications finished.
func TestReplicatedPartialCutsWholePoints(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expansion succeeds, every job fails fast
	res, err := NewRunner(WithWorkers(1)).Run(ctx, smallReplicatedSpec(3))
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if res == nil || !res.Partial {
		t.Fatalf("cancelled run did not return a partial result: %+v", res)
	}
	for _, s := range res.Series {
		if len(s.Points) != 0 {
			t.Errorf("cancelled-before-start run kept %d points", len(s.Points))
		}
	}
}

package experiment

// runner.go is the parallel sweep engine: every figure's evaluation is a
// set of independent (figure, kind, rate) simulations, and the runner fans
// them across a bounded pool of goroutines. Determinism is preserved by
// construction: each job's entire input — setup, seed, rate — is captured
// by value before dispatch, nothing is drawn from shared state while jobs
// execute, and results are assembled by job index. Parallel output is
// therefore byte-identical to serial output for the same Options.

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ProgressFunc observes sweep progress. It is called once per finished
// job with the number of jobs completed so far in the current sweep, the
// sweep's total job count, and the finished job's label. Calls are
// serialized (never concurrent) — including across the overlapping
// figures of CollectDataset, where done/total are still per-sweep counts
// — but with multiple workers they may come from different goroutines
// and in completion order, not job order.
type ProgressFunc func(done, total int, label string)

// jobSpec is one independent unit of a sweep: a label for progress
// reporting and a closure producing the job's result. The closure must
// capture everything it needs by value — in particular its seed, which is
// derived from the job's identity before dispatch — so the result cannot
// depend on scheduling order.
type jobSpec[T any] struct {
	label string
	run   func() (T, error)
}

// workerCount resolves Options.Workers: 0 means one worker per available
// CPU (GOMAXPROCS), anything below 1 means serial.
func (o Options) workerCount() int {
	if o.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// limited returns a copy of o carrying a shared simulation limiter sized
// to the worker count. A fan-out of fan-outs (CollectDataset's figures,
// each running its own sweeps) passes this copy down so that nested
// runJobs calls acquire the one limiter around each simulation — keeping
// Options.Workers a global bound on concurrent simulations rather than a
// per-pool one that nesting would multiply.
func (o Options) limited() Options {
	if o.sem == nil {
		o.sem = make(chan struct{}, o.workerCount())
	}
	if o.abort == nil {
		o.abort = new(atomic.Bool)
	}
	return o
}

// errAborted marks a sweep cut short because a sibling sweep sharing the
// same Options (via limited) failed first. When possible, runJobs reports
// the sibling's underlying error instead of this sentinel.
var errAborted = errors.New("experiment: sweep aborted by a concurrent failure")

// acquire claims a slot in the shared limiter, returning the release
// func. Without a limiter it is a no-op: a single pool's worker count
// already bounds the concurrency.
func (o Options) acquire() func() {
	if o.sem == nil {
		return func() {}
	}
	o.sem <- struct{}{}
	return func() { <-o.sem }
}

// progressTracker serializes ProgressFunc callbacks across workers.
type progressTracker struct {
	mu    sync.Mutex
	fn    ProgressFunc
	done  int
	total int
}

func newProgressTracker(fn ProgressFunc, total int) *progressTracker {
	return &progressTracker{fn: fn, total: total}
}

func (p *progressTracker) finish(label string) {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	p.done++
	p.fn(p.done, p.total, label)
	p.mu.Unlock()
}

// runJobs executes the jobs and returns their results assembled in job
// order, regardless of completion order. With one worker the jobs run
// serially in the calling goroutine; with more they fan out across a
// bounded pool. The second return value is the index of the first job
// that failed or never ran (len(jobs) if every job succeeded); results at
// indices before it are always valid, because jobs are dispatched in
// index order. Failure is fail-fast: once any job errors — in this sweep,
// or in a sibling sweep sharing an abort flag via Options.limited — jobs
// not yet started are abandoned. The returned error is the first job's
// own error when one exists, and errAborted when this sweep was cut short
// purely by a sibling's failure.
func runJobs[T any](o Options, jobs []jobSpec[T]) ([]T, int, error) {
	results := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	ran := make([]bool, len(jobs))
	tracker := newProgressTracker(o.Progress, len(jobs))
	failed := o.abort
	if failed == nil {
		failed = new(atomic.Bool)
	}
	exec := func(i int) {
		release := o.acquire()
		results[i], errs[i] = jobs[i].run()
		release()
		ran[i] = true
		if errs[i] != nil {
			failed.Store(true)
		}
		tracker.finish(jobs[i].label)
	}

	// halted stops dispatch: a job failed, a sibling sweep aborted, or the
	// runner's context (Runner.Run cancellation) expired.
	halted := func() bool {
		return failed.Load() || (o.ctx != nil && o.ctx.Err() != nil)
	}
	workers := o.workerCount()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i := range jobs {
			if halted() {
				break
			}
			exec(i)
		}
	} else {
		indices := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range indices {
					exec(i)
				}
			}()
		}
		for i := range jobs {
			if halted() {
				break
			}
			indices <- i
		}
		close(indices)
		wg.Wait()
	}

	firstBad := len(jobs)
	for i := range jobs {
		if errs[i] != nil || !ran[i] {
			firstBad = i
			break
		}
	}
	if firstBad == len(jobs) {
		return results, firstBad, nil
	}
	err := errs[firstBad]
	if err == nil {
		err = errAborted
	}
	if errors.Is(err, errAborted) {
		// Prefer the sibling failure's real cause over the sentinel: with
		// nested fan-outs the causing job's error surfaces in this errs
		// slice (its figure-level job returns it) or in a sibling's.
		for _, e := range errs {
			if e != nil && !errors.Is(e, errAborted) {
				err = e
				break
			}
		}
	}
	return results, firstBad, err
}

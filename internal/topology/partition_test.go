package topology

import "testing"

// TestPartitionRowsCoverage checks every row lands in exactly one band
// and band sizes differ by at most one, across shapes and shard counts.
func TestPartitionRowsCoverage(t *testing.T) {
	for _, tc := range []struct{ w, h, k int }{
		{2, 2, 1}, {2, 2, 2}, {4, 4, 1}, {4, 4, 2}, {4, 4, 3}, {4, 4, 4},
		{8, 8, 4}, {16, 16, 4}, {3, 5, 2}, {5, 3, 3},
	} {
		p := PartitionRows(NewTorus(tc.w, tc.h), tc.k)
		if got := p.Shards(); got != tc.k {
			t.Fatalf("%dx%d k=%d: Shards() = %d", tc.w, tc.h, tc.k, got)
		}
		minBand, maxBand := tc.h, 0
		for b := 0; b < tc.k; b++ {
			size := p.RowStart[b+1] - p.RowStart[b]
			if size < 1 {
				t.Fatalf("%dx%d k=%d: band %d is empty", tc.w, tc.h, tc.k, b)
			}
			if size < minBand {
				minBand = size
			}
			if size > maxBand {
				maxBand = size
			}
		}
		if maxBand-minBand > 1 {
			t.Errorf("%dx%d k=%d: band sizes range %d..%d, want near-equal", tc.w, tc.h, tc.k, minBand, maxBand)
		}
		if p.RowStart[0] != 0 || p.RowStart[tc.k] != tc.h {
			t.Fatalf("%dx%d k=%d: rows not covered: %v", tc.w, tc.h, tc.k, p.RowStart)
		}
		tor := p.T
		for n := Node(0); int(n) < tor.Nodes(); n++ {
			b := p.ShardOf(n)
			y := tor.Coord(n).Y
			if y < p.RowStart[b] || y >= p.RowStart[b+1] {
				t.Fatalf("%dx%d k=%d: node %d (row %d) assigned to band %d rows [%d,%d)",
					tc.w, tc.h, tc.k, n, y, b, p.RowStart[b], p.RowStart[b+1])
			}
		}
	}
}

// TestPartitionBoundaryLinks checks the boundary enumeration: exactly
// the vertical links between adjacent bands (two directions per column
// per boundary, including the wrap), and none for k=1.
func TestPartitionBoundaryLinks(t *testing.T) {
	if got := PartitionRows(NewTorus(4, 4), 1).BoundaryLinks(); len(got) != 0 {
		t.Fatalf("k=1 has %d boundary links, want 0", len(got))
	}
	for _, k := range []int{2, 3, 4} {
		tor := NewTorus(4, 4)
		p := PartitionRows(tor, k)
		links := p.BoundaryLinks()
		// k bands on a ring of rows have k boundaries, each crossed by
		// width columns in two directions.
		want := 2 * tor.Width * k
		if len(links) != want {
			t.Fatalf("k=%d: %d boundary links, want %d", k, len(links), want)
		}
		for _, l := range links {
			if p.ShardOf(l.From) == p.ShardOf(l.To) {
				t.Fatalf("k=%d: link %+v does not cross a boundary", k, l)
			}
			if tor.Neighbor(l.From, l.Dir) != l.To {
				t.Fatalf("k=%d: link %+v is not a torus link", k, l)
			}
		}
	}
}

// TestScheduleSerialVisibilityOrder is the core byte-identity lemma: a
// simulated wavefront execution of the schedules must tick the lower-id
// endpoint of EVERY torus link before the higher-id endpoint — the order
// the monolithic engine's node-order clock domain produces. The
// simulation also proves the cross-band waits are deadlock-free (every
// wait is satisfiable when workers run one step per turn).
func TestScheduleSerialVisibilityOrder(t *testing.T) {
	for _, tc := range []struct{ w, h, k int }{
		{2, 2, 1}, {2, 2, 2}, {4, 4, 2}, {4, 4, 3}, {4, 4, 4},
		{8, 8, 4}, {16, 16, 4}, {16, 16, 8}, {3, 5, 5}, {5, 3, 2},
	} {
		tor := NewTorus(tc.w, tc.h)
		p := PartitionRows(tor, tc.k)
		// Round-robin the bands, one ready step each turn; a step is
		// ready when all its WaitOn nodes have ticked.
		pos := make([]int, tc.k)
		ticked := make([]bool, tor.Nodes())
		tickOrder := make([]int, 0, tor.Nodes())
		for {
			progress := false
			for b := 0; b < tc.k; b++ {
				sched := p.Schedule(b)
				if pos[b] >= len(sched) {
					continue
				}
				st := sched[pos[b]]
				ready := true
				for _, dep := range st.WaitOn {
					if !ticked[dep] {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				if ticked[st.Node] {
					t.Fatalf("%dx%d k=%d: node %d ticked twice", tc.w, tc.h, tc.k, st.Node)
				}
				ticked[st.Node] = true
				tickOrder = append(tickOrder, int(st.Node))
				pos[b]++
				progress = true
			}
			if !progress {
				break
			}
		}
		if len(tickOrder) != tor.Nodes() {
			t.Fatalf("%dx%d k=%d: deadlock after %d/%d ticks", tc.w, tc.h, tc.k, len(tickOrder), tor.Nodes())
		}
		// The waits only order cross-band pairs; in-band pairs are ordered
		// by the schedule itself. Replay per-band sequentially interleaved
		// as above and assert the pairwise property over all links.
		seen := make([]int, tor.Nodes())
		for i, n := range tickOrder {
			seen[n] = i
		}
		for n := Node(0); int(n) < tor.Nodes(); n++ {
			for d := Dir(0); d < NumDirs; d++ {
				m := tor.Neighbor(n, d)
				if n < m && seen[n] > seen[m] && p.ShardOf(n) != p.ShardOf(m) {
					t.Errorf("%dx%d k=%d: cross-band link (%d,%d): higher id ticked first", tc.w, tc.h, tc.k, n, m)
				}
			}
		}
		// In-band pairs: within one band's schedule, lower id must come
		// first for every link.
		for b := 0; b < tc.k; b++ {
			idx := make(map[Node]int)
			for i, st := range p.Schedule(b) {
				idx[st.Node] = i
			}
			for n, i := range idx {
				for d := Dir(0); d < NumDirs; d++ {
					m := tor.Neighbor(n, d)
					j, same := idx[m]
					if same && n < m && i > j {
						t.Errorf("%dx%d k=%d band %d: link (%d,%d) scheduled out of id order", tc.w, tc.h, tc.k, b, n, m)
					}
				}
			}
		}
	}
}

// TestScheduleWaitsArePublished checks every WaitOn target is marked
// Publish in its own band's schedule — otherwise a waiter would spin on
// a flag nobody stores.
func TestScheduleWaitsArePublished(t *testing.T) {
	for _, tc := range []struct{ w, h, k int }{{4, 4, 2}, {4, 4, 4}, {2, 2, 2}, {16, 16, 4}} {
		p := PartitionRows(NewTorus(tc.w, tc.h), tc.k)
		published := make(map[Node]bool)
		for b := 0; b < tc.k; b++ {
			for _, st := range p.Schedule(b) {
				if st.Publish {
					published[st.Node] = true
				}
			}
		}
		for b := 0; b < tc.k; b++ {
			for _, st := range p.Schedule(b) {
				for _, dep := range st.WaitOn {
					if !published[dep] {
						t.Fatalf("%dx%d k=%d: node %d waits on unpublished node %d", tc.w, tc.h, tc.k, st.Node, dep)
					}
					if p.ShardOf(dep) == b {
						t.Fatalf("%dx%d k=%d: node %d waits on in-band node %d", tc.w, tc.h, tc.k, st.Node, dep)
					}
				}
			}
		}
	}
}

// TestPartitionRowsRejectsBadCounts pins the valid shard range.
func TestPartitionRowsRejectsBadCounts(t *testing.T) {
	for _, k := range []int{0, -1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d: expected panic", k)
				}
			}()
			PartitionRows(NewTorus(4, 4), k)
		}()
	}
}

package topology

import "fmt"

// partition.go plans the spatial sharding of a torus: contiguous row
// bands of routers, the cross-band (boundary) links, and a per-band
// anti-diagonal execution schedule whose cross-band waits reproduce the
// serial node-order visibility between vertically coupled routers.
//
// The only cross-router state mutated during a clock edge is the credit
// pool a router shares with each downstream neighbor, and the serial
// (monolithic) engine ticks routers in node-id order. A parallel edge is
// therefore byte-identical to the serial one iff, for every torus link
// (a, b), the lower-id endpoint ticks before the higher-id endpoint
// observes it. The anti-diagonal level L(x, y) = x + y orders every
// neighbor pair the same way node ids do — including both wraps: on a
// row, (0, y) < (W-1, y) in both id and level; on a column, (x, 0) <
// (x, H-1) in both. So executing each band's cells in ascending level
// (ties in ascending y, then the serial id order within a row) and
// making each band's first row wait on the row above it (previous band's
// last row; for band 0's first row, row H-1 via the wrap) preserves
// exactly the serial visibility order while letting the bands pipeline
// along the diagonal wavefront.

// Step is one router tick in a shard's edge schedule.
type Step struct {
	// Node is the router to tick.
	Node Node
	// WaitOn lists routers in *other* shards whose tick this step must
	// observe first (the vertically adjacent cross-band neighbors).
	WaitOn []Node
	// Publish marks steps whose completion other shards wait on; the
	// executor must make the tick visible (publish its edge flag)
	// before moving on.
	Publish bool
}

// Partition is a row-band decomposition of a torus into k shards. Band
// b owns rows [RowStart[b], RowStart[b+1]) — contiguous, non-empty, and
// covering every row — so each router, its generator slot, and its
// sinks belong to exactly one shard.
type Partition struct {
	T Torus
	// RowStart has k+1 entries; band b is rows RowStart[b]..RowStart[b+1]-1.
	RowStart []int
	shardOf  []int // node id -> shard
	sched    [][]Step
}

// PartitionRows splits the torus into k contiguous row bands of
// near-equal height (the first height%k bands get the extra row). k
// must be between 1 and the torus height.
func PartitionRows(t Torus, k int) *Partition {
	if k < 1 || k > t.Height {
		panic(fmt.Sprintf("topology: shard count %d outside 1..%d", k, t.Height))
	}
	p := &Partition{T: t, RowStart: make([]int, k+1)}
	base, extra := t.Height/k, t.Height%k
	row := 0
	for b := 0; b < k; b++ {
		p.RowStart[b] = row
		row += base
		if b < extra {
			row++
		}
	}
	p.RowStart[k] = row
	p.shardOf = make([]int, t.Nodes())
	for b := 0; b < k; b++ {
		for y := p.RowStart[b]; y < p.RowStart[b+1]; y++ {
			for x := 0; x < t.Width; x++ {
				p.shardOf[t.Node(Coord{X: x, Y: y})] = b
			}
		}
	}
	p.buildSchedules()
	return p
}

// Shards returns the number of bands.
func (p *Partition) Shards() int { return len(p.RowStart) - 1 }

// ShardOf returns the shard owning node n.
func (p *Partition) ShardOf(n Node) int { return p.shardOf[n] }

// BoundaryLink is a directed torus link whose endpoints live in
// different shards; traversals of these links become cross-shard posts.
type BoundaryLink struct {
	From, To Node
	Dir      Dir
}

// BoundaryLinks enumerates every directed link that crosses a shard
// boundary, in (From, Dir) order.
func (p *Partition) BoundaryLinks() []BoundaryLink {
	var out []BoundaryLink
	for n := Node(0); int(n) < p.T.Nodes(); n++ {
		for d := Dir(0); d < NumDirs; d++ {
			to := p.T.Neighbor(n, d)
			if p.shardOf[n] != p.shardOf[to] {
				out = append(out, BoundaryLink{From: n, To: to, Dir: d})
			}
		}
	}
	return out
}

// Schedule returns shard b's edge schedule: its cells in ascending
// anti-diagonal level (ties in ascending y), with cross-band waits and
// publishes attached. The returned slice is shared; callers must not
// mutate it.
func (p *Partition) Schedule(b int) []Step { return p.sched[b] }

func (p *Partition) buildSchedules() {
	k := p.Shards()
	p.sched = make([][]Step, k)
	if k == 1 {
		// One band: the serial node-order walk needs no waits. (Level
		// order would work too, but node order matches the monolithic
		// clock domain exactly and costs nothing.)
		steps := make([]Step, p.T.Nodes())
		for n := range steps {
			steps[n].Node = Node(n)
		}
		p.sched[0] = steps
		return
	}
	// publish[n] marks nodes some other band waits on.
	publish := make([]bool, p.T.Nodes())
	waits := make([][]Node, p.T.Nodes())
	for b := 0; b < k; b++ {
		// A band's first row reads the credit pools it shares with the
		// row above (owned by the previous band; band 0 wraps to row
		// H-1). In level terms the upper cell always ticks first —
		// (x, y-1) has a lower level than (x, y), and for the wrap pair
		// ((x, H-1), (x, 0)) the serial order ticks (x, 0) first, which
		// level order also guarantees — so a wait on the neighbor's
		// edge flag is sufficient; no cycles are possible.
		first := p.RowStart[b]
		for x := 0; x < p.T.Width; x++ {
			n := p.T.Node(Coord{X: x, Y: first})
			up := p.T.Neighbor(n, North)
			waits[n] = addNode(waits[n], up)
			publish[up] = true
			if b == 0 {
				// The wrap dependency runs the other way: row H-1's
				// cells (last band) wait on row 0's (band 0), because
				// serial order ticks row 0 first.
				waits[up] = addNode(waits[up], n)
				publish[n] = true
			}
		}
	}
	// Band 0's first-row waits point at row H-1, which ticks *after*
	// row 0 in serial order — remove them (the credit pools row 0
	// shares northward with row H-1 must be read pre-tick values, which
	// is exactly what not-waiting provides).
	for x := 0; x < p.T.Width; x++ {
		n := p.T.Node(Coord{X: x, Y: 0})
		up := p.T.Neighbor(n, North)
		waits[n] = removeNode(waits[n], up)
	}
	for b := 0; b < k; b++ {
		var steps []Step
		for level := p.RowStart[b]; level <= p.RowStart[b+1]-1+p.T.Width-1; level++ {
			for y := p.RowStart[b]; y < p.RowStart[b+1]; y++ {
				x := level - y
				if x < 0 || x >= p.T.Width {
					continue
				}
				n := p.T.Node(Coord{X: x, Y: y})
				steps = append(steps, Step{Node: n, WaitOn: waits[n], Publish: publish[n]})
			}
		}
		p.sched[b] = steps
	}
}

func addNode(s []Node, n Node) []Node {
	for _, v := range s {
		if v == n {
			return s
		}
	}
	return append(s, n)
}

func removeNode(s []Node, n Node) []Node {
	out := s[:0]
	for _, v := range s {
		if v != n {
			out = append(out, v)
		}
	}
	return out
}

// Package topology models the Alpha 21364's two-dimensional torus: node
// coordinates, wrap-around distances, the minimal ("minimum") rectangle
// used by the 21364's adaptive routing, strict dimension-order routing for
// the deadlock-free virtual channels, and the destination permutations used
// by the paper's synthetic traffic patterns.
package topology

import "fmt"

// Dir is one of the four interprocessor link directions.
type Dir uint8

const (
	North Dir = iota // -Y
	South            // +Y
	East             // +X
	West             // -X
	NumDirs
)

var dirNames = [NumDirs]string{"north", "south", "east", "west"}

func (d Dir) String() string {
	if d < NumDirs {
		return dirNames[d]
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// Opposite returns the reverse direction (the direction a packet arriving
// on this output port travels back on).
func (d Dir) Opposite() Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	default:
		return East
	}
}

// Node identifies a processor/router in the torus; ids are y*Width + x.
type Node int

// Coord is a torus position.
type Coord struct{ X, Y int }

// Torus is a W x H two-dimensional torus. The 21364 supports up to 128
// processors; the paper evaluates 4x4, 8x8, and (as a scaling study) 12x12.
type Torus struct {
	Width, Height int
}

// NewTorus returns a torus of the given dimensions. Width and height must
// each be at least 2 (a wrap link to itself is not meaningful).
func NewTorus(w, h int) Torus {
	if w < 2 || h < 2 {
		panic(fmt.Sprintf("topology: torus dimensions must be >= 2, got %dx%d", w, h))
	}
	return Torus{Width: w, Height: h}
}

// Nodes returns the number of nodes in the torus.
func (t Torus) Nodes() int { return t.Width * t.Height }

// Coord converts a node id to its coordinates.
func (t Torus) Coord(n Node) Coord {
	return Coord{X: int(n) % t.Width, Y: int(n) / t.Width}
}

// Node converts coordinates (taken modulo the torus dimensions) to an id.
func (t Torus) Node(c Coord) Node {
	x := mod(c.X, t.Width)
	y := mod(c.Y, t.Height)
	return Node(y*t.Width + x)
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// Neighbor returns the adjacent node in direction d.
func (t Torus) Neighbor(n Node, d Dir) Node {
	c := t.Coord(n)
	switch d {
	case North:
		c.Y--
	case South:
		c.Y++
	case East:
		c.X++
	case West:
		c.X--
	}
	return t.Node(c)
}

// offset1 returns the minimal signed offset from a to b on a ring of size n,
// in the range [-(n-1)/2, n/2]. When the distance is exactly n/2 both
// directions are minimal; we canonically return +n/2 (the positive
// direction), which keeps the minimal rectangle well defined.
func offset1(a, b, n int) int {
	d := mod(b-a, n)
	if d > n/2 {
		d -= n
	}
	return d
}

// Offset returns the minimal signed (dx, dy) from src to dst.
func (t Torus) Offset(src, dst Node) (dx, dy int) {
	sc, dc := t.Coord(src), t.Coord(dst)
	return offset1(sc.X, dc.X, t.Width), offset1(sc.Y, dc.Y, t.Height)
}

// Distance returns the minimal hop count from src to dst.
func (t Torus) Distance(src, dst Node) int {
	dx, dy := t.Offset(src, dst)
	return abs(dx) + abs(dy)
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// ProductiveDirs returns the directions that make progress toward dst
// inside the minimal rectangle: zero directions if cur == dst, one if the
// remaining offset is along a single dimension, otherwise two. These are
// the (at most two) output-port choices the 21364's adaptive routing
// permits a packet.
func (t Torus) ProductiveDirs(cur, dst Node) []Dir {
	fixed, n := t.ProductiveDirsFixed(cur, dst)
	return append(make([]Dir, 0, 2), fixed[:n]...)
}

// ProductiveDirsFixed is ProductiveDirs without the slice allocation: it
// returns the (at most two) productive directions in a fixed array plus
// the count. The router's per-scan routing loop uses it, so it must not
// allocate.
func (t Torus) ProductiveDirsFixed(cur, dst Node) (dirs [2]Dir, n int) {
	dx, dy := t.Offset(cur, dst)
	switch {
	case dx > 0:
		dirs[n] = East
		n++
	case dx < 0:
		dirs[n] = West
		n++
	}
	switch {
	case dy > 0:
		dirs[n] = South
		n++
	case dy < 0:
		dirs[n] = North
		n++
	}
	return dirs, n
}

// DORDir returns the next direction under strict X-then-Y dimension-order
// routing, used by the deadlock-free channels VC0/VC1. It returns ok=false
// when cur == dst.
func (t Torus) DORDir(cur, dst Node) (Dir, bool) {
	dx, dy := t.Offset(cur, dst)
	switch {
	case dx > 0:
		return East, true
	case dx < 0:
		return West, true
	case dy > 0:
		return South, true
	case dy < 0:
		return North, true
	}
	return North, false
}

// WrapsAhead reports whether the remaining dimension-order path from cur to
// dst, moving in direction d, crosses the torus wrap edge. Following
// Dally's two-channel scheme, a hop sequence that still has to cross the
// wrap edge uses VC0 below the crossing and VC1 at and beyond it; the
// standard position-based formulation is: use VC1 exactly when the wrap
// edge lies ahead on the remaining path in the routing dimension.
func (t Torus) WrapsAhead(cur, dst Node, d Dir) bool {
	cc, dc := t.Coord(cur), t.Coord(dst)
	switch d {
	case East:
		return dc.X < cc.X
	case West:
		return dc.X > cc.X
	case South:
		return dc.Y < cc.Y
	case North:
		return dc.Y > cc.Y
	}
	return false
}

// BitWidth returns the number of bits needed for node ids, and ok=false if
// the node count is not a power of two (the paper's bit-permutation traffic
// patterns are defined only for power-of-two machines).
func (t Torus) BitWidth() (int, bool) {
	n := t.Nodes()
	bits := 0
	for 1<<bits < n {
		bits++
	}
	return bits, 1<<bits == n
}

// BitReversal returns the bit-reversal destination of node n:
// (a_{k-1} ... a_1 a_0) -> (a_0 a_1 ... a_{k-1}).
func (t Torus) BitReversal(n Node) Node {
	bits, ok := t.BitWidth()
	if !ok {
		panic("topology: bit-reversal requires a power-of-two node count")
	}
	v := uint(n)
	var r uint
	for i := 0; i < bits; i++ {
		r = r<<1 | (v & 1)
		v >>= 1
	}
	return Node(r)
}

// PerfectShuffle returns the perfect-shuffle destination of node n:
// (a_{k-1} a_{k-2} ... a_1 a_0) -> (a_{k-2} ... a_0 a_{k-1}), i.e. a left
// rotation of the bit coordinates.
func (t Torus) PerfectShuffle(n Node) Node {
	bits, ok := t.BitWidth()
	if !ok {
		panic("topology: perfect-shuffle requires a power-of-two node count")
	}
	v := uint(n)
	top := (v >> uint(bits-1)) & 1
	return Node(((v << 1) | top) & ((1 << uint(bits)) - 1))
}

// Transpose returns the matrix-transpose destination of node n:
// (x, y) -> (y, x). On a square torus this is a bijection (the classic
// worst case for dimension-order routing); on a rectangular torus the
// swapped coordinates wrap modulo the dimensions and the map may collide.
func (t Torus) Transpose(n Node) Node {
	c := t.Coord(n)
	return t.Node(Coord{X: c.Y, Y: c.X})
}

// Tornado returns the tornado destination of node n: a fixed shift of
// ceil(W/2)-1 hops east and ceil(H/2)-1 hops south, so every packet
// travels just under half-way around each ring — the adversarial pattern
// for torus wrap-link load balance. A fixed shift is a bijection on any
// torus.
func (t Torus) Tornado(n Node) Node {
	c := t.Coord(n)
	return t.Node(Coord{X: c.X + (t.Width+1)/2 - 1, Y: c.Y + (t.Height+1)/2 - 1})
}

// NeighborShift returns the nearest-neighbor destination of node n: one
// hop east, (x, y) -> (x+1, y). It is a bijection on any torus and the
// best case for locality (every packet crosses exactly one link).
func (t Torus) NeighborShift(n Node) Node {
	c := t.Coord(n)
	return t.Node(Coord{X: c.X + 1, Y: c.Y})
}

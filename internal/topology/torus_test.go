package topology

import (
	"testing"
	"testing/quick"
)

func TestCoordRoundTrip(t *testing.T) {
	tor := NewTorus(8, 8)
	for n := Node(0); n < Node(tor.Nodes()); n++ {
		if got := tor.Node(tor.Coord(n)); got != n {
			t.Fatalf("round trip %d -> %v -> %d", n, tor.Coord(n), got)
		}
	}
}

func TestNeighborWrap(t *testing.T) {
	tor := NewTorus(4, 4)
	cases := []struct {
		n    Node
		d    Dir
		want Node
	}{
		{0, North, 12}, // wrap to bottom row
		{0, West, 3},   // wrap to right column
		{15, South, 3}, // wrap to top row
		{15, East, 12}, // wrap to left column
		{5, East, 6},
		{5, South, 9},
	}
	for _, c := range cases {
		if got := tor.Neighbor(c.n, c.d); got != c.want {
			t.Errorf("Neighbor(%d, %v) = %d, want %d", c.n, c.d, got, c.want)
		}
	}
}

func TestNeighborOppositeInverse(t *testing.T) {
	tor := NewTorus(8, 4)
	f := func(n uint8, d uint8) bool {
		node := Node(int(n) % tor.Nodes())
		dir := Dir(d % uint8(NumDirs))
		return tor.Neighbor(tor.Neighbor(node, dir), dir.Opposite()) == node
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceSymmetricAndBounded(t *testing.T) {
	tor := NewTorus(8, 8)
	f := func(a, b uint8) bool {
		x := Node(int(a) % tor.Nodes())
		y := Node(int(b) % tor.Nodes())
		d := tor.Distance(x, y)
		if d != tor.Distance(y, x) {
			return false
		}
		return d >= 0 && d <= tor.Width/2+tor.Height/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangle(t *testing.T) {
	tor := NewTorus(4, 4)
	f := func(a, b, c uint8) bool {
		x := Node(int(a) % 16)
		y := Node(int(b) % 16)
		z := Node(int(c) % 16)
		return tor.Distance(x, z) <= tor.Distance(x, y)+tor.Distance(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProductiveDirsReduceDistance(t *testing.T) {
	tor := NewTorus(8, 8)
	f := func(a, b uint8) bool {
		src := Node(int(a) % tor.Nodes())
		dst := Node(int(b) % tor.Nodes())
		dirs := tor.ProductiveDirs(src, dst)
		if src == dst {
			return len(dirs) == 0
		}
		if len(dirs) == 0 || len(dirs) > 2 {
			return false
		}
		for _, d := range dirs {
			next := tor.Neighbor(src, d)
			if tor.Distance(next, dst) != tor.Distance(src, dst)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProductiveDirsCount(t *testing.T) {
	tor := NewTorus(4, 4)
	// Same row: one direction. Diagonal: two.
	if got := tor.ProductiveDirs(0, 1); len(got) != 1 || got[0] != East {
		t.Errorf("same-row dirs = %v", got)
	}
	if got := tor.ProductiveDirs(0, 5); len(got) != 2 {
		t.Errorf("diagonal dirs = %v, want 2 dirs", got)
	}
}

func TestDORFollowsDimensionOrder(t *testing.T) {
	tor := NewTorus(8, 8)
	f := func(a, b uint8) bool {
		src := Node(int(a) % tor.Nodes())
		dst := Node(int(b) % tor.Nodes())
		cur := src
		hops := 0
		sawY := false
		for cur != dst {
			d, ok := tor.DORDir(cur, dst)
			if !ok {
				return false
			}
			// X must be fully resolved before Y moves begin.
			if d == East || d == West {
				if sawY {
					return false
				}
			} else {
				sawY = true
			}
			cur = tor.Neighbor(cur, d)
			hops++
			if hops > tor.Width+tor.Height {
				return false // not minimal / diverged
			}
		}
		return hops == tor.Distance(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDORAtDestination(t *testing.T) {
	tor := NewTorus(4, 4)
	if _, ok := tor.DORDir(5, 5); ok {
		t.Error("DORDir at destination returned a direction")
	}
}

// TestWrapsAheadOncePerDimension checks the deadlock-freedom precondition of
// the two-channel dateline scheme: along any minimal dimension-order path,
// WrapsAhead transitions from true to false at most once per dimension and
// never back.
func TestWrapsAheadOncePerDimension(t *testing.T) {
	tor := NewTorus(8, 8)
	f := func(a, b uint8) bool {
		src := Node(int(a) % tor.Nodes())
		dst := Node(int(b) % tor.Nodes())
		cur := src
		transitions := 0
		prev := false
		first := true
		for cur != dst {
			d, _ := tor.DORDir(cur, dst)
			w := tor.WrapsAhead(cur, dst, d)
			if !first && w && !prev {
				transitions++ // false -> true would be a re-wrap
			}
			prev, first = w, false
			cur = tor.Neighbor(cur, d)
		}
		// A fresh dimension may start with wrap ahead, so allow one
		// transition when the path turns from X to Y.
		return transitions <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapsAheadRing(t *testing.T) {
	tor := NewTorus(8, 8)
	// From x=6 to x=1 moving east wraps; from x=1 to x=6 moving east does not
	// (it would go west), so check the canonical cases.
	n := tor.Node(Coord{6, 0})
	d := tor.Node(Coord{1, 0})
	if !tor.WrapsAhead(n, d, East) {
		t.Error("6->1 east should wrap ahead")
	}
	if tor.WrapsAhead(d, n, East) {
		t.Error("1->6 east should not wrap ahead")
	}
}

func TestBitReversal(t *testing.T) {
	tor := NewTorus(4, 4) // 16 nodes, 4 bits
	cases := map[Node]Node{
		0x0: 0x0,
		0x1: 0x8, // 0001 -> 1000
		0x3: 0xC, // 0011 -> 1100
		0x5: 0xA, // 0101 -> 1010
		0xF: 0xF,
	}
	for n, want := range cases {
		if got := tor.BitReversal(n); got != want {
			t.Errorf("BitReversal(%#x) = %#x, want %#x", n, got, want)
		}
	}
}

func TestBitReversalInvolution(t *testing.T) {
	tor := NewTorus(8, 8)
	f := func(a uint8) bool {
		n := Node(int(a) % tor.Nodes())
		return tor.BitReversal(tor.BitReversal(n)) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerfectShuffle(t *testing.T) {
	tor := NewTorus(4, 4)
	cases := map[Node]Node{
		0x0: 0x0,
		0x8: 0x1, // 1000 -> 0001
		0x5: 0xA, // 0101 -> 1010
		0xC: 0x9, // 1100 -> 1001
		0xF: 0xF,
	}
	for n, want := range cases {
		if got := tor.PerfectShuffle(n); got != want {
			t.Errorf("PerfectShuffle(%#x) = %#x, want %#x", n, got, want)
		}
	}
}

func TestPerfectShuffleIsPermutation(t *testing.T) {
	tor := NewTorus(8, 8)
	seen := make(map[Node]bool)
	for n := Node(0); n < Node(tor.Nodes()); n++ {
		d := tor.PerfectShuffle(n)
		if seen[d] {
			t.Fatalf("PerfectShuffle maps two nodes to %d", d)
		}
		seen[d] = true
	}
}

func TestBitPatternsRejectNonPowerOfTwo(t *testing.T) {
	tor := NewTorus(12, 12)
	if _, ok := tor.BitWidth(); ok {
		t.Fatal("12x12 should not report power-of-two bit width")
	}
	defer func() {
		if recover() == nil {
			t.Error("BitReversal on 12x12 should panic")
		}
	}()
	tor.BitReversal(3)
}

func TestNewTorusPanicsOnDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTorus(1, 4) should panic")
		}
	}()
	NewTorus(1, 4)
}

func TestTranspose(t *testing.T) {
	tor := NewTorus(4, 4)
	cases := map[Node]Node{
		0:  0,  // (0,0) -> (0,0)
		1:  4,  // (1,0) -> (0,1)
		7:  13, // (3,1) -> (1,3)
		15: 15,
	}
	for n, want := range cases {
		if got := tor.Transpose(n); got != want {
			t.Errorf("Transpose(%d) = %d, want %d", n, got, want)
		}
	}
	// Involution on square tori.
	for n := Node(0); n < Node(tor.Nodes()); n++ {
		if back := tor.Transpose(tor.Transpose(n)); back != n {
			t.Errorf("Transpose(Transpose(%d)) = %d", n, back)
		}
	}
}

func TestTornadoShift(t *testing.T) {
	tor := NewTorus(8, 8) // shift of ceil(8/2)-1 = 3 in each dimension
	if got := tor.Tornado(0); got != tor.Node(Coord{X: 3, Y: 3}) {
		t.Errorf("Tornado(0) = %d, want node (3,3)=%d", got, tor.Node(Coord{X: 3, Y: 3}))
	}
	// Every hop count is the same: just under half-way in each dimension.
	want := tor.Distance(0, tor.Tornado(0))
	for n := Node(0); n < Node(tor.Nodes()); n++ {
		if d := tor.Distance(n, tor.Tornado(n)); d != want {
			t.Errorf("Tornado(%d) travels %d hops, want %d", n, d, want)
		}
	}
}

func TestNeighborShiftIsOneHop(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {5, 3}} {
		tor := NewTorus(dims[0], dims[1])
		for n := Node(0); n < Node(tor.Nodes()); n++ {
			if d := tor.Distance(n, tor.NeighborShift(n)); d != 1 {
				t.Errorf("%dx%d NeighborShift(%d) is %d hops", dims[0], dims[1], n, d)
			}
		}
	}
}

func TestFixedShiftsArePermutations(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {5, 3}, {2, 8}} {
		tor := NewTorus(dims[0], dims[1])
		for name, perm := range map[string]func(Node) Node{
			"Tornado": tor.Tornado, "NeighborShift": tor.NeighborShift,
		} {
			seen := make(map[Node]bool)
			for n := Node(0); n < Node(tor.Nodes()); n++ {
				d := perm(n)
				if seen[d] {
					t.Fatalf("%dx%d %s maps two nodes to %d", dims[0], dims[1], name, d)
				}
				seen[d] = true
			}
		}
	}
}

package router

import (
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
	"alpha21364/internal/vc"
)

// move is one candidate (output port, downstream channel) for a packet,
// together with the connection-matrix row (read port) that reaches the
// output.
type move struct {
	out      ports.Out
	row      int
	targetCh vc.Channel // meaningful for network moves only
	local    bool
}

// routeEntry is the precomputed static routing decision toward one
// destination: the minimal-rectangle productive directions and the
// dimension-order escape hop with its dateline sub-channel.
type routeEntry struct {
	dirs   [2]topology.Dir
	nDirs  int
	dor    topology.Dir
	dorSub vc.Sub
	dorOK  bool
}

// rowFor returns the read-port row of input in that the crossbar connects
// to out, or -1 if neither read port reaches it.
func (r *Router) rowFor(in ports.In, out ports.Out) int {
	if r.cfg.Conn.Connected(ports.Row(in, 0), out) {
		return ports.Row(in, 0)
	}
	if r.cfg.Conn.Connected(ports.Row(in, 1), out) {
		return ports.Row(in, 1)
	}
	return -1
}

// localOut picks the processor-facing output port for a packet addressed
// to this node. I/O packets use the I/O port; everything else drains
// through the two memory-controller ports (which are also the path to the
// internal cache, §2.1), interleaved by packet ID as a stand-in for
// address interleaving across the two Rambus controllers.
func localOut(p *packet.Packet) ports.Out {
	if p.Class.IsIO() {
		return ports.OutIO
	}
	if p.ID%2 == 0 {
		return ports.OutMC0
	}
	return ports.OutMC1
}

// readyMoves appends to dst the packet's ready candidate moves at gaTick,
// in routing-preference order, and returns the extended slice:
//
//   - a packet addressed to this node uses its local output port;
//   - otherwise the adaptive channel offers up to two minimal-rectangle
//     directions (packets route adaptively until blocked, §2.1) — the
//     preference between two productive directions rotates per input port;
//   - when no adaptive move is ready (blocked: port busy or no buffer), the
//     packet may escape into the deadlock-free channels, taking the strict
//     dimension-order hop with VC0/VC1 chosen by the dateline rule;
//   - I/O-class packets route only in the deadlock-free channels (§2.1
//     footnote).
//
// A move is ready when the output port will be free at grant time, the
// crossbar connects one of the input's read ports to it, and (for network
// moves) the downstream virtual channel has a free packet buffer.
func (r *Router) readyMoves(pk int32, gaTick sim.Ticks, dst []move) []move {
	p := r.slab.pkt[pk]
	in := r.slab.in[pk]
	if p.Dst == r.node {
		out := localOut(p)
		row := r.rowFor(in, out)
		if row >= 0 && r.outputs[out].freeForGrant(gaTick, r.postArbTicks) {
			dst = append(dst, move{out: out, row: row, local: true})
		}
		return dst
	}

	cls := p.Class
	route := &r.routes[p.Dst]
	if !cls.IsIO() {
		adaptiveCh := vc.Of(cls, vc.Adaptive)
		dirs := route.dirs
		// Rotate which productive direction is preferred so traffic spreads
		// over both minimal-rectangle sides.
		if route.nDirs == 2 && r.dirPref[in]&1 == 1 {
			dirs[0], dirs[1] = dirs[1], dirs[0]
		}
		for _, d := range dirs[:route.nDirs] {
			if m, ok := r.networkMove(in, d, adaptiveCh, gaTick); ok {
				dst = append(dst, m)
			}
		}
		if len(dst) > 0 {
			return dst
		}
	}

	// Blocked in the adaptive channel (or an I/O packet): deadlock-free
	// escape along dimension order.
	if !route.dorOK {
		return dst
	}
	if m, ok := r.networkMove(in, route.dor, vc.Of(cls, route.dorSub), gaTick); ok {
		dst = append(dst, m)
	}
	return dst
}

func (r *Router) networkMove(in ports.In, d topology.Dir, targetCh vc.Channel, gaTick sim.Ticks) (move, bool) {
	out := ports.OutForDir(d)
	row := r.rowFor(in, out)
	if row < 0 {
		return move{}, false
	}
	op := r.outputs[out]
	if !op.freeForGrant(gaTick, r.postArbTicks) {
		return move{}, false
	}
	if op.credits == nil || !op.credits.Available(targetCh) {
		return move{}, false
	}
	return move{out: out, row: row, targetCh: targetCh}, true
}

// Package router implements the cycle-accurate timing model of the Alpha
// 21364 on-chip router (paper §2.2): eight input ports with two buffer
// read ports each, seven output ports, 19 virtual channels with
// packet-granularity virtual cut-through buffering, and the three-stage
// arbitration pipeline (LA: input-port arbitration, RE: read entry table
// and transport, GA: output-port arbitration) running SPAA, PIM1 or WFA
// with optional Rotary Rule prioritization and the anti-starvation drain
// the Rotary Rule relies on.
package router

import (
	"fmt"

	"alpha21364/internal/core"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/vc"
)

// Config parameterizes one router instance. All cycle counts are in router
// clock cycles.
type Config struct {
	// Kind selects the arbitration algorithm (SPAA/PIM1/WFA, base or
	// rotary). MCM, full PIM and OPF are standalone-model algorithms and
	// are rejected by New.
	Kind core.Kind

	// ArbCycles is the LA-through-GA arbitration latency: 3 for SPAA, 4
	// for PIM1/WFA (paper §3). InitInterval is the number of cycles
	// between successive input-port arbitration starts: 1 for SPAA
	// (pipelined), 3 for PIM1/WFA.
	ArbCycles    int
	InitInterval int

	// RouterPeriod and LinkPeriod are the clock periods (1.2 GHz core,
	// 0.8 GHz links; the Figure 11a study doubles the core clock).
	RouterPeriod sim.Ticks
	LinkPeriod   sim.Ticks

	// PreArbNetwork is the pin-to-LA pipeline depth for network inputs
	// (ECC, transport, synchronization, DW); PreArbLocal the local-port
	// equivalent (RT and decode; the paper quotes 2.5 ns of local port
	// latency). PostArb covers GA-to-pin (read entry, crossbar, ECC, pad
	// and transport). With SPAA's 3 arbitration cycles the zero-contention
	// pin-to-pin latency is PreArbNetwork + (ArbCycles-1) + PostArb = 13
	// cycles = 10.8 ns, matching §2.2.
	PreArbNetwork int
	PreArbLocal   int
	PostArb       int

	// LinkLatencyCycles is the router-to-router wire latency in link
	// clocks (paper §4.1: 3 network clocks per link).
	LinkLatencyCycles int

	// Buffers configures the 316-packet input buffer split across the 19
	// virtual channels.
	Buffers vc.Config

	// Conn is the crossbar connection matrix (Figure 5).
	Conn ports.ConnectionMatrix

	// Window bounds how many packets per virtual channel queue an input
	// arbiter examines each cycle (the entry-table picker depth).
	Window int

	// AntiStarvationAge is the wait (in router cycles) after which a
	// buffered packet turns "old"; AntiStarvationThreshold is the old-
	// packet count that flips the router into drain mode, in which old
	// packets are served before any new ones (paper §3.4).
	AntiStarvationAge       int
	AntiStarvationThreshold int

	// Seed feeds PIM1's random grant/accept steps.
	Seed uint64

	// GrantPolicyFactory, when non-nil, replaces SPAA's default
	// least-recently-selected output-port policy with a custom one (§3
	// names random, round-robin, LRS and priority chains as the design
	// space). Each router gets its own instance. Ignored by the wave
	// algorithms, whose grant rule is part of the algorithm itself.
	GrantPolicyFactory func(rows, cols int) core.SelectPolicy
}

// DefaultConfig returns the 21364 production parameters for an algorithm.
func DefaultConfig(kind core.Kind) Config {
	t := core.TimingOf(kind)
	return Config{
		Kind:                    kind,
		ArbCycles:               t.ArbCycles,
		InitInterval:            t.InitInterval,
		RouterPeriod:            sim.RouterPeriod,
		LinkPeriod:              sim.LinkPeriod,
		PreArbNetwork:           6,
		PreArbLocal:             3,
		PostArb:                 5,
		LinkLatencyCycles:       3,
		Buffers:                 vc.DefaultConfig(),
		Conn:                    ports.DefaultConnectionMatrix(),
		Window:                  8,
		AntiStarvationAge:       20000,
		AntiStarvationThreshold: 48,
		Seed:                    1,
	}
}

// ScalePipeline doubles the pipeline depth and clock frequency, the
// Figure 11a scaling study: every stage count doubles while the cycle time
// halves, and the arbitration latencies become 8 (PIM1/WFA) and 6 (SPAA)
// cycles. SPAA remains pipelined with a new arbitration every (fast)
// cycle; PIM1/WFA restart every 6.
func (c Config) ScalePipeline() Config {
	c.RouterPeriod /= 2
	c.ArbCycles *= 2
	c.PreArbNetwork *= 2
	c.PreArbLocal *= 2
	c.PostArb *= 2
	if c.InitInterval > 1 {
		c.InitInterval *= 2
	}
	c.AntiStarvationAge *= 2
	return c
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch c.Kind {
	case core.KindSPAABase, core.KindSPAARotary, core.KindPIM1, core.KindWFABase, core.KindWFARotary:
	default:
		return fmt.Errorf("router: %v is a standalone-model algorithm, not implementable in the router pipeline", c.Kind)
	}
	if c.ArbCycles < 2 {
		return fmt.Errorf("router: ArbCycles %d too small (need LA and GA stages)", c.ArbCycles)
	}
	if c.InitInterval < 1 {
		return fmt.Errorf("router: InitInterval must be at least 1")
	}
	if c.RouterPeriod <= 0 || c.LinkPeriod <= 0 {
		return fmt.Errorf("router: clock periods must be positive")
	}
	if c.Window < 1 {
		return fmt.Errorf("router: Window must be at least 1")
	}
	return nil
}

// PinToPinCycles returns the zero-contention network-input to
// network-output latency in router cycles.
func (c Config) PinToPinCycles() int {
	return c.PreArbNetwork + (c.ArbCycles - 1) + c.PostArb
}

// isWave reports whether the algorithm arbitrates in matrix waves
// (PIM1/WFA) rather than SPAA's per-cycle nominations.
func (c Config) isWave() bool {
	return c.Kind == core.KindPIM1 || c.Kind == core.KindWFABase || c.Kind == core.KindWFARotary
}

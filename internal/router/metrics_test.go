package router

import (
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/obs"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
)

// runMetricsRig drives one self-addressed router for a fixed number of
// injection cycles with the given telemetry installed, returning the
// counters and final time.
func runMetricsRig(t *testing.T, kind core.Kind, m *obs.RouterMetrics, f *obs.FlightRing) (Counters, sim.Ticks) {
	t.Helper()
	torus := topology.NewTorus(4, 4)
	cfg := DefaultConfig(kind)
	r, err := New(cfg, 5, torus)
	if err != nil {
		t.Fatal(err)
	}
	r.SetMetrics(m)
	r.SetFlight(f)
	arena := packet.NewArena()
	for _, out := range []ports.Out{ports.OutMC0, ports.OutMC1, ports.OutIO} {
		r.ConnectLocal(out, func(p *packet.Packet, at sim.Ticks) {
			arena.Release(p)
		})
	}
	now := sim.Ticks(0)
	id := uint64(0)
	for i := 0; i < 60; i++ {
		id++
		p := arena.New(id, packet.Request, 5, 5, now)
		if !r.Inject(p, ports.InCache, now) {
			arena.Release(p)
		}
		for c := 0; c < 8; c++ {
			r.Tick(now)
			now += cfg.RouterPeriod
		}
	}
	r.FlushMetrics(now)
	return r.Counters, now
}

// TestMetricsObservationOnly runs the same deterministic traffic with
// and without telemetry installed and requires identical router
// counters: metrics and the flight recorder must not perturb the
// simulation.
func TestMetricsObservationOnly(t *testing.T) {
	for _, kind := range []core.Kind{core.KindSPAARotary, core.KindPIM1, core.KindWFARotary} {
		bare, _ := runMetricsRig(t, kind, nil, nil)
		var m obs.RouterMetrics
		instrumented, end := runMetricsRig(t, kind, &m, obs.NewFlightRing(64))
		if bare != instrumented {
			t.Fatalf("%v: counters diverged with metrics on:\nbare %+v\n  obs %+v", kind, bare, instrumented)
		}
		// Consistency between the two counting systems.
		if m.Arb.Grants < instrumented.Grants {
			t.Errorf("%v: arb grants %d < dispatches %d", kind, m.Arb.Grants, instrumented.Grants)
		}
		if m.Arb.Requests != m.Arb.Grants+m.Arb.Conflicts {
			t.Errorf("%v: requests %d != grants %d + conflicts %d",
				kind, m.Arb.Requests, m.Arb.Grants, m.Arb.Conflicts)
		}
		if m.Stalls+m.CreditWaits != m.Arb.NomFailures {
			t.Errorf("%v: stalls %d + credit waits %d != nomination failures %d",
				kind, m.Stalls, m.CreditWaits, m.Arb.NomFailures)
		}
		// All packets delivered locally, so every injected packet spent time
		// buffered: the occupancy integral must be positive and the snapshot
		// must reflect it.
		snap := func() *obs.Snapshot {
			sm := &obs.SimMetrics{Routers: []obs.RouterMetrics{m}}
			return sm.Snapshot(kind.String(), end)
		}()
		if snap.Routers[0].MeanOccupancy <= 0 {
			t.Errorf("%v: mean occupancy = %v, want > 0", kind, snap.Routers[0].MeanOccupancy)
		}
	}
}

// TestFlightRecorderCapturesLifecycle checks the ring holds a packet's
// inject → nominate → grant sequence in order.
func TestFlightRecorderCapturesLifecycle(t *testing.T) {
	f := obs.NewFlightRing(1024)
	_, _ = runMetricsRig(t, core.KindSPAARotary, nil, f)
	ev := f.Events()
	if len(ev) == 0 {
		t.Fatal("flight ring empty after traffic")
	}
	var sawInject, sawNominate, sawGrant bool
	last := sim.Ticks(-1)
	for _, e := range ev {
		if e.At < last {
			t.Fatalf("flight events out of order: %+v", ev)
		}
		last = e.At
		switch e.Kind {
		case obs.FlightInject:
			sawInject = true
		case obs.FlightNominate:
			sawNominate = true
		case obs.FlightGrant:
			sawGrant = true
			if e.Out >= ports.NumOut {
				t.Fatalf("grant event with no output port: %+v", e)
			}
		}
	}
	if !sawInject || !sawNominate || !sawGrant {
		t.Fatalf("lifecycle incomplete: inject=%v nominate=%v grant=%v", sawInject, sawNominate, sawGrant)
	}
}

// TestRouterTickAllocsWithMetrics extends the steady-state allocation
// pin over the metrics-enabled path: telemetry increments must stay
// plain field writes.
func TestRouterTickAllocsWithMetrics(t *testing.T) {
	for _, kind := range []core.Kind{core.KindSPAABase, core.KindPIM1} {
		torus := topology.NewTorus(4, 4)
		cfg := DefaultConfig(kind)
		r, err := New(cfg, 5, torus)
		if err != nil {
			t.Fatal(err)
		}
		var m obs.RouterMetrics
		r.SetMetrics(&m)
		r.SetFlight(obs.NewFlightRing(obs.DefaultFlightDepth))
		arena := packet.NewArena()
		for _, out := range []ports.Out{ports.OutMC0, ports.OutMC1, ports.OutIO} {
			r.ConnectLocal(out, func(p *packet.Packet, at sim.Ticks) {
				arena.Release(p)
			})
		}

		now := sim.Ticks(0)
		id := uint64(0)
		cycle := func() {
			id++
			p := arena.New(id, packet.Request, 5, 5, now)
			if !r.Inject(p, ports.InCache, now) {
				arena.Release(p)
			}
			for c := 0; c < 8; c++ {
				r.Tick(now)
				now += cfg.RouterPeriod
			}
		}
		for i := 0; i < 50; i++ {
			cycle()
		}
		allocs := testing.AllocsPerRun(200, cycle)
		if allocs != 0 {
			t.Errorf("%v: metrics-enabled router Tick allocates %.2f/op, want 0", kind, allocs)
		}
	}
}

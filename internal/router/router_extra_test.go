package router

import (
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
	"alpha21364/internal/vc"
)

// TestWaveCadence verifies the wave algorithms' initiation interval: with
// an always-full input, WFA dispatches exactly one packet per 3 cycles on
// a free port fed by 1-flit packets.
func TestWaveCadence(t *testing.T) {
	cfg := DefaultConfig(core.KindWFABase)
	cfg.Buffers.SpecialBufs = 64
	h := newHarness(t, cfg)
	spCh := vc.Of(packet.Special, vc.Adaptive)
	h.eng.Schedule(0, func() {
		for i := 0; i < 30; i++ {
			h.r.Arrive(packet.New(uint64(i), packet.Special, 4, 7, 0), ports.InWest, spCh, 0, nil)
		}
	})
	h.eng.Run(120 * cfg.RouterPeriod)
	if len(h.departures) < 3 {
		t.Fatalf("only %d departures", len(h.departures))
	}
	for i := 1; i < len(h.departures); i++ {
		gap := h.departures[i].headerDepart - h.departures[i-1].headerDepart
		if gap < 3*cfg.RouterPeriod {
			t.Fatalf("wave departures %d apart; initiation interval is 3 cycles", gap)
		}
	}
}

// TestSPAABeatsWaveCadence is the same saturated 1-flit stream under SPAA:
// the every-cycle restart must beat the wave cadence.
func TestSPAABeatsWaveCadence(t *testing.T) {
	depart := func(kind core.Kind) int {
		cfg := DefaultConfig(kind)
		cfg.Buffers.SpecialBufs = 64
		h := newHarness(t, cfg)
		spCh := vc.Of(packet.Special, vc.Adaptive)
		h.eng.Schedule(0, func() {
			for i := 0; i < 40; i++ {
				h.r.Arrive(packet.New(uint64(i), packet.Special, 4, 7, 0), ports.InWest, spCh, 0, nil)
			}
		})
		h.eng.Run(120 * cfg.RouterPeriod)
		return len(h.departures)
	}
	spaa, wfa := depart(core.KindSPAABase), depart(core.KindWFABase)
	// 1-flit packets occupy the link for 1.5 router cycles; SPAA restarts
	// every cycle, WFA every 3.
	if spaa <= wfa {
		t.Fatalf("SPAA=%d vs WFA=%d departures; pipelining should win", spaa, wfa)
	}
}

// TestVCLeastRecentlySelected drives two VCs at one input port and checks
// that nominations alternate between them (the LRS VC rule of §3).
func TestVCLeastRecentlySelected(t *testing.T) {
	cfg := DefaultConfig(core.KindSPAABase)
	h := newHarness(t, cfg)
	reqCh := vc.Of(packet.Request, vc.Adaptive)
	fwdCh := vc.Of(packet.Forward, vc.Adaptive)
	h.eng.Schedule(0, func() {
		for i := 0; i < 6; i++ {
			// Interleave classes; all head east, so they serialize on the
			// port and the VC choice is visible in the departure order.
			h.r.Arrive(packet.New(uint64(100+i), packet.Request, 4, 7, 0), ports.InWest, reqCh, 0, nil)
			h.r.Arrive(packet.New(uint64(200+i), packet.Forward, 4, 7, 0), ports.InWest, fwdCh, 0, nil)
		}
	})
	h.eng.Run(6000)
	if len(h.departures) != 12 {
		t.Fatalf("departures = %d, want 12", len(h.departures))
	}
	// LRS fairness: while both classes have waiting packets (the first
	// eight departures), each class must be served several times — neither
	// VC may monopolize the port. (Strict alternation is not guaranteed:
	// nomination order is LRS, but in-flight grants can reorder service by
	// a cycle.)
	counts := map[packet.Class]int{}
	for _, d := range h.departures[:8] {
		counts[d.p.Class]++
	}
	if counts[packet.Request] < 3 || counts[packet.Forward] < 3 {
		t.Fatalf("VC service unbalanced in first 8 departures: %v", counts)
	}
}

// TestWindowLimitsPickerDepth: with Window=1 the arbiter sees only each
// queue's head, so a blocked head (no credits for its direction) blocks
// eligible packets behind it; a deeper window lets them pass.
func TestWindowLimitsPickerDepth(t *testing.T) {
	run := func(window int) int {
		cfg := DefaultConfig(core.KindSPAABase)
		cfg.Window = window
		h := newHarness(t, cfg)
		adaptive := vc.Of(packet.Request, vc.Adaptive)
		// Block everything eastbound by exhausting east credits.
		cr := h.r.OutputCredits(ports.OutEast)
		for _, sub := range []vc.Sub{vc.Adaptive, vc.VC0, vc.VC1} {
			ch := vc.Of(packet.Request, sub)
			for cr.Available(ch) {
				cr.Reserve(ch)
			}
		}
		h.eng.Schedule(0, func() {
			// Head of queue wants east (blocked); the next packet wants the
			// local node and could go immediately.
			h.r.Arrive(packet.New(2, packet.Request, 4, 7, 0), ports.InWest, adaptive, 0, nil)
			h.r.Arrive(packet.New(4, packet.Request, 4, 5, 0), ports.InWest, adaptive, 0, nil)
		})
		h.eng.Run(3000)
		return len(h.deliveries)
	}
	if got := run(1); got != 0 {
		t.Fatalf("window=1 delivered %d packets past a blocked head", got)
	}
	if got := run(8); got != 1 {
		t.Fatalf("window=8 delivered %d, want 1 (blocked head bypassed)", got)
	}
}

// TestScaledPipelineRuns executes the Figure 11a configuration on a single
// router and checks the doubled pin-to-pin cycle count at the doubled
// clock.
func TestScaledPipelineRuns(t *testing.T) {
	cfg := DefaultConfig(core.KindSPAARotary).ScalePipeline()
	h := newHarness(t, cfg)
	p := packet.New(1, packet.Request, 4, 7, 0)
	h.eng.Schedule(0, func() {
		h.r.Arrive(p, ports.InWest, vc.Of(packet.Request, vc.Adaptive), 0, nil)
	})
	h.eng.Run(1000)
	if len(h.departures) != 1 {
		t.Fatalf("departures = %d", len(h.departures))
	}
	// 12 pre-arb + 5 arb + 10 post-arb fast cycles = 27 fast cycles.
	want := sim.Ticks(cfg.PinToPinCycles()) * cfg.RouterPeriod
	if got := h.departures[0].headerDepart; got != want {
		t.Errorf("scaled pin-to-pin = %d ticks, want %d", got, want)
	}
}

// TestDualAdaptiveDirectionsSpread checks that packets with two productive
// directions use both over time (the dirPref rotation).
func TestDualAdaptiveDirectionsSpread(t *testing.T) {
	cfg := DefaultConfig(core.KindSPAABase)
	h := newHarness(t, cfg)
	reqCh := vc.Of(packet.Request, vc.Adaptive)
	// Node 5=(1,1) to node 10=(2,2): productive dirs are east and south.
	h.eng.Schedule(0, func() {
		for i := 0; i < 12; i++ {
			h.r.Arrive(packet.New(uint64(i), packet.Request, 4, 10, 0), ports.InWest, reqCh, 0, nil)
		}
	})
	h.eng.Run(10000)
	dirs := map[ports.Out]int{}
	for _, d := range h.departures {
		dirs[d.out]++
	}
	if dirs[ports.OutEast] == 0 || dirs[ports.OutSouth] == 0 {
		t.Fatalf("adaptive routing never spread over both minimal directions: %v", dirs)
	}
}

// TestWrapChannelSelection: a dispatch that must cross the wrap edge in
// the deadlock-free subnetwork uses VC1.
func TestWrapChannelSelection(t *testing.T) {
	cfg := DefaultConfig(core.KindSPAABase)
	torus := topology.NewTorus(4, 4)
	r, err := New(cfg, 3, torus) // node 3 = (3,0); east neighbor wraps to (0,0)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	var got []vc.Channel
	for out := ports.Out(0); out < ports.NumOut; out++ {
		if out.IsNetwork() {
			r.ConnectNetwork(out, func(p *packet.Packet, ch vc.Channel, at sim.Ticks, home *vc.Credits) {
				got = append(got, ch)
				home.Release(ch)
			})
		} else {
			r.ConnectLocal(out, func(p *packet.Packet, at sim.Ticks) {})
		}
	}
	eng.AddClock(cfg.RouterPeriod, 0, r)
	// Exhaust adaptive credits eastbound so the packet takes the escape
	// channel; from (3,0) east toward (1,0) the wrap edge lies ahead -> VC1.
	adaptive := vc.Of(packet.Request, vc.Adaptive)
	cr := r.OutputCredits(ports.OutEast)
	for cr.Available(adaptive) {
		cr.Reserve(adaptive)
	}
	eng.Schedule(0, func() {
		r.Arrive(packet.New(1, packet.Request, 2, 1, 0), ports.InWest, adaptive, 0, nil)
	})
	eng.Run(2000)
	if len(got) != 1 {
		t.Fatalf("departures = %d", len(got))
	}
	if got[0] != vc.Of(packet.Request, vc.VC1) {
		t.Errorf("escape channel = %v, want request/vc1 (wrap ahead)", got[0])
	}
}

// TestGrantPolicyFactoryOverride plugs a fixed-priority policy into SPAA
// and observes the deterministic winner.
func TestGrantPolicyFactoryOverride(t *testing.T) {
	cfg := DefaultConfig(core.KindSPAABase)
	cfg.GrantPolicyFactory = func(rows, cols int) core.SelectPolicy {
		return core.NewPriorityChainPolicy()
	}
	h := newHarness(t, cfg)
	reqCh := vc.Of(packet.Request, vc.Adaptive)
	h.eng.Schedule(0, func() {
		// Rows: InWest=row 6/7, InNorth=row 0/1. Priority chain favors the
		// lowest row, so the north packet must win every collision.
		h.r.Arrive(packet.New(1, packet.Request, 4, 7, 0), ports.InWest, reqCh, 0, nil)
		h.r.Arrive(packet.New(2, packet.Request, 1, 7, 0), ports.InNorth, reqCh, 0, nil)
	})
	h.eng.Run(3000)
	if len(h.departures) != 2 {
		t.Fatalf("departures = %d", len(h.departures))
	}
	if h.departures[0].p.ID != 2 {
		t.Errorf("priority chain winner = packet %d, want the north packet", h.departures[0].p.ID)
	}
}

package router

// state.go holds the router's per-packet bookkeeping in struct-of-arrays
// form: one slab of parallel arrays per router, indexed by int32 handles
// drawn from a free list, with per-(input port, virtual channel) queues
// as fixed-capacity index rings over the slab. The arbiter inner loops
// (SPAA nomination scans, PIM1/WFA wave builds) walk dense arrays of
// ticks and flags instead of chasing per-packet heap objects, and the
// steady-state router allocates nothing: slab slots and ring storage are
// recycled as packets dispatch.

import (
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/vc"
)

// pkState flag bits.
const (
	pkNominated uint8 = 1 << iota // locked by an in-flight nomination or wave
	pkOld                         // anti-starvation color
)

// pkSlab is the per-router packet-state arena: parallel arrays indexed
// by int32 handles. Growth appends to every array (indices, not
// pointers, are held elsewhere, so reallocation is safe); the free list
// recycles slots, reaching a steady state with zero allocation.
type pkSlab struct {
	pkt          []*packet.Packet
	ch           []vc.Channel // channel occupied at this router
	in           []ports.In
	headerArrive []sim.Ticks // header at this router's pin (or injection time)
	tailArrive   []sim.Ticks // last flit fully arrived
	eligibleAt   []sim.Ticks // earliest LA participation (after DW stages)
	flags        []uint8
	// Credit home: where to return the buffer credit this packet occupies
	// when it leaves this router. Nil for test-injected packets.
	upstream   []*vc.Credits
	upstreamCh []vc.Channel

	free []int32
}

// alloc returns a fresh slot handle; the caller fills every field.
func (s *pkSlab) alloc() int32 {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx
	}
	idx := int32(len(s.pkt))
	s.pkt = append(s.pkt, nil)
	s.ch = append(s.ch, 0)
	s.in = append(s.in, 0)
	s.headerArrive = append(s.headerArrive, 0)
	s.tailArrive = append(s.tailArrive, 0)
	s.eligibleAt = append(s.eligibleAt, 0)
	s.flags = append(s.flags, 0)
	s.upstream = append(s.upstream, nil)
	s.upstreamCh = append(s.upstreamCh, 0)
	return idx
}

// release recycles a slot, dropping its pointer fields for the GC.
func (s *pkSlab) release(idx int32) {
	s.pkt[idx] = nil
	s.upstream[idx] = nil
	s.flags[idx] = 0
	s.free = append(s.free, idx)
}

// initQueues sizes one input port's per-channel rings to the configured
// buffer capacities.
func initQueues(queues *[vc.NumChannels]vc.Ring, cfg vc.Config) {
	for ch := vc.Channel(0); ch < vc.NumChannels; ch++ {
		queues[ch].Init(cfg.Capacity(ch))
	}
}

// SendFunc forwards a dispatched packet across a link: the packet leaves
// this router on a network output port at headerDepart and must appear at
// the neighbor with the given channel. creditHome is the credit pool to
// release when the packet later leaves the neighbor's buffer.
type SendFunc func(p *packet.Packet, targetCh vc.Channel, headerDepart sim.Ticks, creditHome *vc.Credits)

// DeliverFunc consumes a packet at a local output port; at is the time the
// last flit reaches the sink.
type DeliverFunc func(p *packet.Packet, at sim.Ticks)

// outputPort is one of the seven output ports.
type outputPort struct {
	id ports.Out
	// busyUntil is when the port finishes transmitting its current packet;
	// re-arbitration is possible once all flits are delivered (§2.1).
	busyUntil sim.Ticks
	// credits tracks free buffer space at the downstream router's input
	// port (network ports only).
	credits *vc.Credits
	send    SendFunc    // network ports
	deliver DeliverFunc // local ports
}

// freeForGrant reports whether the port will have finished its current
// transmission by the time a grant issued at gaTick puts the first flit on
// the wire.
func (o *outputPort) freeForGrant(gaTick sim.Ticks, postArb sim.Ticks) bool {
	return o.busyUntil <= gaTick+postArb
}

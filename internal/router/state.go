package router

import (
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/vc"
)

// pkState is a router's per-hop bookkeeping for one buffered packet.
type pkState struct {
	pkt *packet.Packet
	ch  vc.Channel // channel occupied at this router
	in  ports.In

	headerArrive sim.Ticks // header at this router's pin (or injection time)
	tailArrive   sim.Ticks // last flit fully arrived
	eligibleAt   sim.Ticks // earliest LA participation (after DW stages)

	nominated bool // locked by an in-flight nomination or wave
	old       bool // anti-starvation color

	// Credit home: where to return the buffer credit this packet occupies
	// when it leaves this router. Nil for test-injected packets.
	upstream   *vc.Credits
	upstreamCh vc.Channel
}

// inputPort is one of the eight buffered input ports.
type inputPort struct {
	id     ports.In
	queues [vc.NumChannels][]*pkState
	// lru is the least-recently-selected ordering over virtual channels:
	// the front is the channel selected longest ago. The 21364's input
	// arbiter "selects the oldest packet ... from the least-recently
	// selected virtual channel" (§3).
	lru [vc.NumChannels]vc.Channel
	// feeder holds the injection credits for local ports (the processor's
	// view of this buffer's free space); nil for network inputs, whose
	// credits live at the upstream router's output port.
	feeder *vc.Credits
}

func newInputPort(id ports.In, cfg Config) *inputPort {
	p := &inputPort{id: id}
	for ch := vc.Channel(0); ch < vc.NumChannels; ch++ {
		p.lru[ch] = ch
	}
	if !id.IsNetwork() {
		p.feeder = vc.NewCredits(cfg.Buffers)
	}
	return p
}

// touchVC moves ch to the most-recently-selected end of the LRU order.
func (p *inputPort) touchVC(ch vc.Channel) {
	idx := -1
	for i, c := range p.lru {
		if c == ch {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	copy(p.lru[idx:], p.lru[idx+1:])
	p.lru[len(p.lru)-1] = ch
}

// remove deletes pk from its queue; it panics if absent (that would mean a
// double dispatch).
func (p *inputPort) remove(pk *pkState) {
	q := p.queues[pk.ch]
	for i := range q {
		if q[i] == pk {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			p.queues[pk.ch] = q[:len(q)-1]
			return
		}
	}
	panic("router: removing packet not in queue")
}

// buffered returns the number of packets held at the port.
func (p *inputPort) buffered() int {
	n := 0
	for ch := range p.queues {
		n += len(p.queues[ch])
	}
	return n
}

// SendFunc forwards a dispatched packet across a link: the packet leaves
// this router on a network output port at headerDepart and must appear at
// the neighbor with the given channel. creditHome is the credit pool to
// release when the packet later leaves the neighbor's buffer.
type SendFunc func(p *packet.Packet, targetCh vc.Channel, headerDepart sim.Ticks, creditHome *vc.Credits)

// DeliverFunc consumes a packet at a local output port; at is the time the
// last flit reaches the sink.
type DeliverFunc func(p *packet.Packet, at sim.Ticks)

// outputPort is one of the seven output ports.
type outputPort struct {
	id ports.Out
	// busyUntil is when the port finishes transmitting its current packet;
	// re-arbitration is possible once all flits are delivered (§2.1).
	busyUntil sim.Ticks
	// credits tracks free buffer space at the downstream router's input
	// port (network ports only).
	credits *vc.Credits
	send    SendFunc    // network ports
	deliver DeliverFunc // local ports
}

// freeForGrant reports whether the port will have finished its current
// transmission by the time a grant issued at gaTick puts the first flit on
// the wire.
func (o *outputPort) freeForGrant(gaTick sim.Ticks, postArb sim.Ticks) bool {
	return o.busyUntil <= gaTick+postArb
}

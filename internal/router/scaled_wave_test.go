package router

import (
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/vc"
)

// TestScaledWaveAlgorithmsStillDispatch is a regression test for the
// Figure 11a configuration: with the 2x pipeline, the wave initiation
// interval (6 fast cycles) is shorter than ArbCycles-1 (7), and a naive
// wave restart would overwrite the in-flight wave's state, permanently
// locking its packets. The grant decision must land at the initiation
// interval, with the remaining arbitration cycles as pipelined wire delay.
func TestScaledWaveAlgorithmsStillDispatch(t *testing.T) {
	for _, kind := range []core.Kind{core.KindPIM1, core.KindWFARotary} {
		cfg := DefaultConfig(kind).ScalePipeline()
		h := newHarness(t, cfg)
		reqCh := vc.Of(packet.Request, vc.Adaptive)
		h.eng.Schedule(0, func() {
			for i := 0; i < 10; i++ {
				h.r.Arrive(packet.New(uint64(i), packet.Request, 4, 7, 0), ports.InWest, reqCh, 0, nil)
			}
		})
		h.eng.Run(5000)
		if len(h.departures) != 10 {
			t.Fatalf("%v scaled: %d of 10 packets dispatched (wave overlap deadlock?)", kind, len(h.departures))
		}
		// Zero-contention pin-to-pin stays at 14 equivalent base cycles:
		// 12 + 6 + 10 fast cycles of period 5.
		want := sim.Ticks(12+6+10) * cfg.RouterPeriod
		if got := h.departures[0].headerDepart; got != want {
			t.Errorf("%v scaled pin-to-pin = %d ticks, want %d", kind, got, want)
		}
	}
}

// TestWavesNeverOverlap drives a saturated router and asserts the wave
// state machine is always quiescent when a new wave builds.
func TestWavesNeverOverlap(t *testing.T) {
	cfg := DefaultConfig(core.KindPIM1).ScalePipeline()
	h := newHarness(t, cfg)
	reqCh := vc.Of(packet.Request, vc.Adaptive)
	h.eng.Schedule(0, func() {
		for i := 0; i < 60; i++ {
			in := []ports.In{ports.InWest, ports.InNorth, ports.InSouth}[i%3]
			h.r.Arrive(packet.New(uint64(i), packet.Request, 4, 7, 0), in, reqCh, 0, nil)
		}
	})
	h.eng.Run(30000)
	if len(h.departures) != 60 {
		t.Fatalf("dispatched %d of 60 under sustained load", len(h.departures))
	}
	if h.r.Buffered() != 0 {
		t.Fatalf("%d packets stuck", h.r.Buffered())
	}
}

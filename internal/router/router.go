package router

import (
	"fmt"

	"alpha21364/internal/core"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
	"alpha21364/internal/vc"
)

// Counters exposes router-level event counts for statistics and tests.
type Counters struct {
	Injected    int64 // packets accepted at local input ports
	Arrived     int64 // packets accepted from network links
	Nominations int64 // LA-stage nominations issued
	Grants      int64 // GA-stage grants (dispatches)
	Collisions  int64 // nominations reset without a grant
	// WastedSpecReads counts SPAA's speculative buffer reads that were
	// discarded because the output arbiter picked another packet (§3.3).
	WastedSpecReads int64
	DrainEntries    int64 // times the anti-starvation drain engaged
	DeliveredLocal  int64 // packets consumed by this node's local ports
}

// nomination is one SPAA in-flight nomination traveling LA -> RE -> GA.
type nomination struct {
	pk        *pkState
	row       int
	out       ports.Out
	targetCh  vc.Channel
	local     bool
	resolveAt sim.Ticks
}

// waveCell carries the packet and move behind one wave-matrix cell.
type waveCell struct {
	pk       *pkState
	targetCh vc.Channel
	local    bool
}

// Router is one cycle-accurate 21364 router. Drive it by attaching it to a
// sim.Engine clock domain with the router's clock period.
type Router struct {
	cfg   Config
	node  topology.Node
	torus topology.Torus
	rng   *sim.RNG

	inputs  [ports.NumIn]*inputPort
	outputs [ports.NumOut]*outputPort

	// SPAA pipeline state.
	policy  core.SelectPolicy
	noms    []nomination // FIFO ordered by resolveAt
	dirPref [ports.NumIn]uint8
	nextLA  sim.Ticks

	// Wave (PIM1/WFA) pipeline state.
	arb           core.Arbiter
	matrix        *core.Matrix
	waveCells     [ports.NumRows][ports.NumOut]waveCell
	waveActive    bool
	waveResolveAt sim.Ticks
	nextWaveAt    sim.Ticks

	// Anti-starvation drain (§3.4).
	oldCount int
	draining bool

	// Derived tick quantities.
	postArbTicks sim.Ticks
	gaOffset     sim.Ticks // LA -> GA latency in ticks (SPAA nominations)
	// waveGaOffset is the build -> grant latency for PIM1/WFA waves: the
	// grant decision lands at the initiation interval (matrix operations),
	// and any remaining arbitration cycles are pipelined wire delay to the
	// output ports (paper §3.1-3.2). Waves therefore never overlap.
	waveGaOffset sim.Ticks
	ageTicks     sim.Ticks

	Counters Counters

	// scratch
	gaRows []int
	gaNet  []bool
	gaIdx  []int
	moves  []move
}

// New builds a router for the given node of the torus.
func New(cfg Config, node topology.Node, torus topology.Torus) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Router{
		cfg:          cfg,
		node:         node,
		torus:        torus,
		rng:          sim.NewRNG(cfg.Seed ^ (uint64(node)+1)*0x9e3779b97f4a7c15),
		postArbTicks: sim.Ticks(cfg.PostArb) * cfg.RouterPeriod,
		gaOffset:     sim.Ticks(cfg.ArbCycles-1) * cfg.RouterPeriod,
		ageTicks:     sim.Ticks(cfg.AntiStarvationAge) * cfg.RouterPeriod,
	}
	waveGa := cfg.ArbCycles - 1
	if cfg.InitInterval < waveGa {
		waveGa = cfg.InitInterval
	}
	r.waveGaOffset = sim.Ticks(waveGa) * cfg.RouterPeriod
	for in := ports.In(0); in < ports.NumIn; in++ {
		r.inputs[in] = newInputPort(in, cfg)
	}
	for out := ports.Out(0); out < ports.NumOut; out++ {
		r.outputs[out] = &outputPort{id: out}
	}
	switch cfg.Kind {
	case core.KindSPAABase, core.KindSPAARotary:
		if cfg.GrantPolicyFactory != nil {
			r.policy = cfg.GrantPolicyFactory(ports.NumRows, int(ports.NumOut))
		} else {
			r.policy = core.NewLRSPolicy(ports.NumRows, int(ports.NumOut),
				cfg.Kind == core.KindSPAARotary)
		}
	default:
		r.arb = core.New(cfg.Kind, r.rng.Split())
		r.matrix = core.NewRouterMatrix()
	}
	return r, nil
}

// Node returns the router's torus position.
func (r *Router) Node() topology.Node { return r.node }

// Config returns the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// ConnectNetwork wires a torus output port: send is invoked on dispatch,
// and downstream describes the neighbor input buffer the port holds
// credits for.
func (r *Router) ConnectNetwork(out ports.Out, send SendFunc) {
	if !out.IsNetwork() {
		panic(fmt.Sprintf("router: %v is not a network port", out))
	}
	r.outputs[out].send = send
	r.outputs[out].credits = vc.NewCredits(r.cfg.Buffers)
}

// ConnectLocal wires a processor-facing output port to its sink.
func (r *Router) ConnectLocal(out ports.Out, deliver DeliverFunc) {
	if out.IsNetwork() {
		panic(fmt.Sprintf("router: %v is not a local port", out))
	}
	r.outputs[out].deliver = deliver
}

// injectionChannel returns the virtual channel a newly injected packet
// enters: the adaptive channel of its class, except I/O packets, which
// live in the deadlock-free channels only.
func (r *Router) injectionChannel(p *packet.Packet) vc.Channel {
	if !p.Class.IsIO() {
		return vc.Of(p.Class, vc.Adaptive)
	}
	sub := vc.VC0
	if d, ok := r.torus.DORDir(r.node, p.Dst); ok && r.torus.WrapsAhead(r.node, p.Dst, d) {
		sub = vc.VC1
	}
	return vc.Of(p.Class, sub)
}

// Inject offers a packet to a local input port at time now. It returns
// false when the port's buffer has no space in the packet's channel; the
// caller (the processor model) must retry later — this backpressure is the
// throttling path the Rotary Rule exploits.
func (r *Router) Inject(p *packet.Packet, in ports.In, now sim.Ticks) bool {
	if in.IsNetwork() {
		panic(fmt.Sprintf("router: cannot inject on network port %v", in))
	}
	ip := r.inputs[in]
	ch := r.injectionChannel(p)
	if !ip.feeder.Available(ch) {
		return false
	}
	ip.feeder.Reserve(ch)
	pk := &pkState{
		pkt:          p,
		ch:           ch,
		in:           in,
		headerArrive: now,
		tailArrive:   now + sim.Ticks(p.Flits-1)*r.cfg.RouterPeriod,
		eligibleAt:   now + sim.Ticks(r.cfg.PreArbLocal)*r.cfg.RouterPeriod,
		upstream:     ip.feeder,
		upstreamCh:   ch,
	}
	ip.queues[ch] = append(ip.queues[ch], pk)
	r.Counters.Injected++
	return true
}

// InjectionSpace returns the free packet-buffer count a new packet of
// class cl would see at local input port in (the processor's backpressure
// signal).
func (r *Router) InjectionSpace(in ports.In, cl packet.Class, dst topology.Node) int {
	if in.IsNetwork() {
		panic(fmt.Sprintf("router: %v is not a local port", in))
	}
	p := packet.Packet{Class: cl, Dst: dst}
	return r.inputs[in].feeder.Free(r.injectionChannel(&p))
}

// OutputCredits exposes a network output port's downstream credit pool;
// used by the network wiring and by tests that exercise backpressure.
func (r *Router) OutputCredits(out ports.Out) *vc.Credits {
	if !out.IsNetwork() {
		panic(fmt.Sprintf("router: %v has no credits", out))
	}
	return r.outputs[out].credits
}

// Arrive accepts a packet from an inter-router link. The upstream output
// port reserved a credit for targetCh before sending, so buffer space is
// guaranteed; creditHome is that port's credit pool, released when the
// packet leaves this router.
func (r *Router) Arrive(p *packet.Packet, in ports.In, targetCh vc.Channel,
	headerArrive sim.Ticks, creditHome *vc.Credits) {
	ip := r.inputs[in]
	if len(ip.queues[targetCh]) >= r.cfg.Buffers.Capacity(targetCh) {
		panic(fmt.Sprintf("router %d: buffer overflow on %v/%v — credit accounting broken",
			r.node, in, targetCh))
	}
	pk := &pkState{
		pkt:          p,
		ch:           targetCh,
		in:           in,
		headerArrive: headerArrive,
		tailArrive:   headerArrive + sim.Ticks(p.Flits-1)*r.cfg.LinkPeriod,
		eligibleAt:   headerArrive + sim.Ticks(r.cfg.PreArbNetwork)*r.cfg.RouterPeriod,
		upstream:     creditHome,
		upstreamCh:   targetCh,
	}
	ip.queues[targetCh] = append(ip.queues[targetCh], pk)
	r.Counters.Arrived++
}

// Buffered returns the number of packets buffered at the router.
func (r *Router) Buffered() int {
	n := 0
	for _, ip := range r.inputs {
		n += ip.buffered()
	}
	return n
}

// Draining reports whether the anti-starvation drain is active.
func (r *Router) Draining() bool { return r.draining }

// Tick advances the router one clock cycle: GA resolution first (grants
// commit, losers reset), then LA issue (new nominations or a new wave).
func (r *Router) Tick(now sim.Ticks) {
	if r.cfg.isWave() {
		r.tickWave(now)
	} else {
		r.tickSPAA(now)
	}
}

// ---- SPAA pipeline ----

func (r *Router) tickSPAA(now sim.Ticks) {
	// GA: resolve nominations due now, grouped by output port.
	due := 0
	for due < len(r.noms) && r.noms[due].resolveAt <= now {
		due++
	}
	if due > 0 {
		r.resolveSPAA(r.noms[:due], now)
		r.noms = r.noms[:copy(r.noms, r.noms[due:])]
	}

	// LA: one nomination per input port per initiation interval.
	if now < r.nextLA {
		return
	}
	r.nextLA = now + sim.Ticks(r.cfg.InitInterval)*r.cfg.RouterPeriod
	gaTick := now + r.gaOffset
	for in := ports.In(0); in < ports.NumIn; in++ {
		pk, mv, ok := r.findNomination(r.inputs[in], now, gaTick)
		if !ok {
			continue
		}
		pk.nominated = true
		r.dirPref[in]++
		r.noms = append(r.noms, nomination{
			pk: pk, row: mv.row, out: mv.out, targetCh: mv.targetCh,
			local: mv.local, resolveAt: gaTick,
		})
		r.Counters.Nominations++
	}
}

// findNomination implements the 21364 input port arbiter: the oldest
// packet satisfying the basic constraints from the least-recently selected
// virtual channel (§3).
func (r *Router) findNomination(ip *inputPort, now, gaTick sim.Ticks) (*pkState, move, bool) {
	for _, ch := range ip.lru {
		q := ip.queues[ch]
		if len(q) == 0 {
			continue
		}
		limit := len(q)
		if limit > r.cfg.Window {
			limit = r.cfg.Window
		}
		var bestPk *pkState
		var bestMove move
		for i := 0; i < limit; i++ {
			pk := q[i]
			r.markOld(pk, now)
			if pk.nominated || pk.eligibleAt > now {
				continue
			}
			if r.draining && !pk.old {
				continue
			}
			if bestPk != nil && !olderThan(pk, bestPk) {
				continue
			}
			r.moves = r.readyMoves(pk, gaTick, r.moves[:0])
			if len(r.moves) == 0 {
				continue
			}
			bestPk, bestMove = pk, r.moves[0]
		}
		if bestPk != nil {
			return bestPk, bestMove, true
		}
	}
	return nil, move{}, false
}

func olderThan(a, b *pkState) bool {
	if a.headerArrive != b.headerArrive {
		return a.headerArrive < b.headerArrive
	}
	return a.pkt.ID < b.pkt.ID
}

// resolveSPAA is the GA stage: for each output port with due nominations,
// the grant policy picks a winner among still-valid requests; the rest are
// reset for re-nomination (SPAA step 3).
func (r *Router) resolveSPAA(due []nomination, now sim.Ticks) {
	for out := ports.Out(0); out < ports.NumOut; out++ {
		r.gaRows = r.gaRows[:0]
		r.gaNet = r.gaNet[:0]
		r.gaIdx = r.gaIdx[:0]
		op := r.outputs[out]
		for i := range due {
			n := &due[i]
			if n.out != out {
				continue
			}
			valid := op.freeForGrant(now, r.postArbTicks) &&
				(n.local || (op.credits != nil && op.credits.Available(n.targetCh)))
			if !valid {
				r.reset(n.pk)
				n.pk = nil
				continue
			}
			r.gaRows = append(r.gaRows, n.row)
			r.gaNet = append(r.gaNet, n.pk.in.IsNetwork())
			r.gaIdx = append(r.gaIdx, i)
		}
		if len(r.gaRows) == 0 {
			continue
		}
		w := r.policy.Select(int(out), r.gaRows, r.gaNet)
		for k, idx := range r.gaIdx {
			n := &due[idx]
			if k == w {
				r.dispatch(n.pk, n.out, n.targetCh, n.local, now)
			} else {
				r.reset(n.pk)
				r.Counters.WastedSpecReads++
			}
			n.pk = nil
		}
	}
	// Any nominations left unprocessed would be a bookkeeping bug.
	for i := range due {
		if due[i].pk != nil {
			panic("router: unresolved nomination")
		}
	}
}

func (r *Router) reset(pk *pkState) {
	pk.nominated = false
	r.Counters.Collisions++
}

// ---- PIM1/WFA wave pipeline ----

func (r *Router) tickWave(now sim.Ticks) {
	if r.waveActive && now >= r.waveResolveAt {
		r.resolveWave(now)
	}
	if now < r.nextWaveAt || r.waveActive {
		return
	}
	// Waves restart on their fixed cadence whether or not the previous one
	// found work (the paper: "a new arbitration can be started every three
	// cycles").
	r.nextWaveAt = now + sim.Ticks(r.cfg.InitInterval)*r.cfg.RouterPeriod
	if r.buildWave(now) {
		r.waveActive = true
		r.waveResolveAt = now + r.waveGaOffset
	}
}

// buildWave loads the connection matrix: for every read-port row and every
// reachable column, the oldest eligible packet that can move there this
// wave. Each packet is assigned to a single read port (the pair
// synchronizes), and all nominated packets are locked until the wave
// resolves — the bookkeeping cost the paper cites for PIM1/WFA (up to 54
// in-flight nominations versus SPAA's 16).
func (r *Router) buildWave(now sim.Ticks) bool {
	r.matrix.Reset()
	gaTick := now + r.waveGaOffset
	any := false
	for in := ports.In(0); in < ports.NumIn; in++ {
		ip := r.inputs[in]
		for ch := vc.Channel(0); ch < vc.NumChannels; ch++ {
			q := ip.queues[ch]
			limit := len(q)
			if limit > r.cfg.Window {
				limit = r.cfg.Window
			}
			for i := 0; i < limit; i++ {
				pk := q[i]
				r.markOld(pk, now)
				if pk.nominated || pk.eligibleAt > now {
					continue
				}
				if r.draining && !pk.old {
					continue
				}
				r.moves = r.readyMoves(pk, gaTick, r.moves[:0])
				if len(r.moves) == 0 {
					continue
				}
				row := r.assignRow(in, r.moves, pk.pkt.ID)
				for _, mv := range r.moves {
					if mv.row != row {
						continue
					}
					cell := r.matrix.At(row, int(mv.out))
					age := int64(pk.headerArrive)
					if cell.Valid && !(age < cell.Age || (age == cell.Age && pk.pkt.ID < cell.Key)) {
						continue
					}
					r.matrix.Set(row, int(mv.out), age, pk.pkt.ID, 0)
					r.waveCells[row][mv.out] = waveCell{pk: pk, targetCh: mv.targetCh, local: mv.local}
					any = true
				}
			}
		}
	}
	if !any {
		return false
	}
	// Lock every packet that made it into a cell.
	for row := 0; row < ports.NumRows; row++ {
		for col := 0; col < int(ports.NumOut); col++ {
			if r.matrix.At(row, col).Valid {
				r.waveCells[row][col].pk.nominated = true
				r.Counters.Nominations++
			}
		}
	}
	return true
}

// assignRow picks the single read-port row a packet nominates through: the
// one whose crossbar connections cover more of the packet's ready moves,
// with ties broken by packet ID.
func (r *Router) assignRow(in ports.In, moves []move, id uint64) int {
	row0, row1 := ports.Row(in, 0), ports.Row(in, 1)
	c0, c1 := 0, 0
	for _, mv := range moves {
		switch mv.row {
		case row0:
			c0++
		case row1:
			c1++
		}
	}
	switch {
	case c0 == 0:
		return row1
	case c1 == 0:
		return row0
	case c0 > c1:
		return row0
	case c1 > c0:
		return row1
	case id%2 == 0:
		return row0
	default:
		return row1
	}
}

func (r *Router) resolveWave(now sim.Ticks) {
	grants := r.arb.Arbitrate(r.matrix)
	for _, g := range grants {
		cell := r.waveCells[g.Row][g.Col]
		op := r.outputs[ports.Out(g.Col)]
		valid := op.freeForGrant(now, r.postArbTicks) &&
			(cell.local || (op.credits != nil && op.credits.Available(cell.targetCh)))
		if !valid || cell.pk == nil || !cell.pk.nominated {
			continue
		}
		r.dispatch(cell.pk, ports.Out(g.Col), cell.targetCh, cell.local, now)
	}
	// Unlock every nominated packet that was not dispatched.
	for row := 0; row < ports.NumRows; row++ {
		for col := 0; col < int(ports.NumOut); col++ {
			if !r.matrix.At(row, col).Valid {
				continue
			}
			if pk := r.waveCells[row][col].pk; pk != nil && pk.nominated {
				r.reset(pk)
			}
			r.waveCells[row][col] = waveCell{}
		}
	}
	r.waveActive = false
}

// ---- common ----

func (r *Router) markOld(pk *pkState, now sim.Ticks) {
	if !pk.old && now-pk.headerArrive >= r.ageTicks {
		pk.old = true
		r.oldCount++
		if !r.draining && r.oldCount > r.cfg.AntiStarvationThreshold {
			r.draining = true
			r.Counters.DrainEntries++
		}
	}
}

// dispatch commits a grant: the packet leaves its input buffer (returning
// the upstream credit), the output port goes busy for the packet's length,
// and the packet is handed to the link or the local sink. A grant at tick
// g puts the header on the pin at g + PostArb cycles.
func (r *Router) dispatch(pk *pkState, out ports.Out, targetCh vc.Channel, local bool, now sim.Ticks) {
	// The granted packet leaves the input buffer; losers of this GA round
	// were already reset. A successful selection is what advances the
	// input port's least-recently-selected virtual channel order.
	pk.nominated = false
	r.inputs[pk.in].touchVC(pk.ch)
	r.inputs[pk.in].remove(pk)
	if pk.old {
		pk.old = false
		r.oldCount--
		if r.oldCount == 0 {
			r.draining = false
		}
	}
	if pk.upstream != nil {
		pk.upstream.Release(pk.upstreamCh)
	}

	op := r.outputs[out]
	headerDepart := now + r.postArbTicks
	flits := sim.Ticks(pk.pkt.Flits)
	if local {
		op.busyUntil = headerDepart + flits*r.cfg.RouterPeriod
		deliveredAt := headerDepart + (flits-1)*r.cfg.RouterPeriod
		if pk.tailArrive > deliveredAt {
			deliveredAt = pk.tailArrive
		}
		r.Counters.DeliveredLocal++
		if op.deliver == nil {
			panic(fmt.Sprintf("router %d: local port %v not connected", r.node, out))
		}
		op.deliver(pk.pkt, deliveredAt)
	} else {
		op.credits.Reserve(targetCh)
		op.busyUntil = headerDepart + flits*r.cfg.LinkPeriod
		pk.pkt.Hops++
		if op.send == nil {
			panic(fmt.Sprintf("router %d: network port %v not connected", r.node, out))
		}
		op.send(pk.pkt, targetCh, headerDepart, op.credits)
	}
	r.Counters.Grants++
}

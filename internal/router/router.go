package router

import (
	"fmt"
	"math/bits"

	"alpha21364/internal/core"
	"alpha21364/internal/obs"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
	"alpha21364/internal/vc"
)

// Counters exposes router-level event counts for statistics and tests.
type Counters struct {
	Injected    int64 // packets accepted at local input ports
	Arrived     int64 // packets accepted from network links
	Nominations int64 // LA-stage nominations issued
	Grants      int64 // GA-stage grants (dispatches)
	Collisions  int64 // nominations reset without a grant
	// WastedSpecReads counts SPAA's speculative buffer reads that were
	// discarded because the output arbiter picked another packet (§3.3).
	WastedSpecReads int64
	DrainEntries    int64 // times the anti-starvation drain engaged
	DeliveredLocal  int64 // packets consumed by this node's local ports
}

// nomination is one SPAA in-flight nomination traveling LA -> RE -> GA.
// pk is a slab handle.
type nomination struct {
	pk        int32
	row       int
	out       ports.Out
	targetCh  vc.Channel
	local     bool
	resolveAt sim.Ticks
}

// waveCell carries the packet and move behind one wave-matrix cell; pk is
// a slab handle, -1 when the cell is empty.
type waveCell struct {
	pk       int32
	targetCh vc.Channel
	local    bool
}

// Router is one cycle-accurate 21364 router. Drive it by attaching it to a
// sim.Engine clock domain with the router's clock period.
type Router struct {
	cfg   Config
	node  topology.Node
	torus topology.Torus
	rng   *sim.RNG

	// Packet state lives in a struct-of-arrays slab; the per-(input port,
	// channel) queues are fixed-capacity index rings over it, and the
	// remaining per-input-port state is flattened into router-level
	// arrays so arbitration scans walk contiguous memory.
	slab   pkSlab
	queues [ports.NumIn][vc.NumChannels]vc.Ring
	// lru[in] is the least-recently-selected ordering over virtual
	// channels: the front is the channel selected longest ago. The
	// 21364's input arbiter "selects the oldest packet ... from the
	// least-recently selected virtual channel" (§3).
	lru [ports.NumIn][vc.NumChannels]vc.Channel
	// feeders hold the injection credits for local ports (the processor's
	// view of the buffer's free space); nil for network inputs, whose
	// credits live at the upstream router's output port.
	feeders [ports.NumIn]*vc.Credits

	outputs [ports.NumOut]*outputPort

	// SPAA pipeline state.
	policy  core.SelectPolicy
	noms    []nomination // FIFO ordered by resolveAt
	dirPref [ports.NumIn]uint8
	nextLA  sim.Ticks

	// Wave (PIM1/WFA) pipeline state.
	arb           core.Arbiter
	matrix        *core.Matrix
	waveCells     [ports.NumRows][ports.NumOut]waveCell
	waveActive    bool
	waveResolveAt sim.Ticks
	nextWaveAt    sim.Ticks

	// Anti-starvation drain (§3.4).
	oldCount int
	draining bool

	// routes[dst] caches the static routing decision toward every node:
	// productive directions, the dimension-order escape hop, and its
	// dateline sub-channel. readyMoves consults it instead of redoing the
	// torus offset arithmetic per scan.
	routes []routeEntry

	// Derived tick quantities.
	postArbTicks sim.Ticks
	gaOffset     sim.Ticks // LA -> GA latency in ticks (SPAA nominations)
	// waveGaOffset is the build -> grant latency for PIM1/WFA waves: the
	// grant decision lands at the initiation interval (matrix operations),
	// and any remaining arbitration cycles are pipelined wire delay to the
	// output ports (paper §3.1-3.2). Waves therefore never overlap.
	waveGaOffset sim.Ticks
	ageTicks     sim.Ticks

	Counters Counters

	// oracle, when non-nil, observes every arbitration decision for
	// online invariant checking; oracleGrants is its reused record buffer.
	oracle       Oracle
	oracleGrants []SPAAGrant

	// metrics and flight, when non-nil, receive telemetry (see metrics.go).
	metrics *obs.RouterMetrics
	flight  *obs.FlightRing

	// scratch
	gaRows []int
	gaNet  []bool
	gaIdx  []int
	moves  []move
}

// New builds a router for the given node of the torus.
func New(cfg Config, node topology.Node, torus topology.Torus) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Router{
		cfg:          cfg,
		node:         node,
		torus:        torus,
		rng:          sim.NewRNG(cfg.Seed ^ (uint64(node)+1)*0x9e3779b97f4a7c15),
		postArbTicks: sim.Ticks(cfg.PostArb) * cfg.RouterPeriod,
		gaOffset:     sim.Ticks(cfg.ArbCycles-1) * cfg.RouterPeriod,
		ageTicks:     sim.Ticks(cfg.AntiStarvationAge) * cfg.RouterPeriod,
	}
	waveGa := cfg.ArbCycles - 1
	if cfg.InitInterval < waveGa {
		waveGa = cfg.InitInterval
	}
	r.waveGaOffset = sim.Ticks(waveGa) * cfg.RouterPeriod
	for in := ports.In(0); in < ports.NumIn; in++ {
		initQueues(&r.queues[in], cfg.Buffers)
		for ch := vc.Channel(0); ch < vc.NumChannels; ch++ {
			r.lru[in][ch] = ch
		}
		if !in.IsNetwork() {
			r.feeders[in] = vc.NewCredits(cfg.Buffers)
		}
	}
	for row := range r.waveCells {
		for col := range r.waveCells[row] {
			r.waveCells[row][col].pk = -1
		}
	}
	for out := ports.Out(0); out < ports.NumOut; out++ {
		r.outputs[out] = &outputPort{id: out}
	}
	r.routes = make([]routeEntry, torus.Nodes())
	for dst := 0; dst < torus.Nodes(); dst++ {
		e := &r.routes[dst]
		e.dirs, e.nDirs = torus.ProductiveDirsFixed(node, topology.Node(dst))
		if d, ok := torus.DORDir(node, topology.Node(dst)); ok {
			e.dorOK, e.dor = true, d
			e.dorSub = vc.VC0
			if torus.WrapsAhead(node, topology.Node(dst), d) {
				e.dorSub = vc.VC1
			}
		}
	}
	switch cfg.Kind {
	case core.KindSPAABase, core.KindSPAARotary:
		if cfg.GrantPolicyFactory != nil {
			r.policy = cfg.GrantPolicyFactory(ports.NumRows, int(ports.NumOut))
		} else {
			r.policy = core.NewLRSPolicy(ports.NumRows, int(ports.NumOut),
				cfg.Kind == core.KindSPAARotary)
		}
	default:
		r.arb = core.New(cfg.Kind, r.rng.Split())
		r.matrix = core.NewRouterMatrix()
	}
	return r, nil
}

// Node returns the router's torus position.
func (r *Router) Node() topology.Node { return r.node }

// Config returns the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// ConnectNetwork wires a torus output port: send is invoked on dispatch,
// and downstream describes the neighbor input buffer the port holds
// credits for.
func (r *Router) ConnectNetwork(out ports.Out, send SendFunc) {
	if !out.IsNetwork() {
		panic(fmt.Sprintf("router: %v is not a network port", out))
	}
	r.outputs[out].send = send
	r.outputs[out].credits = vc.NewCredits(r.cfg.Buffers)
}

// ConnectLocal wires a processor-facing output port to its sink.
func (r *Router) ConnectLocal(out ports.Out, deliver DeliverFunc) {
	if out.IsNetwork() {
		panic(fmt.Sprintf("router: %v is not a local port", out))
	}
	r.outputs[out].deliver = deliver
}

// injectionChannel returns the virtual channel a newly injected packet
// enters: the adaptive channel of its class, except I/O packets, which
// live in the deadlock-free channels only.
func (r *Router) injectionChannel(p *packet.Packet) vc.Channel {
	if !p.Class.IsIO() {
		return vc.Of(p.Class, vc.Adaptive)
	}
	sub := vc.VC0
	if route := &r.routes[p.Dst]; route.dorOK {
		sub = route.dorSub
	}
	return vc.Of(p.Class, sub)
}

// addPacket checks a packet into the slab and its queue.
func (r *Router) addPacket(p *packet.Packet, in ports.In, ch vc.Channel,
	headerArrive, tailArrive, eligibleAt sim.Ticks, upstream *vc.Credits) {
	idx := r.slab.alloc()
	s := &r.slab
	s.pkt[idx] = p
	s.ch[idx] = ch
	s.in[idx] = in
	s.headerArrive[idx] = headerArrive
	s.tailArrive[idx] = tailArrive
	s.eligibleAt[idx] = eligibleAt
	s.flags[idx] = 0
	s.upstream[idx] = upstream
	s.upstreamCh[idx] = ch
	r.queues[in][ch].Push(idx)
	if m := r.metrics; m != nil {
		m.QueueDelta(in, ch, +1, headerArrive)
	}
}

// Inject offers a packet to a local input port at time now. It returns
// false when the port's buffer has no space in the packet's channel; the
// caller (the processor model) must retry later — this backpressure is the
// throttling path the Rotary Rule exploits.
func (r *Router) Inject(p *packet.Packet, in ports.In, now sim.Ticks) bool {
	if in.IsNetwork() {
		panic(fmt.Sprintf("router: cannot inject on network port %v", in))
	}
	feeder := r.feeders[in]
	ch := r.injectionChannel(p)
	if !feeder.Available(ch) {
		return false
	}
	feeder.Reserve(ch)
	r.addPacket(p, in, ch,
		now,
		now+sim.Ticks(p.Flits-1)*r.cfg.RouterPeriod,
		now+sim.Ticks(r.cfg.PreArbLocal)*r.cfg.RouterPeriod,
		feeder)
	r.Counters.Injected++
	if f := r.flight; f != nil {
		f.Record(now, obs.FlightInject, p.ID, in, ch, ports.NumOut)
	}
	return true
}

// InjectionSpace returns the free packet-buffer count a new packet of
// class cl would see at local input port in (the processor's backpressure
// signal).
func (r *Router) InjectionSpace(in ports.In, cl packet.Class, dst topology.Node) int {
	if in.IsNetwork() {
		panic(fmt.Sprintf("router: %v is not a local port", in))
	}
	p := packet.Packet{Class: cl, Dst: dst}
	return r.feeders[in].Free(r.injectionChannel(&p))
}

// OutputCredits exposes a network output port's downstream credit pool;
// used by the network wiring and by tests that exercise backpressure.
func (r *Router) OutputCredits(out ports.Out) *vc.Credits {
	if !out.IsNetwork() {
		panic(fmt.Sprintf("router: %v has no credits", out))
	}
	return r.outputs[out].credits
}

// Arrive accepts a packet from an inter-router link. The upstream output
// port reserved a credit for targetCh before sending, so buffer space is
// guaranteed; creditHome is that port's credit pool, released when the
// packet leaves this router.
func (r *Router) Arrive(p *packet.Packet, in ports.In, targetCh vc.Channel,
	headerArrive sim.Ticks, creditHome *vc.Credits) {
	if r.queues[in][targetCh].Len() >= r.cfg.Buffers.Capacity(targetCh) {
		panic(fmt.Sprintf("router %d: buffer overflow on %v/%v — credit accounting broken",
			r.node, in, targetCh))
	}
	r.addPacket(p, in, targetCh,
		headerArrive,
		headerArrive+sim.Ticks(p.Flits-1)*r.cfg.LinkPeriod,
		headerArrive+sim.Ticks(r.cfg.PreArbNetwork)*r.cfg.RouterPeriod,
		creditHome)
	r.Counters.Arrived++
	if f := r.flight; f != nil {
		f.Record(headerArrive, obs.FlightArrive, p.ID, in, targetCh, ports.NumOut)
	}
}

// Buffered returns the number of packets buffered at the router.
func (r *Router) Buffered() int {
	n := 0
	for in := range r.queues {
		for ch := range r.queues[in] {
			n += r.queues[in][ch].Len()
		}
	}
	return n
}

// Draining reports whether the anti-starvation drain is active.
func (r *Router) Draining() bool { return r.draining }

// Tick advances the router one clock cycle: GA resolution first (grants
// commit, losers reset), then LA issue (new nominations or a new wave).
func (r *Router) Tick(now sim.Ticks) {
	if r.cfg.isWave() {
		r.tickWave(now)
	} else {
		r.tickSPAA(now)
	}
}

// ---- SPAA pipeline ----

func (r *Router) tickSPAA(now sim.Ticks) {
	// GA: resolve nominations due now, grouped by output port.
	due := 0
	for due < len(r.noms) && r.noms[due].resolveAt <= now {
		due++
	}
	if due > 0 {
		r.resolveSPAA(r.noms[:due], now)
		r.noms = r.noms[:copy(r.noms, r.noms[due:])]
	}

	// LA: one nomination per input port per initiation interval.
	if now < r.nextLA {
		return
	}
	r.nextLA = now + sim.Ticks(r.cfg.InitInterval)*r.cfg.RouterPeriod
	gaTick := now + r.gaOffset
	for in := ports.In(0); in < ports.NumIn; in++ {
		pk, mv, ok := r.findNomination(in, now, gaTick)
		if !ok {
			continue
		}
		r.slab.flags[pk] |= pkNominated
		r.dirPref[in]++
		r.noms = append(r.noms, nomination{
			pk: pk, row: mv.row, out: mv.out, targetCh: mv.targetCh,
			local: mv.local, resolveAt: gaTick,
		})
		r.Counters.Nominations++
		if f := r.flight; f != nil {
			f.Record(now, obs.FlightNominate, r.slab.pkt[pk].ID, in, r.slab.ch[pk], mv.out)
		}
		if r.oracle != nil {
			r.oracle.SPAANominate(r, now, SPAAGrant{
				ID: r.slab.pkt[pk].ID, Row: mv.row, In: in, Ch: r.slab.ch[pk],
				Out: mv.out, TargetCh: mv.targetCh, Local: mv.local,
			}, gaTick)
		}
	}
}

// findNomination implements the 21364 input port arbiter: the oldest
// packet satisfying the basic constraints from the least-recently selected
// virtual channel (§3).
func (r *Router) findNomination(in ports.In, now, gaTick sim.Ticks) (int32, move, bool) {
	s := &r.slab
	for _, ch := range r.lru[in] {
		q := &r.queues[in][ch]
		if q.Len() == 0 {
			continue
		}
		limit := q.Len()
		if limit > r.cfg.Window {
			limit = r.cfg.Window
		}
		best := int32(-1)
		var bestMove move
		for i := 0; i < limit; i++ {
			pk := q.At(i)
			r.markOld(pk, now)
			if s.flags[pk]&pkNominated != 0 || s.eligibleAt[pk] > now {
				continue
			}
			if r.draining && s.flags[pk]&pkOld == 0 {
				continue
			}
			if best >= 0 && !r.olderThan(pk, best) {
				continue
			}
			r.moves = r.readyMoves(pk, gaTick, r.moves[:0])
			if len(r.moves) == 0 {
				continue
			}
			best, bestMove = pk, r.moves[0]
		}
		if best >= 0 {
			return best, bestMove, true
		}
	}
	return -1, move{}, false
}

// olderThan orders two buffered packets by arrival, then packet ID.
func (r *Router) olderThan(a, b int32) bool {
	s := &r.slab
	if s.headerArrive[a] != s.headerArrive[b] {
		return s.headerArrive[a] < s.headerArrive[b]
	}
	return s.pkt[a].ID < s.pkt[b].ID
}

// resolveSPAA is the GA stage: for each output port with due nominations,
// the grant policy picks a winner among still-valid requests; the rest are
// reset for re-nomination (SPAA step 3).
func (r *Router) resolveSPAA(due []nomination, now sim.Ticks) {
	if r.oracle != nil {
		r.oracleGrants = r.oracleGrants[:0]
	}
	for out := ports.Out(0); out < ports.NumOut; out++ {
		r.gaRows = r.gaRows[:0]
		r.gaNet = r.gaNet[:0]
		r.gaIdx = r.gaIdx[:0]
		op := r.outputs[out]
		for i := range due {
			n := &due[i]
			if n.out != out {
				continue
			}
			valid := op.freeForGrant(now, r.postArbTicks) &&
				(n.local || (op.credits != nil && op.credits.Available(n.targetCh)))
			if !valid {
				if m := r.metrics; m != nil {
					if !op.freeForGrant(now, r.postArbTicks) {
						m.Stalls++
					} else {
						m.CreditWaits++
					}
					m.Arb.NomFailures++
				}
				r.reset(n.pk, now)
				n.pk = -1
				continue
			}
			r.gaRows = append(r.gaRows, n.row)
			r.gaNet = append(r.gaNet, r.slab.in[n.pk].IsNetwork())
			r.gaIdx = append(r.gaIdx, i)
		}
		if len(r.gaRows) == 0 {
			continue
		}
		w := r.policy.Select(int(out), r.gaRows, r.gaNet)
		for k, idx := range r.gaIdx {
			n := &due[idx]
			if k == w {
				if r.oracle != nil {
					r.oracleGrants = append(r.oracleGrants, SPAAGrant{
						ID: r.slab.pkt[n.pk].ID, Row: n.row, In: r.slab.in[n.pk],
						Ch: r.slab.ch[n.pk], Out: n.out, TargetCh: n.targetCh, Local: n.local,
					})
				}
				r.dispatch(n.pk, n.out, n.targetCh, n.local, now)
			} else {
				r.reset(n.pk, now)
				r.Counters.WastedSpecReads++
			}
			n.pk = -1
		}
	}
	// Any nominations left unprocessed would be a bookkeeping bug.
	for i := range due {
		if due[i].pk >= 0 {
			panic("router: unresolved nomination")
		}
	}
	if r.oracle != nil {
		r.oracle.SPAAResolve(r, now, r.oracleGrants)
	}
}

func (r *Router) reset(pk int32, now sim.Ticks) {
	r.slab.flags[pk] &^= pkNominated
	r.Counters.Collisions++
	if f := r.flight; f != nil {
		f.Record(now, obs.FlightReset, r.slab.pkt[pk].ID, r.slab.in[pk], r.slab.ch[pk], ports.NumOut)
	}
}

// ---- PIM1/WFA wave pipeline ----

func (r *Router) tickWave(now sim.Ticks) {
	if r.waveActive && now >= r.waveResolveAt {
		r.resolveWave(now)
	}
	if now < r.nextWaveAt || r.waveActive {
		return
	}
	// Waves restart on their fixed cadence whether or not the previous one
	// found work (the paper: "a new arbitration can be started every three
	// cycles").
	r.nextWaveAt = now + sim.Ticks(r.cfg.InitInterval)*r.cfg.RouterPeriod
	if r.buildWave(now) {
		r.waveActive = true
		r.waveResolveAt = now + r.waveGaOffset
	}
}

// buildWave loads the connection matrix: for every read-port row and every
// reachable column, the oldest eligible packet that can move there this
// wave. Each packet is assigned to a single read port (the pair
// synchronizes), and all nominated packets are locked until the wave
// resolves — the bookkeeping cost the paper cites for PIM1/WFA (up to 54
// in-flight nominations versus SPAA's 16).
func (r *Router) buildWave(now sim.Ticks) bool {
	r.matrix.Reset()
	gaTick := now + r.waveGaOffset
	any := false
	s := &r.slab
	for in := ports.In(0); in < ports.NumIn; in++ {
		for ch := vc.Channel(0); ch < vc.NumChannels; ch++ {
			q := &r.queues[in][ch]
			limit := q.Len()
			if limit > r.cfg.Window {
				limit = r.cfg.Window
			}
			for i := 0; i < limit; i++ {
				pk := q.At(i)
				r.markOld(pk, now)
				if s.flags[pk]&pkNominated != 0 || s.eligibleAt[pk] > now {
					continue
				}
				if r.draining && s.flags[pk]&pkOld == 0 {
					continue
				}
				r.moves = r.readyMoves(pk, gaTick, r.moves[:0])
				if len(r.moves) == 0 {
					continue
				}
				row := r.assignRow(in, r.moves, s.pkt[pk].ID)
				for _, mv := range r.moves {
					if mv.row != row {
						continue
					}
					cell := r.matrix.At(row, int(mv.out))
					age := int64(s.headerArrive[pk])
					if cell.Valid && !(age < cell.Age || (age == cell.Age && s.pkt[pk].ID < cell.Key)) {
						continue
					}
					r.matrix.Set(row, int(mv.out), age, s.pkt[pk].ID, 0)
					r.waveCells[row][mv.out] = waveCell{pk: pk, targetCh: mv.targetCh, local: mv.local}
					any = true
				}
			}
		}
	}
	if !any {
		return false
	}
	// Lock every packet that made it into a cell, walking the matrix's
	// row validity words instead of rescanning every cell.
	for row := 0; row < ports.NumRows; row++ {
		for w := r.matrix.RowMask(row); w != 0; w &= w - 1 {
			col := bits.TrailingZeros64(w)
			pk := r.waveCells[row][col].pk
			s.flags[pk] |= pkNominated
			r.Counters.Nominations++
			if f := r.flight; f != nil {
				f.Record(now, obs.FlightNominate, s.pkt[pk].ID, s.in[pk], s.ch[pk], ports.Out(col))
			}
		}
	}
	return true
}

// assignRow picks the single read-port row a packet nominates through: the
// one whose crossbar connections cover more of the packet's ready moves,
// with ties broken by packet ID.
func (r *Router) assignRow(in ports.In, moves []move, id uint64) int {
	row0, row1 := ports.Row(in, 0), ports.Row(in, 1)
	c0, c1 := 0, 0
	for _, mv := range moves {
		switch mv.row {
		case row0:
			c0++
		case row1:
			c1++
		}
	}
	switch {
	case c0 == 0:
		return row1
	case c1 == 0:
		return row0
	case c0 > c1:
		return row0
	case c1 > c0:
		return row1
	case id%2 == 0:
		return row0
	default:
		return row1
	}
}

func (r *Router) resolveWave(now sim.Ticks) {
	grants := r.arb.Arbitrate(r.matrix)
	if r.oracle != nil {
		r.oracle.WaveResolve(r, now, r.matrix, grants)
	}
	for _, g := range grants {
		cell := r.waveCells[g.Row][g.Col]
		op := r.outputs[ports.Out(g.Col)]
		valid := op.freeForGrant(now, r.postArbTicks) &&
			(cell.local || (op.credits != nil && op.credits.Available(cell.targetCh)))
		if !valid || cell.pk < 0 || r.slab.flags[cell.pk]&pkNominated == 0 {
			if m := r.metrics; m != nil && !valid && cell.pk >= 0 {
				if !op.freeForGrant(now, r.postArbTicks) {
					m.Stalls++
				} else {
					m.CreditWaits++
				}
				m.Arb.NomFailures++
			}
			continue
		}
		r.dispatch(cell.pk, ports.Out(g.Col), cell.targetCh, cell.local, now)
	}
	// Unlock every nominated packet that was not dispatched; the row
	// validity words name exactly the cells the wave populated.
	for row := 0; row < ports.NumRows; row++ {
		for w := r.matrix.RowMask(row); w != 0; w &= w - 1 {
			col := bits.TrailingZeros64(w)
			if pk := r.waveCells[row][col].pk; pk >= 0 && r.slab.flags[pk]&pkNominated != 0 {
				r.reset(pk, now)
			}
			r.waveCells[row][col] = waveCell{pk: -1}
		}
	}
	r.waveActive = false
}

// ---- common ----

func (r *Router) markOld(pk int32, now sim.Ticks) {
	s := &r.slab
	if s.flags[pk]&pkOld == 0 && now-s.headerArrive[pk] >= r.ageTicks {
		s.flags[pk] |= pkOld
		r.oldCount++
		if !r.draining && r.oldCount > r.cfg.AntiStarvationThreshold {
			r.draining = true
			r.Counters.DrainEntries++
		}
	}
}

// touchVC moves ch to the most-recently-selected end of in's LRU order.
func (r *Router) touchVC(in ports.In, ch vc.Channel) {
	lru := &r.lru[in]
	idx := -1
	for i, c := range lru {
		if c == ch {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	copy(lru[idx:], lru[idx+1:])
	lru[len(lru)-1] = ch
}

// dispatch commits a grant: the packet leaves its input buffer (returning
// the upstream credit), the output port goes busy for the packet's length,
// and the packet is handed to the link or the local sink. A grant at tick
// g puts the header on the pin at g + PostArb cycles.
func (r *Router) dispatch(pk int32, out ports.Out, targetCh vc.Channel, local bool, now sim.Ticks) {
	// The granted packet leaves the input buffer; losers of this GA round
	// were already reset. A successful selection is what advances the
	// input port's least-recently-selected virtual channel order.
	s := &r.slab
	s.flags[pk] &^= pkNominated
	in, ch := s.in[pk], s.ch[pk]
	r.touchVC(in, ch)
	if !r.queues[in][ch].Remove(pk) {
		panic("router: removing packet not in queue")
	}
	if m := r.metrics; m != nil {
		m.QueueDelta(in, ch, -1, now)
	}
	if s.flags[pk]&pkOld != 0 {
		s.flags[pk] &^= pkOld
		r.oldCount--
		if r.oldCount == 0 {
			r.draining = false
		}
	}
	if s.upstream[pk] != nil {
		s.upstream[pk].Release(s.upstreamCh[pk])
	}

	p := s.pkt[pk]
	tailArrive := s.tailArrive[pk]
	r.slab.release(pk)
	if f := r.flight; f != nil {
		f.Record(now, obs.FlightGrant, p.ID, in, ch, out)
	}

	op := r.outputs[out]
	headerDepart := now + r.postArbTicks
	flits := sim.Ticks(p.Flits)
	if local {
		op.busyUntil = headerDepart + flits*r.cfg.RouterPeriod
		deliveredAt := headerDepart + (flits-1)*r.cfg.RouterPeriod
		if tailArrive > deliveredAt {
			deliveredAt = tailArrive
		}
		r.Counters.DeliveredLocal++
		if op.deliver == nil {
			panic(fmt.Sprintf("router %d: local port %v not connected", r.node, out))
		}
		op.deliver(p, deliveredAt)
	} else {
		op.credits.Reserve(targetCh)
		op.busyUntil = headerDepart + flits*r.cfg.LinkPeriod
		p.Hops++
		if op.send == nil {
			panic(fmt.Sprintf("router %d: network port %v not connected", r.node, out))
		}
		op.send(p, targetCh, headerDepart, op.credits)
	}
	r.Counters.Grants++
}

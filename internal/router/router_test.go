package router

import (
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
	"alpha21364/internal/vc"
)

// departure records one packet leaving on a network port.
type departure struct {
	p            *packet.Packet
	out          ports.Out
	targetCh     vc.Channel
	headerDepart sim.Ticks
}

// delivery records one packet consumed at a local port.
type delivery struct {
	p  *packet.Packet
	at sim.Ticks
}

// harness wires a single router to recording stubs.
type harness struct {
	eng        *sim.Engine
	r          *Router
	departures []departure
	deliveries []delivery
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	torus := topology.NewTorus(4, 4)
	r, err := New(cfg, 5, torus) // node 5 = (1,1)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{eng: sim.NewEngine(), r: r}
	for out := ports.Out(0); out < ports.NumOut; out++ {
		out := out
		if out.IsNetwork() {
			r.ConnectNetwork(out, func(p *packet.Packet, ch vc.Channel, depart sim.Ticks, home *vc.Credits) {
				h.departures = append(h.departures, departure{p, out, ch, depart})
				// Return the credit as if the neighbor forwarded instantly,
				// unless a test wants to hold it.
				home.Release(ch)
			})
		} else {
			r.ConnectLocal(out, func(p *packet.Packet, at sim.Ticks) {
				h.deliveries = append(h.deliveries, delivery{p, at})
			})
		}
	}
	h.eng.AddClock(cfg.RouterPeriod, 0, r)
	return h
}

func TestConfigValidation(t *testing.T) {
	for _, k := range []core.Kind{core.KindMCM, core.KindPIM, core.KindOPF} {
		cfg := DefaultConfig(core.KindSPAABase)
		cfg.Kind = k
		if _, err := New(cfg, 0, topology.NewTorus(4, 4)); err == nil {
			t.Errorf("%v accepted by timing router; it is standalone-only", k)
		}
	}
	cfg := DefaultConfig(core.KindSPAABase)
	cfg.Window = 0
	if err := cfg.Validate(); err == nil {
		t.Error("Window=0 accepted")
	}
}

func TestPinToPinCycles(t *testing.T) {
	if got := DefaultConfig(core.KindSPAABase).PinToPinCycles(); got != 13 {
		t.Errorf("SPAA pin-to-pin = %d cycles, want 13 (paper §2.2)", got)
	}
	if got := DefaultConfig(core.KindWFABase).PinToPinCycles(); got != 14 {
		t.Errorf("WFA pin-to-pin = %d cycles, want 14 (one extra arbitration cycle)", got)
	}
	if got := DefaultConfig(core.KindPIM1).PinToPinCycles(); got != 14 {
		t.Errorf("PIM1 pin-to-pin = %d cycles, want 14", got)
	}
}

func TestScalePipeline(t *testing.T) {
	cfg := DefaultConfig(core.KindSPAARotary).ScalePipeline()
	if cfg.RouterPeriod != sim.FastRouterPeriod {
		t.Errorf("scaled period = %d, want %d", cfg.RouterPeriod, sim.FastRouterPeriod)
	}
	if cfg.ArbCycles != 6 {
		t.Errorf("scaled SPAA arbitration = %d cycles, want 6 (paper §5.3)", cfg.ArbCycles)
	}
	if cfg.InitInterval != 1 {
		t.Errorf("scaled SPAA II = %d, want 1 (still pipelined)", cfg.InitInterval)
	}
	w := DefaultConfig(core.KindWFARotary).ScalePipeline()
	if w.ArbCycles != 8 || w.InitInterval != 6 {
		t.Errorf("scaled WFA = %d cycles / II %d, want 8 / 6", w.ArbCycles, w.InitInterval)
	}
	// Wall-clock pin-to-pin is preserved by the frequency doubling up to
	// one (fast) cycle of stage-boundary rounding.
	base := DefaultConfig(core.KindSPAARotary)
	baseT := base.RouterPeriod * sim.Ticks(base.PinToPinCycles())
	scaledT := cfg.RouterPeriod * sim.Ticks(cfg.PinToPinCycles())
	if diff := scaledT - baseT; diff < -cfg.RouterPeriod || diff > cfg.RouterPeriod {
		t.Errorf("2x pipeline pin-to-pin %d ticks vs base %d ticks", scaledT, baseT)
	}
}

// TestSPAAPinToPinLatency checks the zero-contention forwarding latency:
// a packet arriving on a network input departs a network output 13 router
// cycles later (10.8 ns at 1.2 GHz).
func TestSPAAPinToPinLatency(t *testing.T) {
	cfg := DefaultConfig(core.KindSPAABase)
	h := newHarness(t, cfg)
	// Node 5 = (1,1); destination (3,1) = node 7 is two hops east: the
	// packet arrives from the west side and continues east.
	p := packet.New(1, packet.Request, 4, 7, 0)
	h.eng.Schedule(0, func() {
		h.r.Arrive(p, ports.InWest, vc.Of(packet.Request, vc.Adaptive), 0, nil)
	})
	h.eng.Run(400)
	if len(h.departures) != 1 {
		t.Fatalf("departures = %d, want 1", len(h.departures))
	}
	d := h.departures[0]
	if d.out != ports.OutEast {
		t.Errorf("departed via %v, want east", d.out)
	}
	want := sim.Ticks(13) * cfg.RouterPeriod
	if d.headerDepart != want {
		t.Errorf("header depart = %v (%d ticks), want 13 cycles (%d ticks)",
			d.headerDepart, d.headerDepart, want)
	}
}

func TestWavePinToPinLatency(t *testing.T) {
	for _, kind := range []core.Kind{core.KindWFABase, core.KindPIM1} {
		cfg := DefaultConfig(kind)
		h := newHarness(t, cfg)
		p := packet.New(1, packet.Request, 4, 7, 0)
		h.eng.Schedule(0, func() {
			h.r.Arrive(p, ports.InWest, vc.Of(packet.Request, vc.Adaptive), 0, nil)
		})
		h.eng.Run(400)
		if len(h.departures) != 1 {
			t.Fatalf("%v: departures = %d, want 1", kind, len(h.departures))
		}
		// Eligible at cycle 6, wave starts at cycle 6 (multiple of II=3),
		// GA 3 cycles later, header on pin PostArb after: 14 cycles.
		want := sim.Ticks(14) * cfg.RouterPeriod
		if got := h.departures[0].headerDepart; got != want {
			t.Errorf("%v: header depart = %d ticks, want %d (14 cycles)", kind, got, want)
		}
	}
}

func TestLocalDelivery(t *testing.T) {
	cfg := DefaultConfig(core.KindSPAABase)
	h := newHarness(t, cfg)
	p := packet.New(2, packet.BlockResponse, 4, 5, 0) // destined for this node
	h.eng.Schedule(0, func() {
		h.r.Arrive(p, ports.InWest, vc.Of(packet.BlockResponse, vc.Adaptive), 0, nil)
	})
	h.eng.Run(1000)
	if len(h.deliveries) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(h.deliveries))
	}
	if len(h.departures) != 0 {
		t.Fatalf("locally-addressed packet departed on a network port")
	}
	// Last flit no earlier than header path + 18 more flits at router clock.
	min := sim.Ticks(13+18) * cfg.RouterPeriod
	if h.deliveries[0].at < min {
		t.Errorf("19-flit delivery at %d ticks, want >= %d", h.deliveries[0].at, min)
	}
}

func TestLocalPortInterleaving(t *testing.T) {
	// Packets interleave across the two MC ports by ID; I/O packets use the
	// I/O port.
	if localOut(packet.New(2, packet.Request, 0, 0, 0)) != ports.OutMC0 {
		t.Error("even ID should use MC0")
	}
	if localOut(packet.New(3, packet.Request, 0, 0, 0)) != ports.OutMC1 {
		t.Error("odd ID should use MC1")
	}
	if localOut(packet.New(2, packet.ReadIO, 0, 0, 0)) != ports.OutIO {
		t.Error("I/O class should use the I/O port")
	}
}

func TestInjectionBackpressure(t *testing.T) {
	cfg := DefaultConfig(core.KindSPAABase)
	cfg.Buffers = uniformBuffers(2)
	h := newHarness(t, cfg)
	ok1 := h.r.Inject(packet.New(1, packet.Request, 5, 6, 0), ports.InCache, 0)
	ok2 := h.r.Inject(packet.New(2, packet.Request, 5, 6, 0), ports.InCache, 0)
	ok3 := h.r.Inject(packet.New(3, packet.Request, 5, 6, 0), ports.InCache, 0)
	if !ok1 || !ok2 {
		t.Fatal("first two injections should fit the 2-packet adaptive channel")
	}
	if ok3 {
		t.Fatal("third injection should be rejected (buffer full)")
	}
	if got := h.r.InjectionSpace(ports.InCache, packet.Request, 6); got != 0 {
		t.Errorf("InjectionSpace = %d, want 0", got)
	}
	// After the router forwards one packet, space opens up again.
	h.eng.Run(300)
	if h.r.InjectionSpace(ports.InCache, packet.Request, 6) == 0 {
		t.Error("no space after forwarding")
	}
}

// TestSPAACollisionAndRetry drives two input ports at one output: one
// packet wins, the other is reset (a wasted speculative read) and retried.
func TestSPAACollisionAndRetry(t *testing.T) {
	cfg := DefaultConfig(core.KindSPAABase)
	h := newHarness(t, cfg)
	// Both packets must go east (destination (3,1) = node 7, same row).
	reqCh := vc.Of(packet.Request, vc.Adaptive)
	h.eng.Schedule(0, func() {
		h.r.Arrive(packet.New(1, packet.Request, 4, 7, 0), ports.InWest, reqCh, 0, nil)
		h.r.Arrive(packet.New(2, packet.Request, 1, 7, 0), ports.InNorth, reqCh, 0, nil)
	})
	h.eng.Run(2000)
	if len(h.departures) != 2 {
		t.Fatalf("departures = %d, want 2", len(h.departures))
	}
	if h.r.Counters.WastedSpecReads == 0 {
		t.Error("expected an arbitration collision (wasted speculative read)")
	}
	// The loser departs only after the winner's 3 flits clear the port.
	gap := h.departures[1].headerDepart - h.departures[0].headerDepart
	if gap < 3*cfg.LinkPeriod {
		t.Errorf("second departure only %d ticks after first; link still busy", gap)
	}
}

// TestSPAAPipelining verifies SPAA sustains one grant per output port as
// fast as the port drains, while WFA's 3-cycle initiation interval limits
// it — the paper's core timing argument.
func TestSPAAPipelining(t *testing.T) {
	count := func(kind core.Kind) int {
		cfg := DefaultConfig(kind)
		cfg.Buffers.SpecialBufs = 64 // room for the test's 1-flit burst
		h := newHarness(t, cfg)
		// Saturate with 1-flit special packets from two inputs to one
		// output so the initiation interval, not port busy time, binds.
		spCh := vc.Of(packet.Special, vc.Adaptive)
		h.eng.Schedule(0, func() {
			for i := 0; i < 40; i++ {
				in := ports.InWest
				if i%2 == 1 {
					in = ports.InNorth
				}
				h.r.Arrive(packet.New(uint64(i), packet.Special, 4, 7, 0), in, spCh, 0, nil)
			}
		})
		h.eng.Run(100 * cfg.RouterPeriod)
		return len(h.departures)
	}
	spaa := count(core.KindSPAABase)
	wfa := count(core.KindWFABase)
	if spaa <= wfa {
		t.Fatalf("SPAA dispatched %d vs WFA %d; pipelining should win", spaa, wfa)
	}
}

func TestCreditBackpressureBlocksDispatch(t *testing.T) {
	cfg := DefaultConfig(core.KindSPAABase)
	torus := topology.NewTorus(4, 4)
	r, err := New(cfg, 5, torus)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	var departs int
	for out := ports.Out(0); out < ports.NumOut; out++ {
		if out.IsNetwork() {
			r.ConnectNetwork(out, func(p *packet.Packet, ch vc.Channel, at sim.Ticks, home *vc.Credits) {
				departs++ // never release credits: downstream stays full
			})
		} else {
			r.ConnectLocal(out, func(p *packet.Packet, at sim.Ticks) {})
		}
	}
	eng.AddClock(cfg.RouterPeriod, 0, r)
	// Leave the east port exactly one adaptive and one VC0 credit; zero VC1.
	adaptive := vc.Of(packet.Request, vc.Adaptive)
	vc0 := vc.Of(packet.Request, vc.VC0)
	vc1 := vc.Of(packet.Request, vc.VC1)
	cr := r.OutputCredits(ports.OutEast)
	for cr.Free(adaptive) > 1 {
		cr.Reserve(adaptive)
	}
	for cr.Free(vc1) > 0 {
		cr.Reserve(vc1)
	}
	_ = vc0 // capacity is already one
	eng.Schedule(0, func() {
		// Three eastbound packets; credits allow only two dispatches
		// (1 adaptive + 1 deadlock-free escape), then stall.
		for i := 0; i < 3; i++ {
			r.Arrive(packet.New(uint64(i), packet.Request, 4, 7, 0), ports.InWest,
				vc.Of(packet.Request, vc.Adaptive), 0, nil)
		}
	})
	eng.Run(3000)
	if departs != 2 {
		t.Fatalf("departs = %d, want 2 (credit-limited)", departs)
	}
	if r.Buffered() != 1 {
		t.Fatalf("buffered = %d, want 1 stalled packet", r.Buffered())
	}
}

func TestAdaptiveFallsBackToDeadlockFree(t *testing.T) {
	// With zero adaptive credits downstream, packets must escape via
	// VC0/VC1 in dimension order.
	cfg := DefaultConfig(core.KindSPAABase)
	h := newHarness(t, cfg)
	adaptive := vc.Of(packet.Request, vc.Adaptive)
	// Exhaust east-port adaptive credits.
	cr := h.r.OutputCredits(ports.OutEast)
	for cr.Available(adaptive) {
		cr.Reserve(adaptive)
	}
	h.eng.Schedule(0, func() {
		h.r.Arrive(packet.New(1, packet.Request, 4, 7, 0), ports.InWest, adaptive, 0, nil)
	})
	h.eng.Run(500)
	if len(h.departures) != 1 {
		t.Fatalf("departures = %d, want 1", len(h.departures))
	}
	if got := h.departures[0].targetCh; got != vc.Of(packet.Request, vc.VC0) {
		t.Errorf("target channel = %v, want request/vc0 escape", got)
	}
}

func TestIOPacketsUseDeadlockFreeOnly(t *testing.T) {
	cfg := DefaultConfig(core.KindSPAABase)
	h := newHarness(t, cfg)
	h.eng.Schedule(0, func() {
		if !h.r.Inject(packet.New(1, packet.ReadIO, 5, 7, 0), ports.InIO, 0) {
			t.Error("I/O injection rejected")
		}
	})
	h.eng.Run(500)
	if len(h.departures) != 1 {
		t.Fatalf("departures = %d, want 1", len(h.departures))
	}
	if ch := h.departures[0].targetCh; !ch.IsDeadlockFree() {
		t.Errorf("I/O packet on channel %v; must use deadlock-free channels", ch)
	}
}

func TestAntiStarvationDrain(t *testing.T) {
	cfg := DefaultConfig(core.KindSPAABase)
	cfg.AntiStarvationAge = 20
	cfg.AntiStarvationThreshold = 1
	h := newHarness(t, cfg)
	adaptive := vc.Of(packet.Request, vc.Adaptive)
	vc0 := vc.Of(packet.Request, vc.VC0)
	vc1 := vc.Of(packet.Request, vc.VC1)
	// Exhaust all east-bound credits so eastbound packets cannot move.
	cr := h.r.OutputCredits(ports.OutEast)
	for _, ch := range []vc.Channel{adaptive, vc0, vc1} {
		for cr.Available(ch) {
			cr.Reserve(ch)
		}
	}
	h.eng.Schedule(0, func() {
		for i := 0; i < 3; i++ {
			h.r.Arrive(packet.New(uint64(i), packet.Request, 4, 7, 0), ports.InWest, adaptive, 0, nil)
		}
	})
	h.eng.Run(30 * cfg.RouterPeriod)
	if !h.r.Draining() {
		t.Fatal("blocked old packets did not trigger the drain")
	}
	if h.r.Counters.DrainEntries == 0 {
		t.Error("DrainEntries counter not incremented")
	}
	// Free the credits: the old packets drain and the mode clears.
	h.eng.Schedule(h.eng.Now()+1, func() {
		for _, ch := range []vc.Channel{adaptive, vc0, vc1} {
			cr.Release(ch)
			cr.Release(ch)
		}
	})
	h.eng.Run(h.eng.Now() + 100*cfg.RouterPeriod)
	if h.r.Draining() {
		t.Error("drain mode did not clear after old packets left")
	}
	if len(h.departures) == 0 {
		t.Error("no packets departed after credits freed")
	}
}

func TestArriveOverflowPanics(t *testing.T) {
	cfg := DefaultConfig(core.KindSPAABase)
	cfg.Buffers = uniformBuffers(1)
	r, _ := New(cfg, 5, topology.NewTorus(4, 4))
	ch := vc.Of(packet.Request, vc.Adaptive)
	r.Arrive(packet.New(1, packet.Request, 4, 7, 0), ports.InWest, ch, 0, nil)
	defer func() {
		if recover() == nil {
			t.Error("over-capacity Arrive should panic (credit protocol violation)")
		}
	}()
	r.Arrive(packet.New(2, packet.Request, 4, 7, 0), ports.InWest, ch, 0, nil)
}

func TestCountersConservation(t *testing.T) {
	cfg := DefaultConfig(core.KindSPAABase)
	h := newHarness(t, cfg)
	// Self-addressed packets: injected == delivered locally.
	h.eng.Schedule(0, func() {
		for i := 0; i < 20; i++ {
			if !h.r.Inject(packet.New(uint64(i), packet.Request, 5, 5, 0), ports.InCache, 0) {
				t.Fatalf("injection %d rejected", i)
			}
		}
	})
	h.eng.Run(5000)
	if len(h.deliveries) != 20 {
		t.Fatalf("deliveries = %d, want 20", len(h.deliveries))
	}
	if h.r.Buffered() != 0 {
		t.Errorf("buffered = %d after drain, want 0", h.r.Buffered())
	}
	c := h.r.Counters
	if c.Injected != 20 || c.DeliveredLocal != 20 || c.Grants != 20 {
		t.Errorf("counters inconsistent: %+v", c)
	}
}

func TestWaveLocking(t *testing.T) {
	// During a PIM1 wave, nominated packets must not be re-nominated until
	// the wave resolves; all packets still dispatch eventually.
	cfg := DefaultConfig(core.KindPIM1)
	h := newHarness(t, cfg)
	reqCh := vc.Of(packet.Request, vc.Adaptive)
	h.eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			h.r.Arrive(packet.New(uint64(i), packet.Request, 4, 7, 0), ports.InWest, reqCh, 0, nil)
		}
	})
	h.eng.Run(5000)
	if len(h.departures) != 10 {
		t.Fatalf("departures = %d, want 10", len(h.departures))
	}
	// Departures respect the east port's serialization.
	for i := 1; i < len(h.departures); i++ {
		gap := h.departures[i].headerDepart - h.departures[i-1].headerDepart
		if gap < 3*cfg.LinkPeriod {
			t.Errorf("departure %d only %d ticks after previous", i, gap)
		}
	}
}

func TestRotaryPrioritizesNetworkTraffic(t *testing.T) {
	// One network packet and one local packet compete for the east port
	// within the same GA round; under SPAA-rotary the network packet wins.
	cfg := DefaultConfig(core.KindSPAARotary)
	h := newHarness(t, cfg)
	reqCh := vc.Of(packet.Request, vc.Adaptive)
	h.eng.Schedule(0, func() {
		h.r.Arrive(packet.New(1, packet.Request, 4, 7, 0), ports.InWest, reqCh, 0, nil)
	})
	// Inject the local packet so both become eligible at the same LA tick:
	// network eligible at 0+6 cycles; local injected at cycle 3 is eligible
	// at 3+3 = 6.
	h.eng.Schedule(3*cfg.RouterPeriod, func() {
		h.r.Inject(packet.New(2, packet.Request, 5, 7, 0), ports.InCache, h.eng.Now())
	})
	h.eng.Run(3000)
	if len(h.departures) != 2 {
		t.Fatalf("departures = %d, want 2", len(h.departures))
	}
	if h.departures[0].p.ID != 1 {
		t.Errorf("first departure is packet %d; rotary should dispatch the network packet first",
			h.departures[0].p.ID)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []departure {
		cfg := DefaultConfig(core.KindPIM1)
		h := newHarness(t, cfg)
		reqCh := vc.Of(packet.Request, vc.Adaptive)
		h.eng.Schedule(0, func() {
			for i := 0; i < 30; i++ {
				in := []ports.In{ports.InWest, ports.InNorth, ports.InSouth}[i%3]
				dst := []topology.Node{7, 6, 9, 13}[i%4]
				h.r.Arrive(packet.New(uint64(i), packet.Request, 4, dst, 0), in, reqCh, 0, nil)
			}
		})
		h.eng.Run(10000)
		return h.departures
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].p.ID != b[i].p.ID || a[i].headerDepart != b[i].headerDepart {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// uniformBuffers builds a buffer config with the same adaptive capacity
// for every class.
func uniformBuffers(n int) vc.Config {
	var cfg vc.Config
	for cl := packet.Class(0); cl < packet.Special; cl++ {
		cfg.Adaptive[cl] = n
	}
	cfg.DeadlockPerClass = 1
	cfg.SpecialBufs = 1
	return cfg
}

package router

import (
	"testing"
	"testing/quick"

	"alpha21364/internal/core"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
	"alpha21364/internal/vc"
)

// TestRouterFuzzArrivals throws randomized arrival sequences at a single
// router across all three algorithm families and checks structural
// invariants: every arrived packet eventually leaves (no loss, no
// duplication), and nothing panics.
func TestRouterFuzzArrivals(t *testing.T) {
	kinds := []core.Kind{core.KindSPAABase, core.KindSPAARotary, core.KindPIM1, core.KindWFARotary}
	f := func(seed uint16, kindSel uint8) bool {
		kind := kinds[int(kindSel)%len(kinds)]
		cfg := DefaultConfig(kind)
		h := newHarness(t, cfg)
		rng := sim.NewRNG(uint64(seed) + 1)
		classes := []packet.Class{packet.Request, packet.Forward, packet.BlockResponse, packet.NonBlockResponse}
		netIns := []ports.In{ports.InNorth, ports.InSouth, ports.InEast, ports.InWest}

		sent := 0
		var walk func(at sim.Ticks, remaining int)
		walk = func(at sim.Ticks, remaining int) {
			if remaining == 0 {
				return
			}
			h.eng.Schedule(at, func() {
				cl := classes[rng.Intn(len(classes))]
				// Any destination; self-addressed packets exit locally. The
				// arrival port must be consistent with minimal routing: a
				// packet never arrives on the port it would have to exit
				// through (no 180-degree turns exist on minimal paths).
				dst := int2node(rng.Intn(16))
				dirs := h.r.torus.ProductiveDirs(h.r.Node(), dst)
				var legal []ports.In
				for _, in := range netIns {
					ok := true
					for _, d := range dirs {
						if ports.OutForDir(d) == ports.Out(in) {
							ok = false
						}
					}
					if ok {
						legal = append(legal, in)
					}
				}
				in := legal[rng.Intn(len(legal))]
				ch := vc.Of(cl, vc.Adaptive)
				p := packet.New(uint64(sent+1), cl, 4, dst, h.eng.Now())
				if h.r.Buffered() < 100 {
					h.r.Arrive(p, in, ch, h.eng.Now(), nil)
					sent++
				}
				walk(h.eng.Now()+sim.Ticks(rng.Intn(40))*cfg.RouterPeriod, remaining-1)
			})
		}
		walk(0, 25)
		h.eng.Run(100000)
		got := len(h.departures) + len(h.deliveries)
		return got == sent && h.r.Buffered() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func int2node(v int) topology.Node { return topology.Node(v) }

package router

import (
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
)

// TestRouterTickAllocs pins the router's steady-state allocation budget:
// once the packet slab and scratch slices have reached their high-water
// marks, injecting, arbitrating, and dispatching packets must not
// allocate. Packets are self-addressed so the whole life cycle (inject,
// SPAA nomination, grant, local delivery) runs inside one router.
func TestRouterTickAllocs(t *testing.T) {
	for _, kind := range []core.Kind{core.KindSPAABase, core.KindPIM1} {
		torus := topology.NewTorus(4, 4)
		cfg := DefaultConfig(kind)
		r, err := New(cfg, 5, torus)
		if err != nil {
			t.Fatal(err)
		}
		arena := packet.NewArena()
		for _, out := range []ports.Out{ports.OutMC0, ports.OutMC1, ports.OutIO} {
			r.ConnectLocal(out, func(p *packet.Packet, at sim.Ticks) {
				arena.Release(p)
			})
		}

		now := sim.Ticks(0)
		id := uint64(0)
		cycle := func() {
			id++
			p := arena.New(id, packet.Request, 5, 5, now)
			if !r.Inject(p, ports.InCache, now) {
				arena.Release(p)
			}
			for c := 0; c < 8; c++ {
				r.Tick(now)
				now += cfg.RouterPeriod
			}
		}
		// Warm slab, rings, and scratch past their high-water marks.
		for i := 0; i < 50; i++ {
			cycle()
		}
		allocs := testing.AllocsPerRun(200, cycle)
		if allocs != 0 {
			t.Errorf("%v: steady-state router Tick allocates %.2f/op, want 0", kind, allocs)
		}
	}
}

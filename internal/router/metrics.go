package router

import (
	"alpha21364/internal/core"
	"alpha21364/internal/obs"
	"alpha21364/internal/sim"
)

// Telemetry hooks, wired exactly like the invariant oracle (oracle.go):
// the router holds nil pointers by default, and every hot-path hook is a
// single nil test. With metrics installed, each event is a handful of
// int64 field writes on a preallocated struct — no allocation, no
// interface dispatch beyond the (already present) grant-policy call, and
// no effect on simulation state, so metrics-enabled runs produce
// byte-identical Results (test-enforced in internal/experiment).

// SetMetrics installs the router's preallocated counter block. It also
// wraps the arbitration core (grant policy or matrix arbiter) with the
// observation-only instrumented variant from internal/core, so install
// before the first Tick and do not install twice.
func (r *Router) SetMetrics(m *obs.RouterMetrics) {
	r.metrics = m
	if m == nil {
		return
	}
	if r.policy != nil {
		r.policy = core.InstrumentPolicy(r.policy, &m.Arb)
	}
	if r.arb != nil {
		r.arb = core.InstrumentArbiter(r.arb, &m.Arb)
	}
}

// SetFlight installs the router's flight recorder: a fixed ring of
// recent engine events the deadlock watchdog dumps alongside its
// Violation. Pass nil to disable.
func (r *Router) SetFlight(f *obs.FlightRing) { r.flight = f }

// FlushMetrics closes the occupancy time-integrals at time end; call
// once when the run stops, before snapshotting.
func (r *Router) FlushMetrics(end sim.Ticks) {
	if r.metrics != nil {
		r.metrics.Flush(end)
	}
}

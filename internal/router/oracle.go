package router

// oracle.go is the router's window for online invariant checking
// (internal/check): an Oracle installed with SetOracle observes every
// arbitration decision as it commits, and the read-only accessors below
// let it sweep buffer state between cycles. The hooks are designed to be
// free when unused — a nil oracle costs exactly one pointer test per GA
// resolution and nothing per cycle otherwise — and allocation-free when
// installed: grant records are appended to a slice the router reuses
// across resolutions.

import (
	"alpha21364/internal/core"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/vc"
)

// SPAAGrant describes one SPAA pipeline event — a nomination issued at LA
// or a dispatch committed at GA — as reported to the oracle.
type SPAAGrant struct {
	// ID is the packet's globally unique id.
	ID uint64
	// Row is the read-port row the nomination traveled through.
	Row int
	// In and Ch locate the input buffer the packet occupies.
	In ports.In
	Ch vc.Channel
	// Out is the nominated (or granted) output port; TargetCh the virtual
	// channel the packet will occupy downstream (network moves only).
	Out      ports.Out
	TargetCh vc.Channel
	// Local marks a move to a processor-facing output port.
	Local bool
}

// Oracle observes the router's arbitration pipeline. Implementations
// (internal/check) verify grant legality online: every grant must match a
// pending nomination, and no read-port row or output port may be granted
// twice in one resolution. Hook calls happen inside the router's Tick, so
// implementations must not mutate router state.
type Oracle interface {
	// SPAANominate reports one LA-stage nomination and the tick its GA
	// resolution is due.
	SPAANominate(r *Router, now sim.Ticks, g SPAAGrant, resolveAt sim.Ticks)
	// SPAAResolve reports one GA resolution: every dispatch committed at
	// tick now. It is called once per resolution batch, after the commits.
	SPAAResolve(r *Router, now sim.Ticks, grants []SPAAGrant)
	// WaveResolve reports one PIM1/WFA wave resolution: the connection
	// matrix as arbitrated and the arbiter's raw grants, before the commit
	// loop filters stale cells.
	WaveResolve(r *Router, now sim.Ticks, m *core.Matrix, grants []core.Grant)
}

// SetOracle installs (or, with nil, removes) the arbitration oracle.
func (r *Router) SetOracle(o Oracle) { r.oracle = o }

// QueueLen returns the number of packets buffered on one (input port,
// virtual channel) ring.
func (r *Router) QueueLen(in ports.In, ch vc.Channel) int {
	return r.queues[in][ch].Len()
}

// ScanOccupied calls f for every non-empty (input port, channel) ring
// with the ring's occupancy and its front — oldest-buffered — packet's id
// and header-arrival tick. The oracle's deadlock watchdog uses it to name
// the stuck buffers in its failure report.
func (r *Router) ScanOccupied(f func(in ports.In, ch vc.Channel, queued int, oldestID uint64, oldestArrive sim.Ticks)) {
	for in := ports.In(0); in < ports.NumIn; in++ {
		for ch := vc.Channel(0); ch < vc.NumChannels; ch++ {
			q := &r.queues[in][ch]
			if q.Len() == 0 {
				continue
			}
			pk := q.At(0)
			f(in, ch, q.Len(), r.slab.pkt[pk].ID, r.slab.headerArrive[pk])
		}
	}
}

package workload

import (
	"math"
	"strings"
	"testing"

	"alpha21364/internal/sim"
)

// meanRate simulates the process over nodes×cycles and returns the
// empirical demands per node per cycle.
func meanRate(p Process, nodes, cycles int, seed uint64) float64 {
	p.Bind(nodes)
	rng := sim.NewRNG(seed)
	total := 0
	for c := 0; c < cycles; c++ {
		for n := 0; n < nodes; n++ {
			total += p.Arrivals(n, rng)
		}
	}
	return float64(total) / float64(nodes*cycles)
}

func TestProcessMeanRates(t *testing.T) {
	const rate = 0.05
	for _, tc := range []struct {
		name string
		p    Process
		tol  float64
	}{
		{"bernoulli", NewBernoulli(rate), 0.10},
		{"onoff", NewOnOff(rate), 0.15}, // bursty: higher variance, looser tolerance
		{"deterministic", NewDeterministic(rate), 1e-9},
	} {
		got := meanRate(tc.p, 16, 50000, 42)
		if rel := math.Abs(got-rate) / rate; rel > tc.tol {
			t.Errorf("%s: mean rate %.5f, want %.5f ± %.0f%%", tc.name, got, rate, tc.tol*100)
		}
		if tc.p.Rate() != rate {
			t.Errorf("%s: Rate() = %g, want %g", tc.name, tc.p.Rate(), rate)
		}
	}
}

// TestOnOffIsBursty verifies the defining property of the on/off process:
// at the same mean rate its arrivals are far more clustered than
// Bernoulli's. We compare the variance of per-window arrival counts.
func TestOnOffIsBursty(t *testing.T) {
	const rate, cycles, window = 0.05, 60000, 32
	variance := func(p Process) float64 {
		p.Bind(1)
		rng := sim.NewRNG(7)
		var counts []float64
		for w := 0; w < cycles/window; w++ {
			c := 0
			for i := 0; i < window; i++ {
				c += p.Arrivals(0, rng)
			}
			counts = append(counts, float64(c))
		}
		var sum, ss float64
		for _, c := range counts {
			sum += c
		}
		mean := sum / float64(len(counts))
		for _, c := range counts {
			ss += (c - mean) * (c - mean)
		}
		return ss / float64(len(counts))
	}
	bern := variance(NewBernoulli(rate))
	burst := variance(NewOnOff(rate))
	if burst < 2*bern {
		t.Errorf("on/off window variance %.3f not clearly above Bernoulli's %.3f", burst, bern)
	}
}

func TestDeterministicExactCount(t *testing.T) {
	const rate = 0.03125 // 1/32: an exact binary fraction, no float drift
	p := NewDeterministic(rate)
	p.Bind(4)
	total := 0
	const cycles = 3200
	for c := 0; c < cycles; c++ {
		for n := 0; n < 4; n++ {
			total += p.Arrivals(n, nil)
		}
	}
	if want := int(rate * cycles * 4); total != want {
		t.Errorf("deterministic produced %d demands, want exactly %d", total, want)
	}
}

// TestDeterministicStagger: nodes must not all fire on the same cycle.
func TestDeterministicStagger(t *testing.T) {
	p := NewDeterministic(0.25)
	p.Bind(4)
	fires := map[int][]int{}
	for c := 0; c < 8; c++ {
		for n := 0; n < 4; n++ {
			if p.Arrivals(n, nil) > 0 {
				fires[c] = append(fires[c], n)
			}
		}
	}
	for c, nodes := range fires {
		if len(nodes) == 4 {
			t.Fatalf("all nodes fired together on cycle %d: stagger broken", c)
		}
	}
}

func TestNewProcessAliasesAndErrors(t *testing.T) {
	for alias, canon := range map[string]string{
		"": "bernoulli", "Bernoulli": "bernoulli", "bursty": "onoff",
		"ONOFF": "onoff", "periodic": "deterministic", " Deterministic ": "deterministic",
	} {
		p, err := NewProcess(alias, 0.01)
		if err != nil {
			t.Errorf("NewProcess(%q): %v", alias, err)
			continue
		}
		if p.Name() != canon {
			t.Errorf("NewProcess(%q) = %q, want %q", alias, p.Name(), canon)
		}
	}
	_, err := NewProcess("poisson", 0.01)
	if err == nil {
		t.Fatal("accepted unknown process")
	}
	for _, name := range ProcessNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

// TestOnOffPreservesHighMeanRates: above the default 0.25 ON fraction
// the process widens its ON share rather than silently undershooting the
// requested mean.
func TestOnOffPreservesHighMeanRates(t *testing.T) {
	for _, rate := range []float64{0.4, 0.8, 1.0} {
		got := meanRate(NewOnOff(rate), 16, 50000, 3)
		if rel := math.Abs(got-rate) / rate; rel > 0.1 {
			t.Errorf("onoff at rate %g delivered mean %.4f", rate, got)
		}
	}
}

package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
)

// TraceVersion is the trace file format version this build reads and
// writes. The reader rejects other versions rather than guessing.
const TraceVersion = 1

// traceMagic is the first token of every trace file.
const traceMagic = "alpha21364-trace"

// Event is one packet creation in the injection stream: everything needed
// to re-create and re-enqueue the packet at the same simulated time.
type Event struct {
	// At is the tick the packet was created (and first offered to its
	// node's injection queue).
	At sim.Ticks
	// Clocked records the engine phase of the creation: true for packets
	// created inside the generator's clock tick (new requests), false for
	// packets created by a scheduled event (memory and cache responses).
	// Replay re-injects each event in the same phase, which keeps the
	// within-tick dispatch order — events before clock edges — identical
	// to the recorded run.
	Clocked bool
	// Node and In are the injection point: which router and which
	// processor-side input port.
	Node topology.Node
	In   ports.In
	// Class, Src, and Dst describe the packet itself.
	Class packet.Class
	Src   topology.Node
	Dst   topology.Node
}

// Trace is a recorded injection stream: the torus and router clock it
// was captured on, a free-form label describing the run, and every
// packet creation in chronological order. Replaying a trace re-injects
// exactly these packets at exactly these ticks, independent of the
// arbiter under test.
type Trace struct {
	Width, Height int
	// Period is the router clock period (in ticks) of the recording run.
	// Clock-phase events only land on that grid, so replay refuses a
	// different period rather than silently dropping injections. Zero
	// means unknown (hand-built traces) and skips the check.
	Period sim.Ticks
	Label  string
	Events []Event
}

// Write serializes the trace in the versioned text format:
//
//	alpha21364-trace 1
//	torus <width> <height>
//	period <router period in ticks>
//	label <free text>
//	events <count>
//	<at> <clocked> <node> <in> <class> <src> <dst>   (count lines)
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %d\n", traceMagic, TraceVersion)
	fmt.Fprintf(bw, "torus %d %d\n", t.Width, t.Height)
	fmt.Fprintf(bw, "period %d\n", t.Period)
	fmt.Fprintf(bw, "label %s\n", t.Label)
	fmt.Fprintf(bw, "events %d\n", len(t.Events))
	for _, e := range t.Events {
		clocked := 0
		if e.Clocked {
			clocked = 1
		}
		fmt.Fprintf(bw, "%d %d %d %d %d %d %d\n",
			e.At, clocked, e.Node, e.In, e.Class, e.Src, e.Dst)
	}
	return bw.Flush()
}

// WriteFile writes the trace to path, creating or truncating it.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return fmt.Errorf("workload: writing trace %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("workload: closing trace %s: %w", path, err)
	}
	return nil
}

// ReadTrace parses a trace written by Write, validating the magic, the
// version, and every event field.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic string
	var version int
	if _, err := fmt.Fscanf(br, "%s %d\n", &magic, &version); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("workload: not a trace file (magic %q)", magic)
	}
	if version != TraceVersion {
		return nil, fmt.Errorf("workload: trace version %d not supported (want %d)", version, TraceVersion)
	}
	t := &Trace{}
	if _, err := fmt.Fscanf(br, "torus %d %d\n", &t.Width, &t.Height); err != nil {
		return nil, fmt.Errorf("workload: trace torus line: %w", err)
	}
	if t.Width < 2 || t.Height < 2 {
		return nil, fmt.Errorf("workload: trace torus %dx%d invalid", t.Width, t.Height)
	}
	var period int64
	if _, err := fmt.Fscanf(br, "period %d\n", &period); err != nil {
		return nil, fmt.Errorf("workload: trace period line: %w", err)
	}
	if period < 0 {
		return nil, fmt.Errorf("workload: negative trace period %d", period)
	}
	t.Period = sim.Ticks(period)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("workload: trace label line: %w", err)
	}
	if _, err := fmt.Sscanf(line, "label %s", &t.Label); err != nil {
		// An empty label serializes as "label \n"; keep it empty.
		t.Label = ""
	} else {
		t.Label = line[len("label ") : len(line)-1]
	}
	var count int
	if _, err := fmt.Fscanf(br, "events %d\n", &count); err != nil {
		return nil, fmt.Errorf("workload: trace events line: %w", err)
	}
	if count < 0 {
		return nil, fmt.Errorf("workload: negative event count %d", count)
	}
	nodes := t.Width * t.Height
	t.Events = make([]Event, count)
	prev := sim.Ticks(0)
	for i := range t.Events {
		var at int64
		var clocked, node, in, class, src, dst int
		if _, err := fmt.Fscanf(br, "%d %d %d %d %d %d %d\n",
			&at, &clocked, &node, &in, &class, &src, &dst); err != nil {
			return nil, fmt.Errorf("workload: trace event %d: %w", i, err)
		}
		e := Event{
			At:      sim.Ticks(at),
			Clocked: clocked != 0,
			Node:    topology.Node(node),
			In:      ports.In(in),
			Class:   packet.Class(class),
			Src:     topology.Node(src),
			Dst:     topology.Node(dst),
		}
		switch {
		case e.At < prev:
			return nil, fmt.Errorf("workload: trace event %d out of order (%d after %d)", i, e.At, prev)
		case int(e.Node) >= nodes || int(e.Src) >= nodes || int(e.Dst) >= nodes ||
			e.Node < 0 || e.Src < 0 || e.Dst < 0:
			return nil, fmt.Errorf("workload: trace event %d references a node outside the %d-node torus", i, nodes)
		case e.In < ports.InCache || e.In >= ports.NumIn:
			return nil, fmt.Errorf("workload: trace event %d injects on non-local port %d", i, in)
		case e.Class >= packet.NumClasses:
			return nil, fmt.Errorf("workload: trace event %d has invalid class %d", i, class)
		}
		prev = e.At
		t.Events[i] = e
	}
	return t, nil
}

// ReadTraceFile reads a trace from path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	t, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("workload: trace %s: %w", path, err)
	}
	return t, nil
}

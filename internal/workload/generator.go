package workload

import (
	"alpha21364/internal/network"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/stats"
	"alpha21364/internal/topology"
)

// Config composes one workload: a spatial pattern, an arrival process,
// and a transaction model, plus the closed-loop cap and recording hooks.
type Config struct {
	// Pattern draws request destinations; nil means uniform.
	Pattern Pattern
	// Process is the arrival law; nil means no new demands (replay).
	Process Process
	// Model is the transaction model; nil means the paper's coherence
	// model with default parameters.
	Model Model
	// MaxOutstanding caps in-flight transactions per processor (the
	// 21364's 16 outstanding cache misses; Figure 11b uses 64). Zero or
	// negative means uncapped.
	MaxOutstanding int
	// Seed feeds the workload RNG stream (patterns, processes, and model
	// coin flips), independent of the router seeds.
	Seed uint64
	// Record, when non-nil, appends every packet creation to the trace.
	Record *Trace
}

// Generator drives every processor in the network: it asks the Process
// for demands, opens transactions through the Model (bounded by the
// outstanding cap), owns the processor-side injection queues, and relays
// deliveries back to the Model. It is a sim.Clocked component on the
// router clock.
type Generator struct {
	cfg       Config
	net       *network.Network
	collector *stats.Collector
	rng       *sim.RNG
	model     Model
	process   Process

	outstanding []int
	demand      []int64
	// arena pools packets: drawn at creation, released once the delivery
	// is fully processed, so steady-state injection allocates nothing.
	arena *packet.Arena
	// pending holds packets awaiting buffer space: one FIFO per (node,
	// local input port) pair, indexed node*numInjPorts + port offset
	// (processor-side injection queues).
	pending []pendQueue

	nextPkt   uint64
	completed int64
	sunk      int64
	stopped   bool
	// inTick is true while the generator's clock tick runs; it stamps the
	// Clocked flag on recorded trace events.
	inTick bool

	eng *sim.Engine
}

// injPorts are the local input ports packets inject on, in retry order.
var injPorts = [...]ports.In{ports.InCache, ports.InMC0, ports.InMC1, ports.InIO}

// numInjPorts is the injection-port count per node.
const numInjPorts = len(injPorts)

// pendSlot maps a (node, port) pair to its pending-queue index.
func pendSlot(node topology.Node, in ports.In) int {
	return int(node)*numInjPorts + int(in-ports.InCache)
}

// pendQueue is a reusable FIFO over a slice: pops advance a head index,
// and the buffer is reclaimed when drained (or compacted when the dead
// prefix dominates), so a steady-state queue allocates nothing.
type pendQueue struct {
	buf  []*packet.Packet
	head int
}

func (q *pendQueue) len() int { return len(q.buf) - q.head }

func (q *pendQueue) front() *packet.Packet {
	if q.head >= len(q.buf) {
		return nil
	}
	return q.buf[q.head]
}

func (q *pendQueue) push(p *packet.Packet) {
	if q.head > 32 && q.head*2 >= len(q.buf) {
		// Reclaim the popped prefix before growing further.
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, p)
}

func (q *pendQueue) pop() {
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
}

// New creates a generator, installs its delivery handler on the network,
// and returns it. Attach it to the router clock domain before the routers
// so demands arrive at the head of each cycle. The RNG is seeded exactly
// as the pre-workload traffic generator was (seed ^ 0xfeedface), keeping
// the paper's figures bit-identical.
func New(cfg Config, net *network.Network, eng *sim.Engine, collector *stats.Collector) *Generator {
	if cfg.Pattern == nil {
		cfg.Pattern = NewUniform(net.Torus())
	}
	if cfg.Process == nil {
		cfg.Process = NewSilent()
	}
	if cfg.Model == nil {
		cfg.Model = NewCoherence()
	}
	g := &Generator{
		cfg:         cfg,
		net:         net,
		collector:   collector,
		rng:         sim.NewRNG(cfg.Seed ^ 0xfeedface),
		model:       cfg.Model,
		process:     cfg.Process,
		outstanding: make([]int, net.Nodes()),
		demand:      make([]int64, net.Nodes()),
		arena:       packet.NewArena(),
		pending:     make([]pendQueue, net.Nodes()*numInjPorts),
		eng:         eng,
	}
	routerPeriod := net.Router(0).Config().RouterPeriod
	g.process.Bind(net.Nodes())
	g.model.Bind(&Env{
		Torus:        net.Torus(),
		Pattern:      cfg.Pattern,
		RNG:          g.rng,
		Eng:          eng,
		RouterPeriod: routerPeriod,
		NewPacket:    g.newPacket,
		Enqueue:      g.enqueue,
		Complete:     g.complete,
	})
	net.OnDeliver(g.onDeliver)
	return g
}

// Model returns the generator's transaction model.
func (g *Generator) Model() Model { return g.model }

// Completed returns the number of finished transactions.
func (g *Generator) Completed() int64 { return g.completed }

// ArenaLive returns the number of packets currently checked out of the
// generator's arena — everything injected or queued but not yet released
// by a processed delivery. The invariant oracle cross-checks it against
// the router-level conservation counters to catch packet leaks.
func (g *Generator) ArenaLive() int { return g.arena.Live() }

// Sunk returns the number of deliveries whose sink events have been fully
// processed (statistics recorded, model notified, packet released).
func (g *Generator) Sunk() int64 { return g.sunk }

// Outstanding returns a node's in-flight transaction count.
func (g *Generator) Outstanding(node topology.Node) int { return g.outstanding[node] }

// InFlightTxns returns the number of open transactions.
func (g *Generator) InFlightTxns() int { return g.model.InFlight() }

// PendingInjections returns packets queued processor-side for buffer
// space.
func (g *Generator) PendingInjections() int {
	n := 0
	for i := range g.pending {
		n += g.pending[i].len()
	}
	return n
}

// Stop halts new transaction demand; in-flight transactions drain.
func (g *Generator) Stop() { g.stopped = true }

// Tick implements sim.Clocked on the router clock: draw arrivals, open
// transactions up to the outstanding cap, give the model its per-cycle
// hook, and retry pending injections.
func (g *Generator) Tick(now sim.Ticks) {
	g.inTick = true
	for node := 0; node < g.net.Nodes(); node++ {
		n := topology.Node(node)
		if !g.stopped {
			g.demand[node] += int64(g.process.Arrivals(node, g.rng))
		}
		for g.demand[node] > 0 && (g.cfg.MaxOutstanding <= 0 || g.outstanding[node] < g.cfg.MaxOutstanding) {
			g.demand[node]--
			g.outstanding[node]++
			g.model.Start(n, now)
		}
	}
	g.model.Tick(now)
	g.inTick = false
	g.drainPending(now)
}

// newPacket mints the next packet at the current engine time, records it
// with the statistics collector, and leaves a placeholder trace event
// (the injection point is completed by enqueue).
func (g *Generator) newPacket(cl packet.Class, src, dst topology.Node, txnID uint64) *packet.Packet {
	g.nextPkt++
	p := g.arena.New(g.nextPkt, cl, src, dst, g.eng.Now())
	p.TxnID = txnID
	g.collector.Injected(p)
	if g.cfg.Record != nil {
		g.cfg.Record.Events = append(g.cfg.Record.Events, Event{
			At:      g.eng.Now(),
			Clocked: g.inTick,
			Node:    src, // provisional; enqueue records the true injection node
			In:      ports.InCache,
			Class:   cl,
			Src:     src,
			Dst:     dst,
		})
	}
	return p
}

// enqueue adds a packet to a node's processor-side injection queue and
// tries to push it into the router immediately.
func (g *Generator) enqueue(node topology.Node, in ports.In, p *packet.Packet) {
	if g.cfg.Record != nil {
		// Fix up the injection point of the event newPacket just appended.
		ev := &g.cfg.Record.Events[len(g.cfg.Record.Events)-1]
		ev.Node, ev.In = node, in
	}
	slot := pendSlot(node, in)
	g.pending[slot].push(p)
	g.tryInject(slot, node, in, g.eng.Now())
}

// complete closes one of requester's transactions.
func (g *Generator) complete(requester topology.Node) {
	g.outstanding[requester]--
	g.completed++
}

// drainPending retries one injection per (node, port) per cycle.
func (g *Generator) drainPending(now sim.Ticks) {
	for node := 0; node < g.net.Nodes(); node++ {
		for pi, in := range injPorts {
			g.tryInject(node*numInjPorts+pi, topology.Node(node), in, now)
		}
	}
}

func (g *Generator) tryInject(slot int, node topology.Node, in ports.In, now sim.Ticks) {
	q := &g.pending[slot]
	p := q.front()
	if p == nil {
		return
	}
	if !g.net.Inject(p, node, in, now) {
		return
	}
	q.pop()
}

// onDeliver relays deliveries to the model, then returns the packet to
// the arena: once the model has seen the delivery, nothing in the
// simulation references the packet again.
func (g *Generator) onDeliver(p *packet.Packet, at sim.Ticks) {
	g.model.Deliver(p, at)
	if g.arena.Owns(p) {
		g.arena.Release(p)
	}
	g.sunk++
}

package workload

import (
	"alpha21364/internal/network"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/stats"
	"alpha21364/internal/topology"
)

// Config composes one workload: a spatial pattern, an arrival process,
// and a transaction model, plus the closed-loop cap and recording hooks.
type Config struct {
	// Pattern draws request destinations; nil means uniform.
	Pattern Pattern
	// Process is the arrival law; nil means no new demands (replay).
	Process Process
	// Model is the transaction model; nil means the paper's coherence
	// model with default parameters.
	Model Model
	// MaxOutstanding caps in-flight transactions per processor (the
	// 21364's 16 outstanding cache misses; Figure 11b uses 64). Zero or
	// negative means uncapped.
	MaxOutstanding int
	// Seed feeds the workload RNG stream (patterns, processes, and model
	// coin flips), independent of the router seeds.
	Seed uint64
	// Record, when non-nil, appends every packet creation to the trace.
	Record *Trace
}

// Generator drives every processor in the network: it asks the Process
// for demands, opens transactions through the Model (bounded by the
// outstanding cap), owns the processor-side injection queues, and relays
// deliveries back to the Model. It is a sim.Clocked component on the
// router clock.
type Generator struct {
	cfg       Config
	net       *network.Network
	collector *stats.Collector
	rng       *sim.RNG
	model     Model
	process   Process

	outstanding []int
	demand      []int64
	// pending holds packets awaiting buffer space, per node and local
	// input port (processor-side injection queues).
	pending map[injKey][]*packet.Packet

	nextPkt   uint64
	completed int64
	stopped   bool
	// inTick is true while the generator's clock tick runs; it stamps the
	// Clocked flag on recorded trace events.
	inTick bool

	eng *sim.Engine
}

type injKey struct {
	node topology.Node
	in   ports.In
}

// New creates a generator, installs its delivery handler on the network,
// and returns it. Attach it to the router clock domain before the routers
// so demands arrive at the head of each cycle. The RNG is seeded exactly
// as the pre-workload traffic generator was (seed ^ 0xfeedface), keeping
// the paper's figures bit-identical.
func New(cfg Config, net *network.Network, eng *sim.Engine, collector *stats.Collector) *Generator {
	if cfg.Pattern == nil {
		cfg.Pattern = NewUniform(net.Torus())
	}
	if cfg.Process == nil {
		cfg.Process = NewSilent()
	}
	if cfg.Model == nil {
		cfg.Model = NewCoherence()
	}
	g := &Generator{
		cfg:         cfg,
		net:         net,
		collector:   collector,
		rng:         sim.NewRNG(cfg.Seed ^ 0xfeedface),
		model:       cfg.Model,
		process:     cfg.Process,
		outstanding: make([]int, net.Nodes()),
		demand:      make([]int64, net.Nodes()),
		pending:     make(map[injKey][]*packet.Packet),
		eng:         eng,
	}
	routerPeriod := net.Router(0).Config().RouterPeriod
	g.process.Bind(net.Nodes())
	g.model.Bind(&Env{
		Torus:        net.Torus(),
		Pattern:      cfg.Pattern,
		RNG:          g.rng,
		Eng:          eng,
		RouterPeriod: routerPeriod,
		NewPacket:    g.newPacket,
		Enqueue:      g.enqueue,
		Complete:     g.complete,
	})
	net.OnDeliver(g.onDeliver)
	return g
}

// Model returns the generator's transaction model.
func (g *Generator) Model() Model { return g.model }

// Completed returns the number of finished transactions.
func (g *Generator) Completed() int64 { return g.completed }

// Outstanding returns a node's in-flight transaction count.
func (g *Generator) Outstanding(node topology.Node) int { return g.outstanding[node] }

// InFlightTxns returns the number of open transactions.
func (g *Generator) InFlightTxns() int { return g.model.InFlight() }

// PendingInjections returns packets queued processor-side for buffer
// space.
func (g *Generator) PendingInjections() int {
	n := 0
	for _, q := range g.pending {
		n += len(q)
	}
	return n
}

// Stop halts new transaction demand; in-flight transactions drain.
func (g *Generator) Stop() { g.stopped = true }

// Tick implements sim.Clocked on the router clock: draw arrivals, open
// transactions up to the outstanding cap, give the model its per-cycle
// hook, and retry pending injections.
func (g *Generator) Tick(now sim.Ticks) {
	g.inTick = true
	for node := 0; node < g.net.Nodes(); node++ {
		n := topology.Node(node)
		if !g.stopped {
			g.demand[node] += int64(g.process.Arrivals(node, g.rng))
		}
		for g.demand[node] > 0 && (g.cfg.MaxOutstanding <= 0 || g.outstanding[node] < g.cfg.MaxOutstanding) {
			g.demand[node]--
			g.outstanding[node]++
			g.model.Start(n, now)
		}
	}
	g.model.Tick(now)
	g.inTick = false
	g.drainPending(now)
}

// newPacket mints the next packet at the current engine time, records it
// with the statistics collector, and leaves a placeholder trace event
// (the injection point is completed by enqueue).
func (g *Generator) newPacket(cl packet.Class, src, dst topology.Node, txnID uint64) *packet.Packet {
	g.nextPkt++
	p := packet.New(g.nextPkt, cl, src, dst, g.eng.Now())
	p.TxnID = txnID
	g.collector.Injected(p)
	if g.cfg.Record != nil {
		g.cfg.Record.Events = append(g.cfg.Record.Events, Event{
			At:      g.eng.Now(),
			Clocked: g.inTick,
			Node:    src, // provisional; enqueue records the true injection node
			In:      ports.InCache,
			Class:   cl,
			Src:     src,
			Dst:     dst,
		})
	}
	return p
}

// enqueue adds a packet to a node's processor-side injection queue and
// tries to push it into the router immediately.
func (g *Generator) enqueue(node topology.Node, in ports.In, p *packet.Packet) {
	if g.cfg.Record != nil {
		// Fix up the injection point of the event newPacket just appended.
		ev := &g.cfg.Record.Events[len(g.cfg.Record.Events)-1]
		ev.Node, ev.In = node, in
	}
	k := injKey{node, in}
	g.pending[k] = append(g.pending[k], p)
	g.tryInject(k, g.eng.Now())
}

// complete closes one of requester's transactions.
func (g *Generator) complete(requester topology.Node) {
	g.outstanding[requester]--
	g.completed++
}

// drainPending retries one injection per (node, port) per cycle.
func (g *Generator) drainPending(now sim.Ticks) {
	for node := 0; node < g.net.Nodes(); node++ {
		for _, in := range []ports.In{ports.InCache, ports.InMC0, ports.InMC1, ports.InIO} {
			g.tryInject(injKey{topology.Node(node), in}, now)
		}
	}
}

func (g *Generator) tryInject(k injKey, now sim.Ticks) {
	q := g.pending[k]
	if len(q) == 0 {
		return
	}
	if !g.net.Inject(q[0], k.node, k.in, now) {
		return
	}
	copy(q, q[1:])
	q[len(q)-1] = nil
	if len(q) == 1 {
		delete(g.pending, k)
	} else {
		g.pending[k] = q[:len(q)-1]
	}
}

// onDeliver relays deliveries to the model.
func (g *Generator) onDeliver(p *packet.Packet, at sim.Ticks) {
	g.model.Deliver(p, at)
}

package workload

import (
	"fmt"

	"alpha21364/internal/packet"
	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
)

// Replay re-injects a recorded Trace bit for bit: every packet is created
// at its recorded tick, in its recorded engine phase (scheduled event or
// clock tick), at its recorded node and port. Because the injection
// stream is fixed rather than driven by the protocol's closed loop,
// replaying the same trace under different arbiters compares them on the
// identical packet sequence.
type Replay struct {
	trace *Trace
	env   *Env
	// next indexes the first clocked event not yet injected; scheduled
	// events are pre-registered with the engine in Bind.
	next      int
	injected  int64
	delivered int64
}

// NewReplay returns a model that replays the trace. Validate the trace
// against the replaying network before the run with CheckCompatible.
func NewReplay(t *Trace) *Replay { return &Replay{trace: t} }

func (r *Replay) Name() string { return "replay" }

// CheckCompatible verifies the trace was captured on a torus of the
// given dimensions and on the same router clock. A different period
// would strand clock-phase events between the replaying run's edges,
// silently dropping injections; refuse instead. Traces with an unknown
// period (zero) skip the clock check.
func (r *Replay) CheckCompatible(width, height int, period sim.Ticks) error {
	if r.trace.Width != width || r.trace.Height != height {
		return fmt.Errorf("workload: trace was recorded on a %dx%d torus, replaying on %dx%d",
			r.trace.Width, r.trace.Height, width, height)
	}
	if r.trace.Period != 0 && r.trace.Period != period {
		return fmt.Errorf("workload: trace was recorded on a %d-tick router clock, replaying on %d",
			r.trace.Period, period)
	}
	return nil
}

// Bind pre-schedules every event-phase injection at its exact tick.
// Scheduling happens here, before the run starts, so these events carry
// the lowest sequence numbers at their tick and run at the head of the
// event phase — before link arrivals and deliveries — mirroring where
// response creations sat in the recorded run relative to the injection
// queues they touch.
func (r *Replay) Bind(env *Env) {
	r.env = env
	for i := range r.trace.Events {
		e := r.trace.Events[i]
		if e.Clocked {
			continue
		}
		env.Eng.Schedule(e.At, func() { r.inject(e) })
	}
}

// Tick injects the clock-phase events recorded at this tick, in recorded
// order (the recorded order is the per-node demand order of the original
// generator's tick).
func (r *Replay) Tick(now sim.Ticks) {
	for r.next < len(r.trace.Events) {
		e := r.trace.Events[r.next]
		if !e.Clocked {
			r.next++
			continue
		}
		if e.At > now {
			return
		}
		r.next++
		if e.At == now {
			r.inject(e)
		}
		// Clocked events with At < now belong to ticks this run never
		// dispatched (possible only if replaying on a different clock);
		// skip them rather than inject late.
	}
}

func (r *Replay) inject(e Event) {
	p := r.env.NewPacket(e.Class, e.Src, e.Dst, 0)
	r.env.Enqueue(e.Node, e.In, p)
	r.injected++
}

// Start is never called: replay runs pair the model with the silent
// arrival process.
func (r *Replay) Start(topology.Node, sim.Ticks) {
	panic("workload: Replay.Start called; replay runs must use the silent process")
}

func (r *Replay) Deliver(p *packet.Packet, at sim.Ticks) { r.delivered++ }

// InFlight returns injected-but-undelivered packets.
func (r *Replay) InFlight() int { return int(r.injected - r.delivered) }

// Injected returns how many trace events have been re-injected so far.
func (r *Replay) Injected() int64 { return r.injected }

package workload

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
)

func sampleTrace() *Trace {
	return &Trace{
		Width: 4, Height: 4, Period: 10,
		Label: "kind=SPAA-rotary pattern=random rate=0.02",
		Events: []Event{
			{At: 10, Clocked: true, Node: 3, In: ports.InCache, Class: packet.Request, Src: 3, Dst: 9},
			{At: 743, Clocked: false, Node: 9, In: ports.InMC1, Class: packet.BlockResponse, Src: 9, Dst: 3},
			{At: 743, Clocked: false, Node: 9, In: ports.InMC0, Class: packet.Forward, Src: 9, Dst: 12},
			{At: 800, Clocked: true, Node: 0, In: ports.InIO, Class: packet.ReadIO, Src: 0, Dst: 15},
		},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	want := sampleTrace()
	var buf bytes.Buffer
	if err := want.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip changed the trace:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	want := sampleTrace()
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("file round trip changed the trace")
	}
}

func TestTraceEmptyLabelRoundTrip(t *testing.T) {
	want := &Trace{Width: 2, Height: 2}
	var buf bytes.Buffer
	if err := want.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "" || len(got.Events) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestTraceRejectsBadInput(t *testing.T) {
	for name, text := range map[string]string{
		"wrong magic":    "not-a-trace 1\ntorus 4 4\nperiod 10\nlabel \nevents 0\n",
		"future version": "alpha21364-trace 99\ntorus 4 4\nperiod 10\nlabel \nevents 0\n",
		"tiny torus":     "alpha21364-trace 1\ntorus 1 1\nperiod 10\nlabel \nevents 0\n",
		"missing period": "alpha21364-trace 1\ntorus 4 4\nlabel \nevents 0\n",
		"bad period":     "alpha21364-trace 1\ntorus 4 4\nperiod -3\nlabel \nevents 0\n",
		"truncated":      "alpha21364-trace 1\ntorus 4 4\nperiod 10\nlabel \nevents 2\n10 1 0 4 0 0 1\n",
		"out of order":   "alpha21364-trace 1\ntorus 4 4\nperiod 10\nlabel \nevents 2\n10 1 0 4 0 0 1\n5 1 0 4 0 0 1\n",
		"bad node":       "alpha21364-trace 1\ntorus 4 4\nperiod 10\nlabel \nevents 1\n10 1 99 4 0 0 1\n",
		"network port":   "alpha21364-trace 1\ntorus 4 4\nperiod 10\nlabel \nevents 1\n10 1 0 2 0 0 1\n",
		"bad class":      "alpha21364-trace 1\ntorus 4 4\nperiod 10\nlabel \nevents 1\n10 1 0 4 42 0 1\n",
	} {
		if _, err := ReadTrace(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted invalid trace", name)
		}
	}
}

func TestReadTraceFileMissing(t *testing.T) {
	if _, err := ReadTraceFile(filepath.Join(t.TempDir(), "nope.trace")); err == nil {
		t.Fatal("accepted missing file")
	}
}

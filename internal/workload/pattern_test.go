package workload

import (
	"strings"
	"testing"

	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
)

// allPatterns builds every named pattern on the torus, skipping the
// bit-permutation patterns when the node count is not a power of two.
func allPatterns(t *testing.T, torus topology.Torus) []Pattern {
	t.Helper()
	_, pow2 := torus.BitWidth()
	var out []Pattern
	for _, name := range PatternNames() {
		if !pow2 && (name == "bit-reversal" || name == "perfect-shuffle") {
			continue
		}
		p, err := NewPattern(name, torus)
		if err != nil {
			t.Fatalf("NewPattern(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewPattern(%q).Name() = %q", name, p.Name())
		}
		out = append(out, p)
	}
	return out
}

// TestPatternsInRange is the basic safety property: every pattern maps
// every source to a node inside the torus, on square, rectangular,
// power-of-two, and odd-sized machines.
func TestPatternsInRange(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {8, 8}, {2, 8}, {5, 3}, {7, 2}} {
		torus := topology.NewTorus(dims[0], dims[1])
		rng := sim.NewRNG(11)
		for _, p := range allPatterns(t, torus) {
			for src := 0; src < torus.Nodes(); src++ {
				for draw := 0; draw < 8; draw++ {
					d := p.Dest(topology.Node(src), rng)
					if int(d) < 0 || int(d) >= torus.Nodes() {
						t.Fatalf("%dx%d %s: Dest(%d) = %d outside [0, %d)",
							dims[0], dims[1], p.Name(), src, d, torus.Nodes())
					}
				}
			}
		}
	}
}

// TestPermutationBijections checks that the deterministic patterns are
// bijections where they promise to be: bit-reversal and perfect-shuffle
// on power-of-two tori, transpose on square tori, tornado and neighbor on
// every torus.
func TestPermutationBijections(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {8, 8}, {2, 8}, {5, 3}, {6, 4}} {
		torus := topology.NewTorus(dims[0], dims[1])
		_, pow2 := torus.BitWidth()
		square := dims[0] == dims[1]
		var perms []Pattern
		if pow2 {
			perms = append(perms, NewBitReversal(torus), NewPerfectShuffle(torus))
		}
		if square {
			perms = append(perms, NewTranspose(torus))
		}
		perms = append(perms, NewTornado(torus), NewNeighbor(torus))
		for _, p := range perms {
			seen := make(map[topology.Node]topology.Node, torus.Nodes())
			for src := 0; src < torus.Nodes(); src++ {
				d := p.Dest(topology.Node(src), nil) // permutations must not draw
				if prev, dup := seen[d]; dup {
					t.Errorf("%dx%d %s: %d and %d both map to %d",
						dims[0], dims[1], p.Name(), prev, src, d)
				}
				seen[d] = topology.Node(src)
			}
			if len(seen) != torus.Nodes() {
				t.Errorf("%dx%d %s: image has %d of %d nodes",
					dims[0], dims[1], p.Name(), len(seen), torus.Nodes())
			}
		}
	}
}

// TestPermutationsAreStable pins the permutation images on a 4x4 torus so
// a silent change to a pattern (which would silently shift every figure)
// fails loudly.
func TestPermutationsAreStable(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	for _, tc := range []struct {
		pattern Pattern
		want    []topology.Node
	}{
		{NewBitReversal(torus), []topology.Node{0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15}},
		{NewPerfectShuffle(torus), []topology.Node{0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15}},
		{NewTranspose(torus), []topology.Node{0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15}},
		{NewTornado(torus), []topology.Node{5, 6, 7, 4, 9, 10, 11, 8, 13, 14, 15, 12, 1, 2, 3, 0}},
		{NewNeighbor(torus), []topology.Node{1, 2, 3, 0, 5, 6, 7, 4, 9, 10, 11, 8, 13, 14, 15, 12}},
	} {
		for src, want := range tc.want {
			if got := tc.pattern.Dest(topology.Node(src), nil); got != want {
				t.Errorf("%s(%d) = %d, want %d", tc.pattern.Name(), src, got, want)
			}
		}
	}
}

func TestUniformAvoidsSelf(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	p := NewUniform(torus)
	rng := sim.NewRNG(3)
	for i := 0; i < 2000; i++ {
		src := topology.Node(i % torus.Nodes())
		if d := p.Dest(src, rng); d == src {
			t.Fatalf("uniform drew src %d as its own destination", src)
		}
	}
}

func TestHotspotConcentratesTraffic(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	target := topology.Node(27)
	h, err := NewHotspot(torus, []topology.Node{target}, nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(5)
	hits := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if h.Dest(topology.Node(i%torus.Nodes()), rng) == target {
			hits++
		}
	}
	frac := float64(hits) / draws
	// 50% targeted plus the uniform share's occasional hits.
	if frac < 0.45 || frac > 0.58 {
		t.Errorf("hotspot fraction %.3f, want ~0.50", frac)
	}
}

func TestHotspotWeights(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	targets := []topology.Node{1, 2}
	h, err := NewHotspot(torus, targets, []float64{3, 1}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(9)
	counts := map[topology.Node]int{}
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[h.Dest(0, rng)]++
	}
	if counts[1]+counts[2] != draws {
		t.Fatalf("fraction 1.0 leaked %d draws off the hotspots", draws-counts[1]-counts[2])
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio %.2f, want ~3.0", ratio)
	}
}

func TestHotspotValidation(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	if _, err := NewHotspot(torus, nil, nil, 0.5); err == nil {
		t.Error("accepted empty targets")
	}
	if _, err := NewHotspot(torus, []topology.Node{99}, nil, 0.5); err == nil {
		t.Error("accepted out-of-torus target")
	}
	if _, err := NewHotspot(torus, []topology.Node{1}, nil, 1.5); err == nil {
		t.Error("accepted fraction > 1")
	}
	if _, err := NewHotspot(torus, []topology.Node{1}, []float64{-1}, 0.5); err == nil {
		t.Error("accepted negative weight")
	}
	if _, err := NewHotspot(torus, []topology.Node{1}, []float64{1, 2}, 0.5); err == nil {
		t.Error("accepted mismatched weights length")
	}
}

func TestNewPatternAliasesAndErrors(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	for alias, canon := range map[string]string{
		"random": "uniform", "Shuffle": "perfect-shuffle", "UNIFORM": "uniform",
		" Tornado ": "tornado",
	} {
		p, err := NewPattern(alias, torus)
		if err != nil {
			t.Errorf("NewPattern(%q): %v", alias, err)
			continue
		}
		if p.Name() != canon {
			t.Errorf("NewPattern(%q) = %q, want %q", alias, p.Name(), canon)
		}
	}
	_, err := NewPattern("zipf", torus)
	if err == nil {
		t.Fatal("accepted unknown pattern")
	}
	for _, name := range PatternNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

// TestNewPatternRejectsBitPatternsOnNonPowerOfTwo: construction must
// fail cleanly instead of panicking mid-simulation.
func TestNewPatternRejectsBitPatternsOnNonPowerOfTwo(t *testing.T) {
	torus := topology.NewTorus(5, 3)
	for _, name := range []string{"bit-reversal", "perfect-shuffle"} {
		if _, err := NewPattern(name, torus); err == nil {
			t.Errorf("NewPattern(%q) accepted a 15-node torus", name)
		}
	}
}

package workload

import (
	"fmt"

	"alpha21364/internal/sim"
)

// cumDist is a normalized cumulative weight distribution; index i is the
// probability of drawing an index <= i.
type cumDist []float64

// newCumDist normalizes positive weights into a cumulative distribution.
func newCumDist(weights []float64) (cumDist, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("workload: empty weight list")
	}
	var total float64
	for _, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("workload: weights must be positive, got %g", w)
		}
		total += w
	}
	cum := make(cumDist, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1 // guard against rounding
	return cum, nil
}

// draw returns a weight-proportional index, consuming one Float64.
func (c cumDist) draw(rng *sim.RNG) int {
	u := rng.Float64()
	for i, v := range c {
		if u < v {
			return i
		}
	}
	return len(c) - 1
}

package workload

import (
	"fmt"
	"strings"

	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
)

// Env is the injection environment the Generator hands to its Model: how
// to mint packets, queue them at processor-side ports, schedule future
// protocol steps, and report transaction completion. Models must go
// through the Env for every packet so that packet ids, statistics, and
// trace recording stay consistent.
type Env struct {
	Torus   topology.Torus
	Pattern Pattern
	RNG     *sim.RNG
	Eng     *sim.Engine
	// RouterPeriod is the router clock period in ticks.
	RouterPeriod sim.Ticks
	// NewPacket mints the next packet (sequential id, creation time now,
	// stats and trace recording applied) without enqueuing it.
	NewPacket func(cl packet.Class, src, dst topology.Node, txnID uint64) *packet.Packet
	// Enqueue queues a packet at a node's processor-side injection port
	// and attempts the injection immediately.
	Enqueue func(node topology.Node, in ports.In, p *packet.Packet)
	// Complete reports that one of requester's transactions finished,
	// closing the outstanding-limit loop.
	Complete func(requester topology.Node)
}

// Model defines what a transaction is: which packets a new demand injects
// and how deliveries advance the protocol.
type Model interface {
	// Name returns the model's canonical parse name.
	Name() string
	// Bind hands the model its environment; called once before the run.
	Bind(env *Env)
	// Start opens a transaction for a new demand at requester.
	Start(requester topology.Node, now sim.Ticks)
	// Deliver advances bookkeeping when a packet reaches its destination.
	Deliver(p *packet.Packet, at sim.Ticks)
	// Tick runs once per router cycle before pending-injection retries
	// (the replay model injects from its trace here; others no-op).
	Tick(now sim.Ticks)
	// InFlight returns the number of open transactions.
	InFlight() int
}

// coherenceTxn tracks one coherence transaction.
type coherenceTxn struct {
	requester topology.Node
	home      topology.Node
	owner     topology.Node // 3-hop only
	twoHop    bool
}

// Coherence is the paper's §4.2 transaction model: a mix of 2-hop
// transactions (3-flit request to the home node, 19-flit block response
// after the memory latency) and 3-hop transactions (request, 3-flit
// forward to the owner after the directory lookup, block response after
// the owner's L2 latency).
type Coherence struct {
	// TwoHopFraction is the share of 2-hop transactions (paper: 0.7).
	TwoHopFraction float64
	// MemoryLatency is the home memory response time (paper: 73 ns).
	MemoryLatency sim.Ticks
	// L2LatencyCycles is the owner cache's response time (paper: 25
	// cycles).
	L2LatencyCycles int

	env       *Env
	l2Latency sim.Ticks
	txns      map[uint64]*coherenceTxn
	freeTxns  []*coherenceTxn
	nextTxn   uint64
	// memH and ownerH are the registered protocol-step handlers: the home
	// memory/directory response and the owner's L2 response. Both carry
	// only the transaction id, so no packet is captured past its delivery.
	memH   sim.HandlerID
	ownerH sim.HandlerID
}

// NewCoherence returns the paper's coherence model with its default
// parameters (70% 2-hop, 73 ns memory, 25-cycle L2).
func NewCoherence() *Coherence {
	return &Coherence{
		TwoHopFraction:  0.7,
		MemoryLatency:   sim.FromNS(73),
		L2LatencyCycles: 25,
	}
}

func (c *Coherence) Name() string { return "coherence" }

func (c *Coherence) Bind(env *Env) {
	c.env = env
	c.l2Latency = sim.Ticks(c.L2LatencyCycles) * env.RouterPeriod
	c.txns = make(map[uint64]*coherenceTxn)
	c.memH = env.Eng.RegisterHandler(c.memoryStep)
	c.ownerH = env.Eng.RegisterHandler(c.ownerStep)
}

// newTxn draws a transaction from the free pool.
func (c *Coherence) newTxn() *coherenceTxn {
	if n := len(c.freeTxns); n > 0 {
		t := c.freeTxns[n-1]
		c.freeTxns = c.freeTxns[:n-1]
		*t = coherenceTxn{}
		return t
	}
	return &coherenceTxn{}
}

func (c *Coherence) InFlight() int { return len(c.txns) }

func (c *Coherence) Tick(sim.Ticks) {}

// Start opens a transaction and queues its request at the requester's
// cache port. The RNG draw order — destination, then the 2-hop/3-hop
// coin, then the owner — matches the pre-workload traffic generator
// bit for bit.
func (c *Coherence) Start(requester topology.Node, now sim.Ticks) {
	c.nextTxn++
	t := c.newTxn()
	t.requester = requester
	t.home = c.env.Pattern.Dest(requester, c.env.RNG)
	t.twoHop = c.env.RNG.Bernoulli(c.TwoHopFraction)
	if !t.twoHop {
		t.owner = topology.Node(c.env.RNG.Intn(c.env.Torus.Nodes()))
	}
	c.txns[c.nextTxn] = t
	req := c.env.NewPacket(packet.Request, requester, t.home, c.nextTxn)
	c.env.Enqueue(requester, ports.InCache, req)
}

// Deliver advances the owning transaction when a packet reaches its
// destination's local ports. Protocol steps are posted through the
// registered handlers with only the transaction id as payload — the
// delivered packet may be recycled by its arena the moment Deliver
// returns.
func (c *Coherence) Deliver(p *packet.Packet, at sim.Ticks) {
	t := c.txns[p.TxnID]
	if t == nil {
		return // packet outside transaction bookkeeping (replays, tests)
	}
	switch p.Class {
	case packet.Request:
		// Home memory (or the directory lookup) responds after 73 ns.
		c.env.Eng.Post(at+c.MemoryLatency, c.memH, sim.EventArgs{A: int64(p.TxnID)})
	case packet.Forward:
		// Owner's L2 supplies the block after 25 cycles.
		c.env.Eng.Post(at+c.l2Latency, c.ownerH, sim.EventArgs{A: int64(p.TxnID)})
	case packet.BlockResponse:
		delete(c.txns, p.TxnID)
		c.freeTxns = append(c.freeTxns, t)
		c.env.Complete(t.requester)
	}
}

// memoryStep is the home node's response to a request: the cache block
// for 2-hop transactions, the forward to the owner for 3-hop ones.
func (c *Coherence) memoryStep(args sim.EventArgs) {
	txnID := uint64(args.A)
	t := c.txns[txnID]
	if t == nil {
		return // transaction gone (generator stopped mid-protocol)
	}
	if t.twoHop {
		resp := c.env.NewPacket(packet.BlockResponse, t.home, t.requester, txnID)
		c.env.Enqueue(t.home, mcPort(txnID), resp)
	} else {
		fwd := c.env.NewPacket(packet.Forward, t.home, t.owner, txnID)
		c.env.Enqueue(t.home, mcPort(txnID), fwd)
	}
}

// ownerStep is the 3-hop owner's block response.
func (c *Coherence) ownerStep(args sim.EventArgs) {
	txnID := uint64(args.A)
	t := c.txns[txnID]
	if t == nil {
		return
	}
	resp := c.env.NewPacket(packet.BlockResponse, t.owner, t.requester, txnID)
	c.env.Enqueue(t.owner, ports.InCache, resp)
}

// mcPort interleaves response injections across the two memory controller
// input ports.
func mcPort(txnID uint64) ports.In {
	if txnID%2 == 0 {
		return ports.InMC0
	}
	return ports.InMC1
}

// SizeMix is one entry of a datagram packet-size mix: a packet class
// (which fixes the flit count) and its relative weight.
type SizeMix struct {
	Class  packet.Class
	Weight float64
}

// Datagram is an open-loop model: each demand injects a single packet —
// class drawn from a configurable size mix — at the cache port and the
// transaction completes immediately, so the outstanding-transaction cap
// never throttles injection (classic open-loop network evaluation).
type Datagram struct {
	mix []SizeMix
	cum cumDist

	env       *Env
	delivered int64
	inFlight  int64
}

// DefaultSizeMix mirrors the paper's flit balance: 70% short 3-flit
// packets, 30% full 19-flit cache-block packets.
func DefaultSizeMix() []SizeMix {
	return []SizeMix{
		{Class: packet.Request, Weight: 0.7},
		{Class: packet.BlockResponse, Weight: 0.3},
	}
}

// NewDatagram returns an open-loop datagram model with the given packet
// size mix (nil for DefaultSizeMix).
func NewDatagram(mix []SizeMix) (*Datagram, error) {
	if mix == nil {
		mix = DefaultSizeMix()
	}
	weights := make([]float64, len(mix))
	for i, m := range mix {
		if m.Class >= packet.NumClasses {
			return nil, fmt.Errorf("workload: datagram mix has invalid class %d", m.Class)
		}
		weights[i] = m.Weight
	}
	cum, err := newCumDist(weights)
	if err != nil {
		return nil, fmt.Errorf("datagram mix: %w", err)
	}
	return &Datagram{mix: mix, cum: cum}, nil
}

func (d *Datagram) Name() string { return "datagram" }

func (d *Datagram) Bind(env *Env) { d.env = env }

func (d *Datagram) InFlight() int { return int(d.inFlight) }

func (d *Datagram) Tick(sim.Ticks) {}

// Delivered returns the number of datagrams that reached their
// destination.
func (d *Datagram) Delivered() int64 { return d.delivered }

func (d *Datagram) Start(requester topology.Node, now sim.Ticks) {
	dst := d.env.Pattern.Dest(requester, d.env.RNG)
	cl := d.mix[d.cum.draw(d.env.RNG)].Class
	d.inFlight++
	p := d.env.NewPacket(cl, requester, dst, 0)
	d.env.Enqueue(requester, ports.InCache, p)
	// Open loop: the demand is complete once injected, so backpressure
	// never reaches the arrival process through the outstanding cap.
	d.env.Complete(requester)
}

func (d *Datagram) Deliver(p *packet.Packet, at sim.Ticks) {
	d.delivered++
	d.inFlight--
}

var modelOrder = []string{"coherence", "datagram"}

// ModelNames returns the canonical transaction-model names in listing
// order (the replay model is constructed from a trace, not by name).
func ModelNames() []string {
	out := make([]string, len(modelOrder))
	copy(out, modelOrder)
	return out
}

// CanonicalModel resolves a transaction-model name (case-insensitive, ""
// meaning coherence) to its canonical registry name without constructing
// the model; the Spec validator's counterpart to CanonicalProcess.
func CanonicalModel(name string) (string, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" {
		return "coherence", nil
	}
	for _, n := range modelOrder {
		if n == key {
			return n, nil
		}
	}
	return "", fmt.Errorf("workload: unknown transaction model %q (valid: %s)",
		name, strings.Join(modelOrder, ", "))
}

// NewModel resolves a transaction model by name (case-insensitive) with
// its default parameters.
func NewModel(name string) (Model, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "coherence":
		return NewCoherence(), nil
	case "datagram":
		d, err := NewDatagram(nil)
		if err != nil {
			panic(err) // unreachable: the default mix is valid
		}
		return d, nil
	}
	return nil, fmt.Errorf("workload: unknown transaction model %q (valid: %s)",
		name, strings.Join(modelOrder, ", "))
}

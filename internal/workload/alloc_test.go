package workload

import (
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/network"
	"alpha21364/internal/router"
	"alpha21364/internal/sim"
	"alpha21364/internal/stats"
)

// TestGeneratorInjectionAllocs pins the steady-state allocation budget of
// the whole injection path — Generator.Tick (arrival draws, coherence
// transaction opens, packet minting from the arena, injection retries),
// router traversal, link flights, and delivery bookkeeping — by running a
// loaded 2x2 network and measuring allocations per simulated window after
// warmup. The budget is near zero: the only tolerated residue is Go map
// internals in the transaction table, well under one allocation per
// router cycle.
func TestGeneratorInjectionAllocs(t *testing.T) {
	eng := sim.NewEngine()
	col := stats.NewCollector(0)
	rcfg := router.DefaultConfig(core.KindSPAABase)
	rcfg.Seed = 1
	net, err := network.New(network.Config{Width: 2, Height: 2, Router: rcfg}, eng, col)
	if err != nil {
		t.Fatal(err)
	}
	gen := New(Config{
		Process:        NewBernoulli(0.05),
		MaxOutstanding: 16,
		Seed:           1,
	}, net, eng, col)
	eng.AddClock(rcfg.RouterPeriod, 0, gen)

	// Warm: arena, slabs, event free list, pending queues, txn pool.
	const window = 64 * 10 // 64 router cycles in ticks
	until := sim.Ticks(2000 * 10)
	eng.Run(until)

	allocs := testing.AllocsPerRun(100, func() {
		until += window
		eng.Run(until)
	})
	perCycle := allocs / 64
	if perCycle > 1 {
		t.Fatalf("steady-state injection allocates %.2f/router-cycle (%.1f per %d-cycle window), want <= 1",
			perCycle, allocs, 64)
	}
	if gen.Completed() == 0 {
		t.Fatal("no transactions completed; the workload never ran")
	}
}

package workload

import (
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/network"
	"alpha21364/internal/router"
	"alpha21364/internal/sim"
	"alpha21364/internal/stats"
	"alpha21364/internal/topology"
)

// TestGeneratorInjectionAllocs pins the steady-state allocation budget of
// the whole injection path — Generator.Tick (arrival draws, coherence
// transaction opens, packet minting from the arena, injection retries),
// router traversal, link flights, and delivery bookkeeping — by running a
// loaded 2x2 network and measuring allocations per simulated window after
// warmup. The budget is near zero: the only tolerated residue is Go map
// internals in the transaction table, well under one allocation per
// router cycle.
func TestGeneratorInjectionAllocs(t *testing.T) {
	eng := sim.NewEngine()
	col := stats.NewCollector(0)
	rcfg := router.DefaultConfig(core.KindSPAABase)
	rcfg.Seed = 1
	net, err := network.New(network.Config{Width: 2, Height: 2, Router: rcfg}, eng, col)
	if err != nil {
		t.Fatal(err)
	}
	gen := New(Config{
		Process:        NewBernoulli(0.05),
		MaxOutstanding: 16,
		Seed:           1,
	}, net, eng, col)
	eng.AddClock(rcfg.RouterPeriod, 0, gen)

	// Warm: arena, slabs, event free list, pending queues, txn pool.
	const window = 64 * 10 // 64 router cycles in ticks
	until := sim.Ticks(2000 * 10)
	eng.Run(until)

	allocs := testing.AllocsPerRun(100, func() {
		until += window
		eng.Run(until)
	})
	perCycle := allocs / 64
	if perCycle > 1 {
		t.Fatalf("steady-state injection allocates %.2f/router-cycle (%.1f per %d-cycle window), want <= 1",
			perCycle, allocs, 64)
	}
	if gen.Completed() == 0 {
		t.Fatal("no transactions completed; the workload never ran")
	}
}

// TestShardedInjectionAllocs is TestGeneratorInjectionAllocs over the
// spatially-sharded assembly: hub + per-band member engines, the
// wavefront edge, and the PostBuffer flush must hold the same near-zero
// steady-state budget (pooled event nodes, retained buffer capacity; the
// only tolerated residue is the transaction table's map internals).
func TestShardedInjectionAllocs(t *testing.T) {
	hub := sim.NewEngine()
	col := stats.NewCollector(0)
	rcfg := router.DefaultConfig(core.KindSPAABase)
	rcfg.Seed = 1
	const w, h, shards = 4, 4, 2
	part := topology.PartitionRows(topology.NewTorus(w, h), shards)
	members := make([]*sim.Engine, shards)
	for i := range members {
		members[i] = sim.NewEngine()
	}
	pb := sim.NewPostBuffer(w * h)
	net, err := network.NewSharded(network.Config{Width: w, Height: h, Router: rcfg}, hub, members, part, pb, col)
	if err != nil {
		t.Fatal(err)
	}
	gen := New(Config{
		Process:        NewBernoulli(0.05),
		MaxOutstanding: 16,
		Seed:           1,
	}, net, hub, col)
	hub.AddClock(rcfg.RouterPeriod, 0, gen)
	sg := sim.NewShardGroup(hub, members, pb, net.Lookahead())
	sg.SetEdge(rcfg.RouterPeriod, 0, net.TickShard)
	defer sg.Close()

	const window = 64 * 10
	until := sim.Ticks(2000 * 10)
	sg.Run(until)

	allocs := testing.AllocsPerRun(100, func() {
		until += window
		sg.Run(until)
	})
	perCycle := allocs / 64
	if perCycle > 1 {
		t.Fatalf("sharded steady state allocates %.2f/router-cycle (%.1f per %d-cycle window), want <= 1",
			perCycle, allocs, 64)
	}
	if gen.Completed() == 0 {
		t.Fatal("no transactions completed; the workload never ran")
	}
}

package workload_test

// metamorphic_test.go exploits the torus's vertex-transitivity as a test
// oracle: relabeling every node by a torus automorphism (a translation)
// conjugates the workload but leaves the physical network identical, so
// for a rotation-invariant pattern like uniform traffic the aggregate
// throughput and latency statistics must be statistically unchanged —
// only the RNG-level packet identities move. A simulator whose routing,
// arbitration, or credit accounting silently favored particular node
// coordinates would break this relation even while every conventional
// regression test passed.

import (
	"math"
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/network"
	"alpha21364/internal/router"
	"alpha21364/internal/sim"
	"alpha21364/internal/stats"
	"alpha21364/internal/topology"
	"alpha21364/internal/workload"
)

// conjugated relabels an inner pattern by a node bijection: destinations
// are drawn as the rotated source would draw them, then rotated back.
// For any automorphism of the torus this preserves the inner pattern's
// destination distribution exactly.
type conjugated struct {
	inner    workload.Pattern
	fwd, inv func(topology.Node) topology.Node
}

func (c conjugated) Name() string { return "conjugated-" + c.inner.Name() }

func (c conjugated) Dest(src topology.Node, rng *sim.RNG) topology.Node {
	return c.inv(c.inner.Dest(c.fwd(src), rng))
}

// translation returns the torus automorphism shifting every node by
// (dx, dy), and its inverse.
func translation(t topology.Torus, dx, dy int) (fwd, inv func(topology.Node) topology.Node) {
	shift := func(dx, dy int) func(topology.Node) topology.Node {
		return func(n topology.Node) topology.Node {
			c := t.Coord(n)
			c.X = ((c.X+dx)%t.Width + t.Width) % t.Width
			c.Y = ((c.Y+dy)%t.Height + t.Height) % t.Height
			return t.Node(c)
		}
	}
	return shift(dx, dy), shift(-dx, -dy)
}

// runPattern executes one small timing simulation under the given
// pattern and returns its aggregate BNF point.
func runPattern(t *testing.T, pat workload.Pattern, cycles int) stats.Point {
	t.Helper()
	rcfg := router.DefaultConfig(core.KindSPAARotary)
	end := sim.Ticks(cycles) * rcfg.RouterPeriod
	eng := sim.NewEngine()
	col := stats.NewCollector(end / 5)
	net, err := network.New(network.Config{Width: 4, Height: 4, Router: rcfg}, eng, col)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := workload.NewProcess("bernoulli", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.New(workload.Config{
		Pattern: pat, Process: proc, MaxOutstanding: 16, Seed: 9,
	}, net, eng, col)
	eng.AddClock(rcfg.RouterPeriod, 0, gen)
	eng.Run(end)
	net.CheckInvariants()
	return col.BNF(net.Nodes(), end)
}

// TestTorusAutomorphismInvariance is the metamorphic relation: uniform
// traffic conjugated by a torus translation must produce statistically
// indistinguishable aggregate throughput and latency. The tolerance
// absorbs the RNG-level resampling (the conjugated run draws different
// packets); systematic coordinate bias would blow far past it.
func TestTorusAutomorphismInvariance(t *testing.T) {
	const cycles = 40000
	torus := topology.NewTorus(4, 4)
	uniform := workload.NewUniform(torus)
	base := runPattern(t, uniform, cycles)
	if base.Packets == 0 {
		t.Fatal("baseline run delivered nothing")
	}
	for _, rot := range []struct{ dx, dy int }{{1, 0}, {0, 2}, {3, 1}} {
		fwd, inv := translation(torus, rot.dx, rot.dy)
		got := runPattern(t, conjugated{inner: uniform, fwd: fwd, inv: inv}, cycles)
		if relDiff(got.Throughput, base.Throughput) > 0.10 {
			t.Errorf("rotation (%d,%d): throughput %.4f diverged from %.4f beyond 10%%",
				rot.dx, rot.dy, got.Throughput, base.Throughput)
		}
		if relDiff(got.AvgLatencyNS, base.AvgLatencyNS) > 0.10 {
			t.Errorf("rotation (%d,%d): avg latency %.1f ns diverged from %.1f ns beyond 10%%",
				rot.dx, rot.dy, got.AvgLatencyNS, base.AvgLatencyNS)
		}
		// The relabeling must actually have changed the microscopic run
		// (otherwise the relation tested nothing): packet-level identity
		// would make the two runs equal to the last ulp.
		if got.Packets == base.Packets && got.AvgLatencyNS == base.AvgLatencyNS {
			t.Errorf("rotation (%d,%d): run is microscopically identical; the conjugation was a no-op",
				rot.dx, rot.dy)
		}
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

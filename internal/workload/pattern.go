// Package workload decomposes a synthetic workload into three orthogonal,
// independently pluggable pieces:
//
//   - a Pattern draws request destinations (the spatial axis): the paper's
//     uniform, bit-reversal, and perfect-shuffle patterns plus transpose,
//     tornado, nearest-neighbor, and a weighted hotspot;
//   - a Process decides when new transaction demands arrive (the temporal
//     axis): the paper's Bernoulli process, a two-state Markov-modulated
//     bursty on/off process, and a deterministic-rate process;
//   - a Model defines what a transaction is (the protocol axis): the
//     paper's 2-hop/3-hop coherence mix, an open-loop datagram model with
//     a configurable packet-size mix, and a trace-replay model.
//
// The Generator composes one of each over the timing-model network and is
// what internal/traffic (the paper's fixed §4.2 workload) now adapts. Any
// run can record its injection stream to a versioned Trace; replaying the
// trace re-injects the identical packet sequence under any arbiter.
package workload

import (
	"fmt"
	"strings"

	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
)

// Pattern draws the destination for a new request (the spatial half of a
// workload). Implementations must be deterministic given the RNG stream:
// equal seeds and call sequences yield equal destinations.
type Pattern interface {
	// Name returns the pattern's canonical parse name.
	Name() string
	// Dest draws the destination of a request from src. Permutation
	// patterns ignore the RNG; random patterns must draw from it (and only
	// from it) so runs are reproducible.
	Dest(src topology.Node, rng *sim.RNG) topology.Node
}

// uniformPattern draws destinations uniformly over the other nodes.
// (Permutation patterns may map a node to itself; such requests are
// local-memory accesses that still traverse the router from the cache
// port to the MC port.)
type uniformPattern struct {
	torus topology.Torus
}

func (uniformPattern) Name() string { return "uniform" }

func (u uniformPattern) Dest(src topology.Node, rng *sim.RNG) topology.Node {
	for {
		d := topology.Node(rng.Intn(u.torus.Nodes()))
		if d != src || u.torus.Nodes() == 1 {
			return d
		}
	}
}

// NewUniform returns the uniform-random pattern (the paper's "random"
// traffic).
func NewUniform(t topology.Torus) Pattern { return uniformPattern{torus: t} }

// permPattern is a deterministic permutation of the node ids.
type permPattern struct {
	name string
	perm func(topology.Node) topology.Node
}

func (p permPattern) Name() string { return p.name }

func (p permPattern) Dest(src topology.Node, _ *sim.RNG) topology.Node { return p.perm(src) }

// NewBitReversal returns the paper's bit-reversal permutation pattern
// (power-of-two node counts only).
func NewBitReversal(t topology.Torus) Pattern {
	return permPattern{name: "bit-reversal", perm: t.BitReversal}
}

// NewPerfectShuffle returns the paper's perfect-shuffle permutation
// pattern (power-of-two node counts only).
func NewPerfectShuffle(t topology.Torus) Pattern {
	return permPattern{name: "perfect-shuffle", perm: t.PerfectShuffle}
}

// NewTranspose returns the matrix-transpose permutation pattern
// (x, y) -> (y, x), a bijection on square tori.
func NewTranspose(t topology.Torus) Pattern {
	return permPattern{name: "transpose", perm: t.Transpose}
}

// NewTornado returns the tornado permutation pattern: every node sends
// just under half-way around each torus ring, the adversarial case for
// wrap-link load.
func NewTornado(t topology.Torus) Pattern {
	return permPattern{name: "tornado", perm: t.Tornado}
}

// NewNeighbor returns the nearest-neighbor permutation pattern
// (x, y) -> (x+1, y), the best case for locality.
func NewNeighbor(t topology.Torus) Pattern {
	return permPattern{name: "neighbor", perm: t.NeighborShift}
}

// Hotspot sends a fraction of the traffic to a weighted set of hotspot
// nodes and the rest uniformly over the other nodes — the classic
// contended-home-node scenario.
type Hotspot struct {
	uniform uniformPattern
	// Fraction in [0, 1] of requests directed at a hotspot.
	fraction float64
	targets  []topology.Node
	cum      cumDist
}

// NewHotspot returns a hotspot pattern. fraction of the requests go to
// one of the targets (chosen by weight); the remainder are uniform over
// the other nodes. weights may be nil for equal weighting; otherwise it
// must match targets in length, with positive entries.
func NewHotspot(t topology.Torus, targets []topology.Node, weights []float64, fraction float64) (*Hotspot, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("workload: hotspot needs at least one target")
	}
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("workload: hotspot fraction %g outside [0, 1]", fraction)
	}
	for _, n := range targets {
		if int(n) < 0 || int(n) >= t.Nodes() {
			return nil, fmt.Errorf("workload: hotspot target %d outside the %d-node torus", n, t.Nodes())
		}
	}
	if weights == nil {
		weights = make([]float64, len(targets))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(targets) {
		return nil, fmt.Errorf("workload: %d hotspot weights for %d targets", len(weights), len(targets))
	}
	cum, err := newCumDist(weights)
	if err != nil {
		return nil, fmt.Errorf("hotspot: %w", err)
	}
	return &Hotspot{uniform: uniformPattern{torus: t}, fraction: fraction, targets: targets, cum: cum}, nil
}

// DefaultHotspot returns the default hotspot: the center node draws 25%
// of all requests.
func DefaultHotspot(t topology.Torus) *Hotspot {
	center := t.Node(topology.Coord{X: t.Width / 2, Y: t.Height / 2})
	h, err := NewHotspot(t, []topology.Node{center}, nil, 0.25)
	if err != nil {
		panic(err) // unreachable: the default arguments are valid
	}
	return h
}

func (h *Hotspot) Name() string { return "hotspot" }

// Targets returns the hotspot nodes.
func (h *Hotspot) Targets() []topology.Node { return h.targets }

// Dest implements Pattern.
func (h *Hotspot) Dest(src topology.Node, rng *sim.RNG) topology.Node {
	if rng.Bernoulli(h.fraction) {
		return h.targets[h.cum.draw(rng)]
	}
	return h.uniform.Dest(src, rng)
}

// patternMakers maps canonical pattern names (plus aliases) to factories,
// in listing order.
var patternOrder = []string{
	"uniform", "bit-reversal", "perfect-shuffle", "transpose", "tornado", "neighbor", "hotspot",
}

var patternAliases = map[string]string{
	"random":  "uniform", // the paper's name for uniform traffic
	"shuffle": "perfect-shuffle",
}

// PatternNames returns the canonical pattern names in listing order.
func PatternNames() []string {
	out := make([]string, len(patternOrder))
	copy(out, patternOrder)
	return out
}

// NewPattern resolves a pattern by name (case-insensitive; "random" and
// "shuffle" are accepted aliases) on the given torus. The hotspot pattern
// is returned with its defaults; build custom hotspots with NewHotspot.
func NewPattern(name string, t topology.Torus) (Pattern, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := patternAliases[key]; ok {
		key = canon
	}
	switch key {
	case "uniform":
		return NewUniform(t), nil
	case "bit-reversal", "perfect-shuffle":
		if _, ok := t.BitWidth(); !ok {
			return nil, fmt.Errorf("workload: %s requires a power-of-two node count, got %dx%d",
				key, t.Width, t.Height)
		}
		if key == "bit-reversal" {
			return NewBitReversal(t), nil
		}
		return NewPerfectShuffle(t), nil
	case "transpose":
		return NewTranspose(t), nil
	case "tornado":
		return NewTornado(t), nil
	case "neighbor":
		return NewNeighbor(t), nil
	case "hotspot":
		return DefaultHotspot(t), nil
	}
	return nil, fmt.Errorf("workload: unknown pattern %q (valid: %s)",
		name, strings.Join(patternOrder, ", "))
}

package workload

import (
	"fmt"
	"strings"

	"alpha21364/internal/sim"
)

// Process is the temporal arrival law: how many new transaction demands
// arrive at a node on one router cycle. A Process may keep per-node state
// (burst phases, rate accumulators); Bind sizes that state before the run.
// Implementations must draw randomness only from the RNG passed to
// Arrivals so that runs are reproducible.
type Process interface {
	// Name returns the process's canonical parse name.
	Name() string
	// Rate returns the configured mean arrival rate (demands per node per
	// cycle).
	Rate() float64
	// Bind allocates per-node state; the Generator calls it once, before
	// the first Arrivals call.
	Bind(nodes int)
	// Arrivals returns the number of new demands at node on this cycle.
	Arrivals(node int, rng *sim.RNG) int
}

// Bernoulli is the paper's arrival process: one demand with probability
// rate, independently per node per cycle.
type Bernoulli struct {
	rate float64
}

// NewBernoulli returns a Bernoulli arrival process at the given rate.
func NewBernoulli(rate float64) *Bernoulli { return &Bernoulli{rate: rate} }

func (b *Bernoulli) Name() string  { return "bernoulli" }
func (b *Bernoulli) Rate() float64 { return b.rate }
func (b *Bernoulli) Bind(int)      {}

// Arrivals implements Process with exactly the RNG draw sequence of the
// pre-workload traffic generator (one Bernoulli draw per node per cycle),
// so the paper's figures are bit-identical across the refactor.
func (b *Bernoulli) Arrivals(_ int, rng *sim.RNG) int {
	if rng.Bernoulli(b.rate) {
		return 1
	}
	return 0
}

// OnOff is a two-state Markov-modulated bursty process: each node is
// independently ON (demands arrive Bernoulli at OnRate) or OFF (silent),
// with geometric sojourn times. The stationary ON fraction is
// POffOn/(POffOn+POnOff), so the long-run mean rate is that fraction
// times OnRate.
type OnOff struct {
	meanRate float64
	OnRate   float64 // arrival probability per cycle while ON
	POnOff   float64 // P(ON -> OFF) per cycle; 1/POnOff is the mean burst length
	POffOn   float64 // P(OFF -> ON) per cycle
	// state[n]: 0 = undrawn, 1 = OFF, 2 = ON. The initial state is drawn
	// from the stationary distribution on first use so there is no
	// cold-start bias.
	state []uint8
}

// DefaultBurstCycles is the mean ON-burst length of NewOnOff, in router
// cycles.
const DefaultBurstCycles = 16

// NewOnOff returns a bursty on/off process with the given long-run mean
// rate. Nodes are ON a quarter of the time in bursts averaging
// DefaultBurstCycles cycles, so the ON-state rate is 4x the mean. Above
// a mean of 0.25 the ON-state rate saturates at one demand per cycle, so
// the ON fraction rises instead, keeping the delivered mean equal to the
// requested rate (at the cost of burstiness); at a mean of 1 the process
// degenerates to always-ON. Tune the exported fields for other burst
// shapes.
func NewOnOff(rate float64) *OnOff {
	onFraction := 0.25
	if rate > onFraction {
		onFraction = rate // ON at rate 1 for a `rate` share of the time
	}
	if onFraction >= 1 {
		// Degenerate: permanently ON (POffOn 1, POnOff 0), Bernoulli at
		// the capped rate.
		return &OnOff{meanRate: rate, OnRate: 1, POnOff: 0, POffOn: 1}
	}
	pOnOff := 1.0 / DefaultBurstCycles
	// Stationary ON fraction f satisfies f = pOffOn/(pOffOn+pOnOff).
	pOffOn := pOnOff * onFraction / (1 - onFraction)
	return &OnOff{meanRate: rate, OnRate: rate / onFraction, POnOff: pOnOff, POffOn: pOffOn}
}

func (p *OnOff) Name() string  { return "onoff" }
func (p *OnOff) Rate() float64 { return p.meanRate }

func (p *OnOff) Bind(nodes int) { p.state = make([]uint8, nodes) }

func (p *OnOff) Arrivals(node int, rng *sim.RNG) int {
	if p.state == nil {
		panic("workload: OnOff.Arrivals before Bind")
	}
	if p.state[node] == 0 {
		frac := p.POffOn / (p.POffOn + p.POnOff)
		if rng.Bernoulli(frac) {
			p.state[node] = 2
		} else {
			p.state[node] = 1
		}
	}
	// Transition first, then draw: a node switching ON can burst this
	// very cycle.
	if p.state[node] == 2 {
		if rng.Bernoulli(p.POnOff) {
			p.state[node] = 1
		}
	} else if rng.Bernoulli(p.POffOn) {
		p.state[node] = 2
	}
	if p.state[node] == 2 && rng.Bernoulli(p.OnRate) {
		return 1
	}
	return 0
}

// Deterministic injects at an exact rate with no variance: each node
// accrues rate demands per cycle and fires whenever the accumulator
// crosses one. Initial credit is staggered across nodes so the network
// does not see a synchronized injection front every 1/rate cycles.
type Deterministic struct {
	rate  float64
	accum []float64
}

// NewDeterministic returns a deterministic-rate process.
func NewDeterministic(rate float64) *Deterministic { return &Deterministic{rate: rate} }

func (d *Deterministic) Name() string  { return "deterministic" }
func (d *Deterministic) Rate() float64 { return d.rate }

func (d *Deterministic) Bind(nodes int) {
	d.accum = make([]float64, nodes)
	for n := range d.accum {
		d.accum[n] = float64(n) / float64(nodes)
	}
}

func (d *Deterministic) Arrivals(node int, _ *sim.RNG) int {
	if d.accum == nil {
		panic("workload: Deterministic.Arrivals before Bind")
	}
	d.accum[node] += d.rate
	n := 0
	for d.accum[node] >= 1 {
		d.accum[node]--
		n++
	}
	return n
}

// silent is the no-arrivals process used under trace replay.
type silent struct{}

func (silent) Name() string               { return "silent" }
func (silent) Rate() float64              { return 0 }
func (silent) Bind(int)                   {}
func (silent) Arrivals(int, *sim.RNG) int { return 0 }

// NewSilent returns a process that never generates demands (replay runs
// inject from the trace instead).
func NewSilent() Process { return silent{} }

var processOrder = []string{"bernoulli", "onoff", "deterministic"}

var processAliases = map[string]string{
	"bursty":   "onoff",
	"periodic": "deterministic",
}

// ProcessNames returns the canonical arrival-process names in listing
// order.
func ProcessNames() []string {
	out := make([]string, len(processOrder))
	copy(out, processOrder)
	return out
}

// CanonicalProcess resolves an arrival-process name (case-insensitive,
// aliases included, "" meaning bernoulli) to its canonical registry name
// without constructing the process. Spec validation uses it so that
// serialized scenario descriptions carry one stable spelling per process.
func CanonicalProcess(name string) (string, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := processAliases[key]; ok {
		key = canon
	}
	if key == "" {
		return "bernoulli", nil
	}
	for _, n := range processOrder {
		if n == key {
			return n, nil
		}
	}
	return "", fmt.Errorf("workload: unknown arrival process %q (valid: %s)",
		name, strings.Join(processOrder, ", "))
}

// NewProcess resolves an arrival process by name (case-insensitive;
// "bursty" and "periodic" are accepted aliases) at the given mean rate.
func NewProcess(name string, rate float64) (Process, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := processAliases[key]; ok {
		key = canon
	}
	switch key {
	case "", "bernoulli":
		return NewBernoulli(rate), nil
	case "onoff":
		return NewOnOff(rate), nil
	case "deterministic":
		return NewDeterministic(rate), nil
	}
	return nil, fmt.Errorf("workload: unknown arrival process %q (valid: %s)",
		name, strings.Join(processOrder, ", "))
}

// Package ports defines the Alpha 21364 router's port structure: eight
// input ports, seven output ports, the sixteen buffer read ports, and the
// crossbar connection matrix of the paper's Figure 5.
//
// Input ports: four 2D-torus ports (north, south, east, west), one cache
// port, two memory-controller ports, and one I/O port. Output ports: the
// four torus ports, two memory-controller ports, and one I/O port — inside
// the processor the memory-controller ports are also tied to the internal
// cache, so there is no separate cache output port (§2.1).
package ports

import (
	"fmt"

	"alpha21364/internal/topology"
)

// In identifies an input port.
type In uint8

const (
	InNorth In = iota
	InSouth
	InEast
	InWest
	InCache
	InMC0
	InMC1
	InIO
	NumIn
)

var inNames = [NumIn]string{"L-N", "L-S", "L-E", "L-W", "L-Cache", "L-MC0", "L-MC1", "L-I/O"}

func (p In) String() string {
	if p < NumIn {
		return inNames[p]
	}
	return fmt.Sprintf("In(%d)", uint8(p))
}

// IsNetwork reports whether the input port is an interprocessor port.
func (p In) IsNetwork() bool { return p <= InWest }

// Out identifies an output port.
type Out uint8

const (
	OutNorth Out = iota
	OutSouth
	OutEast
	OutWest
	OutMC0
	OutMC1
	OutIO
	NumOut
)

var outNames = [NumOut]string{"G-N", "G-S", "G-E", "G-W", "G-L0", "G-L1", "G-I/O"}

func (p Out) String() string {
	if p < NumOut {
		return outNames[p]
	}
	return fmt.Sprintf("Out(%d)", uint8(p))
}

// IsNetwork reports whether the output port drives a torus link.
func (p Out) IsNetwork() bool { return p <= OutWest }

// IsLocal reports whether the output port sinks into the processor.
func (p Out) IsLocal() bool { return !p.IsNetwork() }

// InFromDir returns the input port on which packets arrive from the
// neighbor in direction d: a packet sent south arrives on its receiver's
// north-side port.
func InFromDir(d topology.Dir) In {
	switch d {
	case topology.North:
		return InNorth
	case topology.South:
		return InSouth
	case topology.East:
		return InEast
	default:
		return InWest
	}
}

// OutForDir returns the output port that drives the link toward direction d.
func OutForDir(d topology.Dir) Out {
	switch d {
	case topology.North:
		return OutNorth
	case topology.South:
		return OutSouth
	case topology.East:
		return OutEast
	default:
		return OutWest
	}
}

// Dir returns the torus direction of a network output port.
func (p Out) Dir() topology.Dir {
	if !p.IsNetwork() {
		panic(fmt.Sprintf("ports: %v is not a network port", p))
	}
	return topology.Dir(p)
}

// reverseOut returns the output port a packet arriving on input p must not
// use (a 180-degree turn never lies on a minimal path), or NumOut if the
// input is local.
func reverseOut(p In) Out {
	if !p.IsNetwork() {
		return NumOut
	}
	// A packet arriving on the north input came from the north neighbor and
	// is heading south; exiting north again would reverse it.
	return Out(p)
}

// NumRows is the number of read-port (input-port) arbiters: each of the 8
// input buffers has two read ports.
const NumRows = 16

// Row converts an input port and read port (0 or 1) to a connection-matrix
// row, matching the paper's Figure 5 layout ("L-X rpY").
func Row(in In, readPort int) int { return int(in)*2 + readPort }

// RowIn returns the input port of a matrix row.
func RowIn(row int) In { return In(row / 2) }

// RowReadPort returns which of the input port's two read ports a row is.
func RowReadPort(row int) int { return row % 2 }

// OutMask is a bitmask over output ports.
type OutMask uint8

// Has reports whether the mask contains out.
func (m OutMask) Has(o Out) bool { return m&(1<<uint(o)) != 0 }

// With returns the mask including out.
func (m OutMask) With(o Out) OutMask { return m | 1<<uint(o) }

// Count returns the number of outputs in the mask.
func (m OutMask) Count() int {
	n := 0
	for v := m; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// AllOuts is the mask of all seven output ports.
const AllOuts OutMask = 1<<NumOut - 1

// NetworkOuts is the mask of the four torus output ports.
const NetworkOuts OutMask = 1<<OutNorth | 1<<OutSouth | 1<<OutEast | 1<<OutWest

// LocalOuts is the mask of the processor-facing output ports.
const LocalOuts OutMask = 1<<OutMC0 | 1<<OutMC1 | 1<<OutIO

// ConnectionMatrix records which output ports each read-port arbiter can
// reach through the crossbar (unshaded cells of the paper's Figure 5).
type ConnectionMatrix [NumRows]OutMask

// LegalOuts returns the outputs an input port may use at all (the union of
// its two read ports' connections).
func (cm ConnectionMatrix) LegalOuts(in In) OutMask {
	return cm[Row(in, 0)] | cm[Row(in, 1)]
}

// Connected reports whether the crossbar joins row to out.
func (cm ConnectionMatrix) Connected(row int, out Out) bool { return cm[row].Has(out) }

// Cells returns the number of connected (unshaded) cells.
func (cm ConnectionMatrix) Cells() int {
	n := 0
	for _, m := range cm {
		n += m.Count()
	}
	return n
}

// DefaultConnectionMatrix reconstructs Figure 5. The published figure
// shades cells without enumerating them (54 connected cells of 112); the
// paper's structural rules give us:
//
//   - a network input never connects to its own direction's output (a
//     180-degree turn is never minimal),
//   - the I/O input never connects to the I/O output,
//   - local inputs (cache, MC0, MC1) connect to every output,
//   - each input port's legal outputs are split across its two read ports
//     (the read-port pairs exist to widen the arbiter's choice, not to
//     duplicate it), which we do alternately.
//
// This reconstruction yields 51 connected cells; the exact published
// pattern is not recoverable from the paper, and the matrix is a plain
// value so tests or users can substitute another.
func DefaultConnectionMatrix() ConnectionMatrix {
	var cm ConnectionMatrix
	for in := In(0); in < NumIn; in++ {
		rev := reverseOut(in)
		idx := 0
		for o := Out(0); o < NumOut; o++ {
			if o == rev {
				continue
			}
			if in == InIO && o == OutIO {
				continue
			}
			cm[Row(in, idx%2)] = cm[Row(in, idx%2)].With(o)
			idx++
		}
	}
	return cm
}

// FullConnectionMatrix connects every read port to every legal output of
// its input port (no read-port split). Used by tests and ablations.
func FullConnectionMatrix() ConnectionMatrix {
	var cm ConnectionMatrix
	for in := In(0); in < NumIn; in++ {
		rev := reverseOut(in)
		var mask OutMask
		for o := Out(0); o < NumOut; o++ {
			if o == rev {
				continue
			}
			if in == InIO && o == OutIO {
				continue
			}
			mask = mask.With(o)
		}
		cm[Row(in, 0)] = mask
		cm[Row(in, 1)] = mask
	}
	return cm
}

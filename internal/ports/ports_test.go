package ports

import (
	"testing"

	"alpha21364/internal/topology"
)

func TestPortCounts(t *testing.T) {
	if NumIn != 8 {
		t.Errorf("NumIn = %d, want 8", NumIn)
	}
	if NumOut != 7 {
		t.Errorf("NumOut = %d, want 7", NumOut)
	}
	if NumRows != 16 {
		t.Errorf("NumRows = %d, want 16 (two read ports per input buffer)", NumRows)
	}
}

func TestNetworkClassification(t *testing.T) {
	for p := In(0); p < NumIn; p++ {
		want := p <= InWest
		if p.IsNetwork() != want {
			t.Errorf("%v.IsNetwork() = %v", p, p.IsNetwork())
		}
	}
	networkOuts := 0
	for p := Out(0); p < NumOut; p++ {
		if p.IsNetwork() {
			networkOuts++
			if p.IsLocal() {
				t.Errorf("%v both network and local", p)
			}
		}
	}
	if networkOuts != 4 {
		t.Errorf("%d network outputs, want 4", networkOuts)
	}
}

func TestDirPortMapping(t *testing.T) {
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		out := OutForDir(d)
		if out.Dir() != d {
			t.Errorf("OutForDir(%v).Dir() = %v", d, out.Dir())
		}
		// A packet leaving toward d arrives at the neighbor on the port
		// facing back along d's opposite.
		in := InFromDir(d.Opposite())
		if !in.IsNetwork() {
			t.Errorf("arrival port for %v is not a network port", d)
		}
	}
	// Concrete case: sending south arrives on the receiver's north port.
	if got := InFromDir(topology.North); got != InNorth {
		t.Errorf("InFromDir(North) = %v, want InNorth", got)
	}
}

func TestRowLayout(t *testing.T) {
	seen := map[int]bool{}
	for in := In(0); in < NumIn; in++ {
		for rp := 0; rp < 2; rp++ {
			r := Row(in, rp)
			if r < 0 || r >= NumRows || seen[r] {
				t.Fatalf("Row(%v,%d) = %d invalid or duplicate", in, rp, r)
			}
			seen[r] = true
			if RowIn(r) != in || RowReadPort(r) != rp {
				t.Errorf("row %d decodes to (%v,%d)", r, RowIn(r), RowReadPort(r))
			}
		}
	}
}

func TestDefaultConnectionMatrixStructure(t *testing.T) {
	cm := DefaultConnectionMatrix()

	// No 180-degree turns for network inputs.
	for in := In(0); in <= InWest; in++ {
		if cm.LegalOuts(in).Has(Out(in)) {
			t.Errorf("network input %v connects to reversal output %v", in, Out(in))
		}
		if got := cm.LegalOuts(in).Count(); got != 6 {
			t.Errorf("%v legal outputs = %d, want 6", in, got)
		}
	}
	// I/O input cannot reach the I/O output.
	if cm.LegalOuts(InIO).Has(OutIO) {
		t.Error("I/O input connects to I/O output")
	}
	// Locals reach everything.
	for _, in := range []In{InCache, InMC0, InMC1} {
		if cm.LegalOuts(in) != AllOuts {
			t.Errorf("%v legal outputs = %07b, want all", in, cm.LegalOuts(in))
		}
	}
	// Read ports of one input are disjoint and cover the legal set.
	for in := In(0); in < NumIn; in++ {
		rp0, rp1 := cm[Row(in, 0)], cm[Row(in, 1)]
		if rp0&rp1 != 0 {
			t.Errorf("%v read ports overlap: %07b & %07b", in, rp0, rp1)
		}
		if rp0|rp1 != cm.LegalOuts(in) {
			t.Errorf("%v read ports do not cover legal outputs", in)
		}
		// Both read ports must carry some connections (the figure shows no
		// empty rows).
		if rp0 == 0 || rp1 == 0 {
			t.Errorf("%v has an unconnected read port", in)
		}
	}
	// Total connected cells: our reconstruction gives 51 (the figure shows
	// 54; the exact shading is not published — see DESIGN.md).
	if got := cm.Cells(); got != 51 {
		t.Errorf("connected cells = %d, want 51", got)
	}
}

func TestFullConnectionMatrix(t *testing.T) {
	cm := FullConnectionMatrix()
	for in := In(0); in < NumIn; in++ {
		if cm[Row(in, 0)] != cm[Row(in, 1)] {
			t.Errorf("full matrix read ports differ for %v", in)
		}
	}
	if cm.LegalOuts(InNorth).Has(OutNorth) {
		t.Error("full matrix allows 180-degree turn")
	}
}

func TestOutMask(t *testing.T) {
	var m OutMask
	m = m.With(OutEast).With(OutIO)
	if !m.Has(OutEast) || !m.Has(OutIO) || m.Has(OutNorth) {
		t.Errorf("mask ops wrong: %07b", m)
	}
	if m.Count() != 2 {
		t.Errorf("Count = %d, want 2", m.Count())
	}
	if AllOuts.Count() != 7 || NetworkOuts.Count() != 4 || LocalOuts.Count() != 3 {
		t.Error("canonical masks have wrong sizes")
	}
	if NetworkOuts&LocalOuts != 0 || NetworkOuts|LocalOuts != AllOuts {
		t.Error("network/local masks do not partition outputs")
	}
}

package network

import (
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/router"
	"alpha21364/internal/sim"
	"alpha21364/internal/stats"
	"alpha21364/internal/topology"
)

// buildSharded assembles a k-band sharded network with its ShardGroup,
// mirroring the experiment layer's wiring.
func buildSharded(t *testing.T, kind core.Kind, w, h, shards int) (*Network, *sim.Engine, *sim.ShardGroup, *stats.Collector) {
	t.Helper()
	hub := sim.NewEngine()
	col := stats.NewCollector(0)
	rcfg := router.DefaultConfig(kind)
	part := topology.PartitionRows(topology.NewTorus(w, h), shards)
	members := make([]*sim.Engine, shards)
	for i := range members {
		members[i] = sim.NewEngine()
	}
	pb := sim.NewPostBuffer(w * h)
	net, err := NewSharded(Config{Width: w, Height: h, Router: rcfg}, hub, members, part, pb, col)
	if err != nil {
		t.Fatal(err)
	}
	sg := sim.NewShardGroup(hub, members, pb, net.Lookahead())
	sg.SetEdge(rcfg.RouterPeriod, 0, net.TickShard)
	t.Cleanup(sg.Close)
	return net, hub, sg, col
}

// injectDiagonals schedules one request per node to its (+2,+2) diagonal
// counterpart — every packet crosses a band boundary on a 4x4 cut into
// row bands — spaced so the network sees steady traffic, not one burst.
func injectDiagonals(t *testing.T, net *Network, eng *sim.Engine) {
	t.Helper()
	torus := net.Torus()
	id := uint64(0)
	for n := 0; n < net.Nodes(); n++ {
		n := n
		at := sim.Ticks(n) * 40
		eng.Schedule(at, func() {
			id++
			c := torus.Coord(topology.Node(n))
			dst := torus.Node(topology.Coord{X: c.X + 2, Y: c.Y + 2})
			p := packet.New(id, packet.Request, topology.Node(n), dst, at)
			if !net.Inject(p, topology.Node(n), ports.InCache, at) {
				t.Errorf("node %d: injection failed", n)
			}
		})
	}
}

// TestShardedNetworkMatchesSerial drives identical cross-band traffic
// through a monolithic and a 2-band sharded 4x4 network and requires the
// delivered statistics to agree exactly — the in-package face of the
// byte-identity contract the experiment goldens pin end to end.
func TestShardedNetworkMatchesSerial(t *testing.T) {
	serialNet, serialEng, serialCol := build(t, core.KindSPAARotary, 4, 4)
	injectDiagonals(t, serialNet, serialEng)
	serialEng.Run(20000)

	shardNet, hub, sg, shardCol := buildSharded(t, core.KindSPAARotary, 4, 4, 2)
	injectDiagonals(t, shardNet, hub)
	sg.Run(20000)

	if serialCol.Packets() != int64(serialNet.Nodes()) {
		t.Fatalf("serial run delivered %d packets, want %d", serialCol.Packets(), serialNet.Nodes())
	}
	if shardCol.Packets() != serialCol.Packets() {
		t.Fatalf("sharded run delivered %d packets, serial delivered %d", shardCol.Packets(), serialCol.Packets())
	}
	if got, want := shardCol.AvgLatencyNS(), serialCol.AvgLatencyNS(); got != want {
		t.Errorf("sharded avg latency %.3f ns, serial %.3f ns", got, want)
	}
	if shardNet.Buffered() != 0 {
		t.Errorf("%d packets still buffered in the sharded network", shardNet.Buffered())
	}
	if f := shardNet.LinkFlight(); f != 0 {
		t.Errorf("sharded link-flight slots sum to %d after drain, want 0", f)
	}
	shardNet.CheckInvariants() // panics on a violated credit bound
}

// TestShardedLookahead pins the CMB window derivation: the inter-router
// wire latency in ticks.
func TestShardedLookahead(t *testing.T) {
	net, _, _, _ := buildSharded(t, core.KindSPAABase, 4, 4, 2)
	rcfg := router.DefaultConfig(core.KindSPAABase)
	want := sim.Ticks(rcfg.LinkLatencyCycles) * rcfg.LinkPeriod
	if got := net.Lookahead(); got != want {
		t.Fatalf("Lookahead() = %d ticks, want %d", got, want)
	}
	if want <= 0 {
		t.Fatal("default config has no positive lookahead; sharding cannot work")
	}
}

// TestNewShardedRejectsMemberMismatch pins the constructor's engine-count
// validation.
func TestNewShardedRejectsMemberMismatch(t *testing.T) {
	hub := sim.NewEngine()
	col := stats.NewCollector(0)
	part := topology.PartitionRows(topology.NewTorus(4, 4), 2)
	pb := sim.NewPostBuffer(16)
	cfg := Config{Width: 4, Height: 4, Router: router.DefaultConfig(core.KindSPAABase)}
	if _, err := NewSharded(cfg, hub, []*sim.Engine{sim.NewEngine()}, part, pb, col); err == nil {
		t.Fatal("one member engine for two shards was accepted")
	}
	if _, err := NewSharded(cfg, hub, nil, nil, pb, col); err == nil {
		t.Fatal("nil partition was accepted")
	}
}

package network

import (
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/obs"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
)

// TestNetworkMetricsCountLinkTraffic checks the link and sink hooks: one
// two-hop packet crosses two links and is delivered once, and the busy
// time charged per link is flits x link period.
func TestNetworkMetricsCountLinkTraffic(t *testing.T) {
	net, eng, col := build(t, core.KindSPAABase, 4, 4)
	var m obs.NetworkMetrics
	net.SetMetrics(&m)
	if len(m.Links) != net.NumLinks() {
		t.Fatalf("SetMetrics sized Links to %d, want %d", len(m.Links), net.NumLinks())
	}

	p := packet.New(1, packet.Request, 0, 5, 0) // (0,0) -> (1,1): two hops
	eng.Schedule(0, func() {
		if !net.Inject(p, 0, ports.InCache, 0) {
			t.Fatal("injection failed on empty network")
		}
	})
	eng.Run(10000)
	if col.Packets() != 1 {
		t.Fatalf("delivered %d packets, want 1", col.Packets())
	}

	var pkts, flits, busy int64
	for i := range m.Links {
		pkts += m.Links[i].Packets
		flits += m.Links[i].Flits
		busy += m.Links[i].BusyTicks
	}
	wantFlits := int64(2 * p.Flits)
	if pkts != 2 || flits != wantFlits {
		t.Errorf("link traffic = %d packets / %d flits, want 2 / %d", pkts, flits, wantFlits)
	}
	if want := wantFlits * int64(net.cfg.Router.LinkPeriod); busy != want {
		t.Errorf("link busy = %d ticks, want %d", busy, want)
	}
	if m.Delivered != 1 || m.DeliveredFlits != int64(p.Flits) {
		t.Errorf("sink = %d packets / %d flits, want 1 / %d", m.Delivered, m.DeliveredFlits, p.Flits)
	}
}

// TestNetworkMetricsSelfAddressedSkipsLinks checks a packet consumed at
// its source never touches the link counters.
func TestNetworkMetricsSelfAddressedSkipsLinks(t *testing.T) {
	net, eng, _ := build(t, core.KindSPAABase, 4, 4)
	var m obs.NetworkMetrics
	net.SetMetrics(&m)
	p := packet.New(1, packet.Request, 3, 3, 0)
	eng.Schedule(0, func() { net.Inject(p, 3, ports.InCache, 0) })
	eng.Run(10000)
	for i := range m.Links {
		if m.Links[i].Packets != 0 {
			t.Fatalf("link %d saw traffic for a self-addressed packet", i)
		}
	}
	if m.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", m.Delivered)
	}
}

package network

import (
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
)

// invariantChecker runs CheckInvariants on every router-clock edge during
// a simulation, catching credit leaks the moment they happen.
type invariantChecker struct{ net *Network }

func (c *invariantChecker) Tick(now sim.Ticks) { c.net.CheckInvariants() }

func TestInvariantsHoldUnderRandomTraffic(t *testing.T) {
	for _, kind := range []core.Kind{core.KindSPAABase, core.KindSPAARotary, core.KindWFARotary, core.KindPIM1} {
		net, eng, col := build(t, kind, 4, 4)
		eng.AddClock(sim.RouterPeriod, 3, &invariantChecker{net})
		rng := sim.NewRNG(77)
		id := uint64(0)
		// Inject random bursts over time from random nodes.
		for wave := 0; wave < 30; wave++ {
			at := sim.Ticks(wave) * 40 * sim.RouterPeriod
			eng.Schedule(at, func() {
				for k := 0; k < 12; k++ {
					id++
					src := topology.Node(rng.Intn(net.Nodes()))
					dst := topology.Node(rng.Intn(net.Nodes()))
					cl := []packet.Class{packet.Request, packet.Forward, packet.BlockResponse}[rng.Intn(3)]
					p := packet.New(id, cl, src, dst, eng.Now())
					net.Inject(p, src, ports.InCache, eng.Now())
				}
			})
		}
		eng.Run(200000)
		net.CheckInvariants()
		if col.Packets() == 0 {
			t.Fatalf("%v: nothing delivered", kind)
		}
		if net.Buffered() != 0 {
			t.Fatalf("%v: %d packets never drained", kind, net.Buffered())
		}
	}
}

func TestInvariantViolationDetected(t *testing.T) {
	net, _, _ := build(t, core.KindSPAABase, 4, 4)
	// Sabotage a credit pool: a double release must be caught.
	net.Router(0).OutputCredits(ports.OutEast).Release(0)
	defer func() {
		if recover() == nil {
			t.Error("CheckInvariants missed a credit double-release")
		}
	}()
	net.CheckInvariants()
}

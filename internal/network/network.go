// Package network assembles 21364 routers into the 2D-torus interconnect
// of the paper's timing model: one router per processor, four inter-router
// links per router running at 0.8 GHz with a three-network-clock wire
// latency, and local ports wired to the processor model's sinks.
package network

import (
	"fmt"
	"sync/atomic"

	"alpha21364/internal/obs"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/router"
	"alpha21364/internal/sim"
	"alpha21364/internal/stats"
	"alpha21364/internal/topology"
	"alpha21364/internal/vc"
)

// Config describes a torus network build.
type Config struct {
	Width, Height int
	Router        router.Config
}

// DeliverHandler observes every packet consumed at a destination local
// port (after statistics are recorded). The traffic generator uses it to
// advance coherence transactions.
type DeliverHandler func(p *packet.Packet, at sim.Ticks)

// Network is a torus of routers bound to a simulation engine — either
// one monolithic engine (New) or a hub plus per-shard member engines
// synchronized by a sim.ShardGroup (NewSharded).
type Network struct {
	cfg       Config
	torus     topology.Torus
	eng       *sim.Engine // the hub engine (the only engine when monolithic)
	routers   []*router.Router
	collector *stats.Collector
	onDeliver DeliverHandler
	// deliverH is the registered sink handler: local-port deliveries post
	// through it instead of allocating a closure per packet.
	deliverH sim.HandlerID
	// flight counts packets dispatched onto a link but not yet committed
	// to the neighbor's buffer (conservation accounting). One slot per
	// shard — the sending shard's edge worker increments its own slot,
	// so the counters never race; monolithic networks have one slot.
	flight []int64
	// metrics, when non-nil, receives link and sink telemetry (nil-checked
	// on the hot path, exactly like the router's hooks); linkBusyPerFlit
	// is the wire serialization time per flit it charges.
	metrics         *obs.NetworkMetrics
	linkBusyPerFlit sim.Ticks

	// Sharded-mode state (nil/empty when monolithic): the edge-phase
	// post buffer, the row-band partition, the per-shard wavefront
	// schedules, and the per-router edge-completion flags the schedules'
	// cross-shard waits spin on.
	pb    *sim.PostBuffer
	part  *topology.Partition
	sched [][]topology.Step
	flags []atomic.Uint64
}

// link is one directed inter-router wire. Its receive-side handler is
// registered once at wiring time, so a packet flight costs one pooled
// event node and no allocation: the payload is the packet pointer, the
// arrival tick, and the target channel; everything else (neighbor, input
// port, upstream credit pool) is fixed per link.
type link struct {
	n        *Network
	neighbor *router.Router
	in       ports.In
	latency  sim.Ticks
	credits  *vc.Credits // the sending output port's pool
	h        sim.HandlerID
	idx      int // index into the network's per-link metrics
	// target is the engine owning the receiving router's wheel (the
	// monolithic engine, or the neighbor's shard engine when sharded).
	target *sim.Engine
	// src is the sending node id — the PostBuffer ordering key that
	// keeps sharded boundary posts in monolithic node order.
	src int
	// flight is the sending shard's in-flight slot.
	flight *int64
}

// send implements router.SendFunc for the link.
func (l *link) send(p *packet.Packet, targetCh vc.Channel, headerDepart sim.Ticks, creditHome *vc.Credits) {
	arriveAt := headerDepart + l.latency
	*l.flight++
	if m := l.n.metrics; m != nil {
		lm := &m.Links[l.idx]
		lm.Packets++
		lm.Flits += int64(p.Flits)
		lm.BusyTicks += int64(p.Flits) * int64(l.n.linkBusyPerFlit)
	}
	if creditHome == l.credits {
		if l.n.pb != nil {
			l.n.pb.Post(l.src, l.target, arriveAt, l.h, sim.EventArgs{A: int64(arriveAt), B: int64(targetCh), P: p})
		} else {
			l.target.Post(arriveAt, l.h, sim.EventArgs{A: int64(arriveAt), B: int64(targetCh), P: p})
		}
		return
	}
	// A caller substituted its own credit pool (tests wiring custom
	// topologies); fall back to the closure path.
	if l.n.pb != nil {
		panic("network: custom credit pools are not supported on a sharded network")
	}
	l.n.eng.Schedule(arriveAt, func() {
		*l.flight--
		l.neighbor.Arrive(p, l.in, targetCh, arriveAt, creditHome)
	})
}

// arrive is the link's registered receive handler.
func (l *link) arrive(args sim.EventArgs) {
	*l.flight--
	l.neighbor.Arrive(args.P.(*packet.Packet), l.in, vc.Channel(args.B), sim.Ticks(args.A), l.credits)
}

// New builds and wires the network and attaches every router to a router-
// clock domain on eng. Deliveries are recorded into collector.
func New(cfg Config, eng *sim.Engine, collector *stats.Collector) (*Network, error) {
	n, err := buildNetwork(cfg, eng, collector, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	clocked := make([]sim.Clocked, len(n.routers))
	for i, r := range n.routers {
		clocked[i] = r
	}
	eng.AddClock(cfg.Router.RouterPeriod, 0, clocked...)
	return n, nil
}

// build constructs and wires routers, links, and sinks. Monolithic
// callers pass nil part/members/pb and every wheel is hub's; sharded
// callers supply the partition, one member engine per band, and the
// edge-phase post buffer.
func buildNetwork(cfg Config, hub *sim.Engine, collector *stats.Collector,
	part *topology.Partition, members []*sim.Engine, pb *sim.PostBuffer) (*Network, error) {
	torus := topology.NewTorus(cfg.Width, cfg.Height)
	n := &Network{
		cfg:       cfg,
		torus:     torus,
		eng:       hub,
		collector: collector,
		routers:   make([]*router.Router, torus.Nodes()),
		part:      part,
		pb:        pb,
	}
	shards := 1
	if part != nil {
		shards = part.Shards()
	}
	n.flight = make([]int64, shards)
	for node := 0; node < torus.Nodes(); node++ {
		r, err := router.New(cfg.Router, topology.Node(node), torus)
		if err != nil {
			return nil, fmt.Errorf("network: node %d: %w", node, err)
		}
		n.routers[node] = r
	}
	n.deliverH = hub.RegisterHandler(n.deliverEvent)
	linkLatency := sim.Ticks(cfg.Router.LinkLatencyCycles) * cfg.Router.LinkPeriod
	for node := 0; node < torus.Nodes(); node++ {
		r := n.routers[node]
		srcShard := 0
		if part != nil {
			srcShard = part.ShardOf(topology.Node(node))
		}
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			out := ports.OutForDir(d)
			dst := torus.Neighbor(topology.Node(node), d)
			l := &link{
				n:        n,
				neighbor: n.routers[dst],
				in:       ports.InFromDir(d.Opposite()),
				latency:  linkLatency,
				idx:      node*int(topology.NumDirs) + int(d),
				target:   hub,
				src:      node,
				flight:   &n.flight[srcShard],
			}
			if part != nil {
				l.target = members[part.ShardOf(dst)]
			}
			l.h = l.target.RegisterHandler(l.arrive)
			r.ConnectNetwork(out, l.send)
			l.credits = r.OutputCredits(out)
		}
		for _, out := range []ports.Out{ports.OutMC0, ports.OutMC1, ports.OutIO} {
			r.ConnectLocal(out, n.makeSink(node))
		}
	}
	return n, nil
}

// makeSink returns the DeliverFunc for a local output port: the delivery
// is posted through the shared sink handler, which records statistics and
// notifies the traffic model at the time the last flit reaches the
// processor. On a sharded network the post is buffered (sinks fire during
// the parallel edge) keyed by the delivering node, preserving the
// monolithic posting order.
func (n *Network) makeSink(node int) router.DeliverFunc {
	if n.pb != nil {
		return func(p *packet.Packet, at sim.Ticks) {
			n.pb.Post(node, n.eng, at, n.deliverH, sim.EventArgs{A: int64(at), P: p})
		}
	}
	return func(p *packet.Packet, at sim.Ticks) {
		n.eng.Post(at, n.deliverH, sim.EventArgs{A: int64(at), P: p})
	}
}

// deliverEvent is the registered sink handler.
func (n *Network) deliverEvent(args sim.EventArgs) {
	p := args.P.(*packet.Packet)
	at := sim.Ticks(args.A)
	n.collector.Delivered(p, at)
	if m := n.metrics; m != nil {
		m.Delivered++
		m.DeliveredFlits += int64(p.Flits)
	}
	if n.onDeliver != nil {
		n.onDeliver(p, at)
	}
}

// OnDeliver installs the delivery observer (at most one; the traffic
// generator).
func (n *Network) OnDeliver(h DeliverHandler) {
	if n.onDeliver != nil {
		panic("network: delivery handler already installed")
	}
	n.onDeliver = h
}

// Torus returns the network's topology.
func (n *Network) Torus() topology.Torus { return n.torus }

// Nodes returns the number of routers.
func (n *Network) Nodes() int { return len(n.routers) }

// Router returns the router at a node.
func (n *Network) Router(node topology.Node) *router.Router { return n.routers[node] }

// Inject offers a packet to a node's local input port, returning false on
// backpressure.
func (n *Network) Inject(p *packet.Packet, node topology.Node, in ports.In, now sim.Ticks) bool {
	return n.routers[node].Inject(p, in, now)
}

// LinkFlight returns the number of packets dispatched onto inter-router
// links but not yet committed to the neighbor's buffer; the invariant
// oracle's conservation check uses it. Callers must be quiesced with
// respect to a clock edge (the checker's sweeps and tests are).
func (n *Network) LinkFlight() int64 {
	var total int64
	for _, f := range n.flight {
		total += f
	}
	return total
}

// NumLinks returns the number of directed inter-router links (four per
// router) — the size SetMetrics expects m.Links to have.
func (n *Network) NumLinks() int { return len(n.routers) * int(topology.NumDirs) }

// SetMetrics installs the network-level telemetry block, sizing its
// per-link slice if needed (this is install-time, not hot-path). Pass
// nil to disable.
func (n *Network) SetMetrics(m *obs.NetworkMetrics) {
	if m != nil && len(m.Links) != n.NumLinks() {
		m.Links = make([]obs.LinkMetrics, n.NumLinks())
	}
	n.metrics = m
	n.linkBusyPerFlit = n.cfg.Router.LinkPeriod
}

// Buffered returns the total packets buffered across all routers.
func (n *Network) Buffered() int {
	total := 0
	for _, r := range n.routers {
		total += r.Buffered()
	}
	return total
}

// CheckInvariants verifies cross-router conservation: no credit pool
// exceeds its capacity (double release) or goes negative, and every
// injected packet is either delivered or still buffered. It panics on
// violation; tests call it after (and during) simulations.
func (n *Network) CheckInvariants() {
	cfg := n.cfg.Router.Buffers
	for _, r := range n.routers {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			r.OutputCredits(ports.OutForDir(d)).CheckBounds(cfg)
		}
	}
	c := n.TotalCounters()
	held := int64(n.Buffered()) + n.LinkFlight()
	if c.Injected != c.DeliveredLocal+held {
		panic(fmt.Sprintf("network: %d injected != %d delivered + %d buffered/in-flight",
			c.Injected, c.DeliveredLocal, held))
	}
}

// TotalCounters sums the per-router counters.
func (n *Network) TotalCounters() router.Counters {
	var t router.Counters
	for _, r := range n.routers {
		c := r.Counters
		t.Injected += c.Injected
		t.Arrived += c.Arrived
		t.Nominations += c.Nominations
		t.Grants += c.Grants
		t.Collisions += c.Collisions
		t.WastedSpecReads += c.WastedSpecReads
		t.DrainEntries += c.DrainEntries
		t.DeliveredLocal += c.DeliveredLocal
	}
	return t
}

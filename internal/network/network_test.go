package network

import (
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/router"
	"alpha21364/internal/sim"
	"alpha21364/internal/stats"
	"alpha21364/internal/topology"
)

func build(t *testing.T, kind core.Kind, w, h int) (*Network, *sim.Engine, *stats.Collector) {
	t.Helper()
	eng := sim.NewEngine()
	col := stats.NewCollector(0)
	net, err := New(Config{Width: w, Height: h, Router: router.DefaultConfig(kind)}, eng, col)
	if err != nil {
		t.Fatal(err)
	}
	return net, eng, col
}

func TestSinglePacketCrossesNetwork(t *testing.T) {
	net, eng, col := build(t, core.KindSPAABase, 4, 4)
	p := packet.New(1, packet.Request, 0, 5, 0) // (0,0) -> (1,1): two hops
	eng.Schedule(0, func() {
		if !net.Inject(p, 0, ports.InCache, 0) {
			t.Fatal("injection failed on empty network")
		}
	})
	eng.Run(10000)
	if col.Packets() != 1 {
		t.Fatalf("delivered %d packets, want 1", col.Packets())
	}
	if p.Hops != 2 {
		t.Errorf("packet took %d hops, want 2", p.Hops)
	}
	if net.Buffered() != 0 {
		t.Errorf("%d packets still buffered", net.Buffered())
	}
}

// TestZeroLoadLatency reproduces the paper's §4.3 calibration: the minimum
// per-packet latency in a 4x4 network is about 45 ns, decomposed into
// 2.5 ns of local port latency, ~34 ns of network transit for the first
// flit over an average ~2-hop path, and ~8.5 ns for the rest of the packet.
func TestZeroLoadLatency(t *testing.T) {
	net, eng, col := build(t, core.KindSPAABase, 4, 4)
	// One request per node to a 2-hop diagonal neighbor, spaced far apart
	// in time so there is no contention at all.
	torus := net.Torus()
	id := uint64(0)
	for n := 0; n < net.Nodes(); n++ {
		n := n
		at := sim.Ticks(n) * 3000
		eng.Schedule(at, func() {
			id++
			c := torus.Coord(topology.Node(n))
			dst := torus.Node(topology.Coord{X: c.X + 1, Y: c.Y + 1})
			p := packet.New(id, packet.Request, topology.Node(n), dst, at)
			if !net.Inject(p, topology.Node(n), ports.InCache, at) {
				t.Errorf("node %d: zero-load injection failed", n)
			}
		})
	}
	eng.Run(100000)
	if col.Packets() != int64(net.Nodes()) {
		t.Fatalf("delivered %d packets, want %d", col.Packets(), net.Nodes())
	}
	// A 2-hop 3-flit request: ~2.5 ns local + 2 x pin-to-pin + links +
	// delivery. The paper's 45 ns figure is the average over the packet mix
	// (19-flit responses push it up); a bare request lands in the 30-45 ns
	// band.
	avg := col.AvgLatencyNS()
	if avg < 28 || avg > 48 {
		t.Errorf("zero-load 2-hop request latency = %.1f ns, want ~30-45 ns", avg)
	}
}

func TestWrapAroundRouting(t *testing.T) {
	net, eng, col := build(t, core.KindSPAABase, 4, 4)
	// (0,0) -> (3,0) is one hop west across the wrap link.
	p := packet.New(1, packet.Request, 0, 3, 0)
	eng.Schedule(0, func() { net.Inject(p, 0, ports.InCache, 0) })
	eng.Run(10000)
	if col.Packets() != 1 {
		t.Fatalf("delivered %d packets, want 1", col.Packets())
	}
	if p.Hops != 1 {
		t.Errorf("wrap route took %d hops, want 1", p.Hops)
	}
}

func TestSelfAddressedPacketStaysLocal(t *testing.T) {
	// A local miss to local memory crosses the router's crossbar (cache
	// port to MC port) but never uses a network link.
	net, eng, col := build(t, core.KindSPAABase, 4, 4)
	p := packet.New(1, packet.Request, 5, 5, 0)
	eng.Schedule(0, func() { net.Inject(p, 5, ports.InCache, 0) })
	eng.Run(5000)
	if col.Packets() != 1 {
		t.Fatalf("delivered %d, want 1", col.Packets())
	}
	if p.Hops != 0 {
		t.Errorf("self-addressed packet took %d network hops", p.Hops)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	// Every node sends one packet to every other node; all must arrive
	// (deadlock/livelock smoke test across all three algorithms).
	for _, kind := range []core.Kind{core.KindSPAABase, core.KindWFABase, core.KindPIM1} {
		net, eng, col := build(t, kind, 4, 4)
		id := uint64(0)
		eng.Schedule(0, func() {
			for s := 0; s < net.Nodes(); s++ {
				for d := 0; d < net.Nodes(); d++ {
					if s == d {
						continue
					}
					id++
					p := packet.New(id, packet.Request, topology.Node(s), topology.Node(d), 0)
					if !net.Inject(p, topology.Node(s), ports.InCache, 0) {
						t.Fatalf("%v: injection burst overflowed cache buffer", kind)
					}
				}
			}
		})
		eng.Run(2_000_000)
		want := int64(net.Nodes() * (net.Nodes() - 1))
		if col.Packets() != want {
			t.Fatalf("%v: delivered %d of %d packets", kind, col.Packets(), want)
		}
		if net.Buffered() != 0 {
			t.Fatalf("%v: %d packets stuck in buffers", kind, net.Buffered())
		}
	}
}

func TestHopsMatchMinimalDistance(t *testing.T) {
	net, eng, _ := build(t, core.KindSPAABase, 8, 8)
	torus := net.Torus()
	type sent struct {
		p        *packet.Packet
		distance int
	}
	var all []sent
	id := uint64(0)
	eng.Schedule(0, func() {
		for s := 0; s < 16; s++ {
			src := topology.Node(s * 4)
			dst := topology.Node((s*7 + 13) % net.Nodes())
			if src == dst {
				continue
			}
			id++
			p := packet.New(id, packet.Request, src, dst, 0)
			all = append(all, sent{p, torus.Distance(src, dst)})
			net.Inject(p, src, ports.InCache, 0)
		}
	})
	eng.Run(200000)
	for _, s := range all {
		if s.p.Hops != s.distance {
			t.Errorf("packet %d took %d hops, minimal distance %d (non-minimal route!)",
				s.p.ID, s.p.Hops, s.distance)
		}
	}
}

func TestTotalCountersAggregate(t *testing.T) {
	net, eng, col := build(t, core.KindSPAABase, 4, 4)
	eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			p := packet.New(uint64(i+1), packet.Request, 0, 10, 0)
			net.Inject(p, 0, ports.InCache, 0)
		}
	})
	eng.Run(100000)
	c := net.TotalCounters()
	if c.Injected != 10 {
		t.Errorf("Injected = %d, want 10", c.Injected)
	}
	if c.DeliveredLocal != 10 || col.Packets() != 10 {
		t.Errorf("delivered = %d/%d, want 10", c.DeliveredLocal, col.Packets())
	}
	// Each delivery is one grant at the final router plus one per hop.
	if c.Grants < 10 {
		t.Errorf("Grants = %d, want >= 10", c.Grants)
	}
}

func TestBadConfigRejected(t *testing.T) {
	eng := sim.NewEngine()
	col := stats.NewCollector(0)
	cfg := router.DefaultConfig(core.KindSPAABase)
	cfg.Kind = core.KindMCM
	if _, err := New(Config{Width: 4, Height: 4, Router: cfg}, eng, col); err == nil {
		t.Fatal("MCM timing network accepted")
	}
}

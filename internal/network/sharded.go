package network

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"alpha21364/internal/sim"
	"alpha21364/internal/stats"
	"alpha21364/internal/topology"
)

// sharded.go is the spatially-sharded assembly of the torus: the router
// rows are split into contiguous bands (topology.PartitionRows), each
// band's link-arrival events live in their own member engine's tick
// wheel, and the router clock edge runs one goroutine per band walking
// the partition's anti-diagonal wavefront schedule. Cross-band coupling
// during an edge is exactly the credit-pool release a router performs on
// its upstream neighbor's pool, and the schedule's WaitOn/Publish flags
// reproduce the serial node-order visibility for every such pair — so a
// sharded run is byte-identical to the monolithic engine, which is what
// lets the golden fingerprints gate this code.

// NewSharded builds the torus over a hub engine plus one member engine
// per partition band, buffering all edge-phase posts (boundary link
// arrivals, in-band link arrivals, sink deliveries) in pb for the
// ShardGroup to flush in node order. The caller drives edges through
// ShardGroup.SetEdge(RouterPeriod, 0, net.TickShard).
func NewSharded(cfg Config, hub *sim.Engine, members []*sim.Engine,
	part *topology.Partition, pb *sim.PostBuffer, collector *stats.Collector) (*Network, error) {
	if part == nil {
		return nil, fmt.Errorf("network: sharded build needs a partition")
	}
	if len(members) != part.Shards() {
		return nil, fmt.Errorf("network: %d member engines for %d shards (need one per shard)",
			len(members), part.Shards())
	}
	n, err := buildNetwork(cfg, hub, collector, part, members, pb)
	if err != nil {
		return nil, err
	}
	n.sched = make([][]topology.Step, part.Shards())
	for b := 0; b < part.Shards(); b++ {
		n.sched[b] = part.Schedule(b)
	}
	n.flags = make([]atomic.Uint64, n.torus.Nodes())
	return n, nil
}

// Lookahead returns the conservative synchronization window for this
// network: the inter-router link latency. Every cross-shard event is a
// link traversal posted at least this far in the future (a header
// departs no earlier than the tick of the edge that granted it), which
// is the CMB bound the ShardGroup asserts on every flushed post.
func (n *Network) Lookahead() sim.Ticks {
	return sim.Ticks(n.cfg.Router.LinkLatencyCycles) * n.cfg.Router.LinkPeriod
}

// TickShard runs one band's share of a router clock edge: its cells in
// anti-diagonal wavefront order, spinning on the edge flags of
// cross-band dependencies and publishing its own boundary cells' flags
// as they complete. It is a sim.EdgeJob; the ShardGroup invokes it once
// per shard per edge, concurrently.
func (n *Network) TickShard(shard int, now sim.Ticks, edge uint64) {
	sched := n.sched[shard]
	for i := range sched {
		st := &sched[i]
		for _, dep := range st.WaitOn {
			for n.flags[dep].Load() < edge {
				runtime.Gosched()
			}
		}
		n.routers[st.Node].Tick(now)
		if st.Publish {
			n.flags[st.Node].Store(edge)
		}
	}
}

package check

import (
	"strings"
	"testing"

	"alpha21364/internal/core"
	"alpha21364/internal/obs"
	"alpha21364/internal/packet"
	"alpha21364/internal/ports"
	"alpha21364/internal/router"
	"alpha21364/internal/sim"
	"alpha21364/internal/topology"
	"alpha21364/internal/vc"
)

// testRouter builds a router whose four network outputs feed a blackhole:
// dispatched packets vanish without ever arriving anywhere or returning
// their credits — an artificial stall no correct network can produce,
// which is exactly what the oracle must detect.
func testRouter(t *testing.T) (*router.Router, *int64) {
	t.Helper()
	cfg := router.DefaultConfig(core.KindSPAARotary)
	torus := topology.NewTorus(4, 4)
	r, err := router.New(cfg, 0, torus)
	if err != nil {
		t.Fatal(err)
	}
	sent := new(int64)
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		r.ConnectNetwork(ports.OutForDir(d),
			func(p *packet.Packet, targetCh vc.Channel, headerDepart sim.Ticks, creditHome *vc.Credits) {
				*sent++
			})
	}
	for _, out := range []ports.Out{ports.OutMC0, ports.OutMC1, ports.OutIO} {
		r.ConnectLocal(out, func(p *packet.Packet, at sim.Ticks) {})
	}
	return r, sent
}

// driveSweeps attaches the checker's periodic sweep to the engine the way
// the experiment harness does.
func driveSweeps(eng *sim.Engine, chk *Checker) {
	interval := chk.Interval()
	var sweep func()
	sweep = func() {
		chk.Sweep(eng.Now())
		if chk.Err() == nil {
			eng.ScheduleDelay(interval, sweep)
		}
	}
	eng.ScheduleDelay(interval, sweep)
}

// stalledInjector keeps offering packets toward a fixed destination until
// the router's injection buffer refuses them.
type stalledInjector struct {
	r      *router.Router
	dst    topology.Node
	nextID uint64
	want   int
}

func (inj *stalledInjector) Tick(now sim.Ticks) {
	for inj.nextID < uint64(inj.want) {
		p := packet.New(inj.nextID+1, packet.Request, 0, inj.dst, now)
		if !inj.r.Inject(p, ports.InCache, now) {
			return
		}
		inj.nextID++
	}
}

// TestWatchdogTripsOnStalledRouter is the deadlock-watchdog regression
// test: an adversarial hand-built scenario — packets funneled at a
// blackhole link that eats credits — must trip the watchdog with a report
// naming the stuck router and virtual channels.
func TestWatchdogTripsOnStalledRouter(t *testing.T) {
	r, sent := testRouter(t)
	cfg := r.Config()
	eng := sim.NewEngine()
	// Destination two hops east: every productive and escape direction is
	// East, so all traffic funnels into one blackhole port.
	inj := &stalledInjector{r: r, dst: topology.Node(2), want: 400}
	eng.AddClock(cfg.RouterPeriod, 0, r, inj)

	ring := obs.NewFlightRing(obs.DefaultFlightDepth)
	r.SetFlight(ring)
	chk := New(Config{HorizonCycles: 200, EveryCycles: 20, RouterPeriod: cfg.RouterPeriod}, Probes{
		Injected:    func() int64 { return r.Counters.Injected },
		Delivered:   func() int64 { return r.Counters.DeliveredLocal },
		Buffered:    r.Buffered,
		LinkFlight:  func() int64 { return *sent },
		Stop:        eng.Stop,
		Routers:     []*router.Router{r},
		FlightRings: []*obs.FlightRing{ring},
	})
	r.SetOracle(chk)
	driveSweeps(eng, chk)

	eng.Run(cfg.RouterPeriod * 100000)
	v := chk.Violation()
	if v == nil {
		t.Fatal("stalled router did not trip the watchdog")
	}
	if v.Invariant != "watchdog" {
		t.Fatalf("expected a watchdog violation, got %q: %v", v.Invariant, v)
	}
	if len(v.Stuck) == 0 {
		t.Fatal("watchdog report names no stuck virtual channels")
	}
	for _, s := range v.Stuck {
		if s.Node != 0 {
			t.Errorf("stuck VC names router %d, want 0", s.Node)
		}
		if s.Queued <= 0 || s.OldestID == 0 {
			t.Errorf("stuck VC carries no useful occupancy: %+v", s)
		}
		if s.Waited <= 0 {
			t.Errorf("stuck VC reports no waiting time: %+v", s)
		}
	}
	// The flight recorder's dump rides along: the stuck router's recent
	// engine events, as a structured trace and as JSON in the message.
	if len(v.Trace) != 1 || v.Trace[0].Node != 0 {
		t.Fatalf("watchdog trace = %+v, want one dump for router 0", v.Trace)
	}
	if len(v.Trace[0].Events) == 0 {
		t.Fatal("watchdog trace holds no flight events")
	}
	var sawReset bool
	for _, e := range v.Trace[0].Events {
		if e.Kind == obs.FlightReset {
			sawReset = true
		}
	}
	if !sawReset {
		t.Error("stuck router's trace shows no nomination resets")
	}
	msg := v.Error()
	for _, want := range []string{"watchdog", "no delivery", "router 0", "L-Cache",
		`flight {"node":0,"events":[`, `"kind":"reset"`} {
		if !strings.Contains(msg, want) {
			t.Errorf("violation message %q does not mention %q", msg, want)
		}
	}
	// The run must have stopped at the horizon, not burned to the end.
	if eng.Now() >= cfg.RouterPeriod*100000 {
		t.Error("violation did not stop the engine")
	}
}

func TestSPAAGrantLegality(t *testing.T) {
	r, _ := testRouter(t)
	g := router.SPAAGrant{ID: 7, Row: 9, In: ports.InCache, Out: ports.OutEast, TargetCh: 0}

	t.Run("grant without nomination", func(t *testing.T) {
		chk := New(Config{}, Probes{Routers: []*router.Router{r}})
		chk.SPAAResolve(r, 100, []router.SPAAGrant{g})
		v := chk.Violation()
		if v == nil || v.Invariant != "grant-legality" {
			t.Fatalf("unmatched grant not caught: %v", v)
		}
		if !strings.Contains(v.Error(), "no pending nomination") {
			t.Errorf("unhelpful message: %v", v)
		}
	})

	t.Run("nominated grant is legal once", func(t *testing.T) {
		chk := New(Config{}, Probes{Routers: []*router.Router{r}})
		chk.SPAANominate(r, 50, g, 100)
		chk.SPAAResolve(r, 100, []router.SPAAGrant{g})
		if err := chk.Err(); err != nil {
			t.Fatalf("legal grant flagged: %v", err)
		}
		// The nomination was consumed: granting it again is illegal.
		chk.SPAAResolve(r, 103, []router.SPAAGrant{g})
		if chk.Violation() == nil {
			t.Fatal("double-consumed nomination not caught")
		}
	})

	t.Run("nomination not yet due", func(t *testing.T) {
		chk := New(Config{}, Probes{Routers: []*router.Router{r}})
		chk.SPAANominate(r, 50, g, 100)
		chk.SPAAResolve(r, 99, []router.SPAAGrant{g})
		if chk.Violation() == nil {
			t.Fatal("early resolution not caught")
		}
	})

	t.Run("output granted twice", func(t *testing.T) {
		chk := New(Config{}, Probes{Routers: []*router.Router{r}})
		g2 := g
		g2.ID, g2.Row = 8, 11
		chk.SPAANominate(r, 50, g, 100)
		chk.SPAANominate(r, 50, g2, 100)
		chk.SPAAResolve(r, 100, []router.SPAAGrant{g, g2})
		v := chk.Violation()
		if v == nil || !strings.Contains(v.Msg, "granted twice") {
			t.Fatalf("double output grant not caught: %v", v)
		}
	})

	t.Run("row granted twice", func(t *testing.T) {
		chk := New(Config{}, Probes{Routers: []*router.Router{r}})
		g2 := g
		g2.ID, g2.Out = 8, ports.OutNorth
		chk.SPAANominate(r, 50, g, 100)
		chk.SPAANominate(r, 50, g2, 100)
		chk.SPAAResolve(r, 100, []router.SPAAGrant{g, g2})
		v := chk.Violation()
		if v == nil || !strings.Contains(v.Msg, "read port row") {
			t.Fatalf("double row grant not caught: %v", v)
		}
	})
}

func TestWaveGrantLegality(t *testing.T) {
	r, _ := testRouter(t)
	mk := func() *core.Matrix {
		m := core.NewRouterMatrix()
		m.Set(0, 0, 10, 1, 0)
		m.Set(2, 1, 11, 2, 0)
		m.Set(2, 2, 11, 2, 0) // same packet, second column: legal
		return m
	}

	t.Run("legal wave passes", func(t *testing.T) {
		chk := New(Config{}, Probes{Routers: []*router.Router{r}})
		m := mk()
		chk.WaveResolve(r, 100, m, []core.Grant{
			{Row: 0, Col: 0, Cell: m.At(0, 0)},
			{Row: 2, Col: 1, Cell: m.At(2, 1)},
		})
		if err := chk.Err(); err != nil {
			t.Fatalf("legal wave flagged: %v", err)
		}
	})

	t.Run("packet in two rows", func(t *testing.T) {
		chk := New(Config{}, Probes{Routers: []*router.Router{r}})
		m := mk()
		m.Set(5, 3, 11, 2, 0) // packet 2 now nominated by rows 2 and 5
		chk.WaveResolve(r, 100, m, nil)
		v := chk.Violation()
		if v == nil || v.Invariant != "wave-matrix" {
			t.Fatalf("two-row packet not caught: %v", v)
		}
	})

	t.Run("packet in three columns", func(t *testing.T) {
		chk := New(Config{}, Probes{Routers: []*router.Router{r}})
		m := mk()
		m.Set(2, 3, 11, 2, 0)
		chk.WaveResolve(r, 100, m, nil)
		v := chk.Violation()
		if v == nil || !strings.Contains(v.Msg, "more than two columns") {
			t.Fatalf("three-column packet not caught: %v", v)
		}
	})

	t.Run("grant on empty cell", func(t *testing.T) {
		chk := New(Config{}, Probes{Routers: []*router.Router{r}})
		m := mk()
		chk.WaveResolve(r, 100, m, []core.Grant{{Row: 4, Col: 4}})
		v := chk.Violation()
		if v == nil || !strings.Contains(v.Msg, "no pending request") {
			t.Fatalf("empty-cell grant not caught: %v", v)
		}
	})

	t.Run("column granted twice", func(t *testing.T) {
		chk := New(Config{}, Probes{Routers: []*router.Router{r}})
		m := mk()
		m.Set(4, 0, 12, 3, 0)
		chk.WaveResolve(r, 100, m, []core.Grant{
			{Row: 0, Col: 0, Cell: m.At(0, 0)},
			{Row: 4, Col: 0, Cell: m.At(4, 0)},
		})
		v := chk.Violation()
		if v == nil || !strings.Contains(v.Msg, "granted twice") {
			t.Fatalf("double column grant not caught: %v", v)
		}
	})
}

func TestConservationAndArena(t *testing.T) {
	t.Run("leak detected", func(t *testing.T) {
		chk := New(Config{}, Probes{
			Injected:  func() int64 { return 10 },
			Delivered: func() int64 { return 4 },
			Buffered:  func() int { return 3 }, // 3 packets unaccounted for
		})
		chk.Sweep(1000)
		v := chk.Violation()
		if v == nil || v.Invariant != "conservation" {
			t.Fatalf("leak not caught: %v", v)
		}
	})

	t.Run("arena leak detected", func(t *testing.T) {
		chk := New(Config{}, Probes{
			Injected:  func() int64 { return 10 },
			Delivered: func() int64 { return 7 },
			Buffered:  func() int { return 3 },
			ArenaLive: func() int { return 5 }, // 2 more than accounted: leaked
			Sunk:      func() int64 { return 7 },
		})
		chk.Final(1000)
		v := chk.Violation()
		if v == nil || v.Invariant != "arena-leak" {
			t.Fatalf("arena leak not caught: %v", v)
		}
	})

	t.Run("consistent state passes", func(t *testing.T) {
		chk := New(Config{}, Probes{
			Injected:          func() int64 { return 10 },
			Delivered:         func() int64 { return 6 },
			Buffered:          func() int { return 3 },
			LinkFlight:        func() int64 { return 1 },
			PendingInjections: func() int { return 2 },
			ArenaLive:         func() int { return 7 }, // 3 buffered + 1 flight + 2 pending + 1 awaiting sink
			Sunk:              func() int64 { return 5 },
		})
		chk.Sweep(1000)
		chk.Final(2000)
		if err := chk.Err(); err != nil {
			t.Fatalf("consistent state flagged: %v", err)
		}
	})
}

func TestCreditBounds(t *testing.T) {
	r, _ := testRouter(t)
	chk := New(Config{}, Probes{Routers: []*router.Router{r}})
	chk.Sweep(10)
	if err := chk.Err(); err != nil {
		t.Fatalf("fresh router flagged: %v", err)
	}
	// A spurious credit release pushes the pool past its capacity — the
	// signature of a double release.
	r.OutputCredits(ports.OutEast).Release(vc.Of(packet.Request, vc.Adaptive))
	chk.Sweep(20)
	v := chk.Violation()
	if v == nil || v.Invariant != "credit-bounds" {
		t.Fatalf("credit double release not caught: %v", v)
	}
	if !strings.Contains(v.Msg, "double release") {
		t.Errorf("unhelpful message: %v", v)
	}
}

// TestCheckerStopsAtFirstViolation verifies only the first violation is
// recorded and later sweeps are inert.
func TestCheckerStopsAtFirstViolation(t *testing.T) {
	stops := 0
	chk := New(Config{}, Probes{
		Injected:  func() int64 { return 1 },
		Delivered: func() int64 { return 0 },
		Buffered:  func() int { return 0 },
		Stop:      func() { stops++ },
	})
	chk.Sweep(100)
	first := chk.Violation()
	chk.Sweep(200)
	chk.Final(300)
	if chk.Violation() != first {
		t.Error("violation was overwritten")
	}
	if stops != 1 {
		t.Errorf("Stop called %d times, want 1", stops)
	}
}

// Package check is the simulation oracle: an online invariant layer that
// watches a running timing simulation for the failure classes a torus /
// virtual-channel simulator must never exhibit — packet leaks, credit
// accounting corruption, illegal arbitration grants, and silent deadlock
// or livelock. It exists because golden fingerprints pin *a* behavior,
// not a *correct* one: after an aggressive hot-path refactor the
// fingerprints can reproduce a wrong behavior byte for byte, while the
// invariants here hold only for correct ones.
//
// The oracle has two halves:
//
//   - Push hooks: the router reports every arbitration decision through
//     the router.Oracle interface (SPAA nominations and resolutions,
//     PIM1/WFA wave matrices and grants), and the Checker verifies grant
//     legality online — every grant matches a pending request, no read
//     port or output port is granted twice in a resolution, and wave
//     matrices satisfy the 21364 builder constraints.
//   - Pull sweeps: Sweep (scheduled periodically by the harness) and
//     Final (at drain) read the network's conservation counters, every
//     router's buffer occupancy and credit pools, and the packet arena's
//     live count, and run the deadlock/livelock watchdog.
//
// Cost model: when disabled nothing is wired — the router's only residual
// cost is one nil test per GA resolution, and the hot-path allocation
// counts stay at zero. When enabled, the hooks add bounded per-resolution
// work (no maps, reused scratch) and the sweeps add an O(routers ×
// channels) scan every EveryCycles cycles.
package check

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"strings"
	"sync"
	"sync/atomic"

	"alpha21364/internal/core"
	"alpha21364/internal/obs"
	"alpha21364/internal/ports"
	"alpha21364/internal/router"
	"alpha21364/internal/sim"
	"alpha21364/internal/vc"
)

// Config tunes the oracle. The zero value picks the defaults.
type Config struct {
	// HorizonCycles is the deadlock watchdog's no-progress horizon: with
	// packets in flight and no delivery for this many router cycles, the
	// watchdog declares the network stuck. 0 means 10000 cycles — far
	// beyond any healthy run's inter-delivery gap, including saturation.
	HorizonCycles int
	// EveryCycles is the periodic sweep interval in router cycles; 0
	// means 256.
	EveryCycles int
	// RouterPeriod converts cycle counts to engine ticks; 0 means
	// sim.RouterPeriod.
	RouterPeriod sim.Ticks
}

func (c Config) withDefaults() Config {
	if c.HorizonCycles <= 0 {
		c.HorizonCycles = 10000
	}
	if c.EveryCycles <= 0 {
		c.EveryCycles = 256
	}
	if c.RouterPeriod <= 0 {
		c.RouterPeriod = sim.RouterPeriod
	}
	return c
}

// Probes give the Checker its read-only view of the simulation. Routers
// is required; every function probe is optional (nil skips the checks
// that need it), so hand-built test rigs can wire only what they have.
type Probes struct {
	// Injected and Delivered are the network-wide conservation counters:
	// packets accepted at local input ports and packets dispatched to
	// local output ports.
	Injected  func() int64
	Delivered func() int64
	// Buffered is the total packets buffered across all routers, and
	// LinkFlight the packets on inter-router wires.
	Buffered   func() int
	LinkFlight func() int64
	// PendingInjections counts packets queued processor-side awaiting
	// buffer space; ArenaLive is the packet arena's checked-out count;
	// Sunk counts fully processed (released) deliveries. Together they
	// close the arena leak check.
	PendingInjections func() int
	ArenaLive         func() int
	Sunk              func() int64
	// Stop halts the simulation on the first violation (typically
	// Engine.Stop); the Checker still records the violation without it.
	Stop func()
	// Routers are the routers to watch. The Checker installs nothing;
	// the harness is responsible for SetOracle on each.
	Routers []*router.Router
	// FlightRings, when non-nil, holds each router's flight recorder,
	// parallel to Routers. The deadlock watchdog dumps the stuck routers'
	// rings into its Violation, turning "stuck (router,in,ch)" into a
	// replayable last-N-events trace.
	FlightRings []*obs.FlightRing
}

// StuckVC names one stuck buffer in a watchdog report.
type StuckVC struct {
	Node     int        `json:"node"`
	In       ports.In   `json:"in"`
	Ch       vc.Channel `json:"ch"`
	Queued   int        `json:"queued"`
	OldestID uint64     `json:"oldest_id"`
	// Waited is how long the buffer's oldest packet has been sitting.
	Waited sim.Ticks `json:"waited"`
}

func (s StuckVC) String() string {
	return fmt.Sprintf("router %d %v/%v: %d queued, oldest packet %d waited %d ticks",
		s.Node, s.In, s.Ch, s.Queued, s.OldestID, s.Waited)
}

// Violation is a structured invariant failure. It implements error and
// marshals to JSON so harnesses can log it structurally.
type Violation struct {
	// Invariant is the failed class: "grant-legality", "wave-matrix",
	// "vc-bounds", "credit-bounds", "conservation", "arena-leak", or
	// "watchdog".
	Invariant string `json:"invariant"`
	// Node is the router the violation is local to, -1 for network-wide
	// invariants.
	Node int `json:"node"`
	// At is the engine tick of detection.
	At sim.Ticks `json:"at"`
	// Msg describes the failure.
	Msg string `json:"msg"`
	// Stuck lists the stuck buffers of a watchdog violation.
	Stuck []StuckVC `json:"stuck,omitempty"`
	// Trace holds the stuck routers' flight-recorder dumps (watchdog
	// violations with Probes.FlightRings wired): the last-N engine events
	// per stuck router, oldest first.
	Trace []obs.FlightDump `json:"trace,omitempty"`
}

func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: %s invariant violated at tick %d", v.Invariant, v.At)
	if v.Node >= 0 {
		fmt.Fprintf(&b, " (router %d)", v.Node)
	}
	b.WriteString(": ")
	b.WriteString(v.Msg)
	for _, s := range v.Stuck {
		b.WriteString("\n  ")
		b.WriteString(s.String())
	}
	for _, d := range v.Trace {
		if enc, err := json.Marshal(d); err == nil {
			b.WriteString("\n  flight ")
			b.Write(enc)
		}
	}
	return b.String()
}

// pendingNom is one SPAA nomination awaiting its GA resolution.
type pendingNom struct {
	g         router.SPAAGrant
	resolveAt sim.Ticks
}

// routerState is the Checker's per-router bookkeeping. Everything a push
// hook touches lives here (including the wave-matrix scratch), because a
// spatially-sharded simulation ticks routers from concurrent edge
// workers: per-router state keeps the hooks race-free without locks.
type routerState struct {
	pending []pendingNom

	// Reused scratch for the wave-matrix and grant-legality checks.
	keyBuf []uint64
	rowBuf []int
	colBuf []int
}

// Checker is the oracle. The pull sweeps are single-threaded (the
// harness schedules them on the hub engine); the push hooks may be
// invoked concurrently for *different* routers — each router's state is
// private, the failure fast path is an atomic flag, and the first
// violation wins under a mutex. Concurrent hook callers must be
// registered in Probes.Routers (New prepopulates their states); the
// lazy-registration path exists for serial hand-built rigs only.
type Checker struct {
	cfg    Config
	probes Probes
	states map[*router.Router]*routerState

	// failed is the hooks' lock-free "already violated" fast path; mu
	// serializes recording the first violation and lazy registration.
	failed atomic.Bool
	mu     sync.Mutex
	v      *Violation

	// Watchdog state.
	watchInit     bool
	lastDelivered int64
	progressAt    sim.Ticks
}

// New builds a Checker over the given probes. Install it on each router
// with SetOracle to enable the grant-legality hooks; schedule Sweep
// periodically and call Final at drain for the rest.
func New(cfg Config, probes Probes) *Checker {
	c := &Checker{
		cfg:    cfg.withDefaults(),
		probes: probes,
		states: make(map[*router.Router]*routerState, len(probes.Routers)),
	}
	for _, r := range probes.Routers {
		c.states[r] = &routerState{}
	}
	return c
}

// Interval returns the sweep period in engine ticks.
func (c *Checker) Interval() sim.Ticks {
	return sim.Ticks(c.cfg.EveryCycles) * c.cfg.RouterPeriod
}

// Err returns the first violation as an error, nil if none.
func (c *Checker) Err() error {
	if v := c.Violation(); v != nil {
		return v
	}
	return nil
}

// Violation returns the structured first failure, nil if none.
func (c *Checker) Violation() *Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// fail records the first violation and stops the simulation. Concurrent
// callers race for first; exactly one records and calls Stop.
func (c *Checker) fail(v *Violation) {
	c.mu.Lock()
	if c.v != nil {
		c.mu.Unlock()
		return
	}
	c.v = v
	c.failed.Store(true)
	c.mu.Unlock()
	if c.probes.Stop != nil {
		c.probes.Stop()
	}
}

// state returns r's bookkeeping, registering it on first use (serial
// rigs only; see the Checker doc comment).
func (c *Checker) state(r *router.Router) *routerState {
	if st := c.states[r]; st != nil {
		return st
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.states[r]
	if st == nil {
		st = &routerState{}
		c.states[r] = st
	}
	return st
}

func (c *Checker) failf(invariant string, node int, at sim.Ticks, format string, args ...any) {
	c.fail(&Violation{Invariant: invariant, Node: node, At: at, Msg: fmt.Sprintf(format, args...)})
}

// ---- push hooks (router.Oracle) ----

// SPAANominate implements router.Oracle: it records the nomination so the
// matching resolution can be verified against a pending request.
func (c *Checker) SPAANominate(r *router.Router, now sim.Ticks, g router.SPAAGrant, resolveAt sim.Ticks) {
	if c.failed.Load() {
		return
	}
	st := c.state(r)
	if resolveAt < now {
		c.failf("grant-legality", int(r.Node()), now,
			"nomination of packet %d resolves in the past (tick %d)", g.ID, resolveAt)
		return
	}
	st.pending = append(st.pending, pendingNom{g: g, resolveAt: resolveAt})
}

// SPAAResolve implements router.Oracle: every committed grant must match
// a pending nomination due now, and no read-port row or output port may
// be granted twice in one resolution.
func (c *Checker) SPAAResolve(r *router.Router, now sim.Ticks, grants []router.SPAAGrant) {
	if c.failed.Load() {
		return
	}
	node := int(r.Node())
	st := c.states[r]
	for i := range grants {
		g := &grants[i]
		for j := 0; j < i; j++ {
			if grants[j].Out == g.Out {
				c.failf("grant-legality", node, now,
					"output port %v granted twice in one resolution (packets %d and %d)",
					g.Out, grants[j].ID, g.ID)
				return
			}
			if grants[j].Row == g.Row {
				c.failf("grant-legality", node, now,
					"read port row %d granted twice in one resolution (packets %d and %d)",
					g.Row, grants[j].ID, g.ID)
				return
			}
		}
		if st == nil || !consumePending(st, g, now) {
			c.failf("grant-legality", node, now,
				"grant of packet %d to %v matches no pending nomination", g.ID, g.Out)
			return
		}
	}
	if st == nil {
		return
	}
	// Every nomination due by now has been resolved (granted or reset);
	// drop the batch.
	kept := st.pending[:0]
	for _, p := range st.pending {
		if p.resolveAt > now {
			kept = append(kept, p)
		}
	}
	st.pending = kept
}

// consumePending finds and removes the pending nomination a grant
// commits.
func consumePending(st *routerState, g *router.SPAAGrant, now sim.Ticks) bool {
	for i := range st.pending {
		p := &st.pending[i]
		if p.g.ID == g.ID && p.g.Out == g.Out && p.g.Row == g.Row && p.resolveAt <= now {
			st.pending[i] = st.pending[len(st.pending)-1]
			st.pending = st.pending[:len(st.pending)-1]
			return true
		}
	}
	return false
}

// WaveResolve implements router.Oracle: the connection matrix must
// satisfy the 21364 builder invariants (a packet in at most one row and
// two columns, every valid cell a real request) and the grants must form
// a matching over valid cells.
func (c *Checker) WaveResolve(r *router.Router, now sim.Ticks, m *core.Matrix, grants []core.Grant) {
	if c.failed.Load() {
		return
	}
	node := int(r.Node())
	st := c.state(r)
	// Builder invariants over the matrix, iterating the row validity
	// words so only populated cells are visited.
	st.keyBuf, st.rowBuf, st.colBuf = st.keyBuf[:0], st.rowBuf[:0], st.colBuf[:0]
	for row := 0; row < m.Rows; row++ {
		for w := m.RowMask(row); w != 0; w &= w - 1 {
			col := bits.TrailingZeros64(w)
			cell := m.At(row, col)
			seen := false
			for i, k := range st.keyBuf {
				if k != cell.Key {
					continue
				}
				seen = true
				if st.rowBuf[i] != row {
					c.failf("wave-matrix", node, now,
						"packet %d nominated by rows %d and %d", cell.Key, st.rowBuf[i], row)
					return
				}
				st.colBuf[i]++
				if st.colBuf[i] > 2 {
					c.failf("wave-matrix", node, now,
						"packet %d nominated to more than two columns", cell.Key)
					return
				}
			}
			if !seen {
				st.keyBuf = append(st.keyBuf, cell.Key)
				st.rowBuf = append(st.rowBuf, row)
				st.colBuf = append(st.colBuf, 1)
			}
		}
	}
	// Grants form a matching over valid cells; the used row/column sets
	// are single words (core.MaxDim bounds the shape).
	var usedRow, usedCol uint64
	for _, g := range grants {
		if g.Row < 0 || g.Row >= m.Rows || g.Col < 0 || g.Col >= m.Cols {
			c.failf("grant-legality", node, now, "wave grant (%d,%d) out of range", g.Row, g.Col)
			return
		}
		cell := m.At(g.Row, g.Col)
		if !cell.Valid || cell.Key != g.Cell.Key {
			c.failf("grant-legality", node, now,
				"wave grant (%d,%d) of packet %d matches no pending request", g.Row, g.Col, g.Cell.Key)
			return
		}
		if usedRow&(1<<uint(g.Row)) != 0 {
			c.failf("grant-legality", node, now, "read port row %d granted twice in one wave", g.Row)
			return
		}
		if usedCol&(1<<uint(g.Col)) != 0 {
			c.failf("grant-legality", node, now, "output column %d granted twice in one wave", g.Col)
			return
		}
		usedRow |= 1 << uint(g.Row)
		usedCol |= 1 << uint(g.Col)
	}
}

// ---- pull sweeps ----

// Sweep runs the periodic invariants at tick now: buffer occupancy and
// credit bounds per (port, channel), packet conservation, the arena leak
// cross-check, and the deadlock watchdog. Schedule it every Interval()
// ticks.
func (c *Checker) Sweep(now sim.Ticks) {
	if c.failed.Load() {
		return
	}
	c.checkBounds(now)
	c.checkFlow(now, true)
}

// Final runs the drain-time invariants: everything Sweep checks except
// the watchdog (a run may legitimately end with packets in flight).
func (c *Checker) Final(now sim.Ticks) {
	if c.failed.Load() {
		return
	}
	c.checkBounds(now)
	c.checkFlow(now, false)
}

// checkBounds verifies per-(port, channel) buffer occupancy and credit
// pools against the configured capacities.
func (c *Checker) checkBounds(now sim.Ticks) {
	for _, r := range c.probes.Routers {
		cfg := r.Config().Buffers
		node := int(r.Node())
		for in := ports.In(0); in < ports.NumIn; in++ {
			for ch := vc.Channel(0); ch < vc.NumChannels; ch++ {
				if n, capacity := r.QueueLen(in, ch), cfg.Capacity(ch); n > capacity {
					c.failf("vc-bounds", node, now,
						"%v/%v holds %d packets, capacity %d", in, ch, n, capacity)
					return
				}
			}
		}
		for out := ports.Out(0); out < ports.NumOut; out++ {
			if !out.IsNetwork() {
				continue
			}
			cr := r.OutputCredits(out)
			if cr == nil {
				continue // unconnected port in a hand-built rig
			}
			for ch := vc.Channel(0); ch < vc.NumChannels; ch++ {
				free, capacity := cr.Free(ch), cfg.Capacity(ch)
				if free < 0 {
					c.failf("credit-bounds", node, now,
						"%v/%v has %d free credits (over-reserved)", out, ch, free)
					return
				}
				if free > capacity {
					c.failf("credit-bounds", node, now,
						"%v/%v has %d free credits, capacity %d (double release)", out, ch, free, capacity)
					return
				}
			}
		}
	}
}

// checkFlow reads the conservation counters once and runs the
// conservation, arena-leak, and (on sweeps) watchdog checks over the
// shared snapshot, so one sweep costs one pass over the probes however
// many invariants consume the counters.
func (c *Checker) checkFlow(now sim.Ticks, watchdog bool) {
	p := &c.probes
	if p.Delivered == nil || p.Buffered == nil {
		return
	}
	delivered := p.Delivered()
	buffered := int64(p.Buffered())
	var flight int64
	if p.LinkFlight != nil {
		flight = p.LinkFlight()
	}
	if p.Injected != nil {
		injected := p.Injected()
		if injected != delivered+buffered+flight {
			c.failf("conservation", -1, now,
				"%d injected != %d delivered + %d buffered + %d on links (leak or duplication of %d packets)",
				injected, delivered, buffered, flight, injected-(delivered+buffered+flight))
			return
		}
		if p.ArenaLive != nil {
			var pending, sinkFlight int64
			if p.PendingInjections != nil {
				pending = int64(p.PendingInjections())
			}
			if p.Sunk != nil {
				sinkFlight = delivered - p.Sunk()
			}
			accounted := buffered + flight + pending + sinkFlight
			if live := int64(p.ArenaLive()); live != accounted {
				c.failf("arena-leak", -1, now,
					"arena holds %d live packets but only %d are accounted for (%d buffered + %d on links + %d pending injection + %d awaiting sink)",
					live, accounted, buffered, flight, pending, sinkFlight)
				return
			}
		}
	}
	if !watchdog {
		return
	}
	c.checkWatchdog(now, delivered, buffered+flight)
}

// checkWatchdog declares the network stuck when packets are in flight but
// nothing has been delivered for the configured horizon, and names the
// stuck buffers.
func (c *Checker) checkWatchdog(now sim.Ticks, delivered, inFlight int64) {
	if !c.watchInit || delivered != c.lastDelivered {
		c.watchInit = true
		c.lastDelivered = delivered
		c.progressAt = now
		return
	}
	horizon := sim.Ticks(c.cfg.HorizonCycles) * c.cfg.RouterPeriod
	if inFlight == 0 || now-c.progressAt < horizon {
		return
	}
	v := &Violation{
		Invariant: "watchdog",
		Node:      -1,
		At:        now,
		Msg: fmt.Sprintf("%d packets in flight but no delivery for %d ticks (horizon %d cycles)",
			inFlight, now-c.progressAt, c.cfg.HorizonCycles),
	}
	for _, r := range c.probes.Routers {
		node := int(r.Node())
		r.ScanOccupied(func(in ports.In, ch vc.Channel, queued int, oldestID uint64, oldestArrive sim.Ticks) {
			v.Stuck = append(v.Stuck, StuckVC{
				Node: node, In: in, Ch: ch, Queued: queued,
				OldestID: oldestID, Waited: now - oldestArrive,
			})
		})
	}
	// With flight recorders wired, attach each stuck router's trace once.
	if len(c.probes.FlightRings) == len(c.probes.Routers) {
		dumped := make(map[int]bool)
		for i, r := range c.probes.Routers {
			node := int(r.Node())
			ring := c.probes.FlightRings[i]
			if ring == nil || dumped[node] {
				continue
			}
			for _, s := range v.Stuck {
				if s.Node == node {
					dumped[node] = true
					v.Trace = append(v.Trace, ring.Dump(node))
					break
				}
			}
		}
	}
	c.fail(v)
}

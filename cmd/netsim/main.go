// Command netsim runs one timing-model simulation of the 21364 torus and
// prints its BNF point and diagnostics. It is a thin client of the
// Scenario/Runner API: the flags build a single-scenario Spec, a Runner
// executes it, and -json dumps the machine-readable Result document.
//
// Usage:
//
//	netsim [-alg SPAA-rotary] [-size 8x8] [-pattern random] [-rate F]
//	       [-outstanding N] [-cycles N] [-scale-pipeline] [-seed N] [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"alpha21364"
	"alpha21364/internal/prof"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsim: ")
	alg := flag.String("alg", "SPAA-base", "algorithm (PIM1, WFA-base, WFA-rotary, SPAA-base, SPAA-rotary)")
	size := flag.String("size", "8x8", "torus dimensions WxH")
	pattern := flag.String("pattern", "random", "traffic pattern (random, bit-reversal, perfect-shuffle, ...)")
	rate := flag.Float64("rate", 0.02, "new transactions per node per router cycle")
	outstanding := flag.Int("outstanding", 16, "outstanding-miss limit per processor")
	cycles := flag.Int("cycles", 75000, "router cycles to simulate")
	scale := flag.Bool("scale-pipeline", false, "double pipeline depth and clock (Figure 11a)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	series := flag.Int("series", 0, "if > 0, print delivered flits per N-cycle epoch (saturation oscillation)")
	jsonOut := flag.Bool("json", false, "print the Result document as JSON instead of text")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	stopProf, err := prof.Start(*cpuprofile, *memprofile, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	var w, h int
	if _, err := fmt.Sscanf(*size, "%dx%d", &w, &h); err != nil || w < 2 || h < 2 {
		log.Fatalf("bad -size %q (want WxH, each >= 2)", *size)
	}

	opts := []alpha21364.SpecOption{
		alpha21364.WithName("netsim"),
		alpha21364.WithTopology(w, h),
		alpha21364.WithArbiters(*alg),
		alpha21364.WithPatterns(*pattern),
		alpha21364.WithRates(*rate),
		alpha21364.WithMaxOutstanding(*outstanding),
		alpha21364.WithCycles(*cycles),
		alpha21364.WithSeed(*seed),
		alpha21364.WithEpochCycles(*series),
	}
	if *scale {
		opts = append(opts, alpha21364.WithScaledPipeline())
	}
	spec := alpha21364.NewSpec(opts...)

	result, err := alpha21364.NewRunner().Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(result); err != nil {
			log.Fatal(err)
		}
		return
	}
	s := result.Series[0]
	res := s.Points[0]
	fmt.Printf("network:            %dx%d torus, %s traffic, %s\n", w, h, s.Pattern, s.Arbiter)
	fmt.Printf("offered rate:       %.4f txn/node/cycle (max %d outstanding)\n", *rate, *outstanding)
	fmt.Printf("delivered:          %.4f flits/router/ns\n", res.Throughput)
	fmt.Printf("avg packet latency: %.1f ns (p50 %.0f / p95 %.0f / p99 %.0f ns)\n",
		res.AvgLatencyNS, res.LatencyP50NS, res.LatencyP95NS, res.LatencyP99NS)
	fmt.Printf("packets measured:   %d (%.2f mean hops)\n", res.Packets, res.MeanHops)
	fmt.Printf("transactions done:  %d\n", res.Completed)
	fmt.Printf("arbitration resets: %d (collisions / wave losers)\n", res.Collisions)
	fmt.Printf("starvation drains:  %d\n", res.DrainEntries)
	if *series > 0 {
		fmt.Printf("throughput CoV:     %.3f (delivered-flit oscillation, post-warmup)\n", res.ThroughputCoV)
		fmt.Printf("flits per %d-cycle epoch:\n", *series)
		for i, v := range res.EpochFlits {
			fmt.Printf("%8d", v)
			if (i+1)%8 == 0 {
				fmt.Println()
			}
		}
		fmt.Println()
	}
}

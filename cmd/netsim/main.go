// Command netsim runs one timing-model simulation of the 21364 torus and
// prints its BNF point and diagnostics.
//
// Usage:
//
//	netsim [-alg SPAA-rotary] [-size 8x8] [-pattern random] [-rate F]
//	       [-outstanding N] [-cycles N] [-scale-pipeline] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"alpha21364"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsim: ")
	alg := flag.String("alg", "SPAA-base", "algorithm (PIM1, WFA-base, WFA-rotary, SPAA-base, SPAA-rotary)")
	size := flag.String("size", "8x8", "torus dimensions WxH")
	pattern := flag.String("pattern", "random", "traffic pattern (random, bit-reversal, perfect-shuffle)")
	rate := flag.Float64("rate", 0.02, "new transactions per node per router cycle")
	outstanding := flag.Int("outstanding", 16, "outstanding-miss limit per processor")
	cycles := flag.Int("cycles", 75000, "router cycles to simulate")
	scale := flag.Bool("scale-pipeline", false, "double pipeline depth and clock (Figure 11a)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	series := flag.Int("series", 0, "if > 0, print delivered flits per N-cycle epoch (saturation oscillation)")
	flag.Parse()

	kind, err := alpha21364.ParseKind(*alg)
	if err != nil {
		log.Fatal(err)
	}
	pat, err := alpha21364.ParsePattern(*pattern)
	if err != nil {
		log.Fatal(err)
	}
	var w, h int
	if _, err := fmt.Sscanf(*size, "%dx%d", &w, &h); err != nil || w < 2 || h < 2 {
		log.Fatalf("bad -size %q (want WxH, each >= 2)", *size)
	}

	res, err := alpha21364.RunTiming(alpha21364.TimingSetup{
		Width: w, Height: h, Kind: kind, Pattern: pat,
		Rate: *rate, MaxOutstanding: *outstanding,
		ScalePipeline: *scale, Cycles: *cycles, Seed: *seed,
		EpochCycles: *series,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network:            %dx%d torus, %s traffic, %s\n", w, h, pat, kind)
	fmt.Printf("offered rate:       %.4f txn/node/cycle (max %d outstanding)\n", *rate, *outstanding)
	fmt.Printf("delivered:          %.4f flits/router/ns\n", res.Throughput)
	fmt.Printf("avg packet latency: %.1f ns (p99 %.0f ns)\n", res.AvgLatencyNS, res.AvgLatencyP99)
	fmt.Printf("packets measured:   %d (%.2f mean hops)\n", res.Packets, res.MeanHops)
	fmt.Printf("transactions done:  %d\n", res.Completed)
	fmt.Printf("arbitration resets: %d (collisions / wave losers)\n", res.Collisions)
	fmt.Printf("starvation drains:  %d\n", res.DrainEntries)
	if *series > 0 {
		fmt.Printf("throughput CoV:     %.3f (delivered-flit oscillation, post-warmup)\n", res.ThroughputCoV)
		fmt.Printf("flits per %d-cycle epoch:\n", *series)
		for i, v := range res.EpochFlits {
			fmt.Printf("%8d", v)
			if (i+1)%8 == 0 {
				fmt.Println()
			}
		}
		fmt.Println()
	}
}

package main

// metrics.go is the daemon's observability surface: a process-lifetime
// counter set fed by every request, exposed at GET /metrics in the
// Prometheus text format (hand-rolled by internal/obs — no client
// library). Request and point counters are cumulative since daemon
// start; the per-arbiter series aggregate the obs.Snapshots of every
// metric-laden point the daemon has served, so a scrape sees router
// stalls and arbitration totals broken down by algorithm.

import (
	"io"
	"sort"
	"sync"

	"alpha21364/internal/experiment"
	"alpha21364/internal/obs"
)

// arbiterAgg accumulates one arbitration algorithm's router and arbiter
// counters across every snapshot-carrying point served so far.
type arbiterAgg struct {
	stalls, creditWaits                      int64
	requests, grants, conflicts, nomFailures int64
	delivered                                int64
}

// daemonMetrics is the shared counter set. One mutex guards everything:
// the daemon's request rate is nowhere near the point where contention
// matters, and a single lock keeps ratio reads consistent.
type daemonMetrics struct {
	mu          sync.Mutex
	requests    int64 // spec executions attempted (HTTP and stdin)
	requestErrs int64 // rejected documents + failed runs
	points      int64 // grid points served, cached and simulated
	cacheHits   int64
	simulated   int64
	shards      int64
	fleetShards int64          // POST /shard executions accepted
	fleetErrs   int64          // POST /shard executions that failed
	fleetBusy   int64          // POST /shard refusals: saturated or draining
	runDur      *obs.Histogram // seconds per completed run
	shardDur    *obs.Histogram // seconds per completed shard
	arbiters    map[string]*arbiterAgg
}

func newDaemonMetrics() *daemonMetrics {
	return &daemonMetrics{
		runDur:   obs.NewHistogram(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60),
		shardDur: obs.NewHistogram(0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5),
		arbiters: map[string]*arbiterAgg{},
	}
}

// recordRequest counts one spec execution attempt.
func (d *daemonMetrics) recordRequest() {
	d.mu.Lock()
	d.requests++
	d.mu.Unlock()
}

// recordError counts one failure: an undecodable document or a run that
// returned an error.
func (d *daemonMetrics) recordError() {
	d.mu.Lock()
	d.requestErrs++
	d.mu.Unlock()
}

// recordBadRequest counts a document rejected before it could run.
func (d *daemonMetrics) recordBadRequest() {
	d.mu.Lock()
	d.requests++
	d.requestErrs++
	d.mu.Unlock()
}

// recordShard counts one fleet shard execution accepted on POST /shard.
func (d *daemonMetrics) recordShard() {
	d.mu.Lock()
	d.fleetShards++
	d.mu.Unlock()
}

// recordShardError counts one accepted shard execution that failed.
func (d *daemonMetrics) recordShardError() {
	d.mu.Lock()
	d.fleetErrs++
	d.mu.Unlock()
}

// recordShardBusy counts one POST /shard refused with 503 — the worker
// was saturated or draining, and the dispatcher will go elsewhere.
func (d *daemonMetrics) recordShardBusy() {
	d.mu.Lock()
	d.fleetBusy++
	d.mu.Unlock()
}

// recordRun folds one completed run's coordinator statistics and its
// Result's telemetry snapshots into the process counters.
func (d *daemonMetrics) recordRun(st experiment.CoordinatorStats, res *experiment.Result) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.points += int64(st.TotalPoints)
	d.cacheHits += int64(st.CachedPoints)
	d.simulated += int64(st.SimulatedPoints)
	d.shards += int64(st.Shards)
	d.runDur.Observe(float64(st.ElapsedNS) / 1e9)
	for _, ns := range st.ShardDurationsNS {
		d.shardDur.Observe(float64(ns) / 1e9)
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			snap := p.Metrics
			if snap == nil {
				continue
			}
			agg := d.arbiters[snap.Arbiter]
			if agg == nil {
				agg = &arbiterAgg{}
				d.arbiters[snap.Arbiter] = agg
			}
			for _, r := range snap.Routers {
				agg.stalls += r.Stalls
				agg.creditWaits += r.CreditWaits
				agg.requests += r.ArbRequests
				agg.grants += r.ArbGrants
				agg.conflicts += r.ArbConflicts
				agg.nomFailures += r.NomFailures
			}
			agg.delivered += snap.Network.DeliveredPackets
		}
	}
}

// writeProm emits the full exposition document. inflightShards is the
// caller's live gauge of POST /shard executions in progress (it lives
// outside the counter set so the handler can read it lock-free).
func (d *daemonMetrics) writeProm(w io.Writer, inflightShards int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := obs.NewPromWriter(w)

	counter := func(name, help string, v int64) {
		p.Family(name, "counter", help)
		p.Sample(name, float64(v))
	}
	counter("sweepd_requests_total", "Spec executions attempted, over HTTP and stdin.", d.requests)
	counter("sweepd_request_errors_total", "Rejected spec documents plus failed runs.", d.requestErrs)
	counter("sweepd_points_total", "Grid points served, cached and simulated.", d.points)
	counter("sweepd_cache_hits_total", "Grid points served from the result cache.", d.cacheHits)
	counter("sweepd_points_simulated_total", "Grid points simulated by this process.", d.simulated)
	counter("sweepd_shards_total", "Shard specs executed.", d.shards)
	counter("sweepd_fleet_shards_total", "Fleet shard executions accepted on POST /shard.", d.fleetShards)
	counter("sweepd_fleet_shard_errors_total", "Accepted fleet shard executions that failed.", d.fleetErrs)
	counter("sweepd_fleet_shard_busy_total", "POST /shard requests refused while saturated or draining.", d.fleetBusy)

	p.Family("sweepd_fleet_inflight_shards", "gauge", "Fleet shard executions currently running.")
	p.Sample("sweepd_fleet_inflight_shards", float64(inflightShards))

	p.Family("sweepd_cache_hit_ratio", "gauge", "Fraction of served points that came from the cache, since start.")
	ratio := 0.0
	if d.points > 0 {
		ratio = float64(d.cacheHits) / float64(d.points)
	}
	p.Sample("sweepd_cache_hit_ratio", ratio)

	p.Family("sweepd_points_per_second", "gauge", "Simulated points per second of run wall-clock, since start.")
	pps := 0.0
	if sec := d.runDur.Sum(); sec > 0 {
		pps = float64(d.simulated) / sec
	}
	p.Sample("sweepd_points_per_second", pps)

	p.Histo("sweepd_run_duration_seconds", "Wall-clock duration of completed runs.", d.runDur)
	p.Histo("sweepd_shard_duration_seconds", "Wall-clock duration of completed shards.", d.shardDur)

	names := make([]string, 0, len(d.arbiters))
	for name := range d.arbiters {
		names = append(names, name)
	}
	sort.Strings(names)
	perArbiter := func(name, help string, get func(*arbiterAgg) int64) {
		p.Family(name, "counter", help)
		for _, a := range names {
			p.Sample(name, float64(get(d.arbiters[a])), "arbiter", a)
		}
	}
	if len(names) > 0 {
		perArbiter("sweepd_router_stalls_total",
			"Nomination failures charged to an unready output port, summed over served snapshots.",
			func(a *arbiterAgg) int64 { return a.stalls })
		perArbiter("sweepd_router_credit_waits_total",
			"Nomination failures charged to exhausted credits, summed over served snapshots.",
			func(a *arbiterAgg) int64 { return a.creditWaits })
		perArbiter("sweepd_arbiter_requests_total",
			"Arbitration requests, summed over served snapshots.",
			func(a *arbiterAgg) int64 { return a.requests })
		perArbiter("sweepd_arbiter_grants_total",
			"Arbitration grants, summed over served snapshots.",
			func(a *arbiterAgg) int64 { return a.grants })
		perArbiter("sweepd_arbiter_conflicts_total",
			"Arbitration conflicts (requests minus grants), summed over served snapshots.",
			func(a *arbiterAgg) int64 { return a.conflicts })
		perArbiter("sweepd_arbiter_nomination_failures_total",
			"Granted nominations invalidated at dispatch, summed over served snapshots.",
			func(a *arbiterAgg) int64 { return a.nomFailures })
		perArbiter("sweepd_sink_delivered_packets_total",
			"Packets delivered to their destination, summed over served snapshots.",
			func(a *arbiterAgg) int64 { return a.delivered })
	}
	return p.Err()
}

package main

// shard_test.go covers the daemon's fleet-worker surface: POST /shard
// execution and saturation, the /healthz readiness document, the
// draining state a SIGTERM flips on, and the request-body bounds shared
// with /run.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"alpha21364/internal/experiment"
)

// TestShardEndpointStreamsResult posts a shard-sized spec to /shard and
// checks the response is the complete Result JSONL stream, with the
// fleet counters moving.
func TestShardEndpointStreamsResult(t *testing.T) {
	svc := testService(t, "")
	srv := httptest.NewServer(svc.handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/shard", "application/json", bytes.NewReader(smallSpecJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/shard: status %d err %v\n%s", resp.StatusCode, err, body)
	}
	res, err := experiment.DecodeResultJSONL(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/shard response is not a Result stream: %v\n%s", err, body)
	}
	if res.Partial || len(res.Series) != 1 || len(res.Series[0].Points) != 1 {
		t.Fatalf("unexpected shard result shape: partial=%v series=%d", res.Partial, len(res.Series))
	}

	got := scrape(t, srv.URL)
	if got["sweepd_fleet_shards_total"] != 1 {
		t.Errorf("fleet_shards_total = %g, want 1", got["sweepd_fleet_shards_total"])
	}
	if got["sweepd_fleet_shard_errors_total"] != 0 || got["sweepd_fleet_shard_busy_total"] != 0 {
		t.Errorf("error/busy counters moved on a clean shard: %g / %g",
			got["sweepd_fleet_shard_errors_total"], got["sweepd_fleet_shard_busy_total"])
	}
	if got["sweepd_fleet_inflight_shards"] != 0 {
		t.Errorf("inflight gauge = %g after completion, want 0", got["sweepd_fleet_inflight_shards"])
	}
}

// TestShardMatchesRunBytes pins the worker contract the fleet merge
// relies on: /shard and /run produce the same Result stream for the
// same spec (modulo the volatile elapsed field).
func TestShardMatchesRunBytes(t *testing.T) {
	srv := httptest.NewServer(testService(t, "").handler())
	defer srv.Close()

	fetch := func(path string) string {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(smallSpecJSON(t)))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d err %v", path, resp.StatusCode, err)
		}
		res, err := experiment.DecodeResultJSONL(bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		experiment.StripVolatile(res)
		var buf bytes.Buffer
		if err := res.EncodeJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if fetch("/shard") != fetch("/run") {
		t.Error("/shard and /run streams diverge for the same spec")
	}
}

// TestShardSaturationAnswers503 fills the shard semaphore and checks the
// overflow request is refused — counted, not queued.
func TestShardSaturationAnswers503(t *testing.T) {
	svc := testService(t, "")
	// Occupy every slot by hand; the handler's non-blocking acquire must
	// then refuse immediately.
	for i := 0; i < cap(svc.shardSem); i++ {
		svc.shardSem <- struct{}{}
	}
	srv := httptest.NewServer(svc.handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/shard", "application/json", bytes.NewReader(smallSpecJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated /shard: got %d, want 503", resp.StatusCode)
	}
	if got := scrape(t, srv.URL); got["sweepd_fleet_shard_busy_total"] != 1 {
		t.Errorf("fleet_shard_busy_total = %g, want 1", got["sweepd_fleet_shard_busy_total"])
	}
}

// TestShardBadSpecCounted checks an undecodable shard body is a 400 and
// lands in the error counters without starting an execution.
func TestShardBadSpecCounted(t *testing.T) {
	svc := testService(t, "")
	srv := httptest.NewServer(svc.handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/shard", "application/json", strings.NewReader(`{"version": 99}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad shard spec: got %d, want 400", resp.StatusCode)
	}
	if got := scrape(t, srv.URL); got["sweepd_fleet_shards_total"] != 0 {
		t.Errorf("fleet_shards_total = %g after a rejected body, want 0", got["sweepd_fleet_shards_total"])
	}
}

// TestBodyLimitAnswers413 sends an oversized document to both spec
// endpoints; MaxBytesReader must cut it off with 413.
func TestBodyLimitAnswers413(t *testing.T) {
	srv := httptest.NewServer(testService(t, "").handler())
	defer srv.Close()

	huge := bytes.Repeat([]byte("x"), maxSpecBytes+2)
	for _, path := range []string{"/run", "/shard"} {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(huge))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s with oversized body: got %d, want 413", path, resp.StatusCode)
		}
	}
}

// TestHealthzReadinessDocument checks the JSON detail while healthy and
// the 503 flip while draining — the exact contract fleet heartbeats
// probe.
func TestHealthzReadinessDocument(t *testing.T) {
	svc := testService(t, "")
	srv := httptest.NewServer(svc.handler())
	defer srv.Close()

	get := func() (int, healthStatus) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st healthStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("healthz is not a JSON document: %v", err)
		}
		return resp.StatusCode, st
	}

	code, st := get()
	if code != http.StatusOK || st.Status != "ok" {
		t.Fatalf("healthy /healthz: %d %q, want 200 ok", code, st.Status)
	}
	if st.Version != daemonVersion {
		t.Errorf("version = %q, want %q", st.Version, daemonVersion)
	}
	if st.UptimeSeconds < 0 {
		t.Errorf("uptime = %g, want >= 0", st.UptimeSeconds)
	}
	if st.InflightShards != 0 {
		t.Errorf("inflight = %d, want 0", st.InflightShards)
	}

	svc.draining.Store(true)
	code, st = get()
	if code != http.StatusServiceUnavailable || st.Status != "draining" {
		t.Errorf("draining /healthz: %d %q, want 503 draining", code, st.Status)
	}
}

// TestDrainingRefusesNewWork flips the drain flag and checks both spec
// endpoints refuse with 503 while /metrics stays scrapeable.
func TestDrainingRefusesNewWork(t *testing.T) {
	svc := testService(t, "")
	svc.draining.Store(true)
	srv := httptest.NewServer(svc.handler())
	defer srv.Close()

	for _, path := range []string{"/run", "/shard"} {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(smallSpecJSON(t)))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("draining %s: got %d, want 503", path, resp.StatusCode)
		}
	}
	scrape(t, srv.URL) // still serves metrics while draining
}

package main

// metrics_test.go exercises the daemon's observability surface the way
// an operator would: concurrent POST /run traffic with /healthz and
// /metrics scrapes interleaved (the race detector watches the counter
// set), then monotonicity and cache-hit-ratio assertions across a warm
// rerun. Run under -race via `make race-pools`.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"alpha21364/internal/experiment"
)

// metricsSpecJSON is a small metrics-enabled spec, so the served points
// carry snapshots and the per-arbiter series appear.
func metricsSpecJSON(t *testing.T) []byte {
	t.Helper()
	sp := experiment.NewSpec(
		experiment.WithName("sweepd metrics test"),
		experiment.WithTopology(4, 4),
		experiment.WithArbiters("PIM1"),
		experiment.WithPatterns("random"),
		experiment.WithRates(0.02),
		experiment.WithCycles(300),
		experiment.WithSeed(6),
		experiment.WithMetrics(),
	)
	data, err := experiment.EncodeSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// scrape fetches /metrics and parses every sample line into a
// name{labels} -> value map, validating the exposition grammar.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want the 0.0.4 exposition format", ct)
	}
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?) (-?[0-9.eE+-]+|\+Inf|NaN)$`)
	out := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[m[1]] = v
	}
	return out
}

// TestMetricsEndpointUnderConcurrentRuns hammers /run from several
// goroutines while scraping /metrics and /healthz, then checks the
// settled counters: every series the README documents must be present,
// counts must match the traffic, and a warm rerun must raise the cache
// hit ratio without any counter going backwards.
func TestMetricsEndpointUnderConcurrentRuns(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	svc := testService(t, dir)
	srv := httptest.NewServer(svc.handler())
	defer srv.Close()
	spec := metricsSpecJSON(t)

	const clients = 4
	post := func() error {
		resp, err := http.Post(srv.URL+"/run", "application/json", bytes.NewReader(spec))
		if err != nil {
			return err
		}
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = post()
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/healthz")
			if err == nil {
				resp.Body.Close()
			}
			scrape(t, srv.URL)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	cold := scrape(t, srv.URL)
	for _, name := range []string{
		"sweepd_requests_total", "sweepd_request_errors_total",
		"sweepd_points_total", "sweepd_cache_hits_total",
		"sweepd_points_simulated_total", "sweepd_shards_total",
		"sweepd_cache_hit_ratio", "sweepd_points_per_second",
		"sweepd_run_duration_seconds_count", "sweepd_shard_duration_seconds_count",
		`sweepd_router_stalls_total{arbiter="PIM1"}`,
		`sweepd_router_credit_waits_total{arbiter="PIM1"}`,
		`sweepd_arbiter_requests_total{arbiter="PIM1"}`,
		`sweepd_arbiter_grants_total{arbiter="PIM1"}`,
		`sweepd_arbiter_conflicts_total{arbiter="PIM1"}`,
		`sweepd_arbiter_nomination_failures_total{arbiter="PIM1"}`,
		`sweepd_sink_delivered_packets_total{arbiter="PIM1"}`,
	} {
		if _, ok := cold[name]; !ok {
			t.Errorf("scrape is missing %s", name)
		}
	}
	if cold["sweepd_requests_total"] != clients {
		t.Errorf("requests_total = %g, want %d", cold["sweepd_requests_total"], clients)
	}
	if cold["sweepd_request_errors_total"] != 0 {
		t.Errorf("request_errors_total = %g, want 0", cold["sweepd_request_errors_total"])
	}
	if cold["sweepd_points_total"] != clients {
		t.Errorf("points_total = %g, want %d (1-point spec x %d clients)", cold["sweepd_points_total"], clients, clients)
	}
	// All clients raced on one cold cache: at least one simulated, and
	// simulated + cache hits account for every served point.
	if cold["sweepd_points_simulated_total"] < 1 {
		t.Errorf("points_simulated_total = %g, want >= 1", cold["sweepd_points_simulated_total"])
	}
	if got := cold["sweepd_cache_hits_total"] + cold["sweepd_points_simulated_total"]; got != cold["sweepd_points_total"] {
		t.Errorf("cache_hits + simulated = %g, want %g", got, cold["sweepd_points_total"])
	}
	if cold["sweepd_run_duration_seconds_count"] != clients {
		t.Errorf("run_duration count = %g, want %d", cold["sweepd_run_duration_seconds_count"], clients)
	}
	if cold[`sweepd_arbiter_grants_total{arbiter="PIM1"}`] <= 0 {
		t.Error("per-arbiter grant counter never incremented; snapshots were not aggregated")
	}

	// Warm rerun: a pure cache read. Counters stay monotonic and the
	// hit ratio rises.
	if err := post(); err != nil {
		t.Fatal(err)
	}
	warm := scrape(t, srv.URL)
	for name, v := range cold {
		if strings.Contains(name, "_total") || strings.HasSuffix(name, "_count") {
			if warm[name] < v {
				t.Errorf("%s went backwards: %g -> %g", name, v, warm[name])
			}
		}
	}
	if warm["sweepd_points_simulated_total"] != cold["sweepd_points_simulated_total"] {
		t.Errorf("warm rerun simulated: %g -> %g", cold["sweepd_points_simulated_total"], warm["sweepd_points_simulated_total"])
	}
	if warm["sweepd_cache_hits_total"] != cold["sweepd_cache_hits_total"]+1 {
		t.Errorf("warm rerun cache hits: %g -> %g, want +1", cold["sweepd_cache_hits_total"], warm["sweepd_cache_hits_total"])
	}
	if warm["sweepd_cache_hit_ratio"] <= cold["sweepd_cache_hit_ratio"] {
		t.Errorf("cache hit ratio did not rise on a warm rerun: %g -> %g",
			cold["sweepd_cache_hit_ratio"], warm["sweepd_cache_hit_ratio"])
	}
}

// TestMetricsCountsBadRequests pins the error counters: an undecodable
// spec document counts as a request and an error, without disturbing
// the point counters.
func TestMetricsCountsBadRequests(t *testing.T) {
	svc := testService(t, "")
	srv := httptest.NewServer(svc.handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/run", "application/json", strings.NewReader(`{"version": 99}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: got %d, want 400", resp.StatusCode)
	}
	got := scrape(t, srv.URL)
	if got["sweepd_requests_total"] != 1 || got["sweepd_request_errors_total"] != 1 {
		t.Errorf("requests=%g errors=%g after one bad document, want 1 and 1",
			got["sweepd_requests_total"], got["sweepd_request_errors_total"])
	}
	if got["sweepd_points_total"] != 0 {
		t.Errorf("points_total = %g after a rejected document, want 0", got["sweepd_points_total"])
	}
}

// TestPprofEndpointServes checks the profiling surface is mounted on
// the daemon's mux.
func TestPprofEndpointServes(t *testing.T) {
	srv := httptest.NewServer(testService(t, "").handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("/debug/pprof/: status %d body %q", resp.StatusCode, body)
	}
}

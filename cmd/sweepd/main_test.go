package main

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"alpha21364/internal/cache"
	"alpha21364/internal/experiment"
)

func smallSpecJSON(t *testing.T) []byte {
	t.Helper()
	sp := experiment.NewSpec(
		experiment.WithName("sweepd test"),
		experiment.WithTopology(4, 4),
		experiment.WithArbiters("PIM1"),
		experiment.WithPatterns("random"),
		experiment.WithRates(0.02),
		experiment.WithCycles(300),
		experiment.WithSeed(6),
	)
	data, err := experiment.EncodeSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func testService(t *testing.T, dir string) *service {
	t.Helper()
	var store *cache.Store
	if dir != "" {
		var err error
		store, err = cache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
	}
	return newService(store, 0, 1, 0, log.New(io.Discard, "", 0))
}

// TestStdinStreamsResults feeds a good spec, a broken one, and a second
// good spec through stdin mode: two decodable Result streams and one
// in-band error line must come out, in order, and the stream must not
// stop at the failure.
func TestStdinStreamsResults(t *testing.T) {
	spec := smallSpecJSON(t)
	input := string(spec) + "\n" + `{"version": 99}` + "\n" + string(spec) + "\n"
	var stdout, stderr bytes.Buffer
	err := run([]string{"-workers", "1"}, strings.NewReader(input), &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	out := stdout.String()
	if got := strings.Count(out, `"type":"result"`); got != 2 {
		t.Fatalf("want 2 result headers, got %d:\n%s", got, out)
	}
	if got := strings.Count(out, `"type":"error"`); got != 1 {
		t.Fatalf("want 1 in-band error line, got %d:\n%s", got, out)
	}
	// The error line must sit between the two result streams.
	first := strings.Index(out, `"type":"error"`)
	last := strings.LastIndex(out, `"type":"result"`)
	if first > last {
		t.Fatalf("error line after the last result; the stream stopped instead of continuing:\n%s", out)
	}
}

// TestStdinSpecArray runs a Spec array document as one stream entry.
func TestStdinSpecArray(t *testing.T) {
	spec := smallSpecJSON(t)
	input := "[" + string(spec) + "," + string(spec) + "]"
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-workers", "1"}, strings.NewReader(input), &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	if got := strings.Count(stdout.String(), `"type":"result"`); got != 2 {
		t.Fatalf("want 2 results from the array, got %d", got)
	}
}

// TestHTTPRunStreamsResult exercises the HTTP surface: /healthz, a good
// /run (decodable Result JSONL), a bad /run (400), and a wrong method.
func TestHTTPRunStreamsResult(t *testing.T) {
	srv := httptest.NewServer(testService(t, "").handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/run", "application/json", bytes.NewReader(smallSpecJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/run: %d\n%s", resp.StatusCode, body)
	}
	res, err := experiment.DecodeResultJSONL(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/run response is not a Result stream: %v\n%s", err, body)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != 1 {
		t.Fatalf("unexpected result shape: %d series", len(res.Series))
	}

	resp, err = http.Post(srv.URL+"/run", "application/json", strings.NewReader(`{"version": 99}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: got %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("GET /run should not be accepted")
	}
}

// TestCachePersistsAcrossRequests posts the same spec twice against one
// cache directory and checks the second request is served without
// simulating — the daemon's whole reason to exist.
func TestCachePersistsAcrossRequests(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	var logBuf bytes.Buffer
	svc := testService(t, dir)
	svc.log = log.New(&logBuf, "", 0)
	srv := httptest.NewServer(svc.handler())
	defer srv.Close()

	var bodies [2][]byte
	for i := range bodies {
		resp, err := http.Post(srv.URL+"/run", "application/json", bytes.NewReader(smallSpecJSON(t)))
		if err != nil {
			t.Fatal(err)
		}
		bodies[i], err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d err %v", i, resp.StatusCode, err)
		}
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "0/1 points cached, 1 simulated") {
		t.Fatalf("first request did not simulate:\n%s", logs)
	}
	if !strings.Contains(logs, "1/1 points cached, 0 simulated") {
		t.Fatalf("second request was not a pure cache read:\n%s", logs)
	}
	strip := func(b []byte) string {
		res, err := experiment.DecodeResultJSONL(bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		res.ElapsedNS = 0
		var buf bytes.Buffer
		if err := res.EncodeJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if strip(bodies[0]) != strip(bodies[1]) {
		t.Fatal("cached response diverged from simulated response")
	}
}
